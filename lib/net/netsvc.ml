module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Directory = Pm_nucleus.Directory
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx
module Path = Pm_names.Path
module Images = Pm_components.Images
module Chan = Pm_chan.Chan
module Chan_svc = Pm_chan.Chan_svc
module Mpsc = Pm_chan.Mpsc

let fault msg = Error (Oerror.Fault msg)

(* The per-port transmit endpoint: lives in the owning domain, wraps its
   private MPSC send handle. *)
let tx_endpoint api ~owner ~port txh =
  let send_m ctx = function
    | [ Value.Int dst; Value.Int sport; Value.Int dport; Value.Blob payload ] ->
      Ok (Value.Bool (Netstack_chan.submit txh ctx ~dst ~sport ~dport payload))
    | _ -> Error (Oerror.Type_error "send(dst, sport, dport, payload)")
  in
  let pending_m _ctx = function
    | [] -> Ok (Value.Int (Chan.pending (Mpsc.sub_ring txh)))
    | _ -> Error (Oerror.Type_error "pending()")
  in
  let stats_m _ctx = function
    | [] ->
      let s = Chan.stats (Mpsc.sub_ring txh) in
      Ok
        (Value.List
           [ Value.Int s.Chan.sends; Value.Int s.Chan.drops ])
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let iface =
    Iface.make ~name:"net.tx"
      [
        Iface.meth ~name:"send"
          ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tbool send_m;
        Iface.meth ~name:"pending" ~args:[] ~ret:Vtype.Tint pending_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
      ]
  in
  ignore port;
  Instance.create api.Api.registry ~class_name:"net.tx" ~domain:owner.Domain.id
    [ iface ]

let create api net ~domain_of_id () =
  let origin (ctx : Call_ctx.t) =
    match domain_of_id ctx.Call_ctx.origin_domain with
    | Some d -> Ok d
    | None ->
      fault
        (Printf.sprintf "net factory: unknown domain %d" ctx.Call_ctx.origin_domain)
  in
  let register_endpoint port kind inst =
    let path = Path.of_string (Printf.sprintf "/net/%d/%s" port kind) in
    match Directory.register api.Api.directory path inst with
    | Ok () -> Ok ()
    | Error e -> fault ("net factory: " ^ Pm_names.Namespace.error_to_string e)
  in
  let unregister_endpoint port kind =
    ignore
      (Directory.unregister api.Api.directory
         (Path.of_string (Printf.sprintf "/net/%d/%s" port kind)))
  in
  let ( let* ) = Result.bind in
  let bind_m ctx = function
    | [ Value.Int port ] ->
      let* owner = origin ctx in
      (match Netstack_chan.bind net ~port ~owner () with
      | Error e -> fault e
      | Ok chan ->
        let rx = Chan_svc.rx_endpoint api chan in
        let* () = register_endpoint port "rx" rx in
        let txh = Netstack_chan.attach_tx net ~producer:owner in
        let tx = tx_endpoint api ~owner ~port txh in
        let* () = register_endpoint port "tx" tx in
        Ok (Value.Handle (Instance.handle rx)))
    | _ -> Error (Oerror.Type_error "bind(int)")
  in
  let unbind_m _ctx = function
    | [ Value.Int port ] ->
      (match Netstack_chan.unbind net ~port with
      | Error e -> fault e
      | Ok () ->
        unregister_endpoint port "rx";
        unregister_endpoint port "tx";
        Ok Value.Unit)
    | _ -> Error (Oerror.Type_error "unbind(int)")
  in
  let list_m _ctx = function
    | [] ->
      Ok (Value.List (List.map (fun p -> Value.Int p) (Netstack_chan.ports net)))
    | _ -> Error (Oerror.Type_error "list()")
  in
  let drain_m _ctx = function
    | [] -> Ok (Value.Int (Netstack_chan.drain_tx net))
    | _ -> Error (Oerror.Type_error "drain()")
  in
  let stats_m _ctx = function
    | [] ->
      let sent, failed = Netstack_chan.tx_stats net in
      Ok (Value.List [ Value.Int sent; Value.Int failed ])
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let iface =
    Iface.make ~name:"netfactory"
      [
        Iface.meth ~name:"bind" ~args:[ Vtype.Tint ] ~ret:Vtype.Thandle bind_m;
        Iface.meth ~name:"unbind" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit unbind_m;
        Iface.meth ~name:"list" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) list_m;
        Iface.meth ~name:"drain" ~args:[] ~ret:Vtype.Tint drain_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"net.factory"
    ~domain:api.Api.kernel_domain.Domain.id [ iface ]

let image net ~domain_of_id () =
  Images.image ~name:"net-factory" ~size:16_384 ~author:"kernel-team"
    ~type_safe:true
    (fun api _dom -> create api net ~domain_of_id ())
