module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Nic = Pm_machine.Nic
module Chan = Pm_chan.Chan
module Mpsc = Pm_chan.Mpsc

type port = {
  port : int;
  chan : Chan.t;
  sink : Instance.t;
  owner : Domain.t;
}

type t = {
  api : Api.t;
  stack : Instance.t;
  stack_domain : Domain.t;
  doorbell_vec : int option;
  rx_slots : int;
  rx_slot_size : int;
  tx_slots : int;
  tx_slot_size : int;
  ports : (int, port) Hashtbl.t;
  mutable txg : Mpsc.t option;
  mutable tx_sent : int;
  mutable tx_failed : int;
}

let default_slot_size = (Nic.mtu + 3) / 4 * 4

let create api ~stack ~stack_domain ?(rx_slots = 64)
    ?(rx_slot_size = default_slot_size) ?(tx_slots = 64)
    ?(tx_slot_size = default_slot_size) ?doorbell_vec () =
  {
    api;
    stack;
    stack_domain;
    doorbell_vec;
    rx_slots;
    rx_slot_size;
    tx_slots;
    tx_slot_size;
    ports = Hashtbl.create 8;
    txg = None;
    tx_sent = 0;
    tx_failed = 0;
  }

let stack t = t.stack
let stack_domain t = t.stack_domain
let ports t = List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.ports [])
let port_chan t port = Option.map (fun p -> p.chan) (Hashtbl.find_opt t.ports port)
let port_owner t port = Option.map (fun p -> p.owner) (Hashtbl.find_opt t.ports port)

(* ------------------------------------------------------------------ *)
(* Receive side: one SPSC ring per bound port                          *)
(* ------------------------------------------------------------------ *)

(* The object the stack delivers to instead of the port's mailbox: it
   lives in the stack's own domain, so delivery is a plain dispatch —
   the crossing to the application happens through the ring. *)
let sink_object api ~stack_domain chan =
  let deliver_m ctx = function
    | [ Value.Int src; Value.Int sport; Value.Blob payload ] ->
      let msg = Netwire.Delivery.build ctx ~src ~sport payload in
      (* full ring = application not keeping up: drop like a NIC would
         (counted in the ring's stats) rather than stall the stack *)
      ignore (Chan.send_or_drop ~account:false chan msg);
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "deliver(src, sport, payload)")
  in
  let iface =
    Iface.make ~name:"netsink"
      [
        Iface.meth ~name:"deliver" ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tunit deliver_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"net.sink"
    ~domain:stack_domain.Domain.id [ iface ]

let stack_call t meth args =
  let ctx = Api.ctx t.api t.stack_domain in
  match Invoke.call ctx t.stack ~iface:"stack" ~meth args with
  | Ok v -> Ok v
  | Error e -> Error (Oerror.to_string e)

let ( let* ) = Result.bind

let bind t ~port ~owner ?(mode = Chan.Doorbell) () =
  if Hashtbl.mem t.ports port then
    Error (Printf.sprintf "net: port %d already channel-bound" port)
  else
    let* _ = stack_call t "bind_port" [ Value.Int port ] in
    let chan =
      Chan.create t.api.Api.machine t.api.Api.vmem
        ~name:(Printf.sprintf "net.rx.%d" port)
        ~slots:t.rx_slots ~slot_size:t.rx_slot_size ~mode
        ?doorbell_vec:t.doorbell_vec ~producer:t.stack_domain ()
    in
    ignore (Chan.accept chan ~into:owner);
    (* port owners may be pinned anywhere; price cross-CPU RX honestly *)
    Chan.set_cacheline_priced chan true;
    let sink = sink_object t.api ~stack_domain:t.stack_domain chan in
    let* _ =
      stack_call t "attach_port"
        [ Value.Int port; Value.Handle (Instance.handle sink) ]
    in
    Hashtbl.replace t.ports port { port; chan; sink; owner };
    Ok chan

let unbind t ~port =
  match Hashtbl.find_opt t.ports port with
  | None -> Error (Printf.sprintf "net: port %d not channel-bound" port)
  | Some _ ->
    let* _ = stack_call t "detach_port" [ Value.Int port ] in
    let* _ = stack_call t "unbind_port" [ Value.Int port ] in
    Hashtbl.remove t.ports port;
    Ok ()

let set_rx_mode t ~port mode =
  match Hashtbl.find_opt t.ports port with
  | None -> Error (Printf.sprintf "net: port %d not channel-bound" port)
  | Some p ->
    Chan.set_mode p.chan mode;
    Ok ()

(* ------------------------------------------------------------------ *)
(* Transmit side: one MPSC group into the stack                        *)
(* ------------------------------------------------------------------ *)

let drain_tx t =
  match t.txg with
  | None -> 0
  | Some g ->
    let ctx = Api.ctx t.api t.stack_domain in
    let msgs = Mpsc.recv_batch ~account:false g () in
    List.iter
      (fun msg ->
        match Netwire.Txreq.parse ctx msg with
        | Error e ->
          t.tx_failed <- t.tx_failed + 1;
          Logs.warn (fun m -> m "net: bad txreq: %s" e)
        | Ok { Netwire.Txreq.dst; sport; dport; payload } ->
          (match
             Invoke.call ctx t.stack ~iface:"stack" ~meth:"send"
               [
                 Value.Int dst; Value.Int sport; Value.Int dport;
                 Value.Blob payload;
               ]
           with
          | Ok _ -> t.tx_sent <- t.tx_sent + 1
          | Error e ->
            t.tx_failed <- t.tx_failed + 1;
            Logs.warn (fun m -> m "net: tx send failed: %s" (Oerror.to_string e))))
      msgs;
    List.length msgs

let tx_group t =
  match t.txg with
  | Some g -> g
  | None ->
    let g =
      Mpsc.create t.api.Api.machine t.api.Api.vmem ~name:"net.tx"
        ~slots:t.tx_slots ~slot_size:t.tx_slot_size
        ?doorbell_vec:t.doorbell_vec ~consumer:t.stack_domain ()
    in
    t.txg <- Some g;
    ignore
      (Mpsc.on_doorbell g ~events:t.api.Api.events ~sched:t.api.Api.sched
         (fun () -> ignore (drain_tx t)));
    g

let attach_tx t ~producer = Mpsc.attach (tx_group t) ~producer

let set_tx_mode t mode = Mpsc.set_mode (tx_group t) mode

let submit txh ctx ~dst ~sport ~dport payload =
  let msg = Netwire.Txreq.build ctx ~dst ~sport ~dport payload in
  Mpsc.send_or_drop ~account:false txh msg

let tx_stats t = (t.tx_sent, t.tx_failed)
