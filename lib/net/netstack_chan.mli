(** The channel-backed network data path.

    The mailbox path ({!Pm_components.Stack}) makes an application poll
    the stack through a proxy — a page fault and two context switches
    per [recv], and the same again per [send]. This module rewires both
    directions of every bound port over shared-memory rings:

    {v
            driver ──rx ring──▶ stack ──per-port SPSC ring──▶ app
      app ──┐
      app ──┼──MPSC tx group──▶ stack ──▶ driver
      app ──┘
    v}

    {b Receive}: {!bind} binds a port on the stack, builds a dedicated
    SPSC ring (producer = the stack's domain, consumer = the owning
    application), and attaches a same-domain sink so decoded payloads
    are enqueued as {!Netwire.Delivery} messages instead of queued in a
    mailbox. The application drains with {!Pm_chan.Chan.recv_batch} —
    doorbell or poll, selectable per port with {!set_rx_mode} so a
    placement agent ({!Pm_obs_agent.Placer}) can manage the trade.

    {b Transmit}: all senders share one {!Pm_chan.Mpsc} group draining
    into the stack's domain. {!attach_tx} gives each producer its own
    sub-ring; {!submit} enqueues a {!Netwire.Txreq}, and the group's
    doorbell pop-up (or an explicit {!drain_tx}) decodes each request
    and runs the stack's ordinary encode path into the driver.

    Payload bytes are charged by the {!Netwire} codecs through the
    caller's {!Pm_obj.Call_ctx} — once per side; the rings themselves
    run with [~account:false] (the zero-copy contract). *)

type t

(** [create api ~stack ~stack_domain ()] prepares the rewiring for a
    stack instance (the composite's exported ["stack"] interface).
    [rx_slots]/[rx_slot_size] size each per-port receive ring,
    [tx_slots]/[tx_slot_size] each producer's transmit sub-ring;
    slot sizes default to the NIC MTU rounded up to a word. *)
val create :
  Pm_nucleus.Api.t ->
  stack:Pm_obj.Instance.t ->
  stack_domain:Pm_nucleus.Domain.t ->
  ?rx_slots:int ->
  ?rx_slot_size:int ->
  ?tx_slots:int ->
  ?tx_slot_size:int ->
  ?doorbell_vec:int ->
  unit ->
  t

val stack : t -> Pm_obj.Instance.t
val stack_domain : t -> Pm_nucleus.Domain.t

(** Channel-bound ports, ascending. *)
val ports : t -> int list

val port_chan : t -> int -> Pm_chan.Chan.t option
val port_owner : t -> int -> Pm_nucleus.Domain.t option

(** [bind t ~port ~owner ()] binds [port] on the stack and routes its
    deliveries onto a fresh ring consumed by [owner]. [mode] (default
    [Doorbell]) sets the ring's doorbell behaviour. *)
val bind :
  t ->
  port:int ->
  owner:Pm_nucleus.Domain.t ->
  ?mode:Pm_chan.Chan.mode ->
  unit ->
  (Pm_chan.Chan.t, string) result

(** [unbind t ~port] detaches the sink and unbinds the port. *)
val unbind : t -> port:int -> (unit, string) result

(** Flip one port's receive ring between [Doorbell] and [Poll]. *)
val set_rx_mode : t -> port:int -> Pm_chan.Chan.mode -> (unit, string) result

(** The shared transmit group (created on first use). *)
val tx_group : t -> Pm_chan.Mpsc.t

(** [attach_tx t ~producer] joins [producer] to the transmit group,
    returning its private send handle. *)
val attach_tx : t -> producer:Pm_nucleus.Domain.t -> Pm_chan.Mpsc.tx

val set_tx_mode : t -> Pm_chan.Chan.mode -> unit

(** [submit txh ctx ~dst ~sport ~dport payload] enqueues one transmit
    request on the producer's sub-ring; [false] when it is full (the
    request is counted as a drop). Marshalling is charged to [ctx]. *)
val submit :
  Pm_chan.Mpsc.tx ->
  Pm_obj.Call_ctx.t ->
  dst:int ->
  sport:int ->
  dport:int ->
  bytes ->
  bool

(** [drain_tx t] decodes and sends every pending transmit request
    inline (polling mode); returns requests drained. The doorbell
    pop-up runs exactly this. *)
val drain_tx : t -> int

(** [(sent, failed)] transmit requests since creation. *)
val tx_stats : t -> int * int
