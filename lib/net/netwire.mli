(** Ring-message codecs for the channel-backed network data path.

    Where {!Pm_components.Wire} defines the on-the-wire packet formats
    (checksummed, length-framed — what crosses the simulated link),
    these are the {e ring} formats: what {!Netstack_chan} lays into a
    shared-memory slot on either side of the protocol stack. The rings
    carry them with [~account:false]; every byte is charged here,
    through the caller's {!Pm_obj.Call_ctx}, exactly once per side.

    No checksums: a ring is reliable shared memory, so a delivery
    message is just a 4-byte header and a transmit request a 6-byte
    header, both followed by the raw payload. *)

module Delivery : sig
  (** What the stack's per-port sink enqueues on a port's receive ring:
      [[src:2][sport:2][payload]]. *)
  type t = { src : int; sport : int; payload : bytes }

  val header_len : int

  val build : Pm_obj.Call_ctx.t -> src:int -> sport:int -> bytes -> bytes

  val parse : Pm_obj.Call_ctx.t -> bytes -> (t, string) result
end

module Txreq : sig
  (** What an application enqueues on the shared transmit group:
      [[dst:2][sport:2][dport:2][payload]]; the stack-side drain decodes
      it and runs the ordinary encode path. *)
  type t = { dst : int; sport : int; dport : int; payload : bytes }

  val header_len : int

  val build :
    Pm_obj.Call_ctx.t -> dst:int -> sport:int -> dport:int -> bytes -> bytes

  val parse : Pm_obj.Call_ctx.t -> bytes -> (t, string) result
end
