(** The network factory: the channel-backed data path as a name-space
    citizen.

    A bootable component (see {!image}) conventionally registered at
    [/shared/net]. Any domain binds it and drives the ["netfactory"]
    interface:

    - [bind(port:int) -> handle] — bind [port] with the {e calling}
      domain as owner: the port's receive ring is consumed by the
      caller, and the caller joins the shared transmit group with a
      private sub-ring. The receive endpoint (a {!Pm_chan.Chan_svc}
      ["chan.rx"] object) is registered at [/net/<port>/rx] and the
      transmit endpoint at [/net/<port>/tx] — ordinary names, so an
      interposing agent can be swapped in front of either
    - [unbind(port:int) -> unit]
    - [list() -> list of int] — channel-bound ports
    - [drain() -> int] — decode and send pending transmit requests
      inline (polling mode)
    - [stats() -> list] — [tx_sent; tx_failed]

    A transmit endpoint exports ["net.tx"]:
    - [send(dst:int, sport:int, dport:int, payload:blob) -> bool] —
      enqueue one transmit request ([false] = sub-ring full, dropped)
    - [pending() -> int], [stats() -> list] ([sends; drops]) *)

val create :
  Pm_nucleus.Api.t ->
  Netstack_chan.t ->
  domain_of_id:(int -> Pm_nucleus.Domain.t option) ->
  unit ->
  Pm_obj.Instance.t

(** [image net ~domain_of_id ()] wraps the factory as a loadable
    component image (author ["kernel-team"], certified by the standard
    delegate chain). *)
val image :
  Netstack_chan.t ->
  domain_of_id:(int -> Pm_nucleus.Domain.t option) ->
  unit ->
  Pm_nucleus.Loader.image
