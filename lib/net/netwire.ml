module Call_ctx = Pm_obj.Call_ctx
module Trace = Pm_journal.Trace

let check16 label v =
  if v < 0 || v > 0xffff then
    invalid_arg (Printf.sprintf "Netwire: %s out of range" label)

let get16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

let set32 b off v =
  set16 b off ((v lsr 16) land 0xffff);
  set16 b (off + 2) (v land 0xffff)

(* charge for materializing [n] bytes into/out of a ring message; the
   rings themselves run with [~account:false], so this is where each
   payload byte is paid for — once per side, the zero-copy contract *)
let copy_cost ctx n = Call_ctx.access ctx n

(* With tracing on, every ring message carries the ambient request id
   in 4 extra header bytes; parse re-establishes the ambient scope at
   the consuming side. The rid bytes are never charged — tracing must
   add zero simulated cycles — and tracing flips only between runs, so
   both sides always agree on the format. *)
let rid_len () = if Trace.enabled () then 4 else 0

module Delivery = struct
  type t = { src : int; sport : int; payload : bytes }

  let header_len = 4

  let build ctx ~src ~sport payload =
    check16 "delivery src" src;
    check16 "delivery sport" sport;
    let rl = rid_len () in
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + rl + plen) in
    set16 b 0 src;
    set16 b 2 sport;
    if rl > 0 then set32 b header_len (Trace.current ());
    Bytes.blit payload 0 b (header_len + rl) plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    let rl = rid_len () in
    if total < header_len + rl then Error "delivery: truncated"
    else begin
      let src = get16 b 0 and sport = get16 b 2 in
      if rl > 0 then Trace.set_current (get32 b header_len);
      let payload = Bytes.sub b (header_len + rl) (total - header_len - rl) in
      copy_cost ctx (total - rl);
      Ok { src; sport; payload }
    end
end

module Txreq = struct
  type t = { dst : int; sport : int; dport : int; payload : bytes }

  let header_len = 6

  let build ctx ~dst ~sport ~dport payload =
    check16 "txreq dst" dst;
    check16 "txreq sport" sport;
    check16 "txreq dport" dport;
    let rl = rid_len () in
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + rl + plen) in
    set16 b 0 dst;
    set16 b 2 sport;
    set16 b 4 dport;
    if rl > 0 then set32 b header_len (Trace.current ());
    Bytes.blit payload 0 b (header_len + rl) plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    let rl = rid_len () in
    if total < header_len + rl then Error "txreq: truncated"
    else begin
      let dst = get16 b 0 and sport = get16 b 2 and dport = get16 b 4 in
      if rl > 0 then Trace.set_current (get32 b header_len);
      let payload = Bytes.sub b (header_len + rl) (total - header_len - rl) in
      copy_cost ctx (total - rl);
      Ok { dst; sport; dport; payload }
    end
end
