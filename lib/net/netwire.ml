module Call_ctx = Pm_obj.Call_ctx

let check16 label v =
  if v < 0 || v > 0xffff then
    invalid_arg (Printf.sprintf "Netwire: %s out of range" label)

let get16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

(* charge for materializing [n] bytes into/out of a ring message; the
   rings themselves run with [~account:false], so this is where each
   payload byte is paid for — once per side, the zero-copy contract *)
let copy_cost ctx n = Call_ctx.access ctx n

module Delivery = struct
  type t = { src : int; sport : int; payload : bytes }

  let header_len = 4

  let build ctx ~src ~sport payload =
    check16 "delivery src" src;
    check16 "delivery sport" sport;
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen) in
    set16 b 0 src;
    set16 b 2 sport;
    Bytes.blit payload 0 b header_len plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len then Error "delivery: truncated"
    else begin
      let src = get16 b 0 and sport = get16 b 2 in
      let payload = Bytes.sub b header_len (total - header_len) in
      copy_cost ctx total;
      Ok { src; sport; payload }
    end
end

module Txreq = struct
  type t = { dst : int; sport : int; dport : int; payload : bytes }

  let header_len = 6

  let build ctx ~dst ~sport ~dport payload =
    check16 "txreq dst" dst;
    check16 "txreq sport" sport;
    check16 "txreq dport" dport;
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen) in
    set16 b 0 dst;
    set16 b 2 sport;
    set16 b 4 dport;
    Bytes.blit payload 0 b header_len plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len then Error "txreq: truncated"
    else begin
      let dst = get16 b 0 and sport = get16 b 2 and dport = get16 b 4 in
      let payload = Bytes.sub b header_len (total - header_len) in
      copy_cost ctx total;
      Ok { dst; sport; dport; payload }
    end
end
