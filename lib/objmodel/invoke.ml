module Cost = Pm_machine.Cost
module Clock = Pm_machine.Clock
module Obs = Pm_obs.Obs

let dispatch (ctx : Call_ctx.t) obj ~iface ~meth args =
  Clock.advance ctx.clock ctx.costs.Cost.indirect_call;
  Clock.count ctx.clock "method_invocation";
  match Instance.resolve_method obj ~iface ~meth with
  | Error e -> Error e
  | Ok (m, hops) ->
    if hops > 0 then begin
      Clock.advance ctx.clock (hops * ctx.costs.Cost.delegation_hop);
      Clock.count ctx.clock "delegation"
    end;
    if not (Vtype.check_args m.Iface.msig args) then
      Error
        (Oerror.Type_error
           (Printf.sprintf "%s.%s expects %s" iface meth
              (Vtype.to_string_signature m.Iface.msig)))
    else begin
      match m.Iface.impl ctx args with
      | Error _ as e -> e
      | Ok ret ->
        if Vtype.check m.Iface.msig.Vtype.ret ret then Ok ret
        else
          Error
            (Oerror.Type_error
               (Printf.sprintf "%s.%s returned an ill-typed value" iface meth))
    end

let call (ctx : Call_ctx.t) obj ~iface ~meth args =
  let obs = Clock.obs ctx.clock in
  if not (Obs.enabled obs) then dispatch ctx obj ~iface ~meth args
  else begin
    let t0 = Clock.now ctx.clock in
    let tok =
      Obs.span_begin obs ~now:t0 ~domain:ctx.caller_domain
        ~obj:obj.Instance.class_name ~iface ~meth
    in
    let result = dispatch ctx obj ~iface ~meth args in
    (* one simulated store books the completed span into the ring *)
    Clock.advance ctx.clock ctx.costs.Cost.mem_write;
    let t1 = Clock.now ctx.clock in
    Obs.span_end obs ~now:t1 tok;
    Obs.observe obs ~domain:ctx.caller_domain "invoke.dispatch" (t1 - t0);
    Pm_obs.Acct.dispatch (Obs.acct obs) ~domain:ctx.caller_domain (t1 - t0);
    result
  end

let call_exn ctx obj ~iface ~meth args =
  match call ctx obj ~iface ~meth args with
  | Ok v -> v
  | Error e -> Oerror.fail e
