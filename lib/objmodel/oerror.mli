(** Errors produced by object invocation and binding. *)

type t =
  | No_such_interface of string
  | No_such_method of string * string  (** interface, method *)
  | Type_error of string
  | Domain_error of string  (** caller may not reach the target domain *)
  | Revoked  (** the instance has been revoked/unloaded *)
  | Fault of string  (** component-level failure *)
  | Not_superset of string
      (** an interposing agent does not implement a superset of the
          object it replaces (the name-space interposition rule) *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [set_fail_hook f] installs a process-global hook run (before the
    raise) on every {!fail} — system assembly points it at the flight
    recorder so an [Oerror] dumps the black box. [f] must not raise;
    exceptions it throws are swallowed. *)
val set_fail_hook : (t -> unit) -> unit

(** [fail e] runs the fail hook, then raises {!Error}. *)
val fail : t -> 'a
