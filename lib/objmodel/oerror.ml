type t =
  | No_such_interface of string
  | No_such_method of string * string
  | Type_error of string
  | Domain_error of string
  | Revoked
  | Fault of string
  | Not_superset of string

exception Error of t

let to_string = function
  | No_such_interface i -> Printf.sprintf "no such interface %S" i
  | No_such_method (i, m) -> Printf.sprintf "no method %S in interface %S" m i
  | Type_error s -> Printf.sprintf "type error: %s" s
  | Domain_error s -> Printf.sprintf "domain error: %s" s
  | Revoked -> "object revoked"
  | Fault s -> Printf.sprintf "fault: %s" s
  | Not_superset s -> Printf.sprintf "interposer is not a superset: %s" s

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* Process-global hook run on every [fail] — system assembly points it
   at the flight recorder so an [Oerror] dumps the black box. Logging
   only; it must never raise. *)
let fail_hook : (t -> unit) option ref = ref None

let set_fail_hook f = fail_hook := Some f

let fail e =
  (match !fail_hook with
  | Some f -> ( try f e with _ -> ())
  | None -> ());
  raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Oerror.Error: " ^ to_string e)
    | _ -> None)
