(** RPC component over the protocol stack.

    The paper's §2 example of interface evolution is an RPC object gaining
    a measurement interface without disturbing its users; this module
    provides the RPC object and {!add_measurement} adds that interface to
    a live client.

    A server exports ["rpc.server"]:
    - [poll() -> int] — process pending requests, returning how many
    - [requests() -> int], [failures() -> int]

    A client exports ["rpc"]:
    - [call(name:str, args:blob) -> blob] — must run inside a thread: it
      yield-polls for the response while the simulation delivers packets

    Request wire format: [id(4) rport(2) nlen(1) name payload]; response:
    [id(4) status(1) payload]. *)

(** A procedure: receives the raw argument bytes, returns result bytes or
    an application error string. *)
type handler = Pm_obj.Call_ctx.t -> bytes -> (bytes, string) result

(** {2 Wire codecs}

    Exposed so alternative carriers (channels) and tests can speak the
    protocol without a stack in the loop. *)

val encode_request : id:int -> rport:int -> name:string -> bytes -> bytes

val decode_request : bytes -> (int * int * string * bytes, string) result

val status_ok : int
val status_error : int

val encode_response : id:int -> status:int -> bytes -> bytes

val decode_response : bytes -> (int * int * bytes, string) result

(** [raw_handler ~procedures] is one classic-wire exchange as a
    {!handler}: decode a request, dispatch the procedure table, encode
    the response (application status inside). Mounting it as a channel
    carrier's raw hook is the server's channel-backed mode —
    {!Pm_chan.Rpc_chan.create_server} packages exactly that, giving a
    ["rpc.server"] object whose callers never pay a per-call proxy
    fault. *)
val raw_handler : procedures:(string * handler) list -> handler

(** [create_server api dom ~stack_path ~port ~procedures] binds [port] on
    the stack and serves the given procedures. For the channel-backed
    mode of the same server — same wire format, same ["rpc.server"]
    interface, but requests arriving over a shared-memory ring pair
    instead of the stack — see {!Pm_chan.Rpc_chan.create_server}. *)
val create_server :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  stack_path:string ->
  port:int ->
  procedures:(string * handler) list ->
  Pm_obj.Instance.t

(** [create_client api dom ~stack_path ~port ~server ?max_polls ()] makes
    a client bound to local [port] talking to [server = (addr, port)].
    [max_polls] bounds the yield-poll loop (default 10000). *)
val create_client :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  stack_path:string ->
  port:int ->
  server:int * int ->
  ?max_polls:int ->
  unit ->
  Pm_obj.Instance.t

(** [create_client_via api dom ~transport ()] makes a client whose
    requests ride [transport] — any instance exporting ["rpc.transport"]
    with [call(blob) -> blob], e.g. a shared-memory channel endpoint
    ({!Pm_chan.Rpc_chan.client}) — instead of the protocol stack. Wire
    format and failure propagation are identical; only the carrier
    differs. *)
val create_client_via :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  transport:Pm_obj.Instance.t ->
  unit ->
  Pm_obj.Instance.t

(** [add_measurement client] adds the ["rpc.measure"] interface —
    [calls() -> int] and [cycles() -> int] — to an existing client
    instance. Existing bindings to ["rpc"] are untouched. Raises
    [Invalid_argument] if [client] is not one of ours or already has it. *)
val add_measurement : Pm_obj.Instance.t -> unit
