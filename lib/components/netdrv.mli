(** Network device driver component.

    The paper's running example of a shared kernel component: the driver
    allocates the NIC's register window through the I/O-space service
    ("device drivers use this service to allocate I/O space and map in the
    device registers into their protection domain"), hands the device
    DMA buffers, and turns receive interrupts into pop-up threads that
    push packets to an attached sink (normally the protocol stack).

    Exported interface ["netdev"]:
    - [send(frame:blob) -> unit] — transmit a raw frame
    - [attach(path:str) -> unit] — bind the rx sink by name; the sink must
      export ["stack"] with [rx(blob)]
    - [detach() -> unit]
    - [stats() -> (rx:int, tx:int)]
    - [mtu() -> int]
    - [dropped() -> int] — rx packets the device dropped for want of
      buffers *)

type config = {
  rx_buffers : int;  (** DMA receive buffers to give the device *)
  tx_slots : int;
      (** tx staging pages / max DMAs kept in flight (<= [Nic.tx_slots]).
          The send path posts directly only on an idle ring; the tx_done
          interrupt is the sole writer while DMAs are in flight, refilling
          every free slot from the in-order backlog. *)
  loopback : bool;  (** transmitted frames are re-injected (testing/RPC) *)
  io_sharing : Pm_nucleus.Vmem.sharing;
}

val default_config : config

(** [create api dom ?config ()] builds the driver in [dom]: allocates the
    I/O grant and buffers, enables the device, and registers the pop-up
    interrupt handler. *)
val create :
  Pm_nucleus.Api.t -> Pm_nucleus.Domain.t -> ?config:config -> unit -> Pm_obj.Instance.t
