(** Protocol stack component.

    The paper's archetypal relocatable component ("protocol stack
    implementations that are shared between multiple non-cooperating
    users"): three layer objects — framer, network, transport — plus a
    controller, assembled into a [Dynamic] composition so any layer can be
    swapped at run time.

    The composition exports one interface, ["stack"]:
    - [rx(frame:blob) -> unit] — entry point the network driver calls
    - [send(dst:int, sport:int, dport:int, payload:blob) -> unit]
    - [bind_port(port:int) -> unit], [unbind_port(port:int) -> unit]
    - [recv(port:int) -> list] — drain the port's mailbox; each element is
      [Pair(Pair(src, sport), payload)]
    - [pending(port:int) -> int]
    - [stats() -> list] — [rx_ok; rx_dropped; tx; rx_filtered]
    - [set_filter(code:blob, sandboxed:bool) -> unit] — download a
      bytecode packet filter ({!Pm_vm}); it runs over every received raw
      frame, dropping those it returns 0 for. With [sandboxed], the code
      is SFI-rewritten first (for uncertified filters); otherwise it runs
      raw, which is only safe for certified filters
    - [clear_filter() -> unit]
    - [address() -> int]
    - [attach_port(port:int, sink:handle) -> unit] — route the bound
      port's deliveries to [sink]'s ["netsink"] interface
      ([deliver(src:int, sport:int, payload:blob)]) instead of the
      mailbox; {!Pm_net} uses this to feed each port's receive ring
    - [detach_port(port:int) -> unit] — back to mailbox delivery

    Addresses are 16-bit and double as link-layer addresses; [0xffff]
    broadcasts. The driver is bound by name on first use, so load order
    does not matter. *)

(** [create api dom ~addr ~driver_path] builds the stack composition in
    [dom]. *)
val create :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  addr:int ->
  driver_path:string ->
  Pm_obj.Composite.t

(** [replace_layer comp name inst] swaps a layer ("framer", "net",
    "transport"); the replacement must export ["layer"]. *)
val replace_layer : Pm_obj.Composite.t -> string -> Pm_obj.Instance.t -> unit

(** [layer_names] — the replaceable children. *)
val layer_names : string list

(** The network-layer protocol number the transport layer uses. *)
val proto_transport : int
