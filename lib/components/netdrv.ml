module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Vmem = Pm_nucleus.Vmem
module Events = Pm_nucleus.Events
module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Nic = Pm_machine.Nic
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx
module Invoke = Pm_obj.Invoke
module Path = Pm_names.Path

type config = {
  rx_buffers : int;
  tx_slots : int;
  loopback : bool;
  io_sharing : Vmem.sharing;
}

let default_config =
  { rx_buffers = 8; tx_slots = 8; loopback = false; io_sharing = Vmem.Exclusive }

(* NIC register map (see Pm_machine.Nic) *)
let reg_ctrl = 0
let reg_status = 1
let reg_rx_free = 2
let reg_rx_addr = 3
let reg_rx_len = 4
let reg_tx_addr = 5
let reg_tx_len = 6
let reg_tx_go = 7
let reg_rx_dropped = 8
let reg_tx_free = 9

let ctrl_rx = 1
let ctrl_tx = 2
let ctrl_irq = 4
let ctrl_loopback = 8

let status_rx = 1
let status_tx_done = 2

type state = {
  api : Api.t;
  dom : Domain.t;
  grant : Vmem.io_grant;
  buf_vaddr_of_phys : (int, int) Hashtbl.t;
  (* tx staging pages, used round-robin; a page is reused only after
     [Array.length tx_vaddrs] later stagings, by which time its DMA (FIFO
     on the device) has completed *)
  tx_vaddrs : int array;
  mutable tx_next : int;
  mutable sink : Instance.t option;
  mutable rx_count : int;
  mutable tx_count : int;
  (* Single-writer discipline on the device's tx descriptor ring: [send]
     posts directly only when the ring is idle; while DMAs are in flight,
     the tx_done interrupt alone stages frames (from the backlog, in
     order), so there is exactly one writer at any time and no frame
     reordering. *)
  mutable tx_inflight : int;
  tx_backlog : Bytes.t Queue.t;
}

(* Run [f] with the driver's MMU context current (I/O grants are checked
   against the running context). *)
let in_domain st f =
  let mmu = Machine.mmu st.api.Api.machine in
  let prev = Mmu.current_context mmu in
  if prev = st.dom.Domain.id then f ()
  else begin
    Mmu.switch_context mmu st.dom.Domain.id;
    Fun.protect ~finally:(fun () -> Mmu.switch_context mmu prev) f
  end

let stage_tx st ctx data =
  let vmem = st.api.Api.vmem in
  let len = Bytes.length data in
  let vaddr = st.tx_vaddrs.(st.tx_next) in
  st.tx_next <- (st.tx_next + 1) mod Array.length st.tx_vaddrs;
  Machine.write_string st.api.Api.machine st.dom.Domain.id vaddr
    (Bytes.to_string data);
  Call_ctx.note_access ctx len;
  let phys = Vmem.phys_of vmem st.dom ~vaddr in
  Vmem.io_write vmem st.grant ~reg:reg_tx_addr phys;
  Vmem.io_write vmem st.grant ~reg:reg_tx_len len;
  Vmem.io_write vmem st.grant ~reg:reg_tx_go 1;
  st.tx_inflight <- st.tx_inflight + 1;
  st.tx_count <- st.tx_count + 1

(* Interrupt body: drain completed receive DMA, push frames to the sink,
   recycle buffers, acknowledge transmit completions. *)
let service_interrupt st () =
  let vmem = st.api.Api.vmem in
  let ctx = Api.ctx st.api st.dom in
  let rec drain () =
    let status = Vmem.io_read vmem st.grant ~reg:reg_status in
    if status land status_tx_done <> 0 then begin
      Vmem.io_write vmem st.grant ~reg:reg_status status_tx_done;
      st.tx_inflight <- max 0 (st.tx_inflight - 1);
      (* refill every free descriptor slot from the backlog, keeping
         several DMAs in flight (empty backlog touches no registers) *)
      let rec refill () =
        if
          (not (Queue.is_empty st.tx_backlog))
          && st.tx_inflight < Array.length st.tx_vaddrs
          && Vmem.io_read vmem st.grant ~reg:reg_tx_free > 0
        then begin
          stage_tx st ctx (Queue.pop st.tx_backlog);
          refill ()
        end
      in
      refill ()
    end;
    if status land status_rx <> 0 then begin
      let phys = Vmem.io_read vmem st.grant ~reg:reg_rx_addr in
      let len = Vmem.io_read vmem st.grant ~reg:reg_rx_len in
      match Hashtbl.find_opt st.buf_vaddr_of_phys phys with
      | None ->
        (* not one of ours: ack and drop *)
        Vmem.io_write vmem st.grant ~reg:reg_status status_rx;
        drain ()
      | Some vaddr ->
        let data =
          Machine.read_string st.api.Api.machine st.dom.Domain.id vaddr len
        in
        Call_ctx.note_access ctx len;
        (* ack (pops the descriptor) and recycle the buffer *)
        Vmem.io_write vmem st.grant ~reg:reg_status status_rx;
        Vmem.io_write vmem st.grant ~reg:reg_rx_free phys;
        st.rx_count <- st.rx_count + 1;
        (match st.sink with
        | None -> ()
        | Some sink ->
          (match
             Invoke.call ctx sink ~iface:"stack" ~meth:"rx"
               [ Value.Blob (Bytes.of_string data) ]
           with
          | Ok _ -> ()
          | Error e ->
            Logs.warn (fun m -> m "netdrv: sink rx failed: %s" (Oerror.to_string e))));
        drain ()
    end
  in
  drain ()

let send st ctx data =
  let len = Bytes.length data in
  if len > Nic.mtu then Error (Oerror.Fault "netdrv: frame exceeds MTU")
  else begin
    in_domain st (fun () ->
        if st.tx_inflight > 0 then begin
          (* ring active: copy into the backlog; the tx_done interrupt
             stages it onto the wire, in order *)
          Call_ctx.note_access ctx len;
          Queue.push (Bytes.copy data) st.tx_backlog
        end
        else stage_tx st ctx data;
        Ok Value.Unit)
  end

let create api dom ?(config = default_config) () =
  if config.rx_buffers <= 0 then invalid_arg "Netdrv.create: need rx buffers";
  if config.tx_slots <= 0 || config.tx_slots > Nic.tx_slots then
    invalid_arg "Netdrv.create: bad tx_slots";
  let vmem = api.Api.vmem in
  let grant = Vmem.alloc_io vmem dom ~device:"nic" ~sharing:config.io_sharing in
  let buf_vaddr_of_phys = Hashtbl.create 16 in
  (* one page per rx buffer plus one staging page per tx slot *)
  let tx_vaddrs =
    Array.init config.tx_slots (fun _ ->
        Vmem.alloc_pages vmem dom ~count:1 ~sharing:Vmem.Exclusive)
  in
  let st =
    { api; dom; grant; buf_vaddr_of_phys; tx_vaddrs; tx_next = 0; sink = None;
      rx_count = 0; tx_count = 0; tx_inflight = 0; tx_backlog = Queue.create () }
  in
  in_domain st (fun () ->
      for _ = 1 to config.rx_buffers do
        let vaddr = Vmem.alloc_pages vmem dom ~count:1 ~sharing:Vmem.Exclusive in
        let phys = Vmem.phys_of vmem dom ~vaddr in
        Hashtbl.replace buf_vaddr_of_phys phys vaddr;
        Vmem.io_write vmem grant ~reg:reg_rx_free phys
      done;
      let ctrl =
        ctrl_rx lor ctrl_tx lor ctrl_irq
        lor if config.loopback then ctrl_loopback else 0
      in
      Vmem.io_write vmem grant ~reg:reg_ctrl ctrl);
  (* redirect the NIC interrupt (line 1 by boot convention) to a pop-up
     thread in the driver's domain *)
  ignore
    (Events.register_popup api.Api.events (Events.Irq 1) ~domain:dom
       ~sched:api.Api.sched ~priority:0 (fun _ -> service_interrupt st ()));
  let send_m ctx = function
    | [ Value.Blob data ] -> send st ctx data
    | _ -> Error (Oerror.Type_error "send(blob)")
  in
  let attach_m _ctx = function
    | [ Value.Str path ] ->
      (match Api.bind api dom (Path.of_string path) with
      | Ok sink ->
        st.sink <- Some sink;
        Ok Value.Unit
      | Error e ->
        Error (Oerror.Fault (Pm_nucleus.Directory.bind_error_to_string e)))
    | _ -> Error (Oerror.Type_error "attach(str)")
  in
  let detach_m _ctx = function
    | [] ->
      st.sink <- None;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "detach()")
  in
  let stats_m _ctx = function
    | [] -> Ok (Value.Pair (Value.Int st.rx_count, Value.Int st.tx_count))
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let mtu_m _ctx = function
    | [] -> Ok (Value.Int Nic.mtu)
    | _ -> Error (Oerror.Type_error "mtu()")
  in
  let dropped_m _ctx = function
    | [] ->
      in_domain st (fun () ->
          Ok (Value.Int (Vmem.io_read vmem st.grant ~reg:reg_rx_dropped)))
    | _ -> Error (Oerror.Type_error "dropped()")
  in
  let iface =
    Iface.make ~name:"netdev"
      [
        Iface.meth ~name:"send" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tunit send_m;
        Iface.meth ~name:"attach" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit attach_m;
        Iface.meth ~name:"detach" ~args:[] ~ret:Vtype.Tunit detach_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tpair (Vtype.Tint, Vtype.Tint))
          stats_m;
        Iface.meth ~name:"mtu" ~args:[] ~ret:Vtype.Tint mtu_m;
        Iface.meth ~name:"dropped" ~args:[] ~ret:Vtype.Tint dropped_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"toolbox.netdrv" ~domain:dom.Domain.id
    [ iface ]
