(** Interposing agents.

    "Building an interposing agent for a network device,
    [/shared/network], consists of building an interposing object (i.e.,
    one that exports a superset of the original object's interfaces,
    reimplements those methods it sees fit and forwards the others to the
    original object) and replace the object handle in the name space."

    {!wrap} builds the interposing object: every interface of the target
    is re-exported with forwarding methods, optional call/result hooks
    observe traffic, optional overrides reimplement chosen methods, and a
    ["monitor"] interface (the superset part) exposes counters. {!attach}
    swaps it into the name space. *)

(** Called before each forwarded invocation. *)
type call_hook = iface:string -> meth:string -> Pm_obj.Value.t list -> unit

(** Called after, with the result. *)
type result_hook =
  iface:string ->
  meth:string ->
  Pm_obj.Value.t list ->
  (Pm_obj.Value.t, Pm_obj.Oerror.t) result ->
  unit

(** [wrap api dom ~target ?on_call ?on_result ?overrides ()] builds the
    agent in [dom]. [overrides] entries are
    [(iface, method, replacement_impl)]; overridden methods do not
    forward (the replacement may itself invoke [target]). The ["monitor"]
    interface exports [calls() -> int], [blob_bytes() -> int] and
    [reset() -> unit]. *)
val wrap :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  target:Pm_obj.Instance.t ->
  ?on_call:call_hook ->
  ?on_result:result_hook ->
  ?overrides:(string * string * Pm_obj.Iface.impl) list ->
  unit ->
  Pm_obj.Instance.t

(** [attach api ~path ~agent] replaces the handle at [path] with the
    agent, returning the previous instance. All future binds resolve to
    the agent.

    The paper's superset rule is enforced: the agent must re-export
    every interface of the instance currently at [path] with compatible
    method signatures ({!Pm_check.Subsume}); a non-superset agent raises
    {!Pm_obj.Oerror.Error} with [Not_superset] before anything is
    swapped. Path errors still come back as [Error _]. *)
val attach :
  Pm_nucleus.Api.t ->
  path:string ->
  agent:Pm_obj.Instance.t ->
  (Pm_obj.Instance.t, string) result

(** [packet_monitor api dom ~target] is a ready-made monitoring agent for
    a ["netdev"] or ["stack"] object: counts calls and the bytes of every
    blob argument that passes through. *)
val packet_monitor :
  Pm_nucleus.Api.t -> Pm_nucleus.Domain.t -> target:Pm_obj.Instance.t -> Pm_obj.Instance.t
