module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Call_ctx = Pm_obj.Call_ctx
module Clock = Pm_machine.Clock
module Path = Pm_names.Path
module Scheduler = Pm_threads.Scheduler

type handler = Call_ctx.t -> bytes -> (bytes, string) result

let fault msg = Error (Oerror.Fault msg)

(* --- wire encoding ------------------------------------------------- *)

let get32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let set32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let encode_request ~id ~rport ~name payload =
  let nlen = String.length name in
  if nlen > 255 then invalid_arg "Rpc: procedure name too long";
  let b = Bytes.create (7 + nlen + Bytes.length payload) in
  set32 b 0 id;
  set16 b 4 rport;
  Bytes.set b 6 (Char.chr nlen);
  Bytes.blit_string name 0 b 7 nlen;
  Bytes.blit payload 0 b (7 + nlen) (Bytes.length payload);
  b

let decode_request b =
  if Bytes.length b < 7 then Error "rpc: short request"
  else begin
    let id = get32 b 0 and rport = get16 b 4 and nlen = Char.code (Bytes.get b 6) in
    if Bytes.length b < 7 + nlen then Error "rpc: truncated name"
    else begin
      let name = Bytes.sub_string b 7 nlen in
      let payload = Bytes.sub b (7 + nlen) (Bytes.length b - 7 - nlen) in
      Ok (id, rport, name, payload)
    end
  end

let status_ok = 0
let status_error = 1

let encode_response ~id ~status payload =
  let b = Bytes.create (5 + Bytes.length payload) in
  set32 b 0 id;
  Bytes.set b 4 (Char.chr status);
  Bytes.blit payload 0 b 5 (Bytes.length payload);
  b

let decode_response b =
  if Bytes.length b < 5 then Error "rpc: short response"
  else
    Ok (get32 b 0, Char.code (Bytes.get b 4), Bytes.sub b 5 (Bytes.length b - 5))

(* --- server --------------------------------------------------------- *)

(* One classic-wire exchange as a raw [handler]: decode the request,
   dispatch the procedure table, encode the response (application status
   inside, like the stack-based server sends). This is what a channel
   carrier mounts as its [raw] hook to give [create_server] a
   channel-backed mode — see {!Pm_chan.Rpc_chan.create_server}. *)
let raw_handler ~procedures : handler =
 fun ctx req ->
  match decode_request req with
  | Error e -> Error e
  | Ok (id, _rport, name, payload) ->
    (* procedure-table dispatch *)
    Call_ctx.charge ctx ctx.Call_ctx.costs.Pm_machine.Cost.indirect_call;
    let status, result =
      match List.assoc_opt name procedures with
      | None -> (status_error, Bytes.of_string ("no such procedure " ^ name))
      | Some h ->
        (match h ctx payload with
        | Ok r -> (status_ok, r)
        | Error e -> (status_error, Bytes.of_string e))
    in
    Ok (encode_response ~id ~status result)

let stack_call ctx stack meth args = Invoke.call ctx stack ~iface:"stack" ~meth args

let create_server api dom ~stack_path ~port ~procedures =
  let stack = Api.bind_exn api dom (Path.of_string stack_path) in
  let ctx0 = Api.ctx api dom in
  (match stack_call ctx0 stack "bind_port" [ Value.Int port ] with
  | Ok _ -> ()
  | Error e -> failwith ("Rpc.create_server: " ^ Oerror.to_string e));
  let requests = ref 0 and failures = ref 0 in
  let handle_one ctx = function
    | Value.Pair (Value.Pair (Value.Int src, Value.Int _sport), Value.Blob req) ->
      (match decode_request req with
      | Error e ->
        incr failures;
        Logs.warn (fun m -> m "rpc server: %s" e)
      | Ok (id, rport, name, payload) ->
        incr requests;
        let status, result =
          match List.assoc_opt name procedures with
          | None ->
            incr failures;
            (status_error, Bytes.of_string ("no such procedure " ^ name))
          | Some h ->
            (match h ctx payload with
            | Ok r -> (status_ok, r)
            | Error e ->
              incr failures;
              (status_error, Bytes.of_string e))
        in
        let resp = encode_response ~id ~status result in
        (match
           stack_call ctx stack "send"
             [ Value.Int src; Value.Int port; Value.Int rport; Value.Blob resp ]
         with
        | Ok _ -> ()
        | Error e ->
          incr failures;
          Logs.warn (fun m -> m "rpc server: reply failed: %s" (Oerror.to_string e))))
    | _ ->
      incr failures;
      Logs.warn (fun m -> m "rpc server: malformed mailbox entry")
  in
  let poll_m ctx = function
    | [] ->
      (match stack_call ctx stack "recv" [ Value.Int port ] with
      | Ok (Value.List entries) ->
        List.iter (handle_one ctx) entries;
        Ok (Value.Int (List.length entries))
      | Ok _ -> fault "rpc server: recv shape"
      | Error e -> Error e)
    | _ -> Error (Oerror.Type_error "poll()")
  in
  let requests_m _ctx = function
    | [] -> Ok (Value.Int !requests)
    | _ -> Error (Oerror.Type_error "requests()")
  in
  let failures_m _ctx = function
    | [] -> Ok (Value.Int !failures)
    | _ -> Error (Oerror.Type_error "failures()")
  in
  let iface =
    Iface.make ~name:"rpc.server"
      [
        Iface.meth ~name:"poll" ~args:[] ~ret:Vtype.Tint poll_m;
        Iface.meth ~name:"requests" ~args:[] ~ret:Vtype.Tint requests_m;
        Iface.meth ~name:"failures" ~args:[] ~ret:Vtype.Tint failures_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"toolbox.rpc_server"
    ~domain:dom.Domain.id [ iface ]

(* --- client --------------------------------------------------------- *)

type client_state = {
  mutable next_id : int;
  pending : (int, int * bytes) Hashtbl.t; (* id -> status, payload *)
  mutable calls : int;
  mutable cycles : int;
}

(* measurement state reachable from a live client instance, keyed by
   handle, so the measurement interface can be added after the fact *)
let client_states : (int, client_state) Hashtbl.t = Hashtbl.create 8

let create_client api dom ~stack_path ~port ~server ?(max_polls = 10_000) () =
  let server_addr, server_port = server in
  let stack = Api.bind_exn api dom (Path.of_string stack_path) in
  let ctx0 = Api.ctx api dom in
  (match stack_call ctx0 stack "bind_port" [ Value.Int port ] with
  | Ok _ -> ()
  | Error e -> failwith ("Rpc.create_client: " ^ Oerror.to_string e));
  let st = { next_id = 1; pending = Hashtbl.create 8; calls = 0; cycles = 0 } in
  let drain_mailbox ctx =
    match stack_call ctx stack "recv" [ Value.Int port ] with
    | Ok (Value.List entries) ->
      List.iter
        (fun entry ->
          match entry with
          | Value.Pair (_, Value.Blob resp) ->
            (match decode_response resp with
            | Ok (id, status, payload) -> Hashtbl.replace st.pending id (status, payload)
            | Error e -> Logs.warn (fun m -> m "rpc client: %s" e))
          | _ -> Logs.warn (fun m -> m "rpc client: malformed mailbox entry"))
        entries;
      Ok ()
    | Ok _ -> Error (Oerror.Fault "rpc client: recv shape")
    | Error e -> Error e
  in
  let call_m (ctx : Call_ctx.t) = function
    | [ Value.Str name; Value.Blob args ] ->
      let started = Clock.now ctx.Call_ctx.clock in
      let id = st.next_id in
      st.next_id <- id + 1;
      let req = encode_request ~id ~rport:port ~name args in
      let ( let* ) = Result.bind in
      let* _ =
        stack_call ctx stack "send"
          [ Value.Int server_addr; Value.Int port; Value.Int server_port;
            Value.Blob req ]
      in
      let rec await polls =
        match Hashtbl.find_opt st.pending id with
        | Some (status, payload) ->
          Hashtbl.remove st.pending id;
          st.calls <- st.calls + 1;
          st.cycles <- st.cycles + (Clock.now ctx.Call_ctx.clock - started);
          if status = status_ok then Ok (Value.Blob payload)
          else fault ("rpc: remote error: " ^ Bytes.to_string payload)
        | None ->
          if polls >= max_polls then fault "rpc: timed out awaiting response"
          else begin
            let* () = drain_mailbox ctx in
            if Hashtbl.mem st.pending id then await polls
            else begin
              Scheduler.yield ();
              await (polls + 1)
            end
          end
      in
      await 0
    | _ -> Error (Oerror.Type_error "call(str, blob)")
  in
  let iface =
    Iface.make ~name:"rpc"
      [
        Iface.meth ~name:"call" ~args:[ Vtype.Tstr; Vtype.Tblob ] ~ret:Vtype.Tblob
          call_m;
      ]
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"toolbox.rpc_client"
      ~domain:dom.Domain.id [ iface ]
  in
  Hashtbl.replace client_states (Instance.handle inst) st;
  inst

(* A client whose requests ride an arbitrary transport object — e.g. a
   shared-memory channel's ["rpc.transport"] (Rpc_chan) — instead of the
   protocol stack. Same wire format, same failure propagation; only the
   carrier differs. *)
let create_client_via api dom ~transport () =
  let st = { next_id = 1; pending = Hashtbl.create 8; calls = 0; cycles = 0 } in
  let call_m (ctx : Call_ctx.t) = function
    | [ Value.Str name; Value.Blob args ] ->
      let started = Clock.now ctx.Call_ctx.clock in
      let id = st.next_id in
      st.next_id <- id + 1;
      let req = encode_request ~id ~rport:0 ~name args in
      (match
         Invoke.call ctx transport ~iface:"rpc.transport" ~meth:"call"
           [ Value.Blob req ]
       with
      | Error e -> Error e
      | Ok (Value.Blob resp) ->
        (match decode_response resp with
        | Error e -> fault e
        | Ok (rid, status, payload) ->
          if rid <> id then fault "rpc: response id mismatch"
          else begin
            st.calls <- st.calls + 1;
            st.cycles <- st.cycles + (Clock.now ctx.Call_ctx.clock - started);
            if status = status_ok then Ok (Value.Blob payload)
            else fault ("rpc: remote error: " ^ Bytes.to_string payload)
          end)
      | Ok _ -> fault "rpc: transport shape")
    | _ -> Error (Oerror.Type_error "call(str, blob)")
  in
  let iface =
    Iface.make ~name:"rpc"
      [
        Iface.meth ~name:"call" ~args:[ Vtype.Tstr; Vtype.Tblob ] ~ret:Vtype.Tblob
          call_m;
      ]
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"toolbox.rpc_client"
      ~domain:dom.Domain.id [ iface ]
  in
  Hashtbl.replace client_states (Instance.handle inst) st;
  inst

let add_measurement client =
  match Hashtbl.find_opt client_states (Instance.handle client) with
  | None -> invalid_arg "Rpc.add_measurement: not an rpc client"
  | Some st ->
    let calls_m _ctx = function
      | [] -> Ok (Value.Int st.calls)
      | _ -> Error (Oerror.Type_error "calls()")
    in
    let cycles_m _ctx = function
      | [] -> Ok (Value.Int st.cycles)
      | _ -> Error (Oerror.Type_error "cycles()")
    in
    let iface =
      Iface.make ~name:"rpc.measure"
        [
          Iface.meth ~name:"calls" ~args:[] ~ret:Vtype.Tint calls_m;
          Iface.meth ~name:"cycles" ~args:[] ~ret:Vtype.Tint cycles_m;
        ]
    in
    Instance.add_interface client iface
