module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Directory = Pm_nucleus.Directory
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Path = Pm_names.Path
module Namespace = Pm_names.Namespace
module Subsume = Pm_check.Subsume

type call_hook = iface:string -> meth:string -> Value.t list -> unit

type result_hook =
  iface:string -> meth:string -> Value.t list -> (Value.t, Oerror.t) result -> unit

let rec blob_bytes_of = function
  | Value.Blob b -> Bytes.length b
  | Value.Str _ | Value.Int _ | Value.Bool _ | Value.Unit | Value.Handle _ -> 0
  | Value.Pair (a, b) -> blob_bytes_of a + blob_bytes_of b
  | Value.List xs -> List.fold_left (fun acc v -> acc + blob_bytes_of v) 0 xs

let wrap api dom ~target ?on_call ?on_result ?(overrides = []) () =
  let calls = ref 0 and blob_bytes = ref 0 in
  let observe args =
    incr calls;
    blob_bytes := !blob_bytes + List.fold_left (fun acc v -> acc + blob_bytes_of v) 0 args
  in
  let forwarded iface_name (m : Iface.meth) =
    let override =
      List.find_map
        (fun (i, meth, impl) ->
          if String.equal i iface_name && String.equal meth m.Iface.mname then Some impl
          else None)
        overrides
    in
    let impl ctx args =
      observe args;
      (match on_call with
      | Some h -> h ~iface:iface_name ~meth:m.Iface.mname args
      | None -> ());
      let result =
        match override with
        | Some impl -> impl ctx args
        | None -> Invoke.call ctx target ~iface:iface_name ~meth:m.Iface.mname args
      in
      (match on_result with
      | Some h -> h ~iface:iface_name ~meth:m.Iface.mname args result
      | None -> ());
      result
    in
    { m with Iface.impl }
  in
  let agent_iface (i : Iface.t) =
    Iface.make ~version:i.Iface.version ~name:i.Iface.name
      (List.map (forwarded i.Iface.name) i.Iface.methods)
  in
  let monitor =
    Iface.make ~name:"monitor"
      [
        Iface.meth ~name:"calls" ~args:[] ~ret:Vtype.Tint (fun _ctx -> function
          | [] -> Ok (Value.Int !calls)
          | _ -> Error (Oerror.Type_error "calls()"));
        Iface.meth ~name:"blob_bytes" ~args:[] ~ret:Vtype.Tint (fun _ctx -> function
          | [] -> Ok (Value.Int !blob_bytes)
          | _ -> Error (Oerror.Type_error "blob_bytes()"));
        Iface.meth ~name:"reset" ~args:[] ~ret:Vtype.Tunit (fun _ctx -> function
          | [] ->
            calls := 0;
            blob_bytes := 0;
            Ok Value.Unit
          | _ -> Error (Oerror.Type_error "reset()"));
      ]
  in
  Instance.create api.Api.registry
    ~class_name:("interposer:" ^ target.Instance.class_name)
    ~domain:dom.Domain.id
    (List.map agent_iface target.Instance.interfaces @ [ monitor ])

let attach api ~path ~agent =
  let dir = api.Api.directory in
  let p = Path.of_string path in
  (* the paper's superset rule, enforced: the agent must re-export every
     interface (method by method, argument by argument) of the object it
     replaces — anything less would break existing importers silently *)
  (match Namespace.lookup (Directory.namespace dir) p with
  | Error _ -> () (* a missing path is reported by [replace] below *)
  | Ok handle ->
    (match Directory.resolve_handle dir handle with
    | None -> ()
    | Some current ->
      (match Subsume.check_instances ~wrapped:current ~agent with
      | Ok () -> ()
      | Error detail -> Oerror.fail (Oerror.Not_superset detail))));
  match Directory.replace dir p agent with
  | Ok old -> Ok old
  | Error e -> Error (Directory.bind_error_to_string e)

let packet_monitor api dom ~target = wrap api dom ~target ()
