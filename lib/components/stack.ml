module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Composite = Pm_obj.Composite
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Path = Pm_names.Path

let proto_transport = 17
let default_ttl = 16
let broadcast = 0xffff
let layer_names = [ "framer"; "net"; "transport" ]

let fault msg = Error (Oerror.Fault msg)

(* ------------------------------------------------------------------ *)
(* Layer objects: each exports interface "layer" with encode/decode.    *)
(* ------------------------------------------------------------------ *)

let framer_layer api dom =
  let encode ctx = function
    | [ Value.Int dst; Value.Int src; Value.Blob payload ] ->
      Ok (Value.Blob (Wire.Frame.build ctx ~dst ~src payload))
    | _ -> Error (Oerror.Type_error "encode(dst, src, payload)")
  in
  let decode ctx = function
    | [ Value.Blob raw ] ->
      (match Wire.Frame.parse ctx raw with
      | Ok { Wire.Frame.dst; src; payload } ->
        Ok (Value.Pair (Value.Pair (Value.Int dst, Value.Int src), Value.Blob payload))
      | Error e -> fault e)
    | _ -> Error (Oerror.Type_error "decode(blob)")
  in
  let iface =
    Iface.make ~name:"layer"
      [
        Iface.meth ~name:"encode" ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tblob encode;
        Iface.meth ~name:"decode" ~args:[ Vtype.Tblob ]
          ~ret:(Vtype.Tpair (Vtype.Tpair (Vtype.Tint, Vtype.Tint), Vtype.Tblob))
          decode;
      ]
  in
  Instance.create api.Api.registry ~class_name:"stack.framer" ~domain:dom.Domain.id
    [ iface ]

let net_layer api dom =
  let encode ctx = function
    | [ Value.Int src; Value.Int dst; Value.Int proto; Value.Blob payload ] ->
      Ok (Value.Blob (Wire.Net.build ctx ~src ~dst ~ttl:default_ttl ~proto payload))
    | _ -> Error (Oerror.Type_error "encode(src, dst, proto, payload)")
  in
  let decode ctx = function
    | [ Value.Blob raw ] ->
      (match Wire.Net.parse ctx raw with
      | Ok { Wire.Net.src; dst; ttl = _; proto; payload } ->
        Ok
          (Value.Pair
             ( Value.Pair (Value.Int src, Value.Int dst),
               Value.Pair (Value.Int proto, Value.Blob payload) ))
      | Error e -> fault e)
    | _ -> Error (Oerror.Type_error "decode(blob)")
  in
  let iface =
    Iface.make ~name:"layer"
      [
        Iface.meth ~name:"encode"
          ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tint; Vtype.Tblob ] ~ret:Vtype.Tblob
          encode;
        Iface.meth ~name:"decode" ~args:[ Vtype.Tblob ]
          ~ret:
            (Vtype.Tpair
               (Vtype.Tpair (Vtype.Tint, Vtype.Tint), Vtype.Tpair (Vtype.Tint, Vtype.Tblob)))
          decode;
      ]
  in
  Instance.create api.Api.registry ~class_name:"stack.net" ~domain:dom.Domain.id [ iface ]

let transport_layer api dom =
  let encode ctx = function
    | [ Value.Int sport; Value.Int dport; Value.Blob payload ] ->
      Ok (Value.Blob (Wire.Transport.build ctx ~sport ~dport payload))
    | _ -> Error (Oerror.Type_error "encode(sport, dport, payload)")
  in
  let decode ctx = function
    | [ Value.Blob raw ] ->
      (match Wire.Transport.parse ctx raw with
      | Ok { Wire.Transport.sport; dport; payload } ->
        Ok
          (Value.Pair (Value.Pair (Value.Int sport, Value.Int dport), Value.Blob payload))
      | Error e -> fault e)
    | _ -> Error (Oerror.Type_error "decode(blob)")
  in
  let iface =
    Iface.make ~name:"layer"
      [
        Iface.meth ~name:"encode" ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tblob encode;
        Iface.meth ~name:"decode" ~args:[ Vtype.Tblob ]
          ~ret:(Vtype.Tpair (Vtype.Tpair (Vtype.Tint, Vtype.Tint), Vtype.Tblob))
          decode;
      ]
  in
  Instance.create api.Api.registry ~class_name:"stack.transport" ~domain:dom.Domain.id
    [ iface ]

(* ------------------------------------------------------------------ *)
(* Controller                                                           *)
(* ------------------------------------------------------------------ *)

(* One bound port's demux entry. [sink], when set, routes decoded
   payloads to the sink's "netsink".deliver instead of the mailbox —
   how a channel-backed receive path (Pm_net) hooks each bound port. *)
type conn = {
  mailbox : Value.t Queue.t;
  mutable sink : Instance.t option;
}

type state = {
  api : Api.t;
  dom : Domain.t;
  addr : int;
  driver_path : Path.t;
  mutable driver : Instance.t option;
  comp : Composite.t option ref; (* set right after the composite exists *)
  (* the connection table: one O(1) probe per packet resolves both the
     binding and its delivery route *)
  conns : (int, conn) Hashtbl.t;
  mutable rx_ok : int;
  mutable rx_dropped : int;
  mutable tx : int;
  (* downloaded packet filter: runs over every raw received frame *)
  mutable filter : Pm_vm.Vm.program option;
  mutable filter_sandboxed : bool;
  (* when the attach-time verifier proved the filter, the affine fuel
     bound from its proof: runs are metered against fuel_for(frame
     length) instead of the VM's blanket default *)
  mutable filter_fuel : Pm_check.Verify.fuel_bound option;
  mutable rx_filtered : int;
}

let layer st name =
  match !(st.comp) with
  | None -> Error (Oerror.Fault "stack: composition not assembled")
  | Some comp ->
    (match Composite.child comp name with
    | Some inst -> Ok inst
    | None -> Error (Oerror.Fault ("stack: missing layer " ^ name)))

let driver st =
  match st.driver with
  | Some d when not d.Instance.revoked -> Ok d
  | _ ->
    (match Api.bind st.api st.dom st.driver_path with
    | Ok d ->
      st.driver <- Some d;
      Ok d
    | Error e ->
      Error (Oerror.Fault (Pm_nucleus.Directory.bind_error_to_string e)))

let ( let* ) = Result.bind

let drop st reason =
  st.rx_dropped <- st.rx_dropped + 1;
  Logs.debug (fun m -> m "stack: dropped packet (%s)" reason);
  Ok Value.Unit

(* Run the downloaded filter over a raw frame; [true] = keep. A raw
   (certified) filter runs on the frame in place; a sandboxed one runs on
   a copy padded to a power of two so address masking is sound. *)
let filter_accepts st ctx raw =
  match st.filter with
  | None -> true
  | Some program ->
    let mem =
      if st.filter_sandboxed then begin
        (* the window must match the size the rewrite masked for *)
        let padded =
          Bytes.make (Pm_vm.Sfi_rewrite.padded_size Pm_machine.Nic.mtu) '\000'
        in
        Bytes.blit raw 0 padded 0 (Bytes.length raw);
        Pm_vm.Vm.mem_of_bytes padded
      end
      else Pm_vm.Vm.mem_of_bytes raw
    in
    let outcome =
      match st.filter_fuel with
      | Some fb ->
        Pm_vm.Vm.run ctx ~mem
          ~fuel:(Pm_check.Verify.fuel_for fb ~len:mem.Pm_vm.Vm.size)
          program
      | None -> Pm_vm.Vm.run ctx ~mem program
    in
    (match outcome with
    | Pm_vm.Vm.Returned 0 ->
      st.rx_filtered <- st.rx_filtered + 1;
      false
    | Pm_vm.Vm.Returned _ -> true
    | Pm_vm.Vm.Wild_access _ ->
      (* a raw filter just escaped its window: this is the kernel-safety
         event certification is supposed to preclude *)
      Logs.warn (fun m -> m "stack: packet filter issued a wild access");
      st.rx_filtered <- st.rx_filtered + 1;
      false
    | Pm_vm.Vm.Vm_fault msg ->
      Logs.warn (fun m -> m "stack: packet filter fault: %s" msg);
      st.rx_filtered <- st.rx_filtered + 1;
      false)

(* Receive path: filter -> framer -> net -> transport -> mailbox. *)
let rec rx st ctx raw =
  if not (filter_accepts st ctx raw) then Ok Value.Unit
  else rx_unfiltered st ctx raw

and rx_unfiltered st ctx raw =
  let call inst meth args = Invoke.call ctx inst ~iface:"layer" ~meth args in
  let* framer = layer st "framer" in
  match call framer "decode" [ Value.Blob raw ] with
  | Error (Oerror.Fault e) -> drop st e
  | Error e -> Error e
  | Ok (Value.Pair (Value.Pair (Value.Int fdst, Value.Int _fsrc), Value.Blob np)) ->
    if fdst <> st.addr && fdst <> broadcast then drop st "frame not for us"
    else begin
      let* netl = layer st "net" in
      match call netl "decode" [ Value.Blob np ] with
      | Error (Oerror.Fault e) -> drop st e
      | Error e -> Error e
      | Ok
          (Value.Pair
            ( Value.Pair (Value.Int nsrc, Value.Int ndst),
              Value.Pair (Value.Int proto, Value.Blob tp) )) ->
        if ndst <> st.addr && ndst <> broadcast then drop st "net not for us"
        else if proto <> proto_transport then drop st "unknown protocol"
        else begin
          let* transport = layer st "transport" in
          match call transport "decode" [ Value.Blob tp ] with
          | Error (Oerror.Fault e) -> drop st e
          | Error e -> Error e
          | Ok (Value.Pair (Value.Pair (Value.Int sport, Value.Int dport), Value.Blob payload))
            ->
            (* causal tracing: the demux decision is a point on the
               current request's path (rid is ambient from the traced
               wire parse upstream); plain store, zero cycles, no event
               when tracing is off *)
            if Pm_journal.Trace.enabled () then begin
              let clock = Pm_machine.Machine.clock st.api.Api.machine in
              Pm_journal.Journal.record
                (Pm_obs.Obs.journal (Pm_machine.Clock.obs clock))
                ~kind:Pm_journal.Journal.Trace_note ~domain:st.dom.Domain.id
                ~at:(Pm_machine.Clock.now clock) ~info:dport ~detail:"demux"
            end;
            (match Hashtbl.find_opt st.conns dport with
            | None -> drop st (Printf.sprintf "port %d not bound" dport)
            | Some { sink = Some sink; _ } ->
              (match
                 Invoke.call ctx sink ~iface:"netsink" ~meth:"deliver"
                   [ Value.Int nsrc; Value.Int sport; Value.Blob payload ]
               with
              | Ok _ ->
                st.rx_ok <- st.rx_ok + 1;
                Ok Value.Unit
              | Error (Oerror.Fault e) -> drop st e
              | Error e -> Error e)
            | Some conn ->
              Queue.push
                (Value.Pair
                   (Value.Pair (Value.Int nsrc, Value.Int sport), Value.Blob payload))
                conn.mailbox;
              st.rx_ok <- st.rx_ok + 1;
              Ok Value.Unit)
          | Ok _ -> fault "stack: transport decode shape"
        end
      | Ok _ -> fault "stack: net decode shape"
    end
  | Ok _ -> fault "stack: frame decode shape"

(* Transmit path: transport -> net -> framer -> driver. *)
let send st ctx ~dst ~sport ~dport payload =
  let call inst meth args = Invoke.call ctx inst ~iface:"layer" ~meth args in
  let* transport = layer st "transport" in
  let* tp = call transport "encode" [ Value.Int sport; Value.Int dport; Value.Blob payload ] in
  let* netl = layer st "net" in
  let* np =
    call netl "encode"
      [ Value.Int st.addr; Value.Int dst; Value.Int proto_transport; tp ]
  in
  let* framer = layer st "framer" in
  let* frame = call framer "encode" [ Value.Int dst; Value.Int st.addr; np ] in
  let* drv = driver st in
  let* _ = Invoke.call ctx drv ~iface:"netdev" ~meth:"send" [ frame ] in
  st.tx <- st.tx + 1;
  Ok Value.Unit

let controller api dom st =
  let rx_m ctx = function
    | [ Value.Blob raw ] -> rx st ctx raw
    | _ -> Error (Oerror.Type_error "rx(blob)")
  in
  (* a burst of raw frames in one invocation: what a channel-backed
     receive path hands over per doorbell, amortising the crossing *)
  let rx_batch_m ctx = function
    | [ Value.List frames ] ->
      let ok =
        List.fold_left
          (fun acc v ->
            match v with
            | Value.Blob raw -> (
              match rx st ctx raw with Ok _ -> acc + 1 | Error _ -> acc)
            | _ -> acc)
          0 frames
      in
      Ok (Value.Int ok)
    | _ -> Error (Oerror.Type_error "rx_batch(list)")
  in
  let send_m ctx = function
    | [ Value.Int dst; Value.Int sport; Value.Int dport; Value.Blob payload ] ->
      send st ctx ~dst ~sport ~dport payload
    | _ -> Error (Oerror.Type_error "send(dst, sport, dport, payload)")
  in
  let bind_port_m _ctx = function
    | [ Value.Int port ] ->
      if Hashtbl.mem st.conns port then fault "port already bound"
      else begin
        Hashtbl.replace st.conns port { mailbox = Queue.create (); sink = None };
        Ok Value.Unit
      end
    | _ -> Error (Oerror.Type_error "bind_port(int)")
  in
  let unbind_port_m _ctx = function
    | [ Value.Int port ] ->
      Hashtbl.remove st.conns port;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "unbind_port(int)")
  in
  let recv_m _ctx = function
    | [ Value.Int port ] ->
      (match Hashtbl.find_opt st.conns port with
      | None -> fault "port not bound"
      | Some conn ->
        let items = List.of_seq (Queue.to_seq conn.mailbox) in
        Queue.clear conn.mailbox;
        Ok (Value.List items))
    | _ -> Error (Oerror.Type_error "recv(int)")
  in
  let pending_m _ctx = function
    | [ Value.Int port ] ->
      (match Hashtbl.find_opt st.conns port with
      | None -> fault "port not bound"
      | Some conn -> Ok (Value.Int (Queue.length conn.mailbox)))
    | _ -> Error (Oerror.Type_error "pending(int)")
  in
  let stats_m _ctx = function
    | [] ->
      Ok
        (Value.List
           [ Value.Int st.rx_ok; Value.Int st.rx_dropped; Value.Int st.tx;
             Value.Int st.rx_filtered ])
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let set_filter_m _ctx = function
    | [ Value.Blob code; Value.Bool sandboxed ] ->
      (match Pm_vm.Vm.decode (Bytes.to_string code) with
      | Error e -> fault ("stack: bad filter object code: " ^ e)
      | Ok program ->
        let program =
          if sandboxed then begin
            (* rewrite once for the padded-MTU window every sandboxed run
               will use *)
            match
              Pm_vm.Sfi_rewrite.rewrite program
                ~window_size:(Pm_vm.Sfi_rewrite.padded_size Pm_machine.Nic.mtu)
            with
            | Ok p -> Ok p
            | Error e -> Error e
          end
          else Ok program
        in
        (match program with
        | Error e -> fault ("stack: sfi rewrite failed: " ^ e)
        | Ok program ->
          st.filter <- Some program;
          st.filter_sandboxed <- sandboxed;
          (* attach-time static proof (pure, no clock cost): a raw
             filter the verifier can bound is metered against its own
             proven fuel; anything else keeps the blanket VM default *)
          st.filter_fuel <-
            (if sandboxed then None
             else
               match Pm_check.Verify.verify program with
               | Pm_check.Verify.Verified { fuel; _ } -> Some fuel
               | Pm_check.Verify.Rejected _ -> None);
          Ok Value.Unit))
    | _ -> Error (Oerror.Type_error "set_filter(blob, bool)")
  in
  let clear_filter_m _ctx = function
    | [] ->
      st.filter <- None;
      st.filter_fuel <- None;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "clear_filter()")
  in
  let address_m _ctx = function
    | [] -> Ok (Value.Int st.addr)
    | _ -> Error (Oerror.Type_error "address()")
  in
  (* route a bound port's deliveries to a sink object instead of the
     mailbox: the hook Pm_net uses to feed each port's receive ring *)
  let attach_port_m _ctx = function
    | [ Value.Int port; Value.Handle h ] ->
      (match Hashtbl.find_opt st.conns port with
      | None -> fault "port not bound"
      | Some conn ->
        (match Pm_nucleus.Directory.resolve_handle st.api.Api.directory h with
        | None -> fault "attach_port: dead sink handle"
        | Some sink ->
          conn.sink <- Some sink;
          Ok Value.Unit))
    | _ -> Error (Oerror.Type_error "attach_port(int, handle)")
  in
  let detach_port_m _ctx = function
    | [ Value.Int port ] ->
      (match Hashtbl.find_opt st.conns port with
      | Some conn -> conn.sink <- None
      | None -> ());
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "detach_port(int)")
  in
  let iface =
    Iface.make ~name:"stack"
      [
        Iface.meth ~name:"rx" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tunit rx_m;
        Iface.meth ~name:"rx_batch" ~args:[ Vtype.Tlist Vtype.Tblob ] ~ret:Vtype.Tint
          rx_batch_m;
        Iface.meth ~name:"send"
          ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tint; Vtype.Tblob ] ~ret:Vtype.Tunit
          send_m;
        Iface.meth ~name:"bind_port" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit bind_port_m;
        Iface.meth ~name:"unbind_port" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit
          unbind_port_m;
        Iface.meth ~name:"recv" ~args:[ Vtype.Tint ] ~ret:(Vtype.Tlist Vtype.Tany) recv_m;
        Iface.meth ~name:"pending" ~args:[ Vtype.Tint ] ~ret:Vtype.Tint pending_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
        Iface.meth ~name:"set_filter" ~args:[ Vtype.Tblob; Vtype.Tbool ]
          ~ret:Vtype.Tunit set_filter_m;
        Iface.meth ~name:"clear_filter" ~args:[] ~ret:Vtype.Tunit clear_filter_m;
        Iface.meth ~name:"address" ~args:[] ~ret:Vtype.Tint address_m;
        Iface.meth ~name:"attach_port" ~args:[ Vtype.Tint; Vtype.Thandle ]
          ~ret:Vtype.Tunit attach_port_m;
        Iface.meth ~name:"detach_port" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit
          detach_port_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"stack.controller" ~domain:dom.Domain.id
    [ iface ]

let create api dom ~addr ~driver_path =
  if addr < 0 || addr >= broadcast then invalid_arg "Stack.create: bad address";
  let comp_ref = ref None in
  let st =
    {
      api;
      dom;
      addr;
      driver_path = Path.of_string driver_path;
      driver = None;
      comp = comp_ref;
      conns = Hashtbl.create 64;
      rx_ok = 0;
      rx_dropped = 0;
      tx = 0;
      filter = None;
      filter_sandboxed = false;
      filter_fuel = None;
      rx_filtered = 0;
    }
  in
  let comp =
    Composite.make api.Api.registry ~class_name:"toolbox.protostack"
      ~domain:dom.Domain.id ~mode:Composite.Dynamic
      ~children:
        [
          ("framer", framer_layer api dom);
          ("net", net_layer api dom);
          ("transport", transport_layer api dom);
          ("control", controller api dom st);
        ]
      ~exports:[ { Composite.as_name = "stack"; child = "control"; iface = "stack" } ]
  in
  comp_ref := Some comp;
  comp

let replace_layer comp name inst =
  if not (List.mem name layer_names) then
    invalid_arg (Printf.sprintf "Stack.replace_layer: %S is not a layer" name);
  Composite.replace_child comp name inst
