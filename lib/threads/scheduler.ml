module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost

type state = Ready | Running | Blocked | Finished

type policy = Priority | Fifo | Lottery of int

type thread = {
  tid : int;
  name : string;
  priority : int;
  mutable state : state;
  is_popup : bool;
  domain : int option;
  mutable home : t option;
      (* scheduler the thread currently lands on when it becomes ready
         again; [None] means its creator. The SMP work-stealer re-homes
         stolen threads so their later yields and wakeups stay on the
         thief's CPU. *)
}

and t = {
  clock : Clock.t;
  costs : Cost.t;
  policy : policy;
  mutable lottery_state : int; (* xorshift state for Lottery *)
  mutable arrivals : int; (* stamp source for Fifo ordering *)
  mutable mmu : Pm_machine.Mmu.t option;
  ready : (int * int * thread * (unit -> unit)) Queue.t array;
      (* (arrival stamp, ready-at cycles, thread, continuation) per
         priority. [ready_at] is the enqueuing CPU's virtual time — a
         thief reconciles its clock to it before running the entry. *)
  mutable cur : thread option;
  mutable next_tid : int;
  mutable live : int;
  mutable spawned : int;
  mutable popups : int;
  mutable popup_fast : int;
  mutable promotions : int;
  mutable switches : int;
  mutable crashes : int;
}

type resumer = { thread : thread; resume : unit -> unit }

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : (resumer -> unit) -> unit Effect.t
  | Self : thread Effect.t

let priorities = 8

let create ?(policy = Priority) clock costs =
  {
    clock;
    costs;
    policy;
    lottery_state = (match policy with Lottery seed -> (seed lor 1) land 0x3FFFFFFF | _ -> 1);
    arrivals = 0;
    mmu = None;
    ready = Array.init priorities (fun _ -> Queue.create ());
    cur = None;
    next_tid = 1;
    live = 0;
    spawned = 0;
    popups = 0;
    popup_fast = 0;
    promotions = 0;
    switches = 0;
    crashes = 0;
  }

let set_mmu t mmu = t.mmu <- Some mmu

let check_priority p =
  if p < 0 || p >= priorities then invalid_arg "Scheduler: bad priority"

let enqueue t th fn =
  t.arrivals <- t.arrivals + 1;
  Queue.push (t.arrivals, Clock.now t.clock, th, fn) t.ready.(th.priority)

(* The scheduler a thread's next enqueue should land on: its re-homed
   target after a steal, its creator otherwise. Resolved at enqueue
   time, never captured, so a steal retargets every later wakeup. *)
let home_of t th = match th.home with Some s -> s | None -> t

let fresh_thread t ?(priority = priorities / 2) ?(name = "thread") ?domain ~is_popup () =
  check_priority priority;
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  { tid; name; priority; state = Ready; is_popup; domain; home = None }

(* A crashing thread dumps the flight recorder's tail: the last few
   traps, faults, crossings and dispatches before the crash. *)
let dump_flight t =
  Logs.warn (fun m ->
      m "flight recorder (last 8 events):@\n%s"
        (Pm_obs.Flightrec.tail_to_text (Pm_obs.Obs.flight (Clock.obs t.clock)) 8))

(* The crash itself goes into the journal (plain stores), so a replayed
   run reproduces the death in its history. *)
let record_crash t th =
  Pm_journal.Journal.record
    (Pm_obs.Obs.journal (Clock.obs t.clock))
    ~kind:Pm_journal.Journal.Crash
    ~domain:(Option.value th.domain ~default:0)
    ~at:(Clock.now t.clock) ~info:th.tid ~detail:th.name

(* Handler shared by full threads and promoted proto-threads: bookkeeping
   on return/crash, and the Yield/Suspend/Self protocol. *)
let thread_handler t th : (unit, unit) Effect.Deep.handler =
  let open Effect.Deep in
  {
    retc =
      (fun () ->
        th.state <- Finished;
        t.live <- t.live - 1);
    exnc =
      (fun exn ->
        th.state <- Finished;
        t.live <- t.live - 1;
        t.crashes <- t.crashes + 1;
        Clock.count t.clock "thread_crash";
        Logs.warn (fun m ->
            m "thread %d (%s) crashed: %s" th.tid th.name (Printexc.to_string exn));
        record_crash t th;
        dump_flight t);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, unit) continuation) ->
              th.state <- Ready;
              enqueue (home_of t th) th (fun () -> continue k ()))
        | Suspend register ->
          Some
            (fun (k : (a, unit) continuation) ->
              th.state <- Blocked;
              let resume () =
                assert (th.state = Blocked);
                th.state <- Ready;
                enqueue (home_of t th) th (fun () -> continue k ())
              in
              register { thread = th; resume })
        | Self -> Some (fun (k : (a, unit) continuation) -> continue k th)
        | _ -> None);
  }

let spawn t ?priority ?name ?domain body =
  let th = fresh_thread t ?priority ?name ?domain ~is_popup:false () in
  Clock.advance t.clock t.costs.Cost.thread_create;
  Clock.count t.clock "thread_create";
  t.live <- t.live + 1;
  t.spawned <- t.spawned + 1;
  enqueue t th (fun () -> Effect.Deep.match_with body () (thread_handler t th));
  th

(* A proto-thread runs the body immediately under a handler that, on the
   first Yield/Suspend, pays the promotion cost and books the fiber as a
   real thread; later effects in the same fiber behave like a normal
   thread's (the handler stays installed for the fiber's lifetime). *)
let popup t ?(priority = 1) ?(name = "popup") ?domain body =
  check_priority priority;
  Clock.advance t.clock t.costs.Cost.proto_thread;
  Clock.count t.clock "proto_thread";
  t.popups <- t.popups + 1;
  let th = fresh_thread t ~priority ~name ?domain ~is_popup:true () in
  let promoted = ref false in
  let promote () =
    if not !promoted then begin
      promoted := true;
      Clock.advance t.clock t.costs.Cost.promote;
      Clock.count t.clock "popup_promotion";
      t.promotions <- t.promotions + 1;
      t.live <- t.live + 1
    end
  in
  let open Effect.Deep in
  let handler : (unit, unit) handler =
    {
      retc =
        (fun () ->
          if !promoted then t.live <- t.live - 1 else t.popup_fast <- t.popup_fast + 1;
          th.state <- Finished);
      exnc =
        (fun exn ->
          if !promoted then t.live <- t.live - 1;
          th.state <- Finished;
          t.crashes <- t.crashes + 1;
          Clock.count t.clock "thread_crash";
          Logs.warn (fun m ->
              m "popup %d (%s) crashed: %s" th.tid th.name (Printexc.to_string exn));
          record_crash t th;
          dump_flight t);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                promote ();
                th.state <- Ready;
                enqueue (home_of t th) th (fun () -> continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                promote ();
                th.state <- Blocked;
                let resume () =
                  assert (th.state = Blocked);
                  th.state <- Ready;
                  enqueue (home_of t th) th (fun () -> continue k ())
                in
                register { thread = th; resume })
          | Self -> Some (fun (k : (a, unit) continuation) -> continue k th)
          | _ -> None);
    }
  in
  th.state <- Running;
  match_with body () handler;
  not !promoted

(* xorshift step, deterministic per seed; cheap and dependency-free *)
let lottery_draw t bound =
  let x = t.lottery_state in
  let x = x lxor (x lsl 13) land 0x3FFFFFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0x3FFFFFFF in
  t.lottery_state <- x;
  x mod bound

let take_by_priority t =
  let rec scan p =
    if p >= priorities then None
    else begin
      match Queue.take_opt t.ready.(p) with
      | Some entry -> Some entry
      | None -> scan (p + 1)
    end
  in
  scan 0

(* oldest stamp across every priority level *)
let take_fifo t =
  let best = ref None in
  Array.iteri
    (fun p q ->
      match Queue.peek_opt q with
      | Some (stamp, _, _, _) ->
        (match !best with
        | Some (s, _) when s <= stamp -> ()
        | _ -> best := Some (stamp, p))
      | None -> ())
    t.ready;
  match !best with Some (_, p) -> Queue.take_opt t.ready.(p) | None -> None

(* a level-p thread holds (priorities - p) tickets per queued entry *)
let take_lottery t =
  let tickets = ref 0 in
  Array.iteri
    (fun p q -> tickets := !tickets + (Queue.length q * (priorities - p)))
    t.ready;
  if !tickets = 0 then None
  else begin
    let winner = lottery_draw t !tickets in
    let acc = ref 0 in
    let chosen = ref None in
    Array.iteri
      (fun p q ->
        if !chosen = None then begin
          let weight = Queue.length q * (priorities - p) in
          if winner < !acc + weight then chosen := Some p else acc := !acc + weight
        end)
      t.ready;
    match !chosen with Some p -> Queue.take_opt t.ready.(p) | None -> None
  end

let take_ready t =
  match t.policy with
  | Priority -> take_by_priority t
  | Fifo -> take_fifo t
  | Lottery _ -> take_lottery t

let ready_count t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.ready

(* Steal the oldest ready entry from [from] and queue it on [into],
   re-homing the thread so its later yields and wakeups stay with the
   thief. Oldest-first is the classic stealing choice and independent of
   the victim's dispatch policy. Pricing (cache-line transfer of the
   queue entry) and clock reconciliation to [ready_at] belong to the SMP
   layer, which knows whose clock is whose. *)
let steal ~from ~into =
  match take_fifo from with
  | None -> None
  | Some (_, ready_at, th, fn) ->
    th.home <- Some into;
    enqueue into th fn;
    Some (ready_at, th)

let run t ?budget () =
  let dispatches = ref 0 in
  let exhausted () =
    match budget with Some b -> !dispatches >= b | None -> false
  in
  let rec loop () =
    if exhausted () then ()
    else begin
      match take_ready t with
      | None -> ()
      | Some (_, _, th, fn) ->
        incr dispatches;
        t.switches <- t.switches + 1;
        Clock.advance t.clock t.costs.Cost.thread_switch;
        Clock.count t.clock "thread_switch";
        let obs = Clock.obs t.clock in
        let th_dom = Option.value th.domain ~default:0 in
        (* always-on flight record of the dispatch *)
        Pm_obs.Flightrec.record (Pm_obs.Obs.flight obs) ~kind:Pm_obs.Flightrec.Sched
          ~domain:th_dom ~at:(Clock.now t.clock) ~info:th.tid;
        if Pm_obs.Obs.enabled obs then begin
          (* scheduler metrics are system-wide: keyed to domain 0 *)
          Pm_obs.Obs.set_gauge obs ~domain:0 "sched.ready" (ready_count t);
          Pm_obs.Obs.incr obs ~domain:0 "sched.switches";
          Pm_obs.Acct.sched (Pm_obs.Obs.acct obs) ~domain:th_dom
        end;
        (match (th.domain, t.mmu) with
        | Some d, Some mmu -> Pm_machine.Mmu.switch_context mmu d
        | _ -> ());
        let prev = t.cur in
        t.cur <- Some th;
        th.state <- Running;
        fn ();
        t.cur <- prev;
        loop ()
    end
  in
  loop ();
  !dispatches

let yield () = Effect.perform Yield
let suspend register = Effect.perform (Suspend register)
let self () = Effect.perform Self

let live t = t.live
let current t = t.cur

let stats t = function
  | `Spawned -> t.spawned
  | `Popups -> t.popups
  | `Popup_fast -> t.popup_fast
  | `Promotions -> t.promotions
  | `Switches -> t.switches
  | `Crashes -> t.crashes
