(** Per-CPU scheduling over an SMP complex ({!Pm_machine.Cpu}).

    One {!Scheduler.t} per CPU, each bound to that CPU's clock. {!run}
    interleaves the CPUs with a deterministic round-robin sweep (one
    dispatch per CPU per pass); an idle CPU steals the oldest ready
    entry from its most-loaded sibling, reconciling its clock to the
    entry's ready-at time and paying {!Pm_machine.Cost.steal}. Halted
    CPUs neither dispatch nor steal until woken (e.g. by an IPI). *)

type t

(** [create ?policy ?mmu cpu ~boot costs] builds per-CPU schedulers:
    CPU 0 uses [boot] (the kernel's existing scheduler — threads already
    spawned stay valid); CPUs 1.. get fresh schedulers on their own
    clocks, with [policy] and [mmu] applied. *)
val create :
  ?policy:Scheduler.policy ->
  ?mmu:Pm_machine.Mmu.t ->
  Pm_machine.Cpu.t ->
  boot:Scheduler.t ->
  Pm_machine.Cost.t ->
  t

val cpu : t -> Pm_machine.Cpu.t
val count : t -> int

(** The scheduler instance owned by CPU [k]. *)
val sched : t -> int -> Scheduler.t

(** [spawn_on t k ... body] spawns on CPU [k]'s scheduler, charging
    creation to [k]'s clock. *)
val spawn_on :
  t ->
  int ->
  ?priority:int ->
  ?name:string ->
  ?domain:int ->
  (unit -> unit) ->
  Scheduler.thread

(** [try_steal t ~thief] makes one stealing attempt for CPU [thief]:
    picks the most-loaded sibling (ties to lowest id), moves its oldest
    ready entry over, reconciles the thief's clock and charges
    {!Pm_machine.Cost.steal}. Returns whether anything was stolen; an
    attempt on all-empty siblings is free. *)
val try_steal : t -> thief:int -> bool

(** [run ?steal t] sweeps the CPUs round-robin, one dispatch each per
    pass, until no CPU can make progress. [steal] (default [true])
    enables work stealing for idle CPUs. Returns total dispatches. *)
val run : ?steal:bool -> t -> int

val ready_total : t -> int
val stats : t -> [ `Steals | `Steal_attempts | `Dispatches ] -> int
