(* Per-CPU scheduling over an SMP complex.

   One {!Scheduler.t} per CPU, each bound to that CPU's clock so every
   dispatch, promotion and crash it charges lands on the right core.
   [run] interleaves the CPUs with a deterministic round-robin sweep —
   one dispatch per CPU per pass — so the simulation is reproducible
   while per-CPU clocks advance independently between synchronization
   points.

   Work stealing: a CPU whose own queue is empty takes the oldest ready
   entry from the most-loaded sibling (ties to the lowest CPU id). The
   thief reconciles its clock to the entry's ready-at time — the thread
   cannot run before it existed — and pays {!Pm_machine.Cost.steal} for
   pulling the queue entry's cache lines across. {!Scheduler.steal}
   re-homes the thread so its later yields and wakeups stay with the
   thief. *)

module Cpu = Pm_machine.Cpu
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost

type t = {
  cpu : Cpu.t;
  costs : Cost.t;
  scheds : Scheduler.t array;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable dispatches : int;
}

let create ?policy ?mmu cpu ~boot costs =
  let n = Cpu.count cpu in
  let scheds =
    Array.init n (fun i ->
        if i = 0 then boot
        else begin
          let s = Scheduler.create ?policy (Cpu.clock_of cpu i) costs in
          (match mmu with Some m -> Scheduler.set_mmu s m | None -> ());
          s
        end)
  in
  { cpu; costs; scheds; steals = 0; steal_attempts = 0; dispatches = 0 }

let cpu t = t.cpu
let count t = Array.length t.scheds

let sched t k =
  if k < 0 || k >= Array.length t.scheds then
    invalid_arg (Printf.sprintf "Smp.sched: no cpu %d" k);
  t.scheds.(k)

let spawn_on t k ?priority ?name ?domain body =
  let s = sched t k in
  (* creation charges land on the target CPU's clock *)
  Cpu.run_on t.cpu k (fun () -> Scheduler.spawn s ?priority ?name ?domain body)

(* Most-loaded sibling with work to take; ties go to the lowest id so
   the sweep stays deterministic. *)
let victim t ~thief =
  let best = ref None in
  Array.iteri
    (fun i s ->
      if i <> thief then begin
        let n = Scheduler.ready_count s in
        if n > 0 then
          match !best with Some (_, bn) when bn >= n -> () | _ -> best := Some (i, n)
      end)
    t.scheds;
  Option.map fst !best

let try_steal t ~thief =
  t.steal_attempts <- t.steal_attempts + 1;
  match victim t ~thief with
  | None -> false
  | Some v -> (
    match Scheduler.steal ~from:t.scheds.(v) ~into:t.scheds.(thief) with
    | None -> false
    | Some (ready_at, _th) ->
      t.steals <- t.steals + 1;
      (* causality: the entry cannot run before it became ready on the
         victim; then pay for hauling it across *)
      Cpu.sync_to t.cpu ~cpu:thief ~at:ready_at;
      let clk = Cpu.clock_of t.cpu thief in
      Clock.advance clk (Cost.steal t.costs);
      Clock.count clk "steal";
      true)

let run ?(steal = true) t =
  let total = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for k = 0 to Array.length t.scheds - 1 do
      if not (Cpu.halted t.cpu k) then begin
        let s = t.scheds.(k) in
        let has_work =
          Scheduler.ready_count s > 0 || (steal && try_steal t ~thief:k)
        in
        if has_work then begin
          let did = Cpu.run_on t.cpu k (fun () -> Scheduler.run s ~budget:1 ()) in
          if did > 0 then begin
            total := !total + did;
            t.dispatches <- t.dispatches + did;
            progress := true
          end
        end
      end
    done
  done;
  !total

let ready_total t =
  Array.fold_left (fun acc s -> acc + Scheduler.ready_count s) 0 t.scheds

let stats t = function
  | `Steals -> t.steals
  | `Steal_attempts -> t.steal_attempts
  | `Dispatches -> t.dispatches
