(** Synchronization primitives for the thread package.

    All blocking operations must run inside a thread or proto-thread (a
    blocking proto-thread is promoted, per the pop-up thread design).
    Wake-ups only mark threads ready; they run at the next
    {!Scheduler.run} dispatch. *)

(** {1 Wait queues} — the primitive the rest is built on. *)

module Waitq : sig
  type t

  val create : unit -> t

  (** [wait q] parks the caller on [q]. *)
  val wait : t -> unit

  (** [signal q] readies the oldest waiter; [false] if [q] was empty. *)
  val signal : t -> bool

  (** [broadcast q] readies every waiter, returning how many. *)
  val broadcast : t -> int

  val length : t -> int

  (** [waiters q] lists the parked threads, oldest first — introspection
      for the composition linter's wait-for graph; does not dequeue. *)
  val waiters : t -> Scheduler.thread list
end

(** {1 Mutual exclusion} with direct hand-off to the oldest waiter. *)

module Mutex : sig
  type t

  val create : unit -> t

  val lock : t -> unit

  (** [try_lock m] never blocks. *)
  val try_lock : t -> bool

  (** [unlock m] raises [Invalid_argument] if [m] is not locked. *)
  val unlock : t -> unit

  val locked : t -> bool

  (** [with_lock m f] brackets [f] with lock/unlock. *)
  val with_lock : t -> (unit -> 'a) -> 'a
end

(** {1 Condition variables} (Mesa semantics: re-check your predicate). *)

module Condvar : sig
  type t

  val create : unit -> t

  (** [wait cv m] atomically releases [m], parks, and re-acquires [m]
      after wake-up. *)
  val wait : t -> Mutex.t -> unit

  val signal : t -> unit
  val broadcast : t -> unit
end

(** {1 Counting semaphores} *)

module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val value : t -> int
end

(** {1 Write-once cells} — handy for RPC completion. *)

module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  (** [fill iv v] wakes all readers. Raises [Invalid_argument] if already
      filled. *)
  val fill : 'a t -> 'a -> unit

  (** [read iv] blocks until filled. *)
  val read : 'a t -> 'a

  val peek : 'a t -> 'a option
end
