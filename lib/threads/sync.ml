module Waitq = struct
  type t = Scheduler.resumer Queue.t

  let create () : t = Queue.create ()

  let wait q = Scheduler.suspend (fun r -> Queue.push r q)

  let signal q =
    match Queue.take_opt q with
    | Some r ->
      r.Scheduler.resume ();
      true
    | None -> false

  let broadcast q =
    let n = ref 0 in
    let rec drain () =
      if signal q then begin
        incr n;
        drain ()
      end
    in
    drain ();
    !n

  let length = Queue.length

  (* introspection for the composition linter: who is parked here *)
  let waiters (q : t) =
    Queue.fold (fun acc r -> r.Scheduler.thread :: acc) [] q |> List.rev
end

module Mutex = struct
  type t = { mutable locked : bool; waiters : Waitq.t }

  let create () = { locked = false; waiters = Waitq.create () }

  let lock m =
    if not m.locked then m.locked <- true
    else
      (* hand-off: unlock passes ownership straight to the oldest waiter,
         so no re-check loop is needed here *)
      Waitq.wait m.waiters

  let try_lock m =
    if m.locked then false
    else begin
      m.locked <- true;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg "Mutex.unlock: not locked";
    if not (Waitq.signal m.waiters) then m.locked <- false

  let locked m = m.locked

  let with_lock m f =
    lock m;
    match f () with
    | v ->
      unlock m;
      v
    | exception e ->
      unlock m;
      raise e
end

module Condvar = struct
  type t = { waiters : Waitq.t }

  let create () = { waiters = Waitq.create () }

  let wait cv m =
    (* release and park in one step: the resumer is registered before the
       scheduler runs anyone else, so a signal between unlock and park is
       impossible in this cooperative setting *)
    Mutex.unlock m;
    Waitq.wait cv.waiters;
    Mutex.lock m

  let signal cv = ignore (Waitq.signal cv.waiters)
  let broadcast cv = ignore (Waitq.broadcast cv.waiters)
end

module Semaphore = struct
  type t = { mutable count : int; waiters : Waitq.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create: negative count";
    { count = n; waiters = Waitq.create () }

  let acquire s =
    if s.count > 0 then s.count <- s.count - 1 else Waitq.wait s.waiters

  let try_acquire s =
    if s.count > 0 then begin
      s.count <- s.count - 1;
      true
    end
    else false

  (* release hands the unit straight to a waiter when one exists *)
  let release s = if not (Waitq.signal s.waiters) then s.count <- s.count + 1

  let value s = s.count
end

module Ivar = struct
  type 'a t = { mutable contents : 'a option; waiters : Waitq.t }

  let create () = { contents = None; waiters = Waitq.create () }

  let fill iv v =
    match iv.contents with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
      iv.contents <- Some v;
      ignore (Waitq.broadcast iv.waiters)

  let rec read iv =
    match iv.contents with
    | Some v -> v
    | None ->
      Waitq.wait iv.waiters;
      read iv

  let peek iv = iv.contents
end
