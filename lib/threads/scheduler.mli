(** Cooperative thread package with pop-up threads.

    Per the paper this is a component *outside* the nucleus: the event
    service merely redirects processor events here, where they become
    pop-up threads. "For efficiency reasons, we delay the actual creation
    of the pop-up thread by creating a proto-thread. Only when the
    proto-thread is about to block or be rescheduled do we turn it into a
    real thread."

    Threads are OCaml effect-handler fibers; {!popup} runs its body
    immediately in the event-handler context (a proto-thread) and promotes
    it to a scheduled thread — paying the promotion cost — only if it
    blocks or yields.

    Blocking and yielding must be performed from inside a thread or
    proto-thread; doing so elsewhere raises [Effect.Unhandled]. *)

type t

type state = Ready | Running | Blocked | Finished

type thread = {
  tid : int;
  name : string;
  priority : int;  (** 0 (highest) .. {!priorities}-1 *)
  mutable state : state;
  is_popup : bool;
  domain : int option;  (** protection domain the thread runs in *)
  mutable home : t option;
      (** scheduler the thread lands on when it next becomes ready;
          [None] means its creator. Set by {!steal} so a stolen thread's
          later yields and wakeups stay on the thief's CPU. *)
}

(** A parked thread plus the closure that makes it runnable again; what a
    blocking primitive stores in its wait queue. *)
type resumer = { thread : thread; resume : unit -> unit }

val priorities : int

(** Dispatch policy — the thread package is a component, and its policy
    is an application choice:
    - [Priority]: strict priority levels, round-robin within one (default)
    - [Fifo]: global arrival order, priorities ignored
    - [Lottery of seed]: weighted lottery, a level-[p] thread holding
      [priorities - p] tickets (deterministic for a given seed) *)
type policy = Priority | Fifo | Lottery of int

val create : ?policy:policy -> Pm_machine.Clock.t -> Pm_machine.Cost.t -> t

(** [set_mmu t mmu] teaches the scheduler to switch MMU contexts when
    dispatching threads that declare a domain. *)
val set_mmu : t -> Pm_machine.Mmu.t -> unit

(** [spawn t ?priority ?name ?domain body] creates a full thread (charging
    the full creation cost) and marks it ready. When [domain] is given and
    an MMU is set, dispatches switch into that context. *)
val spawn : t -> ?priority:int -> ?name:string -> ?domain:int -> (unit -> unit) -> thread

(** [popup t ?priority ?name ?domain body] runs [body] as a proto-thread,
    in the caller's context. Returns [true] if it ran to completion on the
    fast path, [false] if it was promoted to a real thread (which then
    completes under the scheduler). *)
val popup : t -> ?priority:int -> ?name:string -> ?domain:int -> (unit -> unit) -> bool

(** [run t ?budget ()] dispatches ready threads until none are runnable,
    or until [budget] dispatches have been made. Returns the number of
    dispatches performed. Threads left blocked stay parked; an external
    event (e.g. an interrupt resuming a waiter) can make them ready again,
    after which [run] may be called again. *)
val run : t -> ?budget:int -> unit -> int

(** {1 Effects — callable only inside a thread/proto-thread} *)

(** [yield ()] reschedules the caller behind its priority peers. *)
val yield : unit -> unit

(** [suspend register] parks the caller, handing its {!resumer} to
    [register] (which typically stores it in a wait queue). *)
val suspend : (resumer -> unit) -> unit

(** [self ()] is the calling thread's descriptor. *)
val self : unit -> thread

(** {1 Introspection} *)

val live : t -> int  (** spawned or promoted, not yet finished *)

val ready_count : t -> int

(** [steal ~from ~into] moves the oldest ready entry of [from] onto
    [into]'s ready queue, re-homing the thread there; [None] if [from]
    has nothing ready. Returns the entry's ready-at cycles (the victim's
    virtual time when it was enqueued) so the SMP layer can reconcile
    the thief's clock, and the stolen thread. Pricing is the SMP
    layer's job. *)
val steal : from:t -> into:t -> (int * thread) option
val current : t -> thread option

(** Counters for the experiments. *)
val stats : t -> [ `Spawned | `Popups | `Popup_fast | `Promotions | `Switches | `Crashes ] -> int
