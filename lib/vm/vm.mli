(** Bytecode virtual machine for downloaded components.

    Everywhere else in this reproduction, "component object code" is a
    synthetic byte string that certificates digest. This module makes it
    real for the paper's canonical extension — user code downloaded into
    a shared kernel component (e.g. "inserting application components for
    fast protocol processing into a shared network device", §1): programs
    are actual bytecode, executed against a host-provided memory window
    (a packet buffer), with every instruction and memory access charged
    to the machine clock.

    The safety landscape then stops being a modelling assumption:
    - a {b certified} program runs raw — the certifier (e.g. the
      {!Filterc} compiler, which only emits bounds-checked access
      sequences) vouched that it cannot touch memory outside its window;
    - an {b uncertified} program run raw can issue wild accesses — the
      interpreter detects the window escape, aborts the program and
      counts a ["vm_wild_access"], modelling the kernel-corruption risk
      certification exists to prevent;
    - the {b SFI} alternative ({!Sfi_rewrite}) inserts real mask
      instructions before every load/store, making any program safe at a
      measurable per-access price.

    {b ISA}: 8 registers (r0–r7); fixed 8-byte instructions
    [opcode rd rs1 rs2 imm32]. By convention r0 = 0 and r1 = window
    length on entry. Programs return through [Ret]. *)

type reg = int (* 0..7 *)

type instr =
  | Const of reg * int  (** rd <- imm *)
  | Mov of reg * reg
  | Add of reg * reg * reg  (** rd <- rs1 + rs2 *)
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg  (** faults on division by zero *)
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Load8 of reg * reg * int  (** rd <- window[rs1 + imm] *)
  | Store8 of reg * reg * int  (** window[rs1 + imm] <- rd *)
  | Jmp of int  (** absolute instruction index *)
  | Jz of reg * int
  | Jnz of reg * int
  | Jlt of reg * reg * int  (** jump when rs1 < rs2 *)
  | Ret of reg

type program = instr array

(** Host memory window the program may touch. *)
type mem = {
  size : int;
  read8 : int -> int;  (** offsets are window-relative *)
  write8 : int -> int -> unit;
}

(** [mem_of_bytes b] wraps a buffer as a window. *)
val mem_of_bytes : bytes -> mem

(** Register-file size (8). *)
val nregs : int

type outcome =
  | Returned of int
  | Wild_access of int  (** raw program escaped its window at this offset *)
  | Vm_fault of string  (** bad opcode/register/jump, div0, out of fuel *)

(** [run ctx ~mem ?fuel program] executes. Every instruction charges one
    cycle; loads/stores additionally charge one {!Pm_obj.Call_ctx.access}
    (so the cost-model SFI wrapper and this VM agree on what an access
    is). [fuel] bounds execution (default 10_000 instructions). *)
val run : Pm_obj.Call_ctx.t -> mem:mem -> ?fuel:int -> program -> outcome

(** {1 Object code} — what certificates digest. *)

val encode : program -> string

(** [decode s] validates opcodes and register numbers. *)
val decode : string -> (program, string) result

val instr_count : program -> int
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
