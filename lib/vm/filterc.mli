(** The trusted packet-filter compiler.

    SPIN's story, made concrete: "It is straightforward to incorporate
    this technique in our certification system by delegating the
    certification authority to a trusted compiler for that language.
    Everything compiled by that compiler would then be automatically
    certified and safe to run in the kernel protection domain." (§5)

    This compiler's source language can only read packet bytes, and the
    compiler brackets every access with compiled-in bounds checks
    (out-of-range reads yield 0), so its output is safe by construction:
    no run-time sandbox needed. A certification delegate built from
    {!certifying_policy} accepts exactly the components whose object code
    this compiler produced.

    Filters return an integer; non-zero means accept the packet.

    Concrete syntax (for the CLI and examples):
    {v
      expr := or-expr
      or   := and ("||" and)*
      and  := cmp ("&&" cmp)*
      cmp  := sum (("=="|"!="|"<"|"<="|">"|">=") sum)?
      sum  := prod (("+"|"-") prod)*
      prod := atom (("*"|"&"|"^") atom)*
      atom := int | "len" | "idx" | "byte[" expr "]" | "word[" expr "]"
            | "sum[" expr ".." expr "](" expr ")" | "(" expr ")"
    v}

    [sum[lo .. hi](body)] sums [body] over the index range [\[lo, hi)],
    with [idx] naming the current index inside the body; it compiles to
    a counted loop with a backward jump whose shape the verifier's
    loop-bound analysis admits, so scanning filters still earn the
    zero-per-run [Verified] placement. The loop owns the register
    stack, so it must be the outermost expression on its operand path
    (combine sums after the loop, not inside one) and bodies are
    limited to leaf-depth expressions like [byte\[idx\]]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Band
  | Bxor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Andalso
  | Orelse

type expr =
  | Lit of int
  | Len  (** packet length *)
  | Byte of expr  (** packet byte at a computed offset; 0 when out of range *)
  | Word16 of expr  (** big-endian 16-bit read (two checked byte reads) *)
  | Bin of binop * expr * expr
  | If of expr * expr * expr
  | Idx  (** the loop index; only meaningful inside a [For] body *)
  | For of expr * expr * expr
      (** [For (lo, hi, body)]: sum of [body] over index in [\[lo, hi)] *)

(** [compile e] emits bytecode using only registers r0–r5 (leaving the
    SFI rewriter's reserved registers untouched — so the same program can
    be run raw-certified or sandboxed for comparison). [Error] when the
    expression nests deeper than the 4-slot register stack, or when a
    [For] is not outermost / an [Idx] appears outside a body. *)
val compile : expr -> (Vm.program, string) result

(** [parse s] reads the concrete syntax. *)
val parse : string -> (expr, string) result

(** [compile_string s] = parse + compile. *)
val compile_string : string -> (Vm.program, string) result

(** [object_code e] — compiled and encoded, ready to certify/digest. *)
val object_code : expr -> (string, string) result

(** [certifying_policy ~compiled] is a certification-delegate policy that
    accepts exactly the component names in [compiled] (the compiler's
    build record): the trusted-compiler delegate of §5. *)
val certifying_policy :
  compiled:(string, unit) Hashtbl.t -> Pm_secure.Meta.t -> Pm_secure.Authority.verdict
