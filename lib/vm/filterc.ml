type binop =
  | Add
  | Sub
  | Mul
  | Band
  | Bxor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Andalso
  | Orelse

type expr =
  | Lit of int
  | Len
  | Byte of expr
  | Word16 of expr
  | Bin of binop * expr * expr
  | If of expr * expr * expr
  | Idx
  | For of expr * expr * expr

exception Too_deep
exception Bad_loop of string

(* expression results live on a register stack r2..r5; r0 = 0 and r1 =
   packet length per the VM convention, r6/r7 stay free for the SFI
   rewriter *)
let reg_of_depth depth =
  if depth > 3 then raise Too_deep;
  2 + depth

(* [gen e ~idx ~depth ~pos] emits code leaving the value in
   [reg_of_depth depth]; [pos] is the absolute index of the first
   emitted instruction, needed because jump targets are absolute; [idx]
   is the register holding the loop index when inside a [For] body *)
let rec gen e ~idx ~depth ~pos =
  let rd = reg_of_depth depth in
  match e with
  | Lit n -> [ Vm.Const (rd, n) ]
  | Len -> [ Vm.Mov (rd, 1) ]
  | Idx -> (
    match idx with
    | Some r -> [ Vm.Mov (rd, r) ]
    | None -> raise (Bad_loop "idx is only meaningful inside a sum body"))
  | For (lo, hi, body) ->
    (* sum of [body] over the index range [lo, hi). The loop owns the
       whole register stack: acc in r2, index in r3, limit in r4, body
       results in r5 — so it must be outermost (depth 0) and cannot
       nest. The closing Jlt is the one backward jump the compiler
       emits; its shape (single constant-step Add on the index, Fin/Len
       limit) is exactly what the verifier's counted-loop analysis
       admits, and the step constant is rematerialized right before the
       index Add so the abstract step is the exact interval [1,1] even
       though the body also uses r5. *)
    if depth > 0 then
      raise (Bad_loop "sum loops must be outermost (combine results after the loop)");
    if idx <> None then raise (Bad_loop "sum loops do not nest");
    let lo_c = gen lo ~idx ~depth:1 ~pos in
    let p1 = pos + List.length lo_c in
    let hi_c = gen hi ~idx ~depth:2 ~pos:p1 in
    let p2 = p1 + List.length hi_c in
    let body_start = p2 + 3 in
    let body_c = gen body ~idx:(Some 3) ~depth:3 ~pos:body_start in
    let pb = body_start + List.length body_c in
    let p_end = pb + 4 in
    lo_c @ hi_c
    @ [ Vm.Const (2, 0) (* acc *); Vm.Jlt (3, 4, body_start) (* pre-guard *);
        Vm.Jmp p_end ]
    @ body_c
    @ [ Vm.Add (2, 2, 5); Vm.Const (5, 1); Vm.Add (3, 3, 5);
        Vm.Jlt (3, 4, body_start) ]
  | Byte idx_e ->
    let code = gen idx_e ~idx ~depth ~pos in
    let p = pos + List.length code in
    (* bounds-bracketed load: out-of-range (either side) yields 0 *)
    code
    @ [ Vm.Jlt (rd, 0, p + 2) (* negative -> zero *);
        Vm.Jlt (rd, 1, p + 4) (* in range -> load *);
        Vm.Const (rd, 0); Vm.Jmp (p + 5); Vm.Load8 (rd, rd, 0) ]
  | Word16 idx_e ->
    (* two checked byte reads; the source language has no effects, so
       duplicating [idx_e] is only a (visible, honest) cost *)
    gen
      (Bin (Add, Bin (Mul, Byte idx_e, Lit 256), Byte (Bin (Add, idx_e, Lit 1))))
      ~idx ~depth ~pos
  | Bin (Andalso, l, r) ->
    gen (Bin (Band, Bin (Ne, l, Lit 0), Bin (Ne, r, Lit 0))) ~idx ~depth ~pos
  | Bin (Orelse, l, r) ->
    gen
      (Bin (Ne, Bin (Add, Bin (Ne, l, Lit 0), Bin (Ne, r, Lit 0)), Lit 0))
      ~idx ~depth ~pos
  | Bin (op, l, r) ->
    let lc = gen l ~idx ~depth ~pos in
    let rdepth = depth + 1 in
    let rr = reg_of_depth rdepth in
    let rc = gen r ~idx ~depth:rdepth ~pos:(pos + List.length lc) in
    let p = pos + List.length lc + List.length rc in
    let arith mk = lc @ rc @ [ mk ] in
    let bool_block ~jump ~if_true ~if_false =
      (* [jump p'] tests the condition and jumps to the "true" arm *)
      lc @ rc
      @ [ jump (p + 3); Vm.Const (rd, if_false); Vm.Jmp (p + 4);
          Vm.Const (rd, if_true) ]
    in
    (match op with
    | Add -> arith (Vm.Add (rd, rd, rr))
    | Sub -> arith (Vm.Sub (rd, rd, rr))
    | Mul -> arith (Vm.Mul (rd, rd, rr))
    | Band -> arith (Vm.And (rd, rd, rr))
    | Bxor -> arith (Vm.Xor (rd, rd, rr))
    | Eq ->
      (* sub + test-zero *)
      lc @ rc
      @ [ Vm.Sub (rd, rd, rr); Vm.Jz (rd, p + 4); Vm.Const (rd, 0);
          Vm.Jmp (p + 5); Vm.Const (rd, 1) ]
    | Ne ->
      lc @ rc
      @ [ Vm.Sub (rd, rd, rr); Vm.Jz (rd, p + 4); Vm.Const (rd, 1);
          Vm.Jmp (p + 5); Vm.Const (rd, 0) ]
    | Lt -> bool_block ~jump:(fun t -> Vm.Jlt (rd, rr, t)) ~if_true:1 ~if_false:0
    | Ge -> bool_block ~jump:(fun t -> Vm.Jlt (rd, rr, t)) ~if_true:0 ~if_false:1
    | Gt -> bool_block ~jump:(fun t -> Vm.Jlt (rr, rd, t)) ~if_true:1 ~if_false:0
    | Le -> bool_block ~jump:(fun t -> Vm.Jlt (rr, rd, t)) ~if_true:0 ~if_false:1
    | Andalso | Orelse -> assert false (* desugared above *))
  | If (c, t, e) ->
    let cc = gen c ~idx ~depth ~pos in
    let pos_t = pos + List.length cc + 1 in
    let tc = gen t ~idx ~depth ~pos:pos_t in
    let pos_e = pos_t + List.length tc + 1 in
    let ec = gen e ~idx ~depth ~pos:pos_e in
    let pos_end = pos_e + List.length ec in
    cc @ [ Vm.Jz (rd, pos_e) ] @ tc @ [ Vm.Jmp pos_end ] @ ec

let compile e =
  match gen e ~idx:None ~depth:0 ~pos:0 with
  | code -> Ok (Array.of_list (code @ [ Vm.Ret 2 ]))
  | exception Too_deep -> Error "expression nests too deeply for the register stack"
  | exception Bad_loop msg -> Error msg

let object_code e = Result.map Vm.encode (compile e)

(* --- concrete syntax -------------------------------------------------- *)

type token =
  | TInt of int
  | TLen
  | TByte
  | TWord
  | TSum
  | TIdx
  | TLbrack
  | TRbrack
  | TLparen
  | TRparen
  | TOp of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let err = ref None in
  while !i < n && !err = None do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      toks := TInt (int_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if c >= 'a' && c <= 'z' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= 'a' && s.[!j] <= 'z' do
        incr j
      done;
      (match String.sub s !i (!j - !i) with
      | "len" -> toks := TLen :: !toks
      | "byte" -> toks := TByte :: !toks
      | "word" -> toks := TWord :: !toks
      | "sum" -> toks := TSum :: !toks
      | "idx" -> toks := TIdx :: !toks
      | w -> err := Some (Printf.sprintf "unknown keyword %S" w));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" | ".." ->
        toks := TOp two :: !toks;
        i := !i + 2
      | _ ->
        (match c with
        | '[' -> toks := TLbrack :: !toks
        | ']' -> toks := TRbrack :: !toks
        | '(' -> toks := TLparen :: !toks
        | ')' -> toks := TRparen :: !toks
        | '+' | '-' | '*' | '&' | '^' | '<' | '>' ->
          toks := TOp (String.make 1 c) :: !toks
        | _ -> err := Some (Printf.sprintf "unexpected character %C" c));
        incr i
    end
  done;
  match !err with Some e -> Error e | None -> Ok (List.rev !toks)

exception Parse_error of string

let parse s =
  match tokenize s with
  | Error e -> Error e
  | Ok toks ->
    let stream = ref toks in
    let peek () = match !stream with [] -> None | t :: _ -> Some t in
    let advance () = match !stream with [] -> () | _ :: rest -> stream := rest in
    let expect t what =
      match peek () with
      | Some t' when t' = t -> advance ()
      | _ -> raise (Parse_error ("expected " ^ what))
    in
    let rec p_or () =
      let l = p_and () in
      match peek () with
      | Some (TOp "||") ->
        advance ();
        Bin (Orelse, l, p_or ())
      | _ -> l
    and p_and () =
      let l = p_cmp () in
      match peek () with
      | Some (TOp "&&") ->
        advance ();
        Bin (Andalso, l, p_and ())
      | _ -> l
    and p_cmp () =
      let l = p_sum () in
      match peek () with
      | Some (TOp (("==" | "!=" | "<" | "<=" | ">" | ">=") as op)) ->
        advance ();
        let r = p_sum () in
        let b =
          match op with
          | "==" -> Eq
          | "!=" -> Ne
          | "<" -> Lt
          | "<=" -> Le
          | ">" -> Gt
          | _ -> Ge
        in
        Bin (b, l, r)
      | _ -> l
    and p_sum () =
      let rec loop acc =
        match peek () with
        | Some (TOp "+") ->
          advance ();
          loop (Bin (Add, acc, p_prod ()))
        | Some (TOp "-") ->
          advance ();
          loop (Bin (Sub, acc, p_prod ()))
        | _ -> acc
      in
      loop (p_prod ())
    and p_prod () =
      let rec loop acc =
        match peek () with
        | Some (TOp "*") ->
          advance ();
          loop (Bin (Mul, acc, p_atom ()))
        | Some (TOp "&") ->
          advance ();
          loop (Bin (Band, acc, p_atom ()))
        | Some (TOp "^") ->
          advance ();
          loop (Bin (Bxor, acc, p_atom ()))
        | _ -> acc
      in
      loop (p_atom ())
    and p_atom () =
      match peek () with
      | Some (TInt n) ->
        advance ();
        Lit n
      | Some TLen ->
        advance ();
        Len
      | Some TByte ->
        advance ();
        expect TLbrack "'['";
        let e = p_or () in
        expect TRbrack "']'";
        Byte e
      | Some TWord ->
        advance ();
        expect TLbrack "'['";
        let e = p_or () in
        expect TRbrack "']'";
        Word16 e
      | Some TIdx ->
        advance ();
        Idx
      | Some TSum ->
        (* sum[ lo .. hi ]( body ) — body sees the index as [idx] *)
        advance ();
        expect TLbrack "'['";
        let lo = p_or () in
        expect (TOp "..") "'..'";
        let hi = p_or () in
        expect TRbrack "']'";
        expect TLparen "'('";
        let body = p_or () in
        expect TRparen "')'";
        For (lo, hi, body)
      | Some TLparen ->
        advance ();
        let e = p_or () in
        expect TRparen "')'";
        e
      | _ -> raise (Parse_error "expected an expression")
    in
    (match p_or () with
    | e -> if !stream = [] then Ok e else Error "trailing tokens"
    | exception Parse_error m -> Error m)

let compile_string s = Result.bind (parse s) compile

let certifying_policy ~compiled (m : Pm_secure.Meta.t) =
  if Hashtbl.mem compiled m.Pm_secure.Meta.name then Pm_secure.Authority.Accept
  else Pm_secure.Authority.Cannot_decide
