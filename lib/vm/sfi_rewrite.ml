let reserved = [ 6; 7 ]

let scratch_addr = 6
let scratch_mask = 7

let padded_size n =
  let rec go p = if p >= max n 1 then p else go (p * 2) in
  go 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let uses_reserved (ins : Vm.instr) =
  let rd, a, b, _ =
    match ins with
    | Vm.Const (rd, imm) -> (rd, 0, 0, imm)
    | Vm.Mov (rd, rs) -> (rd, rs, 0, 0)
    | Vm.Add (rd, a, b) | Vm.Sub (rd, a, b) | Vm.Mul (rd, a, b) | Vm.Div (rd, a, b)
    | Vm.And (rd, a, b) | Vm.Or (rd, a, b) | Vm.Xor (rd, a, b) ->
      (rd, a, b, 0)
    | Vm.Shl (rd, a, k) | Vm.Shr (rd, a, k) -> (rd, a, 0, k)
    | Vm.Load8 (rd, rs, imm) -> (rd, rs, 0, imm)
    | Vm.Store8 (rs, ra, imm) -> (rs, ra, 0, imm)
    | Vm.Jmp _ -> (0, 0, 0, 0)
    | Vm.Jz (r, _) | Vm.Jnz (r, _) -> (r, 0, 0, 0)
    | Vm.Jlt (a, b, _) -> (a, b, 0, 0)
    | Vm.Ret r -> (r, 0, 0, 0)
  in
  List.mem rd reserved || List.mem a reserved || List.mem b reserved

(* the mask sequence replacing one memory access:
     const r7, mask
     const r6, imm           (collapse the displacement first)
     add   r6, rs, r6
     and   r6, r6, r7
     ld/st ..., [r6+0]                                          *)
let expansion ~mask ins =
  match ins with
  | Vm.Load8 (rd, rs, imm) ->
    [ Vm.Const (scratch_mask, mask); Vm.Const (scratch_addr, imm);
      Vm.Add (scratch_addr, rs, scratch_addr);
      Vm.And (scratch_addr, scratch_addr, scratch_mask);
      Vm.Load8 (rd, scratch_addr, 0) ]
  | Vm.Store8 (rs, ra, imm) ->
    [ Vm.Const (scratch_mask, mask); Vm.Const (scratch_addr, imm);
      Vm.Add (scratch_addr, ra, scratch_addr);
      Vm.And (scratch_addr, scratch_addr, scratch_mask);
      Vm.Store8 (rs, scratch_addr, 0) ]
  | other -> [ other ]

let rewrite program ~window_size =
  if not (is_pow2 window_size) then Error "window size must be a power of two"
  else if Array.exists uses_reserved program then
    Error "program uses a reserved register (r6/r7)"
  else begin
    let mask = window_size - 1 in
    (* first pass: compute where each original instruction lands *)
    let n = Array.length program in
    let new_index = Array.make (n + 1) 0 in
    let cursor = ref 0 in
    Array.iteri
      (fun idx ins ->
        new_index.(idx) <- !cursor;
        cursor := !cursor + List.length (expansion ~mask ins))
      program;
    new_index.(n) <- !cursor;
    (* second pass: emit, remapping jump targets through [new_index] *)
    let remap t =
      if t < 0 then t (* still negative, still a fault *)
      else if t > n then
        (* an out-of-range target must stay out of range: the rewritten
           program is longer, so leaving [t] unmapped could turn it into
           a valid index (landing mid-mask-sequence) and silently un-fault
           a program that faults when run raw *)
        !cursor + (t - n)
      else new_index.(t)
    in
    let out = ref [] in
    Array.iter
      (fun ins ->
        let patched =
          match ins with
          | Vm.Jmp t -> Vm.Jmp (remap t)
          | Vm.Jz (r, t) -> Vm.Jz (r, remap t)
          | Vm.Jnz (r, t) -> Vm.Jnz (r, remap t)
          | Vm.Jlt (a, b, t) -> Vm.Jlt (a, b, remap t)
          | other -> other
        in
        out := List.rev_append (expansion ~mask patched) !out)
      program;
    Ok (Array.of_list (List.rev !out))
  end
