(** Software fault isolation by bytecode rewriting (Wahbe et al., SOSP
    '93 — the technique the paper positions certification against).

    [rewrite] inserts a mask sequence before every [Load8]/[Store8] so
    the effective address is forced into the (power-of-two-sized) window
    no matter what the program computes; jump targets are remapped around
    the inserted code. Two registers (r6, r7) are reserved for the mask
    sequence, exactly like Wahbe's dedicated registers: programs that use
    them are rejected (a real implementation would re-allocate; rejection
    keeps the transformation honest and small).

    The per-access price — 3 extra instructions — is then *measured*
    execution cost, not a cost-model constant. *)

(** Registers the rewriter reserves. *)
val reserved : Vm.reg list

(** [uses_reserved ins] is true when the instruction names a reserved
    register — the predicate both {!rewrite} and the bytecode verifier
    ({!Pm_check.Verify}) reject on, so "sandboxable" and "verifiable"
    agree on the register discipline. *)
val uses_reserved : Vm.instr -> bool

(** [padded_size n] is the smallest power of two >= max n 1: the window
    size a host must provide for masking to be sound. *)
val padded_size : int -> int

(** [rewrite program ~window_size] returns the sandboxed program.
    [Error] if the program touches a reserved register or [window_size]
    is not a power of two. *)
val rewrite : Vm.program -> window_size:int -> (Vm.program, string) result
