(* The query service: causal tracing and time-travel queries exported
   as an ordinary boot-time nucleus object, /nucleus/query.

   A thin object wrapper over {!Pm_query.Query} applied to the live
   journal: per-request span trees, top-K slowest, per-layer cycle
   attribution, plus state-at-cycle answers folded from the structural
   archive. Like every nucleus service it can be bound cross-domain
   and interposed on. *)

module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Obs = Pm_obs.Obs
module Journal = Pm_journal.Journal
module Query = Pm_query.Query

type t = { machine : Machine.t }

let create machine = { machine }

let journal t = Obs.journal (Clock.obs (Machine.clock t.machine))

let fault msg = Error (Oerror.Fault msg)

(* The causal fold needs the whole run: a Tail-mode or compacted
   journal would misattribute, so refuse it by name instead. *)
let requests t =
  let j = journal t in
  match Query.fold ~complete:(Journal.complete j) (Journal.history j) with
  | Ok reqs -> Ok reqs
  | Error m -> fault m

let service_object t registry kdom =
  let snapshot_m _ctx = function
    | [] -> (
      match requests t with
      | Error e -> Error e
      | Ok reqs ->
        Ok (Value.Str (String.concat "\n" (List.map Query.request_line reqs))))
    | _ -> Error (Oerror.Type_error "snapshot()")
  in
  let request_m _ctx = function
    | [ Value.Int rid ] -> (
      match requests t with
      | Error e -> Error e
      | Ok reqs -> (
        match List.find_opt (fun r -> r.Query.rid = rid) reqs with
        | Some r -> Ok (Value.Str (Query.request_to_text r))
        | None -> fault (Printf.sprintf "query: no request %d" rid)))
    | _ -> Error (Oerror.Type_error "request(int)")
  in
  let slowest_m _ctx = function
    | [ Value.Int k ] -> (
      match requests t with
      | Error e -> Error e
      | Ok reqs ->
        Ok
          (Value.Str
             (String.concat "\n"
                (List.map Query.request_line (Query.slowest k reqs)))))
    | _ -> Error (Oerror.Type_error "slowest(int)")
  in
  let layers_m _ctx = function
    | [] -> (
      match requests t with
      | Error e -> Error e
      | Ok reqs -> Ok (Value.Str (Query.layer_totals_to_text reqs)))
    | _ -> Error (Oerror.Type_error "layers()")
  in
  (* state-at-cycle queries fold the structural archive, which is
     always complete — they work in any journal mode *)
  let frame_m _ctx = function
    | [ Value.Int frame; Value.Int at ] ->
      let holders = Query.frame_holders (Journal.structural (journal t)) ~frame ~at in
      Ok (Value.List (List.map (fun d -> Value.Int d) holders))
    | _ -> Error (Oerror.Type_error "frame_holders(frame, at)")
  in
  let bound_m _ctx = function
    | [ Value.Str path; Value.Int at ] -> (
      match Query.bound_at (Journal.structural (journal t)) ~path ~at with
      | Some h -> Ok (Value.Int h)
      | None -> fault (Printf.sprintf "query: nothing bound at %s" path))
    | _ -> Error (Oerror.Type_error "bound_at(path, at)")
  in
  let owner_m _ctx = function
    | [ Value.Str name; Value.Int at ] -> (
      match Query.owner_of (Journal.structural (journal t)) ~name ~at with
      | Some d -> Ok (Value.Int d)
      | None -> fault (Printf.sprintf "query: no component %s" name))
    | _ -> Error (Oerror.Type_error "owner_of(name, at)")
  in
  let iface =
    Iface.make ~name:"query"
      [
        Iface.meth ~name:"snapshot" ~args:[] ~ret:Vtype.Tstr snapshot_m;
        Iface.meth ~name:"request" ~args:[ Vtype.Tint ] ~ret:Vtype.Tstr request_m;
        Iface.meth ~name:"slowest" ~args:[ Vtype.Tint ] ~ret:Vtype.Tstr slowest_m;
        Iface.meth ~name:"layers" ~args:[] ~ret:Vtype.Tstr layers_m;
        Iface.meth ~name:"frame_holders" ~args:[ Vtype.Tint; Vtype.Tint ]
          ~ret:(Vtype.Tlist Vtype.Tint) frame_m;
        Iface.meth ~name:"bound_at" ~args:[ Vtype.Tstr; Vtype.Tint ]
          ~ret:Vtype.Tint bound_m;
        Iface.meth ~name:"owner_of" ~args:[ Vtype.Tstr; Vtype.Tint ]
          ~ret:Vtype.Tint owner_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.query" ~domain:kdom.Domain.id
    [ iface ]
