(** Certification service.

    "Objects can be associated with a certificate that is validated by the
    certification service before mapping it into a protection domain. The
    certification service uses a message digest function, public key
    cryptography, and a trusted certification agent to validate
    credentials."

    This wraps the pure {!Pm_secure.Validator} with load-time cost
    accounting: digesting the component's code charges per byte, and the
    signature check charges one public-key verification. These are the
    one-off costs that certification trades against per-access sandboxing
    (experiments E4/E5). *)

type t

val create : Pm_machine.Machine.t -> root:Pm_secure.Principal.t -> t

val root : t -> Pm_secure.Principal.t

(** [add_grant t g] teaches the kernel a delegation statement. *)
val add_grant : t -> Pm_secure.Delegation.t -> unit

(** [revoke t principal_id] bars a principal. *)
val revoke : t -> string -> unit

(** [validate t cert ~code] runs the full load-time check, charging
    digest and signature-verification cycles. Uses the machine clock as
    the logical time for grant expiry. *)
val validate : t -> Pm_secure.Certificate.t -> code:string -> Pm_secure.Validator.decision

val validations : t -> int
val failures : t -> int

(** [verify t ~code] runs the {!Pm_check.Verify} bytecode verifier over
    the component's object code — the third trust mechanism beside
    signature certification and SFI sandboxing. Charges
    [Cost.verify_instr] cycles per decoded instruction (the one-off
    analysis, analogous to the digest's per-byte charge); no signature
    is involved. [Ok] carries the proven affine fuel bound (what the
    loader records and the run path meters against); [Error] carries
    the decode failure or the verifier's rejection, rendered. *)
val verify : t -> code:string -> (Pm_check.Verify.fuel_bound, string) result

(** Successful / failed bytecode verifications since creation. *)
val verifications : t -> int

val verify_failures : t -> int
