module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Obs = Pm_obs.Obs
module Metrics = Pm_obs.Metrics

type installed = { agent : Instance.t; original : Instance.t }

type interposer = {
  install : string -> (installed, string) result;
  uninstall : string -> installed -> (unit, string) result;
}

type t = {
  machine : Machine.t;
  (* the agent factory lives above this library (it needs the component
     toolbox), so it is injected at system-assembly time *)
  mutable interposer : interposer option;
  installed : (string, installed) Hashtbl.t;
}

let create machine = { machine; interposer = None; installed = Hashtbl.create 8 }

let set_interposer t i = t.interposer <- Some i

let obs t = Clock.obs (Machine.clock t.machine)

let interpose t path =
  if Hashtbl.mem t.installed path then
    Error (Printf.sprintf "%s already has a trace agent" path)
  else begin
    match t.interposer with
    | None -> Error "no trace interposer factory installed"
    | Some i ->
      (match i.install path with
      | Ok inst ->
        Hashtbl.replace t.installed path inst;
        Ok inst.agent
      | Error _ as e -> e)
  end

let uninterpose t path =
  match Hashtbl.find_opt t.installed path with
  | None -> Error (Printf.sprintf "%s has no trace agent" path)
  | Some inst ->
    (match t.interposer with
    | None -> Error "no trace interposer factory installed"
    | Some i ->
      (match i.uninstall path inst with
      | Ok () ->
        Hashtbl.remove t.installed path;
        Ok ()
      | Error _ as e -> e))

let interposed t = Hashtbl.fold (fun path _ acc -> path :: acc) t.installed []

let service_object t registry kdom =
  let unit_m body _ctx = function
    | [] ->
      body ();
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "()")
  in
  let snapshot_m _ctx = function
    | [ Value.Str fmt ] ->
      (match fmt with
      | "text" -> Ok (Value.Str (Obs.to_text (obs t)))
      | "json" -> Ok (Value.Str (Obs.to_json (obs t)))
      | _ -> Error (Oerror.Type_error "snapshot(\"text\"|\"json\")"))
    | _ -> Error (Oerror.Type_error "snapshot(str)")
  in
  let histogram_m _ctx = function
    | [ Value.Int domain; Value.Str name ] ->
      (match Metrics.summary (Obs.metrics (obs t)) ~domain name with
      | Some s -> Ok (Value.Str (Metrics.summary_to_text s))
      | None -> Error (Oerror.Fault (Printf.sprintf "no samples for %d/%s" domain name)))
    | _ -> Error (Oerror.Type_error "histogram(int, str)")
  in
  let interpose_m _ctx = function
    | [ Value.Str path ] ->
      (match interpose t path with
      | Ok agent -> Ok (Value.Int (Instance.handle agent))
      | Error e -> Error (Oerror.Fault e))
    | _ -> Error (Oerror.Type_error "interpose(str)")
  in
  let uninterpose_m _ctx = function
    | [ Value.Str path ] ->
      (match uninterpose t path with
      | Ok () -> Ok Value.Unit
      | Error e -> Error (Oerror.Fault e))
    | _ -> Error (Oerror.Type_error "uninterpose(str)")
  in
  let enabled_m _ctx = function
    | [] -> Ok (Value.Bool (Obs.enabled (obs t)))
    | _ -> Error (Oerror.Type_error "enabled()")
  in
  let dropped_m _ctx = function
    | [] -> Ok (Value.Int (Pm_obs.Tracer.dropped (Obs.tracer (obs t))))
    | _ -> Error (Oerror.Type_error "dropped()")
  in
  let iface =
    Iface.make ~name:"trace"
      [
        Iface.meth ~name:"start" ~args:[] ~ret:Vtype.Tunit
          (unit_m (fun () -> Obs.enable (obs t)));
        Iface.meth ~name:"stop" ~args:[] ~ret:Vtype.Tunit
          (unit_m (fun () -> Obs.disable (obs t)));
        Iface.meth ~name:"reset" ~args:[] ~ret:Vtype.Tunit
          (unit_m (fun () -> Obs.reset (obs t)));
        Iface.meth ~name:"enabled" ~args:[] ~ret:Vtype.Tbool enabled_m;
        Iface.meth ~name:"dropped" ~args:[] ~ret:Vtype.Tint dropped_m;
        Iface.meth ~name:"snapshot" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tstr snapshot_m;
        Iface.meth ~name:"histogram" ~args:[ Vtype.Tint; Vtype.Tstr ] ~ret:Vtype.Tstr
          histogram_m;
        Iface.meth ~name:"interpose" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tint interpose_m;
        Iface.meth ~name:"uninterpose" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit
          uninterpose_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.trace" ~domain:kdom.Domain.id [ iface ]
