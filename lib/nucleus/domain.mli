(** Protection domains.

    The nucleus's unit of granularity: every service "uses a protection
    domain or context as its unit of granularity". A domain couples an MMU
    context with a name-space view (inherited from the domain that created
    it), an accounting slot and a kind — exactly one domain is the
    kernel's. *)

type kind = Kernel | User

type t = {
  id : int;  (** equals the MMU context id *)
  name : string;
  kind : kind;
  view : Pm_names.View.t;  (** the domain's name-space view *)
  acct : Pm_obs.Acct.slot;
      (** per-domain resource accounting — the same record the clock's
          [Obs.t] table holds for this id, so nucleus and observability
          layer see one set of numbers *)
  mutable alive : bool;
}

val is_kernel : t -> bool
val pp : Format.formatter -> t -> unit

(** [make ?acct ~id ~name ~kind ~view ()] — used by {!Kernel}; components
    receive domains, they do not forge them. [acct] defaults to a fresh
    unattached slot (standalone tests); the kernel passes the slot the
    clock's accounting table holds for [id]. *)
val make :
  ?acct:Pm_obs.Acct.slot ->
  id:int ->
  name:string ->
  kind:kind ->
  view:Pm_names.View.t ->
  unit ->
  t
