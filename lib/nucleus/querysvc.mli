(** The query service: causal tracing and time-travel queries exported
    as the eighth boot-time nucleus object, [/nucleus/query].

    Folds the live journal through {!Pm_query.Query}: per-request span
    trees, top-K slowest, per-layer attribution, and state-at-cycle
    answers over the always-complete structural archive. *)

type t

val create : Pm_machine.Machine.t -> t

(** The journal the service queries — the machine clock's. *)
val journal : t -> Pm_journal.Journal.t

(** [service_object t registry kdom] builds the kernel-domain service
    instance exporting the [query] interface:
    [snapshot() : str] (one line per traced request),
    [request(rid) : str] (the span tree),
    [slowest(k) : str], [layers() : str] (per-layer totals),
    [frame_holders(frame, at) : list int],
    [bound_at(path, at) : int], [owner_of(name, at) : int].
    Span queries fault by name on an incomplete (non-[Full]) history;
    state-at-cycle queries work in any mode. *)
val service_object :
  t -> Pm_obj.Instance.t Pm_obj.Registry.t -> Domain.t -> Pm_obj.Instance.t
