(** The journal service: the system history exported as the seventh
    boot-time nucleus object, [/nucleus/journal].

    A thin object wrapper over the clock's {!Pm_journal.Journal} — mode
    control ([mode], [set_mode]), inspection ([snapshot], [stats],
    [complete]), user annotations ([mark]) and the replay export
    ([export]). Like every nucleus service it can be bound cross-domain
    (through a proxy) and interposed on. *)

type t

val create : Pm_machine.Machine.t -> t

(** The journal the service fronts — the one owned by the machine's
    clock observability sink. *)
val journal : t -> Pm_journal.Journal.t

(** [service_object t registry kdom] builds the kernel-domain service
    instance exporting the [journal] interface:
    [mode() : str], [set_mode("tail"|"full")],
    [snapshot(n) : str] (full text when [n <= 0], last [n] events
    otherwise), [mark(label) : int] (the mark's seq),
    [export() : str] (the versioned replay stream),
    [stats() : str], and [complete() : bool]. *)
val service_object :
  t -> Pm_obj.Instance.t Pm_obj.Registry.t -> Domain.t -> Pm_obj.Instance.t
