module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Physmem = Pm_machine.Physmem
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Obs = Pm_obs.Obs
module Journal = Pm_journal.Journal

type sharing = Exclusive | Shared

exception Vmem_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Vmem_error s)) fmt

type allocation = { frame : int; sharing : sharing }

type io_grant = {
  grant_domain : int;
  device : string;
  io_base : int;
  reg_count : int;
  io_sharing : sharing;
}

type t = {
  machine : Machine.t;
  allocs : (int * int, allocation) Hashtbl.t; (* (domain, vpage) -> allocation *)
  bump : (int, int ref) Hashtbl.t; (* domain -> next free vpage *)
  fault_cbs : (int * int, Mmu.fault -> bool) Hashtbl.t;
  mutable grants : io_grant list;
}

let first_vpage = 256 (* keep low addresses unmapped to catch null derefs *)

(* page-sharing mutations are journalled (plain stores, no cycle
   charges); the page-hygiene lint rule replays these records *)
let jot t ~kind ~domain ~info ~detail =
  let clock = Machine.clock t.machine in
  Journal.record
    (Obs.journal (Clock.obs clock))
    ~kind ~domain ~at:(Clock.now clock) ~info ~detail

let create machine =
  let t =
    {
      machine;
      allocs = Hashtbl.create 64;
      bump = Hashtbl.create 8;
      fault_cbs = Hashtbl.create 16;
      grants = [];
    }
  in
  Machine.set_fault_handler machine
    (Some
       (fun (fault : Mmu.fault) ->
         let vpage = fault.Mmu.vaddr / Machine.page_size machine in
         let fclock = Machine.clock machine in
         (* always-on flight record: unresolved faults are exactly what
            the black box is for *)
         Pm_obs.Flightrec.record
           (Obs.flight (Clock.obs fclock))
           ~kind:Pm_obs.Flightrec.Fault ~domain:fault.Mmu.ctx ~at:(Clock.now fclock)
           ~info:vpage;
         match Hashtbl.find_opt t.fault_cbs (fault.Mmu.ctx, vpage) with
         | Some cb ->
           let clock = Machine.clock machine in
           let obs = Clock.obs clock in
           if Obs.enabled obs then begin
             (* page-fault handling latency: the whole user callback *)
             let t0 = Clock.now clock in
             let tok =
               Obs.span_begin obs ~now:t0 ~domain:fault.Mmu.ctx ~obj:"nucleus.vmem"
                 ~iface:"fault" ~meth:(string_of_int vpage)
             in
             let resolved = cb fault in
             Clock.advance clock (Machine.costs machine).Cost.mem_write;
             let t1 = Clock.now clock in
             Obs.span_end obs ~now:t1 tok;
             Obs.observe obs ~domain:fault.Mmu.ctx "vmem.fault" (t1 - t0);
             Pm_obs.Acct.fault (Obs.acct obs) ~domain:fault.Mmu.ctx (t1 - t0);
             resolved
           end
           else cb fault
         | None -> false));
  t

let next_vpages t dom count =
  let r =
    match Hashtbl.find_opt t.bump dom with
    | Some r -> r
    | None ->
      let r = ref first_vpage in
      Hashtbl.add t.bump dom r;
      r
  in
  let base = !r in
  r := base + count;
  base

let alloc_pages t dom ~count ~sharing =
  if count <= 0 then invalid_arg "Vmem.alloc_pages: count must be positive";
  let mmu = Machine.mmu t.machine in
  let phys = Machine.phys t.machine in
  let did = dom.Domain.id in
  let base = next_vpages t did count in
  for i = 0 to count - 1 do
    let frame = Physmem.alloc phys in
    Mmu.map mmu did ~vpage:(base + i) ~frame ~prot:Mmu.Read_write;
    Hashtbl.replace t.allocs (did, base + i) { frame; sharing }
  done;
  base * Machine.page_size t.machine

let alloc_of t dom vpage =
  match Hashtbl.find_opt t.allocs (dom.Domain.id, vpage) with
  | Some a -> a
  | None -> fail "page %d is not an allocation of domain %s" vpage dom.Domain.name

let free_pages t dom ~vaddr ~count =
  let ps = Machine.page_size t.machine in
  let base = vaddr / ps in
  let mmu = Machine.mmu t.machine in
  let phys = Machine.phys t.machine in
  for i = 0 to count - 1 do
    let vpage = base + i in
    let a = alloc_of t dom vpage in
    ignore (Mmu.unmap mmu dom.Domain.id ~vpage);
    Physmem.release phys a.frame;
    Hashtbl.remove t.allocs (dom.Domain.id, vpage);
    Hashtbl.remove t.fault_cbs (dom.Domain.id, vpage);
    if a.sharing = Shared then
      jot t ~kind:Journal.Page_unshare ~domain:dom.Domain.id ~info:a.frame
        ~detail:(Printf.sprintf "vpage %d" vpage)
  done

let map_shared t ~from_dom ~vaddr ~count ~into ~prot =
  let ps = Machine.page_size t.machine in
  let src_base = vaddr / ps in
  let mmu = Machine.mmu t.machine in
  let phys = Machine.phys t.machine in
  (* validate the whole run before touching anything *)
  let sources =
    List.init count (fun i ->
        let a = alloc_of t from_dom (src_base + i) in
        if a.sharing <> Shared then
          fail "page %d of %s is Exclusive and cannot be shared" (src_base + i)
            from_dom.Domain.name;
        a)
  in
  let dst_base = next_vpages t into.Domain.id count in
  List.iteri
    (fun i a ->
      Physmem.ref_frame phys a.frame;
      Mmu.map mmu into.Domain.id ~vpage:(dst_base + i) ~frame:a.frame ~prot;
      Hashtbl.replace t.allocs (into.Domain.id, dst_base + i)
        { frame = a.frame; sharing = Shared };
      jot t ~kind:Journal.Page_share ~domain:into.Domain.id ~info:a.frame
        ~detail:
          (Printf.sprintf "frame %d from dom %d vpage %d" a.frame
             from_dom.Domain.id (dst_base + i)))
    sources;
  dst_base * ps

let vpage_of t vaddr = vaddr / Machine.page_size t.machine

let set_prot t dom ~vaddr prot =
  ignore (alloc_of t dom (vpage_of t vaddr));
  Mmu.set_prot (Machine.mmu t.machine) dom.Domain.id ~vpage:(vpage_of t vaddr) prot

let set_fault_callback t dom ~vaddr f =
  Hashtbl.replace t.fault_cbs (dom.Domain.id, vpage_of t vaddr) f

let clear_fault_callback t dom ~vaddr =
  Hashtbl.remove t.fault_cbs (dom.Domain.id, vpage_of t vaddr)

let hook_page t dom ~vaddr on =
  Mmu.set_fault_hook (Machine.mmu t.machine) dom.Domain.id ~vpage:(vpage_of t vaddr) on

let pages_of t dom =
  Hashtbl.fold (fun (d, _) _ acc -> if d = dom.Domain.id then acc + 1 else acc) t.allocs 0

(* every live allocation as (domain id, vpage), sorted — the snapshot
   System.transact diffs to roll page tables back on abort *)
let alloc_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.allocs [] |> List.sort compare

let reserve_pages t dom ~count =
  if count <= 0 then invalid_arg "Vmem.reserve_pages: count must be positive";
  let base = next_vpages t dom.Domain.id count in
  base * Machine.page_size t.machine

let map_page t dom ~vaddr ~frame ~prot =
  Mmu.map (Machine.mmu t.machine) dom.Domain.id ~vpage:(vpage_of t vaddr) ~frame ~prot

let unmap_page t dom ~vaddr =
  match Mmu.unmap (Machine.mmu t.machine) dom.Domain.id ~vpage:(vpage_of t vaddr) with
  | frame -> frame
  | exception Invalid_argument _ -> fail "unmap_page: %#x not mapped" vaddr

let set_page_prot t dom ~vaddr prot =
  Mmu.set_prot (Machine.mmu t.machine) dom.Domain.id ~vpage:(vpage_of t vaddr) prot

let phys_of t dom ~vaddr =
  let ps = Machine.page_size t.machine in
  match Mmu.frame_of (Machine.mmu t.machine) dom.Domain.id ~vpage:(vaddr / ps) with
  | Some frame -> (frame * ps) + (vaddr mod ps)
  | None -> fail "phys_of: %#x not mapped in %s" vaddr dom.Domain.name

let destroy_domain t dom =
  let did = dom.Domain.id in
  let mmu = Machine.mmu t.machine in
  let phys = Machine.phys t.machine in
  let mine =
    Hashtbl.fold (fun (d, vp) a acc -> if d = did then (vp, a) :: acc else acc)
      t.allocs []
  in
  List.iter
    (fun (vpage, (a : allocation)) ->
      ignore (Mmu.unmap mmu did ~vpage);
      Physmem.release phys a.frame;
      Hashtbl.remove t.allocs (did, vpage))
    mine;
  let cbs = Hashtbl.fold (fun (d, vp) _ acc -> if d = did then vp :: acc else acc) t.fault_cbs [] in
  List.iter (fun vp -> Hashtbl.remove t.fault_cbs (did, vp)) cbs;
  t.grants <- List.filter (fun g -> g.grant_domain <> did) t.grants;
  Hashtbl.remove t.bump did

let alloc_io t dom ~device ~sharing =
  match Machine.find_device t.machine device with
  | None -> fail "no such device %S" device
  | Some (io_base, reg_count) ->
    let existing = List.filter (fun g -> String.equal g.device device) t.grants in
    if List.exists (fun g -> g.io_sharing = Exclusive) existing then
      fail "device %S is exclusively granted" device;
    if sharing = Exclusive && existing <> [] then
      fail "device %S already has grants; exclusive grant refused" device;
    let g =
      { grant_domain = dom.Domain.id; device; io_base; reg_count; io_sharing = sharing }
    in
    t.grants <- g :: t.grants;
    g

let release_io t grant = t.grants <- List.filter (fun g -> g != grant) t.grants

let check_grant t grant ~reg =
  if not (List.memq grant t.grants) then fail "io grant for %S was released" grant.device;
  if reg < 0 || reg >= grant.reg_count then
    fail "register %d out of range for %S" reg grant.device;
  let cur = Mmu.current_context (Machine.mmu t.machine) in
  if cur <> grant.grant_domain then
    fail "io grant for %S belongs to domain %d, but domain %d is running"
      grant.device grant.grant_domain cur

let io_read t grant ~reg =
  check_grant t grant ~reg;
  Machine.io_read t.machine (grant.io_base + (reg * 4))

let io_write t grant ~reg v =
  check_grant t grant ~reg;
  Machine.io_write t.machine (grant.io_base + (reg * 4)) v
