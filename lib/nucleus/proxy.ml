module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Call_ctx = Pm_obj.Call_ctx
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke

let class_prefix = "proxy:"

let is_proxy inst =
  String.length inst.Instance.class_name >= String.length class_prefix
  && String.equal
       (String.sub inst.Instance.class_name 0 (String.length class_prefix))
       class_prefix

let make ~machine ~vmem ~registry ~target ~importer =
  (* the fault-hooked "interface entry" page in the importer's domain *)
  let entry_page = Vmem.alloc_pages vmem importer ~count:1 ~sharing:Vmem.Exclusive in
  Vmem.hook_page vmem importer ~vaddr:entry_page true;
  let forward_method iface_name (m : Iface.meth) =
    let forward (ctx : Call_ctx.t) args =
      if ctx.Call_ctx.caller_domain <> importer.Domain.id then
        Error
          (Oerror.Domain_error
             (Printf.sprintf "proxy belongs to domain %d, called from %d"
                importer.Domain.id ctx.Call_ctx.caller_domain))
      else if target.Instance.revoked then Error Oerror.Revoked
      else begin
        let clock = ctx.Call_ctx.clock and costs = ctx.Call_ctx.costs in
        (* always-on flight record of the crossing, charged nothing *)
        Pm_obs.Flightrec.record
          (Pm_obs.Obs.flight (Clock.obs clock))
          ~kind:Pm_obs.Flightrec.Crossing ~domain:importer.Domain.id
          ~at:(Clock.now clock) ~info:target.Instance.domain;
        (* referencing the interface entry faults into the kernel *)
        Clock.advance clock costs.Cost.page_fault;
        Clock.count clock "proxy_fault";
        Clock.count clock "cross_domain_call";
        (* map arguments into the target's domain, word by word *)
        let words_in = List.fold_left (fun acc v -> acc + Value.words v) 0 args in
        Clock.advance clock (words_in * costs.Cost.map_word);
        let mmu = Machine.mmu machine in
        let caller_ctx = Mmu.current_context mmu in
        Mmu.switch_context mmu target.Instance.domain;
        let result =
          Fun.protect
            ~finally:(fun () -> Mmu.switch_context mmu caller_ctx)
            (fun () ->
              Invoke.call
                (Call_ctx.in_domain ctx target.Instance.domain)
                target ~iface:iface_name ~meth:m.Iface.mname args)
        in
        (* map the return value back *)
        (match result with
        | Ok v -> Clock.advance clock (Value.words v * costs.Cost.map_word)
        | Error _ -> ());
        result
      end
    in
    (* span around the whole crossing: fault, argument mapping, context
       switches and the remote dispatch all land inside it *)
    let impl (ctx : Call_ctx.t) args =
      let obs = Clock.obs ctx.Call_ctx.clock in
      if not (Pm_obs.Obs.enabled obs) then forward ctx args
      else begin
        let clock = ctx.Call_ctx.clock in
        let t0 = Clock.now clock in
        let tok =
          Pm_obs.Obs.span_begin obs ~now:t0 ~domain:importer.Domain.id
            ~obj:(class_prefix ^ target.Instance.class_name)
            ~iface:iface_name ~meth:m.Iface.mname
        in
        let result = forward ctx args in
        Clock.advance clock ctx.Call_ctx.costs.Cost.mem_write;
        let t1 = Clock.now clock in
        Pm_obs.Obs.span_end obs ~now:t1 tok;
        Pm_obs.Obs.observe obs ~domain:importer.Domain.id "proxy.call" (t1 - t0);
        Pm_obs.Acct.crossing (Pm_obs.Obs.acct obs) ~domain:importer.Domain.id (t1 - t0);
        result
      end
    in
    { m with Iface.impl }
  in
  let proxy_iface (i : Iface.t) =
    Iface.make ~version:i.Iface.version ~name:i.Iface.name
      (List.map (forward_method i.Iface.name) i.Iface.methods)
  in
  Instance.create registry
    ~class_name:(class_prefix ^ target.Instance.class_name)
    ~domain:importer.Domain.id
    (List.map proxy_iface target.Instance.interfaces)
