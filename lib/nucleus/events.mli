(** Processor event management.

    "All processor events (traps and interrupts) are handled by this
    service. Components can register call-backs which are called every
    time a specified processor event occurs. A call-back consists of a
    context, and the address of a call-back function."

    The service owns every machine vector; registered call-backs for an
    event run in registration order. Delivering a call-back into a domain
    other than the currently running one switches MMU contexts around it.

    [register_popup] is the standard redirection to the thread system:
    the call-back body runs as a pop-up (proto-)thread. *)

type t

type event = Trap of int | Irq of int

type cb_id

val create : Pm_machine.Machine.t -> t

(** [register t event ~domain f] installs a call-back; [f] receives the
    trap argument (0 for interrupts). *)
val register : t -> event -> domain:Domain.t -> (int -> unit) -> cb_id

(** [register_popup t event ~domain ~sched ?priority f] installs a
    call-back that runs [f] as a pop-up thread on [sched]. *)
val register_popup :
  t ->
  event ->
  domain:Domain.t ->
  sched:Pm_threads.Scheduler.t ->
  ?priority:int ->
  (int -> unit) ->
  cb_id

val unregister : t -> cb_id -> unit

(** [remove_domain t dom] drops every call-back registered for [dom]. *)
val remove_domain : t -> Domain.t -> unit

(** [callbacks t event] is the number of live call-backs on an event. *)
val callbacks : t -> event -> int

(** [registrations t] lists every live call-back with its event and
    registering domain, in registration order — introspection for the
    composition linter's dead-handler check. *)
val registrations : t -> (event * Domain.t * cb_id) list

(** [deliveries t] counts call-back invocations since creation. *)
val deliveries : t -> int
