module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Obs = Pm_obs.Obs
module Journal = Pm_journal.Journal

type t = { machine : Machine.t }

let create machine = { machine }

let journal t = Obs.journal (Clock.obs (Machine.clock t.machine))

let service_object t registry kdom =
  let j () = journal t in
  let mode_m _ctx = function
    | [] -> Ok (Value.Str (Journal.mode_to_string (Journal.mode (j ()))))
    | _ -> Error (Oerror.Type_error "mode()")
  in
  let set_mode_m _ctx = function
    | [ Value.Str m ] ->
      (match Journal.mode_of_string m with
      | Some mode ->
        Journal.set_mode (j ()) mode;
        Ok Value.Unit
      | None -> Error (Oerror.Type_error "set_mode(\"tail\"|\"full\")"))
    | _ -> Error (Oerror.Type_error "set_mode(str)")
  in
  let snapshot_m _ctx = function
    | [ Value.Int n ] ->
      let jn = j () in
      if n <= 0 then Ok (Value.Str (Journal.to_text jn))
      else Ok (Value.Str (Journal.tail_to_text jn n))
    | _ -> Error (Oerror.Type_error "snapshot(int)")
  in
  let mark_m ctx = function
    | [ Value.Str label ] ->
      let clock = Machine.clock t.machine in
      let seq =
        Journal.mark (j ())
          ~domain:ctx.Pm_obj.Call_ctx.origin_domain
          ~at:(Clock.now clock) label
      in
      Ok (Value.Int seq)
    | _ -> Error (Oerror.Type_error "mark(str)")
  in
  let export_m _ctx = function
    | [] -> Ok (Value.Str (Journal.export (j ())))
    | _ -> Error (Oerror.Type_error "export()")
  in
  let stats_m _ctx = function
    | [] -> Ok (Value.Str (Journal.stats_line (j ())))
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let complete_m _ctx = function
    | [] -> Ok (Value.Bool (Journal.complete (j ())))
    | _ -> Error (Oerror.Type_error "complete()")
  in
  let iface =
    Iface.make ~name:"journal"
      [
        Iface.meth ~name:"mode" ~args:[] ~ret:Vtype.Tstr mode_m;
        Iface.meth ~name:"set_mode" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit set_mode_m;
        Iface.meth ~name:"snapshot" ~args:[ Vtype.Tint ] ~ret:Vtype.Tstr snapshot_m;
        Iface.meth ~name:"mark" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tint mark_m;
        Iface.meth ~name:"export" ~args:[] ~ret:Vtype.Tstr export_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:Vtype.Tstr stats_m;
        Iface.meth ~name:"complete" ~args:[] ~ret:Vtype.Tbool complete_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.journal" ~domain:kdom.Domain.id
    [ iface ]
