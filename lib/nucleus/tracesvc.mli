(** The trace service: kernel-wide tracing and metrics exported as the
    fifth boot-time nucleus object, [/nucleus/trace].

    The service drives the clock's {!Pm_obs.Obs} sink ([start], [stop],
    [reset], [snapshot], [histogram]) and manages trace interposers over
    name-space entries ([interpose], [uninterpose]). Building an
    interposer needs the component toolbox, which layers {e above} this
    library — so the factory is injected by system assembly via
    {!set_interposer} (see [Pm_obs_agent.Obs_agent.installer]). *)

type installed = { agent : Pm_obj.Instance.t; original : Pm_obj.Instance.t }

type interposer = {
  install : string -> (installed, string) result;
  uninstall : string -> installed -> (unit, string) result;
}

type t

val create : Pm_machine.Machine.t -> t

(** [set_interposer t i] wires the agent factory; until it is called,
    the [interpose]/[uninterpose] methods fail with a [Fault]. *)
val set_interposer : t -> interposer -> unit

(** [interpose t path] installs a trace agent over the entry at [path]
    and returns it. *)
val interpose : t -> string -> (Pm_obj.Instance.t, string) result

(** [uninterpose t path] restores the original binding at [path]. *)
val uninterpose : t -> string -> (unit, string) result

(** [interposed t] lists the paths currently carrying a trace agent. *)
val interposed : t -> string list

(** [service_object t registry kdom] builds the kernel-domain service
    instance exporting the [trace] interface:
    [start()], [stop()], [reset()], [enabled() : bool],
    [snapshot(fmt) : str] with [fmt] one of ["text"]/["json"],
    [histogram(domain, name) : str],
    [interpose(path) : int] (the agent's handle), and
    [uninterpose(path)]. *)
val service_object :
  t -> Pm_obj.Instance.t Pm_obj.Registry.t -> Domain.t -> Pm_obj.Instance.t
