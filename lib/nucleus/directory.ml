module Namespace = Pm_names.Namespace
module Path = Pm_names.Path
module View = Pm_names.View
module Instance = Pm_obj.Instance
module Registry = Pm_obj.Registry
module Clock = Pm_machine.Clock
module Journal = Pm_journal.Journal

type bind_error = Name of Namespace.error | Dangling of int

let bind_error_to_string = function
  | Name e -> Namespace.error_to_string e
  | Dangling h -> Printf.sprintf "handle %d is dangling" h

type t = {
  machine : Pm_machine.Machine.t;
  vmem : Vmem.t;
  registry : Instance.t Registry.t;
  ns : Namespace.t;
  proxies : (int * int, Instance.t) Hashtbl.t; (* (target oid, importer) -> proxy *)
  mutable replacements : (Path.t * int * int) list;
      (* interposition log, newest first: (path, old handle, new handle) —
         plain stores, read by the composition linter *)
}

let create ~machine ~vmem ~registry ~ns =
  { machine; vmem; registry; ns; proxies = Hashtbl.create 16; replacements = [] }

let namespace t = t.ns
let registry t = t.registry

(* structural mutations are journalled — plain stores, no simulated
   cycles, like every other journal record *)
let jot t ~kind ~domain ~info ~detail =
  let clock = Pm_machine.Machine.clock t.machine in
  Journal.record
    (Pm_obs.Obs.journal (Clock.obs clock))
    ~kind ~domain ~at:(Clock.now clock) ~info ~detail

let register t path inst =
  match Namespace.register t.ns path (Instance.handle inst) with
  | Error _ as e -> e
  | Ok () ->
    jot t ~kind:Journal.Bind ~domain:inst.Instance.domain
      ~info:(Instance.handle inst) ~detail:(Path.to_string path);
    Ok ()

let unregister t path =
  let prev = Namespace.lookup t.ns path in
  match Namespace.unregister t.ns path with
  | Error _ as e -> e
  | Ok () ->
    let info, domain =
      match prev with
      | Ok h ->
        ( h,
          match Registry.get t.registry h with
          | Some inst -> inst.Instance.domain
          | None -> 0 )
      | Error _ -> (0, 0)
    in
    jot t ~kind:Journal.Unbind ~domain ~info ~detail:(Path.to_string path);
    Ok ()

let replace t path inst =
  match Namespace.replace t.ns path (Instance.handle inst) with
  | Error e -> Error (Name e)
  | Ok old_handle ->
    t.replacements <- (path, old_handle, Instance.handle inst) :: t.replacements;
    jot t ~kind:Journal.Interpose ~domain:inst.Instance.domain
      ~info:(Instance.handle inst)
      ~detail:
        (Printf.sprintf "%s: %d -> %d" (Path.to_string path) old_handle
           (Instance.handle inst));
    (match Registry.get t.registry old_handle with
    | Some old_inst -> Ok old_inst
    | None -> Error (Dangling old_handle))

(* Undo the newest [replace] of [agent] at [path]: swap [restore] back
   in and pop the matching interposition-log entry, so an aborted
   transaction leaves the log (and hence the linter) exactly as before.
   The composition primitive behind System.transact rollback. *)
let unreplace t path ~agent ~restore =
  match Namespace.replace t.ns path (Instance.handle restore) with
  | Error e -> Error (Name e)
  | Ok _displaced ->
    let agent_h = Instance.handle agent in
    let dropped = ref false in
    t.replacements <-
      List.filter
        (fun (p, _old_h, new_h) ->
          if (not !dropped) && Path.equal p path && new_h = agent_h then begin
            dropped := true;
            false
          end
          else true)
        t.replacements;
    jot t ~kind:Journal.Uninterpose ~domain:restore.Instance.domain
      ~info:(Instance.handle restore)
      ~detail:
        (Printf.sprintf "%s: %d -> %d" (Path.to_string path) agent_h
           (Instance.handle restore));
    Ok ()

let replacements t = List.rev t.replacements

let proxy_for t target importer =
  let key = (Instance.handle target, importer.Domain.id) in
  match Hashtbl.find_opt t.proxies key with
  | Some p when not p.Instance.revoked -> p
  | _ ->
    let p =
      Proxy.make ~machine:t.machine ~vmem:t.vmem ~registry:t.registry ~target
        ~importer
    in
    Hashtbl.replace t.proxies key p;
    p

let bind t ctx ~view ~domain path =
  match View.bind ctx view path with
  | Error e -> Error (Name e)
  | Ok handle ->
    (match Registry.get t.registry handle with
    | None -> Error (Dangling handle)
    | Some inst ->
      if inst.Instance.domain = domain.Domain.id then Ok inst
      else Ok (proxy_for t inst domain))

let bind_exn t ctx ~view ~domain path =
  match bind t ctx ~view ~domain path with
  | Ok inst -> inst
  | Error e -> failwith ("Directory.bind: " ^ bind_error_to_string e)

let resolve_handle t h = Registry.get t.registry h

let proxy_count t = Hashtbl.length t.proxies
