module Namespace = Pm_names.Namespace
module Path = Pm_names.Path
module View = Pm_names.View
module Instance = Pm_obj.Instance
module Registry = Pm_obj.Registry

type bind_error = Name of Namespace.error | Dangling of int

let bind_error_to_string = function
  | Name e -> Namespace.error_to_string e
  | Dangling h -> Printf.sprintf "handle %d is dangling" h

type t = {
  machine : Pm_machine.Machine.t;
  vmem : Vmem.t;
  registry : Instance.t Registry.t;
  ns : Namespace.t;
  proxies : (int * int, Instance.t) Hashtbl.t; (* (target oid, importer) -> proxy *)
  mutable replacements : (Path.t * int * int) list;
      (* interposition log, newest first: (path, old handle, new handle) —
         plain stores, read by the composition linter *)
}

let create ~machine ~vmem ~registry ~ns =
  { machine; vmem; registry; ns; proxies = Hashtbl.create 16; replacements = [] }

let namespace t = t.ns
let registry t = t.registry

let register t path inst = Namespace.register t.ns path (Instance.handle inst)

let unregister t path = Namespace.unregister t.ns path

let replace t path inst =
  match Namespace.replace t.ns path (Instance.handle inst) with
  | Error e -> Error (Name e)
  | Ok old_handle ->
    t.replacements <- (path, old_handle, Instance.handle inst) :: t.replacements;
    (match Registry.get t.registry old_handle with
    | Some old_inst -> Ok old_inst
    | None -> Error (Dangling old_handle))

let replacements t = List.rev t.replacements

let proxy_for t target importer =
  let key = (Instance.handle target, importer.Domain.id) in
  match Hashtbl.find_opt t.proxies key with
  | Some p when not p.Instance.revoked -> p
  | _ ->
    let p =
      Proxy.make ~machine:t.machine ~vmem:t.vmem ~registry:t.registry ~target
        ~importer
    in
    Hashtbl.replace t.proxies key p;
    p

let bind t ctx ~view ~domain path =
  match View.bind ctx view path with
  | Error e -> Error (Name e)
  | Ok handle ->
    (match Registry.get t.registry handle with
    | None -> Error (Dangling handle)
    | Some inst ->
      if inst.Instance.domain = domain.Domain.id then Ok inst
      else Ok (proxy_for t inst domain))

let bind_exn t ctx ~view ~domain path =
  match bind t ctx ~view ~domain path with
  | Ok inst -> inst
  | Error e -> failwith ("Directory.bind: " ^ bind_error_to_string e)

let resolve_handle t h = Registry.get t.registry h

let proxy_count t = Hashtbl.length t.proxies
