module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Clock = Pm_machine.Clock
module Nic = Pm_machine.Nic
module Timer_dev = Pm_machine.Timer_dev
module Console = Pm_machine.Console
module Disk = Pm_machine.Disk
module Blkdev = Pm_machine.Blkdev
module Namespace = Pm_names.Namespace
module Path = Pm_names.Path
module View = Pm_names.View
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Registry = Pm_obj.Registry
module Composite = Pm_obj.Composite
module Scheduler = Pm_threads.Scheduler

type t = {
  machine : Machine.t;
  registry : Instance.t Registry.t;
  ns : Namespace.t;
  root_view : View.t;
  api : Api.t;
  loader : Loader.t;
  kernel_domain : Domain.t;
  mutable user_domains : Domain.t list; (* newest first *)
  nic : Nic.t;
  timer : Timer_dev.t;
  console : Console.t;
  disk : Disk.t;
  blkdev : Blkdev.t;
  nucleus : Composite.t;
  tracesvc : Tracesvc.t;
  journalsvc : Journalsvc.t;
  querysvc : Querysvc.t;
  cpu : Pm_machine.Cpu.t option; (* SMP complex when booted with >1 CPUs *)
  smp : Pm_threads.Smp.t option; (* per-CPU schedulers over it *)
}

let machine t = t.machine
let clock t = Machine.clock t.machine
let cpu t = t.cpu
let smp t = t.smp
let cpus t = match t.cpu with Some c -> Pm_machine.Cpu.count c | None -> 1
let api t = t.api
let events t = t.api.Api.events
let vmem t = t.api.Api.vmem
let directory t = t.api.Api.directory
let certification t = t.api.Api.certification
let tracesvc t = t.tracesvc
let journalsvc t = t.journalsvc
let querysvc t = t.querysvc
let loader t = t.loader
let sched t = t.api.Api.sched
let kernel_domain t = t.kernel_domain
let nic t = t.nic
let timer t = t.timer
let console t = t.console
let disk t = t.disk
let blkdev t = t.blkdev

let ctx t dom = Api.ctx t.api dom

let domains t = t.kernel_domain :: List.rev t.user_domains

(* domain lifecycle is journalled — plain stores, no simulated cycles *)
let jot machine ~kind ~domain ~info ~detail =
  let clock = Machine.clock machine in
  Pm_journal.Journal.record
    (Pm_obs.Obs.journal (Clock.obs clock))
    ~kind ~domain ~at:(Clock.now clock) ~info ~detail

let domain_of_id t id =
  if id = t.kernel_domain.Domain.id then Some t.kernel_domain
  else List.find_opt (fun d -> d.Domain.id = id) t.user_domains

(* ------------------------------------------------------------------ *)
(* Service wrapper objects: each nucleus service as an object with a    *)
(* small interface, so the kernel itself is built from the same         *)
(* software architecture it offers to applications.                     *)
(* ------------------------------------------------------------------ *)

let ok_int n = Ok (Value.Int n)
let ok_str s = Ok (Value.Str s)

(* The directory object resolves names relative to the *caller's* domain
   view, so user programs get their own overrides applied — this needs
   the domain table, hence the forward reference through [t_ref]. *)
let directory_object t_ref registry kdom =
  let find_domain ctx =
    let t = Option.get !t_ref in
    domain_of_id t ctx.Pm_obj.Call_ctx.origin_domain
  in
  let bind_m ctx args =
    match (find_domain ctx, args) with
    | Some dom, [ Value.Str path ] ->
      let t = Option.get !t_ref in
      (match
         Directory.bind t.api.Api.directory ctx ~view:dom.Domain.view ~domain:dom
           (Path.of_string path)
       with
      | Ok inst -> ok_int (Instance.handle inst)
      | Error e -> Error (Oerror.Fault (Directory.bind_error_to_string e)))
    | None, _ -> Error (Oerror.Domain_error "unknown caller domain")
    | _, _ -> Error (Oerror.Type_error "bind(str)")
  in
  let register_m ctx args =
    let t = Option.get !t_ref in
    match (find_domain ctx, args) with
    | Some _, [ Value.Str path; Value.Int handle ] ->
      (match Directory.resolve_handle t.api.Api.directory handle with
      | None -> Error (Oerror.Fault (Printf.sprintf "dangling handle %d" handle))
      | Some inst ->
        (match Directory.register t.api.Api.directory (Path.of_string path) inst with
        | Ok () -> Ok Value.Unit
        | Error e -> Error (Oerror.Fault (Namespace.error_to_string e))))
    | None, _ -> Error (Oerror.Domain_error "unknown caller domain")
    | _, _ -> Error (Oerror.Type_error "register(str, handle)")
  in
  let unregister_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [ Value.Str path ] ->
      (match Directory.unregister t.api.Api.directory (Path.of_string path) with
      | Ok () -> Ok Value.Unit
      | Error e -> Error (Oerror.Fault (Namespace.error_to_string e)))
    | _ -> Error (Oerror.Type_error "unregister(str)")
  in
  let replace_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [ Value.Str path; Value.Int handle ] ->
      (match Directory.resolve_handle t.api.Api.directory handle with
      | None -> Error (Oerror.Fault (Printf.sprintf "dangling handle %d" handle))
      | Some inst ->
        (match Directory.replace t.api.Api.directory (Path.of_string path) inst with
        | Ok old -> ok_int (Instance.handle old)
        | Error e -> Error (Oerror.Fault (Directory.bind_error_to_string e))))
    | _ -> Error (Oerror.Type_error "replace(str, handle)")
  in
  let list_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [ Value.Str path ] ->
      (match Namespace.list (Directory.namespace t.api.Api.directory) (Path.of_string path) with
      | Ok entries ->
        Ok (Value.List (List.map (fun (seg, _) -> Value.Str seg) entries))
      | Error e -> Error (Oerror.Fault (Namespace.error_to_string e)))
    | _ -> Error (Oerror.Type_error "list(str)")
  in
  let iface =
    Iface.make ~name:"directory"
      [
        Iface.meth ~name:"bind" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tint bind_m;
        Iface.meth ~name:"register" ~args:[ Vtype.Tstr; Vtype.Tint ] ~ret:Vtype.Tunit
          register_m;
        Iface.meth ~name:"unregister" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit unregister_m;
        Iface.meth ~name:"replace" ~args:[ Vtype.Tstr; Vtype.Tint ] ~ret:Vtype.Tint
          replace_m;
        Iface.meth ~name:"list" ~args:[ Vtype.Tstr ] ~ret:(Vtype.Tlist Vtype.Tstr) list_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.directory" ~domain:kdom.Domain.id
    [ iface ]

let memory_object t_ref registry kdom =
  let find_domain ctx =
    let t = Option.get !t_ref in
    domain_of_id t ctx.Pm_obj.Call_ctx.origin_domain
  in
  let alloc_m ctx args =
    let t = Option.get !t_ref in
    match (find_domain ctx, args) with
    | Some dom, [ Value.Int count; Value.Bool shared ] ->
      let sharing = if shared then Vmem.Shared else Vmem.Exclusive in
      (match Vmem.alloc_pages t.api.Api.vmem dom ~count ~sharing with
      | vaddr -> ok_int vaddr
      | exception (Vmem.Vmem_error m | Invalid_argument m) -> Error (Oerror.Fault m)
      | exception Out_of_memory -> Error (Oerror.Fault "out of physical memory"))
    | None, _ -> Error (Oerror.Domain_error "unknown caller domain")
    | _, _ -> Error (Oerror.Type_error "alloc_pages(int, bool)")
  in
  let free_m ctx args =
    let t = Option.get !t_ref in
    match (find_domain ctx, args) with
    | Some dom, [ Value.Int vaddr; Value.Int count ] ->
      (match Vmem.free_pages t.api.Api.vmem dom ~vaddr ~count with
      | () -> Ok Value.Unit
      | exception Vmem.Vmem_error m -> Error (Oerror.Fault m))
    | None, _ -> Error (Oerror.Domain_error "unknown caller domain")
    | _, _ -> Error (Oerror.Type_error "free_pages(int, int)")
  in
  let pages_m ctx args =
    let t = Option.get !t_ref in
    match (find_domain ctx, args) with
    | Some dom, [] -> ok_int (Vmem.pages_of t.api.Api.vmem dom)
    | None, _ -> Error (Oerror.Domain_error "unknown caller domain")
    | _, _ -> Error (Oerror.Type_error "pages()")
  in
  let iface =
    Iface.make ~name:"memory"
      [
        Iface.meth ~name:"alloc_pages" ~args:[ Vtype.Tint; Vtype.Tbool ] ~ret:Vtype.Tint
          alloc_m;
        Iface.meth ~name:"free_pages" ~args:[ Vtype.Tint; Vtype.Tint ] ~ret:Vtype.Tunit
          free_m;
        Iface.meth ~name:"pages" ~args:[] ~ret:Vtype.Tint pages_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.memory" ~domain:kdom.Domain.id [ iface ]

let events_object t_ref registry kdom =
  let deliveries_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [] -> ok_int (Events.deliveries t.api.Api.events)
    | _ -> Error (Oerror.Type_error "deliveries()")
  in
  let callbacks_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [ Value.Str kind; Value.Int num ] ->
      let event =
        match kind with
        | "trap" -> Some (Events.Trap num)
        | "irq" -> Some (Events.Irq num)
        | _ -> None
      in
      (match event with
      | Some e -> ok_int (Events.callbacks t.api.Api.events e)
      | None -> Error (Oerror.Type_error "callbacks(\"trap\"|\"irq\", int)"))
    | _ -> Error (Oerror.Type_error "callbacks(str, int)")
  in
  let iface =
    Iface.make ~name:"events"
      [
        Iface.meth ~name:"deliveries" ~args:[] ~ret:Vtype.Tint deliveries_m;
        Iface.meth ~name:"callbacks" ~args:[ Vtype.Tstr; Vtype.Tint ] ~ret:Vtype.Tint
          callbacks_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.events" ~domain:kdom.Domain.id [ iface ]

let certification_object t_ref registry kdom =
  let stats_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [] ->
      Ok
        (Value.Pair
           ( Value.Int (Certsvc.validations t.api.Api.certification),
             Value.Int (Certsvc.failures t.api.Api.certification) ))
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let root_m _ctx args =
    let t = Option.get !t_ref in
    match args with
    | [] -> ok_str (Pm_secure.Principal.id (Certsvc.root t.api.Api.certification))
    | _ -> Error (Oerror.Type_error "root()")
  in
  let iface =
    Iface.make ~name:"certification"
      [
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tpair (Vtype.Tint, Vtype.Tint))
          stats_m;
        Iface.meth ~name:"root" ~args:[] ~ret:Vtype.Tstr root_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.certification" ~domain:kdom.Domain.id
    [ iface ]

(* ------------------------------------------------------------------ *)

let must_register ns path handle =
  match Namespace.register ns (Path.of_string path) handle with
  | Ok () -> ()
  | Error e -> failwith ("Kernel.boot: " ^ Namespace.error_to_string e)

let boot ?costs ?frames ?page_size ?(cpus = 1) ~root () =
  let machine = Machine.create ?costs ?frames ?page_size () in
  let timer = Timer_dev.create machine ~irq_line:0 in
  let nic = Nic.create machine ~irq_line:1 in
  let disk = Disk.create machine ~irq_line:2 ~blocks:512 in
  let console = Console.create machine in
  let blkdev = Blkdev.create machine ~irq_line:3 ~blocks:1024 ~block_size:512 in
  let registry = Registry.create () in
  let ns = Namespace.create () in
  let root_view = View.of_namespace ns in
  let kernel_domain =
    let id = Mmu.current_context (Machine.mmu machine) in
    (* share one accounting record between the nucleus's Domain.t and the
       clock's per-domain table *)
    let acct = Pm_obs.Acct.slot (Pm_obs.Obs.acct (Clock.obs (Machine.clock machine))) id in
    Domain.make ~acct ~id ~name:"kernel" ~kind:Domain.Kernel ~view:root_view ()
  in
  let events = Events.create machine in
  let vmem = Vmem.create machine in
  let directory = Directory.create ~machine ~vmem ~registry ~ns in
  let certification = Certsvc.create machine ~root in
  let sched = Scheduler.create (Machine.clock machine) (Machine.costs machine) in
  Scheduler.set_mmu sched (Machine.mmu machine);
  (* >1 CPUs: hang an SMP complex off the machine and give every CPU its
     own scheduler; at 1 CPU nothing is created and the run is
     byte-identical to every earlier single-core boot *)
  let cpu, smp =
    if cpus = 1 then (None, None)
    else begin
      let cpx = Pm_machine.Cpu.create machine ~cpus in
      let smp =
        Pm_threads.Smp.create ~mmu:(Machine.mmu machine) cpx ~boot:sched
          (Machine.costs machine)
      in
      (Some cpx, Some smp)
    end
  in
  let api =
    { Api.machine; registry; events; vmem; directory; certification; sched;
      kernel_domain }
  in
  let loader = Loader.create api in
  let t_ref = ref None in
  let dir_obj = directory_object t_ref registry kernel_domain in
  let mem_obj = memory_object t_ref registry kernel_domain in
  let ev_obj = events_object t_ref registry kernel_domain in
  let cert_obj = certification_object t_ref registry kernel_domain in
  let tracesvc = Tracesvc.create machine in
  let trace_obj = Tracesvc.service_object tracesvc registry kernel_domain in
  let journalsvc = Journalsvc.create machine in
  let journal_obj = Journalsvc.service_object journalsvc registry kernel_domain in
  let querysvc = Querysvc.create machine in
  let query_obj = Querysvc.service_object querysvc registry kernel_domain in
  (* the resident kernel: a static (link-time) composition of the seven
     service objects *)
  let nucleus =
    Composite.make registry ~class_name:"paramecium.nucleus"
      ~domain:kernel_domain.Domain.id ~mode:Composite.Static
      ~children:
        [ ("events", ev_obj); ("memory", mem_obj); ("directory", dir_obj);
          ("certification", cert_obj); ("trace", trace_obj);
          ("journal", journal_obj); ("query", query_obj) ]
      ~exports:
        [
          { Composite.as_name = "events"; child = "events"; iface = "events" };
          { Composite.as_name = "memory"; child = "memory"; iface = "memory" };
          { Composite.as_name = "directory"; child = "directory"; iface = "directory" };
          { Composite.as_name = "certification"; child = "certification";
            iface = "certification" };
          { Composite.as_name = "trace"; child = "trace"; iface = "trace" };
          { Composite.as_name = "journal"; child = "journal"; iface = "journal" };
          { Composite.as_name = "query"; child = "query"; iface = "query" };
        ]
  in
  (* boot binds go through the journal too, so state-at-cycle queries
     can answer for the nucleus services themselves *)
  let boot_register path handle =
    must_register ns path handle;
    let clock = Machine.clock machine in
    Pm_journal.Journal.record
      (Pm_obs.Obs.journal (Clock.obs clock))
      ~kind:Pm_journal.Journal.Bind ~domain:kernel_domain.Domain.id
      ~at:(Clock.now clock)
      ~info:handle ~detail:path
  in
  boot_register "/nucleus/events" (Instance.handle ev_obj);
  boot_register "/nucleus/memory" (Instance.handle mem_obj);
  boot_register "/nucleus/directory" (Instance.handle dir_obj);
  boot_register "/nucleus/certification" (Instance.handle cert_obj);
  boot_register "/nucleus/trace" (Instance.handle trace_obj);
  boot_register "/nucleus/journal" (Instance.handle journal_obj);
  boot_register "/nucleus/query" (Instance.handle query_obj);
  boot_register "/nucleus/kernel" (Instance.handle (Composite.instance nucleus));
  let t =
    { machine; registry; ns; root_view; api; loader; kernel_domain;
      user_domains = []; nic; timer; console; disk; blkdev; nucleus; tracesvc;
      journalsvc; querysvc; cpu; smp }
  in
  t_ref := Some t;
  jot machine ~kind:Pm_journal.Journal.Domain_up ~domain:kernel_domain.Domain.id
    ~info:kernel_domain.Domain.id ~detail:"kernel";
  t

let create_domain t ~name ?(overrides = []) () =
  let id = Mmu.new_context (Machine.mmu t.machine) in
  let view = View.derive ~overrides t.root_view in
  let acct =
    Pm_obs.Acct.slot (Pm_obs.Obs.acct (Clock.obs (Machine.clock t.machine))) id
  in
  let dom = Domain.make ~acct ~id ~name ~kind:Domain.User ~view () in
  t.user_domains <- dom :: t.user_domains;
  jot t.machine ~kind:Pm_journal.Journal.Domain_up ~domain:id ~info:id ~detail:name;
  dom

let destroy_domain t dom =
  if Domain.is_kernel dom then invalid_arg "Kernel.destroy_domain: kernel domain";
  if not dom.Domain.alive then invalid_arg "Kernel.destroy_domain: already destroyed";
  dom.Domain.alive <- false;
  jot t.machine ~kind:Pm_journal.Journal.Domain_down ~domain:dom.Domain.id
    ~info:dom.Domain.id ~detail:dom.Domain.name;
  (* revoke the domain's instances and drop their names *)
  let ns = t.ns in
  let dead = Hashtbl.create 8 in
  Namespace.iter ns (fun path handle ->
      match Directory.resolve_handle t.api.Api.directory handle with
      | Some inst when inst.Instance.domain = dom.Domain.id ->
        Hashtbl.replace dead path ()
      | _ -> ());
  Hashtbl.iter (fun path () -> ignore (Namespace.unregister ns path)) dead;
  let registry = t.api.Api.registry in
  (* walk the registry by handle range; handles are dense small ints *)
  let rec sweep h misses =
    if misses > 4096 then ()
    else begin
      match Registry.get registry h with
      | Some inst ->
        if inst.Instance.domain = dom.Domain.id then Instance.revoke inst;
        sweep (h + 1) 0
      | None -> sweep (h + 1) (misses + 1)
    end
  in
  sweep 1 0;
  Events.remove_domain t.api.Api.events dom;
  Vmem.destroy_domain t.api.Api.vmem dom;
  (* make sure the dead context is not current before deleting it *)
  let mmu = Machine.mmu t.machine in
  if Mmu.current_context mmu = dom.Domain.id then
    Mmu.switch_context mmu t.kernel_domain.Domain.id;
  let stray_frames = Mmu.delete_context mmu dom.Domain.id in
  (* frames still mapped raw (e.g. by a pager) go back to the pool *)
  List.iter
    (fun frame ->
      if Pm_machine.Physmem.is_allocated (Machine.phys t.machine) frame then
        Pm_machine.Physmem.release (Machine.phys t.machine) frame)
    stray_frames;
  t.user_domains <- List.filter (fun d -> d != dom) t.user_domains

let register_at t path inst =
  match Directory.register t.api.Api.directory (Path.of_string path) inst with
  | Ok () -> ()
  | Error e -> failwith ("Kernel.register_at: " ^ Namespace.error_to_string e)

let bind t dom path = Api.bind_exn t.api dom (Path.of_string path)

let run t =
  match t.smp with
  | Some smp -> Pm_threads.Smp.run smp
  | None -> Scheduler.run t.api.Api.sched ()

let step t ?(ticks = 1) () =
  (* a bounded dispatch budget per tick keeps yield-polling threads from
     starving device progress *)
  for _ = 1 to ticks do
    Machine.tick t.machine;
    match t.smp with
    | Some smp -> ignore (Pm_threads.Smp.run smp)
    | None -> ignore (Scheduler.run t.api.Api.sched ~budget:64 ())
  done
