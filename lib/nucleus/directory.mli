(** Directory service.

    "The directory service implements the name space ... It provides
    functions for registering, unregistering, and binding of objects."
    Binding resolves a name through the caller's view (overrides first),
    dereferences the handle, and — when the object lives in another
    protection domain — materializes (and caches) a {!Proxy}. *)

type t

type bind_error =
  | Name of Pm_names.Namespace.error
  | Dangling of int  (** the name resolved to a dead handle *)

val bind_error_to_string : bind_error -> string

val create :
  machine:Pm_machine.Machine.t ->
  vmem:Vmem.t ->
  registry:Pm_obj.Instance.t Pm_obj.Registry.t ->
  ns:Pm_names.Namespace.t ->
  t

val namespace : t -> Pm_names.Namespace.t
val registry : t -> Pm_obj.Instance.t Pm_obj.Registry.t

(** [register t path inst] publishes an instance under a name. *)
val register :
  t -> Pm_names.Path.t -> Pm_obj.Instance.t -> (unit, Pm_names.Namespace.error) result

val unregister : t -> Pm_names.Path.t -> (unit, Pm_names.Namespace.error) result

(** [replace t path inst] swaps the object behind a name and returns the
    previous instance — the interposition primitive. *)
val replace :
  t ->
  Pm_names.Path.t ->
  Pm_obj.Instance.t ->
  (Pm_obj.Instance.t, bind_error) result

(** [unreplace t path ~agent ~restore] undoes the newest {!replace} of
    [agent] at [path]: [restore] goes back behind the name and the
    matching interposition-log entry is popped, so the log reads as if
    the interposition never happened. The rollback primitive behind
    [System.transact]. *)
val unreplace :
  t ->
  Pm_names.Path.t ->
  agent:Pm_obj.Instance.t ->
  restore:Pm_obj.Instance.t ->
  (unit, bind_error) result

(** [bind t ctx ~view ~domain path] imports the named object into
    [domain]: the instance itself if it already lives there, a cached
    proxy otherwise. *)
val bind :
  t ->
  Pm_obj.Call_ctx.t ->
  view:Pm_names.View.t ->
  domain:Domain.t ->
  Pm_names.Path.t ->
  (Pm_obj.Instance.t, bind_error) result

val bind_exn :
  t ->
  Pm_obj.Call_ctx.t ->
  view:Pm_names.View.t ->
  domain:Domain.t ->
  Pm_names.Path.t ->
  Pm_obj.Instance.t

(** [resolve_handle t h] — "obtain an interface from a given object
    handle" (no proxying; the raw instance). *)
val resolve_handle : t -> int -> Pm_obj.Instance.t option

(** [proxy_count t] is the number of live cached proxies (observability
    for tests and benches). *)
val proxy_count : t -> int

(** [replacements t] is the interposition log, oldest first: every
    successful {!replace} as [(path, old handle, new handle)].
    Introspection for the composition linter's superset check. *)
val replacements : t -> (Pm_names.Path.t * int * int) list
