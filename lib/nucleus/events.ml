module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Obs = Pm_obs.Obs
module Journal = Pm_journal.Journal

type event = Trap of int | Irq of int

let event_to_string = function
  | Trap n -> Printf.sprintf "trap %d" n
  | Irq n -> Printf.sprintf "irq %d" n

type cb_id = int

type callback = { id : cb_id; domain : Domain.t; fn : int -> unit }

type t = {
  machine : Machine.t;
  table : (event, callback list ref) Hashtbl.t;
  mutable next_id : cb_id;
  by_id : (cb_id, event) Hashtbl.t;
  mutable deliveries : int;
}

(* Run one call-back, switching into its domain (and back) when it is not
   the domain the event interrupted. *)
let deliver t cb arg =
  t.deliveries <- t.deliveries + 1;
  let mmu = Machine.mmu t.machine in
  let before = Mmu.current_context mmu in
  if before = cb.domain.Domain.id then cb.fn arg
  else begin
    Mmu.switch_context mmu cb.domain.Domain.id;
    Fun.protect ~finally:(fun () -> Mmu.switch_context mmu before) (fun () -> cb.fn arg)
  end

(* Instrumented delivery: a span plus a dispatch-latency histogram
   sample per call-back, gated on the tracing flag so the quiescent cost
   is one boolean test. *)
let deliver_traced t obs ~kind ~num cb arg =
  let clock = Machine.clock t.machine in
  let t0 = Clock.now clock in
  let tok =
    Obs.span_begin obs ~now:t0 ~domain:cb.domain.Domain.id ~obj:"nucleus.events"
      ~iface:kind ~meth:(string_of_int num)
  in
  deliver t cb arg;
  Clock.advance clock (Machine.costs t.machine).Cost.mem_write;
  let t1 = Clock.now clock in
  Obs.span_end obs ~now:t1 tok;
  Obs.observe obs ~domain:cb.domain.Domain.id ("events." ^ kind) (t1 - t0);
  let acct = Obs.acct obs in
  if String.equal kind "trap" then Pm_obs.Acct.trap acct ~domain:cb.domain.Domain.id (t1 - t0)
  else Pm_obs.Acct.irq acct ~domain:cb.domain.Domain.id (t1 - t0)

let dispatch t event arg =
  let clock = Machine.clock t.machine in
  let obs = Clock.obs clock in
  let fkind, kind, num =
    match event with
    | Trap n -> (Pm_obs.Flightrec.Trap, "trap", n)
    | Irq n -> (Pm_obs.Flightrec.Irq, "irq", n)
  in
  (* always-on flight record — plain stores, no cycle charges; recorded
     before the table lookup so even an unhandled event leaves a trace *)
  Pm_obs.Flightrec.record (Obs.flight obs) ~kind:fkind
    ~domain:(Mmu.current_context (Machine.mmu t.machine))
    ~at:(Clock.now clock) ~info:num;
  match Hashtbl.find_opt t.table event with
  | None -> ()
  | Some cbs ->
    if Obs.enabled obs then
      List.iter (fun cb -> deliver_traced t obs ~kind ~num cb arg) !cbs
    else List.iter (fun cb -> deliver t cb arg) !cbs

let create machine =
  let t =
    { machine; table = Hashtbl.create 16; next_id = 1; by_id = Hashtbl.create 16;
      deliveries = 0 }
  in
  (* own every vector: the nucleus is the sole machine-level handler *)
  for vec = 0 to Machine.trap_vector_count - 1 do
    Machine.set_trap_handler machine vec
      (Some
         (fun arg ->
           dispatch t (Trap vec) arg;
           0))
  done;
  for line = 0 to Machine.irq_line_count - 1 do
    Machine.set_irq_handler machine line (Some (fun () -> dispatch t (Irq line) 0))
  done;
  t

let register t event ~domain fn =
  let id = t.next_id in
  t.next_id <- id + 1;
  let cb = { id; domain; fn } in
  (match Hashtbl.find_opt t.table event with
  | Some cbs -> cbs := !cbs @ [ cb ]
  | None -> Hashtbl.add t.table event (ref [ cb ]));
  Hashtbl.add t.by_id id event;
  let clock = Machine.clock t.machine in
  Journal.record
    (Obs.journal (Clock.obs clock))
    ~kind:Journal.Handler_add ~domain:domain.Domain.id ~at:(Clock.now clock)
    ~info:id ~detail:(event_to_string event);
  id

let register_popup t event ~domain ~sched ?priority fn =
  register t event ~domain (fun arg ->
      ignore
        (Pm_threads.Scheduler.popup sched ?priority ~name:"event-popup"
           ~domain:domain.Domain.id
           (fun () -> fn arg)))

let unregister t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> ()
  | Some event ->
    Hashtbl.remove t.by_id id;
    let domain = ref 0 in
    (match Hashtbl.find_opt t.table event with
    | Some cbs ->
      cbs :=
        List.filter
          (fun cb ->
            if cb.id = id then domain := cb.domain.Domain.id;
            cb.id <> id)
          !cbs
    | None -> ());
    let clock = Machine.clock t.machine in
    Journal.record
      (Obs.journal (Clock.obs clock))
      ~kind:Journal.Handler_del ~domain:!domain ~at:(Clock.now clock) ~info:id
      ~detail:(event_to_string event)

let remove_domain t dom =
  (* stale by_id entries are harmless: unregistering them later finds
     nothing to remove *)
  Hashtbl.iter
    (fun _ cbs ->
      cbs := List.filter (fun cb -> cb.domain.Domain.id <> dom.Domain.id) !cbs)
    t.table

let callbacks t event =
  match Hashtbl.find_opt t.table event with Some cbs -> List.length !cbs | None -> 0

let registrations t =
  Hashtbl.fold
    (fun event cbs acc ->
      List.fold_left (fun acc cb -> (event, cb.domain, cb.id) :: acc) acc !cbs)
    t.table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)

let deliveries t = t.deliveries
