(** Memory management service.

    "The management of virtual and physical pages, and MMU contexts, is
    done by the memory management service. Pages can be allocated
    exclusively or shared among different protection domains. Individual
    virtual pages can have fault call-backs associated with them. ...
    The memory management service also provides I/O space allocation."

    Virtual addresses are per-domain (each domain has its own bump-
    allocated region); shared allocations may be mapped into further
    domains, which reference-counts the underlying frames. Device
    register windows are granted exclusively or shared; device access
    goes through the grant, which is checked against the running
    context. *)

type t

type sharing = Exclusive | Shared

exception Vmem_error of string

val create : Pm_machine.Machine.t -> t

(** {1 Pages} *)

(** [alloc_pages t dom ~count ~sharing] allocates and maps [count] fresh
    zeroed pages read-write in [dom]; returns the base virtual address. *)
val alloc_pages : t -> Domain.t -> count:int -> sharing:sharing -> int

(** [free_pages t dom ~vaddr ~count] unmaps and releases. Raises
    {!Vmem_error} if a page is not an allocation owned by [dom]. *)
val free_pages : t -> Domain.t -> vaddr:int -> count:int -> unit

(** [map_shared t ~from_dom ~vaddr ~count ~into ~prot] maps pages of a
    [Shared] allocation into another domain; returns the base virtual
    address there. Raises {!Vmem_error} on [Exclusive] allocations. *)
val map_shared :
  t ->
  from_dom:Domain.t ->
  vaddr:int ->
  count:int ->
  into:Domain.t ->
  prot:Pm_machine.Mmu.prot ->
  int

(** [set_prot t dom ~vaddr prot] changes a page's protection. *)
val set_prot : t -> Domain.t -> vaddr:int -> Pm_machine.Mmu.prot -> unit

(** [set_fault_callback t dom ~vaddr f] attaches a fault call-back to the
    page containing [vaddr]; [f] returns [true] when it resolved the
    fault (the access retries). *)
val set_fault_callback :
  t -> Domain.t -> vaddr:int -> (Pm_machine.Mmu.fault -> bool) -> unit

val clear_fault_callback : t -> Domain.t -> vaddr:int -> unit

(** [hook_page t dom ~vaddr on] makes the page fault on every access
    (the proxy invocation mechanism). *)
val hook_page : t -> Domain.t -> vaddr:int -> bool -> unit

(** [pages_of t dom] is the number of pages currently mapped for [dom]. *)
val pages_of : t -> Domain.t -> int

(** Every live allocation as [(domain id, vpage)], sorted — the snapshot
    [System.transact] diffs to roll page tables back on abort. *)
val alloc_keys : t -> (int * int) list

(** [phys_of t dom ~vaddr] is the physical address backing a mapped
    virtual address — what a driver writes into a DMA descriptor. Raises
    {!Vmem_error} if unmapped. *)
val phys_of : t -> Domain.t -> vaddr:int -> int

(** {1 Raw paging interface}

    Mechanism for external pagers: the nucleus provides virtual-range
    reservation and direct map/unmap; a paging *component* supplies the
    policy (what to evict, where pages live when not resident). This is
    how "virtual memory implementations" stay outside the nucleus. *)

(** [reserve_pages t dom ~count] allocates a virtual range without
    backing frames; every access faults until the pager maps something.
    Returns the base virtual address. *)
val reserve_pages : t -> Domain.t -> count:int -> int

(** [map_page t dom ~vaddr ~frame ~prot] installs a translation for one
    reserved page. The frame's lifecycle belongs to the caller. *)
val map_page : t -> Domain.t -> vaddr:int -> frame:int -> prot:Pm_machine.Mmu.prot -> unit

(** [unmap_page t dom ~vaddr] removes a translation, returning the frame.
    Raises {!Vmem_error} if not mapped. *)
val unmap_page : t -> Domain.t -> vaddr:int -> int

(** [set_page_prot t dom ~vaddr prot] adjusts protection on a
    pager-managed page (dirty tracking: map read-only, upgrade on write
    fault). *)
val set_page_prot : t -> Domain.t -> vaddr:int -> Pm_machine.Mmu.prot -> unit

(** [destroy_domain t dom] releases every allocation, fault call-back
    and I/O grant belonging to [dom]. Raw pager mappings (made with
    {!map_page}) are untouched — their frames belong to the pager, which
    must be torn down first. *)
val destroy_domain : t -> Domain.t -> unit

(** {1 I/O space} *)

type io_grant = private {
  grant_domain : int;
  device : string;
  io_base : int;
  reg_count : int;
  io_sharing : sharing;
}

(** [alloc_io t dom ~device ~sharing] grants [dom] access to a device's
    register window. An [Exclusive] grant refuses coexistence with any
    other grant on the device. *)
val alloc_io : t -> Domain.t -> device:string -> sharing:sharing -> io_grant

val release_io : t -> io_grant -> unit

(** Register access through a grant; checks the grant belongs to the
    currently running context. *)
val io_read : t -> io_grant -> reg:int -> int

val io_write : t -> io_grant -> reg:int -> int -> unit
