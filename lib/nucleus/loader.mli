(** Component repository and dynamic loader.

    "Objects are usually loaded dynamically on demand" from "a repository
    of system components". An {!image} bundles a component's metadata, its
    (simulated) object code — the bytes the certificate digests — an
    optional certificate, and a constructor.

    Placement policy, per the paper's §4: loading into the kernel
    protection domain requires a certificate that the certification
    service validates against the code at load time. The [sandbox]
    escape (used by the Exokernel/SFI baseline) admits an uncertified
    component into the kernel by wrapping its instance in run-time
    checks — exactly the software-protection alternative the paper
    argues certification supersedes. User-domain loads need neither. *)

type constructor = Api.t -> Domain.t -> Pm_obj.Instance.t

type image = {
  meta : Pm_secure.Meta.t;
  code : string;  (** simulated object code; what certificates digest *)
  cert : Pm_secure.Certificate.t option;
  construct : constructor;
}

type load_error =
  | Unknown_component of string
  | Not_certified of string
  | Validation_failed of Pm_secure.Validator.failure
  | Verification_failed of string
      (** bytecode verification was requested and failed, and no
          certificate or sandbox could admit the component either *)
  | Name_taken of Pm_names.Namespace.error

val load_error_to_string : load_error -> string

type t

val create : Api.t -> t

(** [publish t image] adds a component image to the repository,
    replacing any previous image of the same name. *)
val publish : t -> image -> unit

val find : t -> string -> image option
val names : t -> string list

(** [load t ~name ~into ~at ?sandbox ?verify ()] validates placement,
    charges the per-page mapping cost, constructs the instance, and
    registers it at [at].

    [verify] (default [false]) requests the third trust mechanism for a
    kernel-domain load: the {!Certsvc.verify} bytecode verifier proves
    the object code safe statically, admitting the component exactly
    like a certified one — mapped plain, zero per-access overhead — but
    with no signature required. When verification fails the loader falls
    back to the certificate, then the sandbox; when nothing admits the
    component the error is [Verification_failed]. *)
val load :
  t ->
  name:string ->
  into:Domain.t ->
  at:Pm_names.Path.t ->
  ?sandbox:(Pm_obj.Instance.t -> Pm_obj.Instance.t) ->
  ?verify:bool ->
  unit ->
  (Pm_obj.Instance.t, load_error) result

(** [verified_fuel t name] is the affine fuel bound the bytecode
    verifier proved at [name]'s most recent [Verified] load, if any —
    the run-time allowance ([Pm_check.Verify.fuel_for] the window
    length) the kernel meters that component against, replacing the
    blanket default that unverified bytecode gets. *)
val verified_fuel : t -> string -> Pm_check.Verify.fuel_bound option

(** [unload t path] unregisters and revokes the instance at [path]. *)
val unload : t -> Pm_names.Path.t -> (unit, load_error) result
