module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Meta = Pm_secure.Meta
module Validator = Pm_secure.Validator
module Namespace = Pm_names.Namespace
module Instance = Pm_obj.Instance
module Journal = Pm_journal.Journal

let jot t ~kind ~domain ~info ~detail =
  let clock = Machine.clock t.Api.machine in
  Journal.record
    (Pm_obs.Obs.journal (Clock.obs clock))
    ~kind ~domain ~at:(Clock.now clock) ~info ~detail

type constructor = Api.t -> Domain.t -> Instance.t

type image = {
  meta : Meta.t;
  code : string;
  cert : Pm_secure.Certificate.t option;
  construct : constructor;
}

type load_error =
  | Unknown_component of string
  | Not_certified of string
  | Validation_failed of Validator.failure
  | Verification_failed of string
  | Name_taken of Namespace.error

let load_error_to_string = function
  | Unknown_component n -> Printf.sprintf "unknown component %S" n
  | Not_certified n ->
    Printf.sprintf "component %S has no certificate and no sandbox was offered" n
  | Validation_failed f -> Validator.failure_to_string f
  | Verification_failed r -> Printf.sprintf "bytecode verification failed: %s" r
  | Name_taken e -> Namespace.error_to_string e

type t = {
  api : Api.t;
  repo : (string, image) Hashtbl.t;
  (* per component name: the affine fuel bound the verifier proved at
     the most recent Verified load — what the kernel meters a verified
     component's runs against instead of per-instruction checks *)
  fuel : (string, Pm_check.Verify.fuel_bound) Hashtbl.t;
}

let create api = { api; repo = Hashtbl.create 16; fuel = Hashtbl.create 16 }

let publish t image = Hashtbl.replace t.repo image.meta.Meta.name image

let find t name = Hashtbl.find_opt t.repo name

let names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.repo [] |> List.sort String.compare

(* Gate kernel-domain placement. Three trust mechanisms admit a
   component: bytecode verification (requested with [verify]; a static
   proof, no signer involved), a valid certificate, or an explicit
   sandbox wrapper paying per-access run-time checks. A failed
   verification falls back to the certificate, then the sandbox. *)
let check_placement t image ~into ~sandbox ~verify =
  if not (Domain.is_kernel into) then Ok `Plain
  else begin
    let certified () =
      match image.cert with
      | Some cert ->
        (match Certsvc.validate t.api.Api.certification cert ~code:image.code with
        | Validator.Valid _ -> Ok `Plain
        | Validator.Invalid f ->
          (* an invalid certificate falls back to the sandbox escape *)
          (match sandbox with Some _ -> Ok `Sandboxed | None -> Error (Validation_failed f)))
      | None ->
        (match sandbox with
        | Some _ -> Ok `Sandboxed
        | None -> Error (Not_certified image.meta.Meta.name))
    in
    if not verify then certified ()
    else begin
      match Certsvc.verify t.api.Api.certification ~code:image.code with
      | Ok fuel -> Ok (`Verified fuel)
      | Error reason ->
        (match certified () with
        | Error (Not_certified _) -> Error (Verification_failed reason)
        | other -> other)
    end
  end

let load t ~name ~into ~at ?sandbox ?(verify = false) () =
  match Hashtbl.find_opt t.repo name with
  | None -> Error (Unknown_component name)
  | Some image ->
    (match check_placement t image ~into ~sandbox ~verify with
    | Error _ as e -> e
    | Ok mode ->
      let machine = t.api.Api.machine in
      let pages =
        (String.length image.code + Machine.page_size machine - 1)
        / Machine.page_size machine
      in
      Clock.advance (Machine.clock machine)
        (pages * (Machine.costs machine).Cost.load_page);
      Clock.count (Machine.clock machine) "component_load";
      let inst = image.construct t.api into in
      let inst =
        match (mode, sandbox) with
        | `Sandboxed, Some wrap -> wrap inst
        | `Sandboxed, None -> assert false
        (* a verified component maps exactly like a certified one: no
           wrapper, no run-time checks — the proof already happened; the
           proven fuel bound is recorded so the run path can meter the
           component against its own proof rather than a blanket default *)
        | (`Plain | `Verified _), _ -> inst
      in
      (match mode with
      | `Verified fuel -> Hashtbl.replace t.fuel name fuel
      | `Plain | `Sandboxed -> ());
      (match Directory.register t.api.Api.directory at inst with
      | Ok () ->
        jot t.api ~kind:Journal.Install ~domain:into.Domain.id
          ~info:(Instance.handle inst)
          ~detail:
            (Printf.sprintf "%s @ %s" name (Pm_names.Path.to_string at));
        Ok inst
      | Error e ->
        Instance.revoke inst;
        Error (Name_taken e)))

let verified_fuel t name = Hashtbl.find_opt t.fuel name

let unload t path =
  let dir = t.api.Api.directory in
  match Namespace.lookup (Directory.namespace dir) path with
  | Error e -> Error (Name_taken e)
  | Ok handle ->
    (match Directory.unregister dir path with
    | Error e -> Error (Name_taken e)
    | Ok () ->
      let domain =
        match Directory.resolve_handle dir handle with
        | Some inst ->
          Instance.revoke inst;
          inst.Instance.domain
        | None -> 0
      in
      jot t.api ~kind:Journal.Detach ~domain ~info:handle
        ~detail:(Pm_names.Path.to_string path);
      Ok ())
