module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Validator = Pm_secure.Validator

type t = {
  machine : Machine.t;
  validator : Validator.t;
  mutable validations : int;
  mutable failures : int;
  mutable verifications : int;
  mutable verify_failures : int;
}

let create machine ~root =
  {
    machine;
    validator = Validator.create ~root;
    validations = 0;
    failures = 0;
    verifications = 0;
    verify_failures = 0;
  }

let root t = Validator.root t.validator
let add_grant t g = Validator.add_grant t.validator g
let revoke t pid = Validator.revoke t.validator pid

let validate t cert ~code =
  let clock = Machine.clock t.machine in
  let costs = Machine.costs t.machine in
  (* load-time cost: digest the whole component, then verify signatures
     along the delegation chain *)
  Clock.advance clock (String.length code * costs.Cost.digest_byte);
  Clock.advance clock costs.Cost.sig_verify;
  Clock.count clock "cert_validation";
  let now = Clock.now clock in
  let decision = Validator.validate t.validator cert ~code ~now in
  (match decision with
  | Validator.Valid { chain_length } ->
    (* one signature check per grant in the speaks-for chain *)
    Clock.advance clock (chain_length * costs.Cost.sig_verify);
    t.validations <- t.validations + 1
  | Validator.Invalid _ ->
    Clock.count clock "cert_rejection";
    t.failures <- t.failures + 1);
  decision

let validations t = t.validations
let failures t = t.failures

(* The third trust mechanism: statically prove the bytecode safe instead
   of trusting a signer (validate) or paying per access (SFI). One-off
   cost is the abstract interpretation, charged per instruction like the
   digest is charged per byte — no signature verification anywhere. *)
let verify t ~code =
  let clock = Machine.clock t.machine in
  let costs = Machine.costs t.machine in
  match Pm_vm.Vm.decode code with
  | Error e ->
    Clock.count clock "bytecode_rejection";
    t.verify_failures <- t.verify_failures + 1;
    Error ("undecodable object code: " ^ e)
  | Ok program -> (
    Clock.advance clock (Array.length program * costs.Cost.verify_instr);
    Clock.count clock "bytecode_verification";
    match Pm_check.Verify.verify program with
    | Pm_check.Verify.Verified { fuel; _ } ->
      t.verifications <- t.verifications + 1;
      Ok fuel
    | Pm_check.Verify.Rejected _ as v ->
      Clock.count clock "bytecode_rejection";
      t.verify_failures <- t.verify_failures + 1;
      Error (Pm_check.Verify.verdict_to_string v))

let verifications t = t.verifications
let verify_failures t = t.verify_failures
