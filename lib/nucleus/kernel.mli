(** The Paramecium kernel: boot, protection domains, and the nucleus
    composition.

    Boot creates the simulated machine (with its NIC, timer and console),
    instantiates the four nucleus services, wraps each service in an
    object exporting a small interface, and assembles them into a
    [Static] composition — "the Paramecium kernel is a composition,
    composed of objects that manage interrupts, user contexts, etc." —
    registered under [/nucleus]. Because the service objects live in the
    kernel domain, user-domain components reach them through proxies:
    system calls fall out of the object model.

    Name-space conventions laid down at boot:
    - [/nucleus], [/nucleus/events], [/nucleus/memory],
      [/nucleus/directory], [/nucleus/certification]
    - components are conventionally registered under [/services],
      [/shared] (e.g. [/shared/network]) and [/program]. *)

type t

(** [boot ?cpus ... ()] brings the system up. With [cpus > 1] (default
    1) an SMP complex ({!Pm_machine.Cpu}) is created over the machine
    together with per-CPU schedulers ({!Pm_threads.Smp}); {!run} and
    {!step} then sweep all CPUs with work stealing. At 1 CPU neither
    exists and the boot is byte-identical to earlier single-core
    kernels. *)
val boot :
  ?costs:Pm_machine.Cost.t ->
  ?frames:int ->
  ?page_size:int ->
  ?cpus:int ->
  root:Pm_secure.Principal.t ->
  unit ->
  t

(** {1 Accessors} *)

val machine : t -> Pm_machine.Machine.t
val clock : t -> Pm_machine.Clock.t

(** The SMP complex and per-CPU schedulers, when booted with [cpus > 1]. *)
val cpu : t -> Pm_machine.Cpu.t option

val smp : t -> Pm_threads.Smp.t option

(** Number of CPUs (1 when no complex). *)
val cpus : t -> int
val api : t -> Api.t
val events : t -> Events.t
val vmem : t -> Vmem.t
val directory : t -> Directory.t
val certification : t -> Certsvc.t
val tracesvc : t -> Tracesvc.t
val journalsvc : t -> Journalsvc.t
val querysvc : t -> Querysvc.t
val loader : t -> Loader.t
val sched : t -> Pm_threads.Scheduler.t
val kernel_domain : t -> Domain.t
val nic : t -> Pm_machine.Nic.t
val timer : t -> Pm_machine.Timer_dev.t
val console : t -> Pm_machine.Console.t
val disk : t -> Pm_machine.Disk.t
val blkdev : t -> Pm_machine.Blkdev.t

(** {1 Domains} *)

(** [create_domain t ~name ?overrides ()] makes a user protection domain:
    a fresh MMU context plus a view derived from the kernel's root view
    with the given name-space overrides. *)
val create_domain :
  t -> name:string -> ?overrides:(Pm_names.Path.t * int) list -> unit -> Domain.t

(** [destroy_domain t dom] tears a user domain down: every object
    instance living in it is revoked (so proxies held by other domains
    start failing with [Revoked]) and unregistered from the name space,
    its pages, fault call-backs and I/O grants are released, its event
    call-backs removed, and its MMU context deleted. Raises
    [Invalid_argument] for the kernel domain or a domain already
    destroyed. Threads of the domain are not killed (they are cooperative
    fibers); destroy a domain only once its threads have finished. *)
val destroy_domain : t -> Domain.t -> unit

(** [domains t] lists all domains, kernel first. *)
val domains : t -> Domain.t list

val domain_of_id : t -> int -> Domain.t option

(** {1 Convenience} *)

(** [ctx t dom] is a call context issuing from [dom]. *)
val ctx : t -> Domain.t -> Pm_obj.Call_ctx.t

(** [register_at t path inst] publishes an instance (path given as a
    string for convenience). Raises on conflict. *)
val register_at : t -> string -> Pm_obj.Instance.t -> unit

(** [bind t dom path] imports the object at [path] (string) into [dom]. *)
val bind : t -> Domain.t -> string -> Pm_obj.Instance.t

(** [run t] dispatches ready threads until quiescent. *)
val run : t -> int

(** [step t ?ticks ()] interleaves device ticks with scheduling: each
    tick advances every device model then drains the scheduler. *)
val step : t -> ?ticks:int -> unit -> unit
