type kind = Kernel | User

type t = {
  id : int;
  name : string;
  kind : kind;
  view : Pm_names.View.t;
  acct : Pm_obs.Acct.slot;
  mutable alive : bool;
}

let is_kernel t = t.kind = Kernel

let pp fmt t =
  Format.fprintf fmt "%s#%d(%s)" t.name t.id
    (match t.kind with Kernel -> "kernel" | User -> "user")

let make ?acct ~id ~name ~kind ~view () =
  let acct = match acct with Some a -> a | None -> Pm_obs.Acct.fresh () in
  { id; name; kind; view; acct; alive = true }
