(** Event-sourced system history.

    One cycle-stamped stream of everything the nucleus mediates:
    execution events (trap / irq / fault / crossing / sched dispatch /
    lint run / thread crash) and structural mutations (component
    install/detach, namespace bind/unbind, interposition, event-handler
    registration, page sharing, domain lifecycle, placement migration,
    composition transactions, user marks).

    Recording is plain OCaml stores and charges no simulated cycles, so
    the journal never perturbs what it records — the zero-cost-when-off
    contract of the observability layer extends to always-on history.
    Because the simulated machine is deterministic, a [Full]-mode
    journal is replayable: re-running the same scenario reproduces the
    {!export} byte for byte.

    {!Pm_obs.Flightrec} is a view over this journal: the old bounded
    black-box ring is the journal's [Tail] filtered to execution
    events. *)

type kind =
  | Trap
  | Irq
  | Fault
  | Crossing
  | Sched
  | Check
  | Crash  (** a thread or pop-up died on an uncaught exception *)
  | Install  (** loader placed a component ([detail] = name @ path) *)
  | Detach  (** loader unloaded a component *)
  | Bind  (** a name was registered ([detail] = path) *)
  | Unbind  (** a name was unregistered *)
  | Interpose  (** Directory.replace swapped the object behind a name *)
  | Uninterpose  (** an interposition was undone (transaction rollback) *)
  | Handler_add  (** an event call-back was registered *)
  | Handler_del
  | Page_share  (** a frame was mapped into a second domain *)
  | Page_unshare  (** a shared mapping was released *)
  | Domain_up
  | Domain_down
  | Migrate  (** the placement agent moved a component ([info] = observed latency) *)
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Mark  (** user annotation via /nucleus/journal *)
  | Blk_issue  (** a block DMA descriptor was fetched by the device *)
  | Blk_complete  (** a block DMA completed ([info] = block number) *)
  | Cache_flush  (** a write-back cache flushed dirty blocks downstream *)
  | Req_begin  (** a traced request entered the system ([info] = rid) *)
  | Req_end  (** a traced request completed ([info] = rid) *)
  | Span_enter  (** a traced request entered a layer ([detail] = layer) *)
  | Span_exit  (** a traced request left a layer ([detail] = layer) *)
  | Trace_note  (** a point annotation on a traced request (demux, cache hit/miss, log append) *)

val is_execution : kind -> bool
val is_structural : kind -> bool
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type event = {
  seq : int;  (** recording order, monotonically increasing *)
  at : int;  (** virtual-cycle timestamp *)
  domain : int;
  kind : kind;
  info : int;  (** kind-specific scalar (vector, vpage, frame, tid, ...) *)
  detail : string;  (** "" on hot paths; context elsewhere *)
  rid : int;  (** causal request id from {!Trace.current}; 0 untraced *)
  cpu : int;  (** CPU the event was issued from; 0 on uniprocessor runs *)
}

type mode =
  | Tail  (** bounded ring of recent events + complete structural archive *)
  | Full  (** every event retained (up to [retain], then compacted) *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type t

val default_tail_capacity : int
val default_retain : int

(** [set_default_mode m] sets the mode new journals start in. The replay
    harness flips this to [Full] around a recorded run so boot-time
    events are captured too; everything else leaves it at [Tail]. *)
val set_default_mode : mode -> unit

val create : ?tail_capacity:int -> ?retain:int -> unit -> t
val mode : t -> mode

(** Switching to [Full] starts a fresh complete stream at the current
    sequence number; switching back to [Tail] stops extending it. *)
val set_mode : t -> mode -> unit

(** {2 Ambient CPU}

    The SMP complex ({!Pm_machine.Cpu}) declares which CPU is executing;
    every event recorded while it is set carries that id. Pinned to 0 on
    uniprocessor runs, so their exports stay byte-identical — an event
    with [cpu = 0] prints and exports exactly as before the field
    existed. *)

val set_current_cpu : int -> unit
val current_cpu : unit -> int

val record :
  t -> kind:kind -> domain:int -> at:int -> info:int -> detail:string -> unit

(** [mark t ~domain ~at label] records a {!Mark} and returns its seq. *)
val mark : t -> domain:int -> at:int -> string -> int

(** Ingress of a traced request: mint a rid, make it ambient, record
    {!Req_begin}. Returns 0 and records nothing when tracing is off. *)
val req_begin : t -> domain:int -> at:int -> detail:string -> int

(** Completion of a traced request: record {!Req_end}, clear the
    ambient scope. A no-op when tracing is off or [rid] is 0. *)
val req_end : t -> domain:int -> at:int -> int -> unit

val written : t -> int
val exec_written : t -> int
val count : t -> kind -> int
val tail_capacity : t -> int

(** Events retained in the [Full] history. *)
val retained : t -> int

(** Events dropped from the [Full] history by the [retain] bound. *)
val compacted : t -> int

(** The history covers the whole run: [Full] since event 0, nothing
    compacted. Replay equality is only meaningful when this holds. *)
val complete : t -> bool

(** Surviving tail-ring events, oldest first. *)
val tail : t -> event list

(** The tail restricted to execution events — the flight-recorder view. *)
val tail_exec : t -> event list

(** The retained [Full]-mode history, oldest first. *)
val history : t -> event list

(** The always-on structural archive, oldest first. *)
val structural : t -> event list

val iter_structural : (event -> unit) -> t -> unit
val reset : t -> unit

(** {2 Rendering} *)

val event_to_text : event -> string
val stats_line : t -> string
val to_text : t -> string
val tail_to_text : t -> int -> string

(** {2 Replay export / import} *)

(** Versioned line format: a header recording completeness, then one
    [%S]-quoted line per retained history event. Byte-stable across
    identical runs — the replay contract. *)
val export : t -> string

val import : string -> (event list, string) result

type import_result = { events : event list; complete : bool }

(** Like {!import}, but also surfaces the header's completeness flag so
    consumers can fail soft on truncated (non-complete) histories. *)
val import_all : string -> (import_result, string) result

val event_equal : event -> event -> bool

type divergence = { index : int; expected : event option; got : event option }

val first_divergence :
  expected:event list -> got:event list -> divergence option

val divergence_to_string : divergence -> string
