(* The system journal: an event-sourced history of everything the
   nucleus mediates. Execution events (traps, interrupts, faults,
   crossings, dispatches, lint runs, crashes) and structural mutations
   (install, bind, interpose, page sharing, domain lifecycle,
   transactions) land in one cycle-stamped stream.

   Like the flight recorder it subsumes, recording is plain OCaml
   stores and charges no simulated cycles — the history is a property
   of the run, not a perturbation of it. Because the simulated machine
   is deterministic, a [Full]-mode journal is also a *replayable* one:
   re-running the same scenario on a fresh system must reproduce the
   export byte for byte (see Replay / bin/pm_replay).

   Two modes:
   - [Tail] (default): only a bounded ring of recent events is kept —
     the old flight-recorder memory bound — plus the structural archive,
     which is always complete (mutations are rare).
   - [Full]: every event is retained, up to [retain]; beyond that the
     oldest events are compacted away (counted, never silently). *)

type kind =
  (* execution *)
  | Trap
  | Irq
  | Fault
  | Crossing
  | Sched
  | Check
  | Crash
  (* structural mutations *)
  | Install
  | Detach
  | Bind
  | Unbind
  | Interpose
  | Uninterpose
  | Handler_add
  | Handler_del
  | Page_share
  | Page_unshare
  | Domain_up
  | Domain_down
  | Migrate
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Mark
  (* device events (appended; the export format indexes kinds by name,
     but replay byte-identity wants stable ordering of what exists) *)
  | Blk_issue
  | Blk_complete
  | Cache_flush
  (* causal tracing (appended; recorded only while Trace.enabled, so
     untraced exports never contain them) *)
  | Req_begin
  | Req_end
  | Span_enter
  | Span_exit
  | Trace_note

let all_kinds =
  [
    Trap; Irq; Fault; Crossing; Sched; Check; Crash; Install; Detach; Bind;
    Unbind; Interpose; Uninterpose; Handler_add; Handler_del; Page_share;
    Page_unshare; Domain_up; Domain_down; Migrate; Txn_begin; Txn_commit;
    Txn_abort; Mark; Blk_issue; Blk_complete; Cache_flush; Req_begin;
    Req_end; Span_enter; Span_exit; Trace_note;
  ]

let kind_index = function
  | Trap -> 0
  | Irq -> 1
  | Fault -> 2
  | Crossing -> 3
  | Sched -> 4
  | Check -> 5
  | Crash -> 6
  | Install -> 7
  | Detach -> 8
  | Bind -> 9
  | Unbind -> 10
  | Interpose -> 11
  | Uninterpose -> 12
  | Handler_add -> 13
  | Handler_del -> 14
  | Page_share -> 15
  | Page_unshare -> 16
  | Domain_up -> 17
  | Domain_down -> 18
  | Migrate -> 19
  | Txn_begin -> 20
  | Txn_commit -> 21
  | Txn_abort -> 22
  | Mark -> 23
  | Blk_issue -> 24
  | Blk_complete -> 25
  | Cache_flush -> 26
  | Req_begin -> 27
  | Req_end -> 28
  | Span_enter -> 29
  | Span_exit -> 30
  | Trace_note -> 31

let kind_count = List.length all_kinds

(* Device events are execution events: they recur on the hot path, so
   they must live in the bounded tail ring, not the ever-complete
   structural archive. *)
let is_execution = function
  | Trap | Irq | Fault | Crossing | Sched | Check | Crash | Blk_issue
  | Blk_complete | Cache_flush | Req_begin | Req_end | Span_enter
  | Span_exit | Trace_note ->
      true
  | _ -> false

let is_structural k = not (is_execution k)

let kind_to_string = function
  | Trap -> "trap"
  | Irq -> "irq"
  | Fault -> "fault"
  | Crossing -> "crossing"
  | Sched -> "sched"
  | Check -> "check"
  | Crash -> "crash"
  | Install -> "install"
  | Detach -> "detach"
  | Bind -> "bind"
  | Unbind -> "unbind"
  | Interpose -> "interpose"
  | Uninterpose -> "uninterpose"
  | Handler_add -> "handler-add"
  | Handler_del -> "handler-del"
  | Page_share -> "page-share"
  | Page_unshare -> "page-unshare"
  | Domain_up -> "domain-up"
  | Domain_down -> "domain-down"
  | Migrate -> "migrate"
  | Txn_begin -> "txn-begin"
  | Txn_commit -> "txn-commit"
  | Txn_abort -> "txn-abort"
  | Mark -> "mark"
  | Blk_issue -> "blk-issue"
  | Blk_complete -> "blk-complete"
  | Cache_flush -> "cache-flush"
  | Req_begin -> "req-begin"
  | Req_end -> "req-end"
  | Span_enter -> "span-enter"
  | Span_exit -> "span-exit"
  | Trace_note -> "trace-note"

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds

type event = {
  seq : int;
  at : int; (* virtual-cycle timestamp *)
  domain : int;
  kind : kind;
  info : int;
  detail : string; (* "" on hot paths; human/replay context elsewhere *)
  rid : int; (* causal request id, 0 when untraced *)
  cpu : int; (* issuing CPU, 0 on uniprocessor runs *)
}

(* The ambient CPU id, like [Trace.current] for request ids: the SMP
   complex sets it around each slice of execution, every recording site
   picks it up for free. Uniprocessor runs never touch it, so it stays
   0 and exports keep their exact bytes. *)
let cur_cpu = ref 0
let set_current_cpu c = cur_cpu := c
let current_cpu () = !cur_cpu

type mode = Tail | Full

let mode_to_string = function Tail -> "tail" | Full -> "full"
let mode_of_string = function
  | "tail" -> Some Tail
  | "full" -> Some Full
  | _ -> None

(* ---------------- growable event buffer with front-dropping ---------- *)

let dummy =
  { seq = -1; at = 0; domain = 0; kind = Trap; info = 0; detail = ""; rid = 0;
    cpu = 0 }

type buf = {
  mutable arr : event array;
  mutable start : int; (* first live index *)
  mutable len : int; (* live count: indices [start, start+len) *)
}

let buf_create () = { arr = Array.make 16 dummy; start = 0; len = 0 }

let buf_push b e =
  let fill = b.start + b.len in
  if fill = Array.length b.arr then begin
    if b.start > Array.length b.arr / 2 then begin
      (* reclaim the dropped front instead of growing *)
      Array.blit b.arr b.start b.arr 0 b.len;
      Array.fill b.arr b.len b.start dummy;
      b.start <- 0
    end
    else begin
      let bigger = Array.make (max 16 (2 * Array.length b.arr)) dummy in
      Array.blit b.arr b.start bigger 0 b.len;
      b.arr <- bigger;
      b.start <- 0
    end
  end;
  b.arr.(b.start + b.len) <- e;
  b.len <- b.len + 1

let buf_drop_front b n =
  let n = min n b.len in
  Array.fill b.arr b.start n dummy;
  b.start <- b.start + n;
  b.len <- b.len - n

let buf_to_list b = List.init b.len (fun i -> b.arr.(b.start + i))
let buf_iter f b =
  for i = 0 to b.len - 1 do
    f b.arr.(b.start + i)
  done

let buf_clear b =
  b.arr <- Array.make 16 dummy;
  b.start <- 0;
  b.len <- 0

(* ---------------- the journal ---------------------------------------- *)

type t = {
  mutable mode : mode;
  tail_cap : int;
  tail : event option array; (* bounded ring over every event *)
  mutable written : int; (* events ever recorded *)
  mutable exec_written : int;
  counts : int array; (* per kind *)
  history : buf; (* complete stream, [Full] mode only *)
  mutable history_from : int; (* seq where [Full] recording began; -1 never *)
  mutable compacted : int; (* events dropped from [history] *)
  retain : int; (* history bound before compaction *)
  structural : buf; (* always-on archive of structural events *)
}

let default_tail_capacity = 256
let default_retain = 1_000_000

(* New journals start in this mode: the replay harness flips it to
   [Full] around a recorded run so even boot-time events are captured. *)
let default_mode = ref Tail
let set_default_mode m = default_mode := m

let create ?(tail_capacity = default_tail_capacity) ?(retain = default_retain)
    () =
  if tail_capacity <= 0 then
    invalid_arg "Journal.create: tail_capacity must be positive";
  if retain <= 0 then invalid_arg "Journal.create: retain must be positive";
  {
    mode = !default_mode;
    tail_cap = tail_capacity;
    tail = Array.make tail_capacity None;
    written = 0;
    exec_written = 0;
    counts = Array.make kind_count 0;
    history = buf_create ();
    history_from = (match !default_mode with Full -> 0 | Tail -> -1);
    compacted = 0;
    retain;
  structural = buf_create ();
  }

let mode t = t.mode

(* Switching to [Full] starts a fresh complete stream from the current
   sequence number; switching to [Tail] stops extending it (what was
   captured stays readable). *)
let set_mode t m =
  if m <> t.mode then begin
    t.mode <- m;
    match m with
    | Full ->
      buf_clear t.history;
      t.compacted <- 0;
      t.history_from <- t.written
    | Tail -> ()
  end

(* Every event is stamped with the ambient request id; with tracing
   off [Trace.current] is pinned to 0 — no call-site changes, no cost. *)
let record t ~kind ~domain ~at ~info ~detail =
  let e =
    { seq = t.written; at; domain; kind; info; detail; rid = Trace.current ();
      cpu = !cur_cpu }
  in
  t.tail.(t.written mod t.tail_cap) <- Some e;
  t.written <- t.written + 1;
  if is_execution kind then t.exec_written <- t.exec_written + 1;
  t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
  if is_structural kind then buf_push t.structural e;
  if t.mode = Full then begin
    buf_push t.history e;
    if t.history.len > t.retain then begin
      let drop = t.history.len - t.retain in
      buf_drop_front t.history drop;
      t.compacted <- t.compacted + drop
    end
  end

let written t = t.written
let exec_written t = t.exec_written
let count t kind = t.counts.(kind_index kind)
let tail_capacity t = t.tail_cap
let retained t = t.history.len
let compacted t = t.compacted

(* [complete t] — the history covers the whole run: recording has been
   [Full] since event 0 and nothing was compacted away. *)
let complete t = t.history_from = 0 && t.compacted = 0

(* surviving tail-ring events, oldest first *)
let tail t =
  let n = min t.written t.tail_cap in
  let first = if t.written <= t.tail_cap then 0 else t.written mod t.tail_cap in
  List.init n (fun k -> t.tail.((first + k) mod t.tail_cap))
  |> List.filter_map Fun.id

let tail_exec t = List.filter (fun e -> is_execution e.kind) (tail t)

let history t = buf_to_list t.history
let structural t = buf_to_list t.structural
let iter_structural f t = buf_iter f t.structural

let reset t =
  Array.fill t.tail 0 t.tail_cap None;
  t.written <- 0;
  t.exec_written <- 0;
  Array.fill t.counts 0 kind_count 0;
  buf_clear t.history;
  t.history_from <- (match t.mode with Full -> 0 | Tail -> -1);
  t.compacted <- 0;
  buf_clear t.structural

let mark t ~domain ~at label =
  let seq = t.written in
  record t ~kind:Mark ~domain ~at ~info:0 ~detail:label;
  seq

(* ---------------- causal tracing helpers ----------------------------- *)

(* Ingress: mint a request id, make it ambient, journal the begin.
   No-ops (returning rid 0) when tracing is off, so instrumented call
   sites stay free on untraced runs. *)
let req_begin t ~domain ~at ~detail =
  if not (Trace.enabled ()) then 0
  else begin
    let rid = Trace.mint () in
    Trace.set_current rid;
    record t ~kind:Req_begin ~domain ~at ~info:rid ~detail;
    rid
  end

let req_end t ~domain ~at rid =
  if Trace.enabled () && rid <> 0 then begin
    Trace.set_current rid;
    record t ~kind:Req_end ~domain ~at ~info:rid ~detail:"";
    Trace.clear ()
  end

(* ---------------- rendering ------------------------------------------ *)

let event_to_text e =
  Printf.sprintf "#%-6d %8d cyc  dom %-2d %-12s %d%s%s%s" e.seq e.at e.domain
    (kind_to_string e.kind) e.info
    (if e.rid = 0 then "" else Printf.sprintf "  rid=%d" e.rid)
    (if e.cpu = 0 then "" else Printf.sprintf "  cpu=%d" e.cpu)
    (if String.equal e.detail "" then "" else "  " ^ e.detail)

let stats_line t =
  Printf.sprintf
    "journal: mode %s, %d recorded (%d exec, %d structural), %d retained, %d compacted"
    (mode_to_string t.mode) t.written t.exec_written
    (t.written - t.exec_written) t.history.len t.compacted

let to_text t =
  String.concat "\n" (stats_line t :: List.map event_to_text (tail t))

let tail_to_text t n =
  let evs = tail t in
  let len = List.length evs in
  let sel = if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs in
  String.concat "\n" (List.map event_to_text sel)

(* ---------------- replay export / import ----------------------------- *)

(* One line per event, [detail] last and %S-quoted so it round-trips
   arbitrary strings. The header records completeness: replay equality
   is only meaningful against a complete history. *)

let export_header t =
  Printf.sprintf "pm-journal-v1 events=%d complete=%d" t.history.len
    (if complete t then 1 else 0)

(* Untraced events (rid 0) keep the original line format, so exports
   stay byte-identical when tracing is off; traced events carry a
   trailing [rid=N] that import strips first. The cpu field follows the
   same scheme: only nonzero ids are exported (as a [cpu=N] suffix after
   any rid), so uniprocessor recordings keep their exact bytes and
   N-CPU recordings round-trip. *)
let event_to_line e =
  Printf.sprintf "%d %d %d %s %d %S%s%s" e.seq e.at e.domain
    (kind_to_string e.kind) e.info e.detail
    (if e.rid = 0 then "" else Printf.sprintf " rid=%d" e.rid)
    (if e.cpu = 0 then "" else Printf.sprintf " cpu=%d" e.cpu)

let export t =
  let b = Buffer.create (64 * (t.history.len + 1)) in
  Buffer.add_string b (export_header t);
  buf_iter
    (fun e ->
      Buffer.add_char b '\n';
      Buffer.add_string b (event_to_line e))
    t.history;
  Buffer.contents b

let make_event seq at domain kstr info detail rid cpu =
  match kind_of_string kstr with
  | Some kind -> Ok { seq; at; domain; kind; info; detail; rid; cpu }
  | None -> Error (Printf.sprintf "unknown event kind %S" kstr)

(* Optional suffixes in emission order: [rid=N] then [cpu=N], either
   alone, both, or neither. Try the most specific shape first. *)
let event_of_line line =
  let attempt fmt k = try Some (Scanf.sscanf line fmt k) with _ -> None in
  let shapes =
    [
      (fun () ->
        attempt " %d %d %d %s %d %S rid=%d cpu=%d"
          (fun seq at domain kstr info detail rid cpu ->
            make_event seq at domain kstr info detail rid cpu));
      (fun () ->
        attempt " %d %d %d %s %d %S rid=%d"
          (fun seq at domain kstr info detail rid ->
            make_event seq at domain kstr info detail rid 0));
      (fun () ->
        attempt " %d %d %d %s %d %S cpu=%d"
          (fun seq at domain kstr info detail cpu ->
            make_event seq at domain kstr info detail 0 cpu));
    ]
  in
  match List.find_map (fun f -> f ()) shapes with
  | Some r -> r
  | None -> (
    try
      Scanf.sscanf line " %d %d %d %s %d %S"
        (fun seq at domain kstr info detail ->
          make_event seq at domain kstr info detail 0 0)
    with
    | Scanf.Scan_failure m | Failure m -> Error m
    | End_of_file -> Error "truncated event line")

type import_result = { events : event list; complete : bool }

(* The header already records whether the export covers the whole run;
   [import_all] surfaces that so consumers (the query fold) can fail
   soft on truncated histories instead of misattributing. *)
let import_all s =
  match String.split_on_char '\n' s with
  | [] -> Error "empty journal export"
  | header :: lines ->
    if not (String.length header >= 14 && String.sub header 0 14 = "pm-journal-v1 ")
    then Error "not a pm-journal-v1 export"
    else begin
      let complete =
        try Scanf.sscanf header "pm-journal-v1 events=%d complete=%d"
              (fun _ c -> c = 1)
        with _ -> false
      in
      let rec go acc = function
        | [] -> Ok { events = List.rev acc; complete }
        | "" :: rest -> go acc rest
        | line :: rest ->
          (match event_of_line line with
          | Ok e -> go (e :: acc) rest
          | Error m ->
            Error (Printf.sprintf "bad event line %S: %s" line m))
      in
      go [] lines
    end

let import s = Result.map (fun r -> r.events) (import_all s)

let event_equal a b =
  a.seq = b.seq && a.at = b.at && a.domain = b.domain && a.kind = b.kind
  && a.info = b.info && a.rid = b.rid && a.cpu = b.cpu
  && String.equal a.detail b.detail

type divergence = { index : int; expected : event option; got : event option }

let first_divergence ~expected ~got =
  let rec go i es gs =
    match (es, gs) with
    | [], [] -> None
    | e :: es', g :: gs' ->
      if event_equal e g then go (i + 1) es' gs'
      else Some { index = i; expected = Some e; got = Some g }
    | e :: _, [] -> Some { index = i; expected = Some e; got = None }
    | [], g :: _ -> Some { index = i; expected = None; got = Some g }
  in
  go 0 expected got

let divergence_to_string d =
  let side name = function
    | Some e -> Printf.sprintf "%s %s" name (event_to_text e)
    | None -> Printf.sprintf "%s <end of journal>" name
  in
  Printf.sprintf "first divergence at event %d:\n  %s\n  %s" d.index
    (side "expected:" d.expected)
    (side "got:     " d.got)
