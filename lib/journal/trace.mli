(** Causal trace context.

    A compact request id minted at ingress and propagated ambiently
    (plus inside the traced wire formats) across every layer a request
    crosses. The simulated machine is single-threaded, so the current
    request is a plain register, not thread-local state.

    Zero-cost-when-off: everything here is plain OCaml stores, and
    with tracing disabled {!current} always returns 0 so call sites
    skip their extra work. Flip tracing only between runs — wire
    formats carry the id conditionally and must stay consistent within
    a run. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Mint a fresh request id (1, 2, 3, ...). 0 means "no request". *)
val mint : unit -> int

(** The ambient request id, or 0 when tracing is off / no request. *)
val current : unit -> int

val set_current : int -> unit
val clear : unit -> unit

(** [with_rid rid f] runs [f] with [rid] ambient, restoring the
    previous scope after (a no-op wrapper when tracing is off). *)
val with_rid : int -> (unit -> 'a) -> 'a

(** Reset the mint counter and ambient scope — the replay harness
    calls this at capture start so rids are deterministic per run. *)
val reset : unit -> unit
