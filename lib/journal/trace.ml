(* Causal trace context: a compact request id minted at ingress and
   carried — ambiently, and inside the wire formats — through every
   layer a request crosses.

   The simulated machine is single-threaded and deterministic, so the
   ambient current-request register is just a ref: whoever last parsed
   a traced wire message (or called [with_rid]) owns the scope until
   the next parse re-establishes it. Sticky on purpose: deliveries
   happen asynchronously inside Kernel.step, after the sender's stack
   frame is gone, and the ambient id is what connects them.

   Everything here is plain OCaml stores — no Clock.advance, no
   Call_ctx.access. With tracing off, [current] is pinned to 0 and
   call sites skip their extra work entirely, so a traced build is
   byte- and cycle-identical to an untraced one until [set_enabled
   true] flips it. *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let next_rid = ref 0
let ambient = ref 0

(* Request ids start at 1; 0 means "no request" everywhere. *)
let mint () =
  incr next_rid;
  !next_rid

let current () = if !enabled_flag then !ambient else 0
let set_current rid = ambient := rid
let clear () = ambient := 0

let with_rid rid f =
  if not !enabled_flag then f ()
  else begin
    let saved = !ambient in
    ambient := rid;
    Fun.protect ~finally:(fun () -> ambient := saved) f
  end

(* Deterministic replay needs deterministic rids: the replay harness
   calls this at the top of every capture, like Journal.set_default_mode. *)
let reset () =
  next_rid := 0;
  ambient := 0
