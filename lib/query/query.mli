(** Time-travel queries over the journal.

    Folds a [Full]-mode event stream into per-request causal span
    trees with per-layer cycle attribution and critical-path
    extraction, and folds the structural archive into state-at-cycle
    answers. Pure functions over exported events; malformed histories
    produce named [Error]s, never exceptions. *)

type span = {
  layer : string;  (** "kv", "log", "cache", "partition", "driver" *)
  enter_at : int;
  exit_at : int;
  cpu : int;  (** CPU the Span_enter was issued from (0 on uniprocessor) *)
  children : span list;
}

type media = { block : int; issue_at : int; complete_at : int }

type request = {
  rid : int;
  label : string;  (** the Req_begin detail, e.g. "put key-0" *)
  begin_at : int;
  end_at : int;
  cpu : int;  (** CPU the Req_begin was issued from *)
  spans : span list;
  notes : (int * string * int) list;  (** at, detail, info *)
  media : media list;
}

val duration : request -> int
val span_duration : span -> int

(** Fold an event stream into completed requests, in completion order.
    Fails soft with a named error on an incomplete history
    ([complete:false]) or an unbalanced span tree. Traced events
    outside any request window are ignored; requests still open at the
    end of the stream are dropped. *)
val fold :
  complete:bool -> Pm_journal.Journal.event list -> (request list, string) result

(** Exclusive cycles per layer — each span minus its children and any
    media wait charged to it; "net" is the time outside all spans,
    "media" the device wait. Sums exactly to {!duration}. *)
val attribution : request -> (string * int) list

(** Layer names from the request root to the dominant leaf consumer;
    ends with "media" when the device wait dominates the leaf span. *)
val critical_path : request -> string list

val slowest : int -> request list -> request list
val layer_totals : request list -> (string * int) list

val request_line : request -> string
val request_to_text : request -> string
val attribution_to_text : request -> string
val layer_totals_to_text : request list -> string

(** {2 State-at-cycle queries over the structural archive} *)

(** Domains holding mappings of [frame] at cycle [at] (Page_share /
    Page_unshare fold), sorted. *)
val frame_holders :
  Pm_journal.Journal.event list -> frame:int -> at:int -> int list

(** The instance handle bound at [path] at cycle [at] (Bind / Unbind /
    Interpose / Uninterpose fold). *)
val bound_at :
  Pm_journal.Journal.event list -> path:string -> at:int -> int option

(** The domain that owned the component loaded as [name] at cycle [at]
    (Install / Detach fold). *)
val owner_of :
  Pm_journal.Journal.event list -> name:string -> at:int -> int option
