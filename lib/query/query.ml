(* Time-travel queries over the journal: fold a [Full]-mode event
   stream into per-request causal span trees (who spent which cycles
   where), and fold the structural archive into state-at-cycle answers
   (what held frame F at cycle N, who was bound at path P, which domain
   owned component C).

   Everything here is a pure fold over an exported event list — the
   journal is the system's history as a first-class object, and these
   are queries against it, not instrumentation. Malformed histories
   (truncated exports, unbalanced spans) produce named [Error]s, never
   exceptions: the fold is a diagnostic tool and must degrade
   gracefully on exactly the damaged inputs it exists to explain. *)

module Journal = Pm_journal.Journal

type span = {
  layer : string;
  enter_at : int;
  exit_at : int;
  cpu : int; (* CPU the Span_enter was issued from *)
  children : span list;
}

type media = { block : int; issue_at : int; complete_at : int }

type request = {
  rid : int;
  label : string; (* Req_begin detail, e.g. "put key-0" *)
  begin_at : int;
  end_at : int;
  cpu : int; (* CPU the Req_begin was issued from *)
  spans : span list; (* top-level spans, in request order *)
  notes : (int * string * int) list; (* at, detail, info *)
  media : media list;
}

let duration r = r.end_at - r.begin_at
let span_duration s = s.exit_at - s.enter_at

(* ------------------------------------------------------------------ *)
(* The causal fold                                                      *)
(* ------------------------------------------------------------------ *)

type pending_span = {
  p_layer : string;
  p_enter : int;
  p_cpu : int;
  mutable p_kids_rev : span list;
}

type pending_req = {
  p_rid : int;
  p_label : string;
  p_begin : int;
  p_cpu : int;
  mutable p_stack : pending_span list; (* innermost first *)
  mutable p_top_rev : span list;
  mutable p_notes_rev : (int * string * int) list;
  mutable p_media_rev : media list;
  mutable p_issues : (int * int) list; (* block, issue_at; FIFO *)
}

let fold ~complete events =
  if not complete then
    Error "query: incomplete history (journal not Full from boot, or compacted)"
  else begin
    let open_reqs : (int, pending_req) Hashtbl.t = Hashtbl.create 16 in
    let done_rev = ref [] in
    let err = ref None in
    let fail m = if !err = None then err := Some m in
    let close_span p (e : Journal.event) =
      match p.p_stack with
      | [] ->
        fail
          (Printf.sprintf "query: unbalanced span (exit %S with no enter, rid %d)"
             e.Journal.detail p.p_rid)
      | ps :: rest ->
        if not (String.equal ps.p_layer e.Journal.detail) then
          fail
            (Printf.sprintf
               "query: unbalanced span (exit %S inside %S, rid %d)"
               e.Journal.detail ps.p_layer p.p_rid)
        else begin
          let s =
            {
              layer = ps.p_layer;
              enter_at = ps.p_enter;
              exit_at = e.Journal.at;
              cpu = ps.p_cpu;
              children = List.rev ps.p_kids_rev;
            }
          in
          p.p_stack <- rest;
          match rest with
          | parent :: _ -> parent.p_kids_rev <- s :: parent.p_kids_rev
          | [] -> p.p_top_rev <- s :: p.p_top_rev
        end
    in
    List.iter
      (fun (e : Journal.event) ->
        if !err = None && e.Journal.rid > 0 then begin
          let rid = e.Journal.rid in
          match e.Journal.kind with
          | Journal.Req_begin ->
            if Hashtbl.mem open_reqs rid then
              fail (Printf.sprintf "query: duplicate req-begin for rid %d" rid)
            else
              Hashtbl.replace open_reqs rid
                {
                  p_rid = rid;
                  p_label = e.Journal.detail;
                  p_begin = e.Journal.at;
                  p_cpu = e.Journal.cpu;
                  p_stack = [];
                  p_top_rev = [];
                  p_notes_rev = [];
                  p_media_rev = [];
                  p_issues = [];
                }
          | Journal.Req_end -> (
            match Hashtbl.find_opt open_reqs rid with
            | None -> fail (Printf.sprintf "query: req-end without begin, rid %d" rid)
            | Some p ->
              if p.p_stack <> [] then
                fail
                  (Printf.sprintf "query: request %d ended inside span %S" rid
                     (List.hd p.p_stack).p_layer)
              else begin
                Hashtbl.remove open_reqs rid;
                done_rev :=
                  {
                    rid;
                    label = p.p_label;
                    begin_at = p.p_begin;
                    end_at = e.Journal.at;
                    cpu = p.p_cpu;
                    spans = List.rev p.p_top_rev;
                    notes = List.rev p.p_notes_rev;
                    media = List.rev p.p_media_rev;
                  }
                  :: !done_rev
              end)
          | Journal.Span_enter -> (
            match Hashtbl.find_opt open_reqs rid with
            | None -> () (* traced work outside any request window *)
            | Some p ->
              p.p_stack <-
                {
                  p_layer = e.Journal.detail;
                  p_enter = e.Journal.at;
                  p_cpu = e.Journal.cpu;
                  p_kids_rev = [];
                }
                :: p.p_stack)
          | Journal.Span_exit -> (
            match Hashtbl.find_opt open_reqs rid with
            | None -> ()
            | Some p -> close_span p e)
          | Journal.Trace_note -> (
            match Hashtbl.find_opt open_reqs rid with
            | None -> ()
            | Some p ->
              p.p_notes_rev <-
                (e.Journal.at, e.Journal.detail, e.Journal.info) :: p.p_notes_rev)
          | Journal.Blk_issue -> (
            match Hashtbl.find_opt open_reqs rid with
            | None -> ()
            | Some p -> p.p_issues <- p.p_issues @ [ (e.Journal.info, e.Journal.at) ])
          | Journal.Blk_complete -> (
            match Hashtbl.find_opt open_reqs rid with
            | None -> ()
            | Some p -> (
              (* media completion is in-order: match the oldest issue
                 of the same block *)
              match
                List.partition (fun (b, _) -> b = e.Journal.info) p.p_issues
              with
              | (block, issue_at) :: later_same, others ->
                p.p_issues <-
                  others @ later_same |> List.sort (fun (_, a) (_, b) -> compare a b);
                p.p_media_rev <-
                  { block; issue_at; complete_at = e.Journal.at } :: p.p_media_rev
              | [], _ -> ()))
          | _ -> ()
        end)
      events;
    match !err with
    | Some m -> Error m
    | None -> Ok (List.rev !done_rev)
  end

(* ------------------------------------------------------------------ *)
(* Attribution: exclusive cycles per layer, telescoping to the total.   *)
(* ------------------------------------------------------------------ *)

(* Canonical rendering order for the KV path; unknown layers follow
   alphabetically. *)
let layer_order = [ "net"; "kv"; "log"; "cache"; "partition"; "driver"; "media" ]

let layer_rank l =
  let rec idx i = function
    | [] -> List.length layer_order
    | x :: tl -> if String.equal x l then i else idx (i + 1) tl
  in
  idx 0 layer_order

let compare_layers a b =
  match compare (layer_rank a) (layer_rank b) with
  | 0 -> compare a b
  | c -> c

(* Clip [m] to span [s]; media waits happen inside the driver span, so
   this is normally the whole interval. *)
let media_overlap s m =
  max 0 (min m.complete_at s.exit_at - max m.issue_at s.enter_at)

(* Deepest span containing the media issue — the layer that was
   actually on the stack while the device worked. *)
let rec deepest_containing spans m =
  let holds s = s.enter_at <= m.issue_at && m.issue_at <= s.exit_at in
  match List.find_opt holds spans with
  | None -> None
  | Some s -> (
    match deepest_containing s.children m with
    | Some deeper -> Some deeper
    | None -> Some s)

let media_in_span r s =
  List.fold_left
    (fun acc m ->
      match deepest_containing r.spans m with
      | Some owner when owner == s -> acc + media_overlap s m
      | _ -> acc)
    0 r.media

(* Per-layer exclusive cycles: each span's inclusive time minus its
   children, minus any media wait charged to it; "net" is everything
   outside the top-level spans; the sum telescopes to [duration]. *)
let attribution r =
  let tally = Hashtbl.create 8 in
  let add layer n =
    Hashtbl.replace tally layer (n + Option.value ~default:0 (Hashtbl.find_opt tally layer))
  in
  let rec walk s =
    let kids = List.fold_left (fun acc c -> acc + span_duration c) 0 s.children in
    add s.layer (span_duration s - kids - media_in_span r s);
    List.iter walk s.children
  in
  List.iter walk r.spans;
  let top = List.fold_left (fun acc s -> acc + span_duration s) 0 r.spans in
  let media_total =
    List.fold_left
      (fun acc m ->
        match deepest_containing r.spans m with
        | Some s -> acc + media_overlap s m
        | None -> acc + max 0 (min m.complete_at r.end_at - max m.issue_at r.begin_at))
      0 r.media
  in
  let orphan_media =
    List.fold_left
      (fun acc m ->
        match deepest_containing r.spans m with
        | Some _ -> acc
        | None -> acc + max 0 (min m.complete_at r.end_at - max m.issue_at r.begin_at))
      0 r.media
  in
  add "net" (duration r - top - orphan_media);
  if media_total > 0 then add "media" media_total;
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) tally []
  |> List.sort (fun (a, _) (b, _) -> compare_layers a b)

(* ------------------------------------------------------------------ *)
(* Critical path: descend through the dominant consumer at each level.  *)
(* ------------------------------------------------------------------ *)

let critical_path r =
  let pick spans =
    List.fold_left
      (fun best s ->
        match best with
        | Some b when span_duration b >= span_duration s -> best
        | _ -> Some s)
      None spans
  in
  let rec descend acc spans =
    match pick spans with
    | None -> List.rev acc
    | Some s ->
      let m = media_in_span r s in
      let kids = List.fold_left (fun a c -> a + span_duration c) 0 s.children in
      (* the span's own dominant consumer: media wait, a child layer,
         or its own exclusive work (stop) *)
      if m > kids && m > span_duration s - kids - m then
        List.rev (("media") :: s.layer :: acc)
      else if s.children = [] then List.rev (s.layer :: acc)
      else descend (s.layer :: acc) s.children
  in
  let top = List.fold_left (fun acc s -> acc + span_duration s) 0 r.spans in
  let net = duration r - top in
  match pick r.spans with
  | None -> [ "net" ]
  | Some s when net > span_duration s -> [ "net" ]
  | Some _ -> descend [] r.spans

let slowest k reqs =
  List.stable_sort
    (fun a b ->
      match compare (duration b) (duration a) with
      | 0 -> compare a.rid b.rid
      | c -> c)
    reqs
  |> List.filteri (fun i _ -> i < k)

let layer_totals reqs =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun r ->
      List.iter
        (fun (l, n) ->
          Hashtbl.replace tally l
            (n + Option.value ~default:0 (Hashtbl.find_opt tally l)))
        (attribution r))
    reqs;
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) tally []
  |> List.sort (fun (a, _) (b, _) -> compare_layers a b)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

(* CPU 0 renders as nothing so uniprocessor output is unchanged. *)
let cpu_tag cpu = if cpu = 0 then "" else Printf.sprintf "  cpu %d" cpu

let request_line r =
  Printf.sprintf "rid %-3d %-14s [%d..%d] %d cyc  path %s%s" r.rid
    (if String.equal r.label "" then "?" else r.label)
    r.begin_at r.end_at (duration r)
    (String.concat ">" (critical_path r))
    (cpu_tag r.cpu)

let request_to_text r =
  let b = Buffer.create 256 in
  Buffer.add_string b (request_line r);
  let rec walk indent s =
    Buffer.add_string b
      (Printf.sprintf "\n%s%-10s %6d cyc  [%d..%d]%s" indent s.layer
         (span_duration s) s.enter_at s.exit_at (cpu_tag s.cpu));
    List.iter (walk (indent ^ "  ")) s.children
  in
  List.iter (walk "  ") r.spans;
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "\n  media      %6d cyc  [%d..%d] block %d"
           (m.complete_at - m.issue_at) m.issue_at m.complete_at m.block))
    r.media;
  List.iter
    (fun (at, detail, info) ->
      Buffer.add_string b (Printf.sprintf "\n  note @%d %s %d" at detail info))
    r.notes;
  Buffer.contents b

let attribution_to_text r =
  String.concat ", "
    (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) (attribution r))

let layer_totals_to_text reqs =
  String.concat "\n"
    (List.map
       (fun (l, n) -> Printf.sprintf "%-10s %8d cyc" l n)
       (layer_totals reqs))

(* ------------------------------------------------------------------ *)
(* State-at-cycle queries over the structural archive                   *)
(* ------------------------------------------------------------------ *)

let upto at events =
  List.filter (fun (e : Journal.event) -> e.Journal.at <= at) events

(* Who held frame F at cycle N: owners come from Page_share (info =
   frame, domain = the domain mapped into) and leave on Page_unshare. *)
let frame_holders events ~frame ~at =
  List.fold_left
    (fun holders (e : Journal.event) ->
      if e.Journal.info <> frame then holders
      else
        match e.Journal.kind with
        | Journal.Page_share ->
          if List.mem e.Journal.domain holders then holders
          else e.Journal.domain :: holders
        | Journal.Page_unshare ->
          List.filter (fun d -> d <> e.Journal.domain) holders
        | _ -> holders)
    [] (upto at events)
  |> List.sort compare

(* Which instance handle was bound at path P at cycle N: Bind/Unbind
   set and clear it; Interpose/Uninterpose (detail "path: old -> new")
   swap it. *)
let bound_at events ~path ~at =
  let swap_prefix = path ^ ": " in
  List.fold_left
    (fun bound (e : Journal.event) ->
      match e.Journal.kind with
      | Journal.Bind when String.equal e.Journal.detail path -> Some e.Journal.info
      | Journal.Unbind when String.equal e.Journal.detail path -> None
      | Journal.Interpose | Journal.Uninterpose ->
        let d = e.Journal.detail in
        if
          String.length d >= String.length swap_prefix
          && String.equal (String.sub d 0 (String.length swap_prefix)) swap_prefix
        then Some e.Journal.info
        else bound
      | _ -> bound)
    None (upto at events)

(* Which domain owned component C at cycle N: Install records
   "name @ path" with the instance handle; Detach removes by handle. *)
let owner_of events ~name ~at =
  let prefix = name ^ " @ " in
  let installs =
    List.fold_left
      (fun live (e : Journal.event) ->
        match e.Journal.kind with
        | Journal.Install ->
          let d = e.Journal.detail in
          if
            String.length d >= String.length prefix
            && String.equal (String.sub d 0 (String.length prefix)) prefix
          then (e.Journal.info, e.Journal.domain) :: live
          else live
        | Journal.Detach ->
          List.filter (fun (h, _) -> h <> e.Journal.info) live
        | _ -> live)
      [] (upto at events)
  in
  match installs with [] -> None | (_, domain) :: _ -> Some domain
