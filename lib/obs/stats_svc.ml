(* The /stats namespace: per-domain accounting made visible as ordinary
   objects. One service object at /stats/kernel exports kernel-wide
   snapshot/diff/flight, and each protection domain gets a directory
   object at /stats/<name> — both reachable cross-domain through the
   normal proxy path and interposable like any agent, because they are
   nothing but named instances. *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Directory = Pm_nucleus.Directory
module Vmem = Pm_nucleus.Vmem
module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Path = Pm_names.Path
module Obs = Pm_obs.Obs
module Acct = Pm_obs.Acct
module Metrics = Pm_obs.Metrics
module Flightrec = Pm_obs.Flightrec
module Tracer = Pm_obs.Tracer

type t = {
  api : Api.t;
  domains : unit -> Domain.t list;
  published : (int, string) Hashtbl.t; (* domain id -> /stats path *)
  mutable baseline : (int * string * Acct.slot) list; (* id, name, copy *)
  mutable baseline_at : int;
  mutable kernel_obj : Instance.t option;
}

let clock t = Machine.clock t.api.Api.machine
let obs t = Clock.obs (clock t)

let live_domains t = List.filter (fun d -> d.Domain.alive) (t.domains ())

(* the [pages] field is a gauge: refresh it from Vmem before exporting *)
let refresh t =
  List.iter
    (fun d -> d.Domain.acct.Acct.pages <- Vmem.pages_of t.api.Api.vmem d)
    (live_domains t)

let capture t =
  refresh t;
  List.map (fun d -> (d.Domain.id, d.Domain.name, Acct.copy d.Domain.acct)) (live_domains t)

let mark t =
  t.baseline <- capture t;
  t.baseline_at <- Clock.now (clock t)

(* ---------------- exporters (reusing Metrics for the keyed data) ------ *)

let dom_line id name slot =
  Printf.sprintf "dom %-2d %-12s %s" id name (Acct.line slot)

let dom_json id name slot =
  Printf.sprintf "{\"id\":%d,\"name\":\"%s\",\"acct\":%s}" id (Tracer.json_escape name)
    (Acct.to_json slot)

let snapshot_text t =
  refresh t;
  let header =
    Printf.sprintf "/stats snapshot @ %d cyc, %d domains" (Clock.now (clock t))
      (List.length (live_domains t))
  in
  let lines =
    List.map (fun d -> dom_line d.Domain.id d.Domain.name d.Domain.acct) (live_domains t)
  in
  String.concat "\n" ((header :: lines) @ [ Metrics.to_text (Obs.metrics (obs t)) ])

let snapshot_json t =
  refresh t;
  Printf.sprintf "{\"at\":%d,\"domains\":[%s],\"metrics\":%s}" (Clock.now (clock t))
    (String.concat ","
       (List.map (fun d -> dom_json d.Domain.id d.Domain.name d.Domain.acct)
          (live_domains t)))
    (Metrics.to_json (Obs.metrics (obs t)))

(* diff against the last [mark] — counters as deltas, pages as-is *)
let diff_slots t =
  let current = capture t in
  List.map
    (fun (id, name, after) ->
      match List.find_opt (fun (i, _, _) -> i = id) t.baseline with
      | Some (_, _, before) -> (id, name, Acct.sub ~after ~before)
      | None -> (id, name, after))
    current

let diff_text t =
  let now = Clock.now (clock t) in
  let header =
    Printf.sprintf "/stats diff over %d cyc (%d..%d)" (now - t.baseline_at)
      t.baseline_at now
  in
  String.concat "\n"
    (header :: List.map (fun (id, name, s) -> dom_line id name s) (diff_slots t))

let diff_json t =
  let now = Clock.now (clock t) in
  Printf.sprintf "{\"from\":%d,\"to\":%d,\"domains\":[%s]}" t.baseline_at now
    (String.concat ","
       (List.map (fun (id, name, s) -> dom_json id name s) (diff_slots t)))

(* ---------------- per-domain directory objects ----------------------- *)

let domain_text t (d : Domain.t) =
  refresh t;
  let m = Obs.metrics (obs t) in
  let mine l = List.filter_map (fun (dom, n, v) -> if dom = d.Domain.id then Some (n, v) else None) l in
  let kv (n, v) = Printf.sprintf "  %s=%d" n v in
  let counters = mine (Metrics.counters m) and gauges = mine (Metrics.gauges m) in
  let histos =
    List.filter_map
      (fun (dom, n, s) ->
        if dom = d.Domain.id then
          Some (Printf.sprintf "  %s: %s" n (Metrics.summary_to_text s))
        else None)
      (Metrics.histograms m)
  in
  String.concat "\n"
    ((dom_line d.Domain.id d.Domain.name d.Domain.acct :: List.map kv counters)
    @ List.map kv gauges @ histos)

let domain_json t (d : Domain.t) =
  refresh t;
  let m = Obs.metrics (obs t) in
  let mine l = List.filter_map (fun (dom, n, v) -> if dom = d.Domain.id then Some (n, v) else None) l in
  let obj l =
    "{"
    ^ String.concat ","
        (List.map (fun (n, v) -> Printf.sprintf "\"%s\":%d" (Tracer.json_escape n) v) l)
    ^ "}"
  in
  Printf.sprintf "{\"id\":%d,\"name\":\"%s\",\"acct\":%s,\"counters\":%s,\"gauges\":%s}"
    d.Domain.id (Tracer.json_escape d.Domain.name) (Acct.to_json d.Domain.acct)
    (obj (mine (Metrics.counters m)))
    (obj (mine (Metrics.gauges m)))

let fmt_error meth = Error (Oerror.Type_error (meth ^ "(\"text\"|\"json\")"))

let domain_iface t (d : Domain.t) =
  let read_m _ctx = function
    | [ Value.Str "text" ] -> Ok (Value.Str (domain_text t d))
    | [ Value.Str "json" ] -> Ok (Value.Str (domain_json t d))
    | [ Value.Str _ ] -> fmt_error "read"
    | _ -> Error (Oerror.Type_error "read(str)")
  in
  let value_m _ctx = function
    | [ Value.Str name ] ->
      refresh t;
      (match Acct.field d.Domain.acct name with
      | Some v -> Ok (Value.Int v)
      | None -> Error (Oerror.Fault (Printf.sprintf "no accounting field %S" name)))
    | _ -> Error (Oerror.Type_error "value(str)")
  in
  Iface.make ~name:"stats.domain"
    [
      Iface.meth ~name:"read" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tstr read_m;
      Iface.meth ~name:"value" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tint value_m;
    ]

let domain_object t (d : Domain.t) =
  Instance.create t.api.Api.registry ~class_name:"obs.stats.domain"
    ~domain:t.api.Api.kernel_domain.Domain.id [ domain_iface t d ]

(* register /stats/<name> for every live domain that has none yet; the
   kernel domain is covered by /stats/kernel itself *)
let publish t =
  let fresh = ref 0 in
  List.iter
    (fun d ->
      if (not (Domain.is_kernel d)) && not (Hashtbl.mem t.published d.Domain.id) then begin
        let base = "/stats/" ^ d.Domain.name in
        let path =
          match Directory.register t.api.Api.directory (Path.of_string base) (domain_object t d) with
          | Ok () -> Some base
          | Error _ ->
            (* name collision between domains: qualify with the id *)
            let alt = Printf.sprintf "%s.%d" base d.Domain.id in
            (match
               Directory.register t.api.Api.directory (Path.of_string alt)
                 (domain_object t d)
             with
            | Ok () -> Some alt
            | Error _ -> None)
        in
        match path with
        | Some p ->
          Hashtbl.replace t.published d.Domain.id p;
          incr fresh
        | None -> ()
      end)
    (live_domains t);
  !fresh

(* ---------------- per-CPU view --------------------------------------- *)

module Cpu = Pm_machine.Cpu

(* One line per CPU of the machine's SMP complex; a single synthetic
   line for uniprocessor machines so consumers need no special case. *)
let cpus_text t =
  match Cpu.find ~machine:t.api.Api.machine with
  | None ->
    Printf.sprintf "cpu 0  cycles=%-10d halted=0 ipis_sent=0 ipis_recv=0 synced=0"
      (Clock.now (clock t))
  | Some cpx ->
    Cpu.all_stats cpx
    |> List.map (fun (s : Cpu.cpu_stats) ->
           Printf.sprintf
             "cpu %d  cycles=%-10d halted=%d ipis_sent=%d ipis_recv=%d synced=%d"
             s.Cpu.cpu s.Cpu.cycles
             (if s.Cpu.halted_now then 1 else 0)
             s.Cpu.ipis_sent s.Cpu.ipis_recv s.Cpu.synced)
    |> String.concat "\n"

(* The raw (cpu, cycles) pairs behind [cpus_text] — what the placement
   agent's CPU-affinity loop reads as its load signal. *)
let cpu_loads t =
  match Cpu.find ~machine:t.api.Api.machine with
  | None -> [ (0, Clock.now (clock t)) ]
  | Some cpx ->
    List.map (fun (s : Cpu.cpu_stats) -> (s.Cpu.cpu, s.Cpu.cycles)) (Cpu.all_stats cpx)

let cpus_json t =
  let one (s : Cpu.cpu_stats) =
    Printf.sprintf
      "{\"cpu\":%d,\"cycles\":%d,\"halted\":%b,\"ipis_sent\":%d,\"ipis_recv\":%d,\"synced\":%d}"
      s.Cpu.cpu s.Cpu.cycles s.Cpu.halted_now s.Cpu.ipis_sent s.Cpu.ipis_recv
      s.Cpu.synced
  in
  match Cpu.find ~machine:t.api.Api.machine with
  | None ->
    Printf.sprintf
      "[{\"cpu\":0,\"cycles\":%d,\"halted\":false,\"ipis_sent\":0,\"ipis_recv\":0,\"synced\":0}]"
      (Clock.now (clock t))
  | Some cpx ->
    "[" ^ String.concat "," (List.map one (Cpu.all_stats cpx)) ^ "]"

(* ---------------- the /stats/kernel service object ------------------- *)

let kernel_iface t =
  let snapshot_m _ctx = function
    | [ Value.Str "text" ] -> Ok (Value.Str (snapshot_text t))
    | [ Value.Str "json" ] -> Ok (Value.Str (snapshot_json t))
    | [ Value.Str _ ] -> fmt_error "snapshot"
    | _ -> Error (Oerror.Type_error "snapshot(str)")
  in
  let diff_m _ctx = function
    | [ Value.Str "text" ] -> Ok (Value.Str (diff_text t))
    | [ Value.Str "json" ] -> Ok (Value.Str (diff_json t))
    | [ Value.Str _ ] -> fmt_error "diff"
    | _ -> Error (Oerror.Type_error "diff(str)")
  in
  let mark_m _ctx = function
    | [] ->
      mark t;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "mark()")
  in
  let flight_m _ctx = function
    (* n <= 0: the whole surviving ring; n > 0: just the last n events *)
    | [ Value.Int n ] ->
      let fl = Obs.flight (obs t) in
      if n <= 0 then Ok (Value.Str (Flightrec.to_text fl))
      else
        Ok
          (Value.Str
             (Printf.sprintf "flight: %d recorded, tail %d\n%s"
                (Flightrec.recorded fl) n
                (Flightrec.tail_to_text fl n)))
    | _ -> Error (Oerror.Type_error "flight(int)")
  in
  let publish_m _ctx = function
    | [] -> Ok (Value.Int (publish t))
    | _ -> Error (Oerror.Type_error "publish()")
  in
  let cpus_m _ctx = function
    | [ Value.Str "text" ] -> Ok (Value.Str (cpus_text t))
    | [ Value.Str "json" ] -> Ok (Value.Str (cpus_json t))
    | [ Value.Str _ ] -> fmt_error "cpus"
    | _ -> Error (Oerror.Type_error "cpus(str)")
  in
  Iface.make ~name:"stats"
    [
      Iface.meth ~name:"snapshot" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tstr snapshot_m;
      Iface.meth ~name:"diff" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tstr diff_m;
      Iface.meth ~name:"mark" ~args:[] ~ret:Vtype.Tunit mark_m;
      Iface.meth ~name:"flight" ~args:[ Vtype.Tint ] ~ret:Vtype.Tstr flight_m;
      Iface.meth ~name:"publish" ~args:[] ~ret:Vtype.Tint publish_m;
      Iface.meth ~name:"cpus" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tstr cpus_m;
    ]

let create api ~domains () =
  let t =
    { api; domains; published = Hashtbl.create 8; baseline = []; baseline_at = 0;
      kernel_obj = None }
  in
  mark t;
  (* /stats/kernel doubles as the kernel domain's own directory object:
     it exports "stats" (kernel-wide) plus "stats.domain" bound to the
     kernel domain *)
  let inst =
    Instance.create api.Api.registry ~class_name:"obs.stats"
      ~domain:api.Api.kernel_domain.Domain.id
      [ kernel_iface t; domain_iface t api.Api.kernel_domain ]
  in
  t.kernel_obj <- Some inst;
  t

let kernel_object t =
  match t.kernel_obj with Some i -> i | None -> assert false

let published t = Hashtbl.fold (fun _ p acc -> p :: acc) t.published []
