type key = int * string

type histo = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array; (* bucket b holds values v with bucket_of v = b *)
}

let bucket_count = 62 (* enough for any OCaml int on 64-bit *)

(* bucket 0 is [_, 2); bucket b >= 1 is [2^b, 2^(b+1)) *)
let bucket_of v =
  if v < 2 then 0
  else begin
    let rec go n b = if n < 2 then b else go (n lsr 1) (b + 1) in
    go v 0
  end

let bucket_floor b = if b = 0 then 0 else 1 lsl b

type t = {
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, int ref) Hashtbl.t;
  histos : (key, histo) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16; gauges = Hashtbl.create 8; histos = Hashtbl.create 8 }

let add t ~domain name n =
  let key = (domain, name) in
  match Hashtbl.find_opt t.counters key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters key (ref n)

let incr t ~domain name = add t ~domain name 1

let counter t ~domain name =
  match Hashtbl.find_opt t.counters (domain, name) with Some r -> !r | None -> 0

let set_gauge t ~domain name v =
  let key = (domain, name) in
  match Hashtbl.find_opt t.gauges key with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges key (ref v)

let gauge t ~domain name =
  match Hashtbl.find_opt t.gauges (domain, name) with Some r -> !r | None -> 0

let observe t ~domain name v =
  let key = (domain, name) in
  let h =
    match Hashtbl.find_opt t.histos key with
    | Some h -> h
    | None ->
      let h =
        { count = 0; sum = 0; vmin = max_int; vmax = min_int;
          buckets = Array.make bucket_count 0 }
      in
      Hashtbl.add t.histos key h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = min (bucket_of v) (bucket_count - 1) in
  h.buckets.(b) <- h.buckets.(b) + 1

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

(* percentile as the floor of the log2 bucket holding the rank-th value:
   deliberately coarse (factor-of-two resolution) in exchange for O(1)
   updates and a fixed footprint *)
let percentile (h : histo) p =
  if h.count = 0 then 0
  else begin
    let rank = max 1 ((p * h.count + 99) / 100) in
    let rec walk b cum =
      if b >= bucket_count then h.vmax
      else begin
        let cum = cum + h.buckets.(b) in
        if cum >= rank then bucket_floor b else walk (b + 1) cum
      end
    in
    walk 0 0
  end

let summary t ~domain name =
  match Hashtbl.find_opt t.histos (domain, name) with
  | None -> None
  | Some h ->
    Some
      { count = h.count; sum = h.sum; min = h.vmin; max = h.vmax;
        p50 = percentile h 50; p90 = percentile h 90; p99 = percentile h 99 }

let mean s = if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count

let summary_to_text s =
  Printf.sprintf "count=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d" s.count
    (mean s) s.min s.p50 s.p90 s.p99 s.max

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let counters t =
  List.map (fun (d, n) -> (d, n, counter t ~domain:d n)) (sorted_keys t.counters)

let gauges t =
  List.map (fun (d, n) -> (d, n, gauge t ~domain:d n)) (sorted_keys t.gauges)

let histograms t =
  List.filter_map
    (fun (d, n) -> Option.map (fun s -> (d, n, s)) (summary t ~domain:d n))
    (sorted_keys t.histos)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histos

let to_text t =
  let b = Buffer.create 256 in
  let section title lines =
    if lines <> [] then begin
      Buffer.add_string b (title ^ "\n");
      List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) lines
    end
  in
  section "counters"
    (List.map (fun (d, n, v) -> Printf.sprintf "dom %-2d %-28s %d" d n v) (counters t));
  section "gauges"
    (List.map (fun (d, n, v) -> Printf.sprintf "dom %-2d %-28s %d" d n v) (gauges t));
  section "histograms (cycles)"
    (List.map
       (fun (d, n, s) -> Printf.sprintf "dom %-2d %-28s %s" d n (summary_to_text s))
       (histograms t));
  Buffer.contents b

let to_json t =
  let entry (d, n, v) =
    Printf.sprintf "{\"domain\":%d,\"name\":\"%s\",\"value\":%d}" d (Tracer.json_escape n) v
  in
  let histo_entry (d, n, s) =
    Printf.sprintf
      "{\"domain\":%d,\"name\":\"%s\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d}"
      d (Tracer.json_escape n) s.count s.sum s.min s.max s.p50 s.p90 s.p99
  in
  Printf.sprintf "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}"
    (String.concat "," (List.map entry (counters t)))
    (String.concat "," (List.map entry (gauges t)))
    (String.concat "," (List.map histo_entry (histograms t)))
