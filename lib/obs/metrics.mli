(** Metrics registry: counters, gauges and log2-bucketed cycle
    histograms, keyed by [(domain, name)].

    Histograms bucket by powers of two — O(1) update, fixed footprint —
    so percentiles resolve to the *floor of the bucket* holding the
    ranked value (factor-of-two resolution). Exact [min]/[max]/[sum] are
    kept alongside. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr : t -> domain:int -> string -> unit
val add : t -> domain:int -> string -> int -> unit
val counter : t -> domain:int -> string -> int

(** {2 Gauges} *)

val set_gauge : t -> domain:int -> string -> int -> unit
val gauge : t -> domain:int -> string -> int

(** {2 Histograms} *)

(** [observe t ~domain name v] records one sample (typically a cycle
    latency). *)
val observe : t -> domain:int -> string -> int -> unit

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;  (** log2-bucket floor of the median sample *)
  p90 : int;
  p99 : int;
}

val summary : t -> domain:int -> string -> summary option
val mean : summary -> float
val summary_to_text : summary -> string

(** [bucket_of v] is the histogram bucket index holding [v]: bucket 0 is
    [(-inf, 2)], bucket [b >= 1] is [[2^b, 2^(b+1))]. Exposed for
    tests. *)
val bucket_of : int -> int

val bucket_floor : int -> int

(** {2 Enumeration and export} *)

val counters : t -> (int * string * int) list
val gauges : t -> (int * string * int) list
val histograms : t -> (int * string * summary) list
val reset : t -> unit
val to_text : t -> string
val to_json : t -> string
