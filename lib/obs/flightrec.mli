(** Always-on flight recorder: a fixed-capacity ring of tiny event
    records — traps, interrupts, page faults, cross-domain proxy
    crossings and scheduler dispatches.

    Unlike the span {!Tracer}, recording here is *not* gated on
    {!Obs.enabled} and charges no simulated cycles: each record is a
    couple of plain stores into a preallocated ring, cheap enough to
    never turn off. Its purpose is post-mortem: the last events before
    an [Oerror] or an uncaught fault are dumped automatically, and
    [/stats/kernel.flight] exposes the ring on demand. *)

type kind = Trap | Irq | Fault | Crossing | Sched | Check

type event = {
  seq : int;  (** recording order, monotonically increasing *)
  kind : kind;
  domain : int;  (** domain the event concerns (see [info] per kind) *)
  at : int;  (** virtual-cycle timestamp *)
  info : int;
      (** kind-specific detail: trap vector, irq line, faulting vpage,
          crossing target domain, dispatched thread id, or linter
          finding count *)
}

type t

val default_capacity : int
val create : ?capacity:int -> unit -> t
val capacity : t -> int

(** [recorded t] counts events ever written (including overwritten). *)
val recorded : t -> int

val record : t -> kind:kind -> domain:int -> at:int -> info:int -> unit

(** Surviving events, oldest first. *)
val events : t -> event list

val reset : t -> unit
val kind_to_string : kind -> string
val to_text : t -> string

(** [tail_to_text t n] renders only the [n] most recent events — the
    crash-dump format. *)
val tail_to_text : t -> int -> string

val to_json : t -> string
