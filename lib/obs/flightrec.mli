(** Always-on flight recorder: the black-box view over the system
    journal ({!Pm_journal.Journal}) — the journal's bounded tail ring
    restricted to execution events: traps, interrupts, page faults,
    cross-domain proxy crossings, scheduler dispatches and lint runs.

    Unlike the span {!Tracer}, recording here is *not* gated on
    {!Obs.enabled} and charges no simulated cycles: each record is a
    couple of plain stores into the journal's preallocated ring, cheap
    enough to never turn off. Its purpose is post-mortem: the last
    events before an [Oerror] or an uncaught fault are dumped
    automatically, and [/stats/kernel.flight] exposes the ring on
    demand. The full history (including structural mutations) lives in
    the underlying journal, reachable via {!journal}. *)

type kind = Trap | Irq | Fault | Crossing | Sched | Check

type event = {
  seq : int;  (** journal sequence number (shared with structural events) *)
  kind : kind;
  domain : int;  (** domain the event concerns (see [info] per kind) *)
  at : int;  (** virtual-cycle timestamp *)
  info : int;
      (** kind-specific detail: trap vector, irq line, faulting vpage,
          crossing target domain, dispatched thread id, or linter
          finding count *)
}

type t

val default_capacity : int

(** [create ?capacity ()] is a standalone recorder over a fresh
    journal whose tail ring holds [capacity] events. *)
val create : ?capacity:int -> unit -> t

(** [over journal] views an existing journal as a flight recorder —
    how {!Obs.t} shares one journal between both facades. *)
val over : Pm_journal.Journal.t -> t

(** The journal this recorder views. *)
val journal : t -> Pm_journal.Journal.t

val capacity : t -> int

(** [recorded t] counts execution events ever written (including
    overwritten). *)
val recorded : t -> int

val record : t -> kind:kind -> domain:int -> at:int -> info:int -> unit

(** Surviving execution events, oldest first. *)
val events : t -> event list

(** Resets the underlying journal. *)
val reset : t -> unit

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val to_text : t -> string

(** [tail_to_text t n] renders only the [n] most recent events — the
    crash-dump format. *)
val tail_to_text : t -> int -> string

val to_json : t -> string

(** [of_json s] parses exactly the shape {!to_json} emits back into
    [(recorded, capacity, events)] — the round-trip for shipping a
    black-box dump off-system. *)
val of_json : string -> (int * int * event list, string) result
