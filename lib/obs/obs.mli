(** The observability sink: one span {!Tracer}, one {!Metrics} registry
    and one per-domain {!Acct} table behind a single cheap [enabled]
    flag, plus an always-on {!Flightrec}.

    Every virtual clock owns one of these; instrumented hot paths —
    method dispatch, event delivery, page-fault handling, cross-domain
    proxies, the scheduler — test {!enabled} and skip everything
    (including all cycle charges and accounting updates) when tracing is
    off, so a quiescent tracer costs nothing in simulated cycles. The
    flight recorder is the one exception: it records regardless of the
    flag, but with plain stores and no cycle charges. *)

type t

val create : ?capacity:int -> ?flight_capacity:int -> unit -> t

val enabled : t -> bool
val enable : t -> unit
val disable : t -> unit

val tracer : t -> Tracer.t
val metrics : t -> Metrics.t
val acct : t -> Acct.t
val flight : t -> Flightrec.t

(** The system journal the flight recorder views: the complete
    event-sourced history, structural mutations included. *)
val journal : t -> Pm_journal.Journal.t

(** {2 Conveniences forwarding to the tracer / metrics} *)

val span_begin :
  t -> now:int -> domain:int -> obj:string -> iface:string -> meth:string -> Tracer.token

val span_end : t -> now:int -> Tracer.token -> unit
val observe : t -> domain:int -> string -> int -> unit
val incr : t -> domain:int -> string -> unit
val add : t -> domain:int -> string -> int -> unit
val set_gauge : t -> domain:int -> string -> int -> unit

(** Clears spans, metrics, accounting and the flight recorder; leaves
    [enabled] untouched. *)
val reset : t -> unit

val to_text : t -> string
val to_json : t -> string
