(** The observability sink: one span {!Tracer} plus one {!Metrics}
    registry behind a single cheap [enabled] flag.

    Every virtual clock owns one of these; instrumented hot paths —
    method dispatch, event delivery, page-fault handling, cross-domain
    proxies, the scheduler — test {!enabled} and skip everything
    (including all cycle charges) when tracing is off, so a quiescent
    tracer costs nothing in simulated cycles. *)

type t

val create : ?capacity:int -> unit -> t

val enabled : t -> bool
val enable : t -> unit
val disable : t -> unit

val tracer : t -> Tracer.t
val metrics : t -> Metrics.t

(** {2 Conveniences forwarding to the tracer / metrics} *)

val span_begin :
  t -> now:int -> domain:int -> obj:string -> iface:string -> meth:string -> Tracer.token

val span_end : t -> now:int -> Tracer.token -> unit
val observe : t -> domain:int -> string -> int -> unit
val incr : t -> domain:int -> string -> unit
val add : t -> domain:int -> string -> int -> unit
val set_gauge : t -> domain:int -> string -> int -> unit

(** Clears spans and metrics; leaves [enabled] untouched. *)
val reset : t -> unit

val to_text : t -> string
val to_json : t -> string
