module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Directory = Pm_nucleus.Directory
module Interpose = Pm_components.Interpose
module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Instance = Pm_obj.Instance
module Path = Pm_names.Path
module Namespace = Pm_names.Namespace
module Obs = Pm_obs.Obs

(* The trace agent is an ordinary interposer whose call/result hooks
   bracket every forwarded method in a span.  Tokens for in-flight calls
   live on a stack: hooks fire strictly LIFO (the forward is a plain
   nested invocation), so pop pairs with the matching push even when
   interposed methods call back through the same agent. *)
let trace_agent api dom ~target =
  let machine = api.Api.machine in
  let clock = Machine.clock machine in
  let obs = Clock.obs clock in
  let open_tokens = Stack.create () in
  let on_call ~iface ~meth _args =
    if Obs.enabled obs then
      Stack.push
        (Obs.span_begin obs ~now:(Clock.now clock) ~domain:dom.Domain.id
           ~obj:("trace:" ^ target.Instance.class_name)
           ~iface ~meth)
        open_tokens
  in
  let on_result ~iface:_ ~meth:_ _args result =
    (* pop even if tracing was flipped off mid-call, so the stack cannot
       grow stale tokens; record only when still enabled *)
    match Stack.pop_opt open_tokens with
    | None -> ()
    | Some tok ->
      if Obs.enabled obs then begin
        Clock.advance clock (Machine.costs machine).Cost.mem_write;
        let now = Clock.now clock in
        Obs.span_end obs ~now tok;
        match result with
        | Ok _ -> ()
        | Error _ -> Obs.incr obs ~domain:dom.Domain.id "trace.errors"
      end
  in
  Interpose.wrap api dom ~target ~on_call ~on_result ()

let interpose api ~path =
  let dir = api.Api.directory in
  match Namespace.lookup (Directory.namespace dir) (Path.of_string path) with
  | Error e -> Error (Namespace.error_to_string e)
  | Ok handle ->
    (match Directory.resolve_handle dir handle with
    | None -> Error (Printf.sprintf "handle %d at %s is dangling" handle path)
    | Some target ->
      let agent = trace_agent api api.Api.kernel_domain ~target in
      (match Interpose.attach api ~path ~agent with
      | Ok original -> Ok (agent, original)
      | Error e -> Error e))

let remove api ~path ~agent ~original =
  match Directory.replace api.Api.directory (Path.of_string path) original with
  | Error e -> Error (Directory.bind_error_to_string e)
  | Ok prev ->
    if prev == agent then Ok ()
    else begin
      (* someone interposed over us since; put their entry back *)
      ignore (Directory.replace api.Api.directory (Path.of_string path) prev);
      Error (Printf.sprintf "entry at %s is not the trace agent" path)
    end

let installer api =
  {
    Pm_nucleus.Tracesvc.install =
      (fun path ->
        match interpose api ~path with
        | Ok (agent, original) -> Ok { Pm_nucleus.Tracesvc.agent; original }
        | Error e -> Error e);
    uninstall =
      (fun path { Pm_nucleus.Tracesvc.agent; original } ->
        remove api ~path ~agent ~original);
  }
