(** The trace interposer: an interposing agent (built with
    {!Pm_components.Interpose}) whose hooks record a span per forwarded
    method call into the clock's {!Pm_obs.Obs} sink.

    Installation follows the paper's recipe for interposition — replace
    the name-space entry with a superset object — so clients that re-bind
    the name transparently go through the agent; [remove] swaps the
    original binding back. *)

(** [trace_agent api dom ~target] wraps [target] in a tracing interposer
    owned by [dom]. The agent is transparent: arguments, results and
    errors pass through byte-identically; when tracing is enabled each
    call adds one span (charging one [mem_write]). *)
val trace_agent :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  target:Pm_obj.Instance.t ->
  Pm_obj.Instance.t

(** [interpose api ~path] builds a trace agent over the instance bound at
    [path] and swaps it into the name space. Returns
    [(agent, original)] for a later {!remove}. *)
val interpose :
  Pm_nucleus.Api.t ->
  path:string ->
  (Pm_obj.Instance.t * Pm_obj.Instance.t, string) result

(** [remove api ~path ~agent ~original] restores [original] at [path].
    Fails (and leaves the name space unchanged) if the entry no longer
    holds [agent]. *)
val remove :
  Pm_nucleus.Api.t ->
  path:string ->
  agent:Pm_obj.Instance.t ->
  original:Pm_obj.Instance.t ->
  (unit, string) result

(** [installer api] packages {!interpose}/{!remove} for injection into
    {!Pm_nucleus.Tracesvc}, which sits below this library in the
    dependency order. *)
val installer : Pm_nucleus.Api.t -> Pm_nucleus.Tracesvc.interposer
