(** The [/stats] namespace: per-domain accounting exported as ordinary
    named objects.

    [/stats/kernel] is the kernel-wide service — snapshot and diff
    exporters (text or JSON, reusing {!Pm_obs.Metrics} for the keyed
    data), the always-on flight-recorder dump, and [publish] which
    registers one directory object per live user domain at
    [/stats/<name>] (iface ["stats.domain"]: [read fmt] and
    [value field]). The kernel object also exports ["stats.domain"] for
    the kernel domain itself.

    Because these are plain instances in the name space, a user domain
    reads them through the normal proxy path, and a monitor agent can
    interpose on them like on any other object. *)

type t

(** [create api ~domains ()] builds the service; [domains] enumerates
    the kernel's domains (typically [Kernel.domains]). The caller
    registers {!kernel_object} at [/stats/kernel]. *)
val create : Pm_nucleus.Api.t -> domains:(unit -> Pm_nucleus.Domain.t list) -> unit -> t

val kernel_object : t -> Pm_obj.Instance.t

(** Register [/stats/<name>] objects for live user domains that have
    none yet; returns how many were newly registered. *)
val publish : t -> int

(** Paths registered so far by {!publish}. *)
val published : t -> string list

(** Reset the diff baseline to the current accounting state. *)
val mark : t -> unit

(** {2 Direct exporters} — the same strings the object methods return. *)

val snapshot_text : t -> string
val snapshot_json : t -> string
val diff_text : t -> string
val diff_json : t -> string

(** Per-CPU load of the machine's SMP complex (cycles, halted, IPIs,
    reconciliation idle), one line/object per CPU; a single synthetic
    CPU 0 line on uniprocessor machines. Also exported as the [cpus]
    method of [/stats/kernel]. *)
val cpus_text : t -> string

val cpus_json : t -> string

(** The raw [(cpu, cycles)] pairs behind {!cpus_text} — the load signal
    the placement agent's CPU-affinity loop consumes. *)
val cpu_loads : t -> (int * int) list
