(* The adaptive placement agent: the control loop that closes the
   observability story. It watches the per-domain accounting the
   instrumentation points maintain — crossing-cost share for a managed
   component, doorbell cost for a managed channel — and acts through the
   existing mechanisms: the loader/certsvc path for User<->Certified
   migration (via a caller-supplied migrate closure, since loading
   involves policy the agent does not own) and [Chan.set_mode] for
   Doorbell<->Poll flips. Decisions are epoch-based with confirmation
   streaks and a post-move cooldown, so the loop converges instead of
   flapping. *)

module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Cpu = Pm_machine.Cpu
module Obs = Pm_obs.Obs
module Acct = Pm_obs.Acct
module Chan = Pm_chan.Chan

type placement = User | Certified | Verified

let placement_to_string = function
  | User -> "user"
  | Certified -> "certified"
  | Verified -> "verified"

type action = Hold | Migrated of placement | Flipped of Chan.mode | Repinned of int

type comp = {
  watch : int list; (* domains paying the crossings for this component *)
  migrate : placement -> bool;
  verified_ok : bool; (* may the up-migration target be [Verified]? *)
  mutable move_cost : int;
      (* cycles a migration costs. The [manage] parameter only seeds it:
         every observed migration replaces the estimate with measured
         latency (first move) or folds it in (EWMA thereafter). *)
  mutable observed_moves : int;
  mutable placement : placement;
  mutable base : (int * Acct.slot) list;
  mutable streak : int;
  mutable cool : int;
  mutable moves : int;
  mutable defers : int; (* up-migrations declined by the payback check *)
}

type chan_ctl = {
  chan : Chan.t;
  mutable cbase : Chan.stats;
  mutable cstreak : int;
  mutable ccool : int;
  mutable flips : int;
}

(* The CPU-affinity dimension: one managed domain on an SMP complex.
   [loads] is the per-CPU cycle signal — typically
   [Stats_svc.cpu_loads], i.e. what /stats/kernel's [cpus] method
   exports — read as epoch deltas. Same governor shape as the other two
   dimensions: threshold, payback horizon, confirmation streak,
   cooldown. *)
type cpu_ctl = {
  cpx : Cpu.t;
  cdom : int; (* the pinned domain being managed *)
  loads : unit -> (int * int) list;
  mutable cpu_move_cost : int;
      (* cycles a re-pin costs the domain (cold caches, queue transfer) *)
  mutable lbase : (int * int) list;
  mutable kstreak : int;
  mutable kcool : int;
  mutable cpu_moves : int;
  mutable cpu_defers : int; (* re-pins declined by the payback check *)
}

type t = {
  clock : Clock.t;
  costs : Cost.t;
  up_share : float;
  fault_demote : int;
  payback_window : int; (* epochs a migration has to earn its cost back *)
  ring_share : float;
  idle_sends : int;
  confirm : int;
  cooldown : int;
  cpu_gap : float; (* imbalance share of the epoch that triggers a re-pin *)
  mutable last_now : int;
  mutable comps : comp list; (* in manage order *)
  mutable chan : chan_ctl option;
  mutable cpu : cpu_ctl option;
  mutable epochs : int;
  mutable last_share : float;
  mutable last_ring_share : float;
  mutable last_cpu_gap : float;
}

let create ~clock ~costs ?(up_share = 0.2) ?(fault_demote = 3)
    ?(payback_window = 4) ?(ring_share = 0.25) ?(idle_sends = 0) ?(confirm = 2)
    ?(cooldown = 1) ?(cpu_gap = 0.1) () =
  {
    clock; costs; up_share; fault_demote; payback_window; ring_share; idle_sends;
    confirm; cooldown; cpu_gap;
    last_now = Clock.now clock;
    comps = [];
    chan = None;
    cpu = None;
    epochs = 0;
    last_share = 0.;
    last_ring_share = 0.;
    last_cpu_gap = 0.;
  }

let snapshot_watch clock watch =
  let acct = Obs.acct (Clock.obs clock) in
  List.map (fun d -> (d, Acct.copy (Acct.slot acct d))) watch

let manage t ~watch ~placement ?(verified_ok = false) ?(move_cost = 0) ~migrate () =
  t.comps <-
    t.comps
    @ [
        { watch; migrate; verified_ok; move_cost; observed_moves = 0; placement;
          base = snapshot_watch t.clock watch; streak = 0; cool = 0; moves = 0;
          defers = 0 };
      ]

let manage_channel t chan =
  t.chan <- Some { chan; cbase = Chan.stats chan; cstreak = 0; ccool = 0; flips = 0 }

let manage_cpu t ~complex ~domain ?loads ?(move_cost = 0) () =
  let loads =
    match loads with
    | Some f -> f
    | None ->
      (* default to the same (cpu, cycles) signal /stats exports *)
      fun () ->
        List.map (fun (s : Cpu.cpu_stats) -> (s.Cpu.cpu, s.Cpu.cycles))
          (Cpu.all_stats complex)
  in
  (* seed the move estimate with something physical if the caller has no
     better guess: the domain's working set re-warming on the new CPU *)
  let move_cost = if move_cost > 0 then move_cost else 32 * t.costs.Cost.cacheline in
  t.cpu <-
    Some
      { cpx = complex; cdom = domain; loads; cpu_move_cost = move_cost;
        lbase = loads (); kstreak = 0; kcool = 0; cpu_moves = 0; cpu_defers = 0 }

let placement t =
  match t.comps with c :: _ -> Some c.placement | [] -> None

let placements t = List.map (fun c -> c.placement) t.comps
let move_costs t = List.map (fun c -> c.move_cost) t.comps
let moves t = List.fold_left (fun acc c -> acc + c.moves) 0 t.comps
let deferrals t = List.fold_left (fun acc c -> acc + c.defers) 0 t.comps
let flips t = match t.chan with Some c -> c.flips | None -> 0
let cpu_moves t = match t.cpu with Some k -> k.cpu_moves | None -> 0
let cpu_deferrals t = match t.cpu with Some k -> k.cpu_defers | None -> 0
let epochs t = t.epochs
let crossing_share t = t.last_share
let doorbell_share t = t.last_ring_share
let cpu_imbalance t = t.last_cpu_gap

let comp_epoch t dt (c : comp) actions =
  let cur = snapshot_watch t.clock c.watch in
  let delta f =
    List.fold_left2 (fun acc (_, before) (_, after) -> acc + (f after - f before)) 0
      c.base cur
  in
  let dcross = delta (fun (s : Acct.slot) -> s.Acct.crossing_cycles) in
  let dfaults = delta (fun (s : Acct.slot) -> s.Acct.faults) in
  c.base <- cur;
  let share = float_of_int dcross /. float_of_int dt in
  t.last_share <- share;
  if c.cool > 0 then c.cool <- c.cool - 1
  else begin
    let want =
      match c.placement with
      (* crossings dominate: pull the component into the kernel. When
         the component's bytecode is verifiable, prefer the [Verified]
         admission — same zero per-access cost, no signer needed. *)
      | User when share >= t.up_share ->
        (* payback check: the crossings saved over the horizon must
           cover what the migration itself costs, else moving loses
           cycles even though the share looks high *)
        if c.move_cost > t.payback_window * dcross then begin
          c.defers <- c.defers + 1;
          None
        end
        else Some (if c.verified_ok then Verified else Certified)
      (* the component faults: push it back behind a protection wall *)
      | (Certified | Verified) when dfaults >= t.fault_demote -> Some User
      | _ -> None
    in
    match want with
    | None -> c.streak <- 0
    | Some target ->
      c.streak <- c.streak + 1;
      if c.streak >= t.confirm then begin
        c.streak <- 0;
        let t0 = Clock.now t.clock in
        let moved, target =
          if c.migrate target then (true, target)
          else if target = Verified && c.migrate Certified then
            (* the verifier balked at this code: certification is the
               next-cheapest admission with the same per-access cost *)
            (true, Certified)
          else (false, target)
        in
        if moved then begin
          (* learn the real move cost: the clock just timed this very
             migration (certification latency, reload), which beats any
             caller-supplied guess. First observation replaces the seed;
             later ones are averaged in so one outlier cannot swing the
             payback check. *)
          let latency = Clock.now t.clock - t0 in
          c.move_cost <-
            (if c.observed_moves = 0 then latency
             else (c.move_cost + latency + 1) / 2);
          c.observed_moves <- c.observed_moves + 1;
          Pm_journal.Journal.record
            (Obs.journal (Clock.obs t.clock))
            ~kind:Pm_journal.Journal.Migrate
            ~domain:(match c.watch with d :: _ -> d | [] -> 0)
            ~at:(Clock.now t.clock) ~info:latency
            ~detail:(placement_to_string target);
          c.placement <- target;
          c.moves <- c.moves + 1;
          c.cool <- t.cooldown;
          (* the migration itself (certification, reloading) perturbs the
             rates; re-baseline so the next epoch measures steady state *)
          c.base <- snapshot_watch t.clock c.watch;
          actions := Migrated target :: !actions
        end
      end
  end

let chan_epoch t dt (cc : chan_ctl) actions =
  let s = Chan.stats cc.chan in
  let dbells = s.Chan.doorbells - cc.cbase.Chan.doorbells in
  let dsends = s.Chan.sends - cc.cbase.Chan.sends in
  cc.cbase <- s;
  let share =
    float_of_int (dbells * Cost.doorbell_crossing t.costs) /. float_of_int dt
  in
  t.last_ring_share <- share;
  if cc.ccool > 0 then cc.ccool <- cc.ccool - 1
  else begin
    let want =
      match Chan.mode cc.chan with
      (* each message rings: the trap + switches dominate, so spin *)
      | Chan.Doorbell when share >= t.ring_share -> Some Chan.Poll
      (* idle channel: go back to sleeping on the doorbell *)
      | Chan.Poll when dsends <= t.idle_sends -> Some Chan.Doorbell
      | _ -> None
    in
    match want with
    | None -> cc.cstreak <- 0
    | Some m ->
      cc.cstreak <- cc.cstreak + 1;
      if cc.cstreak >= t.confirm then begin
        cc.cstreak <- 0;
        Chan.set_mode cc.chan m;
        cc.flips <- cc.flips + 1;
        cc.ccool <- t.cooldown;
        actions := Flipped m :: !actions
      end
  end

let cpu_epoch t dt (k : cpu_ctl) actions =
  let cur = k.loads () in
  let base = k.lbase in
  k.lbase <- cur;
  let d cpu =
    let at l = match List.assoc_opt cpu l with Some v -> v | None -> 0 in
    at cur - at base
  in
  let mine = Cpu.cpu_of k.cpx ~domain:k.cdom in
  let dmine = d mine in
  (* least-loaded CPU this epoch, ties to the lowest id *)
  let best, dbest =
    List.fold_left
      (fun (bc, bd) (c, _) ->
        let dc = d c in
        if dc < bd then (c, dc) else (bc, bd))
      (mine, dmine) cur
  in
  let imbalance = dmine - dbest in
  t.last_cpu_gap <- float_of_int imbalance /. float_of_int dt;
  if k.kcool > 0 then k.kcool <- k.kcool - 1
  else begin
    let want =
      if best <> mine && t.last_cpu_gap >= t.cpu_gap then
        (* payback: moving can recover at most half the imbalance per
           epoch (the load splits); over the horizon that must cover the
           re-pin cost — cold caches on the new CPU — else stay put *)
        if k.cpu_move_cost > t.payback_window * (imbalance / 2) then begin
          k.cpu_defers <- k.cpu_defers + 1;
          None
        end
        else Some best
      else None
    in
    match want with
    | None -> k.kstreak <- 0
    | Some target ->
      k.kstreak <- k.kstreak + 1;
      if k.kstreak >= t.confirm then begin
        k.kstreak <- 0;
        Cpu.pin k.cpx ~domain:k.cdom ~cpu:target;
        Pm_journal.Journal.record
          (Obs.journal (Clock.obs t.clock))
          ~kind:Pm_journal.Journal.Migrate ~domain:k.cdom
          ~at:(Clock.now t.clock) ~info:imbalance
          ~detail:(Printf.sprintf "cpu=%d" target);
        k.cpu_moves <- k.cpu_moves + 1;
        k.kcool <- t.cooldown;
        k.lbase <- k.loads ();
        actions := Repinned target :: !actions
      end
  end

let epoch t =
  t.epochs <- t.epochs + 1;
  let now = Clock.now t.clock in
  let dt = max 1 (now - t.last_now) in
  t.last_now <- now;
  let actions = ref [] in
  List.iter (fun c -> comp_epoch t dt c actions) t.comps;
  (match t.chan with Some cc -> chan_epoch t dt cc actions | None -> ());
  (match t.cpu with Some k -> cpu_epoch t dt k actions | None -> ());
  match List.rev !actions with [] -> [ Hold ] | acts -> acts

let status t =
  Printf.sprintf
    "placer: epoch %d, placement %s (share %.3f, %d moves), channel %s (bell share %.3f, %d flips)"
    t.epochs
    (match t.comps with
    | comps when comps <> [] ->
      String.concat "," (List.map (fun c -> placement_to_string c.placement) comps)
    | _ -> "-")
    t.last_share (moves t)
    (match t.chan with
    | Some cc -> ( match Chan.mode cc.chan with Chan.Doorbell -> "doorbell" | Chan.Poll -> "poll")
    | None -> "-")
    t.last_ring_share (flips t)
