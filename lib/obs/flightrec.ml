(* The flight recorder is the always-on black box of the observability
   layer — and since PR 6 it is a *view* over the system journal
   (Pm_journal.Journal): the journal's bounded tail ring restricted to
   execution events. Recording here forwards into the journal with
   plain stores and no simulated-cycle charges, so it is cheap enough
   to never turn off. When a domain crashes, the last few entries are
   the black box; the journal keeps the rest of the story. *)

module J = Pm_journal.Journal

type kind = Trap | Irq | Fault | Crossing | Sched | Check

type event = {
  seq : int;
  kind : kind;
  domain : int;
  at : int; (* virtual-cycle timestamp *)
  info : int; (* vector / irq line / vpage / target domain / tid *)
}

type t = J.t

let default_capacity = J.default_tail_capacity

let create ?(capacity = default_capacity) () = J.create ~tail_capacity:capacity ()

let over journal = journal
let journal t = t

let capacity t = J.tail_capacity t
let recorded t = J.exec_written t

let jkind = function
  | Trap -> J.Trap
  | Irq -> J.Irq
  | Fault -> J.Fault
  | Crossing -> J.Crossing
  | Sched -> J.Sched
  | Check -> J.Check

let fkind = function
  | J.Trap -> Some Trap
  | J.Irq -> Some Irq
  | J.Fault -> Some Fault
  | J.Crossing -> Some Crossing
  | J.Sched -> Some Sched
  | J.Check -> Some Check
  | _ -> None

let record t ~kind ~domain ~at ~info =
  J.record t ~kind:(jkind kind) ~domain ~at ~info ~detail:""

(* surviving execution events, oldest first *)
let events t =
  List.filter_map
    (fun (e : J.event) ->
      match fkind e.J.kind with
      | Some kind ->
        Some { seq = e.J.seq; kind; domain = e.J.domain; at = e.J.at; info = e.J.info }
      | None -> None)
    (J.tail t)

let reset t = J.reset t

let kind_to_string = function
  | Trap -> "trap"
  | Irq -> "irq"
  | Fault -> "fault"
  | Crossing -> "crossing"
  | Sched -> "sched"
  | Check -> "check"

let kind_of_string = function
  | "trap" -> Some Trap
  | "irq" -> Some Irq
  | "fault" -> Some Fault
  | "crossing" -> Some Crossing
  | "sched" -> Some Sched
  | "check" -> Some Check
  | _ -> None

let event_to_text e =
  Printf.sprintf "#%-6d %8d cyc  dom %-2d %-8s %d" e.seq e.at e.domain
    (kind_to_string e.kind) e.info

let to_text t =
  let header =
    Printf.sprintf "flight: %d recorded, capacity %d" (recorded t) (capacity t)
  in
  String.concat "\n" (header :: List.map event_to_text (events t))

let tail_to_text t n =
  let evs = events t in
  let len = List.length evs in
  let tail = if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs in
  String.concat "\n" (List.map event_to_text tail)

let event_to_json e =
  Printf.sprintf "{\"seq\":%d,\"at\":%d,\"domain\":%d,\"kind\":\"%s\",\"info\":%d}" e.seq
    e.at e.domain (kind_to_string e.kind) e.info

let to_json t =
  Printf.sprintf "{\"recorded\":%d,\"capacity\":%d,\"events\":[%s]}" (recorded t)
    (capacity t)
    (String.concat "," (List.map event_to_json (events t)))

(* ---------------- JSON round-trip ------------------------------------ *)

(* A hand-rolled parser for exactly the shape [to_json] emits. Events
   carry only integers (arbitrary, including min_int) and fixed kind
   tokens, so the grammar is tiny; it exists so the black-box dump can
   be shipped off-system and read back verbatim. *)

exception Bad of string

let of_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad (Printf.sprintf "%s at offset %d" m !pos)) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let key k =
    expect '"';
    let l = String.length k in
    if !pos + l <= n && String.sub s !pos l = k then pos := !pos + l
    else fail (Printf.sprintf "expected key %S" k);
    expect '"';
    expect ':'
  in
  let int_v () =
    skip_ws ();
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "integer out of range"
  in
  let str_v () =
    expect '"';
    let start = !pos in
    while !pos < n && s.[!pos] <> '"' do
      incr pos
    done;
    let v = String.sub s start (!pos - start) in
    expect '"';
    v
  in
  let event () =
    expect '{';
    key "seq";
    let seq = int_v () in
    expect ',';
    key "at";
    let at = int_v () in
    expect ',';
    key "domain";
    let domain = int_v () in
    expect ',';
    key "kind";
    let kind =
      match kind_of_string (str_v ()) with
      | Some k -> k
      | None -> fail "unknown kind"
    in
    expect ',';
    key "info";
    let info = int_v () in
    expect '}';
    { seq; at; domain; kind; info }
  in
  try
    expect '{';
    key "recorded";
    let recorded = int_v () in
    expect ',';
    key "capacity";
    let capacity = int_v () in
    expect ',';
    key "events";
    expect '[';
    let events = ref [] in
    skip_ws ();
    if !pos < n && s.[!pos] = ']' then incr pos
    else begin
      let continue = ref true in
      while !continue do
        events := event () :: !events;
        skip_ws ();
        if !pos < n && s.[!pos] = ',' then incr pos
        else begin
          expect ']';
          continue := false
        end
      done
    end;
    expect '}';
    Ok (recorded, capacity, List.rev !events)
  with Bad m -> Error m
