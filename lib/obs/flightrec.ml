(* The flight recorder is the always-on half of the observability layer:
   a fixed ring of tiny constant-size event records written with plain
   stores and no simulated-cycle charges, so it is cheap enough to never
   turn off. When a domain crashes, the last few entries are the black
   box. *)

type kind = Trap | Irq | Fault | Crossing | Sched | Check

type event = {
  seq : int;
  kind : kind;
  domain : int;
  at : int; (* virtual-cycle timestamp *)
  info : int; (* vector / irq line / vpage / target domain / tid *)
}

type t = {
  capacity : int;
  buf : event option array;
  mutable written : int;
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Flightrec.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; written = 0 }

let capacity t = t.capacity
let recorded t = t.written

let record t ~kind ~domain ~at ~info =
  t.buf.(t.written mod t.capacity) <- Some { seq = t.written; kind; domain; at; info };
  t.written <- t.written + 1

(* surviving events, oldest first *)
let events t =
  let n = min t.written t.capacity in
  let first = if t.written <= t.capacity then 0 else t.written mod t.capacity in
  List.init n (fun k -> t.buf.((first + k) mod t.capacity))
  |> List.filter_map Fun.id

let reset t =
  Array.fill t.buf 0 t.capacity None;
  t.written <- 0

let kind_to_string = function
  | Trap -> "trap"
  | Irq -> "irq"
  | Fault -> "fault"
  | Crossing -> "crossing"
  | Sched -> "sched"
  | Check -> "check"

let event_to_text e =
  Printf.sprintf "#%-6d %8d cyc  dom %-2d %-8s %d" e.seq e.at e.domain
    (kind_to_string e.kind) e.info

let to_text t =
  let header =
    Printf.sprintf "flight: %d recorded, capacity %d" t.written t.capacity
  in
  String.concat "\n" (header :: List.map event_to_text (events t))

let tail_to_text t n =
  let evs = events t in
  let len = List.length evs in
  let tail = if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs in
  String.concat "\n" (List.map event_to_text tail)

let event_to_json e =
  Printf.sprintf "{\"seq\":%d,\"at\":%d,\"domain\":%d,\"kind\":\"%s\",\"info\":%d}" e.seq
    e.at e.domain (kind_to_string e.kind) e.info

let to_json t =
  Printf.sprintf "{\"recorded\":%d,\"capacity\":%d,\"events\":[%s]}" t.written t.capacity
    (String.concat "," (List.map event_to_json (events t)))
