type t = {
  mutable enabled : bool;
  tracer : Tracer.t;
  metrics : Metrics.t;
  acct : Acct.t;
  flight : Flightrec.t;
}

let create ?capacity ?flight_capacity () =
  {
    enabled = false;
    tracer = Tracer.create ?capacity ();
    metrics = Metrics.create ();
    acct = Acct.create ();
    flight = Flightrec.create ?capacity:flight_capacity ();
  }

let enabled t = t.enabled
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let tracer t = t.tracer
let metrics t = t.metrics
let acct t = t.acct
let flight t = t.flight

(* the journal behind the flight recorder: the complete event-sourced
   history (structural mutations included) of which the flight ring is
   the execution-only tail view *)
let journal t = Flightrec.journal t.flight

let span_begin t ~now ~domain ~obj ~iface ~meth =
  Tracer.begin_span t.tracer ~now ~domain ~obj ~iface ~meth

let span_end t ~now tok = Tracer.end_span t.tracer ~now tok

let observe t ~domain name v = Metrics.observe t.metrics ~domain name v
let incr t ~domain name = Metrics.incr t.metrics ~domain name
let add t ~domain name n = Metrics.add t.metrics ~domain name n
let set_gauge t ~domain name v = Metrics.set_gauge t.metrics ~domain name v

let reset t =
  Tracer.reset t.tracer;
  Metrics.reset t.metrics;
  Acct.reset t.acct;
  Flightrec.reset t.flight

let to_text t = Tracer.to_text t.tracer ^ "\n" ^ Metrics.to_text t.metrics

let to_json t =
  Printf.sprintf "{\"trace\":%s,\"metrics\":%s}" (Tracer.to_json t.tracer)
    (Metrics.to_json t.metrics)
