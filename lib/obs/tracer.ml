type span = {
  seq : int;
  domain : int;
  obj : string;
  iface : string;
  meth : string;
  t_start : int;
  t_end : int;
  depth : int;
}

type token = {
  tk_domain : int;
  tk_obj : string;
  tk_iface : string;
  tk_meth : string;
  tk_start : int;
  tk_depth : int;
}

type t = {
  capacity : int;
  buf : span option array;
  mutable written : int; (* completed spans ever recorded *)
  mutable dropped : int; (* completed spans the ring has overwritten *)
  mutable depth : int; (* current begin/end nesting depth *)
}

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; written = 0; dropped = 0; depth = 0 }

let capacity t = t.capacity
let recorded t = t.written
let dropped t = t.dropped
let depth t = t.depth

let begin_span t ~now ~domain ~obj ~iface ~meth =
  let tok =
    { tk_domain = domain; tk_obj = obj; tk_iface = iface; tk_meth = meth;
      tk_start = now; tk_depth = t.depth }
  in
  t.depth <- t.depth + 1;
  tok

let end_span t ~now tok =
  t.depth <- max 0 (t.depth - 1);
  let s =
    { seq = t.written; domain = tok.tk_domain; obj = tok.tk_obj;
      iface = tok.tk_iface; meth = tok.tk_meth; t_start = tok.tk_start;
      t_end = now; depth = tok.tk_depth }
  in
  let cell = t.written mod t.capacity in
  if t.buf.(cell) <> None then t.dropped <- t.dropped + 1;
  t.buf.(cell) <- Some s;
  t.written <- t.written + 1

(* surviving spans, oldest first *)
let spans t =
  let n = min t.written t.capacity in
  let first = if t.written <= t.capacity then 0 else t.written mod t.capacity in
  List.init n (fun k -> t.buf.((first + k) mod t.capacity))
  |> List.filter_map Fun.id

let reset t =
  Array.fill t.buf 0 t.capacity None;
  t.written <- 0;
  t.dropped <- 0;
  t.depth <- 0

let duration s = s.t_end - s.t_start

let span_to_text s =
  Printf.sprintf "#%-5d dom %-2d %s%s.%s [%s]  %d..%d (%d cyc)" s.seq s.domain
    (String.make (2 * s.depth) ' ')
    s.iface s.meth s.obj s.t_start s.t_end (duration s)

let to_text t =
  let header =
    Printf.sprintf "tracer: %d recorded, %d dropped, capacity %d" t.written
      (dropped t) t.capacity
  in
  String.concat "\n" (header :: List.map span_to_text (spans t))

(* minimal JSON string escaping; names here are identifiers but be safe *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_to_json s =
  Printf.sprintf
    "{\"seq\":%d,\"domain\":%d,\"obj\":\"%s\",\"iface\":\"%s\",\"meth\":\"%s\",\"start\":%d,\"end\":%d,\"depth\":%d}"
    s.seq s.domain (json_escape s.obj) (json_escape s.iface) (json_escape s.meth)
    s.t_start s.t_end s.depth

let to_json t =
  Printf.sprintf "{\"recorded\":%d,\"dropped\":%d,\"capacity\":%d,\"spans\":[%s]}"
    t.written (dropped t) t.capacity
    (String.concat "," (List.map span_to_json (spans t)))

(* The call tree: spans are recorded at [end_span] time (post-order), so
   sort by start time — ties broken by depth — to recover pre-order. *)
let pp_tree fmt t =
  let by_start =
    List.sort
      (fun a b ->
        match compare a.t_start b.t_start with 0 -> compare a.depth b.depth | c -> c)
      (spans t)
  in
  List.iter
    (fun (s : span) ->
      Format.fprintf fmt "%s[dom %d] %s.%s  %d..%d (%d cyc)  %s@."
        (String.make (2 * s.depth) ' ')
        s.domain s.iface s.meth s.t_start s.t_end (duration s) s.obj)
    by_start
