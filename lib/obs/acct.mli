(** Per-domain resource accounting.

    Every protection domain gets one mutable [slot] accumulating
    cycles, dispatches, traps, interrupts, page faults, proxy crossings
    and pages held. The slots live in a table keyed by domain id and
    owned by the clock's {!Obs.t}; the nucleus shares the same records
    through [Domain.t.acct], so both sides see one set of numbers.

    Updates happen only inside the instrumentation points' existing
    [Obs.enabled] branches and never advance the virtual clock, so the
    zero-cost-when-off guarantee covers accounting too. [cycles] sums
    the instrumented span durations attributed to the domain; nested
    spans in the same domain may overlap, so treat it as an attribution
    measure, not a wall total. *)

type slot = {
  mutable cycles : int;
  mutable dispatches : int;
  mutable traps : int;
  mutable irqs : int;
  mutable faults : int;
  mutable crossings : int;
  mutable crossing_cycles : int;
  mutable sched_runs : int;
  mutable pages : int;  (** gauge, refreshed by the stats service *)
}

type t

val create : unit -> t

(** A fresh all-zero slot not attached to any table. *)
val fresh : unit -> slot

(** [slot t domain] finds or creates the domain's slot. *)
val slot : t -> int -> slot

val find : t -> int -> slot option

(** Domain ids with slots, ascending. *)
val domains : t -> int list

val reset : t -> unit
val copy : slot -> slot

(** [sub ~after ~before] — counter fields subtract, [pages] keeps the
    [after] value (it is a gauge). *)
val sub : after:slot -> before:slot -> slot

(** {2 Charge helpers} — [n] is the measured span duration in cycles. *)

val dispatch : t -> domain:int -> int -> unit
val trap : t -> domain:int -> int -> unit
val irq : t -> domain:int -> int -> unit
val fault : t -> domain:int -> int -> unit
val crossing : t -> domain:int -> int -> unit
val sched : t -> domain:int -> unit

(** {2 Export} *)

val fields : slot -> (string * int) list
val field : slot -> string -> int option
val line : slot -> string
val to_json : slot -> string
