(** Fixed-capacity ring-buffer span tracer.

    A span is one bracketed operation — a method invocation, an event
    dispatch, a cross-domain call — stamped with the virtual-cycle clock
    at begin and end plus the protection domain, object class, interface,
    method and nesting depth. The buffer holds the most recent
    [capacity] completed spans; older ones are overwritten (counted in
    [dropped]), so tracing never allocates past its fixed footprint — the
    kernel-friendly design point.

    The tracer takes timestamps as plain integers so this library stays
    dependency-free; callers pass [Clock.now]. *)

type span = {
  seq : int;  (** completion order, monotonically increasing *)
  domain : int;  (** protection domain the operation ran on behalf of *)
  obj : string;  (** class name of the object involved *)
  iface : string;
  meth : string;
  t_start : int;  (** cycle timestamps from the virtual clock *)
  t_end : int;
  depth : int;  (** begin/end nesting depth at [begin_span] time *)
}

(** An open span returned by {!begin_span}, closed by {!end_span}. *)
type token

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** [recorded t] is the count of spans ever completed (including ones
    overwritten since). *)
val recorded : t -> int

(** [dropped t] is how many completed spans the ring has overwritten. *)
val dropped : t -> int

(** [depth t] is the current nesting depth (open spans). *)
val depth : t -> int

val begin_span :
  t -> now:int -> domain:int -> obj:string -> iface:string -> meth:string -> token

val end_span : t -> now:int -> token -> unit

(** [spans t] lists the surviving spans, oldest first. *)
val spans : t -> span list

val reset : t -> unit

val duration : span -> int

(** One line per surviving span, prefixed by a summary header. *)
val to_text : t -> string

(** [{"recorded":..,"dropped":..,"capacity":..,"spans":[..]}] *)
val to_json : t -> string

(** Minimal JSON string escaping, shared by the exporters here and in
    {!Metrics}. *)
val json_escape : string -> string

(** Render the surviving spans as an indented call tree (pre-order by
    start time, indented by nesting depth). *)
val pp_tree : Format.formatter -> t -> unit
