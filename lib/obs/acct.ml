(* Per-domain resource accounting. One mutable slot per protection
   domain, updated from the existing instrumentation points (Invoke /
   Events / Vmem / Proxy / Scheduler) inside their [Obs.enabled]
   branches — so accounting shares the tracer's zero-cost-when-off
   guarantee and never calls [Clock.advance] itself. *)

type slot = {
  mutable cycles : int; (* instrumented cycles attributed to the domain *)
  mutable dispatches : int;
  mutable traps : int;
  mutable irqs : int;
  mutable faults : int;
  mutable crossings : int;
  mutable crossing_cycles : int;
  mutable sched_runs : int;
  mutable pages : int; (* gauge: pages held, refreshed by the stats service *)
}

type t = (int, slot) Hashtbl.t

let create () : t = Hashtbl.create 8

let fresh () =
  { cycles = 0; dispatches = 0; traps = 0; irqs = 0; faults = 0; crossings = 0;
    crossing_cycles = 0; sched_runs = 0; pages = 0 }

let slot (t : t) domain =
  match Hashtbl.find_opt t domain with
  | Some s -> s
  | None ->
    let s = fresh () in
    Hashtbl.add t domain s;
    s

let find (t : t) domain = Hashtbl.find_opt t domain

let domains (t : t) =
  Hashtbl.fold (fun d _ acc -> d :: acc) t [] |> List.sort_uniq compare

let reset (t : t) = Hashtbl.reset t

let copy s = { s with cycles = s.cycles }

(* counters subtract; [pages] is a gauge and keeps the [after] value *)
let sub ~after ~before =
  {
    cycles = after.cycles - before.cycles;
    dispatches = after.dispatches - before.dispatches;
    traps = after.traps - before.traps;
    irqs = after.irqs - before.irqs;
    faults = after.faults - before.faults;
    crossings = after.crossings - before.crossings;
    crossing_cycles = after.crossing_cycles - before.crossing_cycles;
    sched_runs = after.sched_runs - before.sched_runs;
    pages = after.pages;
  }

(* charge helpers — call sites pass the cycles their span measured *)

let dispatch t ~domain n =
  let s = slot t domain in
  s.dispatches <- s.dispatches + 1;
  s.cycles <- s.cycles + n

let trap t ~domain n =
  let s = slot t domain in
  s.traps <- s.traps + 1;
  s.cycles <- s.cycles + n

let irq t ~domain n =
  let s = slot t domain in
  s.irqs <- s.irqs + 1;
  s.cycles <- s.cycles + n

let fault t ~domain n =
  let s = slot t domain in
  s.faults <- s.faults + 1;
  s.cycles <- s.cycles + n

let crossing t ~domain n =
  let s = slot t domain in
  s.crossings <- s.crossings + 1;
  s.crossing_cycles <- s.crossing_cycles + n;
  s.cycles <- s.cycles + n

let sched t ~domain =
  let s = slot t domain in
  s.sched_runs <- s.sched_runs + 1

let fields s =
  [
    ("cycles", s.cycles);
    ("dispatches", s.dispatches);
    ("traps", s.traps);
    ("irqs", s.irqs);
    ("faults", s.faults);
    ("crossings", s.crossings);
    ("crossing_cycles", s.crossing_cycles);
    ("sched_runs", s.sched_runs);
    ("pages", s.pages);
  ]

let field s name = List.assoc_opt name (fields s)

let line s =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (fields s))

let to_json s =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) (fields s))
  ^ "}"
