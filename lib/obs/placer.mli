(** Obs-driven adaptive placement agent.

    Closes the loop between the per-domain accounting ({!Pm_obs.Acct})
    and the placement trade quantified by experiments E4/E13: every
    {!epoch}, the agent measures

    - the managed component's *crossing-cost share* — proxy-crossing
      cycles charged to the watched domains divided by the epoch's total
      cycles — and migrates the component [User] → [Certified] (via the
      caller's migrate closure, which goes through the normal
      loader/certsvc path) when the share stays above [up_share] for
      [confirm] consecutive epochs; a fault burst ([fault_demote] page
      faults in one epoch) demotes a [Certified] component back to
      [User];
    - the managed channel's *doorbell-cost share* — doorbells times
      {!Pm_machine.Cost.doorbell_crossing} over the epoch's cycles — and
      flips it [Doorbell] → [Poll] when ringing dominates, or back to
      [Doorbell] when the channel goes idle ([idle_sends] or fewer sends
      per epoch).

    Confirmation streaks plus a post-move cooldown (during which no
    decisions are taken and the baseline is re-captured, so certification
    spikes are not misread as load) give the loop hysteresis: it
    converges to the static-best configuration instead of flapping.

    Accounting only advances while tracing is enabled, so the agent is
    only meaningful with [Obs.enabled] on — matching its role as an
    observability consumer. *)

type placement = User | Certified | Verified

val placement_to_string : placement -> string

type action =
  | Hold
  | Migrated of placement
  | Flipped of Pm_chan.Chan.mode
  | Repinned of int  (** the managed domain was re-pinned to this CPU *)

type t

(** [cpu_gap] (default 0.1) is the CPU-affinity dimension's threshold:
    the managed domain's CPU must out-run the least-loaded CPU by at
    least this share of the epoch before a re-pin is considered. *)
val create :
  clock:Pm_machine.Clock.t ->
  costs:Pm_machine.Cost.t ->
  ?up_share:float ->
  ?fault_demote:int ->
  ?payback_window:int ->
  ?ring_share:float ->
  ?idle_sends:int ->
  ?confirm:int ->
  ?cooldown:int ->
  ?cpu_gap:float ->
  unit ->
  t

(** [manage t ~watch ~placement ~migrate] puts one component under
    control; calling it again adds further components, all sharing the
    agent's epoch cadence and hysteresis parameters (each keeps its own
    streak, cooldown, and baseline). [watch] lists the domain ids paying
    the proxy crossings (for a [User]-placed service, the importing
    domains). [verified_ok] (default [false]) declares the component's
    bytecode verifiable, making [Verified] the preferred up-migration
    target (with [Certified] as fallback when the migrate closure
    refuses it). [migrate p] performs the actual move and returns
    whether it succeeded.

    [move_cost] (cycles, default 0) seeds the estimate of what the
    migration itself costs — certification latency, reloading. An
    up-migration is only taken when the crossings measured in the epoch,
    projected over [payback_window] epochs (default 4, on {!create}),
    cover that cost; otherwise the decision is deferred and counted in
    {!deferrals}. The seed [0] disables the check until a move has been
    observed: each migration is timed on the clock and the measured
    latency replaces the estimate (first move) or is averaged in
    (later moves) — see {!move_costs}. Migrations are journalled as
    [Migrate] events carrying the observed latency. *)
val manage :
  t ->
  watch:int list ->
  placement:placement ->
  ?verified_ok:bool ->
  ?move_cost:int ->
  migrate:(placement -> bool) ->
  unit ->
  unit

(** Puts one channel's Doorbell/Poll mode under control. *)
val manage_channel : t -> Pm_chan.Chan.t -> unit

(** [manage_cpu t ~complex ~domain ()] puts [domain]'s CPU affinity
    under control. Every epoch the agent reads per-CPU load — [loads]
    defaults to the complex's own (cpu, cycles) pairs, the same signal
    [/stats/kernel]'s [cpus] method exports; pass
    [Stats_svc.cpu_loads] to read through the stats service — and
    re-pins the domain to the least-loaded CPU when its current CPU
    out-runs it by at least [cpu_gap] of the epoch for [confirm]
    consecutive epochs, subject to the same payback-horizon check as
    component migration: the re-pin cost ([move_cost], default
    [32 * cacheline] — the working set re-warming) must be covered by
    half the imbalance projected over [payback_window] epochs,
    otherwise the move is deferred and counted in {!cpu_deferrals}.
    Re-pins are journalled as [Migrate] events with detail ["cpu=N"]
    and the observed imbalance as [info]. *)
val manage_cpu :
  t ->
  complex:Pm_machine.Cpu.t ->
  domain:int ->
  ?loads:(unit -> (int * int) list) ->
  ?move_cost:int ->
  unit ->
  unit

(** Evaluate one epoch; performs at most one migration and one flip.
    Returns the actions taken ([[Hold]] when none). *)
val epoch : t -> action list

val placement : t -> placement option

(** Placements of all managed components, in [manage] order. *)
val placements : t -> placement list

(** Current move-cost estimates, in [manage] order: the [move_cost]
    seed until the first observed migration, learned latency after. *)
val move_costs : t -> int list

(** Total migrations across all managed components. *)
val moves : t -> int

(** Up-migrations declined because the projected saving over the
    payback window did not cover the move's cost. *)
val deferrals : t -> int
val flips : t -> int

(** Re-pins performed / declined by the CPU-affinity dimension. *)
val cpu_moves : t -> int

val cpu_deferrals : t -> int
val epochs : t -> int

(** Crossing-cost / doorbell-cost share measured in the last epoch. *)
val crossing_share : t -> float

val doorbell_share : t -> float

(** CPU load imbalance (share of the epoch) measured in the last epoch
    by the CPU-affinity dimension; 0 when unmanaged. *)
val cpu_imbalance : t -> float

val status : t -> string
