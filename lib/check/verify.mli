(** Load-time bytecode verifier.

    An abstract interpreter over the {!Vm} ISA that proves a program
    memory-safe without running it: every [Load8]/[Store8] stays inside
    the data window [\[0, L)] (where [L] is the window length the VM
    passes in [r1]), every jump targets a real instruction, the reserved
    SFI registers [r6]/[r7] are untouched, and execution terminates
    within the fuel bound.

    The abstract domain is an interval whose bounds are affine in [L],
    which is exactly enough to follow the bounds-bracketed load pattern
    {!Filterc} emits (compare against [r0 = 0] and [r1 = L], then
    dereference). Control flow is restricted to forward jumps: the CFG
    is then acyclic, one pass in pc order reaches the fixpoint, and a
    program of [n] instructions provably needs at most [n] fuel.
    Programs with backward jumps are rejected — conservatively; the
    sandbox can still run them under per-access SFI checks.

    The analysis itself is pure and free. Charging its one-off cost
    ([Cost.verify_instr] per instruction) against the simulated clock is
    the caller's job — {!Pm_nucleus.Certsvc.verify} does so for the
    loader path, mirroring how certification charges its digest. *)

type verdict =
  | Verified of {
      instrs : int;  (** program length = abstract interpretation steps *)
      fuel_needed : int;
          (** proven execution bound: forward-only control flow executes
              each instruction at most once *)
    }
  | Rejected of { pc : int; reason : string }
      (** [pc] = -1 for whole-program defects (empty, over the fuel
          bound) *)

(** The VM's default fuel allowance, against which the termination bound
    is checked. *)
val default_fuel : int

(** [verify ?fuel program] runs the abstract interpreter. A [Verified]
    program cannot make a wild access, jump out of the program, touch
    [r6]/[r7], or run out of fuel — division by zero remains possible
    but is a cleanly contained [Vm_fault], like any certified
    component's own failure. *)
val verify : ?fuel:int -> Pm_vm.Vm.program -> verdict

val verdict_to_string : verdict -> string

val ok : verdict -> bool
