(** Load-time bytecode verifier.

    An abstract interpreter over the {!Vm} ISA that proves a program
    memory-safe without running it: every [Load8]/[Store8] stays inside
    the data window [\[0, L)] (where [L] is the window length the VM
    passes in [r1]), every jump targets a real instruction, the reserved
    SFI registers [r6]/[r7] are untouched, and execution provably
    terminates.

    The abstract domain is an interval whose bounds are affine in [L],
    which is exactly enough to follow the bounds-bracketed load pattern
    {!Filterc} emits (compare against [r0 = 0] and [r1 = L], then
    dereference). Control flow admits backward jumps: the analysis is a
    worklist fixpoint over the explicit CFG, widening unstable bounds at
    loop heads after a bounded number of joins (convergence) and then
    narrowing to recover the precision the access checks need inside
    loop bodies.

    Verified code runs with no per-access or per-instruction safety
    metering, so termination needs a proof of its own: every backward
    edge must be a counted loop — an induction register advanced by a
    single constant-step [Add], exited via [Jlt] against a [Fin]/[Len]
    bound or via [Jnz] counting down to zero — from which the verifier
    derives a whole-program fuel bound affine in [L], carried by
    {!Verified} and enforced by the loader at placement time. Anything
    it cannot bound is rejected with a named reason; the sandbox still
    runs such programs under per-access SFI checks.

    The analysis itself is pure and free. Charging its one-off cost
    ([Cost.verify_instr] per instruction) against the simulated clock is
    the caller's job — {!Pm_nucleus.Certsvc.verify} does so for the
    loader path, mirroring how certification charges its digest. *)

type bound =
  | NegInf
  | Fin of int  (** the known integer *)
  | Len of int  (** [L + k], where [L] is the window length, [L >= 0] *)
  | PosInf

type interval = { lo : bound; hi : bound }

val top : interval
val const : int -> interval

(** [le a b]: is [a <= b] guaranteed for every window length [L >= 0]? *)
val le : bound -> bound -> bool

val join_lo : bound -> bound -> bound
val join_hi : bound -> bound -> bound
val empty : interval -> bool

(** Smallest all-ones mask covering both arguments. Saturates at
    [max_int] instead of doubling past it — bounds at or above [2^61]
    (reachable through [Mul] of large [Const]s feeding [Or]/[Xor]) used
    to hang the doubling search. *)
val bits_mask : int -> int -> int

(** Whole-program fuel bound: [fuel(L) = per_len * L + fixed]. A
    loop-free program has [per_len = 0] and [fixed] bounded by its
    length. *)
type fuel_bound = { per_len : int; fixed : int }

(** Instantiate the bound for a window of [len] bytes (saturating; a
    negative [len] counts as zero). *)
val fuel_for : fuel_bound -> len:int -> int

type verdict =
  | Verified of {
      instrs : int;  (** program length = abstract interpretation width *)
      fuel : fuel_bound;
          (** proven execution bound, affine in the window length *)
    }
  | Rejected of { pc : int; reason : string }
      (** [pc] = -1 for whole-program defects (empty, over the fuel
          allowance, fixpoint budget) *)

(** The default allowance for the constant part of the fuel bound,
    matching the VM's default fuel. *)
val default_fuel : int

(** [verify ?fuel program] runs the abstract interpreter. A [Verified]
    program cannot make a wild access, jump out of the program, touch
    [r6]/[r7], or run past [fuel_for] its bound — division by zero
    remains possible but is a cleanly contained [Vm_fault], like any
    certified component's own failure. [?fuel] caps only the constant
    ([fixed]) part of the derived bound; the [L]-linear part is enforced
    by the loader, which knows the window size at attach time. *)
val verify : ?fuel:int -> Pm_vm.Vm.program -> verdict

val verdict_to_string : verdict -> string

val ok : verdict -> bool
