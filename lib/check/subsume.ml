(* Interface subsumption: the paper's interposition rule made checkable.
   "Replacing a name-space entry is only allowed with a superset object"
   — an agent may stand in for an object only if every interface the
   object exports is matched, method for method, by the agent. Extra
   agent interfaces (a monitor, a measurement interface) are the point
   of interposition and always welcome. *)

module Iface = Pm_obj.Iface
module Vtype = Pm_obj.Vtype

(* A generic forwarder declares Tany; that matches any concrete type on
   the wrapped side. Anything else must agree structurally. *)
let rec ty_ok ~wrapped ~agent =
  match (wrapped, agent) with
  | _, Vtype.Tany -> true
  | Vtype.Tpair (a1, b1), Vtype.Tpair (a2, b2) ->
    ty_ok ~wrapped:a1 ~agent:a2 && ty_ok ~wrapped:b1 ~agent:b2
  | Vtype.Tlist a, Vtype.Tlist b -> ty_ok ~wrapped:a ~agent:b
  | w, a -> w = a

let check_method ~iface (wm : Iface.meth) (am : Iface.meth) =
  let w = wm.Iface.msig and a = am.Iface.msig in
  if List.length w.Vtype.args <> List.length a.Vtype.args then
    Error
      (Printf.sprintf "%s.%s: arity %d vs agent's %d" iface wm.Iface.mname
         (List.length w.Vtype.args)
         (List.length a.Vtype.args))
  else if
    not
      (List.for_all2
         (fun wt at -> ty_ok ~wrapped:wt ~agent:at)
         w.Vtype.args a.Vtype.args)
  then
    Error
      (Printf.sprintf "%s.%s: argument types %s vs agent's %s" iface
         wm.Iface.mname
         (Vtype.to_string_signature w)
         (Vtype.to_string_signature a))
  else if not (ty_ok ~wrapped:w.Vtype.ret ~agent:a.Vtype.ret) then
    Error
      (Printf.sprintf "%s.%s: return type %s vs agent's %s" iface wm.Iface.mname
         (Vtype.to_string_signature w)
         (Vtype.to_string_signature a))
  else Ok ()

let check_iface (w : Iface.t) (a : Iface.t) =
  if a.Iface.version < w.Iface.version then
    Error
      (Printf.sprintf "interface %S: version %d regresses below %d" w.Iface.name
         a.Iface.version w.Iface.version)
  else
    List.fold_left
      (fun acc wm ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
          match Iface.find_method a wm.Iface.mname with
          | None ->
            Error
              (Printf.sprintf "interface %S: method %S missing from the agent"
                 w.Iface.name wm.Iface.mname)
          | Some am -> check_method ~iface:w.Iface.name wm am))
      (Ok ()) w.Iface.methods

(* [check ~wrapped ~agent] verifies that [agent]'s interfaces subsume
   [wrapped]'s. *)
let check ~wrapped ~agent =
  List.fold_left
    (fun acc (w : Iface.t) ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
        match
          List.find_opt (fun (a : Iface.t) -> a.Iface.name = w.Iface.name) agent
        with
        | None ->
          Error (Printf.sprintf "interface %S missing from the agent" w.Iface.name)
        | Some a -> check_iface w a))
    (Ok ()) wrapped

let check_instances ~wrapped ~agent =
  check ~wrapped:wrapped.Pm_obj.Instance.interfaces
    ~agent:agent.Pm_obj.Instance.interfaces
