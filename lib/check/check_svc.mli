(** /nucleus/check — the composition linter as a nucleus service.

    Shaped like [/nucleus/trace]: a kernel-domain instance reachable
    from any domain through the namespace (cross-domain via the usual
    proxy). Every run leaves a [Check] record in the flight recorder
    carrying the error count, so a failing boot-time lint shows up in
    the black box next to the faults it predicts.

    The exported [check] interface:
    [run() : int] (runs the linter, returns the error count),
    [report() : str] (the last run, rendered),
    [explain(rule) : str], and [rules() : str]. *)

type t

(** [create ~machine ~directory ~events ?domains ()] — [domains]
    (usually [Kernel.domains]) enables the shadowing rule; the
    page-hygiene rule always runs, against the clock journal. *)
val create :
  machine:Pm_machine.Machine.t ->
  directory:Pm_nucleus.Directory.t ->
  events:Pm_nucleus.Events.t ->
  ?domains:(unit -> Pm_nucleus.Domain.t list) ->
  unit ->
  t

(** [run t] executes the whole-system pass, stores and returns the
    report, and records it in the flight recorder. *)
val run : t -> Lint.report

(** [last t] is the most recent report, if any run has happened. *)
val last : t -> Lint.report option

(** [runs t] counts completed lint passes. *)
val runs : t -> int

val service_object :
  t -> Pm_obj.Instance.t Pm_obj.Registry.t -> Pm_nucleus.Domain.t -> Pm_obj.Instance.t
