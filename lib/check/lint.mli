(** Whole-system composition linter.

    A pass over the live object graph checking the properties the object
    model promises but does not enforce at assembly time:

    - {b superset}: every recorded {!Pm_nucleus.Directory.replace}
      installed an object whose interfaces subsume the displaced
      object's ({!Subsume}), re-checked against the live instances;
    - {b dangling}: every namespace binding resolves to a live,
      unrevoked instance;
    - {b dead-handler}: every registered event call-back belongs to a
      live domain;
    - {b spsc}: each channel has been fed from at most one MMU context
      (the single-producer half of the SPSC contract — the receive side
      is legitimately plural: inline drains and pop-up consumers run in
      different contexts);
    - {b cross-cpu}: every ring whose producer and consumer are pinned
      to different CPUs of an SMP complex has cache-line pricing on
      ({!Pm_chan.Chan.set_cacheline_priced}) — otherwise the coherence
      traffic its messages generate is silently missing from the cost
      accounting (never fires on uniprocessor systems);
    - {b wait-cycle}: domains blocked on channel operations do not form
      a cycle of mutual waiting (deadlock detection over
      recv-waits-for-producer / send-waits-for-consumer edges);
    - {b store-order}: every write-back cache in the storage registry
      sits above (never below) its log or partition — a cache stacked
      above an append-only log replays evictions in LRU order, and a
      partition windowing a cache hides dirty blocks behind the address
      translation;
    - {b store-dangling}: no [/store] endpoint is left dangling after a
      detach — an entry still bound after it detached, or bound to a
      revoked component, faults the next client;
    - {b page-hygiene} (when a [journal] is supplied): every page shared
      across domains was unshared before either party went down —
      derived by replaying the journal's structural history, so it works
      on recorded runs too;
    - {b shadowing} (when [domains] is supplied): no domain's view
      override bypasses a live interposition by resolving the interposed
      name to a different handle.

    The pass reads existing bookkeeping with plain OCaml reads and
    charges no simulated cycles. *)

type severity = Error | Warning

type finding = {
  rule : string;
  subject : string;
  detail : string;
  severity : severity;
}

val severity_to_string : severity -> string
val finding_to_string : finding -> string

type report = { findings : finding list; rules_run : int }

(** The rule names, in the order they run. *)
val rules : string list

(** [run ~machine ~directory ~events ?journal ?domains ()] runs the
    pass; the page-hygiene rule only runs when [journal] is given and
    the shadowing rule only when [domains] is, and [rules_run] counts
    what actually ran. *)
val run :
  machine:Pm_machine.Machine.t ->
  directory:Pm_nucleus.Directory.t ->
  events:Pm_nucleus.Events.t ->
  ?journal:Pm_journal.Journal.t ->
  ?domains:(unit -> Pm_nucleus.Domain.t list) ->
  unit ->
  report

(** [history events] is the history-only subset (page-hygiene) over a
    bare event stream — e.g. one imported from a replayed recording —
    with no live object graph. *)
val history : Pm_journal.Journal.event list -> finding list

(** The [Error]-severity findings of a report. *)
val errors : report -> finding list

val report_to_string : report -> string

(** [report_to_json report] renders the whole report as one line of
    JSON — [{"rules_run":n,"errors":n,"findings":[{"rule":…,
    "severity":…,"subject":…,"detail":…},…]}] — for CI and other
    tooling ([pm_lint --json]). Strings are escaped; the schema is the
    [finding] record, field for field. *)
val report_to_json : report -> string

(** One finding as a JSON object (the elements of [report_to_json]'s
    [findings] array). *)
val finding_to_json : finding -> string

(** [explain rule] is a one-sentence statement of what a rule checks. *)
val explain : string -> string
