(* /nucleus/check — the composition linter as a service object, shaped
   like /nucleus/trace: a kernel-domain instance that any domain reaches
   through the namespace (cross-domain via the usual proxy). Each run is
   recorded in the flight recorder, so a boot-time lint failure leaves
   its mark in the black box next to the traps and faults it predicts. *)

module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Instance = Pm_obj.Instance
module Iface = Pm_obj.Iface
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Obs = Pm_obs.Obs
module Flightrec = Pm_obs.Flightrec
module Directory = Pm_nucleus.Directory
module Events = Pm_nucleus.Events
module Domain = Pm_nucleus.Domain

type t = {
  machine : Machine.t;
  directory : Directory.t;
  events : Events.t;
  domains : (unit -> Domain.t list) option;
  mutable last : Lint.report option;
  mutable runs : int;
}

let create ~machine ~directory ~events ?domains () =
  { machine; directory; events; domains; last = None; runs = 0 }

let run t =
  (* the history rules read the clock journal — the same one every
     nucleus site records into *)
  let journal = Obs.journal (Clock.obs (Machine.clock t.machine)) in
  let report =
    Lint.run ~machine:t.machine ~directory:t.directory ~events:t.events
      ~journal ?domains:t.domains ()
  in
  t.last <- Some report;
  t.runs <- t.runs + 1;
  let clock = Machine.clock t.machine in
  let obs = Clock.obs clock in
  (* always-on black-box entry: one record per run, info = error count *)
  Flightrec.record (Obs.flight obs) ~kind:Flightrec.Check
    ~domain:(Pm_machine.Mmu.current_context (Machine.mmu t.machine))
    ~at:(Clock.now clock)
    ~info:(List.length (Lint.errors report));
  report

let last t = t.last
let runs t = t.runs

let service_object t registry kdom =
  let run_m _ctx = function
    | [] -> Ok (Value.Int (List.length (Lint.errors (run t))))
    | _ -> Error (Oerror.Type_error "run()")
  in
  let report_m _ctx = function
    | [] ->
      (match t.last with
      | None -> Ok (Value.Str "no lint run yet")
      | Some r -> Ok (Value.Str (Lint.report_to_string r)))
    | _ -> Error (Oerror.Type_error "report()")
  in
  let explain_m _ctx = function
    | [ Value.Str rule ] -> Ok (Value.Str (Lint.explain rule))
    | _ -> Error (Oerror.Type_error "explain(str)")
  in
  let rules_m _ctx = function
    | [] -> Ok (Value.Str (String.concat " " Lint.rules))
    | _ -> Error (Oerror.Type_error "rules()")
  in
  let iface =
    Iface.make ~name:"check"
      [
        Iface.meth ~name:"run" ~args:[] ~ret:Vtype.Tint run_m;
        Iface.meth ~name:"report" ~args:[] ~ret:Vtype.Tstr report_m;
        Iface.meth ~name:"explain" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tstr explain_m;
        Iface.meth ~name:"rules" ~args:[] ~ret:Vtype.Tstr rules_m;
      ]
  in
  Instance.create registry ~class_name:"nucleus.check" ~domain:kdom.Domain.id [ iface ]
