(* Load-time bytecode verifier: an abstract interpreter over the VM ISA
   proving that a program is memory-safe without running it.

   The abstract domain is an interval whose bounds are affine in the one
   runtime unknown, the data-window length L (the value the VM places in
   r1 at entry, L >= 0): a bound is either a known integer, L + k for a
   known k, or an infinity. That is exactly enough to follow the
   bounds-bracketed load pattern the filter compiler emits — compare
   against r0 (= 0) and r1 (= L), then dereference — and prove every
   Load8/Store8 lands inside [0, L).

   Control flow admits backward jumps: the analysis is a worklist
   fixpoint over the explicit CFG, with per-join-point widening after a
   bounded number of unstable joins (bounds escape outward through a
   finite threshold chain, which is the convergence proof) and a short
   narrowing phase afterwards to recover the precision the bracketed
   access pattern needs inside loop bodies.

   Because verified code must also terminate without per-instruction
   metering on the trust path, every backward edge must be a counted
   loop the domain can bound: an induction register advanced by a
   constant step through a single Add, tested against a bound that is
   Fin or Len at the branch. From those the verifier derives a
   whole-program fuel bound affine in L — fuel(L) = per_len·L + fixed —
   which the Verified verdict carries and the loader enforces. Programs
   whose trip count the domain cannot bound are rejected with a named
   reason; the sandbox can still run them under per-access checks. *)

module Vm = Pm_vm.Vm
module Sfi_rewrite = Pm_vm.Sfi_rewrite

type bound =
  | NegInf
  | Fin of int  (* the known integer *)
  | Len of int  (* L + k, where L = window length at entry, L >= 0 *)
  | PosInf

type interval = { lo : bound; hi : bound }

let top = { lo = NegInf; hi = PosInf }
let const k = { lo = Fin k; hi = Fin k }

(* No window is longer than this: Bytes.length is bounded by
   Sys.max_string_length < 2^57 on 64-bit. The wrap analysis below needs
   a ceiling on L to decide when native-int arithmetic cannot overflow. *)
let len_max = 1 lsl 57

(* Last finite widening threshold for upper bounds. Far above any real
   value (well past L) yet with enough native-int headroom that one more
   add or small shift is still provably wrap-free — keeping a widened
   loop counter's interval from collapsing to [top] on its increment. *)
let hi_cap = 1 lsl 60

(* [le a b]: is a <= b guaranteed for every L >= 0? Len vs Fin is
   unknowable in one direction (L is unbounded) and decided by L >= 0 in
   the other. *)
let le a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | _, NegInf | PosInf, _ -> false
  | Fin a, Fin b | Fin a, Len b | Len a, Len b -> a <= b
  | Len a, Fin b ->
    (* L + a <= b for every L iff it holds at L = len_max *)
    a <= b - len_max && b - len_max <= b (* no underflow in b - len_max *)

(* Join: sound min of lower bounds / max of upper bounds over the union.
   min(k, L+j) can reach min(k, j) (at L = 0); max(k, L+j) stays under
   L + max(k, j). *)
let join_lo a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, x | x, PosInf -> x
  | Fin a, Fin b -> Fin (min a b)
  | Len a, Len b -> Len (min a b)
  | Fin a, Len b | Len b, Fin a -> Fin (min a b)

let join_hi a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, x | x, NegInf -> x
  | Fin a, Fin b -> Fin (max a b)
  | Len a, Len b -> Len (max a b)
  | Fin a, Len b | Len b, Fin a -> Len (max a b)

(* Refinement meets keep one of two facts both known true; when a
   constant and a window-relative fact are incomparable, prefer the one
   the window checks need (a constant lower bound, a window-relative
   upper bound). *)
let meet_lo a b =
  match (a, b) with
  | NegInf, x | x, NegInf -> x
  | PosInf, _ | _, PosInf -> PosInf
  | Fin a, Fin b -> Fin (max a b)
  | Len a, Len b -> Len (max a b)
  | Fin a, Len b | Len b, Fin a -> if a <= b then Len b else Fin a

let meet_hi a b =
  match (a, b) with
  | PosInf, x | x, PosInf -> x
  | NegInf, _ | _, NegInf -> NegInf
  | Fin a, Fin b -> Fin (min a b)
  | Len a, Len b -> Len (min a b)
  | Fin a, Len b | Len b, Fin a -> if a <= b then Fin a else Len b

(* A refined interval can become impossible (e.g. the "< 0" arm of a
   constant index); such paths are unreachable and not propagated. Only
   like-for-like bounds decide emptiness — Fin vs Len depends on L. *)
let empty iv =
  match (iv.lo, iv.hi) with
  | Fin a, Fin b | Len a, Len b -> a > b
  | PosInf, _ | _, NegInf -> true
  | _ -> false

(* ---- checked native-int arithmetic ---------------------------------- *)
(* The VM computes in native ints that wrap silently; abstract bound
   arithmetic must not pretend otherwise. [sadd] detects bound-level
   overflow; the interval operators below additionally check whether the
   *concrete* computation can wrap (using the math extremes of each
   side, with L capped by [len_max]) and collapse to [top] when it can —
   an overflowed Fin pair would otherwise invert into an unsound
   interval. *)

let sadd a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let smul a b =
  if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
  else
    let p = a * b in
    if p / a = b && (a <> -1 || p <> min_int) then Some p else None

(* the smallest value a lower bound permits / the largest an upper bound
   permits, as math integers clamped to the native range *)
let lo_min = function
  | NegInf -> min_int
  | Fin k | Len k -> k (* L >= 0, so L + k >= k *)
  | PosInf -> max_int

let hi_max = function
  | PosInf -> max_int
  | Fin k -> k
  | Len k -> ( match sadd len_max k with Some v -> v | None -> max_int)
  | NegInf -> min_int

let pred = function
  | Fin k -> if k = min_int then NegInf else Fin (k - 1)
  | Len k -> if k = min_int then NegInf else Len (k - 1)
  | (NegInf | PosInf) as b -> b

let succ = function
  | Fin k -> if k = max_int then PosInf else Fin (k + 1)
  | Len k -> if k = max_int then PosInf else Len (k + 1)
  | (NegInf | PosInf) as b -> b

let nonneg iv = le (Fin 0) iv.lo

(* x + y cannot wrap iff the math extremes of the sum stay inside the
   native range; when a wrap is possible anything is reachable. *)
let add iv jv =
  match (sadd (hi_max iv.hi) (hi_max jv.hi), sadd (lo_min iv.lo) (lo_min jv.lo))
  with
  | Some _, Some _ ->
    let lo =
      match (iv.lo, jv.lo) with
      | NegInf, _ | _, NegInf -> Some NegInf
      | PosInf, _ | _, PosInf -> Some PosInf
      | Fin a, Fin b -> Option.map (fun s -> Fin s) (sadd a b)
      | Fin a, Len b | Len a, Fin b -> Option.map (fun s -> Len s) (sadd a b)
      (* L + a + L + b >= L + (a + b) since L >= 0 *)
      | Len a, Len b -> Option.map (fun s -> Len s) (sadd a b)
    in
    let hi =
      match (iv.hi, jv.hi) with
      | PosInf, _ | _, PosInf -> Some PosInf
      | NegInf, _ | _, NegInf -> Some NegInf
      | Fin a, Fin b -> Option.map (fun s -> Fin s) (sadd a b)
      | Fin a, Len b | Len a, Fin b -> Option.map (fun s -> Len s) (sadd a b)
      (* coefficient 2 is outside the domain *)
      | Len _, Len _ -> Some PosInf
    in
    (match (lo, hi) with Some lo, Some hi -> { lo; hi } | _ -> top)
  | _ -> top

let sub iv jv =
  (* x - y: positive wrap needs hi(x) - lo(y) past max_int, negative
     wrap needs lo(x) - hi(y) below min_int *)
  match
    (sadd (hi_max iv.hi) (-lo_min jv.lo), sadd (lo_min iv.lo) (-hi_max jv.hi))
  with
  | Some _, Some _ ->
    let lo =
      (* lower bound of x - y from x's lower and y's upper bound *)
      match (iv.lo, jv.hi) with
      | NegInf, _ | _, PosInf -> Some NegInf
      | PosInf, _ | _, NegInf -> Some PosInf
      | Fin a, Fin b -> Option.map (fun s -> Fin s) (sadd a (-b))
      | Len a, Len b -> Option.map (fun s -> Fin s) (sadd a (-b))
      | Len a, Fin b -> Option.map (fun s -> Len s) (sadd a (-b))
      | Fin _, Len _ -> Some NegInf
    in
    let hi =
      (* upper bound of x - y from x's upper and y's lower bound *)
      match (iv.hi, jv.lo) with
      | PosInf, _ | _, NegInf -> Some PosInf
      | NegInf, _ | _, PosInf -> Some NegInf
      | Fin a, Fin b -> Option.map (fun s -> Fin s) (sadd a (-b))
      | Len a, Len b -> Option.map (fun s -> Fin s) (sadd a (-b))
      | Len a, Fin b -> Option.map (fun s -> Len s) (sadd a (-b))
      | Fin a, Len b -> Option.map (fun s -> Fin s) (sadd a (-b))
    in
    (match (lo, hi) with Some lo, Some hi -> { lo; hi } | _ -> top)
  | _ -> top

let mul iv jv =
  (* wrap analysis over the math extremes of both sides; if no extreme
     product overflows, the concrete product cannot wrap either *)
  let extremes =
    [
      smul (lo_min iv.lo) (lo_min jv.lo); smul (lo_min iv.lo) (hi_max jv.hi);
      smul (hi_max iv.hi) (lo_min jv.lo); smul (hi_max iv.hi) (hi_max jv.hi);
    ]
  in
  if List.exists (fun p -> p = None) extremes then top
  else
    match (iv, jv) with
    | { lo = Fin a; hi = Fin b }, { lo = Fin c; hi = Fin d } ->
      let products = [ a * c; a * d; b * c; b * d ] in
      {
        lo = Fin (List.fold_left min max_int products);
        hi = Fin (List.fold_left max min_int products);
      }
    | _ -> if nonneg iv && nonneg jv then { lo = Fin 0; hi = PosInf } else top

(* land of non-negatives is bounded by either operand (bitwise: no wrap) *)
let band iv jv =
  if nonneg iv && nonneg jv then { lo = Fin 0; hi = meet_hi iv.hi jv.hi } else top

(* lor/lxor of non-negatives below 2^k stays below 2^k; the power search
   saturates instead of doubling past max_int (bounds >= 2^61 are
   reachable through Mul of large Consts and used to hang this loop) *)
let bits_mask a b =
  let m = max a b in
  let rec go p =
    if p > m then p - 1 else if p > max_int lsr 1 then max_int else go (p * 2)
  in
  go 1

let bor_like iv jv =
  match (iv, jv) with
  | { lo = Fin la; hi = Fin a }, { lo = Fin lb; hi = Fin b }
    when la >= 0 && lb >= 0 ->
    { lo = Fin 0; hi = Fin (bits_mask a b) }
  | _ -> if nonneg iv && nonneg jv then { lo = Fin 0; hi = PosInf } else top

let shl iv k =
  let k = min 62 (max 0 k) in
  if k = 0 then iv
  else
    match iv with
    | { lo = Fin a; hi = Fin b } when a >= 0 && b <= max_int lsr k ->
      { lo = Fin (a lsl k); hi = Fin (b lsl k) }
    | _ ->
      (* a shift that can push any extreme past the native range wraps *)
      if lo_min iv.lo >= 0 && hi_max iv.hi <= max_int lsr k then
        { lo = Fin 0; hi = PosInf }
      else top

let shr iv k =
  let k = min 62 (max 0 k) in
  if k = 0 then iv
  else
    (* lsr of anything by k >= 1 is non-negative in OCaml *)
    match iv with
    | { lo = Fin a; hi = Fin b } when a >= 0 -> { lo = Fin (a lsr k); hi = Fin (b lsr k) }
    | _ -> { lo = Fin 0; hi = PosInf }

(* ------------------------------------------------------------------ *)
(* The verifier proper                                                 *)
(* ------------------------------------------------------------------ *)

type fuel_bound = { per_len : int; fixed : int }

let fuel_for fb ~len =
  let l = max 0 len in
  match sadd (match smul fb.per_len l with Some p -> p | None -> max_int) fb.fixed with
  | Some f -> f
  | None -> max_int

type verdict =
  | Verified of { instrs : int; fuel : fuel_bound }
  | Rejected of { pc : int; reason : string }
      (** [pc] = -1 for whole-program defects *)

let default_fuel = 10_000

(* ceilings keeping every derived fuel bound well inside native range *)
let max_fuel_linear = 1 lsl 20
let max_fuel_fixed = 1 lsl 40
let max_step = 1 lsl 30

(* unstable joins tolerated at a loop head before widening kicks in —
   high enough that the compiler's counted loops converge exactly *)
let joins_before_widen = 4

type state = interval array (* one interval per register *)

let entry_state () =
  let st = Array.make Vm.nregs (const 0) in
  st.(1) <- { lo = Len 0; hi = Len 0 };
  st

let join_states (a : state) (b : state) : state =
  Array.init Vm.nregs (fun r ->
      { lo = join_lo a.(r).lo b.(r).lo; hi = join_hi a.(r).hi b.(r).hi })

let equal_states (a : state) (b : state) =
  let rec go r = r >= Vm.nregs || (a.(r) = b.(r) && go (r + 1)) in
  go 0

(* Widening escapes an unstable bound outward through a finite threshold
   chain (the window-shaped facts the access checks need, then the
   infinity), so every chain of widened joins stabilizes. *)
let widen_lo old joined =
  if old = joined then old
  else if le (Len 0) joined then Len 0
  else if le (Fin 0) joined then Fin 0
  else NegInf

let widen_hi old joined =
  if old = joined then old
  else if le joined (Fin 255) then Fin 255
  else if le joined (Len (-1)) then Len (-1)
  else if le joined (Len 0) then Len 0
  else if le joined (Fin hi_cap) then Fin hi_cap
  else PosInf

let widen_states (old : state) (joined : state) : state =
  Array.init Vm.nregs (fun r ->
      {
        lo = widen_lo old.(r).lo joined.(r).lo;
        hi = widen_hi old.(r).hi joined.(r).hi;
      })

let regs_of = function
  | Vm.Const (rd, _) -> [ rd ]
  | Vm.Mov (rd, rs) -> [ rd; rs ]
  | Vm.Add (rd, a, b) | Vm.Sub (rd, a, b) | Vm.Mul (rd, a, b) | Vm.Div (rd, a, b)
  | Vm.And (rd, a, b) | Vm.Or (rd, a, b) | Vm.Xor (rd, a, b) ->
    [ rd; a; b ]
  | Vm.Shl (rd, a, _) | Vm.Shr (rd, a, _) -> [ rd; a ]
  | Vm.Load8 (rd, rs, _) -> [ rd; rs ]
  | Vm.Store8 (rs, ra, _) -> [ rs; ra ]
  | Vm.Jmp _ -> []
  | Vm.Jz (r, _) | Vm.Jnz (r, _) -> [ r ]
  | Vm.Jlt (a, b, _) -> [ a; b ]
  | Vm.Ret r -> [ r ]

let writes_reg = function
  | Vm.Const (rd, _) | Vm.Mov (rd, _)
  | Vm.Add (rd, _, _) | Vm.Sub (rd, _, _) | Vm.Mul (rd, _, _) | Vm.Div (rd, _, _)
  | Vm.And (rd, _, _) | Vm.Or (rd, _, _) | Vm.Xor (rd, _, _)
  | Vm.Shl (rd, _, _) | Vm.Shr (rd, _, _) | Vm.Load8 (rd, _, _) ->
    Some rd
  | Vm.Store8 _ | Vm.Jmp _ | Vm.Jz _ | Vm.Jnz _ | Vm.Jlt _ | Vm.Ret _ -> None

let jump_target = function
  | Vm.Jmp t | Vm.Jz (_, t) | Vm.Jnz (_, t) | Vm.Jlt (_, _, t) -> Some t
  | _ -> None

exception Reject of int * string

(* refine "r <> 0": an interval pinched against zero steps over it *)
let refine_nonzero iv =
  (* [Len 0] means value >= L >= 0, so nonzero lifts it to >= 1 — the
     refinement that lets a Jz pre-guard license a count-down from L *)
  let lo =
    match iv.lo with Fin 0 | Len 0 -> Fin 1 | (Fin _ | Len _ | NegInf | PosInf) -> iv.lo
  in
  let hi = if iv.hi = Fin 0 then Fin (-1) else iv.hi in
  { lo; hi }

(* The abstract transfer function: successor pcs with their refined
   states. Static well-formedness (targets in range, no falling off the
   end) is checked before the fixpoint, so edges here are total; edges
   whose refinement is empty are dead and omitted. *)
let outs (program : Vm.program) pc (st : state) : (int * state) list =
  let with_reg st r iv =
    let st' = Array.copy st in
    st'.(r) <- iv;
    st'
  in
  let fall st = [ (pc + 1, st) ] in
  match program.(pc) with
  | Vm.Const (rd, imm) -> fall (with_reg st rd (const imm))
  | Vm.Mov (rd, rs) -> fall (with_reg st rd st.(rs))
  | Vm.Add (rd, a, b) -> fall (with_reg st rd (add st.(a) st.(b)))
  | Vm.Sub (rd, a, b) -> fall (with_reg st rd (sub st.(a) st.(b)))
  | Vm.Mul (rd, a, b) -> fall (with_reg st rd (mul st.(a) st.(b)))
  | Vm.Div (rd, _, _) ->
    (* division by zero is a clean, contained Vm_fault at run time —
       like a certified component's own failure, not a safety hole *)
    fall (with_reg st rd top)
  | Vm.And (rd, a, b) -> fall (with_reg st rd (band st.(a) st.(b)))
  | Vm.Or (rd, a, b) | Vm.Xor (rd, a, b) ->
    fall (with_reg st rd (bor_like st.(a) st.(b)))
  | Vm.Shl (rd, a, k) -> fall (with_reg st rd (shl st.(a) k))
  | Vm.Shr (rd, a, k) -> fall (with_reg st rd (shr st.(a) k))
  | Vm.Load8 (rd, _, _) -> fall (with_reg st rd { lo = Fin 0; hi = Fin 255 })
  | Vm.Store8 _ -> fall st
  | Vm.Jmp t -> [ (t, st) ]
  | Vm.Jz (r, t) ->
    (* taken: r = 0; fallthrough: r <> 0 *)
    let zero = { lo = meet_lo st.(r).lo (Fin 0); hi = meet_hi st.(r).hi (Fin 0) } in
    let taken = if empty zero then [] else [ (t, with_reg st r zero) ] in
    let nz = refine_nonzero st.(r) in
    let ft = if empty nz then [] else [ (pc + 1, with_reg st r nz) ] in
    taken @ ft
  | Vm.Jnz (r, t) ->
    (* taken: r <> 0; fallthrough: r = 0 *)
    let nz = refine_nonzero st.(r) in
    let taken = if empty nz then [] else [ (t, with_reg st r nz) ] in
    let zero = { lo = meet_lo st.(r).lo (Fin 0); hi = meet_hi st.(r).hi (Fin 0) } in
    let ft = if empty zero then [] else [ (pc + 1, with_reg st r zero) ] in
    taken @ ft
  | Vm.Jlt (a, b, t) ->
    (* taken: a < b, so a <= b.hi - 1 and b >= a.lo + 1;
       fallthrough: a >= b, so a >= b.lo and b <= a.hi *)
    let ivt_a = { st.(a) with hi = meet_hi st.(a).hi (pred st.(b).hi) } in
    let ivt_b = { st.(b) with lo = meet_lo st.(b).lo (succ st.(a).lo) } in
    let taken =
      if empty ivt_a || empty ivt_b then []
      else [ (t, with_reg (with_reg st a ivt_a) b ivt_b) ]
    in
    let ivf_a = { st.(a) with lo = meet_lo st.(a).lo st.(b).lo } in
    let ivf_b = { st.(b) with hi = meet_hi st.(b).hi st.(a).hi } in
    let ft =
      if empty ivf_a || empty ivf_b then []
      else [ (pc + 1, with_reg (with_reg st a ivf_a) b ivf_b) ]
    in
    taken @ ft
  | Vm.Ret _ -> []

(* ---- affine fuel arithmetic (capped; over the cap = rejection) ------ *)

let aff_check pc { per_len; fixed } =
  if per_len < 0 || fixed < 0 || per_len > max_fuel_linear || fixed > max_fuel_fixed
  then raise (Reject (pc, "fuel bound exceeds the affine domain"))

let aff_const b = { per_len = 0; fixed = b }

let aff_add pc x y =
  match (sadd x.per_len y.per_len, sadd x.fixed y.fixed) with
  | Some a, Some b ->
    let r = { per_len = a; fixed = b } in
    aff_check pc r;
    r
  | _ -> raise (Reject (pc, "fuel bound exceeds the affine domain"))

let aff_mul pc x y =
  if x.per_len > 0 && y.per_len > 0 then
    raise
      (Reject (pc, "nested window-dependent loops exceed the affine fuel domain"));
  match
    ( smul x.per_len y.fixed,
      smul y.per_len x.fixed,
      smul x.fixed y.fixed )
  with
  | Some axy, Some ayx, Some b -> (
    match sadd axy ayx with
    | Some a ->
      let r = { per_len = a; fixed = b } in
      aff_check pc r;
      r
    | None -> raise (Reject (pc, "fuel bound exceeds the affine domain")))
  | _ -> raise (Reject (pc, "fuel bound exceeds the affine domain"))

let div_up x s = if x <= 0 then 0 else ((x - 1) / s) + 1

(* ---- counted-loop recognition --------------------------------------- *)

type loop = { head : int; back : int; execs : fuel_bound }

(* Every h->u path inside the body must execute the step instruction:
   a DFS over the refined CFG that never expands the step pc must not
   reach the back-edge instruction. *)
let step_dominates program states ~head ~back ~step_pc =
  if head = step_pc then true
  else begin
    let visited = Array.make (Array.length program) false in
    let reached = ref false in
    let rec dfs pc =
      if pc = back then reached := true
      else if (not visited.(pc)) && pc <> step_pc then begin
        visited.(pc) <- true;
        match states.(pc) with
        | None -> ()
        | Some st ->
          List.iter
            (fun (t, _) ->
              if t >= head && t <= back && not (t = head && pc = back) then dfs t)
            (outs program pc st)
      end
    in
    dfs head;
    not !reached
  end

(* The single instruction inside [head, back] writing [r]; it must be an
   Add of [r] with a step register. *)
let induction_step program ~head ~back r =
  let writers = ref [] in
  for pc = head to back do
    match writes_reg program.(pc) with
    | Some rd when rd = r -> writers := pc :: !writers
    | _ -> ()
  done;
  match !writers with
  | [ pc ] -> (
    match program.(pc) with
    | Vm.Add (rd, a, b) when rd = r && (a = r || b = r) && not (a = r && b = r) ->
      Some (pc, if a = r then b else a)
    | _ -> None)
  | _ -> None

let exact_const (iv : interval) =
  match (iv.lo, iv.hi) with Fin a, Fin b when a = b -> Some a | _ -> None

let ssub a b = if b = min_int then None else sadd a (-b)

(* join of [r]'s interval over every edge entering [head, back] from
   outside (plus program entry when the head is pc 0): the value a loop
   counter holds when its loop is first entered *)
let entry_interval program (states : state option array) ~head ~back r =
  let acc = ref None in
  let absorb (iv : interval) =
    acc :=
      Some
        (match !acc with
        | None -> iv
        | Some o -> { lo = join_lo o.lo iv.lo; hi = join_hi o.hi iv.hi })
  in
  if head = 0 then absorb (entry_state ()).(r);
  Array.iteri
    (fun pc st_opt ->
      if pc < head || pc > back then
        match st_opt with
        | None -> ()
        | Some st ->
          List.iter
            (fun (t, (st' : state)) ->
              if t >= head && t <= back then absorb st'.(r))
            (outs program pc st))
    states;
  match !acc with Some iv -> iv | None -> top

(* Trip bounds. [execs] is the number of body executions, generously
   padded: one initial entry, one possible partial traversal from a
   mid-body entry, plus the counted back-edge takes. [ranges] lists
   every back edge's [(head, back)] so the down-count case can refuse a
   nested loop wrapping its decrement (a counter stepping by more than
   one per iteration can jump over zero and never exit). *)
let analyze_back_edge program (states : state option array) ~ranges ~u ~h =
  let st_u =
    match states.(u) with Some st -> st | None -> assert false (* reachable *)
  in
  let st_h =
    match states.(h) with
    | Some st -> st
    | None -> raise (Reject (u, "backward jump to an unreachable loop head"))
  in
  let require_step r ~want =
    match induction_step program ~head:h ~back:u r with
    | None ->
      raise
        (Reject
           (u, "loop induction register is not advanced by a single constant step"))
    | Some (step_pc, rs) -> (
      let step_iv =
        match states.(step_pc) with Some st -> st.(rs) | None -> top
      in
      match exact_const step_iv with
      | Some s when want s ->
        if not (step_dominates program states ~head:h ~back:u ~step_pc) then
          raise (Reject (u, "loop induction step may be skipped inside the body"));
        (step_pc, s)
      | _ -> raise (Reject (u, "loop step is not the required constant")))
  in
  let affine_trips ~hi ~lo ~s ~what =
    (* math bound on (hi - lo) / s, affine in L *)
    let fin k c =
      match ssub k c with
      | Some d -> max 0 (div_up d s)
      | None -> raise (Reject (u, "fuel bound exceeds the affine domain"))
    in
    match (hi, lo) with
    | Fin k, Fin c -> aff_const (fin k c)
    | Fin k, Len c | Len k, Len c ->
      (* L + c <= value, or bound <= k <= L + k: the L parts cancel or
         only shrink the count *)
      aff_const (fin k c)
    | Len k, Fin c -> { per_len = 1; fixed = fin k c }
    | PosInf, _ ->
      raise (Reject (u, Printf.sprintf "%s has no finite upper limit" what))
    | _, NegInf ->
      raise (Reject (u, "loop counter has no finite lower bound"))
    | NegInf, _ | _, PosInf ->
      raise (Reject (u, "loop bound is not affine in the window length"))
  in
  match program.(u) with
  | Vm.Jmp _ ->
    raise (Reject (u, "backward Jmp: trip count cannot be bounded"))
  | Vm.Jz _ -> raise (Reject (u, "backward Jz is not a counted loop"))
  | Vm.Jlt (ri, rb, _) ->
    (* up-counting: ri advances by a constant s >= 1 per iteration (the
       head invariant gives every revisit value, the branch invariant
       every test value of the bound — sound even if rb is rewritten) *)
    let _, s = require_step ri ~want:(fun s -> s >= 1 && s <= max_step) in
    let delta =
      affine_trips ~hi:st_u.(rb).hi ~lo:st_h.(ri).lo ~s ~what:"loop bound"
    in
    aff_check u delta;
    { head = h; back = u; execs = aff_add u delta (aff_const 3) }
  | Vm.Jnz (ri, _) ->
    (* down-counting to zero: the counter enters the loop strictly
       positive and loses exactly one per iteration, so it cannot step
       over the exit. The entry-edge join (not the widened head
       invariant) proves positivity. *)
    let step_pc, _ = require_step ri ~want:(fun s -> s = -1) in
    List.iter
      (fun (h', u') ->
        if
          (h', u') <> (h, u)
          && h <= h' && u' <= u
          && h' <= step_pc && step_pc <= u'
        then
          raise
            (Reject
               (u, "loop counter may be decremented more than once per iteration")))
      ranges;
    let e = entry_interval program states ~head:h ~back:u ri in
    (* strictly positive, not just non-negative: the test sits after the
       decrement, so a counter entering at 0 is tested at -1 and never
       exits *)
    if not (le (Fin 1) e.lo) then
      raise
        (Reject
           (u, "loop counter may enter at or below zero: trip count cannot be bounded"));
    let visits =
      match e.hi with
      | Fin k when k >= 0 && k <= max_fuel_fixed -> aff_const k
      | Fin _ -> aff_const 0 (* entry interval empty: loop never entered *)
      | Len k when abs k <= max_step -> { per_len = 1; fixed = max 0 k }
      | _ -> raise (Reject (u, "loop counter has no finite upper bound"))
    in
    { head = h; back = u; execs = aff_add u visits (aff_const 3) }
  | _ -> assert false

(* Loop structure: bodies are the pc ranges [head, back]; any two must
   be disjoint or properly nested, and no two share a head. *)
let check_structure loops =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
      List.iter
        (fun l' ->
          if l.head = l'.head then
            raise (Reject (max l.back l'.back, "two back edges share a loop head"));
          let nested =
            (l.head <= l'.head && l'.back <= l.back)
            || (l'.head <= l.head && l.back <= l'.back)
          in
          let disjoint = l.back < l'.head || l'.back < l.head in
          if not (nested || disjoint) then
            raise
              (Reject
                 (max l.back l'.back, "irreducible loop structure: bodies overlap")))
        rest;
      pairs rest
  in
  pairs loops

(* Fuel for one traversal of [lo, hi] with [loops] (sorted by head, all
   within the range) multiplying their bodies. *)
let rec seg_cost ~lo ~hi loops =
  match loops with
  | [] -> aff_const (max 0 (hi - lo + 1))
  | l :: rest ->
    let inside, after = List.partition (fun l' -> l'.back <= l.back) rest in
    let body = seg_cost ~lo:l.head ~hi:l.back inside in
    let looped = aff_mul l.back l.execs body in
    aff_add l.back
      (aff_const (max 0 (l.head - lo)))
      (aff_add l.back looped (seg_cost ~lo:(l.back + 1) ~hi after))

let verify ?(fuel = default_fuel) (program : Vm.program) =
  let n = Array.length program in
  try
    if n = 0 then raise (Reject (-1, "empty program"));
    (* static well-formedness first, over every instruction, reachable or
       not — same discipline as the SFI rewriter's whole-program scan *)
    Array.iteri
      (fun pc ins ->
        if List.exists (fun r -> r < 0 || r >= Vm.nregs) (regs_of ins) then
          raise (Reject (pc, "register out of range"));
        if Sfi_rewrite.uses_reserved ins then
          raise (Reject (pc, "uses a reserved register (r6/r7)"));
        (match jump_target ins with
        | Some t when t < 0 || t >= n -> raise (Reject (pc, "jump out of program"))
        | _ -> ());
        match ins with
        | Vm.Jmp _ | Vm.Ret _ -> ()
        | _ ->
          if pc + 1 >= n then
            raise (Reject (pc, "falls off the end of the program")))
      program;
    (* widening points: targets of backward edges (every CFG cycle
       contains one, since a cycle cannot advance pc monotonically) *)
    let widen_pt = Array.make n false in
    Array.iteri
      (fun pc ins ->
        match jump_target ins with
        | Some t when t <= pc -> widen_pt.(t) <- true
        | _ -> ())
      program;
    let states : state option array = Array.make n None in
    states.(0) <- Some (entry_state ());
    (* worklist fixpoint with delayed widening at loop heads *)
    let join_count = Array.make n 0 in
    let queued = Array.make n false in
    let work = Queue.create () in
    let push pc =
      if not queued.(pc) then begin
        queued.(pc) <- true;
        Queue.push pc work
      end
    in
    push 0;
    let budget = ref ((64 * n * Vm.nregs) + 4096) in
    while not (Queue.is_empty work) do
      decr budget;
      if !budget < 0 then
        raise (Reject (-1, "fixpoint exceeded its step budget"));
      let pc = Queue.pop work in
      queued.(pc) <- false;
      match states.(pc) with
      | None -> ()
      | Some st ->
        List.iter
          (fun (t, st') ->
            match states.(t) with
            | None ->
              states.(t) <- Some st';
              push t
            | Some old ->
              let joined = join_states old st' in
              if not (equal_states joined old) then begin
                let next =
                  if widen_pt.(t) && join_count.(t) >= joins_before_widen then
                    widen_states old joined
                  else joined
                in
                join_count.(t) <- join_count.(t) + 1;
                if not (equal_states next old) then begin
                  states.(t) <- Some next;
                  push t
                end
              end)
          (outs program pc st)
    done;
    (* narrowing: re-apply the transfer function from the post-fixpoint a
       couple of times (soundly decreasing) to recover the precision the
       widened loop heads lost *)
    let current = ref states in
    for _round = 1 to 2 do
      let next : state option array = Array.make n None in
      next.(0) <- Some (entry_state ());
      Array.iteri
        (fun pc st_opt ->
          match st_opt with
          | None -> ()
          | Some st ->
            List.iter
              (fun (t, st') ->
                next.(t) <-
                  (match next.(t) with
                  | None -> Some st'
                  | Some o -> Some (join_states o st')))
              (outs program pc st))
        !current;
      current := next
    done;
    let states = !current in
    (* memory safety on the narrowed states *)
    Array.iteri
      (fun pc st_opt ->
        match st_opt with
        | None -> () (* unreachable on every admitted path *)
        | Some st -> (
          match program.(pc) with
          | Vm.Load8 (_, rs, imm) ->
            let addr = add st.(rs) (const imm) in
            if not (le (Fin 0) addr.lo) then
              raise (Reject (pc, "load address may be below the data window"));
            if not (le addr.hi (Len (-1))) then
              raise (Reject (pc, "load address may be past the data window"))
          | Vm.Store8 (_, ra, imm) ->
            let addr = add st.(ra) (const imm) in
            if not (le (Fin 0) addr.lo) then
              raise (Reject (pc, "store address may be below the data window"));
            if not (le addr.hi (Len (-1))) then
              raise (Reject (pc, "store address may be past the data window"))
          | _ -> ()))
      states;
    (* termination: every live backward edge must be a counted loop *)
    let back_edges = ref [] in
    Array.iteri
      (fun pc st_opt ->
        match st_opt with
        | None -> ()
        | Some st ->
          List.iter
            (fun (t, _) -> if t <= pc then back_edges := (pc, t) :: !back_edges)
            (outs program pc st))
      states;
    let ranges = List.map (fun (u, h) -> (h, u)) !back_edges in
    let loops =
      List.map
        (fun (u, h) -> analyze_back_edge program states ~ranges ~u ~h)
        !back_edges
    in
    let loops =
      List.sort
        (fun a b ->
          if a.head <> b.head then compare a.head b.head
          else compare b.back a.back)
        loops
    in
    check_structure loops;
    let total = seg_cost ~lo:0 ~hi:(n - 1) loops in
    if total.per_len = 0 && total.fixed > fuel then
      raise
        (Reject
           (-1, Printf.sprintf "fuel bound %d exceeds the allowance %d" total.fixed fuel));
    Verified { instrs = n; fuel = total }
  with Reject (pc, reason) -> Rejected { pc; reason }

let verdict_to_string = function
  | Verified { instrs; fuel } ->
    if fuel.per_len = 0 then
      Printf.sprintf "verified: %d instructions, fuel bound %d" instrs fuel.fixed
    else
      Printf.sprintf "verified: %d instructions, fuel bound %d*L+%d" instrs
        fuel.per_len fuel.fixed
  | Rejected { pc; reason } ->
    if pc < 0 then Printf.sprintf "rejected: %s" reason
    else Printf.sprintf "rejected at pc %d: %s" pc reason

let ok = function Verified _ -> true | Rejected _ -> false
