(* Load-time bytecode verifier: an abstract interpreter over the VM ISA
   proving that a program is memory-safe without running it.

   The abstract domain is an interval whose bounds are affine in the one
   runtime unknown, the data-window length L (the value the VM places in
   r1 at entry, L >= 0): a bound is either a known integer, L + k for a
   known k, or an infinity. That is exactly enough to follow the
   bounds-bracketed load pattern the filter compiler emits — compare
   against r0 (= 0) and r1 (= L), then dereference — and prove every
   Load8/Store8 lands inside [0, L).

   Control flow is restricted to forward jumps. That makes the CFG
   acyclic, so one pass in pc order (all predecessors of an instruction
   precede it) computes the fixpoint with no widening, and it doubles as
   the termination proof: each instruction executes at most once, so a
   program of n instructions needs at most n fuel. Programs with
   backward jumps are rejected — a conservative but honest trade: the
   sandbox can still run them under per-access checks. *)

module Vm = Pm_vm.Vm
module Sfi_rewrite = Pm_vm.Sfi_rewrite

type bound =
  | NegInf
  | Fin of int  (* the known integer *)
  | Len of int  (* L + k, where L = window length at entry, L >= 0 *)
  | PosInf

type interval = { lo : bound; hi : bound }

let top = { lo = NegInf; hi = PosInf }
let const k = { lo = Fin k; hi = Fin k }

(* [le a b]: is a <= b guaranteed for every L >= 0? Len vs Fin is
   unknowable in one direction (L is unbounded) and decided by L >= 0 in
   the other. *)
let le a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | _, NegInf | PosInf, _ -> false
  | Fin a, Fin b | Fin a, Len b | Len a, Len b -> a <= b
  | Len _, Fin _ -> false

(* Join: sound min of lower bounds / max of upper bounds over the union.
   min(k, L+j) can reach min(k, j) (at L = 0); max(k, L+j) stays under
   L + max(k, j). *)
let join_lo a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, x | x, PosInf -> x
  | Fin a, Fin b -> Fin (min a b)
  | Len a, Len b -> Len (min a b)
  | Fin a, Len b | Len b, Fin a -> Fin (min a b)

let join_hi a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, x | x, NegInf -> x
  | Fin a, Fin b -> Fin (max a b)
  | Len a, Len b -> Len (max a b)
  | Fin a, Len b | Len b, Fin a -> Len (max a b)

(* Refinement meets keep one of two facts both known true; when a
   constant and a window-relative fact are incomparable, prefer the one
   the window checks need (a constant lower bound, a window-relative
   upper bound). *)
let meet_lo a b =
  match (a, b) with
  | NegInf, x | x, NegInf -> x
  | PosInf, _ | _, PosInf -> PosInf
  | Fin a, Fin b -> Fin (max a b)
  | Len a, Len b -> Len (max a b)
  | Fin a, Len b | Len b, Fin a -> if a <= b then Len b else Fin a

let meet_hi a b =
  match (a, b) with
  | PosInf, x | x, PosInf -> x
  | NegInf, _ | _, NegInf -> NegInf
  | Fin a, Fin b -> Fin (min a b)
  | Len a, Len b -> Len (min a b)
  | Fin a, Len b | Len b, Fin a -> if a <= b then Fin a else Len b

(* A refined interval can become impossible (e.g. the "< 0" arm of a
   constant index); such paths are unreachable and not propagated. Only
   like-for-like bounds decide emptiness — Fin vs Len depends on L. *)
let empty iv =
  match (iv.lo, iv.hi) with
  | Fin a, Fin b | Len a, Len b -> a > b
  | PosInf, _ | _, NegInf -> true
  | _ -> false

(* Direction-specific affine arithmetic. L + L collapses to an infinity
   in the widening direction (coefficient 2 is outside the domain), and
   Len - Len cancels exactly: both name the same L. *)
let add_lo a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin a, Fin b -> Fin (a + b)
  | Fin a, Len b | Len a, Fin b -> Len (a + b)
  | Len a, Len b -> Len (a + b)

let add_hi a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, _ | _, NegInf -> NegInf
  | Fin a, Fin b -> Fin (a + b)
  | Fin a, Len b | Len a, Fin b -> Len (a + b)
  | Len _, Len _ -> PosInf

let sub_lo a b =
  (* lower bound of x - y from x's lower and y's upper bound *)
  match (a, b) with
  | NegInf, _ | _, PosInf -> NegInf
  | PosInf, _ | _, NegInf -> PosInf
  | Fin a, Fin b -> Fin (a - b)
  | Len a, Len b -> Fin (a - b)
  | Len a, Fin b -> Len (a - b)
  | Fin _, Len _ -> NegInf

let sub_hi a b =
  (* upper bound of x - y from x's upper and y's lower bound *)
  match (a, b) with
  | PosInf, _ | _, NegInf -> PosInf
  | NegInf, _ | _, PosInf -> NegInf
  | Fin a, Fin b -> Fin (a - b)
  | Len a, Len b -> Fin (a - b)
  | Len a, Fin b -> Len (a - b)
  | Fin a, Len b -> Fin (a - b)

let pred = function
  | Fin k -> Fin (k - 1)
  | Len k -> Len (k - 1)
  | (NegInf | PosInf) as b -> b

let succ = function
  | Fin k -> Fin (k + 1)
  | Len k -> Len (k + 1)
  | (NegInf | PosInf) as b -> b

let nonneg iv = le (Fin 0) iv.lo

let add iv jv = { lo = add_lo iv.lo jv.lo; hi = add_hi iv.hi jv.hi }
let sub iv jv = { lo = sub_lo iv.lo jv.hi; hi = sub_hi iv.hi jv.lo }

let mul iv jv =
  match (iv, jv) with
  | { lo = Fin a; hi = Fin b }, { lo = Fin c; hi = Fin d } ->
    let products = [ a * c; a * d; b * c; b * d ] in
    {
      lo = Fin (List.fold_left min max_int products);
      hi = Fin (List.fold_left max min_int products);
    }
  | _ -> if nonneg iv && nonneg jv then { lo = Fin 0; hi = PosInf } else top

(* land of non-negatives is bounded by either operand *)
let band iv jv =
  if nonneg iv && nonneg jv then { lo = Fin 0; hi = meet_hi iv.hi jv.hi } else top

(* lor/lxor of non-negatives below 2^k stays below 2^k *)
let bits_mask a b =
  let m = max a b in
  let rec go p = if p > m then p - 1 else go (p * 2) in
  go 1

let bor_like iv jv =
  match (iv, jv) with
  | { lo = Fin la; hi = Fin a }, { lo = Fin lb; hi = Fin b }
    when la >= 0 && lb >= 0 ->
    { lo = Fin 0; hi = Fin (bits_mask a b) }
  | _ -> if nonneg iv && nonneg jv then { lo = Fin 0; hi = PosInf } else top

let shl iv k =
  let k = min 62 (max 0 k) in
  if k = 0 then iv
  else
    match iv with
    | { lo = Fin a; hi = Fin b } when a >= 0 && b <= max_int lsr k ->
      { lo = Fin (a lsl k); hi = Fin (b lsl k) }
    | _ -> if nonneg iv then { lo = Fin 0; hi = PosInf } else top

let shr iv k =
  let k = min 62 (max 0 k) in
  if k = 0 then iv
  else
    (* lsr of anything by k >= 1 is non-negative in OCaml *)
    match iv with
    | { lo = Fin a; hi = Fin b } when a >= 0 -> { lo = Fin (a lsr k); hi = Fin (b lsr k) }
    | _ -> { lo = Fin 0; hi = PosInf }

(* ------------------------------------------------------------------ *)
(* The verifier proper                                                 *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Verified of { instrs : int; fuel_needed : int }
  | Rejected of { pc : int; reason : string }
      (** [pc] = -1 for whole-program defects *)

let default_fuel = 10_000

type state = interval array (* one interval per register *)

let entry_state () =
  let st = Array.make Vm.nregs (const 0) in
  st.(1) <- { lo = Len 0; hi = Len 0 };
  st

let join_states (a : state) (b : state) : state =
  Array.init Vm.nregs (fun r ->
      { lo = join_lo a.(r).lo b.(r).lo; hi = join_hi a.(r).hi b.(r).hi })

let regs_of = function
  | Vm.Const (rd, _) -> [ rd ]
  | Vm.Mov (rd, rs) -> [ rd; rs ]
  | Vm.Add (rd, a, b) | Vm.Sub (rd, a, b) | Vm.Mul (rd, a, b) | Vm.Div (rd, a, b)
  | Vm.And (rd, a, b) | Vm.Or (rd, a, b) | Vm.Xor (rd, a, b) ->
    [ rd; a; b ]
  | Vm.Shl (rd, a, _) | Vm.Shr (rd, a, _) -> [ rd; a ]
  | Vm.Load8 (rd, rs, _) -> [ rd; rs ]
  | Vm.Store8 (rs, ra, _) -> [ rs; ra ]
  | Vm.Jmp _ -> []
  | Vm.Jz (r, _) | Vm.Jnz (r, _) -> [ r ]
  | Vm.Jlt (a, b, _) -> [ a; b ]
  | Vm.Ret r -> [ r ]

exception Reject of int * string

let verify ?(fuel = default_fuel) (program : Vm.program) =
  let n = Array.length program in
  try
    if n = 0 then raise (Reject (-1, "empty program"));
    if n > fuel then
      raise
        (Reject
           (-1, Printf.sprintf "%d instructions exceed the fuel bound %d" n fuel));
    (* static well-formedness first, over every instruction, reachable or
       not — same discipline as the SFI rewriter's whole-program scan *)
    Array.iteri
      (fun pc ins ->
        if List.exists (fun r -> r < 0 || r >= Vm.nregs) (regs_of ins) then
          raise (Reject (pc, "register out of range"));
        if Sfi_rewrite.uses_reserved ins then
          raise (Reject (pc, "uses a reserved register (r6/r7)")))
      program;
    let states : state option array = Array.make n None in
    states.(0) <- Some (entry_state ());
    (* every jump must target a real, later instruction — checked even
       when refinement proves the branch dead, so the static claim holds
       program-wide *)
    let check_target pc target =
      if target < 0 || target >= n then raise (Reject (pc, "jump out of program"));
      if target <= pc then raise (Reject (pc, "backward jump"))
    in
    let flow_to pc target st =
      check_target pc target;
      states.(target) <-
        (match states.(target) with
        | None -> Some st
        | Some old -> Some (join_states old st))
    in
    let fall_through pc st =
      if pc + 1 >= n then raise (Reject (pc, "falls off the end of the program"));
      flow_to pc (pc + 1) st
    in
    let with_reg st r iv =
      let st' = Array.copy st in
      st'.(r) <- iv;
      st'
    in
    for pc = 0 to n - 1 do
      match states.(pc) with
      | None -> () (* unreachable on every admitted path *)
      | Some st -> (
        match program.(pc) with
        | Vm.Const (rd, imm) -> fall_through pc (with_reg st rd (const imm))
        | Vm.Mov (rd, rs) -> fall_through pc (with_reg st rd st.(rs))
        | Vm.Add (rd, a, b) -> fall_through pc (with_reg st rd (add st.(a) st.(b)))
        | Vm.Sub (rd, a, b) -> fall_through pc (with_reg st rd (sub st.(a) st.(b)))
        | Vm.Mul (rd, a, b) -> fall_through pc (with_reg st rd (mul st.(a) st.(b)))
        | Vm.Div (rd, _, _) ->
          (* division by zero is a clean, contained Vm_fault at run time —
             like a certified component's own failure, not a safety hole *)
          fall_through pc (with_reg st rd top)
        | Vm.And (rd, a, b) -> fall_through pc (with_reg st rd (band st.(a) st.(b)))
        | Vm.Or (rd, a, b) | Vm.Xor (rd, a, b) ->
          fall_through pc (with_reg st rd (bor_like st.(a) st.(b)))
        | Vm.Shl (rd, a, k) -> fall_through pc (with_reg st rd (shl st.(a) k))
        | Vm.Shr (rd, a, k) -> fall_through pc (with_reg st rd (shr st.(a) k))
        | Vm.Load8 (rd, rs, imm) ->
          let addr = add st.(rs) (const imm) in
          if not (le (Fin 0) addr.lo) then
            raise (Reject (pc, "load address may be below the data window"));
          if not (le addr.hi (Len (-1))) then
            raise (Reject (pc, "load address may be past the data window"));
          fall_through pc (with_reg st rd { lo = Fin 0; hi = Fin 255 })
        | Vm.Store8 (_, ra, imm) ->
          let addr = add st.(ra) (const imm) in
          if not (le (Fin 0) addr.lo) then
            raise (Reject (pc, "store address may be below the data window"));
          if not (le addr.hi (Len (-1))) then
            raise (Reject (pc, "store address may be past the data window"));
          fall_through pc st
        | Vm.Jmp t -> flow_to pc t st
        | Vm.Jz (r, t) ->
          (* taken: r = 0; fallthrough: no interval-expressible fact *)
          let zero =
            { lo = meet_lo st.(r).lo (Fin 0); hi = meet_hi st.(r).hi (Fin 0) }
          in
          if empty zero then check_target pc t
          else flow_to pc t (with_reg st r zero);
          fall_through pc st
        | Vm.Jnz (r, t) ->
          (* taken: no fact; fallthrough: r = 0 *)
          flow_to pc t st;
          let zero =
            { lo = meet_lo st.(r).lo (Fin 0); hi = meet_hi st.(r).hi (Fin 0) }
          in
          if not (empty zero) then fall_through pc (with_reg st r zero)
        | Vm.Jlt (a, b, t) ->
          (* taken: a < b, so a <= b.hi - 1 and b >= a.lo + 1;
             fallthrough: a >= b, so a >= b.lo and b <= a.hi *)
          let ivt_a = { st.(a) with hi = meet_hi st.(a).hi (pred st.(b).hi) } in
          let ivt_b = { st.(b) with lo = meet_lo st.(b).lo (succ st.(a).lo) } in
          if empty ivt_a || empty ivt_b then check_target pc t
          else flow_to pc t (with_reg (with_reg st a ivt_a) b ivt_b);
          let ivf_a = { st.(a) with lo = meet_lo st.(a).lo st.(b).lo } in
          let ivf_b = { st.(b) with hi = meet_hi st.(b).hi st.(a).hi } in
          if not (empty ivf_a || empty ivf_b) then
            fall_through pc (with_reg (with_reg st a ivf_a) b ivf_b)
        | Vm.Ret _ -> ())
    done;
    Verified { instrs = n; fuel_needed = n }
  with Reject (pc, reason) -> Rejected { pc; reason }

let verdict_to_string = function
  | Verified { instrs; fuel_needed } ->
    Printf.sprintf "verified: %d instructions, fuel bound %d" instrs fuel_needed
  | Rejected { pc; reason } ->
    if pc < 0 then Printf.sprintf "rejected: %s" reason
    else Printf.sprintf "rejected at pc %d: %s" pc reason

let ok = function Verified _ -> true | Rejected _ -> false
