(** Interface subsumption — the paper's interposition rule, checkable.

    "Replacing a name-space entry is only allowed with a superset
    object": an interposing agent must export every interface of the
    object it replaces, method for method, with matching arity and
    types (an agent-side {!Pm_obj.Vtype.Tany} matches any wrapped type,
    which is what generic forwarders declare) and a version at least as
    new. Extra agent interfaces are allowed — they are the point.

    Used in two places: {!Pm_components.Interpose.attach} enforces it at
    interposition time (raising [Oerror.Not_superset]), and the
    composition linter re-checks every recorded replacement over the
    live object graph. *)

(** [check ~wrapped ~agent] is [Ok ()] when [agent]'s interfaces subsume
    [wrapped]'s, or [Error reason] naming the first mismatch. *)
val check :
  wrapped:Pm_obj.Iface.t list -> agent:Pm_obj.Iface.t list -> (unit, string) result

(** [check_instances ~wrapped ~agent] applies {!check} to the instances'
    exported interface lists. *)
val check_instances :
  wrapped:Pm_obj.Instance.t -> agent:Pm_obj.Instance.t -> (unit, string) result
