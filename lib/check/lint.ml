(* Whole-system composition linter: a pass over the live object graph
   that checks the properties the object model promises but never
   enforces at assembly time. Each rule reads existing bookkeeping
   (namespace bindings, the directory's interposition log, event
   call-back tables, channel headers and wait queues) with plain
   OCaml reads — the pass charges no simulated cycles, like the flight
   recorder it reports into. *)

module Machine = Pm_machine.Machine
module Subsume = Pm_check.Subsume
module Namespace = Pm_names.Namespace
module Path = Pm_names.Path
module Instance = Pm_obj.Instance
module Directory = Pm_nucleus.Directory
module Events = Pm_nucleus.Events
module Domain = Pm_nucleus.Domain
module Chan = Pm_chan.Chan
module View = Pm_names.View
module Journal = Pm_journal.Journal
module Storereg = Pm_store.Storereg

type severity = Error | Warning

type finding = {
  rule : string;  (** e.g. "superset", "spsc", "wait-cycle" *)
  subject : string;  (** the path / channel / handler concerned *)
  detail : string;
  severity : severity;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let finding_to_string f =
  Printf.sprintf "%-7s %-12s %s: %s" (severity_to_string f.severity) f.rule
    f.subject f.detail

(* ------------------------------------------------------------------ *)
(* Rule: interposer supersets                                          *)
(* ------------------------------------------------------------------ *)

(* Every recorded Directory.replace must have installed a superset of
   what it displaced — re-checked against the live instances, so an
   interface removed *after* interposition is caught too. *)
let check_supersets directory =
  List.filter_map
    (fun (path, old_h, new_h) ->
      let subject = Path.to_string path in
      match (Directory.resolve_handle directory old_h, Directory.resolve_handle directory new_h) with
      | None, _ ->
        (* the displaced object is gone entirely; nothing to compare *)
        None
      | _, None ->
        Some
          {
            rule = "superset";
            subject;
            detail = Printf.sprintf "replacement handle %d is dead" new_h;
            severity = Error;
          }
      | Some wrapped, Some agent -> (
        match Subsume.check_instances ~wrapped ~agent with
        | Ok () -> None
        | Error detail -> Some { rule = "superset"; subject; detail; severity = Error }))
    (Directory.replacements directory)

(* ------------------------------------------------------------------ *)
(* Rule: dangling namespace bindings                                   *)
(* ------------------------------------------------------------------ *)

let check_bindings directory =
  let ns = Directory.namespace directory in
  let findings = ref [] in
  Namespace.iter ns (fun path handle ->
      let problem =
        match Directory.resolve_handle directory handle with
        | None -> Some (Printf.sprintf "bound to dead handle %d" handle)
        | Some inst ->
          if inst.Instance.revoked then
            Some (Printf.sprintf "bound to revoked instance %d" handle)
          else None
      in
      match problem with
      | None -> ()
      | Some detail ->
        findings :=
          { rule = "dangling"; subject = Path.to_string path; detail; severity = Error }
          :: !findings);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rule: event handlers with dead context                              *)
(* ------------------------------------------------------------------ *)

let check_handlers events =
  List.filter_map
    (fun (event, (dom : Domain.t), _id) ->
      if dom.Domain.alive then None
      else
        let subject =
          match event with
          | Events.Trap n -> Printf.sprintf "trap %d" n
          | Events.Irq n -> Printf.sprintf "irq %d" n
        in
        Some
          {
            rule = "dead-handler";
            subject;
            detail =
              Printf.sprintf "call-back registered for destroyed domain %d (%s)"
                dom.Domain.id dom.Domain.name;
            severity = Error;
          })
    (Events.registrations events)

(* ------------------------------------------------------------------ *)
(* Rule: channel SPSC ownership                                        *)
(* ------------------------------------------------------------------ *)

(* A channel ring has exactly one free-running tail: two senders from
   different MMU contexts silently corrupt each other's slots. The
   receive side is legitimately plural (inline drains plus pop-up
   consumers run in different contexts), so only senders are policed.

   An MPSC group (Pm_chan.Mpsc) is the sanctioned multi-producer shape:
   many producers, but each on its own tagged sub-ring. For a tagged
   ring the rule tightens to "exactly the owning context": distinct
   producers on distinct sub-rings pass, while a second context on
   someone else's sub-ring is flagged with the group named. *)
let check_spsc ~machine =
  let findings = ref [] in
  Chan.iter_all ~machine (fun c ->
      match Chan.group c with
      | Some (gname, owner_ctx) ->
        (match
           List.filter (fun ctx -> ctx <> owner_ctx) (Chan.senders_seen c)
         with
        | [] -> ()
        | intruders ->
          findings :=
            {
              rule = "spsc";
              subject = Chan.name c;
              detail =
                Printf.sprintf
                  "sub-ring of mpsc group %s is owned by context %d but saw \
                   sender(s) %s"
                  gname owner_ctx
                  (String.concat ", " (List.map string_of_int intruders));
              severity = Error;
            }
            :: !findings)
      | None ->
        (match Chan.senders_seen c with
        | [] | [ _ ] -> ()
        | ctxs ->
          findings :=
            {
              rule = "spsc";
              subject = Chan.name c;
              detail =
                Printf.sprintf "%d distinct sending contexts: %s" (List.length ctxs)
                  (String.concat ", " (List.map string_of_int ctxs));
              severity = Error;
            }
            :: !findings));
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rule: cross-CPU rings without cache-line pricing                    *)
(* ------------------------------------------------------------------ *)

(* On an SMP complex, a ring whose producer and consumer are pinned to
   different CPUs moves every message through the coherence fabric —
   the cost model only sees that when the ring's cache-line pricing
   flag is on ([Chan.set_cacheline_priced]). An unpriced cross-CPU
   ring makes the accounting silently optimistic: the bytes still
   cross, the cycles are never charged. The paths that pin endpoints
   apart (Mpsc.attach, Netstack_chan ports, Storechan) price their
   rings at accept time, so a finding here means a hand-wired ring
   dodged that. No-op without a complex — never fires on uniprocessor
   systems. *)
let check_cross_cpu ~machine =
  let findings = ref [] in
  Chan.iter_all ~machine (fun c ->
      if Chan.is_cross_cpu c && not (Chan.cacheline_priced c) then
        let consumer =
          match Chan.consumer c with Some d -> d.Domain.id | None -> -1
        in
        findings :=
          {
            rule = "cross-cpu";
            subject = Chan.name c;
            detail =
              Printf.sprintf
                "producer dom %d and consumer dom %d are pinned to different \
                 CPUs but the ring is not cache-line priced \
                 (Chan.set_cacheline_priced): cross-CPU traffic goes \
                 unaccounted"
                (Chan.producer c).Domain.id consumer;
            severity = Error;
          }
          :: !findings);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rule: wait-for cycles across channel endpoints                      *)
(* ------------------------------------------------------------------ *)

(* A domain parked in a blocking recv waits for the producer domain to
   enqueue; one parked in a blocking send waits for the consumer domain
   to drain. Those edges form the wait-for graph; a cycle means no
   domain on it can ever run again — deadlock. *)
let check_wait_cycles ~machine =
  let edges = ref [] in
  Chan.iter_all ~machine (fun c ->
      let producer = (Chan.producer c).Domain.id in
      let consumer =
        match Chan.consumer c with Some d -> Some d.Domain.id | None -> None
      in
      List.iter
        (fun waiter ->
          if waiter <> producer then edges := (waiter, producer, Chan.name c) :: !edges)
        (Chan.blocked_receivers c);
      match consumer with
      | None -> ()
      | Some consumer ->
        List.iter
          (fun waiter ->
            if waiter <> consumer then edges := (waiter, consumer, Chan.name c) :: !edges)
          (Chan.blocked_senders c));
  let edges = List.rev !edges in
  let successors d = List.filter (fun (s, _, _) -> s = d) edges in
  (* DFS from every node; report each cycle once by its smallest member *)
  let cycles = ref [] in
  let index_of x l =
    let rec go i = function
      | [] -> None
      | y :: _ when y = x -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 l
  in
  let rec dfs trail d =
    match index_of d trail with
    | Some i ->
      let cycle = List.filteri (fun j _ -> j <= i) trail in
      let key = List.sort compare cycle in
      if not (List.mem key !cycles) then cycles := key :: !cycles
    | None -> List.iter (fun (_, t, _) -> dfs (d :: trail) t) (successors d)
  in
  List.iter (fun (s, _, _) -> dfs [] s) edges;
  List.rev_map
    (fun cycle ->
      {
        rule = "wait-cycle";
        subject =
          String.concat " -> " (List.map (fun d -> Printf.sprintf "dom %d" d) cycle);
        detail =
          Printf.sprintf "wait-for cycle across %d channel edge(s): every domain waits on the next"
            (List.length edges);
        severity = Error;
      })
    !cycles
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Rule: page-sharing hygiene (history-derived)                        *)
(* ------------------------------------------------------------------ *)

(* Replays the journal's structural archive: every Page_share opens a
   (frame, owner, holder) obligation, the matching Page_unshare closes
   it, and a Domain_down with obligations still open on either side is
   the violation — a shared frame outlived one of the domains party to
   it. Works on any structural event stream, so a replayed recording
   (imported events, no live journal) lints the same way. *)
let check_page_hygiene events =
  let open_shares = ref [] in (* (frame, owner, holder) *)
  let findings = ref [] in
  List.iter
    (fun e ->
      match e.Journal.kind with
      | Journal.Page_share ->
        let owner =
          try Scanf.sscanf e.Journal.detail "frame %d from dom %d" (fun _ d -> d)
          with Scanf.Scan_failure _ | End_of_file | Failure _ -> -1
        in
        open_shares := (e.Journal.info, owner, e.Journal.domain) :: !open_shares
      | Journal.Page_unshare ->
        let closed = ref false in
        open_shares :=
          List.filter
            (fun (frame, _, holder) ->
              if (not !closed) && frame = e.Journal.info
                 && holder = e.Journal.domain
              then begin
                closed := true;
                false
              end
              else true)
            !open_shares
      | Journal.Domain_down ->
        let dead = e.Journal.domain in
        let guilty, rest =
          List.partition
            (fun (_, owner, holder) -> owner = dead || holder = dead)
            !open_shares
        in
        open_shares := rest;
        List.iter
          (fun (frame, owner, holder) ->
            findings :=
              {
                rule = "page-hygiene";
                subject = Printf.sprintf "frame %d" frame;
                detail =
                  Printf.sprintf
                    "shared from dom %d into dom %d, still mapped when dom %d \
                     went down"
                    owner holder dead;
                severity = Error;
              }
              :: !findings)
          guilty
      | _ -> ())
    events;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rule: delegate-chain shadowing                                      *)
(* ------------------------------------------------------------------ *)

(* An interposition swaps what a *name* resolves to — but a domain whose
   view overrides that same name to a different handle never sees the
   agent: its calls silently bypass the monitor/filter the interposition
   installed. Flagged as a warning: the override may be intentional, but
   it shadows the live interposition. *)
let check_shadowing ~directory ~domains =
  let ns = Directory.namespace directory in
  let live_replacements =
    List.filter
      (fun (path, _old_h, new_h) ->
        match Namespace.lookup ns path with
        | Ok h -> h = new_h
        | Error _ -> false)
      (Directory.replacements directory)
  in
  List.concat_map
    (fun (path, _old_h, new_h) ->
      List.filter_map
        (fun (dom : Domain.t) ->
          match
            List.find_opt
              (fun (p, h) -> Path.equal p path && h <> new_h)
              (View.overrides dom.Domain.view)
          with
          | Some (_, h) ->
            Some
              {
                rule = "shadowing";
                subject = Path.to_string path;
                detail =
                  Printf.sprintf
                    "domain %d (%s) overrides the name to handle %d, bypassing \
                     interposed handle %d"
                    dom.Domain.id dom.Domain.name h new_h;
                severity = Warning;
              }
          | None -> None)
        (domains ()))
    live_replacements

(* ------------------------------------------------------------------ *)
(* Rules: storage-stack composition                                    *)
(* ------------------------------------------------------------------ *)

(* The storage registry records, for each live component, the namespace
   path of the layer it consumes; matching those [lower] paths against
   the [/store] bindings reconstructs the stack without charging a
   simulated cycle. Two properties must hold of it. *)

let store_entries ~machine =
  let es = ref [] in
  Storereg.iter_all ~machine (fun e -> es := e :: !es);
  List.rev !es

(* "store-order": a write-back cache must sit above (never below) its
   log or partition. A cache stacked directly above an append-only log
   holds writes back and evicts them in LRU order, breaking the strict
   append sequence the log's superblock accounting depends on; a
   partition windowing a cache is the same inversion seen from above —
   the cache's dirty state hides behind an address translation it never
   sees flushed. Both are errors. An unresolvable [lower] path is not
   this rule's business (store-dangling owns liveness). *)
let check_store_order ~machine =
  let entries = store_entries ~machine in
  let resolve path =
    List.find_opt
      (fun (e : Storereg.entry) ->
        (not e.Storereg.detached)
        &&
        match e.Storereg.bound with
        | Some b -> String.equal b path
        | None -> false)
      entries
  in
  List.filter_map
    (fun (e : Storereg.entry) ->
      if e.Storereg.detached then None
      else
        let lower =
          match e.Storereg.lower with
          | None -> None
          | Some p -> resolve p
        in
        match (e.Storereg.kind, lower) with
        | Storereg.Cache, Some l when l.Storereg.kind = Storereg.Log ->
          Some
            {
              rule = "store-order";
              subject = e.Storereg.name;
              detail =
                Printf.sprintf
                  "write-back cache stacked above append-only log %s: eviction \
                   replays writes in LRU order, not append order — the cache \
                   belongs below the log"
                  l.Storereg.name;
              severity = Error;
            }
        | Storereg.Partition, Some l when l.Storereg.kind = Storereg.Cache ->
          Some
            {
              rule = "store-order";
              subject = e.Storereg.name;
              detail =
                Printf.sprintf
                  "partition windows write-back cache %s: the cache sits below \
                   its partition, hiding dirty blocks behind the address \
                   translation — the cache belongs above the partition"
                  l.Storereg.name;
              severity = Error;
            }
        | _ -> None)
    entries

(* "store-dangling": detach is flush, unregister, revoke, unbind — in
   that order. An entry still bound under /store after it detached, or
   whose bound instance has been revoked out from under the binding, is
   an endpoint the next bind will hand out and the first call will
   fault on. *)
let check_store_dangling ~machine =
  let findings = ref [] in
  Storereg.iter_all ~machine (fun e ->
      match e.Storereg.bound with
      | None -> ()
      | Some path ->
        let problem =
          if e.Storereg.detached then
            Some
              (Printf.sprintf "%s %s detached but its endpoint is still bound"
                 (Storereg.kind_to_string e.Storereg.kind)
                 e.Storereg.name)
          else if e.Storereg.instance.Instance.revoked then
            Some
              (Printf.sprintf
                 "endpoint bound to revoked %s %s (revoked without detach)"
                 (Storereg.kind_to_string e.Storereg.kind)
                 e.Storereg.name)
          else None
        in
        (match problem with
        | None -> ()
        | Some detail ->
          findings :=
            { rule = "store-dangling"; subject = path; detail; severity = Error }
            :: !findings));
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* The whole-system pass                                               *)
(* ------------------------------------------------------------------ *)

type report = { findings : finding list; rules_run : int }

let rules =
  [ "superset"; "dangling"; "dead-handler"; "spsc"; "cross-cpu"; "wait-cycle";
    "store-order"; "store-dangling"; "page-hygiene"; "shadowing" ]

let run ~machine ~directory ~events ?journal ?domains () =
  let history_findings =
    match journal with
    | Some j -> check_page_hygiene (Journal.structural j)
    | None -> []
  in
  let shadow_findings =
    match domains with
    | Some ds -> check_shadowing ~directory ~domains:ds
    | None -> []
  in
  let findings =
    check_supersets directory @ check_bindings directory @ check_handlers events
    @ check_spsc ~machine @ check_cross_cpu ~machine @ check_wait_cycles ~machine
    @ check_store_order ~machine
    @ check_store_dangling ~machine
    @ history_findings @ shadow_findings
  in
  let rules_run =
    8 + (if journal = None then 0 else 1) + if domains = None then 0 else 1
  in
  { findings; rules_run }

(* History-only pass: the rules derivable from an event stream alone, so
   a *replayed* recording can be linted without the live object graph. *)
let history events = check_page_hygiene events

let errors report =
  List.filter (fun f -> f.severity = Error) report.findings

let report_to_string report =
  match report.findings with
  | [] -> Printf.sprintf "clean: %d rules, no findings" report.rules_run
  | fs ->
    Printf.sprintf "%d finding(s) from %d rules:\n%s" (List.length fs)
      report.rules_run
      (String.concat "\n" (List.map finding_to_string fs))

(* Machine-readable report: one JSON object per line of CI tooling. No
   JSON library in the tree, so escape by hand — rule names are fixed
   but subjects and details carry arbitrary paths and quotes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","subject":"%s","detail":"%s"}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.subject) (json_escape f.detail)

let report_to_json report =
  Printf.sprintf {|{"rules_run":%d,"errors":%d,"findings":[%s]}|}
    report.rules_run
    (List.length (errors report))
    (String.concat "," (List.map finding_to_json report.findings))

(* Explain a rule by name — the /nucleus/check "explain" method. *)
let explain = function
  | "superset" ->
    "every Directory.replace must install an object whose interfaces subsume \
     the displaced object's, method for method (the paper's interposition rule)"
  | "dangling" -> "every namespace binding must resolve to a live, unrevoked instance"
  | "dead-handler" ->
    "every registered event call-back must belong to a live domain"
  | "spsc" ->
    "a channel ring has one producer: enqueues from more than one MMU context \
     corrupt the single free-running tail; a sub-ring of an mpsc group is \
     instead checked against its owning context, so distinct producers on \
     distinct sub-rings are the sanctioned multi-producer shape"
  | "cross-cpu" ->
    "a ring whose producer and consumer are pinned to different CPUs of an SMP \
     complex must have cache-line pricing on, or its coherence traffic is \
     silently unaccounted"
  | "wait-cycle" ->
    "domains blocked on channel ends must not form a cycle of mutual waiting — \
     that is a deadlock no doorbell can break"
  | "store-order" ->
    "a write-back cache must sit above (never below) its log or partition: a \
     cache stacked above an append-only log replays evictions in LRU order, \
     and a partition windowing a cache hides dirty blocks behind the address \
     translation"
  | "store-dangling" ->
    "no /store endpoint may be left dangling after detach: an entry still \
     bound after it detached, or bound to a revoked component, faults the \
     next client that binds it"
  | "page-hygiene" ->
    "every page shared across domains must be unshared before either party \
     goes down — derived by replaying the journal's structural history, so it \
     works on recorded runs too"
  | "shadowing" ->
    "a domain whose view overrides an interposed name to a different handle \
     silently bypasses the interposition agent"
  | r -> Printf.sprintf "unknown rule %S" r
