(* Partition: a bounds-checked window [base, base+count) onto a lower
   "block" component. Pure address translation — no state beyond the
   window — which makes it the simplest interposer in the stack and the
   usual seat for placement experiments (User vs Certified vs
   Verified). *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Instance = Pm_obj.Instance
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

type state = {
  lower : Blockif.lower;
  base : int;
  count : int;
  mutable reads : int;
  mutable writes : int;
}

let check st block =
  if block < 0 || block >= st.count then
    fault (Printf.sprintf "partition: block %d outside window of %d" block st.count)
  else Ok ()

let create api dom ~name ~lower ~base ~count ?(block_size = 512) () =
  if base < 0 || count <= 0 then invalid_arg "Partition.create: bad window";
  let st =
    { lower = Blockif.make_lower api dom lower; base; count; reads = 0; writes = 0 }
  in
  let iface =
    Blockif.methods
      ~read:(fun ctx block ->
        Blockif.traced_span api "partition" (fun () ->
            let* () = check st block in
            st.reads <- st.reads + 1;
            Blockif.read st.lower ctx (st.base + block)))
      ~write:(fun ctx block data ->
        Blockif.traced_span api "partition" (fun () ->
            let* () = check st block in
            st.writes <- st.writes + 1;
            Blockif.write st.lower ctx (st.base + block) data))
      ~flush:(fun ctx ->
        Blockif.traced_span api "partition" (fun () -> Blockif.flush st.lower ctx))
      ~size:(fun _ctx -> Ok st.count)
      ~blocksize:(fun () -> block_size)
      ~stats:(fun () -> [ st.reads; st.writes ])
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"store.partition"
      ~domain:dom.Domain.id [ iface ]
  in
  ignore
    (Storereg.register ~machine:api.Api.machine ~name ~kind:Storereg.Partition
       ~lower ~instance:inst ~domain:dom.Domain.id ());
  inst
