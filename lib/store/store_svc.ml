(* /shared/store: the storage factory.

   Anyone who can bind the factory can grow a stack: each method boots
   one component — driver, partition, cache, log, kv — in the *caller's*
   domain (the origin of the call context, the Netsvc idiom), wires it
   above a lower layer by namespace path, and registers it under
   [/store/<name>] where the next layer, an interposer, or a remote
   client finds it. [detach] is the orderly teardown: flush first (so
   write-back state reaches the device), then unregister, then revoke —
   leaving no dangling [/store] endpoint, which the composition linter
   checks. *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Directory = Pm_nucleus.Directory
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Call_ctx = Pm_obj.Call_ctx
module Path = Pm_names.Path
module Images = Pm_components.Images

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

let store_path name = Printf.sprintf "/store/%s" name

let register_at api name inst =
  let path = store_path name in
  match Directory.register api.Api.directory (Path.of_string path) inst with
  | Ok () ->
    (match Storereg.find ~machine:api.Api.machine name with
    | Some e -> Storereg.set_bound e (Some path)
    | None -> ());
    Ok (Value.Handle (Instance.handle inst))
  | Error e -> fault ("store factory: " ^ Pm_names.Namespace.error_to_string e)

(* Flush whatever durable state the component still holds; a driver has
   nothing above the device, so its flush just drains the ring. *)
let flush_entry ctx (e : Storereg.entry) =
  let inst = e.Storereg.instance in
  if Option.is_some (Instance.get_interface inst "kv") then
    Invoke.call ctx inst ~iface:"kv" ~meth:"flush" [] |> Result.map ignore
  else if Option.is_some (Instance.get_interface inst Blockif.iface_name) then
    Invoke.call ctx inst ~iface:Blockif.iface_name ~meth:"flush" []
    |> Result.map ignore
  else Ok ()

let create api ~domain_of_id () =
  let origin (ctx : Call_ctx.t) =
    match domain_of_id ctx.Call_ctx.origin_domain with
    | Some d -> Ok d
    | None ->
      fault
        (Printf.sprintf "store factory: unknown domain %d"
           ctx.Call_ctx.origin_domain)
  in
  let driver_m ctx = function
    | [ Value.Str name ] ->
      let* dom = origin ctx in
      register_at api name (Blkdrv.create api dom ())
    | _ -> Error (Oerror.Type_error "driver(name)")
  in
  let partition_m ctx = function
    | [ Value.Str name; Value.Str lower; Value.Int base; Value.Int count ] ->
      let* dom = origin ctx in
      register_at api name
        (Partition.create api dom ~name ~lower ~base ~count ())
    | _ -> Error (Oerror.Type_error "partition(name, lower, base, count)")
  in
  let cache_m ctx = function
    | [ Value.Str name; Value.Str lower; Value.Int capacity ] ->
      let* dom = origin ctx in
      register_at api name (Cache.create api dom ~name ~lower ~capacity ())
    | _ -> Error (Oerror.Type_error "cache(name, lower, capacity)")
  in
  let log_m ctx = function
    | [ Value.Str name; Value.Str lower ] ->
      let* dom = origin ctx in
      register_at api name (Blocklog.create api dom ~name ~lower ())
    | _ -> Error (Oerror.Type_error "log(name, lower)")
  in
  let kv_m ctx = function
    | [ Value.Str name; Value.Str log ] ->
      let* dom = origin ctx in
      register_at api name (Kv.create api dom ~name ~log ())
    | _ -> Error (Oerror.Type_error "kv(name, log)")
  in
  let detach_m ctx = function
    | [ Value.Str name ] -> (
      match Storereg.find ~machine:api.Api.machine name with
      | None -> fault (Printf.sprintf "store factory: no component %s" name)
      | Some e ->
        let* () = flush_entry ctx e in
        ignore
          (Directory.unregister api.Api.directory
             (Path.of_string (store_path name)));
        Instance.revoke e.Storereg.instance;
        Storereg.set_bound e None;
        Storereg.mark_detached e;
        Ok Value.Unit)
    | _ -> Error (Oerror.Type_error "detach(name)")
  in
  let list_m _ctx = function
    | [] ->
      let entries = ref [] in
      Storereg.iter_all ~machine:api.Api.machine (fun e ->
          if not e.Storereg.detached then
            entries :=
              Value.Str
                (Printf.sprintf "%s:%s" e.Storereg.name
                   (Storereg.kind_to_string e.Storereg.kind))
              :: !entries);
      Ok (Value.List (List.rev !entries))
    | _ -> Error (Oerror.Type_error "list()")
  in
  let iface =
    Iface.make ~name:"store.factory"
      [
        Iface.meth ~name:"driver" ~args:[ Vtype.Tstr ] ~ret:Vtype.Thandle driver_m;
        Iface.meth ~name:"partition"
          ~args:[ Vtype.Tstr; Vtype.Tstr; Vtype.Tint; Vtype.Tint ]
          ~ret:Vtype.Thandle partition_m;
        Iface.meth ~name:"cache"
          ~args:[ Vtype.Tstr; Vtype.Tstr; Vtype.Tint ]
          ~ret:Vtype.Thandle cache_m;
        Iface.meth ~name:"log" ~args:[ Vtype.Tstr; Vtype.Tstr ] ~ret:Vtype.Thandle
          log_m;
        Iface.meth ~name:"kv" ~args:[ Vtype.Tstr; Vtype.Tstr ] ~ret:Vtype.Thandle
          kv_m;
        Iface.meth ~name:"detach" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit detach_m;
        Iface.meth ~name:"list" ~args:[] ~ret:(Vtype.Tlist Vtype.Tstr) list_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"store.factory"
    ~domain:api.Api.kernel_domain.Domain.id [ iface ]

(* ------------------------------------------------------------------ *)
(* /stats/store.<name>: one counter object per registered component,   *)
(* published beside /stats/kernel. The counters come from the          *)
(* component's own stats() method, labeled by kind so clients see      *)
(* "hits"/"dirty", not positional ints.                                *)
(* ------------------------------------------------------------------ *)

(* labels in each component's stats() order *)
let stat_labels = function
  | Storereg.Driver -> [ "blk_reads"; "blk_writes"; "blk_irq_acks" ]
  | Storereg.Partition -> [ "reads"; "writes" ]
  | Storereg.Cache ->
    [ "hits"; "misses"; "evictions"; "writebacks"; "dirty"; "capacity" ]
  | Storereg.Log -> [ "appends"; "gets"; "segments"; "flushed" ]
  | Storereg.Kv -> [ "puts"; "gets"; "dels"; "recovers" ]
  | Storereg.Proxy -> [ "reqs"; "polls"; "drops"; "stale" ]

let stats_object api (e : Storereg.entry) =
  let inst = e.Storereg.instance in
  let counters ctx =
    let iface =
      if Option.is_some (Instance.get_interface inst "kv") then "kv"
      else Blockif.iface_name
    in
    match Invoke.call ctx inst ~iface ~meth:"stats" [] with
    | Ok (Value.List vs) ->
      Ok (List.filter_map (function Value.Int n -> Some n | _ -> None) vs)
    | Ok _ -> fault "store stats: component returned non-list"
    | Error err -> Error err
  in
  let labeled ctx =
    let* cs = counters ctx in
    let rec zip ls cs i =
      match (ls, cs) with
      | _, [] -> []
      | [], c :: rest -> (Printf.sprintf "stat%d" i, c) :: zip [] rest (i + 1)
      | l :: ls, c :: rest -> (l, c) :: zip ls rest (i + 1)
    in
    Ok (zip (stat_labels e.Storereg.kind) cs 0)
  in
  let snapshot_m ctx = function
    | [] ->
      let* pairs = labeled ctx in
      let header =
        Printf.sprintf "store.%s kind=%s domain=%d bound=%s dirty=%d"
          e.Storereg.name
          (Storereg.kind_to_string e.Storereg.kind)
          e.Storereg.domain
          (Option.value e.Storereg.bound ~default:"-")
          (e.Storereg.dirty ())
      in
      let lines =
        List.map (fun (l, c) -> Printf.sprintf "  %-12s %d" l c) pairs
      in
      Ok (Value.Str (String.concat "\n" (header :: lines)))
    | _ -> Error (Oerror.Type_error "snapshot()")
  in
  let value_m ctx = function
    | [ Value.Str name ] -> (
      let* pairs = labeled ctx in
      match List.assoc_opt name pairs with
      | Some v -> Ok (Value.Int v)
      | None ->
        fault
          (Printf.sprintf "store stats: no counter %S on %s" name
             e.Storereg.name))
    | _ -> Error (Oerror.Type_error "value(str)")
  in
  let iface =
    Iface.make ~name:"stats.store"
      [
        Iface.meth ~name:"snapshot" ~args:[] ~ret:Vtype.Tstr snapshot_m;
        Iface.meth ~name:"value" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tint value_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"obs.stats.store"
    ~domain:api.Api.kernel_domain.Domain.id [ iface ]

(* Publish /stats/store.<name> for every live component of this
   machine's stack. Safe to call again after growing the stack: a name
   already registered is left alone. Returns the number published. *)
let publish_stats api =
  let fresh = ref 0 in
  Storereg.iter_all ~machine:api.Api.machine (fun e ->
      if not e.Storereg.detached then begin
        let path = Path.of_string ("/stats/store." ^ e.Storereg.name) in
        match Directory.register api.Api.directory path (stats_object api e) with
        | Ok () -> incr fresh
        | Error _ -> ()
      end);
  !fresh

let image ~domain_of_id () =
  Images.image ~name:"store-factory" ~size:16_384 ~author:"kernel-team"
    ~type_safe:true
    (fun api _dom -> create api ~domain_of_id ())

(* Images for placing individual stack layers like any other component:
   the construct runs in whatever domain the placement dictates. *)
let driver_image () =
  Images.image ~name:"store-blkdrv" ~size:24_576 ~author:"kernel-team"
    ~type_safe:false
    (fun api dom -> Blkdrv.create api dom ())

let partition_image ~name ~lower ~base ~count () =
  Images.image ~name:("store-" ^ name) ~size:8_192 ~author:"kernel-team"
    ~type_safe:true
    (fun api dom -> Partition.create api dom ~name ~lower ~base ~count ())

let cache_image ~name ~lower ~capacity () =
  Images.image ~name:("store-" ^ name) ~size:12_288 ~author:"kernel-team"
    ~type_safe:true
    (fun api dom -> Cache.create api dom ~name ~lower ~capacity ())

let log_image ~name ~lower () =
  Images.image ~name:("store-" ^ name) ~size:12_288 ~author:"kernel-team"
    ~type_safe:true
    (fun api dom -> Blocklog.create api dom ~name ~lower ())

let kv_image ~name ~log () =
  Images.image ~name:("store-" ^ name) ~size:16_384 ~author:"kernel-team"
    ~type_safe:true
    (fun api dom -> Kv.create api dom ~name ~log ())
