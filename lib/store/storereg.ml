(* Global registry of storage components, keyed by machine — what the
   composition linter walks (like [Chan.iter_all]) to check that every
   write-back cache sits above its log/partition and that no /store
   endpoint is left dangling after a detach. Plain OCaml state: reading
   it charges no simulated cycles. *)

module Machine = Pm_machine.Machine
module Instance = Pm_obj.Instance

type kind = Driver | Partition | Cache | Log | Kv | Proxy

let kind_to_string = function
  | Driver -> "driver"
  | Partition -> "partition"
  | Cache -> "cache"
  | Log -> "log"
  | Kv -> "kv"
  | Proxy -> "proxy"

type entry = {
  machine : Machine.t;
  name : string;
  kind : kind;
  lower : string option; (* namespace path of the component below *)
  instance : Instance.t;
  domain : int;
  mutable bound : string option; (* /store/<name> while registered *)
  mutable detached : bool;
  dirty : unit -> int; (* blocks still dirty above the lower layer *)
}

let all : entry list ref = ref []

let register ~machine ~name ~kind ?lower ~instance ~domain ?(dirty = fun () -> 0)
    () =
  let e =
    { machine; name; kind; lower; instance; domain; bound = None;
      detached = false; dirty }
  in
  all := e :: !all;
  e

let iter_all ~machine f =
  List.iter (fun e -> if e.machine == machine then f e) (List.rev !all)

let find ~machine name =
  List.find_opt (fun e -> e.machine == machine && e.name = name) !all

let set_bound e path = e.bound <- path
let mark_detached e = e.detached <- true
