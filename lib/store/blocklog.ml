(* Append-only log on a lower "block" component.

   Layout: lower block 0 is the superblock (magic "PMLG" + entry count);
   record [i] lives in lower block [1 + i] as [len:2][payload]. The
   entry count is kept in memory and made durable by [flush], which
   rewrites the superblock before forwarding the flush down — so a crash
   (or detach without flush) loses only unflushed appends, never
   corrupts earlier records. [recover] rebuilds the in-memory count from
   the superblock.

   Exports the "log" interface (append/get/entries/recover) for the KV
   store, plus the uniform "block" view so the log composes like any
   other layer: read i = record block i, write is append-at-end only. *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

let magic = "PMLG"
let header_len = 8 (* magic:4 count:4 *)

type state = {
  lower : Blockif.lower;
  block_size : int;
  mutable entries : int;
  mutable flushed : int; (* entry count last made durable *)
  mutable appends : int;
  mutable gets : int;
}

let capacity st ctx =
  let* n = Blockif.size st.lower ctx in
  Ok (n - 1)

let append_op st ctx payload =
  let plen = Bytes.length payload in
  if plen > st.block_size - 2 then fault "log: record exceeds block"
  else begin
    let* cap = capacity st ctx in
    if st.entries >= cap then fault "log: full"
    else begin
      let block = Bytes.make st.block_size '\000' in
      Storewire.set16 block 0 plen;
      Bytes.blit payload 0 block 2 plen;
      Call_ctx.access ctx (2 + plen);
      let seq = st.entries in
      let* () = Blockif.write st.lower ctx (1 + seq) block in
      st.entries <- seq + 1;
      st.appends <- st.appends + 1;
      Ok seq
    end
  end

let get_op st ctx seq =
  if seq < 0 || seq >= st.entries then
    fault (Printf.sprintf "log: no record %d (have %d)" seq st.entries)
  else begin
    let* block = Blockif.read st.lower ctx (1 + seq) in
    if Bytes.length block < 2 then fault "log: short record block"
    else begin
      let plen = Storewire.get16 block 0 in
      if plen > Bytes.length block - 2 then fault "log: corrupt record length"
      else begin
        Call_ctx.access ctx plen;
        st.gets <- st.gets + 1;
        Ok (Bytes.sub block 2 plen)
      end
    end
  end

let flush_op st ctx =
  let sb = Bytes.make st.block_size '\000' in
  Bytes.blit_string magic 0 sb 0 4;
  Storewire.set32 sb 4 st.entries;
  Call_ctx.access ctx header_len;
  let* () = Blockif.write st.lower ctx 0 sb in
  let* pushed = Blockif.flush st.lower ctx in
  st.flushed <- st.entries;
  Ok pushed

let recover_op st ctx =
  let* sb = Blockif.read st.lower ctx 0 in
  if Bytes.length sb >= header_len && Bytes.sub_string sb 0 4 = magic then
    st.entries <- Storewire.get32 sb 4
  else st.entries <- 0;
  st.flushed <- st.entries;
  Ok st.entries

let create api dom ~name ~lower ?(block_size = 512) () =
  let st =
    {
      lower = Blockif.make_lower api dom lower;
      block_size;
      entries = 0;
      flushed = 0;
      appends = 0;
      gets = 0;
    }
  in
  let append_m ctx = function
    | [ Value.Blob payload ] ->
      Blockif.traced_span api "log" (fun () ->
          let* seq = append_op st ctx payload in
          Blockif.traced_note api ~info:seq "log-append";
          Ok (Value.Int seq))
    | _ -> Error (Oerror.Type_error "append(blob)")
  in
  let get_m ctx = function
    | [ Value.Int seq ] ->
      Blockif.traced_span api "log" (fun () ->
          let* payload = get_op st ctx seq in
          Ok (Value.Blob payload))
    | _ -> Error (Oerror.Type_error "get(int)")
  in
  let entries_m _ctx = function
    | [] -> Ok (Value.Int st.entries)
    | _ -> Error (Oerror.Type_error "entries()")
  in
  let recover_m ctx = function
    | [] ->
      Blockif.traced_span api "log" (fun () ->
          let* n = recover_op st ctx in
          Ok (Value.Int n))
    | _ -> Error (Oerror.Type_error "recover()")
  in
  let log_iface =
    Iface.make ~name:"log"
      [
        Iface.meth ~name:"append" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tint append_m;
        Iface.meth ~name:"get" ~args:[ Vtype.Tint ] ~ret:Vtype.Tblob get_m;
        Iface.meth ~name:"entries" ~args:[] ~ret:Vtype.Tint entries_m;
        Iface.meth ~name:"recover" ~args:[] ~ret:Vtype.Tint recover_m;
      ]
  in
  (* uniform block view: read i = raw record block, write only appends *)
  let block_iface =
    Blockif.methods
      ~read:(fun ctx block ->
        if block < 0 || block >= st.entries then fault "log: read past end"
        else
          Blockif.traced_span api "log" (fun () ->
              Blockif.read st.lower ctx (1 + block)))
      ~write:(fun ctx block data ->
        if block <> st.entries then fault "log: append-only (write at end)"
        else
          Blockif.traced_span api "log" (fun () ->
              let* _ = append_op st ctx data in
              Ok ()))
      ~flush:(fun ctx -> Blockif.traced_span api "log" (fun () -> flush_op st ctx))
      ~size:(fun _ctx -> Ok st.entries)
      ~blocksize:(fun () -> st.block_size)
      ~stats:(fun () -> [ st.appends; st.gets; st.entries; st.flushed ])
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"store.log"
      ~domain:dom.Domain.id [ log_iface; block_iface ]
  in
  ignore
    (Storereg.register ~machine:api.Api.machine ~name ~kind:Storereg.Log ~lower
       ~instance:inst ~domain:dom.Domain.id
       ~dirty:(fun () -> st.entries - st.flushed)
       ());
  inst
