module Call_ctx = Pm_obj.Call_ctx

let check16 label v =
  if v < 0 || v > 0xffff then
    invalid_arg (Printf.sprintf "Storewire: %s out of range" label)

let get16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

let set32 b off v =
  set16 b off ((v lsr 16) land 0xffff);
  set16 b (off + 2) (v land 0xffff)

(* charge for materializing [n] bytes into/out of a ring message; the
   rings run with [~account:false], so each payload byte is paid for
   exactly once per side — the same zero-copy contract as Netwire *)
let copy_cost ctx n = Call_ctx.access ctx n

(* Same rid carriage as Netwire: with tracing on, block and KV messages
   grow a 4-byte request-id field after the fixed header (uncharged —
   tracing adds zero simulated cycles), and parse re-establishes the
   ambient scope. Log [Record]s never carry a rid: they are durable
   data, and their stored bytes must not depend on who wrote them. *)
module Trace = Pm_journal.Trace

let rid_len () = if Trace.enabled () then 4 else 0

(* ------------------------------------------------------------------ *)
(* Block requests/responses over rings (the Storechan path).           *)
(* ------------------------------------------------------------------ *)

let op_read = 1
let op_write = 2
let op_flush = 3

module Blkreq = struct
  type t = { op : int; tag : int; block : int; payload : bytes }

  let header_len = 7

  let build ctx ~op ~tag ~block payload =
    if op < op_read || op > op_flush then invalid_arg "Storewire: bad block op";
    check16 "blkreq tag" tag;
    if block < 0 then invalid_arg "Storewire: negative block";
    let rl = rid_len () in
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + rl + plen) in
    Bytes.set b 0 (Char.chr op);
    set16 b 1 tag;
    set32 b 3 block;
    if rl > 0 then set32 b header_len (Trace.current ());
    Bytes.blit payload 0 b (header_len + rl) plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    let rl = rid_len () in
    if total < header_len + rl then Error "blkreq: truncated"
    else begin
      let op = Char.code (Bytes.get b 0) in
      if op < op_read || op > op_flush then Error "blkreq: bad op"
      else begin
        let tag = get16 b 1 and block = get32 b 3 in
        if rl > 0 then Trace.set_current (get32 b header_len);
        let payload = Bytes.sub b (header_len + rl) (total - header_len - rl) in
        copy_cost ctx (total - rl);
        Ok { op; tag; block; payload }
      end
    end
end

module Blkresp = struct
  type t = { tag : int; status : int; payload : bytes }

  let header_len = 3
  let status_ok = 0

  let build ctx ~tag ~status payload =
    check16 "blkresp tag" tag;
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen) in
    set16 b 0 tag;
    Bytes.set b 2 (Char.chr (status land 0xff));
    Bytes.blit payload 0 b header_len plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len then Error "blkresp: truncated"
    else begin
      let tag = get16 b 0 and status = Char.code (Bytes.get b 2) in
      let payload = Bytes.sub b header_len (total - header_len) in
      copy_cost ctx total;
      Ok { tag; status; payload }
    end
end

(* ------------------------------------------------------------------ *)
(* Log records: how the KV store serializes entries into the log.      *)
(* ------------------------------------------------------------------ *)

let rec_put = 1
let rec_del = 2

module Record = struct
  type t = { op : int; key : bytes; value : bytes }

  let header_len = 3

  let build ctx ~op ~key value =
    if op <> rec_put && op <> rec_del then invalid_arg "Storewire: bad record op";
    let klen = Bytes.length key in
    check16 "record key length" klen;
    let vlen = Bytes.length value in
    let b = Bytes.create (header_len + klen + vlen) in
    Bytes.set b 0 (Char.chr op);
    set16 b 1 klen;
    Bytes.blit key 0 b header_len klen;
    Bytes.blit value 0 b (header_len + klen) vlen;
    copy_cost ctx (header_len + klen + vlen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len then Error "record: truncated"
    else begin
      let op = Char.code (Bytes.get b 0) in
      if op <> rec_put && op <> rec_del then Error "record: bad op"
      else begin
        let klen = get16 b 1 in
        if total < header_len + klen then Error "record: truncated key"
        else begin
          let key = Bytes.sub b header_len klen in
          let value = Bytes.sub b (header_len + klen) (total - header_len - klen) in
          copy_cost ctx total;
          Ok { op; key; value }
        end
      end
    end
end

(* ------------------------------------------------------------------ *)
(* KV protocol over Pm_net ports.                                      *)
(* ------------------------------------------------------------------ *)

let kv_get = 1
let kv_put = 2
let kv_del = 3

module Kvmsg = struct
  type req = { op : int; key : bytes; value : bytes }

  let req_header_len = 3

  let build_req ctx ~op ~key value =
    if op < kv_get || op > kv_del then invalid_arg "Storewire: bad kv op";
    let klen = Bytes.length key in
    check16 "kv key length" klen;
    let rl = rid_len () in
    let vlen = Bytes.length value in
    let b = Bytes.create (req_header_len + rl + klen + vlen) in
    Bytes.set b 0 (Char.chr op);
    set16 b 1 klen;
    if rl > 0 then set32 b req_header_len (Trace.current ());
    Bytes.blit key 0 b (req_header_len + rl) klen;
    Bytes.blit value 0 b (req_header_len + rl + klen) vlen;
    copy_cost ctx (req_header_len + klen + vlen);
    b

  let parse_req ctx b =
    let total = Bytes.length b in
    let rl = rid_len () in
    if total < req_header_len + rl then Error "kv req: truncated"
    else begin
      let op = Char.code (Bytes.get b 0) in
      if op < kv_get || op > kv_del then Error "kv req: bad op"
      else begin
        let klen = get16 b 1 in
        if rl > 0 then Trace.set_current (get32 b req_header_len);
        if total < req_header_len + rl + klen then Error "kv req: truncated key"
        else begin
          let key = Bytes.sub b (req_header_len + rl) klen in
          let value =
            Bytes.sub b
              (req_header_len + rl + klen)
              (total - req_header_len - rl - klen)
          in
          copy_cost ctx (total - rl);
          Ok { op; key; value }
        end
      end
    end

  type resp = { status : int; payload : bytes }

  let resp_header_len = 1
  let status_ok = 0
  let status_not_found = 1
  let status_error = 2

  let build_resp ctx ~status payload =
    let rl = rid_len () in
    let plen = Bytes.length payload in
    let b = Bytes.create (resp_header_len + rl + plen) in
    Bytes.set b 0 (Char.chr (status land 0xff));
    if rl > 0 then set32 b resp_header_len (Trace.current ());
    Bytes.blit payload 0 b (resp_header_len + rl) plen;
    copy_cost ctx (resp_header_len + plen);
    b

  let parse_resp ctx b =
    let total = Bytes.length b in
    let rl = rid_len () in
    if total < resp_header_len + rl then Error "kv resp: truncated"
    else begin
      let status = Char.code (Bytes.get b 0) in
      if rl > 0 then Trace.set_current (get32 b resp_header_len);
      let payload =
        Bytes.sub b (resp_header_len + rl) (total - resp_header_len - rl)
      in
      copy_cost ctx (total - rl);
      Ok { status; payload }
    end
end
