(* Block device driver component: owns the Blkdev DMA descriptor ring
   and exports the standard "block" interface at the bottom of every
   storage stack.

   The driver allocates the descriptor ring and per-slot data buffers in
   its own domain, maps the register window through the I/O-space
   service, and turns completion interrupts into pop-up threads (the
   netdrv idiom). Single ops post one descriptor and wait; [read_many] /
   [write_many] keep up to the whole ring in flight, which is where the
   device's multiple-outstanding-DMA model pays off (bench E19). *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Vmem = Pm_nucleus.Vmem
module Events = Pm_nucleus.Events
module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Blkdev = Pm_machine.Blkdev
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx

(* Blkdev register map *)
let reg_ring_base = 0
let reg_ring_slots = 1
let reg_tail = 2
let reg_head = 3
let reg_ctrl = 4
let reg_status = 5
let reg_blocks = 6
let reg_block_size = 7

let ctrl_enable = 1
let ctrl_irq_enable = 2
let status_complete = 1

let desc_bytes = 16
let desc_done = 0x100
let desc_error = 0x200

(* the boot convention: the block device interrupts on line 3 *)
let irq_line = 3

type config = { ring_slots : int; io_sharing : Vmem.sharing }

let default_config = { ring_slots = 8; io_sharing = Vmem.Exclusive }

type state = {
  api : Api.t;
  dom : Domain.t;
  grant : Vmem.io_grant;
  ring_vaddr : int;
  ring_slots : int;
  buf_vaddrs : int array; (* one data buffer per ring slot *)
  buf_phys : int array;
  blocks : int;
  block_size : int;
  mutable tail : int; (* free-running producer index, mirrors the device *)
  mutable reads : int;
  mutable writes : int;
  mutable irq_acks : int;
}

let fault msg = Error (Oerror.Fault msg)

let in_domain st f =
  let mmu = Machine.mmu st.api.Api.machine in
  let prev = Mmu.current_context mmu in
  if prev = st.dom.Domain.id then f ()
  else begin
    Mmu.switch_context mmu st.dom.Domain.id;
    Fun.protect ~finally:(fun () -> Mmu.switch_context mmu prev) f
  end

(* Post one descriptor at the next ring slot; the caller ensures no more
   than [ring_slots] are outstanding. Returns the slot index used. *)
let post st ~op ~block ~slot_buf =
  let machine = st.api.Api.machine in
  let slot = st.tail mod st.ring_slots in
  let d = st.ring_vaddr + (slot * desc_bytes) in
  Machine.write32 machine st.dom.Domain.id d op;
  Machine.write32 machine st.dom.Domain.id (d + 4) block;
  Machine.write32 machine st.dom.Domain.id (d + 8) st.buf_phys.(slot_buf);
  st.tail <- st.tail + 1;
  Vmem.io_write st.api.Api.vmem st.grant ~reg:reg_tail st.tail;
  slot

let max_spins = 10_000

(* Wait until the descriptor in [slot] completes. Each STATUS poll lets
   the device progress (including the idle-until-ready clock jump), so
   this terminates after a couple of iterations. *)
let wait_slot st slot =
  let machine = st.api.Api.machine in
  let d = st.ring_vaddr + (slot * desc_bytes) in
  let rec spin n =
    if n > max_spins then fault "blkdrv: device never completed"
    else begin
      let cmd = Machine.read32 machine st.dom.Domain.id d in
      if cmd land desc_done <> 0 then begin
        Vmem.io_write st.api.Api.vmem st.grant ~reg:reg_status status_complete;
        if cmd land desc_error <> 0 then fault "blkdrv: device reported error"
        else Ok ()
      end
      else begin
        ignore (Vmem.io_read st.api.Api.vmem st.grant ~reg:reg_status);
        spin (n + 1)
      end
    end
  in
  spin 0

let ( let* ) = Result.bind

let check_block st block =
  if block < 0 || block >= st.blocks then
    fault (Printf.sprintf "blkdrv: block %d out of range" block)
  else Ok ()

let read_op st ctx block =
  let* () = check_block st block in
  in_domain st (fun () ->
      let slot_buf = st.tail mod st.ring_slots in
      let slot = post st ~op:Storewire.op_read ~block ~slot_buf in
      let* () = wait_slot st slot in
      let data =
        Machine.read_string st.api.Api.machine st.dom.Domain.id
          st.buf_vaddrs.(slot_buf) st.block_size
      in
      Call_ctx.note_access ctx st.block_size;
      st.reads <- st.reads + 1;
      Ok (Bytes.of_string data))

let write_op st ctx block data =
  let* () = check_block st block in
  if Bytes.length data > st.block_size then fault "blkdrv: write exceeds block size"
  else
    in_domain st (fun () ->
        let slot_buf = st.tail mod st.ring_slots in
        let padded = Bytes.make st.block_size '\000' in
        Bytes.blit data 0 padded 0 (Bytes.length data);
        Machine.write_string st.api.Api.machine st.dom.Domain.id
          st.buf_vaddrs.(slot_buf)
          (Bytes.to_string padded);
        Call_ctx.note_access ctx st.block_size;
        let slot = post st ~op:Storewire.op_write ~block ~slot_buf in
        let* () = wait_slot st slot in
        st.writes <- st.writes + 1;
        Ok ())

(* Batched ops: post a whole window of descriptors before waiting, so up
   to [ring_slots] DMAs are in flight; completion is in-order, so
   waiting on the window's last slot completes the window. *)
let read_many st ctx bs =
  in_domain st (fun () ->
      let results = ref [] in
      let rec window = function
        | [] -> Ok ()
        | chunk_blocks ->
          let chunk, rest =
            let rec split n acc = function
              | x :: tl when n > 0 -> split (n - 1) (x :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            split st.ring_slots [] chunk_blocks
          in
          let* posted =
            List.fold_left
              (fun acc block ->
                let* acc = acc in
                let* () = check_block st block in
                let slot_buf = st.tail mod st.ring_slots in
                let slot = post st ~op:Storewire.op_read ~block ~slot_buf in
                Ok ((slot, slot_buf) :: acc))
              (Ok []) chunk
          in
          let posted = List.rev posted in
          (match List.rev posted with
          | [] -> Ok ()
          | (last_slot, _) :: _ ->
            let* () = wait_slot st last_slot in
            List.iter
              (fun (_, slot_buf) ->
                let data =
                  Machine.read_string st.api.Api.machine st.dom.Domain.id
                    st.buf_vaddrs.(slot_buf) st.block_size
                in
                Call_ctx.note_access ctx st.block_size;
                st.reads <- st.reads + 1;
                results := Bytes.of_string data :: !results)
              posted;
            window rest)
      in
      let* () = window bs in
      Ok (List.rev !results))

let write_many st ctx pairs =
  in_domain st (fun () ->
      let rec window = function
        | [] -> Ok 0
        | chunk_pairs ->
          let chunk, rest =
            let rec split n acc = function
              | x :: tl when n > 0 -> split (n - 1) (x :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            split st.ring_slots [] chunk_pairs
          in
          let* posted =
            List.fold_left
              (fun acc (block, data) ->
                let* acc = acc in
                let* () = check_block st block in
                if Bytes.length data > st.block_size then
                  fault "blkdrv: write exceeds block size"
                else begin
                  let slot_buf = st.tail mod st.ring_slots in
                  let padded = Bytes.make st.block_size '\000' in
                  Bytes.blit data 0 padded 0 (Bytes.length data);
                  Machine.write_string st.api.Api.machine st.dom.Domain.id
                    st.buf_vaddrs.(slot_buf)
                    (Bytes.to_string padded);
                  Call_ctx.note_access ctx st.block_size;
                  let slot = post st ~op:Storewire.op_write ~block ~slot_buf in
                  Ok (slot :: acc)
                end)
              (Ok []) chunk
          in
          (match posted with
          | [] -> Ok 0
          | last_slot :: _ ->
            let* () = wait_slot st last_slot in
            st.writes <- st.writes + List.length posted;
            let* n = window rest in
            Ok (List.length posted + n))
      in
      window pairs)

(* The device writes through to the media at DMA completion, so flushing
   is waiting for the ring to drain. *)
let flush_op st _ctx =
  in_domain st (fun () ->
      let rec spin n =
        if n > max_spins then fault "blkdrv: flush never drained"
        else begin
          let head = Vmem.io_read st.api.Api.vmem st.grant ~reg:reg_head in
          if head >= st.tail then Ok 0
          else begin
            ignore (Vmem.io_read st.api.Api.vmem st.grant ~reg:reg_status);
            spin (n + 1)
          end
        end
      in
      spin 0)

let create api dom ?(config = default_config) () =
  if config.ring_slots <= 0 then invalid_arg "Blkdrv.create: need ring slots";
  let vmem = api.Api.vmem in
  let machine = api.Api.machine in
  let grant = Vmem.alloc_io vmem dom ~device:"blkdev" ~sharing:config.io_sharing in
  let page_size = Machine.page_size machine in
  let blocks = Vmem.io_read vmem grant ~reg:reg_blocks in
  let block_size = Vmem.io_read vmem grant ~reg:reg_block_size in
  if config.ring_slots * desc_bytes > page_size then
    invalid_arg "Blkdrv.create: ring exceeds one page";
  let ring_vaddr = Vmem.alloc_pages vmem dom ~count:1 ~sharing:Vmem.Exclusive in
  (* per-slot data buffers, packed into as few pages as needed; a buffer
     never straddles pages while block_size divides page_size *)
  let per_page = max 1 (page_size / block_size) in
  let pages_needed = (config.ring_slots + per_page - 1) / per_page in
  let page_vaddrs =
    Array.init pages_needed (fun _ ->
        Vmem.alloc_pages vmem dom ~count:1 ~sharing:Vmem.Exclusive)
  in
  let buf_vaddrs =
    Array.init config.ring_slots (fun i ->
        page_vaddrs.(i / per_page) + (i mod per_page * block_size))
  in
  let st =
    {
      api;
      dom;
      grant;
      ring_vaddr;
      ring_slots = config.ring_slots;
      buf_vaddrs;
      buf_phys = Array.make config.ring_slots 0;
      blocks;
      block_size;
      tail = 0;
      reads = 0;
      writes = 0;
      irq_acks = 0;
    }
  in
  in_domain st (fun () ->
      Array.iteri
        (fun i vaddr ->
          let page_vaddr = vaddr - (vaddr mod page_size) in
          let page_phys = Vmem.phys_of vmem dom ~vaddr:page_vaddr in
          st.buf_phys.(i) <- page_phys + (vaddr mod page_size))
        buf_vaddrs;
      let ring_phys = Vmem.phys_of vmem dom ~vaddr:ring_vaddr in
      Vmem.io_write vmem grant ~reg:reg_ring_base ring_phys;
      Vmem.io_write vmem grant ~reg:reg_ring_slots config.ring_slots;
      Vmem.io_write vmem grant ~reg:reg_ctrl (ctrl_enable lor ctrl_irq_enable));
  (* completion interrupts become pop-up threads in the driver's domain;
     synchronous waiters see completion in the descriptor itself, so the
     pop-up only acknowledges whatever the waiter has not *)
  ignore
    (Events.register_popup api.Api.events (Events.Irq irq_line) ~domain:dom
       ~sched:api.Api.sched ~priority:0 (fun _ ->
         in_domain st (fun () ->
             let status = Vmem.io_read vmem st.grant ~reg:reg_status in
             if status land status_complete <> 0 then begin
               Vmem.io_write vmem st.grant ~reg:reg_status status_complete;
               st.irq_acks <- st.irq_acks + 1
             end)));
  let iface =
    Blockif.methods
      ~read:(fun ctx block ->
        Blockif.traced_span api "driver" (fun () -> read_op st ctx block))
      ~write:(fun ctx block data ->
        Blockif.traced_span api "driver" (fun () -> write_op st ctx block data))
      ~flush:(fun ctx -> Blockif.traced_span api "driver" (fun () -> flush_op st ctx))
      ~size:(fun _ctx -> Ok st.blocks)
      ~blocksize:(fun () -> st.block_size)
      ~stats:(fun () -> [ st.reads; st.writes; st.irq_acks ])
  in
  let read_many_m ctx = function
    | [ Value.List vs ] ->
      let* bs =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Value.Int b -> Ok (b :: acc)
            | _ -> Error (Oerror.Type_error "read_many(list int)"))
          (Ok []) vs
      in
      let* datas =
        Blockif.traced_span api "driver" (fun () -> read_many st ctx (List.rev bs))
      in
      Ok (Value.List (List.map (fun d -> Value.Blob d) datas))
    | _ -> Error (Oerror.Type_error "read_many(list int)")
  in
  let write_many_m ctx = function
    | [ Value.List vs ] ->
      let* pairs =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Value.Pair (Value.Int b, Value.Blob d) -> Ok ((b, d) :: acc)
            | _ -> Error (Oerror.Type_error "write_many(list (int, blob))"))
          (Ok []) vs
      in
      let* n =
        Blockif.traced_span api "driver" (fun () ->
            write_many st ctx (List.rev pairs))
      in
      Ok (Value.Int n)
    | _ -> Error (Oerror.Type_error "write_many(list (int, blob))")
  in
  let ring_iface =
    Iface.make ~name:"blkring"
      [
        Iface.meth ~name:"read_many" ~args:[ Vtype.Tlist Vtype.Tint ]
          ~ret:(Vtype.Tlist Vtype.Tblob) read_many_m;
        Iface.meth ~name:"write_many"
          ~args:[ Vtype.Tlist (Vtype.Tpair (Vtype.Tint, Vtype.Tblob)) ]
          ~ret:Vtype.Tint write_many_m;
      ]
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"store.blkdrv"
      ~domain:dom.Domain.id [ iface; ring_iface ]
  in
  ignore
    (Storereg.register ~machine ~name:"blkdrv" ~kind:Storereg.Driver ~instance:inst
       ~domain:dom.Domain.id ());
  inst
