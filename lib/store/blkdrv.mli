(** Block device driver: bottom of every storage stack.

    Owns the {!Pm_machine.Blkdev} DMA descriptor ring — ring page and
    per-slot data buffers allocated in the driver's domain, registers
    mapped through the I/O-space service — and exports the standard
    ["block"] interface ({!Blockif}) plus a batch ["blkring"] interface
    ([read_many]/[write_many] : list -> list) that keeps up to the whole
    ring in flight. Completion interrupts (line 3) arrive as pop-up
    threads; synchronous waiters poll the descriptor done bit, each
    STATUS read letting the simulated device make progress. *)

type config = {
  ring_slots : int;  (** descriptor ring depth (fits one page) *)
  io_sharing : Pm_nucleus.Vmem.sharing;
}

val default_config : config

(** [create api dom ~config ()] attaches to the machine's block device,
    programs the ring, installs the interrupt pop-up, registers in
    {!Storereg} as [Driver], and returns the instance exporting
    ["block"] and ["blkring"]. *)
val create :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  ?config:config ->
  unit ->
  Pm_obj.Instance.t
