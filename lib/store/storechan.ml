(* Channel-backed block path: how a client domain reaches a storage
   component living in another domain without a proxy fault per call.

   One MPSC request group feeds the store domain (every client attaches
   a producer handle — the same shape as the net transmit path) and each
   client gets its own SPSC response ring back. Requests and responses
   are {!Storewire.Blkreq}/{!Storewire.Blkresp} frames; the response is
   routed by the request tag, whose high byte is the client id. The
   client-side proxy exports the ordinary "block" interface, so a whole
   remote stack composes under a local partition, cache, or log exactly
   like an in-domain component. *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Instance = Pm_obj.Instance
module Oerror = Pm_obj.Oerror
module Chan = Pm_chan.Chan
module Mpsc = Pm_chan.Mpsc
module Scheduler = Pm_threads.Scheduler

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

type t = {
  api : Api.t;
  serve_dom : Domain.t;
  target : Blockif.lower;
  reqs : Mpsc.t;
  rings : (int, Chan.t) Hashtbl.t; (* client id -> response ring *)
  mutable next_client : int;
  mutable served : int;
  mutable bad : int;
  mutable resp_dropped : int;
}

let serve_one t ctx msg =
  match Storewire.Blkreq.parse ctx msg with
  | Error _ -> t.bad <- t.bad + 1
  | Ok { Storewire.Blkreq.op; tag; block; payload } -> (
    let client = tag lsr 8 in
    match Hashtbl.find_opt t.rings client with
    | None -> t.bad <- t.bad + 1
    | Some ring ->
      let status, rpayload =
        if op = Storewire.op_read then
          match Blockif.read t.target ctx block with
          | Ok data -> (Storewire.Blkresp.status_ok, data)
          | Error _ -> (1, Bytes.empty)
        else if op = Storewire.op_write then
          match Blockif.write t.target ctx block payload with
          | Ok () -> (Storewire.Blkresp.status_ok, Bytes.empty)
          | Error _ -> (1, Bytes.empty)
        else
          match Blockif.flush t.target ctx with
          | Ok n ->
            let b = Bytes.create 4 in
            Storewire.set32 b 0 n;
            (Storewire.Blkresp.status_ok, b)
          | Error _ -> (1, Bytes.empty)
      in
      t.served <- t.served + 1;
      let resp = Storewire.Blkresp.build ctx ~tag ~status rpayload in
      if not (Chan.send_or_drop ~account:false ring resp) then
        t.resp_dropped <- t.resp_dropped + 1)

let drain t =
  let ctx = Api.ctx t.api t.serve_dom in
  let msgs = Mpsc.recv_batch ~account:false t.reqs () in
  List.iter (serve_one t ctx) msgs;
  List.length msgs

let create_server api serve_dom ~target ?(slots = 32) ?(slot_size = 576) () =
  let t =
    {
      api;
      serve_dom;
      target = Blockif.make_lower api serve_dom target;
      reqs =
        Mpsc.create api.Api.machine api.Api.vmem ~name:"store.req" ~slots
          ~slot_size ~consumer:serve_dom ();
      rings = Hashtbl.create 8;
      next_client = 0;
      served = 0;
      bad = 0;
      resp_dropped = 0;
    }
  in
  ignore
    (Mpsc.on_doorbell t.reqs ~events:api.Api.events ~sched:api.Api.sched
       (fun () -> ignore (drain t)));
  t

let served t = t.served
let bad t = t.bad

let max_polls = 10_000

(* [connect t ~name ~client ()] gives [client] a "block" proxy onto the
   server's target. Geometry (size/blocksize) is snapshotted at connect
   time from the server side; data ops round-trip through the rings. *)
let connect t ~name ~client ?(slots = 32) ?(slot_size = 576) () =
  let api = t.api in
  let id = t.next_client in
  t.next_client <- t.next_client + 1;
  if id > 0xff then invalid_arg "Storechan.connect: too many clients";
  let ring =
    Chan.create api.Api.machine api.Api.vmem
      ~name:(Printf.sprintf "store.resp.%d" id)
      ~slots ~slot_size ~mode:Chan.Poll ~producer:t.serve_dom ()
  in
  ignore (Chan.accept ring ~into:client);
  (* clients may be pinned anywhere; price cross-CPU responses honestly *)
  Chan.set_cacheline_priced ring true;
  Hashtbl.replace t.rings id ring;
  let txh = Mpsc.attach t.reqs ~producer:client in
  let sctx = Api.ctx api t.serve_dom in
  let size =
    match Blockif.size t.target sctx with Ok n -> n | Error _ -> 0
  in
  let blocksize =
    match Blockif.blocksize t.target sctx with Ok n -> n | Error _ -> 512
  in
  let pending : (int, int * bytes) Hashtbl.t = Hashtbl.create 8 in
  let next_seq = ref 0 in
  let reqs = ref 0 and polls = ref 0 and drops = ref 0 and stale = ref 0 in
  (* The proxy is synchronous: exactly one tag is awaited at a time, and
     the sequence byte wraps every 256 requests. A response for any other
     tag belongs to a roundtrip that already timed out — stashing it
     would let a future request with the same (wrapped) tag consume old
     data, so drop it on the floor. *)
  let stash ctx ~want =
    List.iter
      (fun msg ->
        match Storewire.Blkresp.parse ctx msg with
        | Ok { Storewire.Blkresp.tag; status; payload } ->
          if tag = want then Hashtbl.replace pending tag (status, payload)
          else incr stale
        | Error _ -> ())
      (Chan.recv_batch ~account:false ring ())
  in
  let roundtrip ctx ~op ~block payload =
    let tag = (id lsl 8) lor (!next_seq land 0xff) in
    next_seq := !next_seq + 1;
    incr reqs;
    let req = Storewire.Blkreq.build ctx ~op ~tag ~block payload in
    if not (Mpsc.send_or_drop ~account:false txh req) then begin
      incr drops;
      fault "storechan: request ring full"
    end
    else begin
      let rec await n =
        match Hashtbl.find_opt pending tag with
        | Some (status, rpayload) ->
          Hashtbl.remove pending tag;
          if status = Storewire.Blkresp.status_ok then Ok rpayload
          else fault "storechan: remote block error"
        | None ->
          if n >= max_polls then fault "storechan: timed out awaiting response"
          else begin
            incr polls;
            stash ctx ~want:tag;
            if not (Hashtbl.mem pending tag) then Scheduler.yield ();
            await (n + 1)
          end
      in
      await 0
    end
  in
  let iface =
    Blockif.methods
      ~read:(fun ctx block ->
        roundtrip ctx ~op:Storewire.op_read ~block Bytes.empty)
      ~write:(fun ctx block data ->
        let* _ = roundtrip ctx ~op:Storewire.op_write ~block data in
        Ok ())
      ~flush:(fun ctx ->
        let* r = roundtrip ctx ~op:Storewire.op_flush ~block:0 Bytes.empty in
        if Bytes.length r >= 4 then Ok (Storewire.get32 r 0) else Ok 0)
      ~size:(fun _ctx -> Ok size)
      ~blocksize:(fun () -> blocksize)
      ~stats:(fun () -> [ !reqs; !polls; !drops; !stale ])
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"store.proxy"
      ~domain:client.Domain.id [ iface ]
  in
  ignore
    (Storereg.register ~machine:api.Api.machine ~name ~kind:Storereg.Proxy
       ~lower:(Pm_names.Path.to_string t.target.Blockif.path)
       ~instance:inst ~domain:client.Domain.id ());
  inst
