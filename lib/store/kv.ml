(* Key-value store: the first whole-system workload.

   State model: every mutation is appended to the lower log as a
   {!Storewire.Record} (put or tombstone), and an in-memory index maps
   key -> log sequence number. [recover] replays the log front-to-back
   to rebuild the index — the log is the store, the index is a cache of
   it. Durability = [flush], which pushes the log's superblock and the
   cache's dirty blocks down to the device.

   [serve] exports the store over the channel-backed network path: a
   {!Pm_net.Netstack_chan} port ring on the receive side, the shared
   transmit group on the send side, requests and responses framed by
   {!Storewire.Kvmsg}. One pop-up thread per doorbell drains the ring —
   net + chan + store + vm + scheduler in a single request path. *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Call_ctx = Pm_obj.Call_ctx
module Chan = Pm_chan.Chan
module Netstack_chan = Pm_net.Netstack_chan
module Netwire = Pm_net.Netwire

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

type state = {
  log : Blockif.lower; (* resolved by path; invoked via iface "log" *)
  index : (string, int) Hashtbl.t;
  mutable puts : int;
  mutable gets : int;
  mutable dels : int;
  mutable recovers : int;
}

let log_call st ctx meth args =
  let* t = Blockif.resolve st.log in
  Invoke.call ctx t ~iface:"log" ~meth args

let append_record st ctx ~op ~key value =
  let rec_bytes = Storewire.Record.build ctx ~op ~key value in
  match log_call st ctx "append" [ Value.Blob rec_bytes ] with
  | Ok (Value.Int seq) -> Ok seq
  | Ok _ -> fault "kv: log append returned non-int"
  | Error e -> Error e

let put_op st ctx ~key ~value =
  let* seq = append_record st ctx ~op:Storewire.rec_put ~key value in
  Hashtbl.replace st.index (Bytes.to_string key) seq;
  st.puts <- st.puts + 1;
  Ok seq

let get_op st ctx ~key =
  st.gets <- st.gets + 1;
  match Hashtbl.find_opt st.index (Bytes.to_string key) with
  | None -> Ok None
  | Some seq ->
    let* v = log_call st ctx "get" [ Value.Int seq ] in
    (match v with
    | Value.Blob rec_bytes ->
      let* r =
        Storewire.Record.parse ctx rec_bytes
        |> Result.map_error (fun e -> Oerror.Fault ("kv: " ^ e))
      in
      Ok (Some r.Storewire.Record.value)
    | _ -> fault "kv: log get returned non-blob")

let del_op st ctx ~key =
  let skey = Bytes.to_string key in
  let existed = Hashtbl.mem st.index skey in
  let* _ = append_record st ctx ~op:Storewire.rec_del ~key Bytes.empty in
  Hashtbl.remove st.index skey;
  st.dels <- st.dels + 1;
  Ok existed

let recover_op st ctx =
  let* _ = log_call st ctx "recover" [] in
  let* entries =
    match log_call st ctx "entries" [] with
    | Ok (Value.Int n) -> Ok n
    | Ok _ -> fault "kv: entries returned non-int"
    | Error e -> Error e
  in
  Hashtbl.reset st.index;
  let rec replay i =
    if i >= entries then Ok ()
    else
      let* v = log_call st ctx "get" [ Value.Int i ] in
      match v with
      | Value.Blob rec_bytes ->
        let* r =
          Storewire.Record.parse ctx rec_bytes
          |> Result.map_error (fun e -> Oerror.Fault ("kv: " ^ e))
        in
        let skey = Bytes.to_string r.Storewire.Record.key in
        if r.Storewire.Record.op = Storewire.rec_del then
          Hashtbl.remove st.index skey
        else Hashtbl.replace st.index skey i;
        replay (i + 1)
      | _ -> fault "kv: log get returned non-blob"
  in
  let* () = replay 0 in
  st.recovers <- st.recovers + 1;
  Ok (Hashtbl.length st.index)

let flush_op st ctx =
  (* the log's uniform block view forwards flush down the whole stack *)
  Blockif.flush st.log ctx

let create api dom ~name ~log () =
  let st =
    {
      log = Blockif.make_lower api dom log;
      index = Hashtbl.create 64;
      puts = 0;
      gets = 0;
      dels = 0;
      recovers = 0;
    }
  in
  let put_m ctx = function
    | [ Value.Blob key; Value.Blob value ] ->
      let* seq = put_op st ctx ~key ~value in
      Ok (Value.Int seq)
    | _ -> Error (Oerror.Type_error "put(key, value)")
  in
  let get_m ctx = function
    | [ Value.Blob key ] -> (
      let* v = get_op st ctx ~key in
      match v with
      | Some value -> Ok (Value.Pair (Value.Bool true, Value.Blob value))
      | None -> Ok (Value.Pair (Value.Bool false, Value.Blob Bytes.empty)))
    | _ -> Error (Oerror.Type_error "get(key)")
  in
  let del_m ctx = function
    | [ Value.Blob key ] ->
      let* existed = del_op st ctx ~key in
      Ok (Value.Bool existed)
    | _ -> Error (Oerror.Type_error "del(key)")
  in
  let count_m _ctx = function
    | [] -> Ok (Value.Int (Hashtbl.length st.index))
    | _ -> Error (Oerror.Type_error "count()")
  in
  let flush_m ctx = function
    | [] ->
      let* n = flush_op st ctx in
      Ok (Value.Int n)
    | _ -> Error (Oerror.Type_error "flush()")
  in
  let recover_m ctx = function
    | [] ->
      let* n = recover_op st ctx in
      Ok (Value.Int n)
    | _ -> Error (Oerror.Type_error "recover()")
  in
  let stats_m _ctx = function
    | [] ->
      Ok
        (Value.List
           (List.map
              (fun n -> Value.Int n)
              [ st.puts; st.gets; st.dels; st.recovers ]))
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let iface =
    Iface.make ~name:"kv"
      [
        Iface.meth ~name:"put" ~args:[ Vtype.Tblob; Vtype.Tblob ] ~ret:Vtype.Tint
          put_m;
        Iface.meth ~name:"get" ~args:[ Vtype.Tblob ]
          ~ret:(Vtype.Tpair (Vtype.Tbool, Vtype.Tblob))
          get_m;
        Iface.meth ~name:"del" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tbool del_m;
        Iface.meth ~name:"count" ~args:[] ~ret:Vtype.Tint count_m;
        Iface.meth ~name:"flush" ~args:[] ~ret:Vtype.Tint flush_m;
        Iface.meth ~name:"recover" ~args:[] ~ret:Vtype.Tint recover_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
      ]
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"store.kv"
      ~domain:dom.Domain.id [ iface ]
  in
  ignore
    (Storereg.register ~machine:api.Api.machine ~name ~kind:Storereg.Kv ~lower:log
       ~instance:inst ~domain:dom.Domain.id ());
  inst

(* ------------------------------------------------------------------ *)
(* Network service: KV over the channel-backed net path                 *)
(* ------------------------------------------------------------------ *)

type server = {
  port : int;
  mutable requests : int;
  mutable bad : int;
  mutable replies_dropped : int;
}

let exec_request kv ctx (req : Storewire.Kvmsg.req) =
  let open Storewire in
  if req.Kvmsg.op = kv_get then
    match
      Invoke.call ctx kv ~iface:"kv" ~meth:"get" [ Value.Blob req.Kvmsg.key ]
    with
    | Ok (Value.Pair (Value.Bool true, Value.Blob v)) -> (Kvmsg.status_ok, v)
    | Ok _ -> (Kvmsg.status_not_found, Bytes.empty)
    | Error _ -> (Kvmsg.status_error, Bytes.empty)
  else if req.Kvmsg.op = kv_put then
    match
      Invoke.call ctx kv ~iface:"kv" ~meth:"put"
        [ Value.Blob req.Kvmsg.key; Value.Blob req.Kvmsg.value ]
    with
    | Ok _ -> (Kvmsg.status_ok, Bytes.empty)
    | Error _ -> (Kvmsg.status_error, Bytes.empty)
  else
    match
      Invoke.call ctx kv ~iface:"kv" ~meth:"del" [ Value.Blob req.Kvmsg.key ]
    with
    | Ok (Value.Bool true) -> (Kvmsg.status_ok, Bytes.empty)
    | Ok _ -> (Kvmsg.status_not_found, Bytes.empty)
    | Error _ -> (Kvmsg.status_error, Bytes.empty)

(* [serve api dom ~kv ~net ~port ()] binds [port]'s receive ring to
   [dom] and answers every request with a response sent back through
   the shared transmit group. *)
let serve api dom ~kv ~net ~port () =
  let* chan =
    Netstack_chan.bind net ~port ~owner:dom ()
    |> Result.map_error (fun e -> Oerror.Fault e)
  in
  let txh = Netstack_chan.attach_tx net ~producer:dom in
  let srv = { port; requests = 0; bad = 0; replies_dropped = 0 } in
  let drain () =
    let ctx = Api.ctx api dom in
    List.iter
      (fun msg ->
        match Netwire.Delivery.parse ctx msg with
        | Error _ -> srv.bad <- srv.bad + 1
        | Ok { Netwire.Delivery.src; sport; payload } ->
          (* server-side work is the request's "kv" span: decode, store
             invocation (log/cache/... spans nest inside), response *)
          Blockif.traced_span api "kv" (fun () ->
              match Storewire.Kvmsg.parse_req ctx payload with
              | Error _ -> srv.bad <- srv.bad + 1
              | Ok req ->
                srv.requests <- srv.requests + 1;
                let status, rpayload = exec_request kv ctx req in
                let resp = Storewire.Kvmsg.build_resp ctx ~status rpayload in
                if
                  not
                    (Netstack_chan.submit txh ctx ~dst:src ~sport:port
                       ~dport:sport resp)
                then srv.replies_dropped <- srv.replies_dropped + 1))
      (Chan.recv_batch ~account:false chan ())
  in
  ignore
    (Chan.on_doorbell chan ~events:api.Api.events ~sched:api.Api.sched (fun () ->
         drain ()));
  Ok (srv, drain)
