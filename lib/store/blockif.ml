(* The one interface every storage component exports — the contract that
   makes the stack compositional: anything speaking "block" can sit
   under a partition, a cache, a log, or a channel proxy, and anything
   can be interposed on the path by name.

   iface "block":
   - read(block:int) -> blob
   - write(block:int, data:blob) -> unit
   - flush() -> int        (blocks pushed down to durable state)
   - size() -> int         (capacity in blocks)
   - blocksize() -> int
   - stats() -> list int   (component-specific counters) *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Path = Pm_names.Path

let iface_name = "block"

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

(* Lower-layer resolution by name, re-bound when the target is revoked —
   the stack's driver idiom. Resolving by path (not by captured handle)
   is what makes every layer individually interposable: replace the name
   and the component above follows it on the next call. *)
type lower = {
  api : Api.t;
  dom : Domain.t;
  path : Path.t;
  mutable target : Instance.t option;
}

let make_lower api dom path =
  { api; dom; path = Path.of_string path; target = None }

let resolve l =
  match l.target with
  | Some t when not t.Instance.revoked -> Ok t
  | _ ->
    (match Api.bind l.api l.dom l.path with
    | Ok t ->
      l.target <- Some t;
      Ok t
    | Error e ->
      fault
        (Printf.sprintf "block: lower %s unresolvable (%s)"
           (Path.to_string l.path)
           (Pm_nucleus.Directory.bind_error_to_string e)))

let call l ctx meth args =
  let* t = resolve l in
  Invoke.call ctx t ~iface:iface_name ~meth args

let read l ctx block =
  match call l ctx "read" [ Value.Int block ] with
  | Ok (Value.Blob b) -> Ok b
  | Ok _ -> fault "block: read returned non-blob"
  | Error e -> Error e

let write l ctx block data =
  let* _ = call l ctx "write" [ Value.Int block; Value.Blob data ] in
  Ok ()

let flush l ctx =
  match call l ctx "flush" [] with
  | Ok (Value.Int n) -> Ok n
  | Ok _ -> fault "block: flush returned non-int"
  | Error e -> Error e

let int_query l ctx meth =
  match call l ctx meth [] with
  | Ok (Value.Int n) -> Ok n
  | Ok _ -> fault ("block: " ^ meth ^ " returned non-int")
  | Error e -> Error e

let size l ctx = int_query l ctx "size"
let blocksize l ctx = int_query l ctx "blocksize"

(* Build the six standard methods from component callbacks. *)
let methods ~read:read_f ~write:write_f ~flush:flush_f ~size:size_f
    ~blocksize:blocksize_f ~stats:stats_f =
  let read_m ctx = function
    | [ Value.Int block ] ->
      let* data = read_f ctx block in
      Ok (Value.Blob data)
    | _ -> Error (Oerror.Type_error "read(int)")
  in
  let write_m ctx = function
    | [ Value.Int block; Value.Blob data ] ->
      let* () = write_f ctx block data in
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "write(int, blob)")
  in
  let flush_m ctx = function
    | [] ->
      let* n = flush_f ctx in
      Ok (Value.Int n)
    | _ -> Error (Oerror.Type_error "flush()")
  in
  let size_m ctx = function
    | [] ->
      let* n = size_f ctx in
      Ok (Value.Int n)
    | _ -> Error (Oerror.Type_error "size()")
  in
  let blocksize_m _ctx = function
    | [] -> Ok (Value.Int (blocksize_f ()))
    | _ -> Error (Oerror.Type_error "blocksize()")
  in
  let stats_m _ctx = function
    | [] -> Ok (Value.List (List.map (fun n -> Value.Int n) (stats_f ())))
    | _ -> Error (Oerror.Type_error "stats()")
  in
  Iface.make ~name:iface_name
    [
      Iface.meth ~name:"read" ~args:[ Vtype.Tint ] ~ret:Vtype.Tblob read_m;
      Iface.meth ~name:"write" ~args:[ Vtype.Tint; Vtype.Tblob ] ~ret:Vtype.Tunit
        write_m;
      Iface.meth ~name:"flush" ~args:[] ~ret:Vtype.Tint flush_m;
      Iface.meth ~name:"size" ~args:[] ~ret:Vtype.Tint size_m;
      Iface.meth ~name:"blocksize" ~args:[] ~ret:Vtype.Tint blocksize_m;
      Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
    ]

(* ------------------------------------------------------------------ *)
(* Causal-tracing spans: every storage layer brackets its entry points *)
(* with these. Plain journal stores, gated on Trace.enabled — zero     *)
(* simulated cycles either way, and zero events when tracing is off.   *)
(* ------------------------------------------------------------------ *)

module Trace = Pm_journal.Trace
module Journal = Pm_journal.Journal

let journal_of (api : Api.t) =
  Pm_obs.Obs.journal (Pm_machine.Clock.obs (Pm_machine.Machine.clock api.Api.machine))

let jot api ~kind ~info ~detail =
  let clock = Pm_machine.Machine.clock api.Api.machine in
  Journal.record (journal_of api) ~kind ~domain:0
    ~at:(Pm_machine.Clock.now clock) ~info ~detail

(* [traced_span api layer f] wraps one layer crossing of the current
   request in Span_enter/Span_exit events; the exit fires even when [f]
   fails, so span trees stay balanced on error paths. *)
let traced_span api layer f =
  if not (Trace.enabled ()) then f ()
  else begin
    jot api ~kind:Journal.Span_enter ~info:0 ~detail:layer;
    Fun.protect
      ~finally:(fun () -> jot api ~kind:Journal.Span_exit ~info:0 ~detail:layer)
      f
  end

(* Point annotation on the current request: cache hit/miss, log append,
   port demux. *)
let traced_note api ~info detail =
  if Trace.enabled () then jot api ~kind:Journal.Trace_note ~info ~detail
