(* Write-back block cache: the stack's performance layer and its most
   interesting policy component.

   - Hits are served from domain memory: one [Call_ctx.access] charge of
     a block's bytes, no trip to the layers below (bench E19 asserts the
     gap against the raw device path).
   - Misses read through the lower layer and insert; when the cache is
     at capacity the least-recently-used block is evicted, writing it
     back first if dirty.
   - Writes dirty the cached copy only. [flush] pushes every dirty block
     down in ascending block order (determinism), journals a
     [Cache_flush] event and then forwards the flush to the lower layer
     so durability reaches the device.

   The composition linter insists a cache sits *above* its log or
   partition: a cache below a log would absorb the log's writes and
   silently break the log's durability story. *)

module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Clock = Pm_machine.Clock
module Journal = Pm_journal.Journal
module Obs = Pm_obs.Obs
module Instance = Pm_obj.Instance
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx

let fault msg = Error (Oerror.Fault msg)
let ( let* ) = Result.bind

type line = { mutable data : bytes; mutable dirty : bool; mutable last_use : int }

type state = {
  api : Api.t;
  lower : Blockif.lower;
  capacity : int;
  block_size : int;
  lines : (int, line) Hashtbl.t;
  mutable stamp : int; (* logical LRU clock, bumped per touch *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let touch st line =
  st.stamp <- st.stamp + 1;
  line.last_use <- st.stamp

let dirty_count st =
  Hashtbl.fold (fun _ l n -> if l.dirty then n + 1 else n) st.lines 0

(* Pick the least-recently-used block; ties (impossible: stamps are
   unique) and iteration order do not matter for the result. *)
let lru_victim st =
  Hashtbl.fold
    (fun block l acc ->
      match acc with
      | Some (_, best) when best.last_use <= l.last_use -> acc
      | _ -> Some (block, l))
    st.lines None

let writeback st ctx block line =
  let* () = Blockif.write st.lower ctx block line.data in
  line.dirty <- false;
  st.writebacks <- st.writebacks + 1;
  Ok ()

let evict_if_full st ctx =
  if Hashtbl.length st.lines < st.capacity then Ok ()
  else
    match lru_victim st with
    | None -> Ok ()
    | Some (block, line) ->
      let* () = if line.dirty then writeback st ctx block line else Ok () in
      Hashtbl.remove st.lines block;
      st.evictions <- st.evictions + 1;
      Ok ()

let lookup st ctx block =
  match Hashtbl.find_opt st.lines block with
  | Some line ->
    st.hits <- st.hits + 1;
    Blockif.traced_note st.api ~info:block "cache-hit";
    touch st line;
    Ok line
  | None ->
    st.misses <- st.misses + 1;
    Blockif.traced_note st.api ~info:block "cache-miss";
    let* data = Blockif.read st.lower ctx block in
    let* () = evict_if_full st ctx in
    let line = { data; dirty = false; last_use = 0 } in
    touch st line;
    Hashtbl.add st.lines block line;
    Ok line

let read_op st ctx block =
  let* line = lookup st ctx block in
  Call_ctx.access ctx st.block_size;
  Ok (Bytes.copy line.data)

let write_op st ctx block data =
  if Bytes.length data > st.block_size then fault "cache: write exceeds block size"
  else begin
    let padded = Bytes.make st.block_size '\000' in
    Bytes.blit data 0 padded 0 (Bytes.length data);
    Call_ctx.access ctx st.block_size;
    match Hashtbl.find_opt st.lines block with
    | Some line ->
      st.hits <- st.hits + 1;
      Blockif.traced_note st.api ~info:block "cache-hit";
      touch st line;
      line.data <- padded;
      line.dirty <- true;
      Ok ()
    | None ->
      st.misses <- st.misses + 1;
      Blockif.traced_note st.api ~info:block "cache-miss";
      let* () = evict_if_full st ctx in
      let line = { data = padded; dirty = true; last_use = 0 } in
      touch st line;
      Hashtbl.add st.lines block line;
      Ok ()
  end

let flush_op st ctx =
  let dirty =
    Hashtbl.fold (fun b l acc -> if l.dirty then (b, l) :: acc else acc) st.lines []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let* () =
    List.fold_left
      (fun acc (block, line) ->
        let* () = acc in
        writeback st ctx block line)
      (Ok ()) dirty
  in
  let n = List.length dirty in
  let clock = Pm_machine.Machine.clock st.api.Api.machine in
  Journal.record (Obs.journal (Clock.obs clock)) ~kind:Journal.Cache_flush
    ~domain:0 ~at:(Clock.now clock) ~info:n ~detail:"";
  Clock.count clock "cache_flush";
  let* _ = Blockif.flush st.lower ctx in
  Ok n

let create api dom ~name ~lower ~capacity ?(block_size = 512) () =
  if capacity <= 0 then invalid_arg "Cache.create: need capacity";
  let st =
    {
      api;
      lower = Blockif.make_lower api dom lower;
      capacity;
      block_size;
      lines = Hashtbl.create (2 * capacity);
      stamp = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      writebacks = 0;
    }
  in
  let iface =
    Blockif.methods
      ~read:(fun ctx block ->
        Blockif.traced_span api "cache" (fun () -> read_op st ctx block))
      ~write:(fun ctx block data ->
        Blockif.traced_span api "cache" (fun () -> write_op st ctx block data))
      ~flush:(fun ctx -> Blockif.traced_span api "cache" (fun () -> flush_op st ctx))
      (* size is the lower layer's: the cache holds [capacity] *lines*
         but stores no blocks of its own, so a layer above (the log's
         capacity computation, say) must see the real device geometry,
         not the line count. The line capacity is in stats. *)
      ~size:(fun ctx -> Blockif.size st.lower ctx)
      ~blocksize:(fun () -> st.block_size)
      ~stats:(fun () ->
        [ st.hits; st.misses; st.evictions; st.writebacks; dirty_count st;
          st.capacity ])
  in
  let inst =
    Instance.create api.Api.registry ~class_name:"store.cache"
      ~domain:dom.Domain.id [ iface ]
  in
  ignore
    (Storereg.register ~machine:api.Api.machine ~name ~kind:Storereg.Cache ~lower
       ~instance:inst ~domain:dom.Domain.id
       ~dirty:(fun () -> dirty_count st)
       ());
  inst
