(** Registry of live storage components, keyed by machine.

    Every {!Pm_store} component registers itself here at creation, the
    {!Store_svc} factory records where it is bound, and the composition
    linter walks the table ([iter_all], the {!Pm_chan.Chan.iter_all}
    idiom) to audit storage composition: a write-back cache must sit
    above — not below — its log/partition, and no [/store] endpoint may
    stay bound after its component detaches. Plain OCaml state; reading
    charges no simulated cycles. *)

type kind = Driver | Partition | Cache | Log | Kv | Proxy

val kind_to_string : kind -> string

type entry = {
  machine : Pm_machine.Machine.t;
  name : string;
  kind : kind;
  lower : string option;  (** namespace path of the component below *)
  instance : Pm_obj.Instance.t;
  domain : int;
  mutable bound : string option;  (** [/store/<name>] while registered *)
  mutable detached : bool;
  dirty : unit -> int;  (** blocks still dirty above the lower layer *)
}

val register :
  machine:Pm_machine.Machine.t ->
  name:string ->
  kind:kind ->
  ?lower:string ->
  instance:Pm_obj.Instance.t ->
  domain:int ->
  ?dirty:(unit -> int) ->
  unit ->
  entry

val iter_all : machine:Pm_machine.Machine.t -> (entry -> unit) -> unit
val find : machine:Pm_machine.Machine.t -> string -> entry option
val set_bound : entry -> string option -> unit
val mark_detached : entry -> unit
