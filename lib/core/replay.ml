(* Deterministic record/replay over the journal.

   The simulated machine is deterministic: boot with the same seed, run
   the same scenario, and every trap, crossing and structural mutation
   lands on the same virtual cycle. Recording a run is therefore just
   flipping the clock journal to Full mode before boot and exporting it
   afterwards; replaying is running the scenario again and comparing the
   two histories (and the /stats snapshots read through the object path)
   byte for byte. Any divergence — nondeterminism creeping into the
   kernel, or a tampered recording — is reported with the first
   differing event. *)

module Kernel = Pm_nucleus.Kernel
module Domain = Pm_nucleus.Domain
module Vmem = Pm_nucleus.Vmem
module Clock = Pm_machine.Clock
module Nic = Pm_machine.Nic
module Invoke = Pm_obj.Invoke
module Value = Pm_obj.Value
module Wire = Pm_components.Wire
module Stack = Pm_components.Stack
module Images = Pm_components.Images
module Chan = Pm_chan.Chan
module Scheduler = Pm_threads.Scheduler
module Journal = Pm_journal.Journal
module Trace = Pm_journal.Trace

type recording = { scenario : string; journal : string; stats : string }

(* ------------------------------------------------------------------ *)
(* Scenarios: small self-contained workloads, each deterministic from   *)
(* the fixed boot seed.                                                 *)
(* ------------------------------------------------------------------ *)

let run_packets sys =
  let k = System.kernel sys in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let consume = net.System.stack_domain in
  ignore
    (Invoke.call_exn (Kernel.ctx k consume) net.System.stack ~iface:"stack"
       ~meth:"bind_port" [ Value.Int 7 ]);
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let payload = String.make 64 'p' in
  let tp = Wire.Transport.build ctx ~sport:9 ~dport:7 (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
  let packet = Bytes.to_string (Wire.Frame.build ctx ~dst:42 ~src:13 np) in
  for _ = 1 to 8 do
    Nic.inject (Kernel.nic k) packet;
    Kernel.step k ~ticks:1 ()
  done;
  Kernel.step k ~ticks:4 ()

let run_compose sys =
  let k = System.kernel sys in
  (* a committed transaction: place an allocator and alias it *)
  (match
     System.transact sys "wire-alloc" (fun txn ->
         match
           System.txn_install txn
             (Images.image ~name:"alloc" ~size:8_192 ~author:"kernel-team"
                (Images.allocator_construct ~heap_pages:4))
             ~placement:System.Certified ~at:"/services/alloc"
         with
         | Error _ as e -> e
         | Ok inst -> System.txn_register txn "/shared/alloc" inst)
   with
  | Ok () -> ()
  | Error e -> failwith ("compose scenario: committed txn failed: " ^ e));
  (* an aborted transaction: the rollback itself is part of the history *)
  (match
     System.transact sys "doomed" (fun txn ->
         match
           System.txn_install txn
             (Images.image ~name:"alloc2" ~size:8_192 ~author:"kernel-team"
                (Images.allocator_construct ~heap_pages:2))
             ~placement:System.Certified ~at:"/services/alloc2"
         with
         | Error _ as e -> e
         | Ok _ -> Error "wiring failed downstream")
   with
  | Ok () -> failwith "compose scenario: doomed txn committed"
  | Error _ -> ());
  (* page sharing with clean hygiene: share, unshare, tear down *)
  let kdom = Kernel.kernel_domain k in
  let udom = System.new_domain sys "guest" in
  let vmem = Kernel.vmem k in
  let vaddr = Vmem.alloc_pages vmem kdom ~count:2 ~sharing:Vmem.Shared in
  let shared =
    Vmem.map_shared vmem ~from_dom:kdom ~vaddr ~count:2 ~into:udom
      ~prot:Pm_machine.Mmu.Read_only
  in
  Vmem.free_pages vmem udom ~vaddr:shared ~count:2;
  Vmem.free_pages vmem kdom ~vaddr ~count:2;
  Kernel.destroy_domain k udom

let run_crash sys =
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let sched = Kernel.sched k in
  ignore
    (Scheduler.spawn sched ~name:"doomed-worker" ~domain:kdom.Domain.id
       (fun () -> failwith "deliberate crash"));
  ignore
    (Scheduler.spawn sched ~name:"survivor" ~domain:kdom.Domain.id (fun () ->
         Scheduler.yield ()));
  ignore (Scheduler.run sched ())

let run_deadlock sys =
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let udom = System.new_domain sys "peer" in
  let chan_ab =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"a-to-b" ~mode:Chan.Poll
      ~producer:kdom ()
  in
  ignore (Chan.accept chan_ab ~into:udom);
  let chan_ba =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"b-to-a" ~mode:Chan.Poll
      ~producer:udom ()
  in
  ignore (Chan.accept chan_ba ~into:kdom);
  let sched = Kernel.sched k in
  ignore
    (Scheduler.spawn sched ~name:"a" ~domain:kdom.Domain.id (fun () ->
         ignore (Chan.recv chan_ba)));
  ignore
    (Scheduler.spawn sched ~name:"b" ~domain:udom.Domain.id (fun () ->
         ignore (Chan.recv chan_ab)));
  ignore (Scheduler.run sched ())

(* the whole-system workload: KV requests over the loopback NIC through
   the channel-backed net path, backed by the partition→cache→log stack
   over the DMA block device — block issue/complete and cache-flush
   events land in the journal alongside the net path's *)
let run_kv sys =
  let k = System.kernel sys in
  let net =
    System.setup_networking sys ~placement:System.Certified ~addr:42
      ~loopback:true ()
  in
  let nsc, _svc = System.channel_net sys net () in
  let store = System.setup_store sys ~placement:System.Certified ~cache_capacity:8 () in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let kv = Pm_store.Kv.create api kdom ~name:"kv0" ~log:"/store/log0" () in
  (match Pm_store.Kv.serve api kdom ~kv ~net:nsc ~port:70 () with
  | Ok _ -> ()
  | Error e -> failwith ("kv scenario: serve failed: " ^ Pm_obj.Oerror.to_string e));
  let cdom = System.new_domain sys "kvclient" in
  (match Pm_net.Netstack_chan.bind nsc ~port:71 ~owner:cdom ~mode:Chan.Poll () with
  | Ok _ -> ()
  | Error e -> failwith ("kv scenario: bind failed: " ^ e));
  let txh = Pm_net.Netstack_chan.attach_tx nsc ~producer:cdom in
  let mmu = Pm_machine.Machine.mmu (Kernel.machine k) in
  let clock = System.clock sys in
  let j = Pm_obs.Obs.journal (Clock.obs clock) in
  (* each request is a traced causal unit: the rid minted here rides the
     wire through net, kv and block layers until req_end closes it;
     req_begin/req_end record nothing (and mint nothing) with tracing off *)
  let request ~op ~key value =
    let label =
      let op_name =
        if op = Pm_store.Storewire.kv_put then "put"
        else if op = Pm_store.Storewire.kv_get then "get"
        else "del"
      in
      op_name ^ " " ^ key
    in
    let rid =
      Journal.req_begin j ~domain:cdom.Domain.id ~at:(Clock.now clock)
        ~detail:label
    in
    Pm_machine.Mmu.switch_context mmu cdom.Domain.id;
    let cctx = Kernel.ctx k cdom in
    let req =
      Pm_store.Storewire.Kvmsg.build_req cctx ~op ~key:(Bytes.of_string key)
        (Bytes.of_string value)
    in
    ignore (Pm_net.Netstack_chan.submit txh cctx ~dst:42 ~sport:71 ~dport:70 req);
    Pm_machine.Mmu.switch_context mmu kdom.Domain.id;
    ignore (Pm_net.Netstack_chan.drain_tx nsc);
    Kernel.step k ~ticks:4 ();
    Journal.req_end j ~domain:cdom.Domain.id ~at:(Clock.now clock) rid
  in
  for i = 1 to 6 do
    request ~op:Pm_store.Storewire.kv_put
      ~key:(Printf.sprintf "key-%d" (i mod 3))
      (Printf.sprintf "val-%d" i)
  done;
  request ~op:Pm_store.Storewire.kv_get ~key:"key-1" "";
  request ~op:Pm_store.Storewire.kv_del ~key:"key-2" "";
  request ~op:Pm_store.Storewire.kv_get ~key:"key-2" "";
  let frid =
    Journal.req_begin j ~domain:kdom.Domain.id ~at:(Clock.now clock)
      ~detail:"flush kv0"
  in
  ignore
    (Invoke.call_exn (Kernel.ctx k kdom) kv ~iface:"kv" ~meth:"flush" []);
  Journal.req_end j ~domain:kdom.Domain.id ~at:(Clock.now clock) frid;
  ignore store;
  Kernel.step k ~ticks:4 ()

let scenarios =
  [
    ("packets", "certified network path: inject 8 frames, step the machine");
    ("compose", "a committed and an aborted transaction, page sharing, teardown");
    ("crash", "a thread dies on an uncaught exception beside a survivor");
    ("deadlock", "crossed channel receives leave a wait cycle behind");
    ("kv", "KV workload over loopback net, backed by the block-store stack");
  ]

let scenario_run = function
  | "packets" -> Some run_packets
  | "compose" -> Some run_compose
  | "crash" -> Some run_crash
  | "deadlock" -> Some run_deadlock
  | "kv" -> Some run_kv
  | _ -> None

(* ------------------------------------------------------------------ *)

let journal_of sys = Pm_obs.Obs.journal (Clock.obs (System.clock sys))

(* the snapshot is read through /stats/kernel like any client would, so
   replay equality also covers the object-invocation path *)
let stats_snapshot sys =
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let ksvc = Kernel.bind k kdom "/stats/kernel" in
  match
    Invoke.call (Kernel.ctx k kdom) ksvc ~iface:"stats" ~meth:"snapshot"
      [ Value.Str "text" ]
  with
  | Ok (Value.Str s) -> s
  | Ok _ | Error _ -> failwith "Replay.stats_snapshot: /stats/kernel failed"

(* Run one scenario under a Full-mode journal. The default mode is
   flipped around boot so even boot-time structural events are captured;
   the export must therefore report itself complete. *)
let capture name =
  match scenario_run name with
  | None -> Error (Printf.sprintf "unknown scenario %S" name)
  | Some run ->
    Journal.set_default_mode Journal.Full;
    (* request ids restart from 1 each capture, so a recording and its
       self-check replay mint identical rids *)
    Trace.reset ();
    Fun.protect
      ~finally:(fun () -> Journal.set_default_mode Journal.Tail)
      (fun () ->
        let sys = System.create () in
        run sys;
        (* the journal export first: reading /stats must not disturb it,
           and taking it afterwards would put the snapshot's own
           crossings into the history *)
        let journal = Journal.export (journal_of sys) in
        let stats = stats_snapshot sys in
        Ok { scenario = name; journal; stats })

let record name = capture name

let diagnose ~expected ~got =
  match (Journal.import expected, Journal.import got) with
  | Ok exp_events, Ok got_events ->
    (match Journal.first_divergence ~expected:exp_events ~got:got_events with
    | Some d -> Journal.divergence_to_string d
    | None -> "journals re-render differently but hold the same events")
  | Error e, _ | _, Error e -> "recording unreadable: " ^ e

(* A traced recording carries rid-stamped events; replaying it must
   re-run with tracing on or every stamped line would diverge. Detected
   from the export itself so callers need no side channel. *)
let traced_recording r =
  let s = r.journal and needle = " rid=" in
  let nlen = String.length needle in
  let rec search i =
    if i + nlen > String.length s then false
    else if String.sub s i nlen = needle then true
    else search (i + 1)
  in
  search 0

(* re-capture with the tracing state the recording itself was made under *)
let recapture r =
  let was = Trace.enabled () in
  Trace.set_enabled (traced_recording r);
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled was)
    (fun () -> capture r.scenario)

let replay r =
  match recapture r with
  | Error _ as e -> e
  | Ok fresh ->
    if not (String.equal fresh.journal r.journal) then
      Error ("journal diverged: " ^ diagnose ~expected:r.journal ~got:fresh.journal)
    else if not (String.equal fresh.stats r.stats) then
      Error "stats snapshot diverged"
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Bisecting a divergent recording                                      *)
(* ------------------------------------------------------------------ *)

(* Narrow a diverging recording to the first bad event the way a
   revision bisect narrows commits — but on the virtual-cycle axis.
   The fresh re-run is ground truth (the machine is deterministic), the
   recording under test is suspect. Each probe asks "do the histories
   still agree restricted to events at or before the midpoint cycle?"
   and halves the window until it pins the first cycle whose prefix
   disagrees; the report names the window walked, the probe count, and
   the first bad event, flagged structural mutation vs execution event. *)
let bisect r =
  match recapture r with
  | Error _ as e -> e
  | Ok fresh ->
    if String.equal fresh.journal r.journal then
      Ok "bisect: recording matches a fresh run; nothing to narrow"
    else (
      match (Journal.import fresh.journal, Journal.import r.journal) with
      | Error e, _ | _, Error e -> Error ("recording unreadable: " ^ e)
      | Ok good, Ok bad ->
        let prefix evs mid =
          List.filter (fun e -> e.Journal.at <= mid) evs
        in
        let diverges mid =
          Journal.first_divergence ~expected:(prefix good mid)
            ~got:(prefix bad mid)
          <> None
        in
        let last_at =
          List.fold_left (fun a e -> max a e.Journal.at) 0
        in
        let hi0 = max (last_at good) (last_at bad) in
        if not (diverges hi0) then
          Ok
            "bisect: histories hold the same events; only the rendering \
             differs"
        else begin
          (* invariant: prefix at lo agrees, prefix at hi diverges;
             lo starts at -1 (the empty prefix always agrees) *)
          let probes = ref 0 in
          let rec narrow lo hi =
            if hi - lo <= 1 then (lo, hi)
            else begin
              let mid = lo + ((hi - lo) / 2) in
              incr probes;
              if diverges mid then narrow lo mid else narrow mid hi
            end
          in
          let lo, hi = narrow (-1) hi0 in
          match
            Journal.first_divergence ~expected:(prefix good hi)
              ~got:(prefix bad hi)
          with
          | None -> Error "bisect: divergence vanished while narrowing"
          | Some d ->
            let witness =
              match (d.Journal.got, d.Journal.expected) with
              | Some e, _ | None, Some e -> Some e
              | None, None -> None
            in
            let flavor =
              match witness with
              | Some e when not (Journal.is_execution e.Journal.kind) ->
                "first bad structural mutation"
              | Some _ -> "first bad execution event"
              | None -> "divergence"
            in
            Ok
              (Printf.sprintf
                 "bisect: clean through cycle %d, diverges at cycle %d \
                  (%d probes)\n%s: %s"
                 lo hi !probes flavor
                 (Journal.divergence_to_string d))
        end)

(* ------------------------------------------------------------------ *)
(* On-disk format                                                       *)
(* ------------------------------------------------------------------ *)

let journal_sep = "== journal =="
let stats_sep = "== stats =="

let recording_to_string r =
  Printf.sprintf "pm-replay-v1 scenario=%s\n%s\n%s\n%s\n%s" r.scenario
    journal_sep r.journal stats_sep r.stats

let recording_of_string s =
  let header_end =
    match String.index_opt s '\n' with
    | Some i -> i
    | None -> String.length s
  in
  let header = String.sub s 0 header_end in
  let prefix = "pm-replay-v1 scenario=" in
  if not (String.length header > String.length prefix
          && String.sub header 0 (String.length prefix) = prefix)
  then Error "not a pm-replay-v1 recording"
  else begin
    let scenario =
      String.sub header (String.length prefix)
        (String.length header - String.length prefix)
    in
    let find_sep sep from =
      let needle = sep ^ "\n" in
      let nlen = String.length needle in
      let rec search i =
        if i + nlen > String.length s then None
        else if String.sub s i nlen = needle
                && (i = 0 || s.[i - 1] = '\n') then Some i
        else search (i + 1)
      in
      search from
    in
    match find_sep journal_sep header_end with
    | None -> Error "recording has no journal section"
    | Some j ->
      let jstart = j + String.length journal_sep + 1 in
      (match find_sep stats_sep jstart with
      | None -> Error "recording has no stats section"
      | Some st when st <= jstart -> Error "recording has an empty journal section"
      | Some st ->
        (* the newline that terminates the journal belongs to the framing *)
        let journal = String.sub s jstart (st - jstart - 1) in
        let sstart = st + String.length stats_sep + 1 in
        let stats = String.sub s sstart (String.length s - sstart) in
        Ok { scenario; journal; stats })
  end
