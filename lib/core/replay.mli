(** Deterministic record/replay of whole runs.

    The simulated machine is deterministic, so a run is reproducible
    from its boot seed and scenario alone. {!record} boots a fresh
    {!System}, drives one named scenario under a [Full]-mode journal and
    captures the complete history ({!Pm_journal.Journal.export}) plus
    the [/stats/kernel] snapshot read through the object path; {!replay}
    re-runs the scenario and demands both captures match byte for byte,
    reporting the first diverging journal event otherwise.

    This is both a regression harness (did a change alter system
    history?) and a tamper check (was a recording edited?). Replayed
    histories can also be fed to the composition linter's history rules
    — see [Lint]. *)

type recording = {
  scenario : string;
  journal : string;  (** the versioned [pm-journal-v1] export *)
  stats : string;  (** the [/stats/kernel] text snapshot *)
}

(** The built-in scenarios as [(name, description)]. *)
val scenarios : (string * string) list

(** [record name] runs scenario [name] and captures it; [Error] on an
    unknown name. *)
val record : string -> (recording, string) result

(** [replay r] re-runs [r]'s scenario and compares histories. A traced
    recording (rid-stamped events) is replayed with tracing re-enabled
    automatically. *)
val replay : recording -> (unit, string) result

(** [bisect r] narrows a diverging recording to the first bad event by
    binary search on the virtual-cycle axis: each probe compares the
    two histories restricted to events at or before the midpoint cycle.
    [Ok report] names the clean/diverging cycle window, the probe
    count, and the first bad event (structural mutation vs execution
    event); a recording that matches a fresh run reports that instead. *)
val bisect : recording -> (string, string) result

(** Versioned one-file form: header, [== journal ==] section,
    [== stats ==] section. [recording_of_string] inverts
    [recording_to_string] exactly. *)
val recording_to_string : recording -> string

val recording_of_string : string -> (recording, string) result
