(** Paramecium: an extensible object-based kernel — public facade.

    Re-exports every subsystem under one roof and provides {!System}, the
    one-call assembly used by the examples and benchmarks.

    Layering (bottom-up): {!Nat}/{!Prng}/{!Sha256}/{!Rsa} (arithmetic and
    cryptography), {!Cost}/{!Clock}/{!Physmem}/{!Mmu}/{!Machine} and the
    device models (simulated hardware), {!Value}/{!Iface}/{!Instance}/
    {!Composite} (the object architecture), {!Path}/{!Namespace}/{!View}
    (instance naming), {!Principal}/{!Certificate}/{!Delegation}/
    {!Authority}/{!Validator} (certification), {!Scheduler}/{!Sync}
    (threads), {!Domain}/{!Events}/{!Vmem}/{!Directory}/{!Certsvc}/
    {!Loader}/{!Kernel} (the nucleus), the component toolbox, and the
    SFI/policy baselines. *)

(* bignum + crypto *)
module Nat = Pm_bignum.Nat
module Prng = Pm_crypto.Prng
module Sha256 = Pm_crypto.Sha256
module Prime = Pm_crypto.Prime
module Rsa = Pm_crypto.Rsa

(* system history *)
module Journal = Pm_journal.Journal
module Trace = Pm_journal.Trace
module Query = Pm_query.Query

(* observability core *)
module Tracer = Pm_obs.Tracer
module Metrics = Pm_obs.Metrics
module Acct = Pm_obs.Acct
module Flightrec = Pm_obs.Flightrec
module Obs = Pm_obs.Obs

(* simulated machine *)
module Cost = Pm_machine.Cost
module Clock = Pm_machine.Clock
module Physmem = Pm_machine.Physmem
module Mmu = Pm_machine.Mmu
module Machine = Pm_machine.Machine
module Cpu = Pm_machine.Cpu
module Device = Pm_machine.Device
module Nic = Pm_machine.Nic
module Timer_dev = Pm_machine.Timer_dev
module Console = Pm_machine.Console
module Disk = Pm_machine.Disk
module Blkdev = Pm_machine.Blkdev

(* object architecture *)
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx
module Iface = Pm_obj.Iface
module Registry = Pm_obj.Registry
module Instance = Pm_obj.Instance
module Invoke = Pm_obj.Invoke
module Inline = Pm_obj.Inline
module Composite = Pm_obj.Composite

(* instance naming *)
module Path = Pm_names.Path
module Namespace = Pm_names.Namespace
module View = Pm_names.View

(* security architecture *)
module Principal = Pm_secure.Principal
module Meta = Pm_secure.Meta
module Certificate = Pm_secure.Certificate
module Delegation = Pm_secure.Delegation
module Authority = Pm_secure.Authority
module Validator = Pm_secure.Validator

(* threads *)
module Scheduler = Pm_threads.Scheduler
module Sync = Pm_threads.Sync
module Smp = Pm_threads.Smp

(* nucleus *)
module Domain = Pm_nucleus.Domain
module Events = Pm_nucleus.Events
module Vmem = Pm_nucleus.Vmem
module Proxy = Pm_nucleus.Proxy
module Directory = Pm_nucleus.Directory
module Certsvc = Pm_nucleus.Certsvc
module Tracesvc = Pm_nucleus.Tracesvc
module Journalsvc = Pm_nucleus.Journalsvc
module Querysvc = Pm_nucleus.Querysvc
module Api = Pm_nucleus.Api
module Loader = Pm_nucleus.Loader
module Kernel = Pm_nucleus.Kernel

(* component toolbox *)
module Codegen = Pm_components.Codegen
module Wire = Pm_components.Wire
module Allocator = Pm_components.Allocator
module Netdrv = Pm_components.Netdrv
module Stack = Pm_components.Stack
module Rpc = Pm_components.Rpc
module Interpose = Pm_components.Interpose
module Obs_agent = Pm_obs_agent.Obs_agent
module Stats_svc = Pm_obs_agent.Stats_svc
module Placer = Pm_obs_agent.Placer
module Pager = Pm_components.Pager
module Simplefs = Pm_components.Simplefs
module Images = Pm_components.Images

(* shared-memory channels *)
module Chan = Pm_chan.Chan
module Mpsc = Pm_chan.Mpsc
module Chan_svc = Pm_chan.Chan_svc
module Rpc_chan = Pm_chan.Rpc_chan

(* channel-backed network data path *)
module Netwire = Pm_net.Netwire
module Netstack_chan = Pm_net.Netstack_chan
module Netsvc = Pm_net.Netsvc

(* compositional storage stack *)
module Storewire = Pm_store.Storewire
module Storereg = Pm_store.Storereg
module Blockif = Pm_store.Blockif
module Blkdrv = Pm_store.Blkdrv
module Partition = Pm_store.Partition
module Block_cache = Pm_store.Cache
module Blocklog = Pm_store.Blocklog
module Kv = Pm_store.Kv
module Storechan = Pm_store.Storechan
module Store_svc = Pm_store.Store_svc

(* downloaded-code substrate *)
module Vm = Pm_vm.Vm
module Sfi_rewrite = Pm_vm.Sfi_rewrite
module Filterc = Pm_vm.Filterc

(* static checking: bytecode verifier + composition linter *)
module Verify = Pm_check.Verify
module Subsume = Pm_check.Subsume
module Lint = Pm_check_lint.Lint
module Check_svc = Pm_check_lint.Check_svc

(* baselines *)
module Sandbox = Pm_baselines.Sandbox
module Policies = Pm_baselines.Policies

(* system assembly *)
module System = System
module Replay = Replay
module Cluster = Cluster
