(** One-call assembly of a complete Paramecium system.

    Bundles the pieces a user otherwise wires by hand: a certification
    authority with the paper's standard delegate chain (trusted compiler →
    prover → test team → administrator), a booted kernel trusting that
    authority, and helpers that publish, certify and place components.

    This is the entry point examples and benchmarks use. *)

type t

(** Where a component is placed — the axis of experiment E4. *)
type placement =
  | Certified  (** kernel domain, certificate validated at load time *)
  | Online_certified
      (** kernel domain, but no certificate exists yet: the kernel blocks
          while the delegate chain certifies at load time ("this does not
          exclude on-line certification by the kernel", §4) — the
          delegates' latency is charged to the machine clock *)
  | Verified
      (** kernel domain, no certificate: the {!Pm_check.Verify} bytecode
          verifier must statically prove the object code safe — the
          third trust mechanism, zero per-access overhead like
          [Certified] but with no signer in the loop *)
  | Sandboxed  (** kernel domain, uncertified, SFI run-time checks *)
  | User of Pm_nucleus.Domain.t  (** the given user domain, via proxies *)

(** [create ?seed ?costs ?frames ?page_size ?cpus ?key_bits ?delegates ()]
    builds the system. [seed] drives every pseudo-random choice
    (default 0xC0FFEE); [cpus > 1] boots an SMP complex with per-CPU
    schedulers (default 1 — byte-identical to single-core systems);
    [key_bits] sizes RSA keys (default 512 — small but real);
    [delegates] overrides the standard chain, given as
    [(name, policy, latency)]. *)
val create :
  ?seed:int ->
  ?costs:Pm_machine.Cost.t ->
  ?frames:int ->
  ?page_size:int ->
  ?cpus:int ->
  ?key_bits:int ->
  ?delegates:(string * (Pm_secure.Meta.t -> Pm_secure.Authority.verdict) * int) list ->
  unit ->
  t

(** [with_authority ?costs ?frames ?page_size ~seed authority] boots a
    fresh kernel that trusts an *existing* authority (and knows its
    grants) — how additional nodes of a cluster join a certification
    domain. *)
val with_authority :
  ?costs:Pm_machine.Cost.t ->
  ?frames:int ->
  ?page_size:int ->
  seed:int ->
  Pm_secure.Authority.t ->
  t

val kernel : t -> Pm_nucleus.Kernel.t
val authority : t -> Pm_secure.Authority.t
val rng : t -> Pm_crypto.Prng.t
val api : t -> Pm_nucleus.Api.t
val clock : t -> Pm_machine.Clock.t

(** The /stats service wired at boot ([/stats/kernel] plus per-domain
    objects published by {!new_domain}). *)
val stats : t -> Pm_obs_agent.Stats_svc.t

(** The composition-linter service wired at boot ([/nucleus/check]). *)
val check : t -> Pm_check_lint.Check_svc.t

(** The SMP complex and per-CPU schedulers when created with [cpus > 1]. *)
val cpu : t -> Pm_machine.Cpu.t option

val smp : t -> Pm_threads.Smp.t option

(** Number of CPUs (1 when no complex). *)
val cpus : t -> int

(** [install t image ~placement ~at] publishes the image, certifies it
    when [placement] is [Certified] (failing if no delegate accepts),
    sandbox-wraps it when [Sandboxed], and loads it at path [at]. *)
val install :
  t ->
  Pm_nucleus.Loader.image ->
  placement:placement ->
  at:string ->
  (Pm_obj.Instance.t, string) result

val install_exn :
  t -> Pm_nucleus.Loader.image -> placement:placement -> at:string -> Pm_obj.Instance.t

(** [verified_fuel t name] is the affine fuel bound the bytecode
    verifier proved at [name]'s most recent [Verified] install —
    instantiate it with [Pm_check.Verify.fuel_for] at the component's
    window size to meter its runs against its own proof. [None] when
    the component was never admitted by verification. *)
val verified_fuel : t -> string -> Pm_check.Verify.fuel_bound option

(** {1 Transactional composition}

    [transact t name f] groups composition steps — install, register,
    interpose — into one atomic unit. [f] receives a transaction token
    and performs steps through {!txn_install}, {!txn_register} and
    {!txn_interpose}; if it returns [Error] (or raises), every completed
    step is rolled back newest-first and pages allocated during the
    transaction are freed, so a half-wired component is never observable
    in the namespace, the page tables or the interposition log. The
    journal brackets the unit with [Txn_begin] and [Txn_commit] /
    [Txn_abort]. *)

type txn

val transact : t -> string -> (txn -> ('a, string) result) -> ('a, string) result

(** {!install} with an unload undo registered on success. *)
val txn_install :
  txn ->
  Pm_nucleus.Loader.image ->
  placement:placement ->
  at:string ->
  (Pm_obj.Instance.t, string) result

(** [Directory.register] with an unregister undo. *)
val txn_register : txn -> string -> Pm_obj.Instance.t -> (unit, string) result

(** [Directory.replace] with an {!Pm_nucleus.Directory.unreplace} undo;
    returns the displaced instance. *)
val txn_interpose :
  txn -> string -> Pm_obj.Instance.t -> (Pm_obj.Instance.t, string) result

(** Networking bundle for the experiments and examples. *)
type networking = {
  driver : Pm_obj.Instance.t;  (** at [/services/netdrv] and [/shared/network] *)
  stack : Pm_obj.Instance.t;  (** at [/services/stack] *)
  stack_domain : Pm_nucleus.Domain.t;
}

(** [setup_networking t ~placement ~addr ?loopback ()] loads a certified
    NIC driver into the kernel, places the protocol stack per [placement],
    and attaches the driver's receive path to the stack. *)
val setup_networking :
  t -> placement:placement -> addr:int -> ?loopback:bool -> unit -> networking

(** [channel_rx t net ()] rewires the driver→stack receive path over a
    shared-memory channel ({!Pm_chan.Chan_svc.bridge}): the driver
    enqueues frames into a ring in its own domain (at
    [/services/chan-rx]) and a doorbell pop-up in the stack's domain
    drains each burst into one [rx_batch] invocation — replacing the
    per-frame proxy hop of a [User]-placed stack. Returns the ring for
    inspection. *)
val channel_rx :
  t -> networking -> ?slots:int -> ?slot_size:int -> unit -> Pm_chan.Chan.t

(** [channel_net t net ()] builds the full channel-backed data path
    ({!Pm_net.Netstack_chan}) over an existing networking bundle and
    publishes the network factory at [/shared/net]; binding a port
    through it registers endpoints at [/net/<port>/rx] and
    [/net/<port>/tx]. Usually combined with {!channel_rx} so every hop
    driver→stack→app (and back) rides a ring. *)
val channel_net :
  t ->
  networking ->
  ?rx_slots:int ->
  ?rx_slot_size:int ->
  ?tx_slots:int ->
  ?tx_slot_size:int ->
  unit ->
  Pm_net.Netstack_chan.t * Pm_obj.Instance.t

(** [new_domain t name] is a fresh user protection domain. *)
val new_domain : t -> string -> Pm_nucleus.Domain.t

(** The canonical storage stack: certified block driver at
    [/services/blkdrv] (also [/store/blkdrv]), then partition → cache →
    log placed per [placement] at [/store/part0..log0], plus the
    [/shared/store] factory for growing more components. *)
type storage = {
  blk_driver : Pm_obj.Instance.t;
  partition : Pm_obj.Instance.t;
  block_cache : Pm_obj.Instance.t;
  log : Pm_obj.Instance.t;
  store_domain : Pm_nucleus.Domain.t;
}

(** [setup_store t ~placement ?base ?count ?cache_capacity ()] boots the
    partition→cache→log stack over the machine's block device and
    publishes the storage factory at [/shared/store]. *)
val setup_store :
  t ->
  placement:placement ->
  ?base:int ->
  ?count:int ->
  ?cache_capacity:int ->
  unit ->
  storage
