module Kernel = Pm_nucleus.Kernel
module Api = Pm_nucleus.Api
module Loader = Pm_nucleus.Loader
module Domain = Pm_nucleus.Domain
module Certsvc = Pm_nucleus.Certsvc
module Authority = Pm_secure.Authority
module Prng = Pm_crypto.Prng
module Policies = Pm_baselines.Policies
module Sandbox = Pm_baselines.Sandbox
module Images = Pm_components.Images
module Netdrv = Pm_components.Netdrv
module Clock = Pm_machine.Clock
module Tracesvc = Pm_nucleus.Tracesvc
module Obs_agent = Pm_obs_agent.Obs_agent
module Chan_svc = Pm_chan.Chan_svc
module Stats_svc = Pm_obs_agent.Stats_svc
module Check_svc = Pm_check_lint.Check_svc
module Machine = Pm_machine.Machine
module Vmem = Pm_nucleus.Vmem
module Directory = Pm_nucleus.Directory
module Journal = Pm_journal.Journal

type t = {
  kernel : Kernel.t;
  authority : Authority.t;
  rng : Prng.t;
  stats : Stats_svc.t;
  check : Check_svc.t;
}

(* close the observability loop: the trace service (inside the nucleus)
   gets its interposer factory from the agent library (above it) *)
let wire_tracing kernel =
  Tracesvc.set_interposer (Kernel.tracesvc kernel)
    (Obs_agent.installer (Kernel.api kernel))

type placement =
  | Certified
  | Online_certified
  | Verified
  | Sandboxed
  | User of Domain.t

type networking = {
  driver : Pm_obj.Instance.t;
  stack : Pm_obj.Instance.t;
  stack_domain : Domain.t;
}

let standard_delegates =
  [
    ("trusted-compiler", Policies.trusted_compiler, Policies.latency_compiler);
    ("prover", Policies.prover, Policies.latency_prover);
    ("test-team", Policies.test_team, Policies.latency_test_team);
    ( "administrator",
      Policies.administrator ~trusted_authors:[ "kernel-team" ],
      Policies.latency_administrator );
  ]

(* the channel factory is published at its conventional name straight
   from boot, like /shared/network; Chan_svc.image exists for loading it
   through the certified-component path as well *)
let wire_chan kernel =
  Kernel.register_at kernel "/shared/chan"
    (Chan_svc.create (Kernel.api kernel)
       ~domain_of_id:(Kernel.domain_of_id kernel) ())

(* the /stats namespace: kernel-wide accounting at /stats/kernel, one
   directory object per user domain published as domains appear *)
let wire_stats kernel =
  let stats =
    Stats_svc.create (Kernel.api kernel) ~domains:(fun () -> Kernel.domains kernel) ()
  in
  Kernel.register_at kernel "/stats/kernel" (Stats_svc.kernel_object stats);
  stats

(* the composition linter as /nucleus/check, beside /nucleus/trace: any
   domain can bind it and ask for a whole-system consistency pass *)
let wire_check kernel =
  let check =
    Check_svc.create ~machine:(Kernel.machine kernel)
      ~directory:(Kernel.directory kernel) ~events:(Kernel.events kernel)
      ~domains:(fun () -> Kernel.domains kernel)
      ()
  in
  Kernel.register_at kernel "/nucleus/check"
    (Check_svc.service_object check (Kernel.api kernel).Api.registry
       (Kernel.kernel_domain kernel));
  check

(* an uncaught object error dumps the flight recorder's tail — the
   black-box readout the always-on ring exists for *)
let wire_crash_dump kernel =
  let clock = Kernel.clock kernel in
  Pm_obj.Oerror.set_fail_hook (fun e ->
      Logs.debug (fun m ->
          m "Oerror (%s); flight recorder (last 16 events):@\n%s"
            (Pm_obj.Oerror.to_string e)
            (Pm_obs.Flightrec.tail_to_text
               (Pm_obs.Obs.flight (Clock.obs clock))
               16)))

let create ?(seed = 0xC0FFEE) ?costs ?frames ?page_size ?cpus ?(key_bits = 512)
    ?(delegates = standard_delegates) () =
  let rng = Prng.create ~seed in
  let authority = Authority.create rng ~name:"certification-authority" ~key_bits in
  List.iter
    (fun (name, policy, latency) ->
      ignore (Authority.add_delegate authority rng ~name ~policy ~latency ()))
    delegates;
  let kernel =
    Kernel.boot ?costs ?frames ?page_size ?cpus ~root:(Authority.ca authority) ()
  in
  wire_tracing kernel;
  wire_chan kernel;
  List.iter
    (Certsvc.add_grant (Kernel.certification kernel))
    (Authority.grants authority);
  let stats = wire_stats kernel in
  let check = wire_check kernel in
  wire_crash_dump kernel;
  { kernel; authority; rng; stats; check }

let with_authority ?costs ?frames ?page_size ~seed authority =
  let rng = Prng.create ~seed in
  let kernel = Kernel.boot ?costs ?frames ?page_size ~root:(Authority.ca authority) () in
  wire_tracing kernel;
  wire_chan kernel;
  List.iter
    (Certsvc.add_grant (Kernel.certification kernel))
    (Authority.grants authority);
  let stats = wire_stats kernel in
  let check = wire_check kernel in
  wire_crash_dump kernel;
  { kernel; authority; rng; stats; check }

let kernel t = t.kernel
let authority t = t.authority
let rng t = t.rng
let api t = Kernel.api t.kernel
let clock t = Kernel.clock t.kernel
let stats t = t.stats
let check t = t.check
let cpu t = Kernel.cpu t.kernel
let smp t = Kernel.smp t.kernel
let cpus t = Kernel.cpus t.kernel

let install t image ~placement ~at =
  let loader = Kernel.loader t.kernel in
  let now = Clock.now (Kernel.clock t.kernel) in
  match placement with
  | Online_certified ->
    (* consult the delegate chain *now*, on the kernel's time *)
    let outcome =
      Authority.certify t.authority image.Loader.meta ~code:image.Loader.code ~now
    in
    Clock.advance (Kernel.clock t.kernel) outcome.Authority.elapsed;
    Clock.count (Kernel.clock t.kernel) "online_certification";
    (match outcome.Authority.certificate with
    | None -> Error "on-line certification failed: no delegate accepted"
    | Some cert ->
      Loader.publish loader { image with Loader.cert = Some cert };
      Result.map_error Loader.load_error_to_string
        (Loader.load loader
           ~name:image.Loader.meta.Pm_secure.Meta.name
           ~into:(Kernel.kernel_domain t.kernel)
           ~at:(Pm_names.Path.of_string at) ()))
  | Certified ->
    let image, trail = Images.certify t.authority ~now image in
    if image.Loader.cert = None then
      Error
        (Printf.sprintf "no delegate certified %S (trail: %s)"
           image.Loader.meta.Pm_secure.Meta.name
           (String.concat ", "
              (List.map
                 (fun (d, v) ->
                   Printf.sprintf "%s=%s" d
                     (match v with
                     | Authority.Accept -> "accept"
                     | Authority.Reject r -> "reject:" ^ r
                     | Authority.Cannot_decide -> "cannot-decide"))
                 trail)))
    else begin
      Loader.publish loader image;
      Result.map_error Loader.load_error_to_string
        (Loader.load loader
           ~name:image.Loader.meta.Pm_secure.Meta.name
           ~into:(Kernel.kernel_domain t.kernel)
           ~at:(Pm_names.Path.of_string at) ())
    end
  | Verified ->
    (* the third trust mechanism: no certificate attached, no signer
       consulted — the loader's bytecode verifier must prove the code *)
    Loader.publish loader { image with Loader.cert = None };
    Result.map_error Loader.load_error_to_string
      (Loader.load loader
         ~name:image.Loader.meta.Pm_secure.Meta.name
         ~into:(Kernel.kernel_domain t.kernel)
         ~at:(Pm_names.Path.of_string at) ~verify:true ())
  | Sandboxed ->
    Loader.publish loader image;
    let registry = (api t).Api.registry in
    Result.map_error Loader.load_error_to_string
      (Loader.load loader
         ~name:image.Loader.meta.Pm_secure.Meta.name
         ~into:(Kernel.kernel_domain t.kernel)
         ~at:(Pm_names.Path.of_string at)
         ~sandbox:(Sandbox.for_loader registry) ())
  | User dom ->
    Loader.publish loader image;
    Result.map_error Loader.load_error_to_string
      (Loader.load loader
         ~name:image.Loader.meta.Pm_secure.Meta.name
         ~into:dom
         ~at:(Pm_names.Path.of_string at) ())

(* the affine fuel bound proven at [name]'s Verified install, if any:
   what the kernel meters that component's runs against *)
let verified_fuel t name = Loader.verified_fuel (Kernel.loader t.kernel) name

let install_exn t image ~placement ~at =
  match install t image ~placement ~at with
  | Ok inst -> inst
  | Error e -> failwith ("System.install: " ^ e)

(* ------------------------------------------------------------------ *)
(* Transactional composition: install + register + interpose grouped    *)
(* into one atomic unit. Each step pushes an undo thunk; on failure the *)
(* thunks run newest-first and any page allocated during the            *)
(* transaction is freed, so a half-wired component is never observable  *)
(* — not in the namespace, not in the page tables, not to the linter.   *)
(* ------------------------------------------------------------------ *)

type txn = {
  tsys : t;
  tid : int;
  tname : string;
  mutable undos : (unit -> unit) list; (* newest first *)
  pages_before : (int * int) list;
}

let journal t = Pm_obs.Obs.journal (Clock.obs (Kernel.clock t.kernel))

let jot_txn t ~kind ~info ~detail =
  let clock = Kernel.clock t.kernel in
  Journal.record (journal t) ~kind
    ~domain:(Kernel.kernel_domain t.kernel).Domain.id
    ~at:(Clock.now clock) ~info ~detail

let txn_install txn image ~placement ~at =
  match install txn.tsys image ~placement ~at with
  | Ok inst ->
    txn.undos <-
      (fun () ->
        ignore
          (Loader.unload
             (Kernel.loader txn.tsys.kernel)
             (Pm_names.Path.of_string at)))
      :: txn.undos;
    Ok inst
  | Error _ as e -> e

let txn_register txn path inst =
  let dir = Kernel.directory txn.tsys.kernel in
  let p = Pm_names.Path.of_string path in
  match Directory.register dir p inst with
  | Ok () ->
    txn.undos <- (fun () -> ignore (Directory.unregister dir p)) :: txn.undos;
    Ok ()
  | Error e -> Error (Pm_names.Namespace.error_to_string e)

let txn_interpose txn path agent =
  let dir = Kernel.directory txn.tsys.kernel in
  let p = Pm_names.Path.of_string path in
  match Directory.replace dir p agent with
  | Ok old ->
    txn.undos <-
      (fun () -> ignore (Directory.unreplace dir p ~agent ~restore:old))
      :: txn.undos;
    Ok old
  | Error e -> Error (Directory.bind_error_to_string e)

let transact t name f =
  let j = journal t in
  (* a deterministic transaction id: begin-events recorded so far *)
  let tid = Journal.count j Journal.Txn_begin + 1 in
  jot_txn t ~kind:Journal.Txn_begin ~info:tid ~detail:name;
  let txn =
    { tsys = t; tid; tname = name; undos = [];
      pages_before = Vmem.alloc_keys (Kernel.vmem t.kernel) }
  in
  let rollback reason =
    List.iter (fun undo -> try undo () with _ -> ()) txn.undos;
    (* pages allocated during the transaction (e.g. by component
       constructors) are not reclaimed by the undo thunks — diff the
       allocation tables and free every fresh page *)
    let vmem = Kernel.vmem t.kernel in
    let before = txn.pages_before in
    let fresh =
      List.filter (fun k -> not (List.mem k before)) (Vmem.alloc_keys vmem)
    in
    let ps = Machine.page_size (Kernel.machine t.kernel) in
    List.iter
      (fun (did, vpage) ->
        match Kernel.domain_of_id t.kernel did with
        | Some dom ->
          (try Vmem.free_pages vmem dom ~vaddr:(vpage * ps) ~count:1
           with Vmem.Vmem_error _ -> ())
        | None -> ())
      fresh;
    jot_txn t ~kind:Journal.Txn_abort ~info:txn.tid
      ~detail:(Printf.sprintf "%s: %s" txn.tname reason);
    Error reason
  in
  match f txn with
  | Ok v ->
    jot_txn t ~kind:Journal.Txn_commit ~info:txn.tid ~detail:txn.tname;
    Ok v
  | Error e -> rollback e
  | exception e -> rollback (Printexc.to_string e)

let new_domain t name =
  let dom = Kernel.create_domain t.kernel ~name () in
  ignore (Stats_svc.publish t.stats);
  dom

let setup_networking t ~placement ~addr ?(loopback = false) () =
  let config = { Netdrv.default_config with Netdrv.loopback } in
  (* the driver itself is always a certified kernel component, authored by
     the kernel team so the administrator delegate accepts it *)
  let driver_image =
    Images.image ~name:"netdrv" ~size:16_384 ~author:"kernel-team"
      (Images.netdrv_construct ~config ())
  in
  let driver = install_exn t driver_image ~placement:Certified ~at:"/services/netdrv" in
  Kernel.register_at t.kernel "/shared/network" driver;
  let stack_domain =
    match placement with
    | User dom -> dom
    | Certified | Online_certified | Verified | Sandboxed ->
      Kernel.kernel_domain t.kernel
  in
  let stack_image =
    Images.image ~name:"protostack" ~size:24_576 ~author:"kernel-team"
      ~type_safe:true
      (Images.stack_construct ~addr ~driver_path:"/services/netdrv")
  in
  let stack = install_exn t stack_image ~placement ~at:"/services/stack" in
  (* point the driver's receive path at the stack *)
  let kdom = Kernel.kernel_domain t.kernel in
  let ctx = Kernel.ctx t.kernel kdom in
  (match
     Pm_obj.Invoke.call ctx driver ~iface:"netdev" ~meth:"attach"
       [ Pm_obj.Value.Str "/services/stack" ]
   with
  | Ok _ -> ()
  | Error e ->
    failwith ("System.setup_networking: attach failed: " ^ Pm_obj.Oerror.to_string e));
  { driver; stack; stack_domain }

(* The full channel-backed data path (Pm_net): per-port receive rings
   out of the stack, one MPSC transmit group into it, published as the
   /shared/net factory with endpoints at /net/<port>/{rx,tx}. *)
let channel_net t net ?rx_slots ?rx_slot_size ?tx_slots ?tx_slot_size () =
  let api = Kernel.api t.kernel in
  let nsc =
    Pm_net.Netstack_chan.create api ~stack:net.stack
      ~stack_domain:net.stack_domain ?rx_slots ?rx_slot_size ?tx_slots
      ?tx_slot_size ()
  in
  let svc =
    Pm_net.Netsvc.create api nsc
      ~domain_of_id:(Kernel.domain_of_id t.kernel) ()
  in
  Kernel.register_at t.kernel "/shared/net" svc;
  (nsc, svc)

(* Rewire the receive path over a shared-memory channel: the driver's
   per-frame sink becomes a same-domain ring enqueue and the stack gets
   bursts through one rx_batch invocation per doorbell — the E4 mailbox
   hop without a proxy crossing per frame. *)
let channel_rx t net ?slots ?slot_size () =
  let kdom = Kernel.kernel_domain t.kernel in
  let api = Kernel.api t.kernel in
  let tx, chan =
    Chan_svc.bridge api ?slots ?slot_size ~producer:kdom ~consumer:net.stack_domain
      ~stack:net.stack ()
  in
  Kernel.register_at t.kernel "/services/chan-rx" tx;
  let ctx = Kernel.ctx t.kernel kdom in
  (match
     Pm_obj.Invoke.call ctx net.driver ~iface:"netdev" ~meth:"attach"
       [ Pm_obj.Value.Str "/services/chan-rx" ]
   with
  | Ok _ -> ()
  | Error e ->
    failwith ("System.channel_rx: attach failed: " ^ Pm_obj.Oerror.to_string e));
  chan

(* ------------------------------------------------------------------ *)
(* Storage: the Pm_store stack                                         *)
(* ------------------------------------------------------------------ *)

type storage = {
  blk_driver : Pm_obj.Instance.t;
  partition : Pm_obj.Instance.t;
  block_cache : Pm_obj.Instance.t;
  log : Pm_obj.Instance.t;
  store_domain : Domain.t;
}

(* The canonical partition→cache→log stack over the machine's block
   device, each layer wired to the one below by /store path so any of
   them can be interposed or replaced by name. The driver is always a
   certified kernel component (it programs DMA); the policy layers go
   wherever [placement] says. *)
let setup_store t ~placement ?(base = 0) ?(count = 256) ?(cache_capacity = 32) ()
    =
  let open Pm_store in
  (* Verified placement runs the loader's bytecode verifier over the
     image; give the policy layers a real, provable program instead of
     the synthesized filler Images.image attaches *)
  let verifiable image =
    match placement with
    | Verified -> (
      match Pm_vm.Filterc.compile_string "byte[19] == 7" with
      | Ok p -> { image with Pm_nucleus.Loader.code = Pm_vm.Vm.encode p }
      | Error e -> failwith ("System.setup_store: filter compile failed: " ^ e))
    | Certified | Online_certified | Sandboxed | User _ -> image
  in
  let blk_driver =
    install_exn t (Store_svc.driver_image ()) ~placement:Certified
      ~at:"/services/blkdrv"
  in
  Kernel.register_at t.kernel "/store/blkdrv" blk_driver;
  let store_domain =
    match placement with
    | User dom -> dom
    | Certified | Online_certified | Verified | Sandboxed ->
      Kernel.kernel_domain t.kernel
  in
  let partition =
    install_exn t
      (verifiable
         (Store_svc.partition_image ~name:"part0" ~lower:"/store/blkdrv" ~base
            ~count ()))
      ~placement ~at:"/store/part0"
  in
  let block_cache =
    install_exn t
      (verifiable
         (Store_svc.cache_image ~name:"cache0" ~lower:"/store/part0"
            ~capacity:cache_capacity ()))
      ~placement ~at:"/store/cache0"
  in
  let log =
    install_exn t
      (verifiable (Store_svc.log_image ~name:"log0" ~lower:"/store/cache0" ()))
      ~placement ~at:"/store/log0"
  in
  let machine = (api t).Api.machine in
  List.iter
    (fun name ->
      match Storereg.find ~machine name with
      | Some e -> Storereg.set_bound e (Some ("/store/" ^ name))
      | None -> ())
    [ "blkdrv"; "part0"; "cache0"; "log0" ];
  (* per-component counters beside /stats/kernel: cache hits/dirty, log
     appends, blk_* driver counters at /stats/store.<name> *)
  ignore (Store_svc.publish_stats (api t));
  let svc =
    Store_svc.create (api t) ~domain_of_id:(Kernel.domain_of_id t.kernel) ()
  in
  Kernel.register_at t.kernel "/shared/store" svc;
  { blk_driver; partition; block_cache; log; store_domain }
