type t = {
  mutable cycles : int;
  counters : (string, int ref) Hashtbl.t;
  obs : Pm_obs.Obs.t;
}

let create ?obs () =
  let obs = match obs with Some o -> o | None -> Pm_obs.Obs.create () in
  { cycles = 0; counters = Hashtbl.create 16; obs }

let advance t n =
  assert (n >= 0);
  t.cycles <- t.cycles + n

(* Reconciliation: pull this clock forward to a point in global virtual
   time (never backward). Returns the idle cycles absorbed, so callers
   can count them. *)
let advance_to t n =
  if n > t.cycles then begin
    let d = n - t.cycles in
    t.cycles <- n;
    d
  end
  else 0

let now t = t.cycles

let obs t = t.obs

let count_n t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let count t name = count_n t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let with_counters t entries =
  Hashtbl.reset t.counters;
  List.iter (fun (name, v) -> Hashtbl.replace t.counters name (ref v)) entries

let reset t =
  t.cycles <- 0;
  Hashtbl.reset t.counters

let measure t f =
  let before = now t in
  let result = f () in
  (result, now t - before)

type snapshot = { at : int; counts : (string * int) list }

let snapshot t = { at = t.cycles; counts = counters t }

let diff ~before ~after =
  let find name l = Option.value ~default:0 (List.assoc_opt name l) in
  let names =
    List.sort_uniq String.compare
      (List.map fst before.counts @ List.map fst after.counts)
  in
  {
    at = after.at - before.at;
    counts =
      List.filter_map
        (fun name ->
          match find name after.counts - find name before.counts with
          | 0 -> None
          | d -> Some (name, d))
        names;
  }

let since t before = diff ~before ~after:(snapshot t)
