let mtu = 1514

(* Transmit descriptor ring capacity: how many staged DMAs the device
   holds at once. The driver reads TX_FREE before staging. *)
let tx_slots = 16

type pending_tx = { addr : int; len : int }

type t = {
  machine : Machine.t;
  irq_line : int;
  mutable io_base : int;
  mutable ctrl : int;
  mutable status : int;
  free_bufs : int Queue.t; (* physical addresses supplied by the driver *)
  filled : (int * int) Queue.t; (* (phys addr, len) DMA-completed *)
  wire_in : string Queue.t;
  mutable staged_tx_addr : int;
  mutable staged_tx_len : int;
  tx_queue : pending_tx Queue.t; (* the tx descriptor ring, <= tx_slots *)
  mutable transmitted : string list; (* newest first *)
  mutable rx_dropped : int;
  mutable tx_overruns : int;
}

let ctrl_rx_enable = 1
let ctrl_tx_enable = 2
let ctrl_irq_enable = 4
let ctrl_loopback = 8

let status_rx = 1
let status_tx_done = 2

let reg_read t reg =
  match reg with
  | 0 -> t.ctrl
  | 1 -> t.status
  | 2 -> Queue.length t.free_bufs
  | 3 -> (match Queue.peek_opt t.filled with Some (a, _) -> a | None -> 0)
  | 4 -> (match Queue.peek_opt t.filled with Some (_, l) -> l | None -> 0)
  | 5 -> t.staged_tx_addr
  | 6 -> t.staged_tx_len
  | 7 -> 0
  | 8 -> t.rx_dropped
  | 9 -> tx_slots - Queue.length t.tx_queue
  | _ -> 0

let reg_write t reg v =
  match reg with
  | 0 -> t.ctrl <- v land 0xf
  | 1 ->
    (* write-1-to-clear; clearing RX pops the descriptor *)
    if v land status_rx <> 0 && Queue.length t.filled > 0 then
      ignore (Queue.pop t.filled);
    if Queue.is_empty t.filled then t.status <- t.status land lnot status_rx;
    if v land status_tx_done <> 0 then t.status <- t.status land lnot status_tx_done
  | 2 -> Queue.push v t.free_bufs
  | 5 -> t.staged_tx_addr <- v
  | 6 -> t.staged_tx_len <- v
  | 7 ->
    if v = 1 && t.ctrl land ctrl_tx_enable <> 0 then begin
      if Queue.length t.tx_queue >= tx_slots then t.tx_overruns <- t.tx_overruns + 1
      else Queue.push { addr = t.staged_tx_addr; len = t.staged_tx_len } t.tx_queue
    end
  | _ -> ()

let interrupt t =
  if t.ctrl land ctrl_irq_enable <> 0 then Machine.raise_irq t.machine t.irq_line

(* One machine tick: complete at most one transmit and one receive DMA. *)
let tick t =
  let phys = Machine.phys t.machine in
  (match Queue.take_opt t.tx_queue with
  | Some { addr; len } ->
    let frame = Physmem.read_string phys addr len in
    t.transmitted <- frame :: t.transmitted;
    if t.ctrl land ctrl_loopback <> 0 then Queue.push frame t.wire_in;
    t.status <- t.status lor status_tx_done;
    interrupt t
  | None -> ());
  if t.ctrl land ctrl_rx_enable <> 0 then begin
    match Queue.peek_opt t.wire_in with
    | None -> ()
    | Some packet ->
      (match Queue.take_opt t.free_bufs with
      | None ->
        ignore (Queue.pop t.wire_in);
        t.rx_dropped <- t.rx_dropped + 1
      | Some buf_addr ->
        ignore (Queue.pop t.wire_in);
        Physmem.blit_string phys packet buf_addr;
        Queue.push (buf_addr, String.length packet) t.filled;
        t.status <- t.status lor status_rx;
        interrupt t)
  end

let create machine ~irq_line =
  let t =
    {
      machine;
      irq_line;
      io_base = 0;
      ctrl = 0;
      status = 0;
      free_bufs = Queue.create ();
      filled = Queue.create ();
      wire_in = Queue.create ();
      staged_tx_addr = 0;
      staged_tx_len = 0;
      tx_queue = Queue.create ();
      transmitted = [];
      rx_dropped = 0;
      tx_overruns = 0;
    }
  in
  let dev =
    Device.make ~name:"nic" ~reg_count:10 ~reg_read:(reg_read t)
      ~reg_write:(reg_write t) ~tick:(fun () -> tick t)
  in
  t.io_base <- Machine.attach_device machine dev;
  t

let io_base t = t.io_base
let irq_line t = t.irq_line

let inject t packet =
  if String.length packet > mtu then invalid_arg "Nic.inject: packet exceeds MTU";
  Queue.push packet t.wire_in

let take_transmitted t =
  let frames = List.rev t.transmitted in
  t.transmitted <- [];
  frames

let pending_wire t = Queue.length t.wire_in
let pending_tx t = Queue.length t.tx_queue
let tx_overruns t = t.tx_overruns
