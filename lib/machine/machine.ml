exception Fatal_fault of Mmu.fault
exception Machine_check of string

let trap_vector_count = 32
let irq_line_count = 16

type attached = { dev : Device.t; io_base : int }

type t = {
  boot_clock : Clock.t; (* CPU 0's clock, the whole machine's on 1 CPU *)
  mutable active_clock : Clock.t;
      (* the clock of the CPU currently executing; every charge site
         reads it through [clock] at charge time, so an SMP complex
         redirects all accounting by swapping this one field. Identical
         to [boot_clock] until a Cpu complex with >1 CPUs switches. *)
  costs : Cost.t;
  phys : Physmem.t;
  mmu : Mmu.t;
  traps : (int -> int) option array;
  irqs : (unit -> unit) option array;
  mutable fault_handler : (Mmu.fault -> bool) option;
  mutable attached : attached list; (* newest first *)
  mutable next_io_base : int;
}

let io_base_start = 0x1000_0000

let create ?(costs = Cost.default) ?(frames = 1024) ?(page_size = 4096) () =
  let clock = Clock.create () in
  {
    boot_clock = clock;
    active_clock = clock;
    costs;
    phys = Physmem.create ~frames ~page_size;
    mmu = Mmu.create clock costs ~page_size;
    traps = Array.make trap_vector_count None;
    irqs = Array.make irq_line_count None;
    fault_handler = None;
    attached = [];
    next_io_base = io_base_start;
  }

let clock t = t.active_clock
let boot_clock t = t.boot_clock

let set_active_clock t clock =
  t.active_clock <- clock;
  Mmu.set_clock t.mmu clock

let costs t = t.costs
let phys t = t.phys
let mmu t = t.mmu
let page_size t = Physmem.page_size t.phys

let check_vec kind max vec =
  if vec < 0 || vec >= max then
    raise (Machine_check (Printf.sprintf "bad %s number %d" kind vec))

let set_trap_handler t vec h =
  check_vec "trap vector" trap_vector_count vec;
  t.traps.(vec) <- h

let raise_trap t vec arg =
  check_vec "trap vector" trap_vector_count vec;
  Clock.advance t.active_clock t.costs.Cost.trap;
  Clock.count t.active_clock "trap";
  match t.traps.(vec) with
  | Some h -> h arg
  | None -> raise (Machine_check (Printf.sprintf "unhandled trap %d" vec))

let set_irq_handler t line h =
  check_vec "irq line" irq_line_count line;
  t.irqs.(line) <- h

let raise_irq t line =
  check_vec "irq line" irq_line_count line;
  Clock.advance t.active_clock t.costs.Cost.interrupt;
  Clock.count t.active_clock "interrupt";
  match t.irqs.(line) with
  | Some h -> h ()
  | None -> Clock.count t.active_clock "spurious_interrupt"

let set_fault_handler t h = t.fault_handler <- h

(* Resolve a virtual address, invoking the fault handler on faults and
   retrying once if it claims resolution. *)
let resolve t ctx vaddr access =
  let rec go attempts =
    match Mmu.translate t.mmu ctx vaddr access with
    | Ok phys -> phys
    | Error fault ->
      Clock.advance t.active_clock t.costs.Cost.page_fault;
      Clock.count t.active_clock "page_fault";
      let resolved =
        match t.fault_handler with
        | Some h when attempts < 2 -> h fault
        | _ -> false
      in
      if resolved then go (attempts + 1) else raise (Fatal_fault fault)
  in
  go 0

let read8 t ctx vaddr =
  Clock.advance t.active_clock t.costs.Cost.mem_read;
  Physmem.read8 t.phys (resolve t ctx vaddr Mmu.Read)

let write8 t ctx vaddr v =
  Clock.advance t.active_clock t.costs.Cost.mem_write;
  Physmem.write8 t.phys (resolve t ctx vaddr Mmu.Write) v

let read32 t ctx vaddr =
  Clock.advance t.active_clock t.costs.Cost.mem_read;
  (* unaligned or page-straddling access decomposes into bytes *)
  let ps = page_size t in
  if vaddr mod ps <= ps - 4 then Physmem.read32 t.phys (resolve t ctx vaddr Mmu.Read)
  else
    read8 t ctx vaddr
    lor (read8 t ctx (vaddr + 1) lsl 8)
    lor (read8 t ctx (vaddr + 2) lsl 16)
    lor (read8 t ctx (vaddr + 3) lsl 24)

let write32 t ctx vaddr v =
  Clock.advance t.active_clock t.costs.Cost.mem_write;
  let ps = page_size t in
  if vaddr mod ps <= ps - 4 then
    Physmem.write32 t.phys (resolve t ctx vaddr Mmu.Write) v
  else begin
    write8 t ctx vaddr v;
    write8 t ctx (vaddr + 1) (v lsr 8);
    write8 t ctx (vaddr + 2) (v lsr 16);
    write8 t ctx (vaddr + 3) (v lsr 24)
  end

let read_string t ctx vaddr len =
  String.init len (fun i -> Char.chr (read8 t ctx (vaddr + i)))

let write_string t ctx vaddr s =
  String.iteri (fun i c -> write8 t ctx (vaddr + i) (Char.code c)) s

let attach_device t dev =
  let io_base = t.next_io_base in
  t.next_io_base <- io_base + (dev.Device.reg_count * 4);
  t.attached <- { dev; io_base } :: t.attached;
  io_base

let locate_io t addr =
  let found =
    List.find_opt
      (fun a ->
        addr >= a.io_base && addr < a.io_base + (a.dev.Device.reg_count * 4))
      t.attached
  in
  match found with
  | Some a ->
    if (addr - a.io_base) mod 4 <> 0 then
      raise (Machine_check (Printf.sprintf "unaligned io access 0x%x" addr));
    (a.dev, (addr - a.io_base) / 4)
  | None -> raise (Machine_check (Printf.sprintf "no device at io address 0x%x" addr))

let io_read t addr =
  Clock.advance t.active_clock t.costs.Cost.io_read;
  let dev, reg = locate_io t addr in
  dev.Device.reg_read reg

let io_write t addr v =
  Clock.advance t.active_clock t.costs.Cost.io_write;
  let dev, reg = locate_io t addr in
  dev.Device.reg_write reg v

let devices t =
  List.rev_map (fun a -> (a.dev.Device.name, a.io_base, a.dev.Device.reg_count)) t.attached

let find_device t name =
  List.find_opt (fun a -> String.equal a.dev.Device.name name) t.attached
  |> Option.map (fun a -> (a.io_base, a.dev.Device.reg_count))

let tick t = List.iter (fun a -> a.dev.Device.tick ()) t.attached
