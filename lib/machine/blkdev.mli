(** Simulated block device with a DMA descriptor ring.

    Where {!Disk} holds one outstanding operation, this device consumes
    a ring of DMA descriptors the driver places in physical memory, so
    several operations stay in flight at once. The media itself is
    serialized: each fetched descriptor completes [Cost.blk_op] cycles
    after the previous one (per-op seek latency plus per-byte transfer),
    stamped on the virtual clock. When asked to make progress while
    operations are pending but not yet due, the device advances the
    clock to the earliest ready time — the CPU idling until the
    completion interrupt — which keeps queue-depth experiments honest
    and deterministic.

    Register map (one 32-bit register per index):
    - 0 [RING_BASE]: physical address of the descriptor ring
    - 1 [RING_SLOTS]: ring capacity; writing resets all indices
    - 2 [TAIL]: free-running producer index (driver-written; writing
      past [head + ring_slots] is a protocol violation)
    - 3 [HEAD] (read-only): free-running completion index
    - 4 [CTRL]: bit0 enable, bit1 irq enable
    - 5 [STATUS]: bit0 completion pending; write-1-to-clear. Reading
      while operations are in flight lets the device make progress
      (including the idle-until-ready clock jump), so a polling driver
      terminates deterministically.
    - 6 [BLOCKS] (read-only), 7 [BLOCK_SIZE] (read-only)
    - 8 [COMPLETED] (read-only): operations completed since creation

    Descriptors are 16 bytes: cmd/status word (bits 0-1: 1 = read,
    2 = write; the device writes bit 8 done / bit 9 error back), block
    number, physical buffer address, reserved word.

    Every fetch and completion is journalled ({!Pm_journal.Journal}
    [Blk_issue] / [Blk_complete]) and counted ([blk_issue],
    [blk_complete], [blk_error], [blk_wait]). *)

type t

val create :
  Machine.t -> irq_line:int -> blocks:int -> block_size:int -> t

val io_base : t -> int
val irq_line : t -> int
val blocks : t -> int
val block_size : t -> int

(** Completed operations since creation. *)
val completed : t -> int

(** Fetched-but-not-completed operations. *)
val in_flight : t -> int

val reads : t -> int
val writes : t -> int

(** Descriptors rejected (bad op code or block out of range). *)
val errors : t -> int

(** Completion interrupts raised (coalesced: one per progress batch). *)
val irqs : t -> int

(** [peek_block t block] reads the media directly — test/workload side,
    no cycles charged. *)
val peek_block : t -> int -> string
