(** Simulated MMU: per-context page tables with protection bits, per-page
    fault hooks, and a small TLB model.

    Contexts are the MMU half of Paramecium's protection domains: "objects
    can be placed in separate MMU contexts". Each context has its own
    virtual-to-frame mapping. A page can carry a [fault_hook] flag; a
    hooked page always faults on access, which is the hardware mechanism
    behind both per-page fault call-backs and cross-domain proxy
    invocations ("each interface entry will cause a page fault when
    referenced").

    The TLB is a direct-mapped cache of translations; [switch_context]
    flushes it, so frequent context switches pay refill costs — exactly
    the effect that makes cross-domain calls expensive in the paper. *)

type t

type context = int

type access = Read | Write | Exec

type fault_reason = Unmapped | Protection | Hooked

type fault = { ctx : context; vaddr : int; access : access; reason : fault_reason }

type prot = No_access | Read_only | Read_write

val create : Clock.t -> Cost.t -> page_size:int -> t

(** [set_clock t clock] retargets where TLB and context-switch costs are
    charged — how an SMP complex makes MMU traffic land on the executing
    CPU's clock. Single-CPU machines never call it. *)
val set_clock : t -> Clock.t -> unit

val page_size : t -> int

(** [new_context t] allocates a fresh, empty context. *)
val new_context : t -> context

(** [delete_context t ctx] drops a context and all its mappings. Returns
    the frames that were mapped, so the caller can release them. *)
val delete_context : t -> context -> int list

(** [switch_context t ctx] makes [ctx] current, charging the context-switch
    cost and flushing the TLB. No-op (and free) if [ctx] is current. *)
val switch_context : t -> context -> unit

val current_context : t -> context

(** [map t ctx ~vpage ~frame ~prot] installs a translation.
    Raises [Invalid_argument] if [vpage] is already mapped. *)
val map : t -> context -> vpage:int -> frame:int -> prot:prot -> unit

(** [unmap t ctx ~vpage] removes a translation and returns its frame. *)
val unmap : t -> context -> vpage:int -> int

val set_prot : t -> context -> vpage:int -> prot -> unit

(** [set_fault_hook t ctx ~vpage hooked] marks a page to always fault. *)
val set_fault_hook : t -> context -> vpage:int -> bool -> unit

val is_mapped : t -> context -> vpage:int -> bool

(** [frame_of t ctx ~vpage] is the frame backing a mapped page. *)
val frame_of : t -> context -> vpage:int -> int option

(** [mappings t ctx] lists [(vpage, frame)] pairs, sorted by page. *)
val mappings : t -> context -> (int * int) list

(** [translate t ctx vaddr access] resolves a virtual address in a given
    context (charging TLB costs against the clock when [ctx] is current)
    to a physical address, or explains the fault. *)
val translate : t -> context -> int -> access -> (int, fault) result

val pp_fault : Format.formatter -> fault -> unit
