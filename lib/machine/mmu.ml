type context = int
type access = Read | Write | Exec
type fault_reason = Unmapped | Protection | Hooked
type fault = { ctx : context; vaddr : int; access : access; reason : fault_reason }
type prot = No_access | Read_only | Read_write

type entry = { mutable frame : int; mutable prot : prot; mutable fault_hook : bool }

let tlb_size = 64

type t = {
  mutable clock : Clock.t;
      (* the executing CPU's clock: TLB and context-switch charges land
         on whichever CPU drives the MMU; retargeted by Machine when an
         SMP complex switches CPUs *)
  costs : Cost.t;
  page_size : int;
  contexts : (context, (int, entry) Hashtbl.t) Hashtbl.t;
  mutable next_context : int;
  mutable current : context;
  (* direct-mapped TLB over (ctx, vpage); only caches the current context *)
  tlb_tags : int array; (* vpage or -1 *)
  tlb_frames : int array;
}

let create clock costs ~page_size =
  if page_size <= 0 then invalid_arg "Mmu.create";
  let t =
    {
      clock;
      costs;
      page_size;
      contexts = Hashtbl.create 8;
      next_context = 0;
      current = 0;
      tlb_tags = Array.make tlb_size (-1);
      tlb_frames = Array.make tlb_size 0;
    }
  in
  Hashtbl.add t.contexts 0 (Hashtbl.create 64);
  t.next_context <- 1;
  t

let set_clock t clock = t.clock <- clock

let page_size t = t.page_size

let table_exn t ctx =
  match Hashtbl.find_opt t.contexts ctx with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Mmu: unknown context %d" ctx)

let new_context t =
  let ctx = t.next_context in
  t.next_context <- ctx + 1;
  Hashtbl.add t.contexts ctx (Hashtbl.create 64);
  ctx

let flush_tlb t = Array.fill t.tlb_tags 0 tlb_size (-1)

let delete_context t ctx =
  if ctx = t.current then invalid_arg "Mmu.delete_context: context is current";
  let tbl = table_exn t ctx in
  let frames = Hashtbl.fold (fun _ e acc -> e.frame :: acc) tbl [] in
  Hashtbl.remove t.contexts ctx;
  frames

let switch_context t ctx =
  if ctx <> t.current then begin
    ignore (table_exn t ctx);
    t.current <- ctx;
    flush_tlb t;
    Clock.advance t.clock t.costs.Cost.context_switch;
    Clock.count t.clock "context_switch"
  end

let current_context t = t.current

let map t ctx ~vpage ~frame ~prot =
  let tbl = table_exn t ctx in
  if Hashtbl.mem tbl vpage then invalid_arg "Mmu.map: page already mapped";
  Hashtbl.add tbl vpage { frame; prot; fault_hook = false }

let entry_exn t ctx vpage =
  match Hashtbl.find_opt (table_exn t ctx) vpage with
  | Some e -> e
  | None -> invalid_arg "Mmu: page not mapped"

let invalidate_tlb_entry t ctx vpage =
  if ctx = t.current then begin
    let slot = vpage land (tlb_size - 1) in
    if t.tlb_tags.(slot) = vpage then t.tlb_tags.(slot) <- -1
  end

let unmap t ctx ~vpage =
  let tbl = table_exn t ctx in
  match Hashtbl.find_opt tbl vpage with
  | None -> invalid_arg "Mmu.unmap: page not mapped"
  | Some e ->
    Hashtbl.remove tbl vpage;
    invalidate_tlb_entry t ctx vpage;
    e.frame

let set_prot t ctx ~vpage prot =
  (entry_exn t ctx vpage).prot <- prot;
  invalidate_tlb_entry t ctx vpage

let set_fault_hook t ctx ~vpage hooked =
  (entry_exn t ctx vpage).fault_hook <- hooked;
  invalidate_tlb_entry t ctx vpage

let is_mapped t ctx ~vpage = Hashtbl.mem (table_exn t ctx) vpage

let frame_of t ctx ~vpage =
  Option.map (fun e -> e.frame) (Hashtbl.find_opt (table_exn t ctx) vpage)

let mappings t ctx =
  Hashtbl.fold (fun vp e acc -> (vp, e.frame) :: acc) (table_exn t ctx) []
  |> List.sort compare

let allows prot access =
  match (prot, access) with
  | Read_write, (Read | Write | Exec) -> true
  | Read_only, (Read | Exec) -> true
  | Read_only, Write -> false
  | No_access, (Read | Write | Exec) -> false

let translate t ctx vaddr access =
  if vaddr < 0 then invalid_arg "Mmu.translate: negative address";
  let vpage = vaddr / t.page_size and off = vaddr mod t.page_size in
  (* TLB hit path: only for the current context and unhooked, permitted pages *)
  let slot = vpage land (tlb_size - 1) in
  if ctx = t.current && t.tlb_tags.(slot) = vpage && access = Read then
    Ok ((t.tlb_frames.(slot) * t.page_size) + off)
  else begin
    match Hashtbl.find_opt (table_exn t ctx) vpage with
    | None -> Error { ctx; vaddr; access; reason = Unmapped }
    | Some e ->
      if e.fault_hook then Error { ctx; vaddr; access; reason = Hooked }
      else if not (allows e.prot access) then
        Error { ctx; vaddr; access; reason = Protection }
      else begin
        if ctx = t.current then begin
          Clock.advance t.clock t.costs.Cost.tlb_fill;
          Clock.count t.clock "tlb_fill";
          t.tlb_tags.(slot) <- vpage;
          t.tlb_frames.(slot) <- e.frame
        end;
        Ok ((e.frame * t.page_size) + off)
      end
  end

let pp_access fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Exec -> Format.pp_print_string fmt "exec"

let pp_reason fmt = function
  | Unmapped -> Format.pp_print_string fmt "unmapped"
  | Protection -> Format.pp_print_string fmt "protection"
  | Hooked -> Format.pp_print_string fmt "hooked"

let pp_fault fmt f =
  Format.fprintf fmt "fault{ctx=%d; vaddr=0x%x; %a; %a}" f.ctx f.vaddr pp_access
    f.access pp_reason f.reason
