(** The simulated machine: physical memory, MMU, trap/interrupt vectors,
    an I/O register space with attached devices, and the cycle clock.

    This is the hardware Paramecium's nucleus runs on. The nucleus is the
    only code expected to install vector handlers and the fault handler;
    everything else goes through the nucleus services. *)

type t

(** Raised when a memory access faults and no handler resolves it. *)
exception Fatal_fault of Mmu.fault

(** Raised on machine-level protocol violations (bad io address, bad
    vector number). *)
exception Machine_check of string

val create : ?costs:Cost.t -> ?frames:int -> ?page_size:int -> unit -> t

(** [clock t] is the clock of the CPU currently executing — the boot
    clock until an SMP complex ({!Cpu}) switches CPUs. Charge sites must
    read it at charge time, never cache it across a CPU switch. *)
val clock : t -> Clock.t

(** CPU 0's clock, regardless of which CPU is executing. *)
val boot_clock : t -> Clock.t

(** [set_active_clock t c] redirects all subsequent charges (including
    MMU traffic) to [c]. Owned by {!Cpu}; single-CPU code never calls
    it. *)
val set_active_clock : t -> Clock.t -> unit

val costs : t -> Cost.t
val phys : t -> Physmem.t
val mmu : t -> Mmu.t
val page_size : t -> int

(** {1 Processor events}

    Vectors 0–31 are synchronous traps (raised by software), IRQ lines
    0–15 are asynchronous device interrupts. *)

val trap_vector_count : int
val irq_line_count : int

(** [set_trap_handler t vec h] installs/removes the handler for trap
    [vec]. The handler receives the trap argument and produces a result. *)
val set_trap_handler : t -> int -> (int -> int) option -> unit

(** [raise_trap t vec arg] charges the trap cost and runs the handler.
    Raises [Machine_check] if no handler is installed. *)
val raise_trap : t -> int -> int -> int

val set_irq_handler : t -> int -> (unit -> unit) option -> unit

(** [raise_irq t line] charges the interrupt cost and runs the handler;
    an unhandled interrupt is counted and dropped (spurious). *)
val raise_irq : t -> int -> unit

(** [set_fault_handler t h] installs the page-fault handler. It returns
    [true] if the fault was resolved (the access is retried once). *)
val set_fault_handler : t -> (Mmu.fault -> bool) option -> unit

(** {1 Memory bus}

    Virtual-address access in a given MMU context, charging bus and
    translation costs; faults go through the fault handler. *)

val read8 : t -> Mmu.context -> int -> int
val write8 : t -> Mmu.context -> int -> int -> unit
val read32 : t -> Mmu.context -> int -> int
val write32 : t -> Mmu.context -> int -> int -> unit
val read_string : t -> Mmu.context -> int -> int -> string
val write_string : t -> Mmu.context -> int -> string -> unit

(** {1 I/O space and devices} *)

(** [attach_device t dev] assigns the device a register window and returns
    its base io address. *)
val attach_device : t -> Device.t -> int

(** [io_read t addr] / [io_write t addr v] access a device register by io
    address, charging io costs. Raise [Machine_check] on unmapped
    addresses. *)
val io_read : t -> int -> int

val io_write : t -> int -> int -> unit

(** [devices t] lists [(name, io_base, reg_count)] for attached devices. *)
val devices : t -> (string * int * int) list

(** [find_device t name] is the io window of a named device. *)
val find_device : t -> string -> (int * int) option

(** [tick t] advances every device model by one tick (DMA progress, timer
    countdown, interrupt delivery). *)
val tick : t -> unit
