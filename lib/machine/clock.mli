(** Virtual cycle clock with named event counters.

    Every simulated operation charges cycles here; experiments read the
    difference around a workload. Counters record how often each kind of
    event (trap, context switch, fault, ...) occurred, which the benches
    report alongside cycles. *)

type t

(** [create ?obs ()] makes a fresh clock. Passing [obs] shares an
    existing observability sink — how per-CPU clocks all feed the one
    journal/tracer/accounting instance the machine owns. *)
val create : ?obs:Pm_obs.Obs.t -> unit -> t

(** [advance t n] charges [n >= 0] cycles. *)
val advance : t -> int -> unit

(** [advance_to t n] pulls the clock forward to global virtual time [n]
    if it is behind (never backward) and returns the idle cycles
    absorbed. The reconciliation primitive for cross-CPU causality. *)
val advance_to : t -> int -> int

(** [now t] is the cycles elapsed since creation or the last [reset]. *)
val now : t -> int

(** [count t name] increments the event counter [name]. *)
val count : t -> string -> unit

(** [count_n t name n] bumps a counter by [n]. *)
val count_n : t -> string -> int -> unit

(** [counter t name] reads a counter (0 if never incremented). *)
val counter : t -> string -> int

(** [counters t] lists all counters, sorted by name. *)
val counters : t -> (string * int) list

(** [with_counters t entries] bulk-restores the counter table to exactly
    [entries], dropping every other counter. The inverse of
    [counters]. *)
val with_counters : t -> (string * int) list -> unit

(** [reset t] zeroes the clock and all counters. *)
val reset : t -> unit

(** [measure t f] runs [f ()] and returns its result together with the
    cycles it charged. *)
val measure : t -> (unit -> 'a) -> 'a * int

(** [obs t] is the observability sink attached to this clock. Tracing is
    disabled by default; instrumented paths charge no cycles until
    [Pm_obs.Obs.enable] is called. *)
val obs : t -> Pm_obs.Obs.t

(** {2 Snapshots}

    [snapshot]/[diff]/[since] replace the hand-rolled
    before/after counter-list subtraction the benches used to do. *)

type snapshot = { at : int; counts : (string * int) list }

(** [snapshot t] captures the cycle count and every counter. *)
val snapshot : t -> snapshot

(** [diff ~before ~after] is the elapsed cycles and per-counter deltas
    (zero deltas omitted). *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** [since t s] is [diff ~before:s ~after:(snapshot t)]. *)
val since : t -> snapshot -> snapshot
