(* Simulated block device with a DMA descriptor ring.

   Unlike the one-outstanding-op Disk, this device consumes descriptors
   from a ring the driver places in physical memory, so several
   operations stay in flight at once. The media is serialized: each
   fetched descriptor becomes ready [Cost.blk_op] cycles after the
   previous one finishes (or after fetch, when the media is idle).
   Completion writes the done bit back into the descriptor, advances
   HEAD, and raises a (coalesced) interrupt through the machine's
   ordinary IRQ dispatch — the nucleus event service turns that into a
   pop-up like any other device interrupt.

   Determinism: completion is clock-driven, not tick-counted. When the
   device is asked to make progress (a machine tick, or the driver
   polling STATUS) while operations are in flight but none are due yet,
   the virtual clock jumps to the earliest ready time — the CPU idling
   until the completion interrupt. No existing workload touches this
   device, so the jump perturbs nothing else.

   Descriptor layout (16 bytes, 4 little-endian words):
     +0  cmd/status: bits 0-1 op (1 = read, 2 = write),
         bit 8 done, bit 9 error (device-written)
     +4  block number
     +8  physical address of the data buffer (block_size bytes)
     +12 reserved *)

module Journal = Pm_journal.Journal

let op_read = 1
let op_write = 2
let desc_done = 0x100
let desc_error = 0x200
let desc_bytes = 16

type inflight = {
  slot : int; (* free-running descriptor index *)
  op : int;
  block : int;
  buf : int; (* physical address *)
  ready_at : int; (* virtual cycle when the media finishes *)
  error : bool;
}

type t = {
  machine : Machine.t;
  irq_line : int;
  mutable io_base : int;
  blocks : int;
  block_size : int;
  store : (int, Bytes.t) Hashtbl.t;
  mutable ring_base : int;
  mutable ring_slots : int;
  mutable tail : int; (* driver-written producer index (free-running) *)
  mutable fetched : int; (* next descriptor index the device will fetch *)
  mutable head : int; (* completion index: everything below is done *)
  mutable ctrl : int;
  mutable status : int;
  mutable media_free_at : int; (* when the serialized media goes idle *)
  inflight : inflight Queue.t;
  mutable completed : int;
  mutable reads : int;
  mutable writes : int;
  mutable errors : int;
  mutable irqs : int;
}

let ctrl_enable = 1
let ctrl_irq_enable = 2
let status_complete = 1

let jot t ~kind ~info =
  let clock = Machine.clock t.machine in
  Journal.record
    (Pm_obs.Obs.journal (Clock.obs clock))
    ~kind ~domain:0 ~at:(Clock.now clock) ~info ~detail:""

let block_bytes t block =
  match Hashtbl.find_opt t.store block with
  | Some b -> b
  | None ->
    let b = Bytes.make t.block_size '\000' in
    Hashtbl.replace t.store block b;
    b

let desc_addr t slot = t.ring_base + (slot mod t.ring_slots * desc_bytes)

(* Fetch every descriptor the driver has published. Media time is
   serialized: each op's ready_at starts where the previous one ended. *)
let fetch_descriptors t =
  let phys = Machine.phys t.machine in
  let clock = Machine.clock t.machine in
  let costs = Machine.costs t.machine in
  while t.ctrl land ctrl_enable <> 0 && t.fetched < t.tail do
    let addr = desc_addr t t.fetched in
    let cmd = Physmem.read32 phys addr land 0x3 in
    let block = Physmem.read32 phys (addr + 4) in
    let buf = Physmem.read32 phys (addr + 8) in
    let error =
      (cmd <> op_read && cmd <> op_write) || block < 0 || block >= t.blocks
    in
    let start = max (Clock.now clock) t.media_free_at in
    let ready_at =
      if error then Clock.now clock
      else start + Cost.blk_op costs ~bytes:t.block_size
    in
    if not error then t.media_free_at <- ready_at;
    Queue.push
      { slot = t.fetched; op = cmd; block; buf; ready_at; error }
      t.inflight;
    Clock.count clock "blk_issue";
    jot t ~kind:Journal.Blk_issue ~info:block;
    t.fetched <- t.fetched + 1
  done

(* Complete every in-flight op whose media time has elapsed. *)
let complete_due t =
  let phys = Machine.phys t.machine in
  let clock = Machine.clock t.machine in
  let fired = ref false in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.inflight with
    | Some op when op.ready_at <= Clock.now clock ->
      ignore (Queue.pop t.inflight);
      let flags =
        if op.error then begin
          t.errors <- t.errors + 1;
          desc_done lor desc_error
        end
        else begin
          if op.op = op_read then begin
            t.reads <- t.reads + 1;
            Physmem.blit_string phys
              (Bytes.to_string (block_bytes t op.block))
              op.buf
          end
          else begin
            t.writes <- t.writes + 1;
            let data = Physmem.read_string phys op.buf t.block_size in
            Hashtbl.replace t.store op.block (Bytes.of_string data)
          end;
          desc_done
        end
      in
      let addr = desc_addr t op.slot in
      Physmem.write32 phys addr (Physmem.read32 phys addr lor flags);
      t.head <- op.slot + 1;
      t.completed <- t.completed + 1;
      t.status <- t.status lor status_complete;
      Clock.count clock (if op.error then "blk_error" else "blk_complete");
      jot t ~kind:Journal.Blk_complete ~info:op.block;
      fired := true
    | _ -> continue := false
  done;
  if !fired && t.ctrl land ctrl_irq_enable <> 0 then begin
    t.irqs <- t.irqs + 1;
    Machine.raise_irq t.machine t.irq_line
  end

let progress t = fetch_descriptors t; complete_due t

(* Progress plus the idle-until-interrupt jump: with ops in flight but
   none due, the clock advances to the earliest ready time. *)
let progress_waiting t =
  progress t;
  (match Queue.peek_opt t.inflight with
  | Some op ->
    let clock = Machine.clock t.machine in
    if op.ready_at > Clock.now clock then begin
      Clock.advance clock (op.ready_at - Clock.now clock);
      Clock.count clock "blk_wait"
    end;
    complete_due t
  | None -> ())

let reg_read t reg =
  match reg with
  | 0 -> t.ring_base
  | 1 -> t.ring_slots
  | 2 -> t.tail
  | 3 -> progress t; t.head
  | 4 -> t.ctrl
  | 5 -> progress_waiting t; t.status
  | 6 -> t.blocks
  | 7 -> t.block_size
  | 8 -> t.completed
  | _ -> 0

let reg_write t reg v =
  match reg with
  | 0 -> t.ring_base <- v
  | 1 ->
    if v <= 0 then invalid_arg "Blkdev: ring needs at least one slot";
    t.ring_slots <- v;
    t.tail <- 0;
    t.fetched <- 0;
    t.head <- 0;
    (* reprogramming the ring geometry resets the device: in-flight ops
       belong to the old ring, and letting them complete would write
       done bits into the new ring's descriptor slots *)
    Queue.clear t.inflight;
    t.media_free_at <- 0
  | 2 ->
    if v - t.head > t.ring_slots then
      invalid_arg "Blkdev: tail overruns the ring";
    t.tail <- v;
    progress t
  | 4 -> t.ctrl <- v land 0x3; if t.ctrl land ctrl_enable <> 0 then progress t
  | 5 -> if v land status_complete <> 0 then
      t.status <- t.status land lnot status_complete
  | _ -> ()

let create machine ~irq_line ~blocks ~block_size =
  if blocks <= 0 then invalid_arg "Blkdev.create: need at least one block";
  if block_size <= 0 then invalid_arg "Blkdev.create: bad block size";
  let t =
    {
      machine;
      irq_line;
      io_base = 0;
      blocks;
      block_size;
      store = Hashtbl.create 64;
      ring_base = 0;
      ring_slots = 1;
      tail = 0;
      fetched = 0;
      head = 0;
      ctrl = 0;
      status = 0;
      media_free_at = 0;
      inflight = Queue.create ();
      completed = 0;
      reads = 0;
      writes = 0;
      errors = 0;
      irqs = 0;
    }
  in
  let dev =
    Device.make ~name:"blkdev" ~reg_count:9 ~reg_read:(reg_read t)
      ~reg_write:(reg_write t)
      ~tick:(fun () -> progress_waiting t)
  in
  t.io_base <- Machine.attach_device machine dev;
  t

let io_base t = t.io_base
let irq_line t = t.irq_line
let blocks t = t.blocks
let block_size t = t.block_size
let completed t = t.completed
let in_flight t = Queue.length t.inflight
let reads t = t.reads
let writes t = t.writes
let errors t = t.errors
let irqs t = t.irqs

(* Test/workload-side peek at the media, outside the simulation. *)
let peek_block t block =
  if block < 0 || block >= t.blocks then
    invalid_arg "Blkdev.peek_block: out of range";
  Bytes.to_string (block_bytes t block)
