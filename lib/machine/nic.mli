(** Simulated DMA network interface.

    The NIC is the "shared network device" of the paper's motivating
    example: its driver maps the register window through the I/O-space
    service, gives the device receive buffers (physical frames), and turns
    its interrupts into pop-up threads. Packet data is DMA'd straight into
    physical memory, so the protocol stack's per-byte work happens on the
    memory bus — which is what the SFI baseline taxes.

    Register map (one 32-bit register per index):
    - 0 [CTRL]: bit0 rx enable, bit1 tx enable, bit2 irq enable,
      bit3 loopback (transmitted frames are re-injected)
    - 1 [STATUS]: bit0 rx pending, bit1 tx done; write-1-to-clear.
      Clearing bit0 pops the current rx descriptor and exposes the next.
    - 2 [RX_FREE]: write a physical address to append a receive buffer
      (each buffer must hold [mtu] bytes); read = free-buffer count
    - 3 [RX_ADDR] (read-only): physical address of the filled buffer
    - 4 [RX_LEN] (read-only): its length
    - 5 [TX_ADDR], 6 [TX_LEN]: transmit staging
    - 7 [TX_GO]: write 1 to enqueue the staged transmit into the tx
      descriptor ring (up to [tx_slots] in flight; a full ring counts
      an overrun and drops the descriptor — check TX_FREE first)
    - 8 [RX_DROPPED] (read-only): packets dropped for want of buffers
    - 9 [TX_FREE] (read-only): free tx descriptor slots *)

type t

val mtu : int

(** Transmit descriptor-ring capacity. *)
val tx_slots : int

(** [create machine ~irq_line] builds the NIC and attaches it to the
    machine. *)
val create : Machine.t -> irq_line:int -> t

val io_base : t -> int
val irq_line : t -> int

(** {1 The wire} — test/workload side of the device. *)

(** [inject t packet] queues a packet for delivery on a later tick.
    Raises [Invalid_argument] if longer than [mtu]. *)
val inject : t -> string -> unit

(** [take_transmitted t] returns frames transmitted since the last call,
    oldest first. *)
val take_transmitted : t -> string list

(** [pending_wire t] is the number of injected-but-undelivered packets. *)
val pending_wire : t -> int

(** [pending_tx t] is the number of staged-but-untransmitted DMAs. *)
val pending_tx : t -> int

(** Transmit descriptors dropped against a full ring. *)
val tx_overruns : t -> int
