type t = {
  cycle : int;
  call : int;
  indirect_call : int;
  delegation_hop : int;
  trap : int;
  interrupt : int;
  context_switch : int;
  page_fault : int;
  map_word : int;
  tlb_fill : int;
  mem_read : int;
  mem_write : int;
  io_read : int;
  io_write : int;
  sfi_check : int;
  sfi_entry : int;
  thread_create : int;
  proto_thread : int;
  promote : int;
  thread_switch : int;
  ns_component : int;
  ns_override : int;
  digest_byte : int;
  sig_verify : int;
  verify_instr : int;
  load_page : int;
  blk_seek : int;
  blk_byte : int;
  ipi : int;
  cacheline : int;
  cas : int;
}

(* The absolute numbers are in the ballpark of a ~50MHz SPARCstation of the
   paper's era: procedure calls are a handful of cycles but can spill
   register windows, traps and context switches cost hundreds of cycles,
   a software-handled page fault costs on the order of a thousand. *)
let default =
  {
    cycle = 1;
    call = 8;
    indirect_call = 14;
    delegation_hop = 6;
    trap = 280;
    interrupt = 220;
    context_switch = 320;
    page_fault = 620;
    map_word = 18;
    tlb_fill = 40;
    mem_read = 2;
    mem_write = 2;
    io_read = 12;
    io_write = 12;
    sfi_check = 4;
    sfi_entry = 30;
    thread_create = 900;
    proto_thread = 60;
    promote = 450;
    thread_switch = 180;
    ns_component = 35;
    ns_override = 12;
    digest_byte = 12;
    sig_verify = 180_000;
    verify_instr = 40;
    load_page = 90;
    blk_seek = 1_800;
    blk_byte = 3;
    (* SMP figures, same era: an inter-processor interrupt rides the
       shared bus and lands as a trap on the target (the bus signalling
       is priced here; the target pays its normal trap entry on top); a
       cache-line transfer between CPUs is a bus round-trip, several
       times a local miss; a contended CAS retry re-acquires the line. *)
    ipi = 360;
    cacheline = 24;
    cas = 12;
  }

(* Derived figures. Instrumentation and the channel subsystem compose
   their charges out of the base table; naming the sums here lets tests
   and benchmarks assert against the model instead of re-deriving the
   arithmetic in each call site. *)
let dispatch t = t.indirect_call
let span_store t = t.mem_write
let traced_dispatch t = dispatch t + span_store t
let doorbell_crossing t = t.trap + (2 * t.context_switch) + t.proto_thread

(* A multi-producer enqueue pays for the group's shared reserve words on
   top of the sub-ring's own traffic: one store publishing the sub-ring's
   dirty bit and one load of the shared armed flag. *)
let mpsc_reserve t = t.mem_write + t.mem_read

(* The reserve under true parallelism: each producer concurrently active
   on a *different* CPU is a CAS contender on the shared reserve words —
   the line bounces and the compare-and-swap retries once per contender.
   On a single CPU producers are time-sliced and the CAS never fails, so
   [contended = 0] collapses to the flat price. *)
let mpsc_reserve_n t ~contended = mpsc_reserve t + (contended * t.cas)

(* Migrating one ready thread between CPUs: the thief pulls the victim's
   run-queue line and the task descriptor's line across the bus, plus
   one load inspecting the queue. *)
let steal t = (2 * t.cacheline) + t.mem_read

(* One block-device media operation: the fixed seek/controller latency
   plus per-byte media transfer. The descriptor-ring device holds each
   fetched descriptor for exactly this many cycles before completing. *)
let blk_op t ~bytes = t.blk_seek + (bytes * t.blk_byte)

let unit_costs =
  {
    cycle = 1;
    call = 1;
    indirect_call = 1;
    delegation_hop = 1;
    trap = 1;
    interrupt = 1;
    context_switch = 1;
    page_fault = 1;
    map_word = 1;
    tlb_fill = 1;
    mem_read = 1;
    mem_write = 1;
    io_read = 1;
    io_write = 1;
    sfi_check = 1;
    sfi_entry = 1;
    thread_create = 1;
    proto_thread = 1;
    promote = 1;
    thread_switch = 1;
    ns_component = 1;
    ns_override = 1;
    digest_byte = 1;
    sig_verify = 1;
    verify_instr = 1;
    load_page = 1;
    blk_seek = 1;
    blk_byte = 1;
    ipi = 1;
    cacheline = 1;
    cas = 1;
  }
