(** The SMP complex: N logical CPUs over one simulated {!Machine}.

    Each CPU owns a {!Clock} sharing the machine's observability sink.
    Per-CPU clocks advance independently while CPUs compute on private
    state; global virtual time is their maximum ({!makespan}), and any
    cross-CPU interaction — an IPI, a work steal, shared ring traffic —
    reconciles the observing CPU's clock forward to the issuing CPU's
    time, never backward. The host interleaves CPUs explicitly via
    {!run_on}; work run inside charges that CPU's clock because every
    charge site reads {!Machine.clock} at charge time.

    A 1-CPU complex has no cross-CPU interactions and never moves the
    active clock, so its runs are byte-identical to a machine with no
    complex at all — the backward-compatibility contract every existing
    experiment relies on. *)

type t

(** [create machine ~cpus] builds the complex. CPU 0 adopts the
    machine's boot clock (so pre-existing charges belong to it);
    secondary clocks start at CPU 0's current time. At most one complex
    per machine; [cpus] must be positive. *)
val create : Machine.t -> cpus:int -> t

(** The complex attached to [machine], if any — for subsystems that only
    hold the machine (channels, the linter, the placer). Keyed on
    physical machine identity. *)
val find : machine:Machine.t -> t option

val count : t -> int
val machine : t -> Machine.t
val clock_of : t -> int -> Clock.t

(** The CPU currently executing (0 outside any [run_on]). *)
val current : t -> int

val now : t -> int -> int

(** Global virtual time: the maximum over all per-CPU clocks. The
    machine is done when its slowest CPU is. *)
val makespan : t -> int

(** {2 Affinity}

    Domains are pinned to CPUs; unpinned domains run on CPU 0. *)

val pin : t -> domain:int -> cpu:int -> unit
val cpu_of : t -> domain:int -> int
val cross : t -> a:int -> b:int -> bool

(** [cacheline_penalty t ~from_dom ~to_dom] is {!Cost.t.cacheline} when
    the two domains sit on different CPUs, 0 otherwise (hence always 0
    on a uniprocessor complex). *)
val cacheline_penalty : t -> from_dom:int -> to_dom:int -> int

(** {2 Execution} *)

(** [run_on t k f] runs [f] as CPU [k]: the machine's active clock and
    the journal's ambient CPU id are switched for the dynamic extent of
    [f] and restored after (exception-safe, nestable). *)
val run_on : t -> int -> (unit -> 'a) -> 'a

(** [sync_to t ~cpu ~at] reconciles CPU [cpu]'s clock forward to global
    time [at] (a no-op if already ahead). Absorbed idle cycles are
    accumulated in {!stats} and counted as ["cpu_sync"]. *)
val sync_to : t -> cpu:int -> at:int -> unit

(** {2 Halt / wake} *)

val halt : t -> int -> unit
val wake : t -> int -> unit
val halted : t -> int -> bool

(** {2 Inter-processor interrupts}

    An IPI is a trap sourced from another CPU: the sender pays
    {!Cost.t.ipi} on its own clock, the target reconciles to the send
    time, wakes if halted, and the trap runs through the ordinary
    {!Machine.raise_trap} path on the target's clock. *)

(** [ipi t ~cpu vec arg] sends trap [vec]/[arg] to CPU [cpu] from the
    current CPU. A self-IPI degenerates to a plain trap. *)
val ipi : t -> cpu:int -> int -> int -> unit

(** {2 Introspection} *)

type cpu_stats = {
  cpu : int;
  cycles : int;
  halted_now : bool;
  ipis_sent : int;
  ipis_recv : int;
  synced : int;  (** idle cycles absorbed by reconciliation *)
}

val stats : t -> int -> cpu_stats
val all_stats : t -> cpu_stats list

(** A named clock counter summed over every CPU — the machine-wide view
    of per-CPU counter tables. *)
val counter_total : t -> string -> int
