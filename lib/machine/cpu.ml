(* Pm_cpu: the SMP complex — N logical CPUs over one simulated machine.

   Each CPU owns a virtual clock; all clocks share the machine's one
   observability sink, so spans, accounting and the journal stay a
   single stream (events carry the issuing CPU id via the ambient
   register in {!Pm_journal.Journal}). The host is single-threaded: the
   simulation interleaves CPUs explicitly through [run_on], and work
   executed inside charges the active CPU's clock because every charge
   site reads {!Machine.clock} at charge time.

   Time model. Per-CPU clocks advance independently while CPUs compute
   on private state; global virtual time is their maximum. Causality is
   restored at synchronization points: any cross-CPU interaction (an
   IPI, a work steal, shared ring traffic) reconciles the observer's
   clock forward to at least the issuing CPU's time ([sync_to], built on
   {!Clock.advance_to} — never backward). Because reconciliation only
   ever pulls clocks forward and the interleaving below is a fixed
   round-robin, results are deterministic. A complex with one CPU has no
   cross-CPU interactions, performs no reconciliation and never moves
   the active clock, so 1-CPU runs are byte-identical to a machine with
   no complex at all.

   An inter-processor interrupt is just a trap sourced from another CPU:
   the sender pays {!Cost.t.ipi} for the bus signalling on its own
   clock, the target reconciles to the send time, wakes if halted, and
   executes the trap through the ordinary event path on its own clock
   (paying its normal trap entry there). *)

type cpu = {
  id : int;
  clock : Clock.t;
  mutable halted : bool;
  mutable ipis_sent : int;
  mutable ipis_recv : int;
  mutable synced : int; (* idle cycles absorbed by reconciliation *)
}

type t = {
  machine : Machine.t;
  cpus : cpu array;
  mutable cur : int;
  pins : (int, int) Hashtbl.t; (* domain id -> cpu id; unpinned = 0 *)
}

(* Every live complex, for subsystems that only hold the machine (Chan,
   the linter, the placer) — the same registry idiom as Chan.iter_all,
   keyed on physical machine identity so concurrent test systems stay
   independent. *)
let complexes : t list ref = ref []

let find ~machine =
  List.find_opt (fun c -> c.machine == machine) !complexes

let create machine ~cpus:n =
  if n <= 0 then invalid_arg "Cpu.create: cpus must be positive";
  (match find ~machine with
  | Some _ -> invalid_arg "Cpu.create: machine already has an SMP complex"
  | None -> ());
  let boot = Machine.boot_clock machine in
  let obs = Clock.obs boot in
  let cpus =
    Array.init n (fun i ->
        let clock = if i = 0 then boot else Clock.create ~obs () in
        (* CPUs power on together: secondary clocks start at CPU 0's
           current time, not at zero *)
        if i > 0 then ignore (Clock.advance_to clock (Clock.now boot));
        { id = i; clock; halted = false; ipis_sent = 0; ipis_recv = 0;
          synced = 0 })
  in
  let t = { machine; cpus; cur = 0; pins = Hashtbl.create 16 } in
  complexes := t :: !complexes;
  t

let count t = Array.length t.cpus
let machine t = t.machine

let check_cpu t k =
  if k < 0 || k >= Array.length t.cpus then
    invalid_arg (Printf.sprintf "Cpu: no cpu %d (complex has %d)" k (count t))

let clock_of t k =
  check_cpu t k;
  t.cpus.(k).clock

let current t = t.cur
let now t k = Clock.now (clock_of t k)

(* Global virtual time: the machine is done when its slowest CPU is. *)
let makespan t =
  Array.fold_left (fun acc c -> max acc (Clock.now c.clock)) 0 t.cpus

(* ------------------------------------------------------------------ *)
(* Affinity                                                            *)
(* ------------------------------------------------------------------ *)

let pin t ~domain ~cpu =
  check_cpu t cpu;
  Hashtbl.replace t.pins domain cpu

let cpu_of t ~domain =
  match Hashtbl.find_opt t.pins domain with Some c -> c | None -> 0

let cross t ~a ~b = cpu_of t ~domain:a <> cpu_of t ~domain:b

(* The honest price of shared-word traffic between two domains: one
   cache-line transfer when they sit on different CPUs, free otherwise
   (and on every uniprocessor complex, where [cpu_of] is always 0). *)
let cacheline_penalty t ~from_dom ~to_dom =
  if cross t ~a:from_dom ~b:to_dom then (Machine.costs t.machine).Cost.cacheline
  else 0

(* ------------------------------------------------------------------ *)
(* Execution: interleaving CPUs on the single-threaded host            *)
(* ------------------------------------------------------------------ *)

let switch_to t k =
  check_cpu t k;
  if k <> t.cur then begin
    t.cur <- k;
    Machine.set_active_clock t.machine t.cpus.(k).clock;
    Pm_journal.Journal.set_current_cpu k
  end

let run_on t k f =
  let prev = t.cur in
  switch_to t k;
  Fun.protect ~finally:(fun () -> switch_to t prev) f

(* Reconciliation: CPU [cpu] observes an event issued at global time
   [at]; its clock moves forward to at least [at]. The absorbed idle
   cycles are counted, never silently dropped. *)
let sync_to t ~cpu ~at =
  let c = t.cpus.(cpu) in
  let d = Clock.advance_to c.clock at in
  if d > 0 then begin
    c.synced <- c.synced + d;
    Clock.count_n c.clock "cpu_sync" 1
  end

(* ------------------------------------------------------------------ *)
(* Halt / wake                                                         *)
(* ------------------------------------------------------------------ *)

let halt t k =
  check_cpu t k;
  t.cpus.(k).halted <- true

let wake t k =
  check_cpu t k;
  t.cpus.(k).halted <- false

let halted t k =
  check_cpu t k;
  t.cpus.(k).halted

(* ------------------------------------------------------------------ *)
(* Inter-processor interrupts                                          *)
(* ------------------------------------------------------------------ *)

let ipi t ~cpu vec arg =
  check_cpu t cpu;
  if cpu = t.cur then
    (* self-IPI degenerates to an ordinary trap *)
    ignore (Machine.raise_trap t.machine vec arg)
  else begin
    let sender = t.cpus.(t.cur) in
    let costs = Machine.costs t.machine in
    Clock.advance sender.clock costs.Cost.ipi;
    Clock.count sender.clock "ipi";
    sender.ipis_sent <- sender.ipis_sent + 1;
    sync_to t ~cpu ~at:(Clock.now sender.clock);
    let target = t.cpus.(cpu) in
    target.halted <- false;
    target.ipis_recv <- target.ipis_recv + 1;
    run_on t cpu (fun () -> ignore (Machine.raise_trap t.machine vec arg))
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type cpu_stats = {
  cpu : int;
  cycles : int;
  halted_now : bool;
  ipis_sent : int;
  ipis_recv : int;
  synced : int;
}

let stats t k =
  check_cpu t k;
  let c = t.cpus.(k) in
  { cpu = k; cycles = Clock.now c.clock; halted_now = c.halted;
    ipis_sent = c.ipis_sent; ipis_recv = c.ipis_recv; synced = c.synced }

let all_stats t = List.init (count t) (stats t)

(* A named counter summed over every CPU's clock — per-CPU clocks keep
   private counter tables, this is the machine-wide view. *)
let counter_total t name =
  Array.fold_left (fun acc c -> acc + Clock.counter c.clock name) 0 t.cpus
