(** Cycle cost model for the simulated machine.

    The paper's performance arguments are all relative: interface dispatch
    vs plain call, trap-mediated cross-domain invocation vs in-kernel call,
    load-time certification vs per-access sandboxing, proto-thread vs full
    thread creation. This table pins those relative magnitudes to
    SPARC-era-flavoured constants (cheap calls, traps costing hundreds of
    cycles, context switches costing hundreds more) so experiments are
    deterministic and their shapes meaningful.

    All values are in cycles. *)

type t = {
  cycle : int;  (** one unit of straight-line work *)
  call : int;  (** direct procedure call + return (register windows) *)
  indirect_call : int;  (** call through an interface slot *)
  delegation_hop : int;  (** following one delegation link *)
  trap : int;  (** trap entry + exit *)
  interrupt : int;  (** interrupt entry + dispatch *)
  context_switch : int;  (** MMU context change *)
  page_fault : int;  (** fault identification and dispatch, excl. handler *)
  map_word : int;  (** mapping one argument word into another domain *)
  tlb_fill : int;  (** software TLB refill *)
  mem_read : int;  (** one bus read *)
  mem_write : int;  (** one bus write *)
  io_read : int;  (** device register read *)
  io_write : int;  (** device register write *)
  sfi_check : int;  (** one software-fault-isolation address check *)
  sfi_entry : int;  (** sandbox crossing on method entry/exit *)
  thread_create : int;  (** full thread creation *)
  proto_thread : int;  (** proto-thread creation (pop-up fast path) *)
  promote : int;  (** proto-thread -> full thread promotion *)
  thread_switch : int;  (** scheduler switch between ready threads *)
  ns_component : int;  (** resolving one name-space path component *)
  ns_override : int;  (** consulting one override entry *)
  digest_byte : int;  (** certification digest, per byte *)
  sig_verify : int;  (** one public-key signature verification *)
  verify_instr : int;  (** bytecode verification, per abstract-interpreted instruction *)
  load_page : int;  (** mapping one page of a component image *)
  blk_seek : int;  (** block-device per-operation latency (seek + controller) *)
  blk_byte : int;  (** block-device media transfer, per byte *)
  ipi : int;  (** inter-processor interrupt: bus signalling, sender side *)
  cacheline : int;  (** one cache-line transfer between CPUs (bus round-trip) *)
  cas : int;  (** one contended compare-and-swap retry *)
}

(** SPARC-era-flavoured defaults. *)
val default : t

(** {2 Derived figures}

    Sums that recur across subsystems, named once so tests and
    benchmarks share the model's arithmetic instead of copying it. *)

(** Cost of one uninstrumented interface dispatch ([indirect_call]). *)
val dispatch : t -> int

(** Cost of recording one trace span when tracing is enabled: a single
    ring-buffer store ([mem_write]). *)
val span_store : t -> int

(** [dispatch] + [span_store]: an interface dispatch with tracing on. *)
val traced_dispatch : t -> int

(** Fixed cost of a channel doorbell that crosses domains: the trap,
    the MMU context switch into the consumer and back, and the pop-up
    proto-thread that drains the ring. *)
val doorbell_crossing : t -> int

(** Extra shared-word traffic a multi-producer enqueue pays per reserve
    on top of its sub-ring's own accounting: publishing the sub-ring's
    dirty bit ([mem_write]) and reading the group's armed flag
    ([mem_read]). *)
val mpsc_reserve : t -> int

(** [mpsc_reserve_n t ~contended] is the reserve under true parallelism:
    the flat price plus one [cas] retry per producer concurrently active
    on a different CPU. [contended = 0] (any uniprocessor run) is exactly
    [mpsc_reserve t]. *)
val mpsc_reserve_n : t -> contended:int -> int

(** Cost of migrating one ready thread between CPUs during work
    stealing: two cache-line transfers plus the queue-inspection load. *)
val steal : t -> int

(** Media time of one block-device operation over [bytes] bytes:
    [blk_seek + bytes * blk_byte]. A fetched DMA descriptor completes
    exactly this many cycles after the device picks it up. *)
val blk_op : t -> bytes:int -> int

(** A uniform all-ones table, useful in tests to count abstract events. *)
val unit_costs : t
