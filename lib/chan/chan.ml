module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Physmem = Pm_machine.Physmem
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Obs = Pm_obs.Obs
module Domain = Pm_nucleus.Domain
module Vmem = Pm_nucleus.Vmem
module Events = Pm_nucleus.Events
module Scheduler = Pm_threads.Scheduler
module Sync = Pm_threads.Sync

module Cpu = Pm_machine.Cpu

type mode = Doorbell | Poll

let default_doorbell_vec = 29
let magic = 0xC4A70001
let header_bytes = 32

(* SPARC-era line size; what one cross-CPU transfer moves *)
let cacheline_bytes = 64

(* Cache lines a message of [len] payload bytes drags across CPUs: the
   length word plus payload, plus one line for the published index word
   the other side re-reads. The bench asserts the cross-CPU gap equals
   exactly this times {!Cost.t.cacheline}. *)
let lines_of_msg len = 1 + ((4 + len + cacheline_bytes - 1) / cacheline_bytes)

(* header word offsets, in bytes *)
let off_magic = 0
let off_slots = 4
let off_slot_size = 8
let off_tail = 12
let off_head = 16
let off_armed = 20

type stats = {
  sends : int;
  recvs : int;
  doorbells : int;
  full_blocks : int;
  empty_blocks : int;
  drops : int;
}

type t = {
  machine : Machine.t;
  vmem : Vmem.t;
  chan_name : string;
  chan_id : int;
  n_slots : int;
  sz_slot : int;
  doorbell_vec : int;
  producer : Domain.t;
  mutable consumer : Domain.t option;
  prod_base : int;
  n_pages : int;
  (* physical base address of each ring page: the shared frames both
     endpoints resolve to through their own mappings *)
  phys_pages : int array;
  mutable chan_mode : mode;
  (* each side's private copy of its own free-running index; the shared
     header word is the published copy the other side reads *)
  mutable tail_local : int;
  mutable head_local : int;
  not_full : Sync.Waitq.t;
  not_empty : Sync.Waitq.t;
  mutable sends : int;
  mutable recvs : int;
  mutable doorbells : int;
  mutable full_blocks : int;
  mutable empty_blocks : int;
  mutable drops : int;
  mutable send_ctxs : int list;
      (* distinct MMU contexts observed sending, newest first — a plain
         store per new context, read by the composition linter's SPSC
         ownership check *)
  mutable ring_group : (string * int) option;
      (* set when this ring is a per-producer sub-ring of an MPSC group:
         (group name, owning MMU context). The linter then polices the
         sub-ring discipline — only the owner may enqueue — instead of
         the global single-producer rule. *)
  mutable cl_priced : bool;
      (* the cache-line cost flag: when set, traffic between endpoints
         pinned to different CPUs charges the cache-line transfer model.
         A cross-CPU ring left unpriced is a mispriced simulation — the
         composition linter's cross-cpu rule flags it. *)
}

let next_id = ref 1

(* every live channel, for the composition linter's whole-system pass;
   filtered per machine so concurrent test systems stay independent *)
let all_channels : t list ref = ref []

(* ------------------------------------------------------------------ *)
(* Shared-memory access: addresses resolve through the frame table     *)
(* captured at creation; cycle charges are explicit so that streaming  *)
(* payload traffic costs exactly one bus access per byte per side.     *)
(* ------------------------------------------------------------------ *)

let phys_addr t off =
  let ps = Machine.page_size t.machine in
  t.phys_pages.(off / ps) + (off mod ps)

(* header and length words are 4-aligned and never straddle a page *)
let read_word t off =
  Clock.advance (Machine.clock t.machine) (Machine.costs t.machine).Cost.mem_read;
  Physmem.read32 (Machine.phys t.machine) (phys_addr t off)

let write_word t off v =
  Clock.advance (Machine.clock t.machine) (Machine.costs t.machine).Cost.mem_write;
  Physmem.write32 (Machine.phys t.machine) (phys_addr t off) v

let write_bytes t ~account off (b : bytes) =
  let len = Bytes.length b in
  if account && len > 0 then
    Clock.advance (Machine.clock t.machine)
      (len * (Machine.costs t.machine).Cost.mem_write);
  let phys = Machine.phys t.machine in
  for i = 0 to len - 1 do
    Physmem.write8 phys (phys_addr t (off + i)) (Char.code (Bytes.get b i))
  done

let read_bytes t ~account off len =
  if account && len > 0 then
    Clock.advance (Machine.clock t.machine)
      (len * (Machine.costs t.machine).Cost.mem_read);
  let phys = Machine.phys t.machine in
  Bytes.init len (fun i -> Char.chr (Physmem.read8 phys (phys_addr t (off + i))))

let slot_off t i = header_bytes + (i mod t.n_slots * (4 + t.sz_slot))

(* ------------------------------------------------------------------ *)
(* Tracing: one span per enqueue/dequeue/doorbell, booked with a single
   simulated store, all behind the one enabled flag.                   *)
(* ------------------------------------------------------------------ *)

let with_span t ~domain ~meth f =
  let clock = Machine.clock t.machine in
  let obs = Clock.obs clock in
  if not (Obs.enabled obs) then f ()
  else begin
    let tok =
      Obs.span_begin obs ~now:(Clock.now clock) ~domain ~obj:("chan." ^ t.chan_name)
        ~iface:"chan" ~meth
    in
    let r = f () in
    Clock.advance clock (Machine.costs t.machine).Cost.mem_write;
    Obs.span_end obs ~now:(Clock.now clock) tok;
    r
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create machine vmem ?name ?(slots = 64) ?(slot_size = 1024) ?(mode = Doorbell)
    ?(doorbell_vec = default_doorbell_vec) ~producer () =
  if slots <= 0 then invalid_arg "Chan.create: slots must be positive";
  if slot_size <= 0 || slot_size mod 4 <> 0 then
    invalid_arg "Chan.create: slot_size must be a positive multiple of 4";
  let chan_id = !next_id in
  incr next_id;
  let name = match name with Some n -> n | None -> Printf.sprintf "chan%d" chan_id in
  let ps = Machine.page_size machine in
  let bytes_needed = header_bytes + (slots * (4 + slot_size)) in
  let n_pages = (bytes_needed + ps - 1) / ps in
  let prod_base = Vmem.alloc_pages vmem producer ~count:n_pages ~sharing:Vmem.Shared in
  let phys_pages =
    Array.init n_pages (fun i ->
        Vmem.phys_of vmem producer ~vaddr:(prod_base + (i * ps)))
  in
  let t =
    {
      machine;
      vmem;
      chan_name = name;
      chan_id;
      n_slots = slots;
      sz_slot = slot_size;
      doorbell_vec;
      producer;
      consumer = None;
      prod_base;
      n_pages;
      phys_pages;
      chan_mode = mode;
      tail_local = 0;
      head_local = 0;
      not_full = Sync.Waitq.create ();
      not_empty = Sync.Waitq.create ();
      sends = 0;
      recvs = 0;
      doorbells = 0;
      full_blocks = 0;
      empty_blocks = 0;
      drops = 0;
      send_ctxs = [];
      ring_group = None;
      cl_priced = false;
    }
  in
  all_channels := t :: !all_channels;
  write_word t off_magic magic;
  write_word t off_slots slots;
  write_word t off_slot_size slot_size;
  write_word t off_tail 0;
  write_word t off_head 0;
  (* in doorbell mode the consumer starts armed: the very first enqueue
     after a dry spell must ring *)
  write_word t off_armed (match mode with Doorbell -> 1 | Poll -> 0);
  t

let accept t ~into =
  (match t.consumer with
  | Some _ -> invalid_arg "Chan.accept: channel already has a consumer"
  | None -> ());
  let base =
    Vmem.map_shared t.vmem ~from_dom:t.producer ~vaddr:t.prod_base ~count:t.n_pages
      ~into ~prot:Pm_machine.Mmu.Read_write
  in
  t.consumer <- Some into;
  base

let name t = t.chan_name
let id t = t.chan_id
let slots t = t.n_slots
let slot_size t = t.sz_slot
let mode t = t.chan_mode
let set_mode t m = t.chan_mode <- m
let producer t = t.producer
let consumer t = t.consumer
let producer_base t = t.prod_base
let pages t = t.n_pages
let pending t = t.sends - t.recvs

let stats t =
  {
    sends = t.sends;
    recvs = t.recvs;
    doorbells = t.doorbells;
    full_blocks = t.full_blocks;
    empty_blocks = t.empty_blocks;
    drops = t.drops;
  }

(* ------------------------------------------------------------------ *)
(* Linter introspection — plain reads, no cycle charges                *)
(* ------------------------------------------------------------------ *)

let iter_all ~machine f =
  List.iter (fun c -> if c.machine == machine then f c) (List.rev !all_channels)

let senders_seen t = List.rev t.send_ctxs
let group t = t.ring_group
let set_group t ~group ~owner_ctx = t.ring_group <- Some (group, owner_ctx)
let cacheline_priced t = t.cl_priced
let set_cacheline_priced t v = t.cl_priced <- v

(* ------------------------------------------------------------------ *)
(* Cross-CPU traffic                                                   *)
(* ------------------------------------------------------------------ *)

(* The SMP complex over this channel's machine, when endpoints are
   pinned to different CPUs — the condition under which ring traffic
   physically moves cache lines between cores. *)
let cross_complex t =
  match (Cpu.find ~machine:t.machine, t.consumer) with
  | Some cpx, Some c when Cpu.cross cpx ~a:t.producer.Domain.id ~b:c.Domain.id ->
    Some (cpx, c)
  | _ -> None

let is_cross_cpu t = cross_complex t <> None

(* One side's cache-line bill for moving [len] payload bytes across
   CPUs; charged on the executing (missing) side's clock. Only when the
   channel is priced — the linter flags cross-CPU rings that are not. *)
let charge_cachelines t len =
  if t.cl_priced then
    match cross_complex t with
    | None -> ()
    | Some _ ->
      let clock = Machine.clock t.machine in
      Clock.advance clock (lines_of_msg len * (Machine.costs t.machine).Cost.cacheline);
      Clock.count clock "chan_cacheline"

let domains_of_waitq q =
  Sync.Waitq.waiters q
  |> List.filter_map (fun th -> th.Scheduler.domain)
  |> List.sort_uniq compare

(* threads parked in [send] waiting for the consumer to make room *)
let blocked_senders t = domains_of_waitq t.not_full

(* threads parked in [recv] waiting for the producer to enqueue *)
let blocked_receivers t = domains_of_waitq t.not_empty

(* ------------------------------------------------------------------ *)
(* Doorbell                                                            *)
(* ------------------------------------------------------------------ *)

let arm t = write_word t off_armed 1

let ring_doorbell t =
  with_span t ~domain:t.producer.Domain.id ~meth:"doorbell" (fun () ->
      write_word t off_armed 0;
      t.doorbells <- t.doorbells + 1;
      Clock.count (Machine.clock t.machine) "chan_doorbell";
      (* a doorbell for a consumer pinned on another CPU is physically an
         IPI: the sender pays the bus signal, the target reconciles,
         wakes if halted, and the trap runs on the target's clock *)
      match cross_complex t with
      | Some (cpx, c) ->
        Cpu.ipi cpx ~cpu:(Cpu.cpu_of cpx ~domain:c.Domain.id) t.doorbell_vec
          t.chan_id
      | None -> ignore (Machine.raise_trap t.machine t.doorbell_vec t.chan_id))

let on_doorbell t ~events ~sched ?priority f =
  let consumer =
    match t.consumer with
    | Some c -> c
    | None -> invalid_arg "Chan.on_doorbell: channel has no consumer"
  in
  (* the vector is shared: dispatch on the channel id before paying for a
     pop-up, so other channels' doorbells cost this one nothing *)
  Events.register events (Events.Trap t.doorbell_vec) ~domain:consumer (fun arg ->
      if arg = t.chan_id then
        ignore
          (Scheduler.popup sched ?priority ~name:("chan-" ^ t.chan_name)
             ~domain:consumer.Domain.id f))

(* ------------------------------------------------------------------ *)
(* Producer side                                                       *)
(* ------------------------------------------------------------------ *)

let try_send ?(account = true) t msg =
  let len = Bytes.length msg in
  if len > t.sz_slot then
    invalid_arg
      (Printf.sprintf "Chan.send: message of %d bytes exceeds slot size %d" len
         t.sz_slot);
  let head = read_word t off_head in
  if t.tail_local - head >= t.n_slots then false
  else begin
    let ctx = Mmu.current_context (Machine.mmu t.machine) in
    if not (List.mem ctx t.send_ctxs) then t.send_ctxs <- ctx :: t.send_ctxs;
    with_span t ~domain:t.producer.Domain.id ~meth:"enqueue" (fun () ->
        let off = slot_off t t.tail_local in
        write_word t off len;
        write_bytes t ~account (off + 4) msg;
        t.tail_local <- t.tail_local + 1;
        write_word t off_tail t.tail_local;
        t.sends <- t.sends + 1;
        Clock.count (Machine.clock t.machine) "chan_send";
        charge_cachelines t len;
        if t.chan_mode = Doorbell && read_word t off_armed = 1 then ring_doorbell t;
        ignore (Sync.Waitq.signal t.not_empty);
        true)
  end

let send_or_drop ?(account = true) t msg =
  let sent = try_send ~account t msg in
  if not sent then begin
    t.drops <- t.drops + 1;
    Clock.count (Machine.clock t.machine) "chan_drop"
  end;
  sent

let rec send ?(account = true) t msg =
  if not (try_send ~account t msg) then begin
    t.full_blocks <- t.full_blocks + 1;
    Clock.count (Machine.clock t.machine) "chan_full_block";
    Sync.Waitq.wait t.not_full;
    send ~account t msg
  end

(* ------------------------------------------------------------------ *)
(* Consumer side                                                       *)
(* ------------------------------------------------------------------ *)

let try_recv ?(account = true) t =
  let tail = read_word t off_tail in
  if t.head_local >= tail then None
  else
    with_span t
      ~domain:(match t.consumer with Some c -> c.Domain.id | None -> t.producer.Domain.id)
      ~meth:"dequeue"
      (fun () ->
        let off = slot_off t t.head_local in
        let len = read_word t off in
        let msg = read_bytes t ~account (off + 4) len in
        t.head_local <- t.head_local + 1;
        write_word t off_head t.head_local;
        t.recvs <- t.recvs + 1;
        Clock.count (Machine.clock t.machine) "chan_recv";
        charge_cachelines t len;
        ignore (Sync.Waitq.signal t.not_full);
        Some msg)

let rec recv ?(account = true) t =
  match try_recv ~account t with
  | Some msg -> msg
  | None ->
    t.empty_blocks <- t.empty_blocks + 1;
    Clock.count (Machine.clock t.machine) "chan_empty_block";
    if t.chan_mode = Doorbell then arm t;
    Sync.Waitq.wait t.not_empty;
    recv ~account t

let recv_batch ?(account = true) ?(max = max_int) t () =
  let rec go n acc =
    if n >= max then List.rev acc
    else
      match try_recv ~account t with
      | Some msg -> go (n + 1) (msg :: acc)
      | None ->
        (* dry: re-arm so the next enqueue rings; when the drain stopped
           at [max] with messages left, the doorbell stays quiet and the
           caller is expected to keep polling — load skips doorbells *)
        if t.chan_mode = Doorbell then arm t;
        List.rev acc
  in
  go 0 []
