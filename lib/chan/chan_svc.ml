module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Directory = Pm_nucleus.Directory
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Invoke = Pm_obj.Invoke
module Call_ctx = Pm_obj.Call_ctx
module Path = Pm_names.Path
module Nic = Pm_machine.Nic
module Images = Pm_components.Images

let fault msg = Error (Oerror.Fault msg)

(* ------------------------------------------------------------------ *)
(* Endpoint objects                                                    *)
(* ------------------------------------------------------------------ *)

let stats_value chan =
  let s = Chan.stats chan in
  Ok
    (Value.List
       [
         Value.Int s.Chan.sends;
         Value.Int s.Chan.recvs;
         Value.Int s.Chan.doorbells;
         Value.Int s.Chan.full_blocks;
         Value.Int s.Chan.empty_blocks;
         Value.Int s.Chan.drops;
       ])

let tx_endpoint api chan =
  let send_m _ctx = function
    | [ Value.Blob msg ] ->
      Chan.send chan msg;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "send(blob)")
  in
  let try_send_m _ctx = function
    | [ Value.Blob msg ] -> Ok (Value.Bool (Chan.try_send chan msg))
    | _ -> Error (Oerror.Type_error "try_send(blob)")
  in
  let pending_m _ctx = function
    | [] -> Ok (Value.Int (Chan.pending chan))
    | _ -> Error (Oerror.Type_error "pending()")
  in
  let stats_m _ctx = function
    | [] -> stats_value chan
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let tx_iface =
    Iface.make ~name:"chan.tx"
      [
        Iface.meth ~name:"send" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tunit send_m;
        Iface.meth ~name:"try_send" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tbool try_send_m;
        Iface.meth ~name:"pending" ~args:[] ~ret:Vtype.Tint pending_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
      ]
  in
  (* a tx endpoint can pose as a receive sink ("stack".rx): what a NIC
     driver attaches to; a refused frame is dropped like a real NIC's *)
  let rx_m _ctx = function
    | [ Value.Blob frame ] ->
      ignore (Chan.send_or_drop chan frame);
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "rx(blob)")
  in
  let stack_iface =
    Iface.make ~name:"stack"
      [ Iface.meth ~name:"rx" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tunit rx_m ]
  in
  Instance.create api.Api.registry ~class_name:"chan.tx"
    ~domain:(Chan.producer chan).Domain.id
    [ tx_iface; stack_iface ]

let rx_endpoint api chan =
  let dom =
    match Chan.consumer chan with
    | Some d -> d
    | None -> invalid_arg "Chan_svc.rx_endpoint: channel has no consumer"
  in
  let recv_m _ctx = function
    | [] ->
      Ok (Value.List (List.map (fun b -> Value.Blob b) (Chan.recv_batch chan ())))
    | _ -> Error (Oerror.Type_error "recv()")
  in
  let arm_m _ctx = function
    | [] ->
      Chan.arm chan;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "arm()")
  in
  let pending_m _ctx = function
    | [] -> Ok (Value.Int (Chan.pending chan))
    | _ -> Error (Oerror.Type_error "pending()")
  in
  let stats_m _ctx = function
    | [] -> stats_value chan
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let iface =
    Iface.make ~name:"chan.rx"
      [
        Iface.meth ~name:"recv" ~args:[] ~ret:(Vtype.Tlist Vtype.Tblob) recv_m;
        Iface.meth ~name:"arm" ~args:[] ~ret:Vtype.Tunit arm_m;
        Iface.meth ~name:"pending" ~args:[] ~ret:Vtype.Tint pending_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"chan.rx" ~domain:dom.Domain.id
    [ iface ]

(* ------------------------------------------------------------------ *)
(* Factory                                                             *)
(* ------------------------------------------------------------------ *)

let create api ?doorbell_vec ~domain_of_id () =
  let machine = api.Api.machine and vmem = api.Api.vmem in
  let chans : (string, Chan.t) Hashtbl.t = Hashtbl.create 8 in
  let origin (ctx : Call_ctx.t) =
    match domain_of_id ctx.Call_ctx.origin_domain with
    | Some d -> Ok d
    | None ->
      fault (Printf.sprintf "chan factory: unknown domain %d" ctx.Call_ctx.origin_domain)
  in
  let register_endpoint name kind inst =
    let path = Path.of_string (Printf.sprintf "/chan/%s/%s" name kind) in
    match Directory.register api.Api.directory path inst with
    | Ok () -> Ok ()
    | Error e -> fault ("chan factory: " ^ Pm_names.Namespace.error_to_string e)
  in
  let ( let* ) = Result.bind in
  let create_m ctx = function
    | [ Value.Str name; Value.Int slots; Value.Int slot_size ] ->
      if Hashtbl.mem chans name then fault ("chan factory: " ^ name ^ " exists")
      else
        let* dom = origin ctx in
        let chan =
          Chan.create machine vmem ~name ~slots ~slot_size ?doorbell_vec
            ~producer:dom ()
        in
        let tx = tx_endpoint api chan in
        let* () = register_endpoint name "tx" tx in
        Hashtbl.replace chans name chan;
        Ok (Value.Handle (Instance.handle tx))
    | _ -> Error (Oerror.Type_error "create(str, int, int)")
  in
  let accept_m ctx = function
    | [ Value.Str name ] ->
      (match Hashtbl.find_opt chans name with
      | None -> fault ("chan factory: no such channel " ^ name)
      | Some chan ->
        let* dom = origin ctx in
        (match Chan.accept chan ~into:dom with
        | exception Invalid_argument m -> fault m
        | _base ->
          let rx = rx_endpoint api chan in
          let* () = register_endpoint name "rx" rx in
          Ok (Value.Handle (Instance.handle rx))))
    | _ -> Error (Oerror.Type_error "accept(str)")
  in
  let list_m _ctx = function
    | [] ->
      Ok
        (Value.List
           (Hashtbl.fold (fun name _ acc -> Value.Str name :: acc) chans []
           |> List.sort compare))
    | _ -> Error (Oerror.Type_error "list()")
  in
  let iface =
    Iface.make ~name:"chanfactory"
      [
        Iface.meth ~name:"create" ~args:[ Vtype.Tstr; Vtype.Tint; Vtype.Tint ]
          ~ret:Vtype.Thandle create_m;
        Iface.meth ~name:"accept" ~args:[ Vtype.Tstr ] ~ret:Vtype.Thandle accept_m;
        Iface.meth ~name:"list" ~args:[] ~ret:(Vtype.Tlist Vtype.Tstr) list_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"chan.factory"
    ~domain:api.Api.kernel_domain.Domain.id [ iface ]

let image ?doorbell_vec ~domain_of_id () =
  Images.image ~name:"chan-factory" ~size:12_288 ~author:"kernel-team"
    ~type_safe:true
    (fun api _dom -> create api ?doorbell_vec ~domain_of_id ())

(* ------------------------------------------------------------------ *)
(* Channel-backed receive path                                         *)
(* ------------------------------------------------------------------ *)

let bridge api ?(slots = 64) ?slot_size ?doorbell_vec ~producer ~consumer ~stack () =
  let slot_size =
    match slot_size with Some s -> s | None -> (Nic.mtu + 3) / 4 * 4
  in
  let chan =
    Chan.create api.Api.machine api.Api.vmem ~name:"rx-bridge" ~slots ~slot_size
      ?doorbell_vec ~producer ()
  in
  ignore (Chan.accept chan ~into:consumer);
  let tx = tx_endpoint api chan in
  let ctx = Api.ctx api consumer in
  ignore
    (Chan.on_doorbell chan ~events:api.Api.events ~sched:api.Api.sched (fun () ->
         (* frames were paid for on enqueue; the stack's own parsing
            charges the consumer-side reads *)
         match Chan.recv_batch ~account:false chan () with
         | [] -> ()
         | frames ->
           let args = [ Value.List (List.map (fun f -> Value.Blob f) frames) ] in
           (match Invoke.call ctx stack ~iface:"stack" ~meth:"rx_batch" args with
           | Ok _ -> ()
           | Error e ->
             Logs.warn (fun m ->
                 m "chan bridge: rx_batch failed: %s" (Oerror.to_string e)))));
  (tx, chan)
