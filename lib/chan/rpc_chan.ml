module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx
module Machine = Pm_machine.Machine
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Obs = Pm_obs.Obs
module Scheduler = Pm_threads.Scheduler
module Wire = Pm_components.Wire

let fault msg = Error (Oerror.Fault msg)

let get16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let status_ok = 0

type conn = {
  api : Api.t;
  client_dom : Domain.t;
  server_dom : Domain.t;
  req : Chan.t;
  resp : Chan.t;
  mutable drain : (unit -> int) option;
}

let request_chan conn = conn.req
let response_chan conn = conn.resp

let connect api ~client ~server ?(slots = 64) ?(slot_size = 4096) ?doorbell_vec () =
  let machine = api.Api.machine and vmem = api.Api.vmem in
  let req =
    Chan.create machine vmem ~name:"rpc.req" ~slots ~slot_size ~mode:Chan.Doorbell
      ?doorbell_vec ~producer:client ()
  in
  ignore (Chan.accept req ~into:server);
  let resp =
    Chan.create machine vmem ~name:"rpc.resp" ~slots ~slot_size ~mode:Chan.Poll
      ?doorbell_vec ~producer:server ()
  in
  ignore (Chan.accept resp ~into:client);
  { api; client_dom = client; server_dom = server; req; resp; drain = None }

(* ------------------------------------------------------------------ *)
(* Batch assembly: [count(2)] then per call [len(2)][segment].         *)
(* Prefix words are charged as component accesses; the segments'       *)
(* bytes were charged by Wire build/parse, and the rings run           *)
(* unaccounted, so each byte is paid for once per side.                *)
(* With tracing on the batch header grows a 4-byte request id          *)
(* (uncharged — tracing adds zero simulated cycles) that the           *)
(* receiving side's iter re-establishes as the ambient scope.          *)
(* ------------------------------------------------------------------ *)

module Trace = Pm_journal.Trace

let rid_len () = if Trace.enabled () then 4 else 0

let set32 b off v =
  set16 b off ((v lsr 16) land 0xffff);
  set16 b (off + 2) (v land 0xffff)

let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

let assemble ctx segs =
  let rl = rid_len () in
  let n = List.length segs in
  let total =
    List.fold_left (fun acc s -> acc + 2 + Bytes.length s) (2 + rl) segs
  in
  let b = Bytes.create total in
  set16 b 0 n;
  if rl > 0 then set32 b 2 (Trace.current ());
  let off = ref (2 + rl) in
  List.iter
    (fun s ->
      let len = Bytes.length s in
      set16 b !off len;
      Bytes.blit s 0 b (!off + 2) len;
      off := !off + 2 + len)
    segs;
  Call_ctx.access ctx (2 * (n + 1));
  b

(* Split segments into chunks that fit one ring slot, preserving order. *)
let chunk ~slot_size segs =
  let hdr = 2 + rid_len () in
  let seg_room s = 2 + Bytes.length s in
  List.fold_left
    (fun (chunks, cur, used) s ->
      let need = seg_room s in
      if hdr + need > slot_size then
        invalid_arg "Rpc_chan: marshalled call exceeds the channel slot size";
      if used + need > slot_size then (List.rev cur :: chunks, [ s ], hdr + need)
      else (chunks, s :: cur, used + need))
    ([], [], hdr) segs
  |> fun (chunks, cur, _) ->
  List.rev (match cur with [] -> chunks | _ -> List.rev cur :: chunks)

let iter_segments ctx batch f =
  let rl = rid_len () in
  let count = get16 batch 0 in
  Call_ctx.access ctx 2;
  if rl > 0 then Trace.set_current (get32 batch 2);
  let off = ref (2 + rl) in
  for _ = 1 to count do
    let len = get16 batch !off in
    Call_ctx.access ctx 2;
    f (Bytes.sub batch (!off + 2) len);
    off := !off + 2 + len
  done

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let run_handler h ctx args =
  match h ctx args with
  | Ok r -> (status_ok, r)
  | Error e -> (1, Bytes.of_string e)

let serve_batch conn ctx ~procedures ~raw batch =
  let responses = ref [] in
  let served = ref 0 in
  iter_segments ctx batch (fun seg ->
      match Wire.Transport.parse ctx seg with
      | Error e -> Logs.warn (fun m -> m "rpc_chan server: %s" e)
      | Ok { Wire.Transport.sport = id; dport = _; payload } ->
        if Bytes.length payload < 1 then
          Logs.warn (fun m -> m "rpc_chan server: empty request payload")
        else begin
          let nlen = Char.code (Bytes.get payload 0) in
          if Bytes.length payload < 1 + nlen then
            Logs.warn (fun m -> m "rpc_chan server: truncated procedure name")
          else begin
            (* payload bytes were materialised (and charged) by the
               transport parse; slicing them is free *)
            let name = Bytes.sub_string payload 1 nlen in
            let args = Bytes.sub payload (1 + nlen) (Bytes.length payload - 1 - nlen) in
            (* procedure-table dispatch *)
            Call_ctx.charge ctx ctx.Call_ctx.costs.Cost.indirect_call;
            let status, result =
              if nlen = 0 then
                match raw with
                | Some h -> run_handler h ctx args
                | None -> (1, Bytes.of_string "rpc_chan: no raw handler")
              else
                match List.assoc_opt name procedures with
                | Some h -> run_handler h ctx args
                | None -> (1, Bytes.of_string ("no such procedure " ^ name))
            in
            incr served;
            responses :=
              Wire.Transport.build ctx ~sport:id ~dport:status result :: !responses
          end
        end);
  (match List.rev !responses with
  | [] -> ()
  | segs ->
    List.iter
      (fun group -> Chan.send ~account:false conn.resp (assemble ctx group))
      (chunk ~slot_size:(Chan.slot_size conn.resp) segs));
  !served

let serve api conn ~procedures ?raw () =
  let ctx = Api.ctx api conn.server_dom in
  let drain () =
    List.fold_left
      (fun acc batch -> acc + serve_batch conn ctx ~procedures ~raw batch)
      0
      (Chan.recv_batch ~account:false conn.req ())
  in
  conn.drain <- Some drain;
  ignore
    (Chan.on_doorbell conn.req ~events:api.Api.events ~sched:api.Api.sched (fun () ->
         ignore (drain ())));
  (* catch up with anything flushed before the pop-up existed; the dry
     drain re-arms the doorbell *)
  ignore (drain ())

let drain_server conn =
  match conn.drain with
  | Some d -> d ()
  | None -> invalid_arg "Rpc_chan.drain_server: serve has not been called"

(* The channel-backed mode of {!Pm_components.Rpc.create_server}: same
   ["rpc.server"] interface (poll/requests/failures), same classic wire
   format — carried as raw segments over the ring pair instead of stack
   packets, so a caller in another domain pays one doorbell per batch
   rather than a proxy fault per call. Served calls are normally drained
   by the doorbell pop-up; [poll] catches up inline like the stack
   server's poll does. *)
let create_server api conn ~procedures () =
  let requests = ref 0 and failures = ref 0 in
  let raw ctx args =
    match Pm_components.Rpc.raw_handler ~procedures ctx args with
    | Ok resp ->
      incr requests;
      (match Pm_components.Rpc.decode_response resp with
      | Ok (_, status, _) when status <> Pm_components.Rpc.status_ok -> incr failures
      | _ -> ());
      Ok resp
    | Error e ->
      incr failures;
      Error e
  in
  serve api conn ~procedures:[] ~raw ();
  let poll_m _ctx = function
    | [] -> Ok (Value.Int (drain_server conn))
    | _ -> Error (Oerror.Type_error "poll()")
  in
  let requests_m _ctx = function
    | [] -> Ok (Value.Int !requests)
    | _ -> Error (Oerror.Type_error "requests()")
  in
  let failures_m _ctx = function
    | [] -> Ok (Value.Int !failures)
    | _ -> Error (Oerror.Type_error "failures()")
  in
  let iface =
    Iface.make ~name:"rpc.server"
      [
        Iface.meth ~name:"poll" ~args:[] ~ret:Vtype.Tint poll_m;
        Iface.meth ~name:"requests" ~args:[] ~ret:Vtype.Tint requests_m;
        Iface.meth ~name:"failures" ~args:[] ~ret:Vtype.Tint failures_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"chan.rpc_server"
    ~domain:conn.server_dom.Domain.id [ iface ]

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

type client_state = {
  mutable next_id : int;
  mutable buffered : bytes list; (* marshalled request segments, newest first *)
  pending : (int, int * bytes) Hashtbl.t; (* id -> status, payload *)
}

let with_flush_span conn f =
  let clock = Machine.clock conn.api.Api.machine in
  let obs = Clock.obs clock in
  if not (Obs.enabled obs) then f ()
  else begin
    let tok =
      Obs.span_begin obs ~now:(Clock.now clock) ~domain:conn.client_dom.Domain.id
        ~obj:("chan." ^ Chan.name conn.req) ~iface:"chan" ~meth:"batch_flush"
    in
    let r = f () in
    Clock.advance clock (Machine.costs conn.api.Api.machine).Cost.mem_write;
    Obs.span_end obs ~now:(Clock.now clock) tok;
    r
  end

let client api conn ?(max_polls = 10_000) () =
  let st = { next_id = 1; buffered = []; pending = Hashtbl.create 16 } in
  let submit ctx ~name ~args =
    let nlen = String.length name in
    if nlen > 255 then invalid_arg "Rpc_chan: procedure name too long";
    let id = st.next_id land 0xffff in
    st.next_id <- st.next_id + 1;
    let payload = Bytes.create (1 + nlen + Bytes.length args) in
    Bytes.set payload 0 (Char.chr nlen);
    Bytes.blit_string name 0 payload 1 nlen;
    Bytes.blit args 0 payload (1 + nlen) (Bytes.length args);
    (* the segment's bytes — header and payload — are charged here, by
       the transport build, directly into the batch under assembly *)
    let seg = Wire.Transport.build ctx ~sport:id ~dport:0 payload in
    st.buffered <- seg :: st.buffered;
    id
  in
  let drain_responses ctx =
    List.iter
      (fun batch ->
        iter_segments ctx batch (fun seg ->
            match Wire.Transport.parse ctx seg with
            | Error e -> Logs.warn (fun m -> m "rpc_chan client: %s" e)
            | Ok { Wire.Transport.sport = id; dport = status; payload } ->
              Hashtbl.replace st.pending id (status, payload)))
      (Chan.recv_batch ~account:false conn.resp ())
  in
  let flush ctx =
    match List.rev st.buffered with
    | [] -> 0
    | segs ->
      st.buffered <- [];
      with_flush_span conn (fun () ->
          List.iter
            (fun group -> Chan.send ~account:false conn.req (assemble ctx group))
            (chunk ~slot_size:(Chan.slot_size conn.req) segs);
          (* the doorbell pop-up normally served the batch synchronously
             inside the enqueue; collect whatever is already back *)
          drain_responses ctx;
          List.length segs)
  in
  let take ctx id =
    let rec await polls =
      match Hashtbl.find_opt st.pending id with
      | Some (status, payload) ->
        Hashtbl.remove st.pending id;
        if status = status_ok then Ok (Value.Blob payload)
        else fault ("rpc_chan: remote error: " ^ Bytes.to_string payload)
      | None ->
        drain_responses ctx;
        if Hashtbl.mem st.pending id then await polls
        else if polls >= max_polls then fault "rpc_chan: timed out awaiting response"
        else begin
          (* a blocked server handler finishes under the scheduler *)
          Scheduler.yield ();
          await (polls + 1)
        end
    in
    await 0
  in
  let submit_m ctx = function
    | [ Value.Str name; Value.Blob args ] -> Ok (Value.Int (submit ctx ~name ~args))
    | _ -> Error (Oerror.Type_error "submit(str, blob)")
  in
  let flush_m ctx = function
    | [] -> Ok (Value.Int (flush ctx))
    | _ -> Error (Oerror.Type_error "flush()")
  in
  let take_m ctx = function
    | [ Value.Int id ] -> take ctx id
    | _ -> Error (Oerror.Type_error "take(int)")
  in
  let call_m ctx = function
    | [ Value.Str name; Value.Blob args ] ->
      let id = submit ctx ~name ~args in
      ignore (flush ctx);
      take ctx id
    | _ -> Error (Oerror.Type_error "call(str, blob)")
  in
  let call_many_m ctx = function
    | [ Value.List calls ] ->
      let ids =
        List.map
          (function
            | Value.Pair (Value.Str name, Value.Blob args) ->
              Ok (submit ctx ~name ~args)
            | _ -> Error (Oerror.Type_error "call_many([(str, blob); ...])"))
          calls
      in
      (match
         List.find_opt (function Error _ -> true | Ok _ -> false) ids
       with
      | Some (Error e) -> Error e
      | _ ->
        ignore (flush ctx);
        let rec collect acc = function
          | [] -> Ok (Value.List (List.rev acc))
          | Ok id :: rest ->
            (match take ctx id with
            | Ok v -> collect (v :: acc) rest
            | Error e -> Error e)
          | Error e :: _ -> Error e
        in
        collect [] ids)
    | _ -> Error (Oerror.Type_error "call_many(list)")
  in
  let transport_call_m ctx = function
    | [ Value.Blob req ] ->
      let id = submit ctx ~name:"" ~args:req in
      ignore (flush ctx);
      take ctx id
    | _ -> Error (Oerror.Type_error "call(blob)")
  in
  let batch_iface =
    Iface.make ~name:"rpc.batch"
      [
        Iface.meth ~name:"submit" ~args:[ Vtype.Tstr; Vtype.Tblob ] ~ret:Vtype.Tint
          submit_m;
        Iface.meth ~name:"flush" ~args:[] ~ret:Vtype.Tint flush_m;
        Iface.meth ~name:"take" ~args:[ Vtype.Tint ] ~ret:Vtype.Tblob take_m;
        Iface.meth ~name:"call" ~args:[ Vtype.Tstr; Vtype.Tblob ] ~ret:Vtype.Tblob
          call_m;
        Iface.meth ~name:"call_many" ~args:[ Vtype.Tlist Vtype.Tany ]
          ~ret:(Vtype.Tlist Vtype.Tblob) call_many_m;
      ]
  in
  let transport_iface =
    Iface.make ~name:"rpc.transport"
      [ Iface.meth ~name:"call" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tblob transport_call_m ]
  in
  Instance.create api.Api.registry ~class_name:"chan.rpc_client"
    ~domain:conn.client_dom.Domain.id
    [ batch_iface; transport_iface ]
