(** The channel factory: channels as ordinary name-space citizens.

    The factory is a bootable component (see {!image}) conventionally
    registered at [/shared/chan]. Any domain binds it through the name
    space and drives it through the ["chanfactory"] interface:

    - [create(name:str, slots:int, slot_size:int) -> handle] — allocate
      a ring with the {e calling} domain as producer; the transmit
      endpoint object is registered at [/chan/<name>/tx]
    - [accept(name:str) -> handle] — map the ring into the calling
      domain as consumer; the receive endpoint object is registered at
      [/chan/<name>/rx]
    - [list() -> list of str] — names of live channels

    Endpoint objects are plain instances, so the usual machinery
    applies: another domain imports them through proxies, and an
    interposing agent ({!Pm_components.Interpose}) swapped in at
    [/chan/<name>/tx] monitors every message crossing the channel, just
    like any other agent.

    A transmit endpoint exports ["chan.tx"] ([send], [try_send],
    [pending], [stats]) and also ["stack"] with [rx(blob)], so it can
    stand in for a protocol stack as a NIC driver's receive sink — the
    channel-backed receive path ({!bridge}). A receive endpoint exports
    ["chan.rx"] ([recv] — drain a batch, [arm], [pending], [stats]). *)

(** [create api ~domain_of_id ()] builds the factory instance in the
    kernel domain. [domain_of_id] resolves a call's origin domain id to
    the domain — the same injection pattern the trace service uses for
    its interposer factory. *)
val create :
  Pm_nucleus.Api.t ->
  ?doorbell_vec:int ->
  domain_of_id:(int -> Pm_nucleus.Domain.t option) ->
  unit ->
  Pm_obj.Instance.t

(** [image ~domain_of_id ()] wraps the factory as a loadable component
    image (author ["kernel-team"], so the standard delegate chain
    certifies it for the kernel domain). *)
val image :
  ?doorbell_vec:int ->
  domain_of_id:(int -> Pm_nucleus.Domain.t option) ->
  unit ->
  Pm_nucleus.Loader.image

(** [tx_endpoint api chan] / [rx_endpoint api chan] build endpoint
    objects directly (the factory uses these; benches and bridges can
    too). The tx endpoint lives in the producer domain, the rx endpoint
    in the consumer domain (requires {!Chan.accept} first). *)
val tx_endpoint : Pm_nucleus.Api.t -> Chan.t -> Pm_obj.Instance.t

val rx_endpoint : Pm_nucleus.Api.t -> Chan.t -> Pm_obj.Instance.t

(** [bridge api ~producer ~consumer ~stack ()] rewires a receive path
    over a channel: builds a ring from [producer] (the driver's domain)
    to [consumer] (the stack's), returns a tx endpoint whose ["stack"]
    [rx] enqueues frames (dropping when full, as a NIC does), and
    registers a doorbell pop-up in [consumer] that drains each burst and
    hands it to [stack]'s [rx_batch] in one invocation — the mailbox hop
    without a proxy crossing per frame. *)
val bridge :
  Pm_nucleus.Api.t ->
  ?slots:int ->
  ?slot_size:int ->
  ?doorbell_vec:int ->
  producer:Pm_nucleus.Domain.t ->
  consumer:Pm_nucleus.Domain.t ->
  stack:Pm_obj.Instance.t ->
  unit ->
  Pm_obj.Instance.t * Chan.t
