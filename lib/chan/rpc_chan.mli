(** Batched cross-domain calls over a pair of {!Chan} rings.

    Where the proxy path pays a page fault, two context switches and
    per-word argument mapping on {e every} call (E3: ~93–174× the
    same-domain dispatch), this transport marshals N calls into one ring
    slot and pays the crossing — one doorbell trap, one pop-up, two
    context switches — once per batch.

    {2 Wire format}

    A batch is one ring message: a 16-bit call count followed by
    length-prefixed {!Pm_components.Wire.Transport} segments. A request
    segment carries the call id in [sport] and a
    [[nlen][name][args]] payload; a response segment echoes the id in
    [sport], the status in [dport] (0 = ok) and carries the result
    bytes. All marshalling bytes are charged through {!Wire}'s
    accounting; the rings run with [~account:false] so each byte is
    paid for exactly once per side (the zero-copy contract).

    {2 Flow}

    The client buffers [submit]ed calls and [flush] publishes them: one
    blocking enqueue, a doorbell if the server is dry, and — because the
    server's drain runs as a pop-up proto-thread inside the doorbell
    trap — responses are usually waiting in the reply ring by the time
    [flush] returns. [take] yield-polls for stragglers (a server handler
    that blocked promotes its proto-thread and completes under the
    scheduler). *)

type conn

val request_chan : conn -> Chan.t
val response_chan : conn -> Chan.t

(** [connect api ~client ~server ()] builds the ring pair: requests flow
    client→server on a [Doorbell] channel, responses server→client on a
    [Poll] channel (the client drains replies right after flushing). *)
val connect :
  Pm_nucleus.Api.t ->
  client:Pm_nucleus.Domain.t ->
  server:Pm_nucleus.Domain.t ->
  ?slots:int ->
  ?slot_size:int ->
  ?doorbell_vec:int ->
  unit ->
  conn

(** [serve api conn ~procedures ()] registers the server's doorbell
    pop-up: each ring drains every pending batch, dispatches the named
    procedures and publishes one response batch per request batch.
    [raw] (if given) handles requests submitted with an empty name —
    the hook {!transport} uses to carry foreign protocols such as
    {!Pm_components.Rpc}. *)
val serve :
  Pm_nucleus.Api.t ->
  conn ->
  procedures:(string * Pm_components.Rpc.handler) list ->
  ?raw:Pm_components.Rpc.handler ->
  unit ->
  unit

(** [client api conn ()] builds the client endpoint object (in the
    client domain). It exports ["rpc.batch"]:
    - [submit(name:str, args:blob) -> int] — marshal now, send later
    - [flush() -> int] — publish the batch, returns calls flushed
    - [take(id:int) -> blob] — result of a flushed call ([Fault] on a
      remote error or timeout)
    - [call(name:str, args:blob) -> blob] — submit+flush+take of one
    - [call_many(list of (name, args) pairs) -> list of blob] — the
      batch verb: N calls, one crossing each way

    and ["rpc.transport"]: [call(blob) -> blob], a synchronous
    request/response round trip for layering {!Pm_components.Rpc}
    ({!Pm_components.Rpc.create_client_via}) over a channel. *)
val client : Pm_nucleus.Api.t -> conn -> ?max_polls:int -> unit -> Pm_obj.Instance.t

(** [drain_server conn] processes pending request batches inline —
    polling mode, for consumers that want to skip doorbells wholesale.
    Returns the number of calls served. Requires {!serve} first. *)
val drain_server : conn -> int

(** [create_server api conn ~procedures ()] is the channel-backed mode
    of {!Pm_components.Rpc.create_server}: the same ["rpc.server"]
    object — [poll() -> int], [requests() -> int], [failures() -> int] —
    speaking the same classic wire format, but served from the ring
    pair via {!serve} (mounted through
    {!Pm_components.Rpc.raw_handler}), so a user-space server never
    sees a per-call proxy fault. Pair it with
    {!Pm_components.Rpc.create_client_via} riding {!client}'s
    ["rpc.transport"], or with {!client}'s batched verbs directly. *)
val create_server :
  Pm_nucleus.Api.t ->
  conn ->
  procedures:(string * Pm_components.Rpc.handler) list ->
  unit ->
  Pm_obj.Instance.t
