(* Multi-producer single-consumer channel: per-producer SPSC sub-rings
   multiplexed into one consumer view through a small shared group
   header. Each producer owns a private ring (so the SPSC free-running
   tail discipline is preserved per ring — no CAS needed anywhere), and
   every enqueue additionally "reserves" through the group header: a
   store publishing the sub-ring's dirty hint and a load of the shared
   armed flag. That extra shared-word traffic is the price of
   multi-producer fan-in and is charged explicitly
   ({!Pm_machine.Cost.mpsc_reserve}).

   The armed flag is shared by all producers, which is what coalesces
   doorbells: the first enqueue after a dry spell clears it and rings;
   producers enqueueing before the consumer runs find it already clear
   and stay silent. One trap wakes the consumer for the whole burst,
   whoever produced it. *)

module Machine = Pm_machine.Machine
module Physmem = Pm_machine.Physmem
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost
module Cpu = Pm_machine.Cpu
module Obs = Pm_obs.Obs
module Domain = Pm_nucleus.Domain
module Vmem = Pm_nucleus.Vmem
module Events = Pm_nucleus.Events
module Scheduler = Pm_threads.Scheduler

let magic = 0xC4A70002

(* header word offsets, in bytes *)
let off_magic = 0
let off_producers = 4
let off_armed = 8
let off_dirty = 12

(* Group ids share the doorbell trap vector's argument namespace with
   plain channel ids ({!Chan.id}); a disjoint range keeps the dispatch
   on the shared vector unambiguous. *)
let next_group_id = ref (1 lsl 30)

type stats = {
  sends : int;
  recvs : int;
  doorbells : int;
  drops : int;
  reserves : int;  (** group-header reserve transactions (one per send) *)
}

type t = {
  machine : Machine.t;
  vmem : Vmem.t;
  group_name : string;
  group_id : int;
  ring_slots : int;
  ring_slot_size : int;
  doorbell_vec : int;
  consumer : Domain.t;
  hdr_base : int; (* virtual base of the header page in the consumer *)
  hdr_phys : int;
  mutable gmode : Chan.mode;
  mutable rings : Chan.t array; (* one per producer, attach order *)
  mutable cursor : int; (* round-robin start for the next drain sweep *)
  mutable doorbells : int;
  mutable reserves : int;
}

type tx = { group : t; sub : Chan.t; idx : int }

(* ------------------------------------------------------------------ *)
(* Group header access: same explicit shared-word charging as the ring
   headers in {!Chan}.                                                 *)
(* ------------------------------------------------------------------ *)

let hread t off =
  Clock.advance (Machine.clock t.machine) (Machine.costs t.machine).Cost.mem_read;
  Physmem.read32 (Machine.phys t.machine) (t.hdr_phys + off)

let hwrite t off v =
  Clock.advance (Machine.clock t.machine) (Machine.costs t.machine).Cost.mem_write;
  Physmem.write32 (Machine.phys t.machine) (t.hdr_phys + off) v

let with_span t ~domain ~meth f =
  let clock = Machine.clock t.machine in
  let obs = Clock.obs clock in
  if not (Obs.enabled obs) then f ()
  else begin
    let tok =
      Obs.span_begin obs ~now:(Clock.now clock) ~domain
        ~obj:("mpsc." ^ t.group_name) ~iface:"mpsc" ~meth
    in
    let r = f () in
    Clock.advance clock (Machine.costs t.machine).Cost.mem_write;
    Obs.span_end obs ~now:(Clock.now clock) tok;
    r
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create machine vmem ?name ?(slots = 64) ?(slot_size = 1024)
    ?(mode = Chan.Doorbell) ?(doorbell_vec = Chan.default_doorbell_vec) ~consumer
    () =
  if slots <= 0 then invalid_arg "Mpsc.create: slots must be positive";
  if slot_size <= 0 || slot_size mod 4 <> 0 then
    invalid_arg "Mpsc.create: slot_size must be a positive multiple of 4";
  let group_id = !next_group_id in
  incr next_group_id;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "mpsc%d" (group_id land 0xffff)
  in
  (* the group header lives in its own shared page, owned by the
     consumer and mapped into each producer at attach *)
  let hdr_base = Vmem.alloc_pages vmem consumer ~count:1 ~sharing:Vmem.Shared in
  let hdr_phys = Vmem.phys_of vmem consumer ~vaddr:hdr_base in
  let t =
    {
      machine;
      vmem;
      group_name = name;
      group_id;
      ring_slots = slots;
      ring_slot_size = slot_size;
      doorbell_vec;
      consumer;
      hdr_base;
      hdr_phys;
      gmode = mode;
      rings = [||];
      cursor = 0;
      doorbells = 0;
      reserves = 0;
    }
  in
  hwrite t off_magic magic;
  hwrite t off_producers 0;
  (* like an SPSC doorbell ring: the consumer starts armed, so the very
     first enqueue from any producer rings *)
  hwrite t off_armed (match mode with Chan.Doorbell -> 1 | Chan.Poll -> 0);
  hwrite t off_dirty 0;
  t

let attach t ~producer =
  let idx = Array.length t.rings in
  let sub =
    Chan.create t.machine t.vmem
      ~name:(Printf.sprintf "%s.p%d" t.group_name idx)
      ~slots:t.ring_slots ~slot_size:t.ring_slot_size ~mode:Chan.Poll
      ~doorbell_vec:t.doorbell_vec ~producer ()
  in
  ignore (Chan.accept sub ~into:t.consumer);
  (* the sub-ring never rings for itself: the group header does; tag it
     so the linter polices per-sub-ring ownership *)
  Chan.set_group sub ~group:t.group_name ~owner_ctx:producer.Domain.id;
  (* MPSC is the fan-in path of choice on SMP: price sub-ring traffic
     honestly if this producer lands on another CPU (free otherwise) *)
  Chan.set_cacheline_priced sub true;
  (* the producer maps the group header too: the reserve words are the
     shared state every enqueue touches *)
  ignore
    (Vmem.map_shared t.vmem ~from_dom:t.consumer ~vaddr:t.hdr_base ~count:1
       ~into:producer ~prot:Pm_machine.Mmu.Read_write);
  t.rings <- Array.append t.rings [| sub |];
  hwrite t off_producers (Array.length t.rings);
  { group = t; sub; idx }

let name t = t.group_name
let id t = t.group_id
let mode t = t.gmode
let set_mode t m = t.gmode <- m
let producers t = Array.length t.rings
let consumer t = t.consumer
let sub_rings t = Array.to_list t.rings
let sub_ring tx = tx.sub

let pending t = Array.fold_left (fun acc r -> acc + Chan.pending r) 0 t.rings

let stats t =
  let sends, recvs, drops =
    Array.fold_left
      (fun (s, r, d) ring ->
        let st = Chan.stats ring in
        (s + st.Chan.sends, r + st.Chan.recvs, d + st.Chan.drops))
      (0, 0, 0) t.rings
  in
  { sends; recvs; doorbells = t.doorbells; drops; reserves = t.reserves }

(* ------------------------------------------------------------------ *)
(* Doorbell                                                            *)
(* ------------------------------------------------------------------ *)

let arm t = hwrite t off_armed 1

let ring_doorbell t tx =
  with_span t ~domain:(Chan.producer tx.sub).Domain.id ~meth:"doorbell" (fun () ->
      hwrite t off_armed 0;
      t.doorbells <- t.doorbells + 1;
      Clock.count (Machine.clock t.machine) "mpsc_doorbell";
      (* cross-CPU group doorbells are IPIs, same as SPSC ones *)
      match Cpu.find ~machine:t.machine with
      | Some cpx
        when Cpu.cross cpx ~a:(Chan.producer tx.sub).Domain.id
               ~b:t.consumer.Domain.id ->
        Cpu.ipi cpx
          ~cpu:(Cpu.cpu_of cpx ~domain:t.consumer.Domain.id)
          t.doorbell_vec t.group_id
      | _ -> ignore (Machine.raise_trap t.machine t.doorbell_vec t.group_id))

let on_doorbell t ~events ~sched ?priority f =
  Events.register events (Events.Trap t.doorbell_vec) ~domain:t.consumer (fun arg ->
      if arg = t.group_id then
        ignore
          (Scheduler.popup sched ?priority ~name:("mpsc-" ^ t.group_name)
             ~domain:t.consumer.Domain.id f))

(* ------------------------------------------------------------------ *)
(* Producer side                                                       *)
(* ------------------------------------------------------------------ *)

(* CAS contention on the group header. The reserve's publish is a
   compare-and-swap on the dirty word; on a true multiprocessor every
   *other* producer that is concurrently active — its sub-ring non-empty
   and its domain pinned to a different CPU than the reserver — is
   hammering the same line, and each costs the reserver one CAS retry.
   On a uniprocessor this is always zero: time-sliced producers never
   overlap a reserve, so the flat [mpsc_reserve] figure stands. *)
let contenders t tx =
  match Cpu.find ~machine:t.machine with
  | None -> 0
  | Some cpx ->
    if Cpu.count cpx <= 1 then 0
    else begin
      let me = (Chan.producer tx.sub).Domain.id in
      let n = ref 0 in
      Array.iteri
        (fun i r ->
          if
            i <> tx.idx && Chan.pending r > 0
            && Cpu.cross cpx ~a:me ~b:(Chan.producer r).Domain.id
          then incr n)
        t.rings;
      !n
    end

(* The reserve: publish the sub-ring's dirty hint and read the shared
   armed flag — the extra shared-word traffic a multi-producer enqueue
   pays. Priced {!Cost.mpsc_reserve_n}: the uncontended figure plus one
   CAS retry per concurrently-contending producer; ring the group
   doorbell if armed. *)
let reserve tx =
  let t = tx.group in
  t.reserves <- t.reserves + 1;
  Clock.count (Machine.clock t.machine) "mpsc_reserve";
  Physmem.write32 (Machine.phys t.machine) (t.hdr_phys + off_dirty) (tx.idx + 1);
  let contended = contenders t tx in
  if contended > 0 then
    Clock.count_n (Machine.clock t.machine) "mpsc_cas_retry" contended;
  Clock.advance (Machine.clock t.machine)
    (Cost.mpsc_reserve_n (Machine.costs t.machine) ~contended);
  let armed = Physmem.read32 (Machine.phys t.machine) (t.hdr_phys + off_armed) in
  if t.gmode = Chan.Doorbell && armed = 1 then ring_doorbell t tx

let try_send ?account tx msg =
  if Chan.try_send ?account tx.sub msg then begin
    reserve tx;
    true
  end
  else false

let send_or_drop ?account tx msg =
  let sent = Chan.send_or_drop ?account tx.sub msg in
  if sent then reserve tx;
  sent

let send ?account tx msg =
  Chan.send ?account tx.sub msg;
  reserve tx

(* ------------------------------------------------------------------ *)
(* Consumer side: one view over all sub-rings                          *)
(* ------------------------------------------------------------------ *)

let nrings t = Array.length t.rings

(* one round-robin pass starting at the cursor: at most one message per
   sub-ring, so a heavy producer cannot starve its neighbours *)
let try_recv ?account t =
  let n = nrings t in
  let rec scan k =
    if k >= n then None
    else
      let i = (t.cursor + k) mod n in
      match Chan.try_recv ?account t.rings.(i) with
      | Some msg ->
        t.cursor <- (i + 1) mod n;
        Some msg
      | None -> scan (k + 1)
  in
  if n = 0 then None else scan 0

let recv_batch ?account ?(max = max_int) t () =
  if nrings t = 0 then []
  else begin
    (* the dirty hint short-circuits a dry drain with one shared read
       instead of touching every sub-ring's tail *)
    let dirty = hread t off_dirty in
    if dirty = 0 then begin
      if t.gmode = Chan.Doorbell then arm t;
      []
    end
    else begin
      hwrite t off_dirty 0;
      let rec go n acc =
        if n >= max then (false, List.rev acc)
        else
          match try_recv ?account t with
          | Some msg -> go (n + 1) (msg :: acc)
          | None -> (true, List.rev acc)
      in
      let dry, msgs = go 0 [] in
      (* dry: re-arm so the next enqueue from any producer rings; when
         the drain stopped at [max] the caller keeps polling *)
      if dry && t.gmode = Chan.Doorbell then arm t;
      msgs
    end
  end
