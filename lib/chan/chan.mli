(** Zero-copy shared-memory channels.

    A channel is a bounded single-producer/single-consumer ring laid out
    in pages that {!Pm_nucleus.Vmem} allocates [Shared] in the producer's
    domain and {!Pm_nucleus.Vmem.map_shared} maps into the consumer's —
    the paper's "pages can be allocated exclusively or shared among
    different protection domains" put to work as a data path. Both
    endpoints address the same physical frames, so a message is written
    once by the producer and read once by the consumer; no proxy fault,
    no per-word argument mapping.

    {2 Cycle-accounted wire format}

    The ring starts with a 32-byte header of 32-bit words:

    {v
    word 0  magic      0xC4A70001
    word 1  slots      ring capacity (messages)
    word 2  slot_size  payload bytes per slot
    word 3  tail       free-running producer index (producer-written)
    word 4  head       free-running consumer index (consumer-written)
    word 5  armed      doorbell request flag (consumer arms, producer clears)
    v}

    followed by [slots] slots of [4 + slot_size] bytes, each a length
    word plus payload. Each side keeps its own index in private memory
    and reads only the word owned by the other side, so per message the
    producer pays one shared-word read (head), the payload store, and
    two shared-word writes (length, tail) plus the armed-flag read; the
    consumer pays one shared-word read (tail), the length read, the
    payload load, and one shared-word write (head). Shared-word traffic
    is charged at [mem_read]/[mem_write]; payload bytes are charged one
    bus access per byte on each side. Callers whose bytes were already
    charged by a marshalling layer (e.g. {!Wire} build/parse in
    {!Rpc_chan}) pass [~account:false] to avoid double-charging the
    copy — that is the zero-copy contract: every payload byte is paid
    for exactly once per side, wherever it was materialised.

    {2 Doorbell vs polling}

    In [Doorbell] mode the consumer arms the doorbell whenever it runs
    dry; the next enqueue clears the flag and raises the channel trap
    vector with the channel id as argument, which {!Pm_nucleus.Events}
    delivers into the consumer's domain — typically as a proto-thread
    pop-up registered with {!on_doorbell}. While the ring is non-empty
    the flag stays clear and enqueues skip the trap entirely, so a
    loaded channel degenerates to pure polling. [Poll] mode never rings.

    {2 Back-pressure}

    [send] on a full ring and [recv] on an empty one park the caller on
    a {!Pm_threads.Sync.Waitq} (so they must run inside a thread or
    proto-thread); the opposite endpoint signals the queue on progress.
    [try_send]/[try_recv] never block. *)

type mode = Doorbell | Poll

type t

(** Default trap vector shared by channel doorbells; the trap argument
    carries the channel id. *)
val default_doorbell_vec : int

val header_bytes : int

type stats = {
  sends : int;
  recvs : int;
  doorbells : int;
  full_blocks : int;  (** sends that had to park on a full ring *)
  empty_blocks : int;  (** recvs that had to park on an empty ring *)
  drops : int;  (** non-blocking sends refused on a full ring *)
}

(** [create machine vmem ~producer ()] allocates the ring [Shared] in
    [producer]'s domain. [slots] defaults to 64, [slot_size] (bytes,
    multiple of 4) to 1024, [mode] to [Doorbell]. *)
val create :
  Pm_machine.Machine.t ->
  Pm_nucleus.Vmem.t ->
  ?name:string ->
  ?slots:int ->
  ?slot_size:int ->
  ?mode:mode ->
  ?doorbell_vec:int ->
  producer:Pm_nucleus.Domain.t ->
  unit ->
  t

(** [accept t ~into] maps the ring's pages into the consumer domain and
    returns the base virtual address there. Raises [Invalid_argument] if
    the channel already has a consumer. *)
val accept : t -> into:Pm_nucleus.Domain.t -> int

val name : t -> string
val id : t -> int
val slots : t -> int
val slot_size : t -> int
val mode : t -> mode
val set_mode : t -> mode -> unit
val producer : t -> Pm_nucleus.Domain.t
val consumer : t -> Pm_nucleus.Domain.t option

(** Base virtual address of the ring in the producer's address space. *)
val producer_base : t -> int

(** Number of pages backing the ring. *)
val pages : t -> int

(** Messages currently enqueued (bookkeeping view, uncharged). *)
val pending : t -> int

val stats : t -> stats

(** [try_send t msg] enqueues without blocking; [false] when full.
    Raises [Invalid_argument] if [msg] exceeds the slot size. *)
val try_send : ?account:bool -> t -> bytes -> bool

(** [send t msg] blocks on a full ring until the consumer makes room. *)
val send : ?account:bool -> t -> bytes -> unit

(** [send_or_drop t msg] is [try_send] but counts a refused message as a
    drop — the behaviour a NIC bridge wants. *)
val send_or_drop : ?account:bool -> t -> bytes -> bool

(** [try_recv t] dequeues without blocking. *)
val try_recv : ?account:bool -> t -> bytes option

(** [recv t] blocks on an empty ring until the producer enqueues. *)
val recv : ?account:bool -> t -> bytes

(** [recv_batch t ()] drains up to [max] messages (default: everything),
    then re-arms the doorbell when in [Doorbell] mode and dry. *)
val recv_batch : ?account:bool -> ?max:int -> t -> unit -> bytes list

(** [arm t] requests a doorbell for the next enqueue (consumer side). *)
val arm : t -> unit

(** {2 Cross-CPU pricing}

    When the channel's endpoints are pinned to different CPUs of an SMP
    complex ({!Pm_machine.Cpu}), ring traffic physically moves cache
    lines between cores. Setting the cache-line cost flag makes each
    successful send and recv charge {!Pm_machine.Cost.t.cacheline} per
    line the message occupies — {!lines_of_msg} — on the executing
    side's clock. Doorbells to a consumer on another CPU are always
    delivered as IPIs (that is routing, not pricing). A cross-CPU ring
    left unpriced is flagged by the composition linter's cross-cpu
    rule. *)

(** Cache lines a message of [len] payload bytes drags across CPUs: the
    length word plus payload, plus one line for the published index
    word. *)
val lines_of_msg : int -> int

val cacheline_priced : t -> bool
val set_cacheline_priced : t -> bool -> unit

(** The endpoints are pinned to different CPUs of this machine's SMP
    complex (false when there is no complex or no consumer yet). *)
val is_cross_cpu : t -> bool

(** [on_doorbell t ~events ~sched f] registers [f] to run as a pop-up
    proto-thread in the consumer's domain whenever this channel rings.
    The underlying trap vector is shared between channels; the callback
    fires only for this channel's id. Requires a consumer. *)
val on_doorbell :
  t ->
  events:Pm_nucleus.Events.t ->
  sched:Pm_threads.Scheduler.t ->
  ?priority:int ->
  (unit -> unit) ->
  Pm_nucleus.Events.cb_id

(** {2 Linter introspection}

    Plain bookkeeping reads for the composition linter ({!Pm_check});
    none of these charge simulated cycles. *)

(** [iter_all ~machine f] visits every channel created on [machine], in
    creation order. *)
val iter_all : machine:Pm_machine.Machine.t -> (t -> unit) -> unit

(** [senders_seen t] lists the distinct MMU contexts that have enqueued
    on [t], in first-seen order — more than one is an SPSC ownership
    violation (unless the ring is an MPSC sub-ring, see {!group}). *)
val senders_seen : t -> int list

(** [group t] is [Some (group_name, owner_ctx)] when [t] is a
    per-producer sub-ring of an MPSC group ({!Mpsc}): exactly the owning
    MMU context may enqueue, and the linter checks that instead of the
    global single-producer rule. *)
val group : t -> (string * int) option

(** Tag [t] as an MPSC sub-ring owned by [owner_ctx] (called by
    {!Mpsc.attach}). *)
val set_group : t -> group:string -> owner_ctx:int -> unit

(** Domains of threads currently parked in a blocking [send] (full
    ring): they wait on the consumer's progress. *)
val blocked_senders : t -> int list

(** Domains of threads currently parked in a blocking [recv] (empty
    ring): they wait on the producer's progress. *)
val blocked_receivers : t -> int list
