(** Multi-producer single-consumer channel groups.

    {!Chan} is strictly SPSC: one free-running tail, one owner. This
    module composes many of those rings — one per producer, each in the
    producer's own pages — into a single consumer view, which is the
    shape a shared service endpoint (the protocol stack's tx side, a
    logging sink, an RPC server) actually has: many non-cooperating
    domains feeding one drain.

    {2 Wire format}

    The group adds one shared header page, owned by the consumer and
    mapped into every producer at {!attach}:

    {v
    word 0  magic      0xC4A70002
    word 1  producers  attached sub-ring count
    word 2  armed      group doorbell request flag (consumer arms,
                       the first producer to enqueue clears)
    word 3  dirty      producer hint: idx+1 of the last sub-ring that
                       enqueued (pure store; consumer clears on drain)
    v}

    Each sub-ring is an ordinary {!Chan} ring in [Poll] mode (it never
    rings for itself), tagged with {!Chan.set_group} so the composition
    linter checks per-sub-ring ownership — exactly one producer per
    sub-ring — instead of flat-rejecting the multi-producer group.

    {2 The reserve}

    Every enqueue, after the sub-ring's own SPSC traffic, performs one
    {e reserve} through the group header: a store publishing the dirty
    hint and a load of the shared armed flag, counted as
    ["mpsc_reserve"]. The publish is a compare-and-swap on the dirty
    word, and its price depends on who else is hitting that line {e at
    the same instant}: the reserve charges
    {!Pm_machine.Cost.mpsc_reserve_n} — the flat uncontended figure plus
    one CAS retry ({!Pm_machine.Cost.t.cas}, counted ["mpsc_cas_retry"])
    per {e concurrently-contending} producer, i.e. per other producer
    whose sub-ring is non-empty and whose domain is pinned to a
    different CPU of the machine's SMP complex ({!Pm_machine.Cpu}). On a
    uniprocessor — no complex, one CPU, or all producers on one CPU —
    contention is structurally zero (time-sliced producers never overlap
    a reserve) and the charge reduces to the old flat
    {!Pm_machine.Cost.mpsc_reserve}.

    {2 Doorbell coalescing}

    The armed flag is {e group-wide}: when several producers enqueue
    before the consumer runs, only the first finds the flag set and
    traps; the rest see it clear and stay silent. One pop-up drains the
    whole burst round-robin. The consumer re-arms when a drain runs
    dry, exactly like {!Chan.recv_batch}.

    {2 Fairness}

    The consumer view drains round-robin with a rotating cursor, one
    message per sub-ring per pass, so a heavy producer cannot starve
    its neighbours; and because each producer blocks (or drops) only on
    its {e own} full sub-ring, back-pressure on one producer never
    stalls another. *)

type t

(** A per-producer send handle returned by {!attach}. *)
type tx

type stats = {
  sends : int;
  recvs : int;
  doorbells : int;
  drops : int;
  reserves : int;  (** group-header reserve transactions (one per send) *)
}

(** [create machine vmem ~consumer ()] allocates the group header page
    [Shared] in the consumer's domain. [slots]/[slot_size] size each
    per-producer sub-ring (defaults 64 x 1024, slot size a multiple of
    4); [mode] defaults to [Doorbell]. Group ids live in a range
    disjoint from {!Chan.id}, so both kinds share the doorbell trap
    vector safely. *)
val create :
  Pm_machine.Machine.t ->
  Pm_nucleus.Vmem.t ->
  ?name:string ->
  ?slots:int ->
  ?slot_size:int ->
  ?mode:Chan.mode ->
  ?doorbell_vec:int ->
  consumer:Pm_nucleus.Domain.t ->
  unit ->
  t

(** [attach t ~producer] creates the producer's private sub-ring, maps
    it into the consumer and the group header into the producer, and
    returns the send handle. *)
val attach : t -> producer:Pm_nucleus.Domain.t -> tx

val name : t -> string
val id : t -> int
val mode : t -> Chan.mode
val set_mode : t -> Chan.mode -> unit
val producers : t -> int
val consumer : t -> Pm_nucleus.Domain.t

(** The per-producer sub-rings, in attach order — ordinary channels the
    linter and the placer can inspect. *)
val sub_rings : t -> Chan.t list

(** The sub-ring behind one send handle. *)
val sub_ring : tx -> Chan.t

(** Messages currently enqueued across all sub-rings (bookkeeping view,
    uncharged). *)
val pending : t -> int

val stats : t -> stats

(** [try_send tx msg] enqueues on the producer's own sub-ring without
    blocking, then reserves through the group header; [false] when that
    sub-ring is full. *)
val try_send : ?account:bool -> tx -> bytes -> bool

(** [send tx msg] blocks on the producer's own full sub-ring only —
    other producers are unaffected. *)
val send : ?account:bool -> tx -> bytes -> unit

(** [send_or_drop tx msg] counts a refused message as a drop on the
    producer's sub-ring. *)
val send_or_drop : ?account:bool -> tx -> bytes -> bool

(** [try_recv t] dequeues one message round-robin across sub-rings,
    advancing the fairness cursor. *)
val try_recv : ?account:bool -> t -> bytes option

(** [recv_batch t ()] drains up to [max] messages round-robin. A dry
    group costs one shared read (the dirty hint) and re-arms the group
    doorbell in [Doorbell] mode. *)
val recv_batch : ?account:bool -> ?max:int -> t -> unit -> bytes list

(** [arm t] requests a group doorbell for the next enqueue from any
    producer (consumer side). *)
val arm : t -> unit

(** [on_doorbell t ~events ~sched f] registers [f] as a pop-up
    proto-thread in the consumer's domain for this group's doorbell. *)
val on_doorbell :
  t ->
  events:Pm_nucleus.Events.t ->
  sched:Pm_threads.Scheduler.t ->
  ?priority:int ->
  (unit -> unit) ->
  Pm_nucleus.Events.cb_id
