(* Experiment harness for the Paramecium reproduction.

   The paper (HotOS '95) publishes no tables or figures, so each
   experiment here regenerates a *claim* from the text; DESIGN.md §4 maps
   E1..E8 to the claims. All primary numbers are simulated cycles from the
   machine's cost model — deterministic run to run — followed by an
   optional Bechamel wall-clock suite over the same workloads
   (`--wall`). *)

open Paramecium

let line fmt = Printf.printf (fmt ^^ "\n%!")

let header title claim =
  line "";
  line "==============================================================================";
  line "%s" title;
  line "claim: %s" claim;
  line "=============================================================================="

(* fixed-width table printing *)
let print_table ~columns rows =
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let print_row cells =
    line "| %s |" (String.concat " | " (List.map2 pad cells widths))
  in
  print_row (List.map fst columns);
  line "|%s|" (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

let i = string_of_int
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let fresh_sys () = System.create ~seed:0xBEEF ()

(* --quick shrinks iteration counts for CI smoke runs *)
let quick = ref false

(* ------------------------------------------------------------------ *)
(* E1: method invocation overhead vs object grain size                 *)
(* ------------------------------------------------------------------ *)

module E1 = struct
  let grains = [ 1; 10; 100; 1_000; 10_000 ]
  let calls = 200

  type fixture = {
    clock : Clock.t;
    ctx : Call_ctx.t;
    plain : Instance.t; (* method on the instance itself *)
    delegating : Instance.t; (* resolves through 3 delegation hops *)
  }

  let make_fixture () =
    let clock = Clock.create () in
    let costs = Cost.default in
    let ctx = Call_ctx.make ~clock ~costs ~caller_domain:0 in
    let registry = Registry.create () in
    let work_iface =
      Iface.make ~name:"work"
        [
          Iface.meth ~name:"run" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit
            (fun ctx -> function
              | [ Value.Int g ] ->
                Call_ctx.work ctx g;
                Ok Value.Unit
              | _ -> Error (Oerror.Type_error "run(int)"));
        ]
    in
    let plain = Instance.create registry ~class_name:"e1.plain" ~domain:0 [ work_iface ] in
    let hop c = Instance.create registry ~class_name:c ~domain:0 [] in
    let h1 = hop "e1.hop1" and h2 = hop "e1.hop2" and delegating = hop "e1.front" in
    Instance.set_delegate h1 (Some plain);
    Instance.set_delegate h2 (Some h1);
    Instance.set_delegate delegating (Some h2);
    { clock; ctx; plain; delegating }

  (* the baseline: a direct procedure call costs [costs.call] plus the work *)
  let direct_call fx g =
    Clock.advance fx.clock Cost.default.Cost.call;
    Call_ctx.work fx.ctx g

  let cycles_per_call fx body =
    let before = Clock.now fx.clock in
    for _ = 1 to calls do
      body ()
    done;
    float_of_int (Clock.now fx.clock - before) /. float_of_int calls

  let run () =
    header "E1  Method invocation overhead vs grain size"
      "\"overhead [is] relatively low because our objects have a relatively large \
       grain size\" (§2)";
    let fx = make_fixture () in
    let rows =
      List.map
        (fun g ->
          let direct = cycles_per_call fx (fun () -> direct_call fx g) in
          let iface =
            cycles_per_call fx (fun () ->
                ignore
                  (Invoke.call fx.ctx fx.plain ~iface:"work" ~meth:"run"
                     [ Value.Int g ]))
          in
          let deleg =
            cycles_per_call fx (fun () ->
                ignore
                  (Invoke.call fx.ctx fx.delegating ~iface:"work" ~meth:"run"
                     [ Value.Int g ]))
          in
          let overhead = (iface -. direct) /. direct *. 100. in
          let overhead3 = (deleg -. direct) /. direct *. 100. in
          [ i g; f1 direct; f1 iface; f1 deleg; f2 overhead ^ "%"; f2 overhead3 ^ "%" ])
        grains
    in
    print_table
      ~columns:
        [ ("grain(cyc)", ()); ("direct", ()); ("interface", ()); ("deleg x3", ());
          ("iface ovh", ()); ("deleg ovh", ()) ]
      rows
end

(* ------------------------------------------------------------------ *)
(* E2: name-space binding costs                                        *)
(* ------------------------------------------------------------------ *)

module E2 = struct
  let depths = [ 1; 2; 4; 8; 16 ]
  let override_chain = [ 0; 1; 2; 4; 8 ]
  let binds = 100

  (* each depth gets its own subtree so an entry at one depth does not
     collide with a directory at another *)
  let deep_path depth =
    Path.of_string
      ("/"
      ^ String.concat "/"
          (Printf.sprintf "t%d" depth :: List.init (depth - 1) (fun j -> Printf.sprintf "d%d" j)))

  let fixture () =
    let clock = Clock.create () in
    let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
    let ns = Namespace.create () in
    List.iter
      (fun depth ->
        match Namespace.register ns (deep_path depth) depth with
        | Ok () -> ()
        | Error e -> failwith (Namespace.error_to_string e))
      depths;
    (clock, ctx, ns)

  let run () =
    header "E2  Name-space binding"
      "instance naming with per-object overrides and inheritance makes \
       reconfiguration cheap (§2/§3)";
    let clock, ctx, ns = fixture () in
    let root = View.of_namespace ns in
    let cycles body =
      let before = Clock.now clock in
      for _ = 1 to binds do
        body ()
      done;
      float_of_int (Clock.now clock - before) /. float_of_int binds
    in
    line "-- bind cost vs path depth (no overrides) --";
    print_table
      ~columns:[ ("depth", ()); ("cycles/bind", ()) ]
      (List.map
         (fun d ->
           let path = deep_path d in
           [ i d; f1 (cycles (fun () -> ignore (View.bind ctx root path))) ])
         depths);
    line "";
    line "-- bind cost vs override-chain length (depth-4 path, miss in every view) --";
    let path4 = deep_path 4 in
    print_table
      ~columns:[ ("views", ()); ("cycles/bind", ()) ]
      (List.map
         (fun n ->
           let view = ref root in
           for v = 0 to n - 1 do
             view :=
               View.derive
                 ~overrides:[ (Path.of_string (Printf.sprintf "/other%d" v), 1) ]
                 !view
           done;
           [ i n; f1 (cycles (fun () -> ignore (View.bind ctx !view path4))) ])
         override_chain);
    line "";
    line "-- interposition: one namespace replace swaps all future binds --";
    (match Namespace.replace ns (deep_path 4) 999 with
    | Ok old -> line "replace /d0/.../d3: old=%d new=999 (constant-time swap)" old
    | Error e -> line "replace failed: %s" (Namespace.error_to_string e));
    (match View.bind ctx root path4 with
    | Ok h -> line "next bind resolves to %d" h
    | Error _ -> line "bind failed")
end

(* ------------------------------------------------------------------ *)
(* E3: cross-domain invocation via proxies                             *)
(* ------------------------------------------------------------------ *)

module E3 = struct
  let arg_words = [ 0; 1; 4; 16; 64 ]
  let calls = 100

  let echo_iface =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tunit
          (fun _ctx _ -> Ok Value.Unit);
      ]

  let fixture () =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let udom = System.new_domain sys "client" in
    let api = Kernel.api k in
    let target =
      Instance.create api.Api.registry ~class_name:"e3.echo" ~domain:kdom.Domain.id
        [ echo_iface ]
    in
    Kernel.register_at k "/svc/echo" target;
    let local =
      Instance.create api.Api.registry ~class_name:"e3.local" ~domain:udom.Domain.id
        [ echo_iface ]
    in
    let proxy = Kernel.bind k udom "/svc/echo" in
    (k, kdom, udom, target, local, proxy)

  let blob_of_words w = Value.Blob (Bytes.create (max 0 ((w - 1) * 4)))

  let run () =
    header "E3  Cross-domain invocation"
      "proxies fault into a per-page fault handler which maps arguments, switches \
       context, and invokes the method (§3)";
    let k, kdom, udom, target, local, proxy = fixture () in
    let clock = Kernel.clock k in
    let per_call dom obj =
      Mmu.switch_context (Machine.mmu (Kernel.machine k)) dom.Domain.id;
      let ctx = Kernel.ctx k dom in
      fun words ->
        let before = Clock.now clock in
        for _ = 1 to calls do
          ignore (Invoke.call ctx obj ~iface:"echo" ~meth:"echo" [ blob_of_words words ])
        done;
        float_of_int (Clock.now clock - before) /. float_of_int calls
    in
    let rows =
      List.map
        (fun w ->
          let same = (per_call udom local) w in
          let kernel_local = (per_call kdom target) w in
          let cross = (per_call udom proxy) w in
          [ i w; f1 same; f1 kernel_local; f1 cross; f1 (cross /. same) ^ "x" ])
        arg_words
    in
    print_table
      ~columns:
        [ ("arg words", ()); ("same-domain", ()); ("in-kernel", ());
          ("cross-domain", ()); ("factor", ()) ]
      rows
end

(* ------------------------------------------------------------------ *)
(* E4: component placement — the headline comparison                   *)
(* ------------------------------------------------------------------ *)

module E4 = struct
  let payload_sizes = [ 64; 256; 512; 1024; 1400 ]
  let packets = 50

  let make_packet ctx ~dst payload_size =
    let payload = String.make payload_size 'p' in
    let tp = Wire.Transport.build ctx ~sport:9 ~dport:7 (Bytes.of_string payload) in
    let np = Wire.Net.build ctx ~src:13 ~dst ~ttl:8 ~proto:Stack.proto_transport tp in
    Wire.Frame.build ctx ~dst ~src:13 np

  let cycles_per_packet placement payload_size =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let placement, consume_dom =
      match placement with
      | `Certified -> (System.Certified, kdom)
      | `Sandboxed -> (System.Sandboxed, kdom)
      | `User ->
        let dom = System.new_domain sys "netuser" in
        (System.User dom, dom)
    in
    let net = System.setup_networking sys ~placement ~addr:42 () in
    let ctx = Kernel.ctx k kdom in
    ignore
      (Invoke.call_exn (Kernel.ctx k consume_dom) net.System.stack ~iface:"stack"
         ~meth:"bind_port" [ Value.Int 7 ]);
    let packet = Bytes.to_string (make_packet ctx ~dst:42 payload_size) in
    (* warm up one packet so the lazy binds don't pollute the measurement *)
    Nic.inject (Kernel.nic k) packet;
    Kernel.step k ~ticks:2 ();
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for _ = 1 to packets do
      Nic.inject (Kernel.nic k) packet;
      Kernel.step k ~ticks:1 ()
    done;
    Kernel.step k ~ticks:4 ();
    let delivered =
      match
        Invoke.call_exn (Kernel.ctx k consume_dom) net.System.stack ~iface:"stack"
          ~meth:"pending" [ Value.Int 7 ]
      with
      | Value.Int n -> n
      | _ -> 0
    in
    assert (delivered >= packets);
    float_of_int (Clock.now clock - before) /. float_of_int packets

  let run () =
    header "E4  Protocol-stack placement: certified vs sandboxed vs user space"
      "\"verifying a certificate at load-time obviates the need for run time fault \
       checks thus allowing components to be more efficient\" (§5)";
    let rows =
      List.map
        (fun size ->
          let cert = cycles_per_packet `Certified size in
          let sand = cycles_per_packet `Sandboxed size in
          let user = cycles_per_packet `User size in
          [ i size; f1 cert; f1 sand; f1 user; f2 (sand /. cert) ^ "x";
            f2 (user /. cert) ^ "x" ])
        payload_sizes
    in
    print_table
      ~columns:
        [ ("payload B", ()); ("certified", ()); ("sandboxed", ()); ("user-space", ());
          ("sand/cert", ()); ("user/cert", ()) ]
      rows;
    line "(cycles per packet, rx path through driver + 3-layer stack)"
end

(* ------------------------------------------------------------------ *)
(* E5: certification cost and amortization                             *)
(* ------------------------------------------------------------------ *)

module E5 = struct
  let sizes = [ 1_024; 4_096; 16_384; 65_536; 262_144 ]

  let null_construct (api : Api.t) (dom : Domain.t) =
    Instance.create api.Api.registry ~class_name:"e5.null" ~domain:dom.Domain.id []

  let validation_cycles size =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let image =
      Images.image ~name:(Printf.sprintf "c%d" size) ~size ~type_safe:true
        null_construct
    in
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    (match System.install sys image ~placement:System.Certified ~at:"/svc/c" with
    | Ok _ -> ()
    | Error e -> failwith e);
    Clock.now clock - before

  let run () =
    header "E5  Load-time certification cost and break-even"
      "a certifier may take arbitrary off-line time; the kernel only pays digest + \
       signature verification once, at load time (§4)";
    print_table
      ~columns:[ ("code bytes", ()); ("load+validate cycles", ()) ]
      (List.map (fun s -> [ i s; i (validation_cycles s) ]) sizes);
    line "";
    (* break-even against the sandbox, using the E4 per-packet numbers *)
    let cert = E4.cycles_per_packet `Certified 256 in
    let sand = E4.cycles_per_packet `Sandboxed 256 in
    let validation = validation_cycles 24_576 (* the stack's image size *) in
    let per_packet_tax = sand -. cert in
    line
      "stack image (24KB): validation = %d cycles; sandbox tax = %.1f cycles/packet"
      validation per_packet_tax;
    line "=> certification amortizes after %.0f packets"
      (float_of_int validation /. per_packet_tax);
    line "";
    (* on-line certification: the whole delegate latency hits the kernel *)
    let online_cost =
      let sys = fresh_sys () in
      let image =
        Images.image ~name:"online" ~size:24_576 ~type_safe:true null_construct
      in
      let clock = Kernel.clock (System.kernel sys) in
      let before = Clock.now clock in
      (match
         System.install sys image ~placement:System.Online_certified ~at:"/svc/o"
       with
      | Ok _ -> ()
      | Error e -> failwith e);
      Clock.now clock - before
    in
    line "on-line certification of the same image: %d cycles (compiler delegate" online_cost;
    line "latency charged to the kernel — why certification is normally off-line)";
    line "";
    line "-- off-line certification latency by delegate (not charged to the kernel) --";
    print_table
      ~columns:[ ("delegate", ()); ("latency (cycles)", ()) ]
      [
        [ "trusted compiler"; i Policies.latency_compiler ];
        [ "prover"; i Policies.latency_prover ];
        [ "test team"; i Policies.latency_test_team ];
        [ "administrator"; i Policies.latency_administrator ];
        [ "graduate student"; i Policies.latency_student ];
      ]
end

(* ------------------------------------------------------------------ *)
(* E6: pop-up threads and the proto-thread fast path                   *)
(* ------------------------------------------------------------------ *)

module E6 = struct
  let events = 100
  let block_probs = [ 0; 25; 50; 75; 100 ]

  type mode = Raw_callback | Popup | Eager_thread

  (* cycles to take one interrupt whose handler may block on a semaphore *)
  let cycles_per_event mode ~block_pct =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let sched = Kernel.sched k in
    let sem = Sync.Semaphore.create 0 in
    let rng = Prng.create ~seed:7 in
    let handled = ref 0 in
    let handler _arg =
      (* handler body: a little protocol work, sometimes a blocking wait *)
      let blocks = Prng.int rng 100 < block_pct in
      if blocks then Sync.Semaphore.acquire sem;
      incr handled
    in
    (match mode with
    | Raw_callback ->
      ignore (Events.register (Kernel.events k) (Events.Irq 7) ~domain:kdom handler)
    | Popup ->
      ignore
        (Events.register_popup (Kernel.events k) (Events.Irq 7) ~domain:kdom ~sched
           handler)
    | Eager_thread ->
      ignore
        (Events.register (Kernel.events k) (Events.Irq 7) ~domain:kdom (fun arg ->
             ignore
               (Scheduler.spawn sched ~name:"eager" ~domain:kdom.Domain.id (fun () ->
                    handler arg)))));
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for _ = 1 to events do
      Machine.raise_irq (Kernel.machine k) 7;
      (* release any blocked handler and let it finish *)
      while Scheduler.live sched > 0 do
        if Sync.Semaphore.value sem = 0 then Sync.Semaphore.release sem;
        ignore (Scheduler.run sched ())
      done
    done;
    assert (!handled = events);
    float_of_int (Clock.now clock - before) /. float_of_int events

  let run () =
    header "E6  Pop-up threads: proto-thread fast path"
      "\"we delay the actual creation of the pop-up thread by creating a \
       proto-thread ... fast interrupt processing of user code with proper thread \
       semantics\" (§3)";
    line "-- interrupt handling cost by mechanism (non-blocking handlers) --";
    print_table
      ~columns:[ ("mechanism", ()); ("cycles/event", ()) ]
      [
        [ "raw call-back (no thread semantics)"; f1 (cycles_per_event Raw_callback ~block_pct:0) ];
        [ "pop-up (proto-thread fast path)"; f1 (cycles_per_event Popup ~block_pct:0) ];
        [ "eager thread per event"; f1 (cycles_per_event Eager_thread ~block_pct:0) ];
      ];
    line "";
    line "-- pop-up vs eager threads as handlers start blocking --";
    print_table
      ~columns:
        [ ("block %", ()); ("popup", ()); ("eager", ()); ("popup saves", ()) ]
      (List.map
         (fun p ->
           let popup = cycles_per_event Popup ~block_pct:p in
           let eager = cycles_per_event Eager_thread ~block_pct:p in
           [ i p; f1 popup; f1 eager; f2 ((eager -. popup) /. eager *. 100.) ^ "%" ])
         block_probs)
end

(* ------------------------------------------------------------------ *)
(* E7: interposing agents                                              *)
(* ------------------------------------------------------------------ *)

module E7 = struct
  let stack_depths = [ 0; 1; 2; 4; 8 ]
  let sends = 50

  let cycles_per_send depth =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
    let api = Kernel.api k in
    (* stack [depth] monitors in front of the driver *)
    let target = ref net.System.driver in
    for _ = 1 to depth do
      target := Interpose.packet_monitor api kdom ~target:!target
    done;
    let ctx = Kernel.ctx k kdom in
    let frame = Value.Blob (Bytes.create 256) in
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for _ = 1 to sends do
      ignore (Invoke.call_exn ctx !target ~iface:"netdev" ~meth:"send" [ frame ]);
      Kernel.step k ~ticks:1 ()
    done;
    float_of_int (Clock.now clock - before) /. float_of_int sends

  let run () =
    header "E7  Interposing agents"
      "interposing agents are \"trivial\" to construct and enable \"powerful \
       monitoring tools\" (§2)";
    let base = cycles_per_send 0 in
    print_table
      ~columns:
        [ ("monitors", ()); ("cycles/send", ()); ("added/monitor", ()) ]
      (List.map
         (fun d ->
           let c = cycles_per_send d in
           let per = if d = 0 then 0. else (c -. base) /. float_of_int d in
           [ i d; f1 c; f1 per ])
         stack_depths)
end

(* ------------------------------------------------------------------ *)
(* E8: delegate ordering and the escape hatch                          *)
(* ------------------------------------------------------------------ *)

module E8 = struct
  let components = 200

  (* a random component population: some compiler-safe, some annotated,
     some merely from trusted authors *)
  let random_meta rng idx =
    let type_safe = Prng.int rng 100 < 40 in
    let proof_annotated = (not type_safe) && Prng.int rng 100 < 30 in
    let author = if Prng.int rng 100 < 60 then "kernel-team" else "third-party" in
    Meta.make ~author ~type_safe ~proof_annotated
      ~name:(Printf.sprintf "comp%d" idx)
      ~size:(1024 + Prng.int rng 65536)
      ()

  let chain_fast_first = [ "compiler"; "prover"; "admin" ]
  let chain_slow_first = [ "admin"; "prover"; "compiler" ]

  let delegate_spec ?(flaky_prover = 0.0) rng name =
    match name with
    | "compiler" -> (name, Policies.trusted_compiler, Policies.latency_compiler)
    | "prover" ->
      ( name,
        Policies.flaky rng ~fail_probability:flaky_prover Policies.prover,
        Policies.latency_prover )
    | "admin" ->
      ( name,
        Policies.administrator ~trusted_authors:[ "kernel-team" ],
        Policies.latency_administrator )
    | _ -> invalid_arg "delegate_spec"

  let simulate ?(flaky_prover = 0.0) chain =
    let rng = Prng.create ~seed:0x5EED in
    let auth_rng = Prng.create ~seed:0xCA in
    let auth = Authority.create auth_rng ~name:"ca" ~key_bits:384 in
    List.iter
      (fun name ->
        let name, policy, latency = delegate_spec ~flaky_prover rng name in
        ignore (Authority.add_delegate auth auth_rng ~name ~policy ~latency ()))
      chain;
    let pop_rng = Prng.create ~seed:0x90 in
    let certified = ref 0 and total_latency = ref 0.0 in
    for idx = 1 to components do
      let m = random_meta pop_rng idx in
      let outcome = Authority.certify auth m ~code:"code" ~now:0 in
      if outcome.Authority.certificate <> None then incr certified;
      total_latency := !total_latency +. float_of_int outcome.Authority.elapsed
    done;
    (!certified, !total_latency /. float_of_int components)

  let run () =
    header "E8  Delegate ordering and the escape hatch"
      "subordinates \"may be ordered in preference and provide an escape hatch if \
       one of the subordinates fails to certify\" (§4)";
    line "population: %d components (40%% type-safe, 30%% of the rest annotated, 60%% kernel-team)"
      components;
    line "";
    let c1, l1 = simulate chain_fast_first in
    let c2, l2 = simulate chain_slow_first in
    print_table
      ~columns:
        [ ("delegate order", ()); ("certified", ()); ("mean latency (cycles)", ()) ]
      [
        [ "compiler -> prover -> admin"; i c1; f1 l1 ];
        [ "admin -> prover -> compiler"; i c2; f1 l2 ];
      ];
    line "(same components certified either way; ordering changes only the cost)";
    line "";
    line "-- escape hatch under an unreliable prover (compiler->prover->admin) --";
    print_table
      ~columns:
        [ ("prover failure", ()); ("certified", ()); ("mean latency", ()) ]
      (List.map
         (fun pct ->
           let c, l = simulate ~flaky_prover:(float_of_int pct /. 100.) chain_fast_first in
           [ i pct ^ "%"; i c; f1 l ])
         [ 0; 25; 50; 75; 100 ])
end


(* ------------------------------------------------------------------ *)
(* E9: run-time inlining (the paper's proposed future work)            *)
(* ------------------------------------------------------------------ *)

module E9 = struct
  let grains = [ 1; 10; 100; 1_000 ]

  let run () =
    header "E9  Run-time inlining"
      "\"We are, however, contemplating run time inline techniques in case this \
       might turn out to be a bottleneck\" (§2) — implemented as binding-time \
       specialization";
    let fx = E1.make_fixture () in
    let inlined =
      Inline.specialize_exn fx.E1.ctx fx.E1.plain ~iface:"work" ~meth:"run"
    in
    let rows =
      List.map
        (fun g ->
          let direct = E1.cycles_per_call fx (fun () -> E1.direct_call fx g) in
          let iface =
            E1.cycles_per_call fx (fun () ->
                ignore
                  (Invoke.call fx.E1.ctx fx.E1.plain ~iface:"work" ~meth:"run"
                     [ Value.Int g ]))
          in
          let inl = E1.cycles_per_call fx (fun () -> ignore (inlined [ Value.Int g ])) in
          [ i g; f1 iface; f1 inl; f1 direct;
            f2 ((inl -. direct) /. direct *. 100.) ^ "%" ])
        grains
    in
    print_table
      ~columns:
        [ ("grain(cyc)", ()); ("interface", ()); ("inlined", ()); ("direct", ());
          ("inline ovh", ()) ]
      rows;
    line "(inlining pays one dispatch at specialization time; revocation is still";
    line " checked per call, so the floor is direct + 1 guard cycle)"
end

(* ------------------------------------------------------------------ *)
(* E10: demand paging on the fault-callback mechanism                  *)
(* ------------------------------------------------------------------ *)

module E10 = struct
  let budget = 32
  let working_sets = [ 8; 16; 32; 48; 64 ]
  let accesses = 2_000

  (* sequential-with-reuse sweep over [ws] pages *)
  let measure ws =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let m = Kernel.machine k in
    let ps = Machine.page_size m in
    let pager =
      Pager.create (Kernel.api k) kdom ~disk:(Kernel.disk k) ~resident_budget:budget
        ~backing_pages:64 ~first_block:0
    in
    let base = Pager.base pager in
    (* warm up: touch the working set once *)
    for p = 0 to ws - 1 do
      Machine.write32 m kdom.Domain.id (base + (p * ps)) p
    done;
    let clock = Kernel.clock k in
    let faults0 = Pager.faults pager in
    let before = Clock.now clock in
    for a = 0 to accesses - 1 do
      let p = a mod ws in
      ignore (Machine.read32 m kdom.Domain.id (base + (p * ps)))
    done;
    let cycles = float_of_int (Clock.now clock - before) /. float_of_int accesses in
    let faults =
      float_of_int (Pager.faults pager - faults0) /. float_of_int accesses *. 1000.
    in
    (faults, cycles)

  let run () =
    header "E10  Demand paging outside the nucleus"
      "virtual memory implementations live outside the nucleus, built on per-page \
       fault call-backs (§3)";
    line "resident budget: %d frames; CLOCK replacement; 4KB pages; %d accesses" budget
      accesses;
    print_table
      ~columns:
        [ ("working set", ()); ("faults/1000 accesses", ()); ("cycles/access", ()) ]
      (List.map
         (fun ws ->
           let faults, cycles = measure ws in
           [ i ws; f1 faults; f1 cycles ])
         working_sets)
end


(* ------------------------------------------------------------------ *)
(* E11: cost-model sensitivity ablation                                 *)
(* ------------------------------------------------------------------ *)

module E11 = struct
  let sfi_costs = [ 1; 2; 4; 8; 16 ]
  let payload = 256
  let packets = 30

  (* the E4 measurement, but parameterized on the cost table *)
  let per_packet costs placement =
    let sys = System.create ~seed:0xBEEF ~costs () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let placement, consume_dom =
      match placement with
      | `Certified -> (System.Certified, kdom)
      | `Sandboxed -> (System.Sandboxed, kdom)
      | `User ->
        let dom = System.new_domain sys "netuser" in
        (System.User dom, dom)
    in
    let net = System.setup_networking sys ~placement ~addr:42 () in
    let ctx = Kernel.ctx k kdom in
    ignore
      (Invoke.call_exn (Kernel.ctx k consume_dom) net.System.stack ~iface:"stack"
         ~meth:"bind_port" [ Value.Int 7 ]);
    let packet = Bytes.to_string (E4.make_packet ctx ~dst:42 payload) in
    Nic.inject (Kernel.nic k) packet;
    Kernel.step k ~ticks:2 ();
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for _ = 1 to packets do
      Nic.inject (Kernel.nic k) packet;
      Kernel.step k ~ticks:1 ()
    done;
    Kernel.step k ~ticks:4 ();
    float_of_int (Clock.now clock - before) /. float_of_int packets

  let run () =
    header "E11  Cost-model sensitivity"
      "ablation: the E4 conclusion should not hinge on the exact price of one SFI \
       address check (default 4 cycles)";
    print_table
      ~columns:
        [ ("sfi_check", ()); ("certified", ()); ("sandboxed", ()); ("user-space", ());
          ("sand/cert", ()); ("sand vs user", ()) ]
      (List.map
         (fun c ->
           let costs = { Cost.default with Cost.sfi_check = c } in
           let cert = per_packet costs `Certified in
           let sand = per_packet costs `Sandboxed in
           let user = per_packet costs `User in
           [ i c; f1 cert; f1 sand; f1 user; f2 (sand /. cert) ^ "x";
             (if sand < user then "sandbox wins" else "user wins") ])
         sfi_costs);
    line "(256B payloads; certified placement wins at every plausible check cost,";
    line " only the sandbox-vs-user ordering is sensitive)"
end


(* ------------------------------------------------------------------ *)
(* E12: downloaded packet filters — real code, real checks             *)
(* ------------------------------------------------------------------ *)

module E12 = struct
  (* Elsewhere the SFI tax is a cost-model constant; here the downloaded
     code is real bytecode, the sandbox is real instruction rewriting
     (Sfi_rewrite), and the trusted compiler is a real compiler
     (Filterc), so the comparison is measured execution. *)

  let packets = 40
  let filter_src = "byte[19] == 7 && byte[18] == 0"

  let make_packet ctx ~dport =
    let tp = Wire.Transport.build ctx ~sport:9 ~dport (Bytes.make 200 'p') in
    let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
    Wire.Frame.build ctx ~dst:42 ~src:13 np

  let setup () =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
    let ctx = Kernel.ctx k kdom in
    ignore
      (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"bind_port"
         [ Value.Int 7 ]);
    (sys, k, kdom, net, ctx)

  let code () =
    match Filterc.compile_string filter_src with
    | Ok p -> Vm.encode p
    | Error e -> failwith e

  let drive k ctx =
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for idx = 1 to packets do
      let dport = if idx mod 2 = 0 then 7 else 9 in
      Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dport));
      Kernel.step k ~ticks:1 ()
    done;
    Kernel.step k ~ticks:4 ();
    float_of_int (Clock.now clock - before) /. float_of_int packets

  let in_stack ~sandboxed () =
    let _sys, k, _, net, ctx = setup () in
    ignore
      (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
         [ Value.Blob (Bytes.of_string (code ())); Value.Bool sandboxed ]);
    drive k ctx

  (* baseline: the filter lives in a user-domain object; an interposer on
     the stack sends every received frame through it (one cross-domain
     call per packet) before the kernel stack sees it *)
  let in_user_domain () =
    let sys, k, kdom, net, ctx = setup () in
    let udom = System.new_domain sys "filterd" in
    let api = Kernel.api k in
    let program =
      match Vm.decode (code ()) with Ok p -> p | Error e -> failwith e
    in
    let filter_obj =
      Instance.create api.Api.registry ~class_name:"user.filter"
        ~domain:udom.Domain.id
        [
          Iface.make ~name:"filter"
            [
              Iface.meth ~name:"check" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tint
                (fun fctx -> function
                  | [ Value.Blob raw ] ->
                    (match Vm.run fctx ~mem:(Vm.mem_of_bytes raw) program with
                    | Vm.Returned v -> Ok (Value.Int v)
                    | _ -> Ok (Value.Int 0))
                  | _ -> Error (Oerror.Type_error "check(blob)"));
            ];
        ]
    in
    Kernel.register_at k "/services/filterd" filter_obj;
    let filter_proxy = Kernel.bind k kdom "/services/filterd" in
    let rx_override ictx = function
      | [ (Value.Blob _ as frame) ] as args ->
        (match
           Invoke.call ictx filter_proxy ~iface:"filter" ~meth:"check" [ frame ]
         with
        | Ok (Value.Int 0) -> Ok Value.Unit (* dropped in user space *)
        | _ -> Invoke.call ictx net.System.stack ~iface:"stack" ~meth:"rx" args)
      | _ -> Error (Oerror.Type_error "rx(blob)")
    in
    let agent =
      Interpose.wrap api kdom ~target:net.System.stack
        ~overrides:[ ("stack", "rx", rx_override) ]
        ()
    in
    (match Interpose.attach api ~path:"/services/stack" ~agent with
    | Ok _ -> ()
    | Error e -> failwith e);
    (* make the driver deliver through the agent *)
    ignore
      (Invoke.call_exn ctx net.System.driver ~iface:"netdev" ~meth:"attach"
         [ Value.Str "/services/stack" ]);
    drive k ctx

  let run () =
    header "E12  Downloaded packet filters (real bytecode, real checks)"
      "\"inserting application components for fast protocol processing into a \
       shared network device\" (§1): certified filters run raw; uncertified code \
       needs SFI rewriting or a protection-domain boundary";
    let raw = in_stack ~sandboxed:false () in
    let sfi = in_stack ~sandboxed:true () in
    let user = in_user_domain () in
    let program =
      match Filterc.compile_string filter_src with Ok p -> p | Error e -> failwith e
    in
    let rewritten =
      match
        Sfi_rewrite.rewrite program
          ~window_size:(Sfi_rewrite.padded_size Pm_machine.Nic.mtu)
      with
      | Ok p -> p
      | Error e -> failwith e
    in
    line "filter: %s" filter_src;
    line "object code: %d instructions raw, %d after SFI rewriting"
      (Vm.instr_count program) (Vm.instr_count rewritten);
    print_table
      ~columns:[ ("filter placement", ()); ("cycles/packet", ()); ("vs certified", ()) ]
      [
        [ "certified, in-kernel, raw"; f1 raw; "1.00x" ];
        [ "uncertified, in-kernel, SFI-rewritten"; f1 sfi; f2 (sfi /. raw) ^ "x" ];
        [ "uncertified, user-space object"; f1 user; f2 (user /. raw) ^ "x" ];
      ];
    line "(mixed accept/drop traffic, 200B payloads; the E4 comparison re-run with";
    line " measured execution instead of cost-model constants)";
    line "";
    line "-- filter execution alone (stack processing excluded) --";
    let clock = Clock.create () in
    let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
    let pkt = Bytes.make 2048 'p' in
    Bytes.set pkt 18 '\000';
    Bytes.set pkt 19 '\007';
    let cost_of prog =
      let before = Clock.now clock in
      for _ = 1 to 100 do
        ignore (Vm.run ctx ~mem:(Vm.mem_of_bytes pkt) prog)
      done;
      float_of_int (Clock.now clock - before) /. 100.
    in
    let raw_only = cost_of program in
    let sfi_only = cost_of rewritten in
    line "raw: %.1f cycles/run; SFI-rewritten: %.1f cycles/run (+%.0f%%)" raw_only
      sfi_only
      ((sfi_only -. raw_only) /. raw_only *. 100.);
    line "=> the per-check tax is real but drowns in stack processing for tiny";
    line "   filters; it is whole components (E4's stack) where it dominates"
end

(* ------------------------------------------------------------------ *)
(* E13: batched RPC over shared-memory channels                        *)
(* ------------------------------------------------------------------ *)

module E13 = struct
  let batch_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  let rounds = 8

  let echo_iface =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tunit
          (fun _ctx _ -> Ok Value.Unit);
      ]

  let fixture () =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let udom = System.new_domain sys "rpc-client" in
    let api = Kernel.api k in
    (* the E3 baseline: one proxy crossing per call *)
    let target =
      Instance.create api.Api.registry ~class_name:"e13.echo" ~domain:kdom.Domain.id
        [ echo_iface ]
    in
    Kernel.register_at k "/svc/echo13" target;
    let proxy = Kernel.bind k udom "/svc/echo13" in
    (* the channel transport: one crossing per batch *)
    let conn = Rpc_chan.connect api ~client:udom ~server:kdom () in
    Rpc_chan.serve api conn ~procedures:[ ("e", fun _ctx _args -> Ok Bytes.empty) ] ();
    let client = Rpc_chan.client api conn () in
    (k, udom, proxy, client)

  let run () =
    header "E13  Batched calls over shared-memory channels"
      "shared pages + doorbells amortise the cross-domain crossing over a batch; \
       the per-call proxy fault becomes a per-batch trap";
    let k, udom, proxy, client = fixture () in
    let clock = Kernel.clock k in
    Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
    let ctx = Kernel.ctx k udom in
    (* proxy baseline, E3's 0-arg point *)
    let proxy_per_call =
      let warm () =
        ignore
          (Invoke.call_exn ctx proxy ~iface:"echo" ~meth:"echo"
             [ Value.Blob Bytes.empty ])
      in
      warm ();
      let before = Clock.now clock in
      for _ = 1 to 50 do
        warm ()
      done;
      float_of_int (Clock.now clock - before) /. 50.
    in
    let chan_per_call b =
      let batch =
        Value.List
          (List.init b (fun _ -> Value.Pair (Value.Str "e", Value.Blob Bytes.empty)))
      in
      let once () =
        ignore
          (Invoke.call_exn ctx client ~iface:"rpc.batch" ~meth:"call_many" [ batch ])
      in
      once ();
      (* warm-up round *)
      let before = Clock.now clock in
      for _ = 1 to rounds do
        once ()
      done;
      float_of_int (Clock.now clock - before) /. float_of_int (rounds * b)
    in
    let measured = List.map (fun b -> (b, chan_per_call b)) batch_sizes in
    let rows =
      List.map
        (fun (b, per_call) ->
          [ i b; f1 proxy_per_call; f1 per_call; f2 (proxy_per_call /. per_call) ^ "x" ])
        measured
    in
    print_table
      ~columns:
        [ ("batch", ()); ("proxy cyc/call", ()); ("channel cyc/call", ());
          ("speedup", ()) ]
      rows;
    (match List.find_opt (fun (_, c) -> c < proxy_per_call) measured with
    | Some (b, _) ->
      line "=> crossover at batch %d: the channel beats the per-call proxy from" b;
      line "   there on; the fixed doorbell crossing (%d cycles with default costs)"
        (Cost.doorbell_crossing Cost.default);
      line "   is amortised while marshalling stays linear in calls"
    | None -> line "=> no crossover measured (proxy faster at every batch size)");
    (* the same trade on the E4 receive path: per-frame proxy hop vs a
       channel bridge draining bursts into one rx_batch invocation *)
    let rx_cycles ~channel payload_size =
      let sys = fresh_sys () in
      let k = System.kernel sys in
      let kdom = Kernel.kernel_domain k in
      let dom = System.new_domain sys "netuser" in
      let net = System.setup_networking sys ~placement:(System.User dom) ~addr:42 () in
      if channel then ignore (System.channel_rx sys net ());
      let ctx = Kernel.ctx k kdom in
      ignore
        (Invoke.call_exn (Kernel.ctx k dom) net.System.stack ~iface:"stack"
           ~meth:"bind_port" [ Value.Int 7 ]);
      let packet = Bytes.to_string (E4.make_packet ctx ~dst:42 payload_size) in
      Nic.inject (Kernel.nic k) packet;
      Kernel.step k ~ticks:2 ();
      let clock = Kernel.clock k in
      let before = Clock.now clock in
      for _ = 1 to E4.packets do
        Nic.inject (Kernel.nic k) packet;
        Kernel.step k ~ticks:1 ()
      done;
      Kernel.step k ~ticks:4 ();
      let delivered =
        match
          Invoke.call_exn (Kernel.ctx k dom) net.System.stack ~iface:"stack"
            ~meth:"pending" [ Value.Int 7 ]
        with
        | Value.Int n -> n
        | _ -> 0
      in
      assert (delivered >= E4.packets);
      float_of_int (Clock.now clock - before) /. float_of_int E4.packets
    in
    let rx_rows =
      List.map
        (fun size ->
          let p = rx_cycles ~channel:false size in
          let c = rx_cycles ~channel:true size in
          [ i size; f1 p; f1 c; f2 (p /. c) ^ "x" ])
        [ 64; 256; 1024 ]
    in
    line "";
    line "-- E4 user-space stack, rx path: per-frame proxy vs channel bridge --";
    print_table
      ~columns:
        [ ("payload B", ()); ("proxy rx", ()); ("channel rx", ()); ("speedup", ()) ]
      rx_rows;
    line "(cycles per packet; the bridge replaces the driver->stack proxy hop with";
    line " a ring enqueue and one doorbell-driven rx_batch per burst)"
end


(* ------------------------------------------------------------------ *)
(* E14: the adaptive placement agent converging on static-best          *)
(* ------------------------------------------------------------------ *)

module E14 = struct
  (* Margin the converged adaptive configuration must reach, relative to
     the static-best one from E4/E13. *)
  let margin = 0.10

  let epochs () = if !quick then 6 else 12
  let per_epoch () = if !quick then 10 else 30
  let tail () = if !quick then 2 else 3

  let mean = function
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

  (* mean of the last [tail] epochs: the converged steady state, with the
     migration epoch (if any) excluded *)
  let converged epoch_costs =
    (* epoch_costs is accumulated newest-first *)
    let t = tail () in
    mean (List.filteri (fun i _ -> i < t) epoch_costs)

  let action_to_string = function
    | Placer.Hold -> ""
    | Placer.Migrated p -> "-> " ^ Placer.placement_to_string p
    | Placer.Flipped Chan.Doorbell -> "-> doorbell"
    | Placer.Flipped Chan.Poll -> "-> poll"
    | Placer.Repinned c -> Printf.sprintf "-> cpu%d" c

  let verdict label adaptive best =
    let m = (adaptive -. best) /. best in
    line "%s: adaptive %.1f vs static-best %.1f cyc => margin %+.1f%% (limit %.0f%%)"
      label adaptive best (m *. 100.) (margin *. 100.);
    assert (m <= margin)

  (* -- the E4 rx workload under the placer ----------------------------- *)

  (* [grain] adds compute cycles per packet outside the stack, turning the
     crossing-dominated rx path into a compute-dominated one. [adaptive]
     runs the placer; otherwise the placement stays fixed. *)
  let rx_run ~start ~grain ~adaptive =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let udom = System.new_domain sys "netuser" in
    let placement =
      match start with `User -> System.User udom | `Certified -> System.Certified
    in
    let net = System.setup_networking sys ~placement ~addr:42 () in
    let stack = ref net.System.stack in
    let consume = ref net.System.stack_domain in
    let bind_port () =
      ignore
        (Invoke.call_exn (Kernel.ctx k !consume) !stack ~iface:"stack"
           ~meth:"bind_port" [ Value.Int 7 ])
    in
    bind_port ();
    let clock = Kernel.clock k in
    (* the placer consumes per-domain accounting, so tracing is on *)
    Obs.enable (Clock.obs clock);
    let migration_cost = ref 0 in
    (* the migration path is the ordinary unload + loader/certsvc reload,
       followed by re-attaching the driver's rx sink to the new instance *)
    let migrate (p : Placer.placement) =
      let before = Clock.now clock in
      match Loader.unload (Kernel.loader k) (Path.of_string "/services/stack") with
      | Error _ -> false
      | Ok () ->
        let image =
          Images.image ~name:"protostack" ~size:24_576 ~author:"kernel-team"
            ~type_safe:true
            (Images.stack_construct ~addr:42 ~driver_path:"/services/netdrv")
        in
        let placement, dom =
          match p with
          | Placer.Certified -> (System.Certified, kdom)
          (* E14 manages without [verified_ok], so this arm never fires *)
          | Placer.Verified -> (System.Certified, kdom)
          | Placer.User -> (System.User udom, udom)
        in
        (match System.install sys image ~placement ~at:"/services/stack" with
        | Error _ -> false
        | Ok inst ->
          stack := inst;
          consume := dom;
          ignore
            (Invoke.call_exn (Kernel.ctx k kdom) net.System.driver ~iface:"netdev"
               ~meth:"attach" [ Value.Str "/services/stack" ]);
          bind_port ();
          migration_cost := !migration_cost + (Clock.now clock - before);
          true)
    in
    let placer =
      Placer.create ~clock ~costs:Cost.default ~confirm:2 ~cooldown:1 ()
    in
    if adaptive then
      Placer.manage placer ~watch:[ kdom.Domain.id ]
        ~placement:(match start with `User -> Placer.User | `Certified -> Placer.Certified)
        ~migrate ();
    let ctx = Kernel.ctx k kdom in
    let packet = Bytes.to_string (E4.make_packet ctx ~dst:42 64) in
    (* warm up so the lazy binds don't pollute epoch 1 *)
    Nic.inject (Kernel.nic k) packet;
    Kernel.step k ~ticks:2 ();
    ignore (Placer.epoch placer);
    let rows = ref [] and costs = ref [] in
    for e = 1 to epochs () do
      let before = Clock.now clock in
      for _ = 1 to per_epoch () do
        Nic.inject (Kernel.nic k) packet;
        Kernel.step k ~ticks:1 ();
        if grain > 0 then Call_ctx.work ctx grain
      done;
      Kernel.step k ~ticks:2 ();
      let cyc =
        float_of_int (Clock.now clock - before) /. float_of_int (per_epoch ())
      in
      costs := cyc :: !costs;
      let actions = if adaptive then Placer.epoch placer else [ Placer.Hold ] in
      rows :=
        [ i e;
          (match Placer.placement placer with
          | Some p -> Placer.placement_to_string p
          | None -> Placer.placement_to_string (match start with `User -> Placer.User | `Certified -> Placer.Certified));
          Printf.sprintf "%.3f" (Placer.crossing_share placer);
          f1 cyc;
          String.concat " " (List.map action_to_string actions) ]
        :: !rows
    done;
    let delivered =
      match
        Invoke.call_exn (Kernel.ctx k !consume) !stack ~iface:"stack" ~meth:"pending"
          [ Value.Int 7 ]
      with
      | Value.Int n -> n
      | _ -> 0
    in
    assert (delivered >= per_epoch ());
    (List.rev !rows, converged !costs, placer, !migration_cost)

  let rx_workload label ~grain =
    line "";
    line "-- %s workload (64B packets%s) --" label
      (if grain > 0 then Printf.sprintf " + %d compute cyc/packet" grain else "");
    let rows, adaptive, placer, migration = rx_run ~start:`User ~grain ~adaptive:true in
    print_table
      ~columns:
        [ ("epoch", ()); ("placement", ()); ("cross share", ()); ("cyc/pkt", ());
          ("action", ()) ]
      rows;
    let _, static_user, _, _ = rx_run ~start:`User ~grain ~adaptive:false in
    let _, static_cert, _, _ = rx_run ~start:`Certified ~grain ~adaptive:false in
    line "static: user %.1f, certified %.1f cyc/pkt; placer made %d move(s)%s"
      static_user static_cert (Placer.moves placer)
      (if migration > 0 then
         Printf.sprintf " (migration cost %d cyc, amortized across epochs)" migration
       else "");
    verdict label adaptive (Float.min static_user static_cert)

  (* -- the E13 doorbell/poll trade under the placer -------------------- *)

  let chan_run ~start ~adaptive =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let udom = System.new_domain sys "chan-consumer" in
    let chan =
      Chan.create (Kernel.machine k) (Kernel.vmem k) ~slots:64 ~slot_size:64
        ~mode:start ~producer:kdom ()
    in
    ignore (Chan.accept chan ~into:udom);
    ignore
      (Chan.on_doorbell chan ~events:(Kernel.events k) ~sched:(Kernel.sched k)
         (fun () -> ignore (Chan.recv_batch chan ())));
    let clock = Kernel.clock k in
    Obs.enable (Clock.obs clock);
    let placer =
      Placer.create ~clock ~costs:Cost.default ~confirm:2 ~cooldown:1 ()
    in
    if adaptive then Placer.manage_channel placer chan;
    let msg = Bytes.make 32 'm' in
    let msgs = 4 * per_epoch () in
    let rows = ref [] and costs = ref [] in
    for e = 1 to epochs () do
      let before = Clock.now clock in
      for _ = 1 to msgs do
        (* one message per burst: the doorbell-dominated shape *)
        Chan.send chan msg;
        if Chan.mode chan = Chan.Poll then ignore (Chan.recv_batch chan ())
      done;
      let cyc = float_of_int (Clock.now clock - before) /. float_of_int msgs in
      costs := cyc :: !costs;
      let actions = if adaptive then Placer.epoch placer else [ Placer.Hold ] in
      rows :=
        [ i e;
          (match Chan.mode chan with Chan.Doorbell -> "doorbell" | Chan.Poll -> "poll");
          Printf.sprintf "%.3f" (Placer.doorbell_share placer);
          f1 cyc;
          String.concat " " (List.map action_to_string actions) ]
        :: !rows
    done;
    assert (Chan.pending chan = 0);
    (List.rev !rows, converged !costs, placer)

  let chan_workload () =
    line "";
    line "-- doorbell-dominated channel (1 msg/burst, 32B) --";
    let rows, adaptive, placer = chan_run ~start:Chan.Doorbell ~adaptive:true in
    print_table
      ~columns:
        [ ("epoch", ()); ("mode", ()); ("bell share", ()); ("cyc/msg", ());
          ("action", ()) ]
      rows;
    let _, static_bell, _ = chan_run ~start:Chan.Doorbell ~adaptive:false in
    let _, static_poll, _ = chan_run ~start:Chan.Poll ~adaptive:false in
    line "static: doorbell %.1f, poll %.1f cyc/msg; placer made %d flip(s)"
      static_bell static_poll (Placer.flips placer);
    verdict "channel" adaptive (Float.min static_bell static_poll)

  let run () =
    header "E14  Adaptive placement driven by per-domain accounting"
      "close the observability loop: an agent watching crossing-cost share and \
       doorbell cost migrates components between User and Certified placement and \
       flips channels between Doorbell and Poll, converging on static-best";
    if !quick then line "(--quick: reduced epochs/iterations)";
    rx_workload "crossing-dominated" ~grain:0;
    rx_workload "compute-dominated" ~grain:30_000;
    chan_workload ()
end

(* ------------------------------------------------------------------ *)
(* E15: load-time verification vs SFI vs certification                 *)
(* ------------------------------------------------------------------ *)

module E15 = struct
  (* The third trust mechanism measured against the other two: a
     bytecode-verified component runs exactly the raw program (zero
     per-access overhead, like a certified one) for a one-off abstract
     interpretation charged per instruction — no signer anywhere on the
     trust path. *)

  let filter_src = "byte[19] == 7 && byte[18] == 0"

  let program () =
    match Filterc.compile_string filter_src with
    | Ok p -> p
    | Error e -> failwith e

  let run () =
    header "E15  Bytecode verification: the third trust mechanism"
      "a static proof admits downloaded code into the kernel with zero \
       per-access overhead like certification, but without a signer; the \
       one-off analysis cost amortizes against SFI's per-run tax";
    let program = program () in
    let code = Vm.encode program in
    let rewritten =
      match
        Sfi_rewrite.rewrite program
          ~window_size:(Sfi_rewrite.padded_size Pm_machine.Nic.mtu)
      with
      | Ok p -> p
      | Error e -> failwith e
    in
    (* per-run execution, measured on the standalone VM *)
    let clock = Clock.create () in
    let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
    let pkt = Bytes.make 2048 'p' in
    Bytes.set pkt 18 '\000';
    Bytes.set pkt 19 '\007';
    let cost_of prog =
      let before = Clock.now clock in
      for _ = 1 to 100 do
        ignore (Vm.run ctx ~mem:(Vm.mem_of_bytes pkt) prog)
      done;
      float_of_int (Clock.now clock - before) /. 100.
    in
    let raw_run = cost_of program in
    let sfi_run = cost_of rewritten in
    let verified_run = cost_of program in
    (* acceptance: verified execution IS raw execution *)
    assert (verified_run = raw_run);
    (* one-off admission costs, measured through the certification service *)
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let certsvc = Kernel.certification k in
    let kclock = Kernel.clock k in
    let before = Clock.now kclock in
    (match Certsvc.verify certsvc ~code with
    | Ok _ -> ()
    | Error e -> failwith ("E15: verifier rejected the filter: " ^ e));
    let verify_cost = Clock.now kclock - before in
    let cert_cost =
      let image =
        Images.image ~name:"e15-filter" ~size:(String.length code)
          ~author:"kernel-team" ~type_safe:true (fun _ _ ->
            failwith "never constructed")
      in
      let image, _trail =
        Images.certify (System.authority sys) ~now:(Clock.now kclock) image
      in
      match image.Loader.cert with
      | None -> failwith "E15: no delegate certified the filter image"
      | Some cert ->
        let before = Clock.now kclock in
        (match Certsvc.validate certsvc cert ~code:image.Loader.code with
        | Validator.Valid _ -> ()
        | Validator.Invalid _ -> failwith "E15: certificate did not validate");
        Clock.now kclock - before
    in
    (* end-to-end: a Verified placement admits unsigned real bytecode *)
    let vimage =
      let base =
        Images.image ~name:"vfilter" ~size:(String.length code)
          ~author:"anyone" ~type_safe:false (fun api dom ->
            Instance.create api.Api.registry ~class_name:"verified.filter"
              ~domain:dom.Domain.id [])
      in
      { base with Loader.code }
    in
    (match
       System.install sys vimage ~placement:System.Verified
         ~at:"/services/vfilter"
     with
    | Ok _ -> ()
    | Error e -> failwith ("E15: Verified install failed: " ^ e));
    assert (Certsvc.verifications certsvc = 2);
    let overhead = sfi_run -. raw_run in
    print_table
      ~columns:
        [ ("admission", ()); ("one-off cycles", ()); ("cycles/run", ());
          ("per-run overhead", ()) ]
      [
        [ "certified (signature)"; i cert_cost; f1 raw_run; "0.0" ];
        [ "verified (static proof)"; i verify_cost; f1 verified_run; "0.0" ];
        [ "SFI-rewritten"; "0"; f1 sfi_run; f1 overhead ];
      ];
    line "filter: %s (%d instructions; verify = %d cyc/instr)" filter_src
      (Vm.instr_count program) Cost.default.Cost.verify_instr;
    line "crossover vs SFI: verification pays for itself after %.0f runs,"
      (Float.of_int verify_cost /. overhead |> Float.ceil);
    line "certification after %.0f runs — and needs a signer on the trust path"
      (Float.of_int cert_cost /. overhead |> Float.ceil);
    line "=> verified placement executed identically to raw (%.1f = %.1f cyc/run)"
      verified_run raw_run
end

(* ------------------------------------------------------------------ *)
(* E16: the channel-backed network data path (Pm_net)                  *)
(* ------------------------------------------------------------------ *)

module E16 = struct
  let batch_sizes = [ 1; 4; 16; 64 ]
  let producer_counts = [ 1; 2; 3; 4 ]
  let payload = String.make 64 'x'
  let rounds () = if !quick then 2 else 6
  let tx_packets () = if !quick then 12 else 48

  let fixture () =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let app = System.new_domain sys "app" in
    let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
    (sys, k, app, net)

  (* Push [b] packets for port 7 through driver + stack; that processing
     is identical on both rx paths and stays outside the measurement. *)
  let deliver k b =
    let ctx = Kernel.ctx k (Kernel.kernel_domain k) in
    let packet =
      Bytes.to_string (E4.make_packet ctx ~dst:42 (String.length payload))
    in
    for _ = 1 to b do
      Nic.inject (Kernel.nic k) packet
    done;
    Kernel.step k ~ticks:(b + 4) ()

  (* rx baseline: the app pulls each packet out of the stack's mailbox
     with a proxy call — one crossing per packet *)
  let rx_proxy_per_packet b =
    let _sys, k, app, _net = fixture () in
    let uctx = Kernel.ctx k app in
    let proxy = Kernel.bind k app "/services/stack" in
    let recv () =
      ignore (Invoke.call_exn uctx proxy ~iface:"stack" ~meth:"recv" [ Value.Int 7 ])
    in
    ignore
      (Invoke.call_exn uctx proxy ~iface:"stack" ~meth:"bind_port" [ Value.Int 7 ]);
    deliver k 1;
    recv ();
    (* warm-up: lazy binds *)
    let clock = Kernel.clock k in
    let total = ref 0 in
    for _ = 1 to rounds () do
      deliver k b;
      let before = Clock.now clock in
      for _ = 1 to b do
        recv ()
      done;
      total := !total + (Clock.now clock - before)
    done;
    float_of_int !total /. float_of_int (rounds () * b)

  (* rx channel path: the stack's sink enqueues each delivery on the
     port's ring; the app drains the whole burst with one recv_batch *)
  let rx_chan_per_packet b =
    let sys, k, app, net = fixture () in
    let nsc, _svc = System.channel_net sys net ~rx_slots:128 () in
    let chan =
      match Netstack_chan.bind nsc ~port:7 ~owner:app ~mode:Chan.Poll () with
      | Ok c -> c
      | Error e -> failwith e
    in
    let uctx = Kernel.ctx k app in
    let drain expect =
      (* zero-copy contract: the ring moves no payload bytes; the parse
         below is where the app materialises (and pays for) them *)
      let msgs = Chan.recv_batch ~account:false chan () in
      List.iter
        (fun m ->
          match Netwire.Delivery.parse uctx m with
          | Ok _ -> ()
          | Error e -> failwith e)
        msgs;
      if List.length msgs < expect then failwith "E16: ring under-delivered"
    in
    deliver k 1;
    drain 1;
    let clock = Kernel.clock k in
    let total = ref 0 in
    for _ = 1 to rounds () do
      deliver k b;
      let before = Clock.now clock in
      drain b;
      total := !total + (Clock.now clock - before)
    done;
    float_of_int !total /. float_of_int (rounds () * b)

  (* tx: [p] producer domains each push their share of the burst.
     Measured span: every submission plus whatever it takes to hand the
     frames to the driver (the stack-side drain for the MPSC path); the
     NIC's one-DMA-per-tick flush is common and excluded. *)
  let tx_args =
    [ Value.Int 13; Value.Int 7; Value.Int 9;
      Value.Blob (Bytes.of_string payload) ]

  let flush_wire k n =
    Kernel.step k ~ticks:(n + 4) ();
    let frames = Nic.take_transmitted (Kernel.nic k) in
    if List.length frames <> n then
      failwith
        (Printf.sprintf "E16: expected %d frames on the wire, saw %d" n
           (List.length frames))

  let tx_proxy_per_packet p =
    let sys, k, _app, _net = fixture () in
    let doms =
      List.init p (fun i -> System.new_domain sys (Printf.sprintf "ptx%d" i))
    in
    let proxies =
      List.map (fun d -> (d, Kernel.bind k d "/services/stack")) doms
    in
    let send (d, proxy) =
      ignore (Invoke.call_exn (Kernel.ctx k d) proxy ~iface:"stack" ~meth:"send" tx_args)
    in
    send (List.hd proxies);
    flush_wire k 1;
    (* warm-up *)
    let per = tx_packets () / p in
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    List.iter (fun pr -> for _ = 1 to per do send pr done) proxies;
    let total = Clock.now clock - before in
    flush_wire k (per * p);
    float_of_int total /. float_of_int (per * p)

  let tx_chan_per_packet p =
    let sys, k, _app, net = fixture () in
    let nsc, _svc = System.channel_net sys net () in
    (* Poll mode so the stack-side drain is explicit — and measured *)
    Netstack_chan.set_tx_mode nsc Chan.Poll;
    let mmu = Machine.mmu (Kernel.machine k) in
    let doms =
      List.init p (fun i -> System.new_domain sys (Printf.sprintf "ctx%d" i))
    in
    let txs = List.map (fun d -> (d, Netstack_chan.attach_tx nsc ~producer:d)) doms in
    let submit (d, tx) =
      Mmu.switch_context mmu d.Domain.id;
      if not (Netstack_chan.submit tx (Kernel.ctx k d) ~dst:13 ~sport:7 ~dport:9
                (Bytes.of_string payload))
      then failwith "E16: tx ring full"
    in
    let kid = (Kernel.kernel_domain k).Domain.id in
    submit (List.hd txs);
    Mmu.switch_context mmu kid;
    ignore (Netstack_chan.drain_tx nsc);
    flush_wire k 1;
    (* warm-up *)
    let per = tx_packets () / p in
    let clock = Kernel.clock k in
    let reserves0 = Clock.counter clock "mpsc_reserve" in
    let before = Clock.now clock in
    List.iter (fun ptx -> for _ = 1 to per do submit ptx done) txs;
    Mmu.switch_context mmu kid;
    let drained = Netstack_chan.drain_tx nsc in
    let total = Clock.now clock - before in
    if drained <> per * p then failwith "E16: MPSC drain lost submissions";
    let reserves = Clock.counter clock "mpsc_reserve" - reserves0 in
    if reserves <> per * p then failwith "E16: reserve accounting is off";
    flush_wire k (per * p);
    (float_of_int total /. float_of_int (per * p), reserves)

  let rec run () =
    header "E16  Channel-backed network data path (Pm_net)"
      "per-port rings on rx and an MPSC group on tx replace the per-packet \
       proxy crossing with shared-word traffic charged by the cost model";
    let rx =
      List.map
        (fun b -> (b, rx_proxy_per_packet b, rx_chan_per_packet b))
        batch_sizes
    in
    print_table
      ~columns:
        [ ("batch", ()); ("proxy cyc/pkt", ()); ("ring cyc/pkt", ());
          ("speedup", ()) ]
      (List.map (fun (b, p, c) -> [ i b; f1 p; f1 c; f2 (p /. c) ^ "x" ]) rx);
    line "(rx consumption, 64B payloads: per-packet proxy recv vs one recv_batch";
    line " drain per burst; stack-side processing is identical and excluded)";
    (match List.find_opt (fun (b, _, _) -> b = 64) rx with
    | Some (_, p, c) ->
      let speedup = p /. c in
      if speedup < 5.0 then
        failwith (Printf.sprintf "E16: channel rx only %.2fx proxy at batch 64" speedup);
      line "=> at batch 64 the ring delivers at %.2fx the proxy path (>= 5x target)"
        speedup
    | None -> ());
    line "";
    line "-- tx: per-producer proxy sends vs the shared MPSC group --";
    let tx =
      List.map
        (fun p ->
          let proxy = tx_proxy_per_packet p in
          let chan, reserves = tx_chan_per_packet p in
          (p, proxy, chan, reserves))
        producer_counts
    in
    print_table
      ~columns:
        [ ("producers", ()); ("proxy cyc/pkt", ()); ("mpsc cyc/pkt", ());
          ("speedup", ()); ("reserves", ()) ]
      (List.map
         (fun (p, pr, c, r) -> [ i p; f1 pr; f1 c; f2 (pr /. c) ^ "x"; i r ])
         tx);
    line "(submission through hand-off to the driver; every send pays one";
    line " group-header reserve — %d cycles with default costs — visible above"
      (Cost.mpsc_reserve Cost.default);
    line " as the mpsc_reserve counter; the NIC flush is common and excluded)";
    smp_contention ()

  (* tx under SMP: the reserve's CAS loop. A producer on another CPU
     whose sub-ring holds pending traffic is a live contender for the
     group header word; each costs the reserving producer one CAS retry.
     Contention needs true parallelism, so it is structurally zero on
     uniprocessor runs — every table above is unchanged. *)
  and smp_contention () =
    line "";
    line "-- tx under SMP: group-header CAS contention (producers round-robin on 2 CPUs) --";
    let cas = Cost.default.Cost.cas in
    let rows =
      List.map
        (fun p ->
          let sys = System.create ~seed:0xBEEF ~cpus:2 () in
          let k = System.kernel sys in
          let machine = Kernel.machine k in
          let cpx = Option.get (System.cpu sys) in
          let kdom = Kernel.kernel_domain k in
          let g =
            Mpsc.create machine (Kernel.vmem k) ~name:"smp-tx" ~slots:8
              ~slot_size:128 ~mode:Chan.Poll ~consumer:kdom ()
          in
          let txs =
            List.init p (fun idx ->
                let d = System.new_domain sys (Printf.sprintf "smp-tx%d" idx) in
                Cpu.pin cpx ~domain:d.Domain.id ~cpu:(idx mod 2);
                (d, Mpsc.attach g ~producer:d))
          in
          let mmu = Machine.mmu machine in
          let kid = (Kernel.kernel_domain k).Domain.id in
          let msg = Bytes.of_string payload in
          let send (d, tx) =
            Mmu.switch_context mmu d.Domain.id;
            if not (Mpsc.try_send tx msg) then failwith "E16: smp ring full";
            Mmu.switch_context mmu kid
          in
          let clock = Machine.clock machine in
          let measure () =
            let before = Clock.now clock in
            send (List.hd txs);
            Clock.now clock - before
          in
          (* sub-rings empty: the flat reserve *)
          let quiet = measure () in
          (* every other producer leaves traffic pending; the ones on
             the other CPU become live contenders *)
          List.iteri (fun idx dtx -> if idx > 0 then send dtx) txs;
          let contenders = (p - 1) - ((p - 1) / 2) in
          let retries0 = Clock.counter clock "mpsc_cas_retry" in
          let contended = measure () in
          let retries = Clock.counter clock "mpsc_cas_retry" - retries0 in
          if contended - quiet <> contenders * cas then
            failwith
              (Printf.sprintf
                 "E16: %d contenders cost %d extra cycles, model says %d" p
                 (contended - quiet) (contenders * cas));
          if retries <> contenders then
            failwith "E16: cas retry accounting is off";
          [ i p; i contenders; i quiet; i contended; i (contenders * cas) ])
        producer_counts
    in
    print_table
      ~columns:
        [ ("producers", ()); ("contenders", ()); ("quiet cyc/send", ());
          ("contended", ()); ("model extra", ()) ]
      rows;
    line "(one send from producer 0, pinned to CPU 0, while the others hold";
    line " pending traffic; each cross-CPU contender costs one %d-cycle CAS" cas;
    line " retry — mpsc_reserve_n = mpsc_reserve + contenders x cas — and the";
    line " retries surface as the mpsc_cas_retry counter; same-CPU producers";
    line " and idle rings cost nothing, so uniprocessor runs never pay this)"
end

(* ------------------------------------------------------------------ *)
(* E-OBS: tracing overhead and the /nucleus/trace service              *)
(* ------------------------------------------------------------------ *)

module Eobs = struct
  let budget = Cost.traced_dispatch Cost.default

  (* 1. per-call tracing tax at the E1 grain sizes *)
  let invoke_overhead () =
    line "-- method invocation: tracing disabled vs enabled (cycles/call) --";
    let fx = E1.make_fixture () in
    let obs = Clock.obs fx.E1.clock in
    let invoke g () =
      ignore
        (Invoke.call fx.E1.ctx fx.E1.plain ~iface:"work" ~meth:"run" [ Value.Int g ])
    in
    let rows =
      List.map
        (fun g ->
          Obs.disable obs;
          let off = E1.cycles_per_call fx (invoke g) in
          Obs.enable obs;
          let on = E1.cycles_per_call fx (invoke g) in
          Obs.disable obs;
          (* enabled-path regression guard: the tax over an untraced dispatch
             stays exactly traced_dispatch - dispatch, accounting included *)
          let tax = budget - Cost.dispatch Cost.default in
          assert (Float.abs (on -. off -. float_of_int tax) < 0.001);
          [ i g; f1 off; f1 on; f1 (on -. off); i budget ])
        E1.grains
    in
    print_table
      ~columns:
        [ ("grain(cyc)", ()); ("traced off", ()); ("traced on", ());
          ("overhead", ()); ("budget", ()) ]
      rows;
    line "(budget: one indirect_call + one mem_write = %d cycles per span)" budget;
    assert (Tracer.dropped (Obs.tracer obs) = 0)

  (* 2. the traced cross-domain path: every layer adds exactly one span *)
  let crossdomain_overhead () =
    line "";
    line "-- cross-domain RPC: spans at each layer (cycles/call, 1-word arg) --";
    let k, _, udom, _, _, proxy = E3.fixture () in
    let clock = Kernel.clock k in
    let obs = Clock.obs clock in
    Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
    let ctx = Kernel.ctx k udom in
    let cycles () =
      let before = Clock.now clock in
      for _ = 1 to 100 do
        ignore (Invoke.call ctx proxy ~iface:"echo" ~meth:"echo" [ Value.Int 1 ])
      done;
      float_of_int (Clock.now clock - before) /. 100.
    in
    let off = cycles () in
    Obs.enable obs;
    let snap = Clock.snapshot clock in
    let on = cycles () in
    let deltas = Clock.since clock snap in
    Obs.disable obs;
    print_table
      ~columns:[ ("path", ()); ("cycles/call", ()) ]
      [ [ "untraced"; f1 off ]; [ "traced"; f1 on ];
        [ "overhead"; f1 (on -. off) ] ];
    line "(three spans per RPC: client invoke, proxy crossing, server invoke)";
    line "traced run: %d cycles; counter deltas: %s" deltas.Clock.at
      (String.concat ", "
         (List.map (fun (n, d) -> Printf.sprintf "%s=%d" n d) deltas.Clock.counts));
    (* what the tracer saw *)
    let tracer = Obs.tracer obs in
    line "ring: %d spans recorded, %d dropped (capacity %d)" (Tracer.recorded tracer)
      (Tracer.dropped tracer) (Tracer.capacity tracer);
    assert (Tracer.dropped tracer = 0);
    (match Metrics.summary (Obs.metrics obs) ~domain:udom.Domain.id "proxy.call" with
    | Some s -> line "proxy.call latency: %s" (Metrics.summary_to_text s)
    | None -> ());
    match Metrics.summary (Obs.metrics obs) ~domain:udom.Domain.id "invoke.dispatch" with
    | Some s -> line "invoke.dispatch latency: %s" (Metrics.summary_to_text s)
    | None -> ()

  (* 3. the whole loop through /nucleus/trace, cross-domain *)
  let trace_service () =
    line "";
    line "-- the trace service, driven from a user domain --";
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
    let udom = System.new_domain sys "observer" in
    let trace = Kernel.bind k udom "/nucleus/trace" in
    line "bind /nucleus/trace from user domain: %s"
      (if Proxy.is_proxy trace then "proxy (system call)" else "local");
    let uctx = Kernel.ctx k udom in
    let call m args = Invoke.call_exn uctx trace ~iface:"trace" ~meth:m args in
    ignore (call "start" []);
    (match call "interpose" [ Value.Str "/shared/network" ] with
    | Value.Int h -> line "interpose /shared/network -> agent handle %d" h
    | _ -> ());
    (* traffic through the agent: re-bind picks up the interposer *)
    let driver = Kernel.bind k kdom "/shared/network" in
    let kctx = Kernel.ctx k kdom in
    Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
    for _ = 1 to 8 do
      ignore
        (Invoke.call_exn kctx driver ~iface:"netdev" ~meth:"send"
           [ Value.Blob (Bytes.create 64) ])
    done;
    Kernel.step k ~ticks:2 ();
    Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
    (match call "histogram" [ Value.Int kdom.Domain.id; Value.Str "invoke.dispatch" ] with
    | Value.Str s -> line "histogram(kernel, invoke.dispatch): %s" s
    | _ -> ());
    ignore (call "uninterpose" [ Value.Str "/shared/network" ]);
    ignore (call "stop" []);
    (* the driver instance behind the name is the original again *)
    let restored = Kernel.bind k kdom "/shared/network" in
    line "after uninterpose, /shared/network resolves to the original: %b"
      (restored == net.System.driver)

  let run () =
    header "E-OBS  Kernel-wide tracing via interposing agents"
      "\"an interposing agent [...] can be used for debugging, monitoring\" (§2): \
       observability is an ordinary object composition, free when disabled";
    invoke_overhead ();
    crossdomain_overhead ();
    trace_service ()
end

(* ------------------------------------------------------------------ *)
(* E18: journal overhead — a complete history at zero cycle cost       *)
(* ------------------------------------------------------------------ *)

module E18 = struct
  (* one representative workload: boot, wire the network, run traffic.
     Traps, IRQs, crossings and structural events all fire, so every
     journal instrumentation point is exercised. *)
  let workload () =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
    Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
    let ctx = Kernel.ctx k kdom in
    ignore
      (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"bind_port"
         [ Value.Int 7 ]);
    for _ = 1 to if !quick then 4 else 32 do
      ignore
        (Invoke.call_exn ctx net.System.driver ~iface:"netdev" ~meth:"send"
           [ Value.Blob (Bytes.create 64) ]);
      Kernel.step k ~ticks:1 ()
    done;
    let clock = Kernel.clock k in
    (Clock.now clock, Obs.journal (Clock.obs clock))

  (* run the workload with new journals starting in [mode]; the module
     default is restored even if the workload raises *)
  let under mode =
    Journal.set_default_mode mode;
    Fun.protect
      ~finally:(fun () -> Journal.set_default_mode Journal.Tail)
      workload

  let run () =
    header "E18  Journalling: complete system history at zero cycle cost"
      "the journal extends the tracing story (E-OBS): recording an event is a \
       plain store, never a machine step, so a fully journalled run costs the \
       same cycles as an unjournalled one";
    let cyc_tail, j_tail = under Journal.Tail in
    let cyc_full, j_full = under Journal.Full in
    print_table
      ~columns:
        [ ("journal mode", ()); ("run cycles", ()); ("events written", ());
          ("complete", ()) ]
      [
        [ "tail (default)"; i cyc_tail; i (Journal.written j_tail);
          string_of_bool (Journal.complete j_tail) ];
        [ "full"; i cyc_full; i (Journal.written j_full);
          string_of_bool (Journal.complete j_full) ];
      ];
    (* the zero-cost contract E1..E16 rely on: byte-identical results
       whatever the journal mode *)
    assert (cyc_tail = cyc_full);
    assert (Journal.written j_tail = Journal.written j_full);
    line "identical cycles and event counts under both modes";
    line "tail mode keeps %d recent events + the full structural archive;"
      (Journal.tail_capacity j_tail);
    line "full mode retains everything (%d held here): the replay substrate"
      (Journal.retained j_full);
    line "tail: %s" (Journal.stats_line j_tail);
    line "full: %s" (Journal.stats_line j_full)
end

(* ------------------------------------------------------------------ *)
(* E19: the block path — cached vs uncached vs raw-device cycles/op    *)
(* ------------------------------------------------------------------ *)

module E19 = struct
  (* working set: 16 blocks, inside the 32-line cache, so the measured
     cached loop is pure hits *)
  let blocks = 16
  let ops () = if !quick then 32 else 128

  let run () =
    header "E19  Block path: cached vs uncached vs raw-device cycles/op"
      "storage assembled from interposable components costs only a small \
       constant over the raw device, and the write-back cache's hit path \
       never reaches the device at all — memory traffic plus dispatch";
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let store =
      System.setup_store sys ~placement:System.Certified ~count:256
        ~cache_capacity:32 ()
    in
    let kdom = Kernel.kernel_domain k in
    Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
    let ctx = Kernel.ctx k kdom in
    let clock = Kernel.clock k in
    let read inst b =
      ignore
        (Invoke.call_exn ctx inst ~iface:"block" ~meth:"read" [ Value.Int b ])
    in
    let measure inst =
      (* warm pass: first-touch work and, for the cache, the misses that
         load the working set — excluded from the measured loop *)
      for b = 0 to blocks - 1 do
        read inst b
      done;
      let t0 = Clock.now clock in
      for n = 0 to ops () - 1 do
        read inst (n mod blocks)
      done;
      (Clock.now clock - t0) / ops ()
    in
    let raw = measure store.System.blk_driver in
    let uncached = measure store.System.partition in
    let cached = measure store.System.block_cache in
    let vs x = Printf.sprintf "%.2fx" (float_of_int x /. float_of_int raw) in
    print_table
      ~columns:[ ("path", ()); ("cycles/op", ()); ("vs raw", ()) ]
      [
        [ "raw device (/store/blkdrv)"; i raw; vs raw ];
        [ "uncached stack (/store/part0)"; i uncached; vs uncached ];
        [ "cached stack hit (/store/cache0)"; i cached; vs cached ];
      ];
    let costs = ctx.Call_ctx.costs in
    let media = Cost.blk_op costs ~bytes:512 in
    let copy = 512 * costs.Cost.mem_read in
    line "media transfer alone is %d cycles/block; a 512-byte copy is %d" media
      copy;
    (* the asserted bounds: (a) every layer of the stack adds only a
       small constant over the raw device, (b) a cache hit skips the
       media entirely, (c) the hit path stays within a small constant of
       the bare block copy *)
    assert (uncached - raw < 200);
    assert (cached <= raw - media + 200);
    assert (cached - copy < 200);
    line "uncached adds %d cycles/op over raw: the partition layer is constant"
      (uncached - raw);
    line "a hit costs %d over the bare copy — the device is out of the path"
      (cached - copy)
end

(* ------------------------------------------------------------------ *)
(* E20: the KV workload over the channel-backed net path               *)
(* ------------------------------------------------------------------ *)

module E20 = struct
  (* working sets straddling the 16-line cache: 4 and 16 stay resident,
     48 spills and pays media time on the get path *)
  let working_sets = [ 4; 16; 48 ]
  let ops () = if !quick then 32 else 96

  let percentile p samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (p * n / 100))

  (* one full client/server system per working set: loopback network,
     channel-backed stack, block store underneath, KV on port 70 *)
  let run_ws ws =
    let sys = fresh_sys () in
    let k = System.kernel sys in
    let net =
      System.setup_networking sys ~placement:System.Certified ~addr:42
        ~loopback:true ()
    in
    let nsc, _svc = System.channel_net sys net () in
    ignore
      (System.setup_store sys ~placement:System.Certified ~cache_capacity:16 ());
    let kdom = Kernel.kernel_domain k in
    let api = Kernel.api k in
    let kv = Kv.create api kdom ~name:"kv0" ~log:"/store/log0" () in
    (match Kv.serve api kdom ~kv ~net:nsc ~port:70 () with
    | Ok _ -> ()
    | Error e -> failwith ("E20: serve failed: " ^ Oerror.to_string e));
    let cdom = System.new_domain sys "kvclient" in
    let ring =
      match Netstack_chan.bind nsc ~port:71 ~owner:cdom ~mode:Chan.Poll () with
      | Ok c -> c
      | Error e -> failwith ("E20: bind failed: " ^ e)
    in
    let txh = Netstack_chan.attach_tx nsc ~producer:cdom in
    let mmu = Machine.mmu (Kernel.machine k) in
    let clock = Kernel.clock k in
    let replies = ref 0 and requests = ref 0 in
    let request ~op ~key value =
      let t0 = Clock.now clock in
      incr requests;
      Mmu.switch_context mmu cdom.Domain.id;
      let cctx = Kernel.ctx k cdom in
      let req =
        Storewire.Kvmsg.build_req cctx ~op ~key:(Bytes.of_string key)
          (Bytes.of_string value)
      in
      ignore (Netstack_chan.submit txh cctx ~dst:42 ~sport:71 ~dport:70 req);
      Mmu.switch_context mmu kdom.Domain.id;
      ignore (Netstack_chan.drain_tx nsc);
      Kernel.step k ~ticks:2 ();
      (* the round trip ends when the client drains its reply ring; every
         response must be status_ok — every get hits a key we put, and a
         failing put (e.g. a full log) must abort the bench, not be
         silently counted as a reply *)
      Mmu.switch_context mmu cdom.Domain.id;
      List.iter
        (fun msg ->
          match Netwire.Delivery.parse cctx msg with
          | Error e -> failwith ("E20: bad delivery frame: " ^ e)
          | Ok { Netwire.Delivery.payload; _ } -> (
            match Storewire.Kvmsg.parse_resp cctx payload with
            | Error e -> failwith ("E20: bad kv response: " ^ e)
            | Ok { Storewire.Kvmsg.status; _ } ->
              if status <> Storewire.Kvmsg.status_ok then
                failwith
                  (Printf.sprintf "E20: kv op %d on %s failed with status %d" op
                     key status);
              incr replies))
        (Chan.recv_batch ring ());
      Mmu.switch_context mmu kdom.Domain.id;
      Clock.now clock - t0
    in
    (* load phase: populate the working set *)
    for n = 0 to ws - 1 do
      ignore
        (request ~op:Storewire.kv_put
           ~key:(Printf.sprintf "k%04d" n)
           (Printf.sprintf "value-%04d" n))
    done;
    (* steady state: sweep gets with an update every 8th op *)
    let samples = ref [] in
    for n = 0 to ops () - 1 do
      let key = Printf.sprintf "k%04d" (n mod ws) in
      let c =
        if n mod 8 = 7 then
          request ~op:Storewire.kv_put ~key (Printf.sprintf "update-%04d" n)
        else request ~op:Storewire.kv_get ~key ""
      in
      samples := c :: !samples
    done;
    assert (!replies = !requests);
    List.rev !samples

  let run () =
    header "E20  KV over the channel-backed net path"
      "the first whole-system workload — client domain -> net rings -> KV \
       server -> log -> cache -> partition -> DMA ring — holds its tail \
       latency while the working set fits the cache, and degrades by a \
       bounded device-path cost per op when it spills";
    let rows =
      List.map
        (fun ws ->
          let samples = run_ws ws in
          let n = List.length samples in
          let total = List.fold_left ( + ) 0 samples in
          let mean = total / n in
          let p50 = percentile 50 samples and p99 = percentile 99 samples in
          (* throughput in ops per million simulated cycles *)
          let tput = float_of_int n *. 1_000_000. /. float_of_int total in
          (ws, mean, p50, p99, tput))
        working_sets
    in
    print_table
      ~columns:
        [ ("working set", ()); ("ops", ()); ("mean cyc/op", ());
          ("p50 cyc/op", ()); ("p99 cyc/op", ()); ("ops/Mcycle", ()) ]
      (List.map
         (fun (ws, mean, p50, p99, tput) ->
           [ Printf.sprintf "%d keys" ws; i (ops ()); i mean; i p50; i p99;
             f1 tput ])
         rows);
    (* asserted shape: the resident run's tail is flat (no op reaches the
       device), cost grows monotonically with the working set, and the
       spill tail is bounded by a constant number of media-transfer
       equivalents over the resident median. A clean spilled get pays
       exactly one uncached device read; a dirty spill adds the LRU
       writeback, whose driver-side buffer copy is all write-access
       translations — the machine's TLB caches only read translations,
       so the model charges a fill per byte, which dominates the media
       time itself. 10 media transfers covers both with margin. *)
    let media = Cost.blk_op Cost.default ~bytes:512 in
    (match rows with
    | (_, _, p50, p99, _) :: _ ->
      assert (p99 >= p50);
      assert (p99 - p50 < media)
    | [] -> assert false);
    let means = List.map (fun (_, mean, _, _, _) -> mean) rows in
    List.iter2
      (fun a b -> assert (a <= b))
      (List.tl (List.rev means) |> List.rev)
      (List.tl means);
    let resident_p50 =
      match rows with (_, _, p50, _, _) :: _ -> p50 | [] -> assert false
    in
    List.iter
      (fun (_, _, p50, p99, _) ->
        assert (p99 >= p50);
        assert (p99 <= resident_p50 + (10 * media)))
      rows;
    line "the resident tail is flat (p99 - p50 < one media transfer of %d \
          cycles); mean cost grows monotonically with the working set; and \
          every p99 stays within 10 media transfers of the resident median — \
          a spilled get pays one uncached device read, plus a dirty-line \
          writeback whose per-byte write translations cost more than the \
          media itself" media
end

(* ------------------------------------------------------------------ *)
(* E21: causal request tracing and per-layer attribution               *)
(* ------------------------------------------------------------------ *)

module E21 = struct
  (* the attribution telescopes by construction; epsilon is a
     cross-check of the fold, not a tolerance for lost cycles *)
  let epsilon = 2
  let ws = 24 (* straddles the 16-line cache: the load phase evicts *)

  type outcome = {
    reqs : Query.request list;
    measured : (string * int) list; (* label, measured end-to-end cycles *)
  }

  (* E20's client/server KV workload, with every request bracketed by
     req_begin/req_end: load [ws] puts through the cache, then get one
     evicted key and one resident key. With [traced] off the brackets
     mint nothing and record nothing — the zero-cost contract. *)
  let run_workload ?costs ~traced () =
    Journal.set_default_mode Journal.Full;
    Trace.set_enabled traced;
    Trace.reset ();
    Fun.protect
      ~finally:(fun () ->
        Trace.set_enabled false;
        Journal.set_default_mode Journal.Tail)
      (fun () ->
        let sys = System.create ~seed:0xBEEF ?costs () in
        let k = System.kernel sys in
        let net =
          System.setup_networking sys ~placement:System.Certified ~addr:42
            ~loopback:true ()
        in
        let nsc, _svc = System.channel_net sys net () in
        ignore
          (System.setup_store sys ~placement:System.Certified
             ~cache_capacity:16 ());
        let kdom = Kernel.kernel_domain k in
        let api = Kernel.api k in
        let kv = Kv.create api kdom ~name:"kv0" ~log:"/store/log0" () in
        (match Kv.serve api kdom ~kv ~net:nsc ~port:70 () with
        | Ok _ -> ()
        | Error e -> failwith ("E21: serve failed: " ^ Oerror.to_string e));
        let cdom = System.new_domain sys "kvclient" in
        let ring =
          match Netstack_chan.bind nsc ~port:71 ~owner:cdom ~mode:Chan.Poll () with
          | Ok c -> c
          | Error e -> failwith ("E21: bind failed: " ^ e)
        in
        let txh = Netstack_chan.attach_tx nsc ~producer:cdom in
        let mmu = Machine.mmu (Kernel.machine k) in
        let clock = Kernel.clock k in
        let j = Obs.journal (Clock.obs clock) in
        let replies = ref 0 and requests = ref 0 in
        let measured = ref [] in
        let request ~op ~key value =
          let label =
            (if op = Storewire.kv_put then "put "
             else if op = Storewire.kv_get then "get "
             else "del ")
            ^ key
          in
          let t0 = Clock.now clock in
          let rid = Journal.req_begin j ~domain:cdom.Domain.id ~at:t0 ~detail:label in
          incr requests;
          Mmu.switch_context mmu cdom.Domain.id;
          let cctx = Kernel.ctx k cdom in
          let req =
            Storewire.Kvmsg.build_req cctx ~op ~key:(Bytes.of_string key)
              (Bytes.of_string value)
          in
          ignore (Netstack_chan.submit txh cctx ~dst:42 ~sport:71 ~dport:70 req);
          Mmu.switch_context mmu kdom.Domain.id;
          ignore (Netstack_chan.drain_tx nsc);
          Kernel.step k ~ticks:2 ();
          Mmu.switch_context mmu cdom.Domain.id;
          List.iter
            (fun msg ->
              match Netwire.Delivery.parse cctx msg with
              | Error e -> failwith ("E21: bad delivery frame: " ^ e)
              | Ok { Netwire.Delivery.payload; _ } -> (
                match Storewire.Kvmsg.parse_resp cctx payload with
                | Error e -> failwith ("E21: bad kv response: " ^ e)
                | Ok { Storewire.Kvmsg.status; _ } ->
                  if status <> Storewire.Kvmsg.status_ok then
                    failwith
                      (Printf.sprintf "E21: kv op %d on %s failed with status %d"
                         op key status);
                  incr replies))
            (Chan.recv_batch ring ());
          Mmu.switch_context mmu kdom.Domain.id;
          let t1 = Clock.now clock in
          Journal.req_end j ~domain:cdom.Domain.id ~at:t1 rid;
          measured := (label, t1 - t0) :: !measured
        in
        for n = 0 to ws - 1 do
          request ~op:Storewire.kv_put
            ~key:(Printf.sprintf "k%04d" n)
            (Printf.sprintf "value-%04d" n)
        done;
        (* k0000 left the cache during the load; the last key is resident *)
        request ~op:Storewire.kv_get ~key:"k0000" "";
        request ~op:Storewire.kv_get ~key:(Printf.sprintf "k%04d" (ws - 1)) "";
        assert (!replies = !requests);
        let reqs =
          if not traced then []
          else
            match Query.fold ~complete:(Journal.complete j) (Journal.history j) with
            | Ok rs -> rs
            | Error e -> failwith ("E21: fold failed: " ^ e)
        in
        { reqs; measured = List.rev !measured })

  let find_req label reqs =
    match List.find_opt (fun r -> String.equal r.Query.label label) reqs with
    | Some r -> r
    | None -> failwith ("E21: no traced request " ^ label)

  (* every request's per-layer attribution must telescope to its
     measured end-to-end latency *)
  let assert_telescopes o =
    List.iter
      (fun r ->
        let total =
          List.fold_left (fun acc (_, n) -> acc + n) 0 (Query.attribution r)
        in
        assert (abs (total - Query.duration r) <= epsilon);
        let m = List.assoc r.Query.label o.measured in
        assert (abs (total - m) <= epsilon))
      o.reqs

  let run () =
    header "E21  Causal request tracing across the KV path"
      "a request id minted at ingress rides the wire through net, kv, log, \
       cache, partition and driver; folding the journal back attributes \
       every end-to-end cycle to exactly one layer, names the media wait on \
       a spilled get, and costs nothing when tracing is off";
    (* 1. zero simulated cost: the same workload, tracing off vs on *)
    let off = run_workload ~traced:false () in
    let on = run_workload ~traced:true () in
    let deltas =
      List.map2
        (fun (l1, c1) (l2, c2) ->
          assert (String.equal l1 l2);
          c2 - c1)
        off.measured on.measured
    in
    let d0 = match deltas with d :: _ -> d | [] -> assert false in
    List.iter (fun d -> assert (d = d0)) deltas;
    assert (d0 >= 0 && d0 < 1_000);
    line "tracing on costs a flat %d cycles/request — the rid bytes riding \
          each wire leg; the journal stores themselves are cycle-free, and \
          with tracing off the %d latencies are untouched"
      d0
      (List.length off.measured);
    (* 2. attribution telescopes to the measured latency, per request *)
    assert_telescopes on;
    line "attribution telescopes: sum over layers = end-to-end cycles for \
          every request (epsilon %d)" epsilon;
    (* 3. per-layer totals, default media vs a slow disk; the spilled
       get's critical path must name the media once the device wait
       dominates the driver's per-byte buffer copies *)
    let slow_costs = { Cost.default with blk_seek = 200_000 } in
    let slow = run_workload ~costs:slow_costs ~traced:true () in
    assert_telescopes slow;
    let totals_on = Query.layer_totals on.reqs in
    let totals_slow = Query.layer_totals slow.reqs in
    let layers =
      List.map fst totals_on
      @ List.filter
          (fun l -> not (List.mem_assoc l totals_on))
          (List.map fst totals_slow)
    in
    print_table
      ~columns:
        [ ("layer", ()); ("cycles (default media)", ());
          ("cycles (slow media)", ()) ]
      (List.map
         (fun l ->
           let v tl = match List.assoc_opt l tl with Some n -> i n | None -> "0" in
           [ l; v totals_on; v totals_slow ])
         layers);
    let spilled = find_req "get k0000" slow.reqs in
    let resident = find_req (Printf.sprintf "get k%04d" (ws - 1)) slow.reqs in
    assert (
      List.exists (fun (_, d, _) -> String.equal d "cache-miss") spilled.Query.notes);
    assert (
      List.exists (fun (_, d, _) -> String.equal d "cache-hit") resident.Query.notes);
    let path = Query.critical_path spilled in
    assert (List.mem "media" path);
    line "spilled get k0000 (slow media): cache-miss, critical path %s"
      (String.concat ">" path);
    line "resident get stays out of the device path: critical path %s"
      (String.concat ">" (Query.critical_path resident));
    (* 4. tracing leaves no residue: an untraced recording made after a
       traced one is byte-identical to one made before — the E1..E20
       outputs and every untraced export keep their bytes *)
    let record_kv () =
      match Replay.record "kv" with
      | Ok r -> r
      | Error e -> failwith ("E21: record failed: " ^ e)
    in
    let r1 = record_kv () in
    Trace.set_enabled true;
    let r2 = record_kv () in
    Trace.set_enabled false;
    let r3 = record_kv () in
    assert (String.equal r1.Replay.journal r3.Replay.journal);
    assert (String.equal r1.Replay.stats r3.Replay.stats);
    assert (not (String.equal r1.Replay.journal r2.Replay.journal));
    line "tracing off after on: untraced recordings stay byte-identical \
          (traced one carries %d more journal bytes)"
      (String.length r2.Replay.journal - String.length r1.Replay.journal)
end

(* ------------------------------------------------------------------ *)
(* E22: loop-bearing bytecode in the Verified placement                *)
(* ------------------------------------------------------------------ *)

module E22 = struct
  (* E15 admitted a straight-line filter; the widened verifier admits a
     whole-window checksum scan — a backward-jumping loop — with a
     machine-checked fuel bound affine in the window length L. The loop
     then runs at raw per-instruction cost (zero per-access overhead,
     like certification), while SFI pays its masking tax on every one of
     the ~10L executed instructions. *)

  let filter_src = "sum[0 .. len](byte[idx]) & 255 == 73"
  let window = 2048

  let run () =
    header "E22  Verified loops: a proven fuel bound admits a checksum scan"
      "loop-bearing bytecode earns the Verified placement: the worklist \
       fixpoint with widening proves memory safety and an affine trip bound \
       at once, so the kernel meters the loop against its own proof instead \
       of refusing backward jumps outright";
    let program =
      match Filterc.compile_string filter_src with
      | Ok p -> p
      | Error e -> failwith ("E22: " ^ e)
    in
    let code = Vm.encode program in
    (* the static proof, with the bound the loader will meter against *)
    let fb =
      match Verify.verify program with
      | Verify.Verified { fuel; _ } -> fuel
      | Verify.Rejected _ as v ->
        failwith ("E22: " ^ Verify.verdict_to_string v)
    in
    assert (fb.Verify.per_len >= 1);
    let bound = Verify.fuel_for fb ~len:window in
    let rewritten =
      match
        Sfi_rewrite.rewrite program ~window_size:(Sfi_rewrite.padded_size window)
      with
      | Ok p -> p
      | Error e -> failwith ("E22: " ^ e)
    in
    (* a packet whose byte sum lands on the checksum: 'p' everywhere,
       first byte chosen so sum mod 256 = 73 *)
    let pkt = Bytes.make window 'p' in
    Bytes.set pkt 0 (Char.chr ((73 - (Char.code 'p' * (window - 1))) land 255));
    let clock = Clock.create () in
    let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
    let cost_of ~fuel prog =
      let before = Clock.now clock in
      for _ = 1 to 20 do
        match Vm.run ctx ~mem:(Vm.mem_of_bytes pkt) ~fuel prog with
        | Vm.Returned 1 -> ()
        | Vm.Returned v -> failwith (Printf.sprintf "E22: filter returned %d" v)
        | Vm.Wild_access _ -> failwith "E22: wild access"
        | Vm.Vm_fault m -> failwith ("E22: " ^ m)
      done;
      float_of_int (Clock.now clock - before) /. 20.
    in
    (* the verified run is metered against exactly the proven bound — a
       fault here would disprove the proof; SFI is outside it and gets a
       policy allowance sized to its rewrite overhead *)
    let raw_run = cost_of ~fuel:bound program in
    let verified_run = cost_of ~fuel:bound program in
    let sfi_run = cost_of ~fuel:((3 * bound) + 1024) rewritten in
    assert (verified_run = raw_run);
    (* one-off admission cost, charged per instruction by the service *)
    let sys = fresh_sys () in
    let certsvc = Kernel.certification (System.kernel sys) in
    let kclock = Kernel.clock (System.kernel sys) in
    let before = Clock.now kclock in
    (match Certsvc.verify certsvc ~code with
    | Ok fb' -> assert (fb' = fb)
    | Error e -> failwith ("E22: verifier rejected the scan: " ^ e));
    let verify_cost = Clock.now kclock - before in
    (* end-to-end: unsigned loop bytecode admitted by Verified placement,
       and the loader records the proven bound for the run path *)
    let vimage =
      let base =
        Images.image ~name:"vscan" ~size:(String.length code) ~author:"anyone"
          ~type_safe:false (fun api dom ->
            Instance.create api.Api.registry ~class_name:"verified.scan"
              ~domain:dom.Domain.id [])
      in
      { base with Loader.code }
    in
    (match
       System.install sys vimage ~placement:System.Verified ~at:"/services/vscan"
     with
    | Ok _ -> ()
    | Error e -> failwith ("E22: Verified install failed: " ^ e));
    (match System.verified_fuel sys "vscan" with
    | Some fb' when fb' = fb -> ()
    | Some _ -> failwith "E22: loader recorded a different bound"
    | None -> failwith "E22: loader recorded no bound");
    (* the unbounded cousin stays out, with a named reason at a pc *)
    let unbounded = [| Vm.Const (2, 0); Vm.Jmp 1; Vm.Ret 2 |] in
    let rejection =
      match Verify.verify unbounded with
      | Verify.Rejected _ as v -> Verify.verdict_to_string v
      | Verify.Verified _ -> failwith "E22: unbounded loop must be rejected"
    in
    let overhead = sfi_run -. raw_run in
    print_table
      ~columns:
        [ ("admission", ()); ("one-off cycles", ()); ("cycles/run", ());
          ("per-run overhead", ()) ]
      [
        [ "verified (static proof)"; i verify_cost; f1 verified_run; "0.0" ];
        [ "SFI-rewritten"; "0"; f1 sfi_run; f1 overhead ];
      ];
    line "filter: %s (%d instructions)" filter_src (Vm.instr_count program);
    line "proven fuel bound: %d*L + %d = %d at L = %d (run cost %.1f cyc stays under it)"
      fb.Verify.per_len fb.Verify.fixed bound window verified_run;
    line "crossover vs SFI: the one-off proof pays for itself after %.0f runs"
      (Float.of_int verify_cost /. overhead |> Float.ceil);
    line "backward Jmp cousin: %s" rejection;
    line "=> a loop over all %d bytes ran in the kernel at raw cost, metered by its own proof"
      window
end

(* ------------------------------------------------------------------ *)
(* E23: truly parallel execution over the SMP complex                  *)
(* ------------------------------------------------------------------ *)

module E23 = struct
  let flows = 8
  let cpu_counts = [ 1; 2; 4; 8 ]
  let payload = 48
  let msgs () = if !quick then 16 else 48
  let grain = 400

  (* One flow is the E13/E16 shape reduced to its scalable core: a
     producer/consumer ring plus [grain] cycles of compute per message,
     the whole flow pinned to one CPU. With C CPUs the 8 flows split C
     ways; per-CPU clocks advance independently and global virtual time
     is the slowest CPU's — the makespan. *)
  let flow_body machine chan count () =
    let msg = Bytes.make payload 'm' in
    for _ = 1 to count do
      ignore (Chan.try_send chan msg);
      ignore (Chan.try_recv chan);
      Clock.advance (Machine.clock machine) grain;
      Scheduler.yield ()
    done

  let make_flow sys k f =
    let machine = Kernel.machine k in
    let pdom = System.new_domain sys (Printf.sprintf "flow%d-p" f) in
    let cdom = System.new_domain sys (Printf.sprintf "flow%d-c" f) in
    let chan =
      Chan.create machine (Kernel.vmem k) ~name:(Printf.sprintf "flow%d" f)
        ~slots:8 ~slot_size:64 ~producer:pdom ()
    in
    ignore (Chan.accept chan ~into:cdom);
    Chan.set_mode chan Chan.Poll;
    Chan.set_cacheline_priced chan true;
    (pdom, cdom, chan)

  (* Makespan of the 8 flows over [cpus] CPUs, flows pinned round-robin. *)
  let run_flows cpus =
    let sys = System.create ~seed:0xBEEF ~cpus () in
    let k = System.kernel sys in
    let machine = Kernel.machine k in
    match System.smp sys with
    | None ->
      (* uniprocessor: the same flows, time-sliced on the boot scheduler *)
      let sched = Kernel.sched k in
      List.iter
        (fun f ->
          let _, _, chan = make_flow sys k f in
          ignore
            (Scheduler.spawn sched ~name:(Printf.sprintf "flow%d" f)
               (flow_body machine chan (msgs ()))))
        (List.init flows Fun.id);
      let before = Clock.now (Kernel.clock k) in
      ignore (Scheduler.run sched ());
      Clock.now (Kernel.clock k) - before
    | Some smp ->
      let cpx = Option.get (System.cpu sys) in
      List.iter
        (fun f ->
          let pdom, cdom, chan = make_flow sys k f in
          let cpu = f mod cpus in
          Cpu.pin cpx ~domain:pdom.Domain.id ~cpu;
          Cpu.pin cpx ~domain:cdom.Domain.id ~cpu;
          ignore
            (Smp.spawn_on smp cpu ~name:(Printf.sprintf "flow%d" f)
               (flow_body machine chan (msgs ()))))
        (List.init flows Fun.id);
      let before = List.init cpus (fun c -> Cpu.now cpx c) in
      (* steal:false — the curve isolates partitioning; stealing gets
         its own segment below *)
      ignore (Smp.run ~steal:false smp);
      List.fold_left max 0
        (List.mapi (fun c b -> Cpu.now cpx c - b) before)

  (* The same per-message model the channels charge: crossing CPUs costs
     [lines] cache-line transfers on the send and again on the recv. *)
  let channel_gap () =
    let sys = System.create ~seed:0xBEEF ~cpus:2 () in
    let k = System.kernel sys in
    let machine = Kernel.machine k in
    let cpx = Option.get (System.cpu sys) in
    let pdom = System.new_domain sys "gap-p" in
    let cdom = System.new_domain sys "gap-c" in
    let chan =
      Chan.create machine (Kernel.vmem k) ~name:"gap" ~slots:8 ~slot_size:64
        ~producer:pdom ()
    in
    ignore (Chan.accept chan ~into:cdom);
    Chan.set_mode chan Chan.Poll;
    Chan.set_cacheline_priced chan true;
    let msg = Bytes.make payload 'm' in
    let per_msg () =
      let clock = Machine.clock machine in
      let before = Clock.now clock in
      for _ = 1 to 16 do
        ignore (Chan.try_send chan msg);
        ignore (Chan.try_recv chan)
      done;
      (Clock.now clock - before) / 16
    in
    let same = per_msg () in
    Cpu.pin cpx ~domain:cdom.Domain.id ~cpu:1;
    let cross = per_msg () in
    let model =
      2 * Chan.lines_of_msg payload * (Machine.costs machine).Cost.cacheline
    in
    if cross - same <> model then
      failwith
        (Printf.sprintf
           "E23: cross-CPU gap %d does not match the cache-line model %d"
           (cross - same) model);
    (same, cross, model)

  (* All 8 flows dumped on CPU 0 of a 4-CPU complex: without stealing
     three CPUs idle and the makespan is serial; with stealing the idle
     CPUs pull ready flows over and split the work. *)
  let stealing_makespan steal =
    let sys = System.create ~seed:0xBEEF ~cpus:4 () in
    let k = System.kernel sys in
    let machine = Kernel.machine k in
    let smp = Option.get (System.smp sys) in
    let cpx = Option.get (System.cpu sys) in
    List.iter
      (fun f ->
        let _, _, chan = make_flow sys k f in
        ignore
          (Smp.spawn_on smp 0 ~name:(Printf.sprintf "flow%d" f)
             (flow_body machine chan (msgs ()))))
      (List.init flows Fun.id);
    let before = List.init 4 (fun c -> Cpu.now cpx c) in
    ignore (Smp.run ~steal smp);
    let makespan =
      List.fold_left max 0 (List.mapi (fun c b -> Cpu.now cpx c - b) before)
    in
    (makespan, Smp.stats smp `Steals)

  let run () =
    header "E23  Truly parallel execution: scaling over the SMP complex"
      "per-CPU clocks and schedulers turn the simulated machine into an N-way \
       multiprocessor; partitioned flows scale near-linearly, cross-CPU \
       traffic pays the coherence fabric by the cache-line model, and idle \
       CPUs steal work";
    let base = run_flows 1 in
    let curve =
      List.map
        (fun c ->
          let mk = run_flows c in
          (c, mk, float_of_int base /. float_of_int mk))
        cpu_counts
    in
    print_table
      ~columns:
        [ ("cpus", ()); ("makespan cyc", ()); ("speedup", ());
          ("efficiency", ()) ]
      (List.map
         (fun (c, mk, s) -> [ i c; i mk; f2 s ^ "x"; f2 (s /. float_of_int c) ])
         curve);
    line "(8 pinned flows, %d messages each, %d cyc compute per message;"
      (msgs ()) grain;
    line " makespan = slowest CPU's clock; flows split round-robin)";
    List.iter
      (fun (c, _, s) ->
        if s < 0.9 *. float_of_int c then
          failwith
            (Printf.sprintf "E23: speedup %.2fx at %d cpus is below the 0.9C \
                             near-linear floor" s c))
      curve;
    line "=> the whole curve stays within 10%% of linear: partitioned flows";
    line "   share no state, so per-CPU clocks never reconcile";
    line "";
    let same, cross, model = channel_gap () in
    line "-- cross-CPU channel traffic: the cache-line transfer model --";
    print_table
      ~columns:
        [ ("endpoints", ()); ("cyc/msg", ()); ("gap", ()) ]
      [
        [ "same cpu"; i same; "0" ];
        [ "cross cpu"; i cross; i (cross - same) ];
      ];
    line "=> the gap is exactly %d cyc: %d lines (%dB msg + header) x %d \
          cyc/line, paid on send and on recv"
      model
      (Chan.lines_of_msg payload)
      payload Cost.default.Cost.cacheline;
    line "";
    let mk_off, _ = stealing_makespan false in
    let mk_on, steals = stealing_makespan true in
    line "-- work stealing: 8 flows dumped on CPU 0 of a 4-CPU complex --";
    print_table
      ~columns:[ ("stealing", ()); ("makespan cyc", ()); ("steals", ()) ]
      [
        [ "off"; i mk_off; "0" ];
        [ "on"; i mk_on; i steals ];
      ];
    if steals = 0 then failwith "E23: idle CPUs stole nothing";
    if mk_on >= mk_off then
      failwith "E23: stealing did not improve the makespan";
    line "=> idle CPUs pulled %d ready flows over (%d cyc each: two cache-line"
      steals (Cost.steal Cost.default);
    line "   transfers + one memory read) and cut the makespan %.2fx"
      (float_of_int mk_off /. float_of_int mk_on)
end

(* ------------------------------------------------------------------ *)
(* E-REPLAY: deterministic record/replay of whole runs                 *)
(* ------------------------------------------------------------------ *)

module Ereplay = struct
  let run () =
    header "E-REPLAY  Deterministic record/replay of whole runs"
      "a journalled run is a reproducible artifact: re-executing the scenario \
       from the same seed regenerates the journal and the /stats snapshot \
       byte for byte (the contract `pm_replay` and CI assert)";
    let rows =
      List.map
        (fun (name, _desc) ->
          match Replay.record name with
          | Error e -> [ name; "-"; "-"; "record failed: " ^ e ]
          | Ok r ->
            let events =
              match Journal.import r.Replay.journal with
              | Ok es -> i (List.length es)
              | Error _ -> "?"
            in
            let verdict =
              match Replay.replay r with
              | Ok () -> "byte-identical"
              | Error _ -> "DIVERGED"
            in
            assert (verdict = "byte-identical");
            [ name; events; i (String.length r.Replay.stats); verdict ])
        Replay.scenarios
    in
    print_table
      ~columns:
        [ ("scenario", ()); ("journal events", ()); ("stats bytes", ());
          ("replay", ()) ]
      rows;
    line
      "(each scenario is captured in Full mode, re-executed from the same seed,";
    line " and the journal export plus /stats snapshot compared byte-for-byte)"
end

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock suite                                           *)
(* ------------------------------------------------------------------ *)

let wall_clock_suite () =
  let open Bechamel in
  let open Toolkit in
  line "";
  line "==============================================================================";
  line "Wall-clock micro-benchmarks (Bechamel, monotonic clock, ns/op)";
  line "(steady-state operations on prebuilt systems)";
  line "==============================================================================";
  (* prebuilt fixtures so the measured closure is the steady-state
     operation, not system boot *)
  let e1 = E1.make_fixture () in
  let e2_clock, e2_ctx, e2_ns = E2.fixture () in
  ignore e2_clock;
  let e2_root = View.of_namespace e2_ns in
  let e2_path = E2.deep_path 4 in
  let e3_k, _, e3_udom, _, _, e3_proxy = E3.fixture () in
  Mmu.switch_context (Machine.mmu (Kernel.machine e3_k)) e3_udom.Domain.id;
  let e3_ctx = Kernel.ctx e3_k e3_udom in
  let e4_sys = fresh_sys () in
  let e4_k = System.kernel e4_sys in
  let e4_kdom = Kernel.kernel_domain e4_k in
  let e4_net = System.setup_networking e4_sys ~placement:System.Certified ~addr:42 () in
  let e4_ctx = Kernel.ctx e4_k e4_kdom in
  ignore
    (Invoke.call_exn e4_ctx e4_net.System.stack ~iface:"stack" ~meth:"bind_port"
       [ Value.Int 7 ]);
  let e4_packet = Bytes.to_string (E4.make_packet e4_ctx ~dst:42 256) in
  let e5_sys = fresh_sys () in
  let e5_k = System.kernel e5_sys in
  let e5_image =
    Images.image ~name:"e5wall" ~size:24_576 ~type_safe:true E5.null_construct
  in
  let e5_image, _ = Images.certify (System.authority e5_sys) ~now:0 e5_image in
  let e5_cert = Option.get e5_image.Loader.cert in
  let e6_sys = fresh_sys () in
  let e6_k = System.kernel e6_sys in
  ignore
    (Events.register_popup (Kernel.events e6_k) (Events.Irq 7)
       ~domain:(Kernel.kernel_domain e6_k) ~sched:(Kernel.sched e6_k) (fun _ -> ()));
  let e7_sys = fresh_sys () in
  let e7_k = System.kernel e7_sys in
  let e7_kdom = Kernel.kernel_domain e7_k in
  let e7_net = System.setup_networking e7_sys ~placement:System.Certified ~addr:42 () in
  let e7_target =
    let t = Interpose.packet_monitor (Kernel.api e7_k) e7_kdom ~target:e7_net.System.driver in
    Interpose.packet_monitor (Kernel.api e7_k) e7_kdom ~target:t
  in
  let e7_ctx = Kernel.ctx e7_k e7_kdom in
  let e7_frame = Value.Blob (Bytes.create 256) in
  let e8_rng = Prng.create ~seed:0xCA in
  let e8_auth = Authority.create e8_rng ~name:"ca" ~key_bits:512 in
  ignore
    (Authority.add_delegate e8_auth e8_rng ~name:"compiler"
       ~policy:Policies.trusted_compiler ~latency:1 ());
  let e8_meta = Meta.make ~type_safe:true ~name:"m" ~size:4096 () in
  let tests =
    Test.make_grouped ~name:"paramecium"
      [
        Test.make ~name:"e1_invoke_grain100"
          (Staged.stage (fun () ->
               ignore
                 (Invoke.call e1.E1.ctx e1.E1.plain ~iface:"work" ~meth:"run"
                    [ Value.Int 100 ])));
        Test.make ~name:"e2_bind_depth4"
          (Staged.stage (fun () -> ignore (View.bind e2_ctx e2_root e2_path)));
        Test.make ~name:"e3_crossdomain_call"
          (Staged.stage (fun () ->
               ignore
                 (Invoke.call e3_ctx e3_proxy ~iface:"echo" ~meth:"echo"
                    [ Value.Int 1 ])));
        Test.make ~name:"e4_packet_rx_certified"
          (Staged.stage (fun () ->
               Nic.inject (Kernel.nic e4_k) e4_packet;
               Kernel.step e4_k ~ticks:1 ();
               ignore
                 (Invoke.call_exn e4_ctx e4_net.System.stack ~iface:"stack"
                    ~meth:"recv" [ Value.Int 7 ])));
        Test.make ~name:"e5_validate_24k"
          (Staged.stage (fun () ->
               ignore
                 (Certsvc.validate (Kernel.certification e5_k) e5_cert
                    ~code:e5_image.Loader.code)));
        Test.make ~name:"e6_popup_event"
          (Staged.stage (fun () -> Machine.raise_irq (Kernel.machine e6_k) 7));
        Test.make ~name:"e7_send_2_monitors"
          (Staged.stage (fun () ->
               ignore
                 (Invoke.call_exn e7_ctx e7_target ~iface:"netdev" ~meth:"send"
                    [ e7_frame ]);
               Kernel.step e7_k ~ticks:1 ();
               ignore (Nic.take_transmitted (Kernel.nic e7_k))));
        Test.make ~name:"e8_certify_compiler"
          (Staged.stage (fun () ->
               ignore (Authority.certify e8_auth e8_meta ~code:"code" ~now:0)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> Printf.sprintf "%.0f" e
          | _ -> "n/a"
        in
        [ name; est ] :: acc)
      results []
    |> List.sort compare
  in
  print_table ~columns:[ ("benchmark", ()); ("ns/op", ()) ] rows

let () =
  let wall = Array.exists (fun a -> a = "--wall") Sys.argv in
  quick := Array.exists (fun a -> a = "--quick") Sys.argv;
  let only =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> a <> "--wall" && a <> "--quick")
  in
  let experiments =
    [ ("e1", E1.run); ("e2", E2.run); ("e3", E3.run); ("e4", E4.run);
      ("e5", E5.run); ("e6", E6.run); ("e7", E7.run); ("e8", E8.run);
      ("e9", E9.run); ("e10", E10.run); ("e11", E11.run); ("e12", E12.run);
      ("e13", E13.run); ("e14", E14.run); ("e15", E15.run); ("e16", E16.run);
      ("obs", Eobs.run); ("e18", E18.run); ("e19", E19.run);
      ("e20", E20.run); ("e21", E21.run); ("e22", E22.run); ("e23", E23.run);
      ("replay", Ereplay.run) ]
  in
  line "Paramecium reproduction — experiment suite";
  line "(simulated cycles, deterministic; cost model: SPARC-era defaults)";
  List.iter
    (fun (name, run) -> if only = [] || List.mem name only then run ())
    experiments;
  if wall then wall_clock_suite ()
