(* End-to-end integration tests: full-system packet flows under every
   placement, reconfiguration scenarios from the paper, baseline
   comparisons, and failure injection. *)

open Paramecium

let value = Alcotest.testable Value.pp Value.equal

let sys_fixture ?costs () = System.create ?costs ~key_bits:384 ()

let stack_call k dom stack meth args =
  Invoke.call_exn (Kernel.ctx k dom) stack ~iface:"stack" ~meth args

let make_packet ctx ~src ~dst ~sport ~dport payload =
  let tp = Wire.Transport.build ctx ~sport ~dport (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src ~dst ~ttl:8 ~proto:Stack.proto_transport tp in
  Wire.Frame.build ctx ~dst ~src np

(* push [n] packets through a configured system; returns cycles consumed
   and the number delivered *)
let pump_packets sys net ~n ~payload_size =
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let consume_dom =
    match net.System.stack_domain with d when Domain.is_kernel d -> kdom | d -> d
  in
  ignore (stack_call k consume_dom net.System.stack "bind_port" [ Value.Int 7 ]);
  let ctx = Kernel.ctx k kdom in
  let payload = String.make payload_size 'p' in
  let packet = Bytes.to_string (make_packet ctx ~src:13 ~dst:42 ~sport:9 ~dport:7 payload) in
  let clock = Kernel.clock k in
  let start = Clock.now clock in
  for _ = 1 to n do
    Nic.inject (Kernel.nic k) packet
  done;
  Kernel.step k ~ticks:(n + 4) ();
  let cycles = Clock.now clock - start in
  let delivered =
    match stack_call k consume_dom net.System.stack "recv" [ Value.Int 7 ] with
    | Value.List items -> List.length items
    | _ -> 0
  in
  (cycles, delivered)

(* --- placements end to end ------------------------------------------------ *)

let test_packet_flow_all_placements () =
  let run placement =
    let sys = sys_fixture () in
    let net =
      match placement with
      | `User ->
        let dom = System.new_domain sys "netuser" in
        System.setup_networking sys ~placement:(System.User dom) ~addr:42 ()
      | `Certified -> System.setup_networking sys ~placement:System.Certified ~addr:42 ()
      | `Sandboxed -> System.setup_networking sys ~placement:System.Sandboxed ~addr:42 ()
    in
    pump_packets sys net ~n:10 ~payload_size:256
  in
  let c_cert, d_cert = run `Certified in
  let c_sand, d_sand = run `Sandboxed in
  let c_user, d_user = run `User in
  Alcotest.(check int) "certified delivers all" 10 d_cert;
  Alcotest.(check int) "sandboxed delivers all" 10 d_sand;
  Alcotest.(check int) "user delivers all" 10 d_user;
  (* the paper's ordering: certified in-kernel is cheapest, sandboxing
     pays per-access checks, user space pays cross-domain crossings *)
  Alcotest.(check bool)
    (Printf.sprintf "certified (%d) < sandboxed (%d)" c_cert c_sand)
    true (c_cert < c_sand);
  Alcotest.(check bool)
    (Printf.sprintf "certified (%d) < user (%d)" c_cert c_user)
    true (c_cert < c_user)

let test_interposed_monitor_sees_everything () =
  (* the paper's monitoring scenario on /shared/network, end to end *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let api = Kernel.api k in
  let agent = Interpose.packet_monitor api kdom ~target:net.System.driver in
  (match Interpose.attach api ~path:"/services/netdrv" ~agent with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* the stack binds the driver lazily by name, so its next send goes
     through the agent *)
  let ctx = Kernel.ctx k kdom in
  for i = 1 to 5 do
    ignore
      (stack_call k kdom net.System.stack "send"
         [ Value.Int 13; Value.Int 1; Value.Int 2;
           Value.Blob (Bytes.make (i * 10) 'x') ])
  done;
  Kernel.step k ~ticks:8 ();
  Alcotest.check value "all sends observed" (Value.Int 5)
    (Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"calls" []);
  (match Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"blob_bytes" [] with
  | Value.Int b ->
    (* 10+20+30+40+50 payload bytes plus per-frame header overhead *)
    Alcotest.(check bool) (Printf.sprintf "bytes observed: %d" b) true
      (b >= 150 + (5 * Wire.stack_overhead))
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  Alcotest.(check int) "frames still reached the wire" 5
    (List.length (Nic.take_transmitted (Kernel.nic k)))

let test_namespace_override_isolates_domains () =
  (* two user domains: one gets the real network, one a monitored view;
     only the overridden domain's traffic is observed *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let api = Kernel.api k in
  let agent = Interpose.packet_monitor api kdom ~target:net.System.driver in
  Kernel.register_at k "/services/monitored-netdrv" agent;
  let plain = Kernel.create_domain k ~name:"plain" () in
  let watched =
    Kernel.create_domain k ~name:"watched"
      ~overrides:[ (Path.of_string "/shared/network", Instance.handle agent) ]
      ()
  in
  let send dom =
    let bound = Kernel.bind k dom "/shared/network" in
    ignore
      (Invoke.call_exn (Kernel.ctx k dom) bound ~iface:"netdev" ~meth:"send"
         [ Value.Blob (Bytes.of_string "hello") ])
  in
  send plain;
  send watched;
  let ctx = Kernel.ctx k kdom in
  Alcotest.check value "only the watched domain's traffic" (Value.Int 1)
    (Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"calls" []);
  Kernel.step k ~ticks:2 ();
  Alcotest.(check int) "both frames went out" 2
    (List.length (Nic.take_transmitted (Kernel.nic k)))

(* --- certification failure injection ---------------------------------------- *)

let bad_construct (api : Api.t) (dom : Domain.t) =
  Instance.create api.Api.registry ~class_name:"evil" ~domain:dom.Domain.id []

let test_tampered_component_cannot_enter_kernel () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let image = Images.image ~name:"evil" ~size:4096 ~type_safe:true bad_construct in
  let image, _ = Images.certify (System.authority sys) ~now:0 image in
  (* flip one bit anywhere after certification *)
  List.iter
    (fun at ->
      let tampered = { image with Loader.code = Codegen.tamper image.Loader.code ~at } in
      Loader.publish (Kernel.loader k) tampered;
      match
        Loader.load (Kernel.loader k) ~name:"evil" ~into:(Kernel.kernel_domain k)
          ~at:(Path.of_string "/svc/evil") ()
      with
      | Error (Loader.Validation_failed Validator.Digest_mismatch) -> ()
      | _ -> Alcotest.failf "tamper at byte %d admitted!" at)
    [ 0; 1; 2048; 4095 ]

let test_revoked_delegate_stops_admitting () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let auth = System.authority sys in
  let image = Images.image ~name:"c" ~size:1024 ~type_safe:true bad_construct in
  let image, _ = Images.certify auth ~now:0 image in
  (* works before revocation *)
  Loader.publish (Kernel.loader k) image;
  (match
     Loader.load (Kernel.loader k) ~name:"c" ~into:(Kernel.kernel_domain k)
       ~at:(Path.of_string "/svc/c1") ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pre-revocation load failed: %s" (Loader.load_error_to_string e));
  (* revoke the compiler delegate: the same certificate stops working *)
  (match image.Loader.cert with
  | Some cert ->
    Certsvc.revoke (Kernel.certification k)
      (Principal.id cert.Certificate.signer)
  | None -> Alcotest.fail "fixture produced no cert");
  (match
     Loader.load (Kernel.loader k) ~name:"c" ~into:(Kernel.kernel_domain k)
       ~at:(Path.of_string "/svc/c2") ()
   with
  | Error (Loader.Validation_failed (Validator.Revoked_principal _)) -> ()
  | _ -> Alcotest.fail "revoked signer must be refused")

let test_unknown_authority_rejected () =
  (* component certified by a *different* authority: chain check fails *)
  let sys_a = sys_fixture () in
  let sys_b = System.create ~seed:999 ~key_bits:384 () in
  let k = System.kernel sys_a in
  let image = Images.image ~name:"foreign" ~size:1024 ~type_safe:true bad_construct in
  let image, _ = Images.certify (System.authority sys_b) ~now:0 image in
  Loader.publish (Kernel.loader k) image;
  (match
     Loader.load (Kernel.loader k) ~name:"foreign" ~into:(Kernel.kernel_domain k)
       ~at:(Path.of_string "/svc/f") ()
   with
  | Error (Loader.Validation_failed (Validator.Untrusted_signer _)) -> ()
  | _ -> Alcotest.fail "foreign authority must be refused")

let test_spin_model_trusted_compiler () =
  (* SPIN as the paper describes it: delegate certification to the
     type-safe-language compiler; its output enters the kernel with no
     run-time checks *)
  let sys = sys_fixture () in
  let spin_image =
    Images.image ~name:"spin-ext" ~size:2048 ~type_safe:true bad_construct
  in
  let inst = System.install_exn sys spin_image ~placement:System.Certified ~at:"/svc/spin" in
  Alcotest.(check bool) "not sandboxed" false (Sandbox.is_sandboxed inst);
  (* the same component *without* the compiler's blessing and an untrusted
     author has no path into the kernel except the sandbox *)
  let unsafe_image =
    Images.image ~name:"raw-ext" ~size:2048 ~author:"rando" bad_construct
  in
  (match System.install sys unsafe_image ~placement:System.Certified ~at:"/svc/raw" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unvouched component must not enter the kernel");
  let inst2 = System.install_exn sys unsafe_image ~placement:System.Sandboxed ~at:"/svc/raw" in
  Alcotest.(check bool) "sandboxed" true (Sandbox.is_sandboxed inst2)

(* --- device-level failure injection ------------------------------------------ *)

let test_rx_ring_overrun_drops_not_crashes () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let config = { Netdrv.default_config with Netdrv.rx_buffers = 2 } in
  let driver = Netdrv.create (Kernel.api k) kdom ~config () in
  Kernel.register_at k "/services/netdrv" driver;
  let ctx = Kernel.ctx k kdom in
  (* flood: many packets, few buffers, no ticks in between *)
  for _ = 1 to 20 do
    Nic.inject (Kernel.nic k) "flood"
  done;
  Kernel.step k ~ticks:30 ();
  (match Invoke.call_exn ctx driver ~iface:"netdev" ~meth:"dropped" [] with
  | Value.Int d -> Alcotest.(check bool) (Printf.sprintf "drops counted: %d" d) true (d = 0)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (* with interrupts disabled the ring really overruns *)
  let sys2 = sys_fixture () in
  let k2 = System.kernel sys2 in
  (* no driver at all: enable rx via raw io so packets arrive unattended *)
  let nic2 = Kernel.nic k2 in
  Machine.io_write (Kernel.machine k2) (Nic.io_base nic2) 1;
  for _ = 1 to 5 do
    Nic.inject nic2 "lost"
  done;
  for _ = 1 to 6 do
    Machine.tick (Kernel.machine k2)
  done;
  Alcotest.(check int) "unattended packets dropped" 5
    (Machine.io_read (Kernel.machine k2) (Nic.io_base nic2 + 32))

let test_component_crash_contained () =
  (* a component whose method raises: the object layer reports Fault-free
     error handling at the thread level; the kernel survives *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let crasher =
    Instance.create api.Api.registry ~class_name:"crasher" ~domain:kdom.Domain.id
      [
        Iface.make ~name:"boom"
          [
            Iface.meth ~name:"go" ~args:[] ~ret:Vtype.Tunit (fun _ _ ->
                failwith "component bug");
          ];
      ]
  in
  Kernel.register_at k "/svc/crasher" crasher;
  let sched = Kernel.sched k in
  ignore
    (Scheduler.spawn sched ~name:"victim" (fun () ->
         ignore
           (Invoke.call (Kernel.ctx k kdom) crasher ~iface:"boom" ~meth:"go" [])));
  ignore (Kernel.run k);
  Alcotest.(check int) "crash contained to the thread" 1 (Scheduler.stats sched `Crashes);
  (* the kernel still works *)
  let ping = Kernel.bind k kdom "/nucleus/directory" in
  (match
     Invoke.call_exn (Kernel.ctx k kdom) ping ~iface:"directory" ~meth:"list"
       [ Value.Str "/svc" ]
   with
  | Value.List _ -> ()
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

(* --- scheduling / events integration ------------------------------------------ *)

let test_interrupt_popup_blocking_pipeline () =
  (* rx interrupt wakes a consumer thread through a semaphore: the popup
     promotes, the consumer runs, end to end under Kernel.step *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let sched = Kernel.sched k in
  let sem = Sync.Semaphore.create 0 in
  let handled = ref 0 in
  ignore
    (Events.register_popup (Kernel.events k) (Events.Irq 7) ~domain:kdom ~sched
       (fun _ ->
         (* blocks: the proto-thread must be promoted *)
         Sync.Semaphore.acquire sem;
         incr handled));
  Machine.raise_irq (Kernel.machine k) 7;
  Machine.raise_irq (Kernel.machine k) 7;
  Alcotest.(check int) "both promoted" 2 (Scheduler.stats sched `Promotions);
  Alcotest.(check int) "nothing handled yet" 0 !handled;
  Sync.Semaphore.release sem;
  Sync.Semaphore.release sem;
  ignore (Kernel.run k);
  Alcotest.(check int) "both completed" 2 !handled

let test_timer_driven_preemption_signal () =
  (* the timer device drives periodic events into a popup that feeds a
     tick counter — the classic clock-tick pipeline *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let ticks = ref 0 in
  ignore
    (Events.register_popup (Kernel.events k) (Events.Irq 0) ~domain:kdom
       ~sched:(Kernel.sched k) (fun _ -> incr ticks));
  let base = Timer_dev.io_base (Kernel.timer k) in
  Machine.io_write (Kernel.machine k) base 2 (* period *);
  Machine.io_write (Kernel.machine k) (base + 4) 3 (* enable periodic *);
  Kernel.step k ~ticks:10 ();
  Alcotest.(check int) "five timer events" 5 !ticks

(* --- cost-model sanity across the whole system --------------------------------- *)

let test_cross_domain_tax_visible_in_counters () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let dom = System.new_domain sys "u" in
  let net = System.setup_networking sys ~placement:(System.User dom) ~addr:42 () in
  ignore (pump_packets sys net ~n:5 ~payload_size:128);
  let clock = Kernel.clock k in
  Alcotest.(check bool) "cross-domain calls happened" true
    (Clock.counter clock "cross_domain_call" >= 5);
  Alcotest.(check bool) "proxy faults happened" true
    (Clock.counter clock "proxy_fault" >= 5);
  Alcotest.(check bool) "context switches happened" true
    (Clock.counter clock "context_switch" >= 10)

let test_sandbox_tax_scales_with_packet_size () =
  let run payload_size =
    let sys = sys_fixture () in
    let net = System.setup_networking sys ~placement:System.Sandboxed ~addr:42 () in
    ignore (pump_packets sys net ~n:5 ~payload_size);
    Clock.counter (Kernel.clock (System.kernel sys)) "sfi_check"
  in
  let small = run 64 in
  let large = run 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "more checks for bigger packets (%d vs %d)" small large)
    true
    (large > small * 4)

(* --- observability end to end -------------------------------------------------- *)

let test_tracing_whole_workload () =
  (* a user domain drives /nucleus/trace (through a proxy), a full packet
     workload runs traced, and the numbers it reports are consistent *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let udom = System.new_domain sys "observer" in
  let trace = Kernel.bind k udom "/nucleus/trace" in
  Alcotest.(check bool) "trace service proxied" true (Proxy.is_proxy trace);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let uctx = Kernel.ctx k udom in
  (match Invoke.call uctx trace ~iface:"trace" ~meth:"start" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "start");
  ignore (pump_packets sys net ~n:5 ~payload_size:128);
  let obs = Clock.obs (Kernel.clock k) in
  Alcotest.(check bool) "spans were recorded" true
    (Tracer.recorded (Obs.tracer obs) > 5);
  (* the per-packet dispatch latency histogram exists and is sane *)
  (match
     Metrics.summary (Obs.metrics obs)
       ~domain:(Kernel.kernel_domain k).Domain.id "invoke.dispatch"
   with
  | Some s ->
    Alcotest.(check bool) "dispatch samples" true (s.Metrics.count >= 5);
    Alcotest.(check bool) "latency ordering" true
      (s.Metrics.min <= s.Metrics.p50 && s.Metrics.p50 <= s.Metrics.max)
  | None -> Alcotest.fail "no invoke.dispatch histogram");
  Alcotest.(check bool) "event delivery histogram" true
    (Metrics.summary (Obs.metrics obs) ~domain:(Kernel.kernel_domain k).Domain.id
       "events.irq"
    <> None);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  (match Invoke.call uctx trace ~iface:"trace" ~meth:"snapshot" [ Value.Str "text" ] with
  | Ok (Value.Str text) ->
    Alcotest.(check bool) "snapshot crosses the domain boundary" true
      (String.length text > 0)
  | _ -> Alcotest.fail "snapshot");
  match Invoke.call uctx trace ~iface:"trace" ~meth:"stop" [] with
  | Ok Value.Unit -> Alcotest.(check bool) "stopped" false (Obs.enabled obs)
  | _ -> Alcotest.fail "stop"

let () =
  Alcotest.run "integration"
    [
      ( "placements",
        [
          Alcotest.test_case "packet flow everywhere" `Quick
            test_packet_flow_all_placements;
          Alcotest.test_case "interposed monitor" `Quick
            test_interposed_monitor_sees_everything;
          Alcotest.test_case "override isolates domains" `Quick
            test_namespace_override_isolates_domains;
        ] );
      ( "certification",
        [
          Alcotest.test_case "tampered component barred" `Quick
            test_tampered_component_cannot_enter_kernel;
          Alcotest.test_case "revocation" `Quick test_revoked_delegate_stops_admitting;
          Alcotest.test_case "unknown authority" `Quick test_unknown_authority_rejected;
          Alcotest.test_case "SPIN-as-delegate model" `Quick
            test_spin_model_trusted_compiler;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "rx ring overrun" `Quick
            test_rx_ring_overrun_drops_not_crashes;
          Alcotest.test_case "component crash contained" `Quick
            test_component_crash_contained;
        ] );
      ( "events",
        [
          Alcotest.test_case "blocking popup pipeline" `Quick
            test_interrupt_popup_blocking_pipeline;
          Alcotest.test_case "timer pipeline" `Quick test_timer_driven_preemption_signal;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "cross-domain tax" `Quick
            test_cross_domain_tax_visible_in_counters;
          Alcotest.test_case "sandbox tax scales" `Quick
            test_sandbox_tax_scales_with_packet_size;
        ] );
      ( "observability",
        [
          Alcotest.test_case "traced workload end to end" `Quick
            test_tracing_whole_workload;
        ] );
    ]
