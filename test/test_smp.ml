(* Tests for the SMP complex: per-CPU clocks, reconciliation, IPIs,
   work stealing across per-CPU schedulers, cross-CPU channel pricing
   and doorbell routing, and the journal's per-CPU provenance. *)

open Paramecium

let machine_fixture cpus =
  let machine = Machine.create () in
  (machine, Cpu.create machine ~cpus)

(* --- per-CPU clocks and reconciliation ---------------------------------- *)

let test_per_cpu_clocks () =
  let machine, cpx = machine_fixture 2 in
  Alcotest.(check int) "two cpus" 2 (Cpu.count cpx);
  let t0 = Cpu.now cpx 0 in
  Cpu.run_on cpx 1 (fun () -> Clock.advance (Machine.clock machine) 100);
  Alcotest.(check int) "cpu 0 untouched" t0 (Cpu.now cpx 0);
  Alcotest.(check int) "cpu 1 advanced" (t0 + 100) (Cpu.now cpx 1);
  Alcotest.(check int) "makespan is the max" (t0 + 100) (Cpu.makespan cpx);
  (* run_on restores the active clock *)
  Clock.advance (Machine.clock machine) 7;
  Alcotest.(check int) "back on cpu 0" (t0 + 7) (Cpu.now cpx 0)

let test_sync_forward_only () =
  let _, cpx = machine_fixture 2 in
  let t0 = Cpu.now cpx 1 in
  Cpu.sync_to cpx ~cpu:1 ~at:(t0 + 50);
  Alcotest.(check int) "reconciled forward" (t0 + 50) (Cpu.now cpx 1);
  Alcotest.(check int) "idle cycles accounted" 50 (Cpu.stats cpx 1).Cpu.synced;
  Cpu.sync_to cpx ~cpu:1 ~at:t0;
  Alcotest.(check int) "never backward" (t0 + 50) (Cpu.now cpx 1)

let test_one_complex_per_machine () =
  let machine, _ = machine_fixture 1 in
  match Cpu.create machine ~cpus:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "second complex on one machine must be rejected"

(* --- IPIs --------------------------------------------------------------- *)

let test_ipi_to_halted_cpu () =
  let machine, cpx = machine_fixture 2 in
  let hits = ref [] in
  Machine.set_trap_handler machine 5
    (Some
       (fun arg ->
         hits := (Cpu.current cpx, arg) :: !hits;
         arg));
  Cpu.halt cpx 1;
  Alcotest.(check bool) "halted" true (Cpu.halted cpx 1);
  Cpu.run_on cpx 0 (fun () ->
      Clock.advance (Machine.clock machine) 200;
      Cpu.ipi cpx ~cpu:1 5 7);
  Alcotest.(check (list (pair int int)))
    "trap ran once, on the target cpu" [ (1, 7) ] !hits;
  Alcotest.(check bool) "ipi woke the target" false (Cpu.halted cpx 1);
  (* the target reconciled to the send time, then paid the trap *)
  Alcotest.(check bool) "target caught up" true (Cpu.now cpx 1 > Cpu.now cpx 0);
  let s0 = Cpu.stats cpx 0 and s1 = Cpu.stats cpx 1 in
  Alcotest.(check int) "sender counted" 1 s0.Cpu.ipis_sent;
  Alcotest.(check int) "target counted" 1 s1.Cpu.ipis_recv;
  Alcotest.(check int) "sender paid the ipi"
    ((Machine.costs machine).Cost.ipi + 200)
    (Cpu.now cpx 0)

(* --- work stealing ------------------------------------------------------ *)

let smp_fixture cpus =
  let machine, cpx = machine_fixture cpus in
  let boot = Scheduler.create (Machine.clock machine) (Machine.costs machine) in
  (machine, cpx, Smp.create cpx ~boot (Machine.costs machine))

let test_steal_from_empty () =
  let _, cpx, smp = smp_fixture 2 in
  let t1 = Cpu.now cpx 1 in
  Alcotest.(check bool) "nothing to steal" false (Smp.try_steal smp ~thief:1);
  Alcotest.(check int) "an empty attempt is free" t1 (Cpu.now cpx 1);
  Alcotest.(check int) "attempt counted" 1 (Smp.stats smp `Steal_attempts);
  Alcotest.(check int) "no steal counted" 0 (Smp.stats smp `Steals)

let test_steal_spreads_load () =
  let _, cpx, smp = smp_fixture 2 in
  let where = ref [] in
  for i = 1 to 4 do
    ignore
      (Smp.spawn_on smp 0 ~name:(Printf.sprintf "w%d" i) (fun () ->
           for _ = 1 to 3 do
             where := Cpu.current cpx :: !where;
             Scheduler.yield ()
           done))
  done;
  let dispatches = Smp.run smp in
  Alcotest.(check bool) "work happened" true (dispatches > 0);
  Alcotest.(check bool) "cpu 1 stole something" true (Smp.stats smp `Steals > 0);
  Alcotest.(check bool) "stolen work ran on cpu 1" true (List.mem 1 !where);
  Alcotest.(check int) "all iterations ran" 12 (List.length !where);
  Alcotest.(check bool) "cpu 1 was charged" true (Cpu.now cpx 1 > 0)

(* A stolen thread is re-homed: a wakeup racing in after the steal must
   land on the thief's queue, not the victim's. *)
let test_steal_rehomes_wakeup () =
  let clock0 = Clock.create () in
  let clock1 = Clock.create () in
  let s0 = Scheduler.create clock0 Cost.unit_costs in
  let s1 = Scheduler.create clock1 Cost.unit_costs in
  let resumer = ref None in
  let log = ref [] in
  ignore
    (Scheduler.spawn s0 ~name:"wanderer" (fun () ->
         log := "start" :: !log;
         Scheduler.yield ();
         Scheduler.suspend (fun r -> resumer := Some r);
         log := "resumed" :: !log));
  ignore (Scheduler.run s0 ~budget:1 ());
  (* the yield parked it ready on s0; steal it over to s1 *)
  (match Scheduler.steal ~from:s0 ~into:s1 with
  | Some _ -> ()
  | None -> Alcotest.fail "ready entry was stealable");
  Alcotest.(check int) "victim emptied" 0 (Scheduler.ready_count s0);
  ignore (Scheduler.run s1 ~budget:1 ());
  (* now suspended on s1; the wakeup must follow the thread's new home *)
  (match !resumer with
  | Some r -> r.Scheduler.resume ()
  | None -> Alcotest.fail "thread suspended");
  Alcotest.(check int) "wakeup landed on the thief" 1 (Scheduler.ready_count s1);
  Alcotest.(check int) "not on the old home" 0 (Scheduler.ready_count s0);
  ignore (Scheduler.run s1 ());
  Alcotest.(check (list string)) "ran to completion on the thief"
    [ "start"; "resumed" ] (List.rev !log)

(* --- cross-CPU channel pricing and doorbell routing --------------------- *)

let sys_fixture () =
  let sys = System.create ~seed:0xBEEF ~cpus:2 () in
  let k = System.kernel sys in
  (sys, k, Kernel.kernel_domain k, Option.get (System.cpu sys))

let test_cacheline_pricing () =
  let sys, k, kdom, cpx = sys_fixture () in
  let udom = System.new_domain sys "far-consumer" in
  let machine = Kernel.machine k in
  let chan =
    Chan.create machine (Kernel.vmem k) ~name:"cl" ~slots:8 ~slot_size:64
      ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  Chan.set_mode chan Chan.Poll;
  let msg = Bytes.make 10 'x' in
  let delta f =
    let t0 = Clock.now (Machine.clock machine) in
    f ();
    Clock.now (Machine.clock machine) - t0
  in
  (* same machine, endpoints on the same CPU: pricing flag is inert *)
  Chan.set_cacheline_priced chan true;
  let send_same = delta (fun () -> ignore (Chan.try_send chan msg)) in
  let recv_same = delta (fun () -> ignore (Chan.try_recv chan)) in
  (* pin the endpoints apart: every message now pays the coherence
     fabric, on both sides, by the per-line model *)
  Cpu.pin cpx ~domain:udom.Domain.id ~cpu:1;
  Alcotest.(check bool) "ring is cross-cpu now" true (Chan.is_cross_cpu chan);
  let lines = Chan.lines_of_msg (Bytes.length msg) in
  let expect = lines * (Machine.costs machine).Cost.cacheline in
  let send_cross = delta (fun () -> ignore (Chan.try_send chan msg)) in
  let recv_cross = delta (fun () -> ignore (Chan.try_recv chan)) in
  Alcotest.(check int) "send pays the lines" (send_same + expect) send_cross;
  Alcotest.(check int) "recv pays the lines" (recv_same + expect) recv_cross;
  (* unpriced cross-CPU ring charges nothing — and is what the
     cross-cpu lint rule exists to flag *)
  Chan.set_cacheline_priced chan false;
  let send_unpriced = delta (fun () -> ignore (Chan.try_send chan msg)) in
  Alcotest.(check int) "unpriced ring is uncharged" send_same send_unpriced

let test_cross_cpu_doorbell_ipi () =
  let sys, k, kdom, cpx = sys_fixture () in
  let api = Kernel.api k in
  let smp = Option.get (System.smp sys) in
  let udom = System.new_domain sys "bell-far" in
  let chan =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"farbell" ~slots:8
      ~slot_size:16 ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  Chan.set_cacheline_priced chan true;
  Cpu.pin cpx ~domain:udom.Domain.id ~cpu:1;
  Cpu.halt cpx 1;
  let got = ref [] in
  let ran_on = ref (-1) in
  ignore
    (Chan.on_doorbell chan ~events:api.Api.events ~sched:(Smp.sched smp 1)
       (fun () ->
         ran_on := Cpu.current cpx;
         got := !got @ List.map Bytes.to_string (Chan.recv_batch chan ())));
  ignore (Chan.try_send chan (Bytes.of_string "ping"));
  Alcotest.(check (list string)) "consumer drained the ring" [ "ping" ] !got;
  Alcotest.(check int) "pop-up ran on the consumer's cpu" 1 !ran_on;
  Alcotest.(check bool) "the doorbell ipi woke cpu 1" false (Cpu.halted cpx 1);
  Alcotest.(check int) "routed as an ipi" 1 (Cpu.stats cpx 0).Cpu.ipis_sent;
  Alcotest.(check int) "received as an ipi" 1 (Cpu.stats cpx 1).Cpu.ipis_recv

let test_mpsc_cas_contention () =
  let sys, k, kdom, cpx = sys_fixture () in
  let machine = Kernel.machine k in
  let p2 = System.new_domain sys "producer-2" in
  let g =
    Mpsc.create machine (Kernel.vmem k) ~name:"contended" ~slots:8
      ~slot_size:16 ~mode:Chan.Poll ~consumer:kdom ()
  in
  let tx1 = Mpsc.attach g ~producer:kdom in
  let tx2 = Mpsc.attach g ~producer:p2 in
  Cpu.pin cpx ~domain:p2.Domain.id ~cpu:1;
  let msg = Bytes.make 4 'y' in
  let delta f =
    let t0 = Clock.now (Machine.clock machine) in
    f ();
    Clock.now (Machine.clock machine) - t0
  in
  (* tx2 idle: tx1's reserve is the uncontended flat cost *)
  let quiet = delta (fun () -> ignore (Mpsc.try_send tx1 msg)) in
  (* tx2 pending from another CPU: tx1's reserve retries the CAS once *)
  Cpu.run_on cpx 1 (fun () -> ignore (Mpsc.try_send tx2 msg));
  let contended = delta (fun () -> ignore (Mpsc.try_send tx1 msg)) in
  Alcotest.(check int) "one contender costs one cas"
    (quiet + (Machine.costs machine).Cost.cas)
    contended;
  Alcotest.(check bool) "retries counted" true
    (Clock.counter (Machine.clock machine) "mpsc_cas_retry" > 0)

(* --- journal provenance ------------------------------------------------- *)

let test_journal_cpu_roundtrip () =
  let j = Journal.create () in
  Journal.set_mode j Journal.Full;
  ignore (Journal.mark j ~domain:0 ~at:5 "boot-cpu");
  Journal.set_current_cpu 2;
  ignore (Journal.mark j ~domain:0 ~at:9 "far-cpu");
  Journal.set_current_cpu 0;
  let s = Journal.export j in
  let has_cpu_suffix line =
    let re = " cpu=" in
    let n = String.length re in
    let rec scan i =
      i + n <= String.length line
      && (String.equal (String.sub line i n) re || scan (i + 1))
    in
    scan 0
  in
  let lines =
    List.filter
      (fun l -> String.length l > 0 && l.[0] <> '#')
      (String.split_on_char '\n' s)
  in
  (* only the far-cpu event carries the suffix: cpu 0 lines export
     exactly as before the field existed *)
  Alcotest.(check int) "one line has the cpu suffix" 1
    (List.length (List.filter has_cpu_suffix lines));
  (match Journal.import s with
  | Error e -> Alcotest.fail e
  | Ok evs ->
    Alcotest.(check (list int))
      "cpu ids survive the round-trip" [ 0; 2 ]
      (List.map (fun (e : Journal.event) -> e.Journal.cpu) evs);
    (* a second export of the imported stream is byte-identical *)
    let j2 = Journal.create () in
    Journal.set_mode j2 Journal.Full;
    List.iter
      (fun (e : Journal.event) ->
        Journal.set_current_cpu e.Journal.cpu;
        Journal.record j2 ~kind:e.Journal.kind ~domain:e.Journal.domain
          ~at:e.Journal.at ~info:e.Journal.info ~detail:e.Journal.detail)
      evs;
    Journal.set_current_cpu 0)

(* --- the placement agent's CPU dimension -------------------------------- *)

let test_placer_repins () =
  let sys, _, _, cpx = sys_fixture () in
  let clock = System.clock sys in
  let costs = Machine.costs (Kernel.machine (System.kernel sys)) in
  let udom = System.new_domain sys "hot" in
  let placer = Placer.create ~clock ~costs () in
  let c0 = ref 0 and c1 = ref 0 in
  Placer.manage_cpu placer ~complex:cpx ~domain:udom.Domain.id
    ~loads:(fun () -> [ (0, !c0); (1, !c1) ])
    ~move_cost:1 ();
  Alcotest.(check int) "starts on cpu 0" 0 (Cpu.cpu_of cpx ~domain:udom.Domain.id);
  (* two epochs of cpu 0 out-running cpu 1 by the whole epoch: the
     default confirm streak is 2, so the first confirms, the second
     re-pins *)
  Clock.advance clock 100;
  c0 := !c0 + 100;
  Alcotest.(check int) "first epoch holds" 0
    (List.length
       (List.filter (function Placer.Repinned _ -> true | _ -> false)
          (Placer.epoch placer)));
  Clock.advance clock 100;
  c0 := !c0 + 100;
  (match
     List.filter (function Placer.Repinned _ -> true | _ -> false)
       (Placer.epoch placer)
   with
  | [ Placer.Repinned 1 ] -> ()
  | _ -> Alcotest.fail "second epoch must re-pin to cpu 1");
  Alcotest.(check int) "pinned to the idle cpu" 1
    (Cpu.cpu_of cpx ~domain:udom.Domain.id);
  Alcotest.(check int) "move counted" 1 (Placer.cpu_moves placer);
  Alcotest.(check bool) "imbalance observed" true
    (Placer.cpu_imbalance placer > 0.)

let test_placer_payback_defers () =
  let sys, _, _, cpx = sys_fixture () in
  let clock = System.clock sys in
  let costs = Machine.costs (Kernel.machine (System.kernel sys)) in
  let udom = System.new_domain sys "lukewarm" in
  let placer = Placer.create ~clock ~costs () in
  let c0 = ref 0 and c1 = ref 0 in
  (* an exorbitant re-pin cost: the horizon can never cover it *)
  Placer.manage_cpu placer ~complex:cpx ~domain:udom.Domain.id
    ~loads:(fun () -> [ (0, !c0); (1, !c1) ])
    ~move_cost:1_000_000 ();
  for _ = 1 to 4 do
    Clock.advance clock 100;
    c0 := !c0 + 100;
    ignore (Placer.epoch placer)
  done;
  Alcotest.(check int) "never moved" 0 (Placer.cpu_moves placer);
  Alcotest.(check int) "still on cpu 0" 0 (Cpu.cpu_of cpx ~domain:udom.Domain.id);
  Alcotest.(check bool) "defers counted" true (Placer.cpu_deferrals placer > 0)

(* --- 1-CPU byte-identity ------------------------------------------------ *)

let test_uniprocessor_unchanged () =
  (* a 1-CPU complex must not perturb the clock: same ops as a machine
     with no complex at all, cycle for cycle *)
  let run with_complex =
    let sys = System.create ~seed:0xBEEF () in
    let k = System.kernel sys in
    if with_complex then ignore (Cpu.create (Kernel.machine k) ~cpus:1);
    let kdom = Kernel.kernel_domain k in
    let udom = System.new_domain sys "mirror" in
    let chan =
      Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"mirror"
        ~slots:8 ~slot_size:16 ~producer:kdom ()
    in
    ignore (Chan.accept chan ~into:udom);
    for i = 1 to 5 do
      ignore (Chan.try_send chan (Bytes.of_string (string_of_int i)))
    done;
    ignore (Chan.recv_batch chan ());
    Clock.now (System.clock sys)
  in
  Alcotest.(check int) "1-cpu run is cycle-identical to no complex"
    (run false) (run true)

let () =
  Alcotest.run "smp"
    [
      ( "complex",
        [
          Alcotest.test_case "per-cpu clocks" `Quick test_per_cpu_clocks;
          Alcotest.test_case "sync forward only" `Quick test_sync_forward_only;
          Alcotest.test_case "one complex per machine" `Quick
            test_one_complex_per_machine;
          Alcotest.test_case "ipi to halted cpu" `Quick test_ipi_to_halted_cpu;
        ] );
      ( "stealing",
        [
          Alcotest.test_case "steal from empty" `Quick test_steal_from_empty;
          Alcotest.test_case "steal spreads load" `Quick test_steal_spreads_load;
          Alcotest.test_case "steal re-homes wakeups" `Quick
            test_steal_rehomes_wakeup;
        ] );
      ( "channels",
        [
          Alcotest.test_case "cache-line pricing" `Quick test_cacheline_pricing;
          Alcotest.test_case "cross-cpu doorbell is an ipi" `Quick
            test_cross_cpu_doorbell_ipi;
          Alcotest.test_case "mpsc cas contention" `Quick
            test_mpsc_cas_contention;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "journal cpu round-trip" `Quick
            test_journal_cpu_roundtrip;
        ] );
      ( "placer",
        [
          Alcotest.test_case "re-pins to the idle cpu" `Quick test_placer_repins;
          Alcotest.test_case "payback defers" `Quick test_placer_payback_defers;
        ] );
      ( "identity",
        [
          Alcotest.test_case "uniprocessor unchanged" `Quick
            test_uniprocessor_unchanged;
        ] );
    ]
