(* Tests for the downloaded-code substrate: the bytecode VM, the SFI
   rewriter, the trusted filter compiler, and the stack's filter hook. *)

open Paramecium

let ctx_fixture () =
  let clock = Clock.create () in
  (clock, Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0)

let run_prog ?(pkt = Bytes.make 16 '\000') prog =
  let _, ctx = ctx_fixture () in
  Vm.run ctx ~mem:(Vm.mem_of_bytes pkt) prog

let check_returned what expect outcome =
  match outcome with
  | Vm.Returned v -> Alcotest.(check int) what expect v
  | Vm.Wild_access o -> Alcotest.failf "%s: wild access at %d" what o
  | Vm.Vm_fault m -> Alcotest.failf "%s: fault %s" what m

(* --- ISA semantics ----------------------------------------------------- *)

let test_vm_arith () =
  check_returned "const/add" 12
    (run_prog [| Vm.Const (2, 5); Vm.Const (3, 7); Vm.Add (2, 2, 3); Vm.Ret 2 |]);
  check_returned "sub" 3
    (run_prog [| Vm.Const (2, 10); Vm.Const (3, 7); Vm.Sub (2, 2, 3); Vm.Ret 2 |]);
  check_returned "mul" 35
    (run_prog [| Vm.Const (2, 5); Vm.Const (3, 7); Vm.Mul (2, 2, 3); Vm.Ret 2 |]);
  check_returned "div" 4
    (run_prog [| Vm.Const (2, 9); Vm.Const (3, 2); Vm.Div (2, 2, 3); Vm.Ret 2 |]);
  check_returned "and/or/xor" 6
    (run_prog
       [| Vm.Const (2, 12); Vm.Const (3, 10); Vm.Xor (2, 2, 3); Vm.Ret 2 |]);
  check_returned "shl" 40 (run_prog [| Vm.Const (2, 5); Vm.Shl (2, 2, 3); Vm.Ret 2 |]);
  check_returned "shr" 5 (run_prog [| Vm.Const (2, 40); Vm.Shr (2, 2, 3); Vm.Ret 2 |]);
  check_returned "mov" 9 (run_prog [| Vm.Const (4, 9); Vm.Mov (2, 4); Vm.Ret 2 |])

let test_vm_conventions () =
  (* r0 = 0, r1 = window length on entry *)
  check_returned "r0 is zero" 0 (run_prog [| Vm.Ret 0 |]);
  check_returned "r1 is length" 16 (run_prog [| Vm.Ret 1 |])

let test_vm_memory () =
  let pkt = Bytes.of_string "paramecium-frame" in
  check_returned "load" (Char.code 'r')
    (run_prog ~pkt [| Vm.Const (2, 2); Vm.Load8 (3, 2, 0); Vm.Ret 3 |]);
  check_returned "load with displacement" (Char.code 'm')
    (run_prog ~pkt [| Vm.Const (2, 2); Vm.Load8 (3, 2, 2); Vm.Ret 3 |]);
  (* store then load back *)
  check_returned "store/load" 0x5A
    (run_prog ~pkt
       [| Vm.Const (2, 0x5A); Vm.Const (3, 4); Vm.Store8 (2, 3, 0);
          Vm.Load8 (4, 3, 0); Vm.Ret 4 |])

let test_vm_control_flow () =
  (* loop: sum bytes 0..len-1 of the window *)
  let pkt = Bytes.init 8 (fun i -> Char.chr (i + 1)) in
  let sum_loop =
    [|
      Vm.Const (2, 0) (* acc *); Vm.Const (3, 0) (* i *);
      Vm.Jlt (3, 1, 4) (* while i < len *); Vm.Ret 2; Vm.Load8 (4, 3, 0);
      Vm.Add (2, 2, 4); Vm.Const (5, 1); Vm.Add (3, 3, 5); Vm.Jmp 2;
    |]
  in
  check_returned "summing loop" 36 (run_prog ~pkt sum_loop);
  check_returned "jz taken" 1
    (run_prog [| Vm.Const (2, 0); Vm.Jz (2, 3); Vm.Ret 0; Vm.Const (2, 1); Vm.Ret 2 |]);
  check_returned "jnz not taken" 0
    (run_prog [| Vm.Const (2, 0); Vm.Jnz (2, 3); Vm.Ret 2; Vm.Const (2, 1); Vm.Ret 2 |])

let test_vm_faults () =
  let _, ctx = ctx_fixture () in
  let mem = Vm.mem_of_bytes (Bytes.create 8) in
  (match Vm.run ctx ~mem [| Vm.Const (2, 1); Vm.Const (3, 0); Vm.Div (2, 2, 3); Vm.Ret 2 |] with
  | Vm.Vm_fault "division by zero" -> ()
  | _ -> Alcotest.fail "div0");
  (match Vm.run ctx ~mem [| Vm.Jmp 99 |] with
  | Vm.Vm_fault _ -> ()
  | _ -> Alcotest.fail "bad jump");
  (match Vm.run ctx ~mem [| Vm.Const (2, 0) |] with
  | Vm.Vm_fault _ -> ()
  | _ -> Alcotest.fail "fell off the end");
  (match Vm.run ctx ~mem ~fuel:5 [| Vm.Jmp 0 |] with
  | Vm.Vm_fault "out of fuel" -> ()
  | _ -> Alcotest.fail "fuel");
  (match Vm.run ctx ~mem [||] with
  | Vm.Vm_fault "empty program" -> ()
  | _ -> Alcotest.fail "empty")

let test_vm_wild_access_detected () =
  let clock, ctx = ctx_fixture () in
  let mem = Vm.mem_of_bytes (Bytes.create 8) in
  (match Vm.run ctx ~mem [| Vm.Const (2, 100); Vm.Load8 (3, 2, 0); Vm.Ret 3 |] with
  | Vm.Wild_access 100 -> ()
  | _ -> Alcotest.fail "positive escape");
  (match Vm.run ctx ~mem [| Vm.Const (2, -1); Vm.Load8 (3, 2, 0); Vm.Ret 3 |] with
  | Vm.Wild_access (-1) -> ()
  | _ -> Alcotest.fail "negative escape");
  Alcotest.(check int) "counted" 2 (Clock.counter clock "vm_wild_access")

let test_vm_charges () =
  let clock, ctx = ctx_fixture () in
  let mem = Vm.mem_of_bytes (Bytes.create 8) in
  let before = Clock.now clock in
  ignore (Vm.run ctx ~mem [| Vm.Const (2, 0); Vm.Load8 (3, 2, 0); Vm.Ret 3 |]);
  (* 3 instructions + 1 access (unit costs: 1 each) *)
  Alcotest.(check int) "cycles" 4 (Clock.now clock - before)

(* --- encode/decode ------------------------------------------------------- *)

let test_codec_errors () =
  (match Vm.decode "abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad length");
  let bad_op = String.make 8 '\255' in
  (match Vm.decode bad_op with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad opcode/register")

let gen_instr =
  QCheck2.Gen.(
    let reg = int_bound 7 in
    let imm = int_range (-1000) 1000 in
    oneof
      [
        map2 (fun r i -> Vm.Const (r, i)) reg imm;
        map2 (fun a b -> Vm.Mov (a, b)) reg reg;
        map3 (fun a b c -> Vm.Add (a, b, c)) reg reg reg;
        map3 (fun a b c -> Vm.Sub (a, b, c)) reg reg reg;
        map3 (fun a b c -> Vm.Load8 (a, b, c)) reg reg (int_bound 64);
        map3 (fun a b c -> Vm.Store8 (a, b, c)) reg reg (int_bound 64);
        map (fun t -> Vm.Jmp t) (int_bound 30);
        map2 (fun r t -> Vm.Jz (r, t)) reg (int_bound 30);
        map3 (fun a b t -> Vm.Jlt (a, b, t)) reg reg (int_bound 30);
        map (fun r -> Vm.Ret r) reg;
      ])

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let codec_prop =
  prop "encode/decode round trip"
    QCheck2.Gen.(map Array.of_list (list_size (int_range 1 40) gen_instr))
    (fun program ->
      match Vm.decode (Vm.encode program) with
      | Ok p -> p = program
      | Error _ -> false)

(* --- filterc ---------------------------------------------------------------- *)

(* reference interpreter for the filter language; [idx] is the enclosing
   sum's index, if any *)
let rec eval_ref ?idx pkt e =
  let len = Bytes.length pkt in
  let byte i = if i >= 0 && i < len then Char.code (Bytes.get pkt i) else 0 in
  let b2i b = if b then 1 else 0 in
  match e with
  | Filterc.Lit n -> n
  | Filterc.Len -> len
  | Filterc.Idx -> (
    match idx with Some i -> i | None -> Alcotest.fail "eval_ref: idx outside sum")
  | Filterc.For (lo, hi, body) ->
    let lo = eval_ref ?idx pkt lo and hi = eval_ref ?idx pkt hi in
    let acc = ref 0 in
    for i = lo to hi - 1 do
      acc := !acc + eval_ref ~idx:i pkt body
    done;
    !acc
  | Filterc.Byte ie -> byte (eval_ref ?idx pkt ie)
  | Filterc.Word16 ie ->
    let i = eval_ref ?idx pkt ie in
    (byte i * 256) + byte (i + 1)
  | Filterc.Bin (op, l, r) ->
    let a = eval_ref ?idx pkt l and b = eval_ref ?idx pkt r in
    (match op with
    | Filterc.Add -> a + b
    | Filterc.Sub -> a - b
    | Filterc.Mul -> a * b
    | Filterc.Band -> a land b
    | Filterc.Bxor -> a lxor b
    | Filterc.Eq -> b2i (a = b)
    | Filterc.Ne -> b2i (a <> b)
    | Filterc.Lt -> b2i (a < b)
    | Filterc.Le -> b2i (a <= b)
    | Filterc.Gt -> b2i (a > b)
    | Filterc.Ge -> b2i (a >= b)
    | Filterc.Andalso -> b2i (a <> 0 && b <> 0)
    | Filterc.Orelse -> b2i (a <> 0 || b <> 0))
  | Filterc.If (c, t, e) ->
    if eval_ref ?idx pkt c <> 0 then eval_ref ?idx pkt t else eval_ref ?idx pkt e

let compile_exn e =
  match Filterc.compile e with Ok p -> p | Error m -> Alcotest.fail m

let test_filterc_basics () =
  let pkt = Bytes.of_string "\x08\x00\x45\x11\x00\x40" in
  let checks =
    [
      ("byte", Filterc.Byte (Filterc.Lit 2), 0x45);
      ("word", Filterc.Word16 (Filterc.Lit 0), 0x800);
      ("len", Filterc.Len, 6);
      ("oob byte is 0", Filterc.Byte (Filterc.Lit 99), 0);
      ("negative index is 0", Filterc.Byte (Filterc.Lit (-3)), 0);
      ( "arith",
        Filterc.Bin (Filterc.Add, Filterc.Lit 40, Filterc.Bin (Filterc.Mul, Filterc.Lit 2, Filterc.Lit 1)),
        42 );
      ( "comparison",
        Filterc.Bin (Filterc.Lt, Filterc.Byte (Filterc.Lit 2), Filterc.Lit 0x50),
        1 );
      ( "if",
        Filterc.If (Filterc.Lit 0, Filterc.Lit 7, Filterc.Lit 9),
        9 );
      ( "sum of all bytes",
        Filterc.For (Filterc.Lit 0, Filterc.Len, Filterc.Byte Filterc.Idx),
        158 );
      ( "sum of indices",
        Filterc.For (Filterc.Lit 1, Filterc.Lit 4, Filterc.Idx),
        6 );
      ("empty sum", Filterc.For (Filterc.Lit 3, Filterc.Lit 3, Filterc.Lit 5), 0);
      ( "sum hi below lo",
        Filterc.For (Filterc.Lit 9, Filterc.Lit 2, Filterc.Lit 1),
        0 );
    ]
  in
  List.iter
    (fun (what, e, expect) -> check_returned what expect (run_prog ~pkt (compile_exn e)))
    checks

let test_filterc_parser () =
  let cases =
    [
      ("byte[12] == 8", true);
      ("word[12] == 2048 && byte[23] == 17", true);
      ("len > 64 || byte[0] != 0", true);
      ("(1 + 2) * 3 == 9", true);
      ("byte[12", false);
      ("foo[1]", false);
      ("1 ==", false);
      ("", false);
      ("1 2", false);
      ("sum[0 .. len](byte[idx]) == 158", true);
      ("sum[2 .. 9](idx) > 3", true);
      ("sum[0 len](idx)", false);
      ("sum[0 .. len](idx", false);
      ("sum[.. len](idx)", false);
    ]
  in
  List.iter
    (fun (src, ok) ->
      match Filterc.parse src with
      | Ok _ when ok -> ()
      | Error _ when not ok -> ()
      | Ok _ -> Alcotest.failf "should reject %S" src
      | Error e -> Alcotest.failf "should parse %S: %s" src e)
    cases

let test_filterc_too_deep () =
  let rec nest n = if n = 0 then Filterc.Lit 1 else Filterc.Bin (Filterc.Add, Filterc.Lit 1, nest (n - 1)) in
  (match Filterc.compile (nest 10) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deep nesting must be rejected")

let test_filterc_loop_misuse () =
  let expect_err what e =
    match Filterc.compile e with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s must be rejected" what
  in
  expect_err "idx outside a sum" Filterc.Idx;
  expect_err "nested sums"
    (Filterc.For
       ( Filterc.Lit 0,
         Filterc.Len,
         Filterc.For (Filterc.Lit 0, Filterc.Lit 3, Filterc.Idx) ));
  expect_err "sum below the top of an expression"
    (Filterc.Bin
       ( Filterc.Add,
         Filterc.Lit 1,
         Filterc.For (Filterc.Lit 0, Filterc.Len, Filterc.Idx) ))

let test_filterc_avoids_reserved_regs () =
  (* every compiled program must be SFI-rewritable *)
  let e =
    Filterc.Bin
      ( Filterc.Andalso,
        Filterc.Bin (Filterc.Eq, Filterc.Word16 (Filterc.Lit 4), Filterc.Lit 136),
        Filterc.Bin (Filterc.Lt, Filterc.Byte (Filterc.Lit 10), Filterc.Lit 50) )
  in
  (match Sfi_rewrite.rewrite (compile_exn e) ~window_size:2048 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m)

let gen_filter_expr =
  let open QCheck2.Gen in
  let base =
    oneof
      [ map (fun n -> Filterc.Lit n) (int_bound 300); return Filterc.Len;
        map (fun i -> Filterc.Byte (Filterc.Lit i)) (int_range (-4) 40) ]
  in
  let op =
    oneofl
      [ Filterc.Add; Filterc.Sub; Filterc.Mul; Filterc.Band; Filterc.Bxor;
        Filterc.Eq; Filterc.Ne; Filterc.Lt; Filterc.Le; Filterc.Gt; Filterc.Ge;
        Filterc.Andalso; Filterc.Orelse ]
  in
  (* depth-2 expressions stay within the compiler's register stack even
     after Andalso/Orelse desugaring *)
  let level1 = oneof [ base; map3 (fun o a b -> Filterc.Bin (o, a, b)) op base base ] in
  oneof
    [
      level1;
      map3 (fun o a b -> Filterc.Bin (o, a, b)) op level1 base;
      map3 (fun c t e -> Filterc.If (c, t, e)) base level1 level1;
    ]

let filterc_semantics_prop =
  prop "compiled filters agree with the reference interpreter"
    QCheck2.Gen.(pair gen_filter_expr (string_size (int_range 0 48)))
    (fun (e, pkt_str) ->
      let pkt = Bytes.of_string pkt_str in
      match Filterc.compile e with
      | Error _ -> true (* too deep: fine *)
      | Ok program ->
        (match run_prog ~pkt program with
        | Vm.Returned v -> v = eval_ref pkt e
        | Vm.Wild_access _ -> false (* compiled code must never escape *)
        | Vm.Vm_fault _ -> false))

(* loop-bearing filters: the sum construct against the same reference
   interpreter — bounds from the leaf pool, bodies leaves in r5 *)
let gen_loop_filter_expr =
  let open QCheck2.Gen in
  let bound =
    oneof
      [ map (fun n -> Filterc.Lit n) (int_bound 60); return Filterc.Len;
        map (fun i -> Filterc.Byte (Filterc.Lit i)) (int_range (-4) 40) ]
  in
  let body =
    oneof
      [ return (Filterc.Byte Filterc.Idx); return Filterc.Idx;
        map (fun n -> Filterc.Lit n) (int_bound 9);
        map (fun i -> Filterc.Byte (Filterc.Lit i)) (int_range 0 40);
        return Filterc.Len ]
  in
  let loop = map3 (fun lo hi b -> Filterc.For (lo, hi, b)) bound bound body in
  let op =
    oneofl
      [ Filterc.Add; Filterc.Band; Filterc.Eq; Filterc.Ne; Filterc.Lt; Filterc.Ge ]
  in
  oneof [ loop; map3 (fun o l r -> Filterc.Bin (o, l, r)) op loop bound ]

let loop_semantics_prop =
  prop "compiled sum loops agree with the reference interpreter"
    QCheck2.Gen.(pair gen_loop_filter_expr (string_size (int_range 0 48)))
    (fun (e, pkt_str) ->
      let pkt = Bytes.of_string pkt_str in
      match Filterc.compile e with
      | Error _ -> false (* leaf-bodied outermost sums always compile *)
      | Ok program ->
        (match run_prog ~pkt program with
        | Vm.Returned v -> v = eval_ref pkt e
        | Vm.Wild_access _ -> false
        | Vm.Vm_fault _ -> false))

let sfi_preserves_semantics_prop =
  prop "SFI rewriting preserves compiled-filter behaviour"
    QCheck2.Gen.(pair gen_filter_expr (string_size (int_range 0 32)))
    (fun (e, pkt_str) ->
      match Filterc.compile e with
      | Error _ -> true
      | Ok program ->
        let padded = Sfi_rewrite.padded_size (max 1 (String.length pkt_str)) in
        let pkt1 = Bytes.make padded '\000' in
        Bytes.blit_string pkt_str 0 pkt1 0 (String.length pkt_str);
        let pkt2 = Bytes.copy pkt1 in
        (match Sfi_rewrite.rewrite program ~window_size:padded with
        | Error _ -> false
        | Ok sandboxed ->
          run_prog ~pkt:pkt1 program = run_prog ~pkt:pkt2 sandboxed))

let sfi_preserves_loops_prop =
  prop "SFI rewriting preserves sum-loop behaviour"
    QCheck2.Gen.(pair gen_loop_filter_expr (string_size (int_range 0 32)))
    (fun (e, pkt_str) ->
      match Filterc.compile e with
      | Error _ -> false
      | Ok program ->
        let padded = Sfi_rewrite.padded_size (max 1 (String.length pkt_str)) in
        let pkt1 = Bytes.make padded '\000' in
        Bytes.blit_string pkt_str 0 pkt1 0 (String.length pkt_str);
        let pkt2 = Bytes.copy pkt1 in
        (match Sfi_rewrite.rewrite program ~window_size:padded with
        | Error _ -> false
        | Ok sandboxed ->
          run_prog ~pkt:pkt1 program = run_prog ~pkt:pkt2 sandboxed))

let sfi_containment_prop =
  prop "SFI-rewritten programs never escape the window"
    QCheck2.Gen.(map Array.of_list (list_size (int_range 1 25) gen_instr))
    (fun program ->
      if Array.exists
           (fun i ->
             match i with
             | Vm.Const (r, _) | Vm.Mov (r, _) | Vm.Jz (r, _) | Vm.Jnz (r, _)
             | Vm.Ret r ->
               r >= 6
             | Vm.Add (a, b, c) | Vm.Sub (a, b, c) | Vm.Load8 (a, b, c)
             | Vm.Store8 (a, b, c) ->
               a >= 6 || b >= 6 || c >= 6 && false
             | Vm.Jlt (a, b, _) -> a >= 6 || b >= 6
             | _ -> false)
           program
      then true (* rewriter rejects these; covered by unit test *)
      else begin
        match Sfi_rewrite.rewrite program ~window_size:64 with
        | Error _ -> true
        | Ok sandboxed ->
          (match run_prog ~pkt:(Bytes.create 64) sandboxed with
          | Vm.Wild_access _ -> false
          | Vm.Returned _ | Vm.Vm_fault _ -> true)
      end)

let test_sfi_rejections () =
  (match Sfi_rewrite.rewrite [| Vm.Const (6, 1); Vm.Ret 6 |] ~window_size:64 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reserved register must be rejected");
  (match Sfi_rewrite.rewrite [| Vm.Ret 0 |] ~window_size:63 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-power-of-two window must be rejected");
  Alcotest.(check int) "padded_size" 64 (Sfi_rewrite.padded_size 33);
  Alcotest.(check int) "padded_size exact" 32 (Sfi_rewrite.padded_size 32);
  Alcotest.(check int) "padded_size zero" 1 (Sfi_rewrite.padded_size 0)

let rewrite_exn p ~window_size =
  match Sfi_rewrite.rewrite p ~window_size with Ok p -> p | Error e -> failwith e

let test_sfi_jump_remap_across_masks () =
  (* two expanded accesses sit between the jump and its target: the
     remap must account for both inserted mask sequences *)
  let program =
    [|
      Vm.Const (2, 1);
      Vm.Jnz (2, 5) (* over both loads *);
      Vm.Load8 (3, 0, 0);
      Vm.Load8 (3, 0, 1);
      Vm.Ret 3;
      Vm.Const (4, 9);
      Vm.Ret 4;
    |]
  in
  let rewritten = rewrite_exn program ~window_size:16 in
  check_returned "raw" 9 (run_prog program);
  check_returned "rewritten follows the remapped jump" 9 (run_prog rewritten)

let test_sfi_window_boundaries () =
  let pkt () =
    let b = Bytes.make 16 '\000' in
    Bytes.set b 0 'A';
    Bytes.set b 15 'Z';
    b
  in
  let first = [| Vm.Load8 (3, 0, 0); Vm.Ret 3 |] in
  let last = [| Vm.Const (2, 15); Vm.Load8 (3, 2, 0); Vm.Ret 3 |] in
  let past = [| Vm.Const (2, 16); Vm.Load8 (3, 2, 0); Vm.Ret 3 |] in
  check_returned "first byte under masking" (Char.code 'A')
    (run_prog ~pkt:(pkt ()) (rewrite_exn first ~window_size:16));
  check_returned "last byte under masking" (Char.code 'Z')
    (run_prog ~pkt:(pkt ()) (rewrite_exn last ~window_size:16));
  (* one past the end: the raw program escapes; the mask wraps the
     address back to offset 0 — contained, by construction *)
  (match run_prog ~pkt:(pkt ()) past with
  | Vm.Wild_access 16 -> ()
  | _ -> Alcotest.fail "raw access at 16 must escape");
  check_returned "one-past-the-end wraps inside" (Char.code 'A')
    (run_prog ~pkt:(pkt ()) (rewrite_exn past ~window_size:16))

let test_sfi_out_of_range_jump_stays_out () =
  (* regression: [Jmp 5] in a 3-instruction program faults when run raw.
     The rewrite grows the program to 7 instructions, so leaving the
     target unmapped would turn it into a valid index mid-mask-sequence
     and silently un-fault the program *)
  let program = [| Vm.Store8 (0, 0, 0); Vm.Jmp 5; Vm.Ret 0 |] in
  let rewritten = rewrite_exn program ~window_size:16 in
  (match run_prog program with
  | Vm.Vm_fault "jump out of program" -> ()
  | _ -> Alcotest.fail "raw out-of-range jump must fault");
  match run_prog rewritten with
  | Vm.Vm_fault "jump out of program" -> ()
  | Vm.Returned v -> Alcotest.failf "rewritten program silently returned %d" v
  | _ -> Alcotest.fail "rewritten out-of-range jump must fault identically"

(* --- stack filter hook --------------------------------------------------------- *)

let make_packet ctx ~dst ~dport payload =
  let tp = Wire.Transport.build ctx ~sport:9 ~dport (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src:13 ~dst ~ttl:8 ~proto:Stack.proto_transport tp in
  Wire.Frame.build ctx ~dst ~src:13 np

let filter_fixture () =
  let sys = System.create ~key_bits:384 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let ctx = Kernel.ctx k kdom in
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"bind_port"
       [ Value.Int 7 ]);
  (k, kdom, ctx, net)

let stack_stats ctx net =
  match Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"stats" [] with
  | Value.List [ Value.Int ok; Value.Int dropped; Value.Int tx; Value.Int filtered ] ->
    (ok, dropped, tx, filtered)
  | v -> Alcotest.failf "stats: %s" (Value.to_string v)

(* the transport destination port lives at frame offset 18 (frame 6 +
   net 10 + transport sport 2), high byte first *)
let dport_filter = "byte[19] == 7 && byte[18] == 0"

let test_stack_filter_drops () =
  let k, _, ctx, net = filter_fixture () in
  let code =
    match Filterc.compile_string dport_filter with
    | Ok p -> Vm.encode p
    | Error e -> Alcotest.fail e
  in
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string code); Value.Bool false ]);
  (* one packet to port 7 (kept), one to port 9 (filtered out) *)
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:7 "yes"));
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:9 "no"));
  Kernel.step k ~ticks:4 ();
  let ok, _, _, filtered = stack_stats ctx net in
  Alcotest.(check int) "accepted" 1 ok;
  Alcotest.(check int) "filtered" 1 filtered;
  (* clearing restores everything (port 9 is unbound -> dropped, not filtered) *)
  ignore (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"clear_filter" []);
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:9 "no"));
  Kernel.step k ~ticks:2 ();
  let _, dropped, _, filtered' = stack_stats ctx net in
  Alcotest.(check int) "no longer filtered" filtered filtered';
  Alcotest.(check bool) "dropped as unbound instead" true (dropped >= 1)

let test_stack_filter_sandboxed_equivalent_but_dearer () =
  let run sandboxed =
    let k, _, ctx, net = filter_fixture () in
    let code =
      match Filterc.compile_string dport_filter with
      | Ok p -> Vm.encode p
      | Error e -> Alcotest.fail e
    in
    ignore
      (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
         [ Value.Blob (Bytes.of_string code); Value.Bool sandboxed ]);
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for _ = 1 to 10 do
      Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:7 "x"));
      Kernel.step k ~ticks:1 ()
    done;
    Kernel.step k ~ticks:2 ();
    let ok, _, _, filtered = stack_stats ctx net in
    Alcotest.(check int) "all accepted" 10 ok;
    Alcotest.(check int) "none filtered" 0 filtered;
    Clock.now clock - before
  in
  let raw = run false in
  let sandboxed = run true in
  Alcotest.(check bool)
    (Printf.sprintf "sandboxed dearer (raw=%d sfi=%d)" raw sandboxed)
    true (sandboxed > raw)

let test_stack_filter_malicious_contained () =
  let k, _, ctx, net = filter_fixture () in
  (* hand-written hostile bytecode: tries to read far outside the packet *)
  let evil = [| Vm.Const (2, 1_000_000); Vm.Load8 (3, 2, 0); Vm.Ret 3 |] in
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string (Vm.encode evil)); Value.Bool false ]);
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:7 "x"));
  Kernel.step k ~ticks:2 ();
  Alcotest.(check int) "wild access recorded" 1
    (Clock.counter (Kernel.clock k) "vm_wild_access");
  (* the same code sandboxed is harmless (and reads zero padding) *)
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string (Vm.encode evil)); Value.Bool true ]);
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:7 "x"));
  Kernel.step k ~ticks:2 ();
  Alcotest.(check int) "no further wild access" 1
    (Clock.counter (Kernel.clock k) "vm_wild_access")

let test_stack_filter_rejects_garbage () =
  let _, _, ctx, net = filter_fixture () in
  (match
     Invoke.call ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string "not bytecode!!"); Value.Bool false ]
   with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "garbage object code must be refused")

(* totality fuzz: arbitrary bytes either fail to decode or run to a
   clean outcome — the host never sees an exception *)
let vm_totality_prop =
  prop "decode+run of random bytes never raises"
    QCheck2.Gen.(string_size (int_range 0 256))
    (fun junk ->
      match Vm.decode junk with
      | Error _ -> true
      | Ok program ->
        let _, ctx = ctx_fixture () in
        (match Vm.run ctx ~mem:(Vm.mem_of_bytes (Bytes.create 32)) ~fuel:500 program with
        | Vm.Returned _ | Vm.Wild_access _ | Vm.Vm_fault _ -> true))

let () =
  Alcotest.run "vm"
    [
      ( "isa",
        [
          Alcotest.test_case "arithmetic" `Quick test_vm_arith;
          Alcotest.test_case "conventions" `Quick test_vm_conventions;
          Alcotest.test_case "memory" `Quick test_vm_memory;
          Alcotest.test_case "control flow" `Quick test_vm_control_flow;
          Alcotest.test_case "faults" `Quick test_vm_faults;
          Alcotest.test_case "wild access" `Quick test_vm_wild_access_detected;
          Alcotest.test_case "cycle charging" `Quick test_vm_charges;
        ] );
      ( "codec",
        [ Alcotest.test_case "errors" `Quick test_codec_errors; codec_prop;
          vm_totality_prop ] );
      ( "filterc",
        [
          Alcotest.test_case "basics" `Quick test_filterc_basics;
          Alcotest.test_case "parser" `Quick test_filterc_parser;
          Alcotest.test_case "too deep" `Quick test_filterc_too_deep;
          Alcotest.test_case "loop misuse" `Quick test_filterc_loop_misuse;
          Alcotest.test_case "rewritable output" `Quick
            test_filterc_avoids_reserved_regs;
          filterc_semantics_prop;
          loop_semantics_prop;
        ] );
      ( "sfi",
        [
          Alcotest.test_case "rejections" `Quick test_sfi_rejections;
          Alcotest.test_case "jump remap across masks" `Quick
            test_sfi_jump_remap_across_masks;
          Alcotest.test_case "window boundaries" `Quick test_sfi_window_boundaries;
          Alcotest.test_case "out-of-range jump stays out" `Quick
            test_sfi_out_of_range_jump_stays_out;
          sfi_preserves_semantics_prop;
          sfi_preserves_loops_prop;
          sfi_containment_prop;
        ] );
      ( "stack-filter",
        [
          Alcotest.test_case "drops per filter" `Quick test_stack_filter_drops;
          Alcotest.test_case "sandboxed equivalent but dearer" `Quick
            test_stack_filter_sandboxed_equivalent_but_dearer;
          Alcotest.test_case "malicious contained" `Quick
            test_stack_filter_malicious_contained;
          Alcotest.test_case "garbage rejected" `Quick test_stack_filter_rejects_garbage;
        ] );
    ]
