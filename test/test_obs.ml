(* Tests for the observability subsystem: the ring-buffer tracer, the
   metrics registry, zero-cost-when-disabled instrumentation, the trace
   interposer's transparency, and the /nucleus/trace service. *)

open Paramecium

(* --- tracer ring buffer ---------------------------------------------- *)

let record tracer ~seq:_ n =
  let tok =
    Tracer.begin_span tracer ~now:(n * 10) ~domain:0 ~obj:"o" ~iface:"i"
      ~meth:(string_of_int n)
  in
  Tracer.end_span tracer ~now:((n * 10) + 5) tok

let test_ring_wraparound () =
  let tracer = Tracer.create ~capacity:8 () in
  for n = 0 to 19 do
    record tracer ~seq:n n
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Tracer.recorded tracer);
  Alcotest.(check int) "overwritten spans are dropped" 12 (Tracer.dropped tracer);
  let spans = Tracer.spans tracer in
  Alcotest.(check int) "capacity survivors" 8 (List.length spans);
  (match spans with
  | oldest :: _ -> Alcotest.(check int) "oldest survivor" 12 oldest.Tracer.seq
  | [] -> Alcotest.fail "no spans");
  let seqs = List.map (fun s -> s.Tracer.seq) spans in
  Alcotest.(check (list int)) "oldest-first order" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    seqs;
  Tracer.reset tracer;
  Alcotest.(check int) "reset empties" 0 (List.length (Tracer.spans tracer));
  Alcotest.(check int) "reset zeroes recorded" 0 (Tracer.recorded tracer)

let test_ring_nesting_depth () =
  let tracer = Tracer.create () in
  let a = Tracer.begin_span tracer ~now:0 ~domain:0 ~obj:"a" ~iface:"i" ~meth:"m" in
  let b = Tracer.begin_span tracer ~now:1 ~domain:0 ~obj:"b" ~iface:"i" ~meth:"m" in
  Alcotest.(check int) "two open" 2 (Tracer.depth tracer);
  Tracer.end_span tracer ~now:2 b;
  Tracer.end_span tracer ~now:3 a;
  Alcotest.(check int) "all closed" 0 (Tracer.depth tracer);
  match Tracer.spans tracer with
  | [ inner; outer ] ->
    Alcotest.(check int) "inner depth" 1 inner.Tracer.depth;
    Alcotest.(check int) "outer depth" 0 outer.Tracer.depth;
    Alcotest.(check string) "inner first (post-order completion)" "b" inner.Tracer.obj
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* --- metrics ---------------------------------------------------------- *)

let test_histogram_percentiles () =
  let m = Metrics.create () in
  for v = 1 to 100 do
    Metrics.observe m ~domain:0 "lat" v
  done;
  match Metrics.summary m ~domain:0 "lat" with
  | None -> Alcotest.fail "no summary"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check int) "sum" 5050 s.Metrics.sum;
    Alcotest.(check int) "min" 1 s.Metrics.min;
    Alcotest.(check int) "max" 100 s.Metrics.max;
    (* rank 50 lands in bucket [32,64); rank 90 and 99 in [64,128) *)
    Alcotest.(check int) "p50 bucket floor" 32 s.Metrics.p50;
    Alcotest.(check int) "p90 bucket floor" 64 s.Metrics.p90;
    Alcotest.(check int) "p99 bucket floor" 64 s.Metrics.p99

let test_bucket_scheme () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (Metrics.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (Metrics.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 1" 1 (Metrics.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 2" 2 (Metrics.bucket_of 4);
  Alcotest.(check int) "1024 -> bucket 10" 10 (Metrics.bucket_of 1024);
  Alcotest.(check int) "floor of bucket 0" 0 (Metrics.bucket_floor 0);
  Alcotest.(check int) "floor of bucket 10" 1024 (Metrics.bucket_floor 10)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m ~domain:1 "calls";
  Metrics.add m ~domain:1 "calls" 4;
  Metrics.incr m ~domain:2 "calls";
  Metrics.set_gauge m ~domain:0 "ready" 7;
  Metrics.set_gauge m ~domain:0 "ready" 3;
  Alcotest.(check int) "counter keyed by domain" 5 (Metrics.counter m ~domain:1 "calls");
  Alcotest.(check int) "other domain separate" 1 (Metrics.counter m ~domain:2 "calls");
  Alcotest.(check int) "gauge keeps last value" 3 (Metrics.gauge m ~domain:0 "ready");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter m ~domain:9 "nope")

(* --- zero-cost-when-disabled instrumentation -------------------------- *)

let echo_registry () =
  let registry = Registry.create () in
  let iface =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tany
          (fun _ctx -> function [ v ] -> Ok v | _ -> Error (Oerror.Type_error "echo"));
        Iface.meth ~name:"boom" ~args:[] ~ret:Vtype.Tunit
          (fun _ctx _ -> Error (Oerror.Fault "boom"));
      ]
  in
  (registry, Instance.create registry ~class_name:"test.echo" ~domain:0 [ iface ])

let test_disabled_costs_nothing () =
  let clock = Clock.create () in
  let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
  let _, echo = echo_registry () in
  let cost body =
    let before = Clock.now clock in
    body ();
    Clock.now clock - before
  in
  let obs = Clock.obs clock in
  Alcotest.(check bool) "tracing starts disabled" false (Obs.enabled obs);
  let off =
    cost (fun () ->
        ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ]))
  in
  Alcotest.(check int) "disabled call = indirect_call only"
    (Cost.dispatch Cost.default) off;
  Obs.enable obs;
  let on =
    cost (fun () ->
        ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ]))
  in
  Alcotest.(check int) "enabled call adds exactly one mem_write"
    (Cost.traced_dispatch Cost.default)
    on;
  Alcotest.(check int) "the span is in the ring" 1
    (Tracer.recorded (Obs.tracer obs));
  Obs.disable obs;
  let off2 =
    cost (fun () ->
        ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ]))
  in
  Alcotest.(check int) "disabling restores the exact cost"
    (Cost.dispatch Cost.default) off2

(* --- trace interposer transparency ------------------------------------ *)

let sys_fixture () = System.create ~seed:0xBEEF ()

let test_interposer_transparent () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let registry = api.Api.registry in
  let iface =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tany
          (fun _ctx -> function [ v ] -> Ok v | _ -> Error (Oerror.Type_error "echo"));
        Iface.meth ~name:"boom" ~args:[] ~ret:Vtype.Tunit
          (fun _ctx _ -> Error (Oerror.Fault "boom"));
      ]
  in
  let target =
    Instance.create registry ~class_name:"test.echo" ~domain:kdom.Domain.id [ iface ]
  in
  Kernel.register_at k "/svc/echo" target;
  let ctx = Kernel.ctx k kdom in
  let blob = Value.Blob (Bytes.init 64 (fun b -> Char.chr (b * 3 mod 256))) in
  let direct = Invoke.call ctx target ~iface:"echo" ~meth:"echo" [ blob ] in
  let direct_err = Invoke.call ctx target ~iface:"echo" ~meth:"boom" [] in
  (* tracing on, so the agent actually records while we compare results *)
  Obs.enable (Clock.obs (Kernel.clock k));
  match Obs_agent.interpose api ~path:"/svc/echo" with
  | Error e -> Alcotest.fail e
  | Ok (agent, original) ->
    Alcotest.(check bool) "original is the target" true (original == target);
    let via_agent = Kernel.bind k kdom "/svc/echo" in
    Alcotest.(check bool) "rebinding resolves to the agent" true (via_agent == agent);
    let traced = Invoke.call ctx agent ~iface:"echo" ~meth:"echo" [ blob ] in
    (match (direct, traced) with
    | Ok a, Ok b ->
      Alcotest.(check bool) "byte-identical result through the agent" true
        (Value.equal a b)
    | _ -> Alcotest.fail "echo failed");
    let traced_err = Invoke.call ctx agent ~iface:"echo" ~meth:"boom" [] in
    (match (direct_err, traced_err) with
    | Error a, Error b ->
      Alcotest.(check string) "identical error through the agent"
        (Oerror.to_string a) (Oerror.to_string b)
    | _ -> Alcotest.fail "boom must fail identically");
    Alcotest.(check bool) "agent errors are counted" true
      (Metrics.counter (Obs.metrics (Clock.obs (Kernel.clock k)))
         ~domain:kdom.Domain.id "trace.errors"
      >= 1);
    (match Obs_agent.remove api ~path:"/svc/echo" ~agent ~original with
    | Error e -> Alcotest.fail e
    | Ok () ->
      let restored = Kernel.bind k kdom "/svc/echo" in
      Alcotest.(check bool) "original binding restored" true (restored == target));
    Obs.disable (Clock.obs (Kernel.clock k))

let test_remove_refuses_foreign_entry () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let _, target = echo_registry () in
  let target =
    (* re-home the instance into the system registry *)
    ignore target;
    let iface =
      Iface.make ~name:"echo"
        [
          Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tany
            (fun _ctx -> function [ v ] -> Ok v | _ -> Error (Oerror.Type_error "e"));
        ]
    in
    Instance.create api.Api.registry ~class_name:"test.echo" ~domain:kdom.Domain.id
      [ iface ]
  in
  Kernel.register_at k "/svc/echo2" target;
  match Obs_agent.interpose api ~path:"/svc/echo2" with
  | Error e -> Alcotest.fail e
  | Ok (agent, original) ->
    (* someone else interposes over the trace agent *)
    let usurper = Interpose.packet_monitor api kdom ~target:agent in
    (match Interpose.attach api ~path:"/svc/echo2" ~agent:usurper with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    (match Obs_agent.remove api ~path:"/svc/echo2" ~agent ~original with
    | Ok () -> Alcotest.fail "remove must refuse when not on top"
    | Error _ ->
      (* the usurper's binding is untouched *)
      let bound = Kernel.bind k kdom "/svc/echo2" in
      Alcotest.(check bool) "foreign entry left in place" true (bound == usurper))

(* --- the /nucleus/trace service ---------------------------------------- *)

let test_trace_service_cross_domain () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let udom = System.new_domain sys "observer" in
  let trace = Kernel.bind k udom "/nucleus/trace" in
  Alcotest.(check bool) "user domain reaches the service via proxy" true
    (Proxy.is_proxy trace);
  let uctx = Kernel.ctx k udom in
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let call m args = Invoke.call uctx trace ~iface:"trace" ~meth:m args in
  (match call "enabled" [] with
  | Ok (Value.Bool false) -> ()
  | _ -> Alcotest.fail "tracing must start disabled");
  (match call "start" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "start");
  Alcotest.(check bool) "start flips the clock's sink" true
    (Obs.enabled (Clock.obs (Kernel.clock k)));
  (* install an agent over the shared network driver, by name *)
  (match call "interpose" [ Value.Str "/shared/network" ] with
  | Ok (Value.Int h) -> Alcotest.(check bool) "agent handle" true (h > 0)
  | _ -> Alcotest.fail "interpose");
  (* duplicate interpose refused *)
  (match call "interpose" [ Value.Str "/shared/network" ] with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "double interpose must fail");
  (* drive traffic through the agent from the kernel side *)
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
  let kctx = Kernel.ctx k kdom in
  let agent = Kernel.bind k kdom "/shared/network" in
  for _ = 1 to 4 do
    ignore
      (Invoke.call_exn kctx agent ~iface:"netdev" ~meth:"send"
         [ Value.Blob (Bytes.create 32) ])
  done;
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  (match call "snapshot" [ Value.Str "json" ] with
  | Ok (Value.Str json) ->
    Alcotest.(check bool) "snapshot mentions the agent" true
      (let sub = "trace:toolbox.netdrv" in
       let rec find i =
         i + String.length sub <= String.length json
         && (String.sub json i (String.length sub) = sub || find (i + 1))
       in
       find 0)
  | _ -> Alcotest.fail "snapshot json");
  (match call "histogram" [ Value.Int kdom.Domain.id; Value.Str "invoke.dispatch" ] with
  | Ok (Value.Str text) ->
    Alcotest.(check bool) "histogram has samples" true
      (String.length text > 0 && String.sub text 0 6 = "count=")
  | _ -> Alcotest.fail "histogram");
  (match call "uninterpose" [ Value.Str "/shared/network" ] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "uninterpose");
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
  let restored = Kernel.bind k kdom "/shared/network" in
  Alcotest.(check bool) "uninterpose restores the driver" true
    (restored == net.System.driver);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  (match call "stop" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "stop");
  Alcotest.(check bool) "stop disables" false (Obs.enabled (Clock.obs (Kernel.clock k)))

(* --- clock snapshot helpers -------------------------------------------- *)

let test_clock_snapshot_diff () =
  let clock = Clock.create () in
  Clock.advance clock 100;
  Clock.count clock "a";
  Clock.count clock "a";
  Clock.count clock "b";
  let before = Clock.snapshot clock in
  Clock.advance clock 50;
  Clock.count clock "a";
  Clock.count clock "c";
  let d = Clock.since clock before in
  Alcotest.(check int) "elapsed cycles" 50 d.Clock.at;
  Alcotest.(check (list (pair string int)))
    "per-counter deltas, zeroes omitted"
    [ ("a", 1); ("c", 1) ]
    (List.sort compare d.Clock.counts)

let test_clock_with_counters () =
  let clock = Clock.create () in
  Clock.count clock "x";
  Clock.count clock "y";
  Clock.with_counters clock [ ("x", 10); ("z", 3) ];
  Alcotest.(check int) "restored" 10 (Clock.counter clock "x");
  Alcotest.(check int) "fresh entry" 3 (Clock.counter clock "z");
  Alcotest.(check int) "old entries cleared" 0 (Clock.counter clock "y")

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "nesting depth" `Quick test_ring_nesting_depth;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "bucket scheme" `Quick test_bucket_scheme;
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "disabled costs nothing" `Quick test_disabled_costs_nothing;
        ] );
      ( "interposer",
        [
          Alcotest.test_case "transparent" `Quick test_interposer_transparent;
          Alcotest.test_case "remove refuses foreign entry" `Quick
            test_remove_refuses_foreign_entry;
        ] );
      ( "trace-service",
        [
          Alcotest.test_case "cross-domain via proxy" `Quick
            test_trace_service_cross_domain;
        ] );
      ( "clock",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_clock_snapshot_diff;
          Alcotest.test_case "with_counters" `Quick test_clock_with_counters;
        ] );
    ]
