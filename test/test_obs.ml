(* Tests for the observability subsystem: the ring-buffer tracer, the
   metrics registry, zero-cost-when-disabled instrumentation, the trace
   interposer's transparency, and the /nucleus/trace service. *)

open Paramecium

(* --- tracer ring buffer ---------------------------------------------- *)

let record tracer ~seq:_ n =
  let tok =
    Tracer.begin_span tracer ~now:(n * 10) ~domain:0 ~obj:"o" ~iface:"i"
      ~meth:(string_of_int n)
  in
  Tracer.end_span tracer ~now:((n * 10) + 5) tok

let test_ring_wraparound () =
  let tracer = Tracer.create ~capacity:8 () in
  for n = 0 to 19 do
    record tracer ~seq:n n
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Tracer.recorded tracer);
  Alcotest.(check int) "overwritten spans are dropped" 12 (Tracer.dropped tracer);
  let spans = Tracer.spans tracer in
  Alcotest.(check int) "capacity survivors" 8 (List.length spans);
  (match spans with
  | oldest :: _ -> Alcotest.(check int) "oldest survivor" 12 oldest.Tracer.seq
  | [] -> Alcotest.fail "no spans");
  let seqs = List.map (fun s -> s.Tracer.seq) spans in
  Alcotest.(check (list int)) "oldest-first order" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    seqs;
  Tracer.reset tracer;
  Alcotest.(check int) "reset empties" 0 (List.length (Tracer.spans tracer));
  Alcotest.(check int) "reset zeroes recorded" 0 (Tracer.recorded tracer)

let test_ring_nesting_depth () =
  let tracer = Tracer.create () in
  let a = Tracer.begin_span tracer ~now:0 ~domain:0 ~obj:"a" ~iface:"i" ~meth:"m" in
  let b = Tracer.begin_span tracer ~now:1 ~domain:0 ~obj:"b" ~iface:"i" ~meth:"m" in
  Alcotest.(check int) "two open" 2 (Tracer.depth tracer);
  Tracer.end_span tracer ~now:2 b;
  Tracer.end_span tracer ~now:3 a;
  Alcotest.(check int) "all closed" 0 (Tracer.depth tracer);
  match Tracer.spans tracer with
  | [ inner; outer ] ->
    Alcotest.(check int) "inner depth" 1 inner.Tracer.depth;
    Alcotest.(check int) "outer depth" 0 outer.Tracer.depth;
    Alcotest.(check string) "inner first (post-order completion)" "b" inner.Tracer.obj
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* --- metrics ---------------------------------------------------------- *)

let test_histogram_percentiles () =
  let m = Metrics.create () in
  for v = 1 to 100 do
    Metrics.observe m ~domain:0 "lat" v
  done;
  match Metrics.summary m ~domain:0 "lat" with
  | None -> Alcotest.fail "no summary"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check int) "sum" 5050 s.Metrics.sum;
    Alcotest.(check int) "min" 1 s.Metrics.min;
    Alcotest.(check int) "max" 100 s.Metrics.max;
    (* rank 50 lands in bucket [32,64); rank 90 and 99 in [64,128) *)
    Alcotest.(check int) "p50 bucket floor" 32 s.Metrics.p50;
    Alcotest.(check int) "p90 bucket floor" 64 s.Metrics.p90;
    Alcotest.(check int) "p99 bucket floor" 64 s.Metrics.p99

let test_bucket_scheme () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (Metrics.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (Metrics.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 1" 1 (Metrics.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 2" 2 (Metrics.bucket_of 4);
  Alcotest.(check int) "1024 -> bucket 10" 10 (Metrics.bucket_of 1024);
  Alcotest.(check int) "floor of bucket 0" 0 (Metrics.bucket_floor 0);
  Alcotest.(check int) "floor of bucket 10" 1024 (Metrics.bucket_floor 10)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m ~domain:1 "calls";
  Metrics.add m ~domain:1 "calls" 4;
  Metrics.incr m ~domain:2 "calls";
  Metrics.set_gauge m ~domain:0 "ready" 7;
  Metrics.set_gauge m ~domain:0 "ready" 3;
  Alcotest.(check int) "counter keyed by domain" 5 (Metrics.counter m ~domain:1 "calls");
  Alcotest.(check int) "other domain separate" 1 (Metrics.counter m ~domain:2 "calls");
  Alcotest.(check int) "gauge keeps last value" 3 (Metrics.gauge m ~domain:0 "ready");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter m ~domain:9 "nope")

(* --- zero-cost-when-disabled instrumentation -------------------------- *)

let echo_registry () =
  let registry = Registry.create () in
  let iface =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tany
          (fun _ctx -> function [ v ] -> Ok v | _ -> Error (Oerror.Type_error "echo"));
        Iface.meth ~name:"boom" ~args:[] ~ret:Vtype.Tunit
          (fun _ctx _ -> Error (Oerror.Fault "boom"));
      ]
  in
  (registry, Instance.create registry ~class_name:"test.echo" ~domain:0 [ iface ])

let test_disabled_costs_nothing () =
  let clock = Clock.create () in
  let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
  let _, echo = echo_registry () in
  let cost body =
    let before = Clock.now clock in
    body ();
    Clock.now clock - before
  in
  let obs = Clock.obs clock in
  Alcotest.(check bool) "tracing starts disabled" false (Obs.enabled obs);
  let off =
    cost (fun () ->
        ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ]))
  in
  Alcotest.(check int) "disabled call = indirect_call only"
    (Cost.dispatch Cost.default) off;
  Obs.enable obs;
  let on =
    cost (fun () ->
        ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ]))
  in
  Alcotest.(check int) "enabled call adds exactly one mem_write"
    (Cost.traced_dispatch Cost.default)
    on;
  Alcotest.(check int) "the span is in the ring" 1
    (Tracer.recorded (Obs.tracer obs));
  Obs.disable obs;
  let off2 =
    cost (fun () ->
        ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ]))
  in
  Alcotest.(check int) "disabling restores the exact cost"
    (Cost.dispatch Cost.default) off2

(* --- trace interposer transparency ------------------------------------ *)

let sys_fixture () = System.create ~seed:0xBEEF ()

let test_interposer_transparent () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let registry = api.Api.registry in
  let iface =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tany
          (fun _ctx -> function [ v ] -> Ok v | _ -> Error (Oerror.Type_error "echo"));
        Iface.meth ~name:"boom" ~args:[] ~ret:Vtype.Tunit
          (fun _ctx _ -> Error (Oerror.Fault "boom"));
      ]
  in
  let target =
    Instance.create registry ~class_name:"test.echo" ~domain:kdom.Domain.id [ iface ]
  in
  Kernel.register_at k "/svc/echo" target;
  let ctx = Kernel.ctx k kdom in
  let blob = Value.Blob (Bytes.init 64 (fun b -> Char.chr (b * 3 mod 256))) in
  let direct = Invoke.call ctx target ~iface:"echo" ~meth:"echo" [ blob ] in
  let direct_err = Invoke.call ctx target ~iface:"echo" ~meth:"boom" [] in
  (* tracing on, so the agent actually records while we compare results *)
  Obs.enable (Clock.obs (Kernel.clock k));
  match Obs_agent.interpose api ~path:"/svc/echo" with
  | Error e -> Alcotest.fail e
  | Ok (agent, original) ->
    Alcotest.(check bool) "original is the target" true (original == target);
    let via_agent = Kernel.bind k kdom "/svc/echo" in
    Alcotest.(check bool) "rebinding resolves to the agent" true (via_agent == agent);
    let traced = Invoke.call ctx agent ~iface:"echo" ~meth:"echo" [ blob ] in
    (match (direct, traced) with
    | Ok a, Ok b ->
      Alcotest.(check bool) "byte-identical result through the agent" true
        (Value.equal a b)
    | _ -> Alcotest.fail "echo failed");
    let traced_err = Invoke.call ctx agent ~iface:"echo" ~meth:"boom" [] in
    (match (direct_err, traced_err) with
    | Error a, Error b ->
      Alcotest.(check string) "identical error through the agent"
        (Oerror.to_string a) (Oerror.to_string b)
    | _ -> Alcotest.fail "boom must fail identically");
    Alcotest.(check bool) "agent errors are counted" true
      (Metrics.counter (Obs.metrics (Clock.obs (Kernel.clock k)))
         ~domain:kdom.Domain.id "trace.errors"
      >= 1);
    (match Obs_agent.remove api ~path:"/svc/echo" ~agent ~original with
    | Error e -> Alcotest.fail e
    | Ok () ->
      let restored = Kernel.bind k kdom "/svc/echo" in
      Alcotest.(check bool) "original binding restored" true (restored == target));
    Obs.disable (Clock.obs (Kernel.clock k))

let test_remove_refuses_foreign_entry () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let _, target = echo_registry () in
  let target =
    (* re-home the instance into the system registry *)
    ignore target;
    let iface =
      Iface.make ~name:"echo"
        [
          Iface.meth ~name:"echo" ~args:[ Vtype.Tany ] ~ret:Vtype.Tany
            (fun _ctx -> function [ v ] -> Ok v | _ -> Error (Oerror.Type_error "e"));
        ]
    in
    Instance.create api.Api.registry ~class_name:"test.echo" ~domain:kdom.Domain.id
      [ iface ]
  in
  Kernel.register_at k "/svc/echo2" target;
  match Obs_agent.interpose api ~path:"/svc/echo2" with
  | Error e -> Alcotest.fail e
  | Ok (agent, original) ->
    (* someone else interposes over the trace agent *)
    let usurper = Interpose.packet_monitor api kdom ~target:agent in
    (match Interpose.attach api ~path:"/svc/echo2" ~agent:usurper with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    (match Obs_agent.remove api ~path:"/svc/echo2" ~agent ~original with
    | Ok () -> Alcotest.fail "remove must refuse when not on top"
    | Error _ ->
      (* the usurper's binding is untouched *)
      let bound = Kernel.bind k kdom "/svc/echo2" in
      Alcotest.(check bool) "foreign entry left in place" true (bound == usurper))

(* --- the /nucleus/trace service ---------------------------------------- *)

let test_trace_service_cross_domain () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let udom = System.new_domain sys "observer" in
  let trace = Kernel.bind k udom "/nucleus/trace" in
  Alcotest.(check bool) "user domain reaches the service via proxy" true
    (Proxy.is_proxy trace);
  let uctx = Kernel.ctx k udom in
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let call m args = Invoke.call uctx trace ~iface:"trace" ~meth:m args in
  (match call "enabled" [] with
  | Ok (Value.Bool false) -> ()
  | _ -> Alcotest.fail "tracing must start disabled");
  (match call "start" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "start");
  Alcotest.(check bool) "start flips the clock's sink" true
    (Obs.enabled (Clock.obs (Kernel.clock k)));
  (* install an agent over the shared network driver, by name *)
  (match call "interpose" [ Value.Str "/shared/network" ] with
  | Ok (Value.Int h) -> Alcotest.(check bool) "agent handle" true (h > 0)
  | _ -> Alcotest.fail "interpose");
  (* duplicate interpose refused *)
  (match call "interpose" [ Value.Str "/shared/network" ] with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "double interpose must fail");
  (* drive traffic through the agent from the kernel side *)
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
  let kctx = Kernel.ctx k kdom in
  let agent = Kernel.bind k kdom "/shared/network" in
  for _ = 1 to 4 do
    ignore
      (Invoke.call_exn kctx agent ~iface:"netdev" ~meth:"send"
         [ Value.Blob (Bytes.create 32) ])
  done;
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  (match call "snapshot" [ Value.Str "json" ] with
  | Ok (Value.Str json) ->
    Alcotest.(check bool) "snapshot mentions the agent" true
      (let sub = "trace:toolbox.netdrv" in
       let rec find i =
         i + String.length sub <= String.length json
         && (String.sub json i (String.length sub) = sub || find (i + 1))
       in
       find 0)
  | _ -> Alcotest.fail "snapshot json");
  (match call "histogram" [ Value.Int kdom.Domain.id; Value.Str "invoke.dispatch" ] with
  | Ok (Value.Str text) ->
    Alcotest.(check bool) "histogram has samples" true
      (String.length text > 0 && String.sub text 0 6 = "count=")
  | _ -> Alcotest.fail "histogram");
  (match call "uninterpose" [ Value.Str "/shared/network" ] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "uninterpose");
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
  let restored = Kernel.bind k kdom "/shared/network" in
  Alcotest.(check bool) "uninterpose restores the driver" true
    (restored == net.System.driver);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  (match call "stop" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "stop");
  Alcotest.(check bool) "stop disables" false (Obs.enabled (Clock.obs (Kernel.clock k)))

(* --- histogram edge cases ---------------------------------------------- *)

let test_histogram_empty () =
  let m = Metrics.create () in
  Alcotest.(check bool) "no samples -> no summary" true
    (Metrics.summary m ~domain:0 "lat" = None);
  Metrics.observe m ~domain:0 "lat" 7;
  Alcotest.(check bool) "one sample -> summary" true
    (Metrics.summary m ~domain:0 "lat" <> None);
  Metrics.reset m;
  Alcotest.(check bool) "reset empties the histogram" true
    (Metrics.summary m ~domain:0 "lat" = None)

let test_histogram_single_sample () =
  let m = Metrics.create () in
  Metrics.observe m ~domain:0 "lat" 100;
  match Metrics.summary m ~domain:0 "lat" with
  | None -> Alcotest.fail "no summary"
  | Some s ->
    Alcotest.(check int) "count" 1 s.Metrics.count;
    Alcotest.(check int) "exact min" 100 s.Metrics.min;
    Alcotest.(check int) "exact max" 100 s.Metrics.max;
    (* every percentile is the lone sample's bucket floor: 100 lives in
       [64,128) *)
    let floor = Metrics.bucket_floor (Metrics.bucket_of 100) in
    Alcotest.(check int) "expected floor" 64 floor;
    Alcotest.(check int) "p50" floor s.Metrics.p50;
    Alcotest.(check int) "p90" floor s.Metrics.p90;
    Alcotest.(check int) "p99" floor s.Metrics.p99

let test_bucket_power_boundaries () =
  (* bucket b >= 1 holds [2^b, 2^(b+1)): the boundary value opens the next
     bucket, one below stays *)
  Alcotest.(check int) "1023 stays in bucket 9" 9 (Metrics.bucket_of 1023);
  Alcotest.(check int) "1024 opens bucket 10" 10 (Metrics.bucket_of 1024);
  Alcotest.(check int) "1025 stays in bucket 10" 10 (Metrics.bucket_of 1025);
  Alcotest.(check int) "2047 tops bucket 10" 10 (Metrics.bucket_of 2047);
  Alcotest.(check int) "2048 opens bucket 11" 11 (Metrics.bucket_of 2048);
  (* floor(bucket_of v) <= v for all positive v *)
  List.iter
    (fun v ->
      let f = Metrics.bucket_floor (Metrics.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "floor %d <= %d" f v)
        true (f <= v))
    [ 1; 2; 3; 4; 5; 1023; 1024; 1025; 123_456 ]

(* --- per-domain accounting and its zero-cost-when-off contract -------- *)

(* S6: the E1/E3/E4-shaped workloads must cost exactly the same cycles
   with accounting compiled in but disabled — before AND after an enabled
   interval, so the instrumentation leaves no residue. *)

let cycles_of clock body =
  let before = Clock.now clock in
  body ();
  Clock.now clock - before

let test_accounting_zero_cost_invoke () =
  (* E1 shape: repeated same-domain dispatch *)
  let clock = Clock.create () in
  let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
  let _, echo = echo_registry () in
  let call () =
    ignore (Invoke.call ctx echo ~iface:"echo" ~meth:"echo" [ Value.Int 1 ])
  in
  let obs = Clock.obs clock in
  let off_before = cycles_of clock (fun () -> for _ = 1 to 50 do call () done) in
  Alcotest.(check int) "disabled = 50 bare dispatches"
    (50 * Cost.dispatch Cost.default) off_before;
  Obs.enable obs;
  ignore (cycles_of clock (fun () -> for _ = 1 to 50 do call () done));
  Alcotest.(check int) "enabled interval filled the accounting" 50
    (Acct.slot (Obs.acct obs) 0).Acct.dispatches;
  Obs.disable obs;
  let off_after = cycles_of clock (fun () -> for _ = 1 to 50 do call () done) in
  Alcotest.(check int) "cost identical after the enabled interval" off_before
    off_after;
  Alcotest.(check int) "disabled interval charged nothing" 50
    (Acct.slot (Obs.acct obs) 0).Acct.dispatches

let test_accounting_zero_cost_cross_domain () =
  (* E3/E4 shape: user-placed stack, kernel-side packet injection crossing
     the proxy, driven twice disabled around an enabled interval *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "netuser" in
  let net = System.setup_networking sys ~placement:(System.User udom) ~addr:42 () in
  ignore
    (Invoke.call_exn (Kernel.ctx k udom) net.System.stack ~iface:"stack"
       ~meth:"bind_port" [ Value.Int 7 ]);
  let ctx = Kernel.ctx k (Kernel.kernel_domain k) in
  let payload = String.make 64 'p' in
  let tp = Wire.Transport.build ctx ~sport:9 ~dport:7 (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
  let packet = Bytes.to_string (Wire.Frame.build ctx ~dst:42 ~src:13 np) in
  let clock = Kernel.clock k in
  let round () =
    Nic.inject (Kernel.nic k) packet;
    Kernel.step k ~ticks:1 ()
  in
  (* warm up lazy binds *)
  round ();
  Kernel.step k ~ticks:2 ();
  let burst () = cycles_of clock (fun () -> for _ = 1 to 5 do round () done) in
  let off_before = burst () in
  let obs = Clock.obs clock in
  Obs.enable obs;
  ignore (burst ());
  let kslot = Acct.slot (Obs.acct obs) 0 in
  Alcotest.(check bool) "enabled interval charged crossings" true
    (kslot.Acct.crossings >= 5);
  Alcotest.(check bool) "crossing cycles accumulate" true
    (kslot.Acct.crossing_cycles > 0);
  Alcotest.(check bool) "irqs charged to the kernel domain" true
    (kslot.Acct.irqs >= 5);
  Obs.disable obs;
  let off_after = burst () in
  Alcotest.(check int) "packet cost identical after the enabled interval"
    off_before off_after

(* the domain's accounting slot IS the clock-side slot: one record, two
   readers *)
let test_acct_slot_shared () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "tenant" in
  let slot = Acct.slot (Obs.acct (Clock.obs (Kernel.clock k))) udom.Domain.id in
  Alcotest.(check bool) "Domain.t.acct aliases the obs table" true
    (udom.Domain.acct == slot)

(* --- flight recorder ---------------------------------------------------- *)

let test_flightrec_ring () =
  let f = Flightrec.create ~capacity:4 () in
  for n = 1 to 10 do
    Flightrec.record f ~kind:Flightrec.Trap ~domain:0 ~at:(n * 10) ~info:n
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Flightrec.recorded f);
  let evs = Flightrec.events f in
  Alcotest.(check int) "only capacity survive" 4 (List.length evs);
  Alcotest.(check (list int)) "oldest-first survivors" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Flightrec.info) evs);
  Flightrec.reset f;
  Alcotest.(check int) "reset empties" 0 (List.length (Flightrec.events f))

let test_flightrec_always_on () =
  (* the black box records with tracing OFF — that is its whole point *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  ignore (System.setup_networking sys ~placement:System.Certified ~addr:42 ());
  let obs = Clock.obs (Kernel.clock k) in
  Alcotest.(check bool) "tracing disabled" false (Obs.enabled obs);
  let before = Flightrec.recorded (Obs.flight obs) in
  let ctx = Kernel.ctx k (Kernel.kernel_domain k) in
  let payload = Bytes.of_string (String.make 32 'x') in
  let tp = Wire.Transport.build ctx ~sport:9 ~dport:7 payload in
  let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
  let packet = Bytes.to_string (Wire.Frame.build ctx ~dst:42 ~src:13 np) in
  Nic.inject (Kernel.nic k) packet;
  Kernel.step k ~ticks:2 ();
  let evs = Flightrec.events (Obs.flight obs) in
  Alcotest.(check bool) "events recorded while disabled" true
    (Flightrec.recorded (Obs.flight obs) > before);
  Alcotest.(check bool) "an interrupt is among them" true
    (List.exists (fun e -> e.Flightrec.kind = Flightrec.Irq) evs)

(* the black-box dump ships off-system as JSON and reads back verbatim,
   extreme integers included *)
let test_flightrec_json_roundtrip () =
  let f = Flightrec.create ~capacity:8 () in
  List.iteri
    (fun i (kind, info) ->
      Flightrec.record f ~kind ~domain:(i - 1) ~at:(i * 1_000) ~info)
    [
      (Flightrec.Trap, 0); (Flightrec.Irq, max_int); (Flightrec.Fault, min_int);
      (Flightrec.Crossing, -1); (Flightrec.Sched, 42);
    ];
  (match Flightrec.of_json (Flightrec.to_json f) with
  | Error e -> Alcotest.fail e
  | Ok (recorded, capacity, events) ->
    Alcotest.(check int) "recorded survives" (Flightrec.recorded f) recorded;
    Alcotest.(check int) "capacity survives" (Flightrec.capacity f) capacity;
    let orig = Flightrec.events f in
    Alcotest.(check int) "every event came back" (List.length orig)
      (List.length events);
    List.iter2
      (fun a b ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" a.Flightrec.seq)
          true
          (a.Flightrec.seq = b.Flightrec.seq
          && a.Flightrec.at = b.Flightrec.at
          && a.Flightrec.domain = b.Flightrec.domain
          && a.Flightrec.kind = b.Flightrec.kind
          && a.Flightrec.info = b.Flightrec.info))
      orig events);
  (* malformed input is rejected, not misparsed *)
  match Flightrec.of_json "{\"recorded\":}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed garbage"

(* --- the /stats namespace ----------------------------------------------- *)

let test_stats_namespace () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "muncher" in
  Alcotest.(check bool) "new_domain published /stats/<name>" true
    (List.mem "/stats/muncher" (Stats_svc.published (System.stats sys)));
  Obs.enable (Clock.obs (Kernel.clock k));
  (* the user domain reads its own accounting through the proxy path *)
  let mine = Kernel.bind k udom "/stats/muncher" in
  Alcotest.(check bool) "cross-domain binding is a proxy" true (Proxy.is_proxy mine);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let uctx = Kernel.ctx k udom in
  (match
     Invoke.call uctx mine ~iface:"stats.domain" ~meth:"read" [ Value.Str "text" ]
   with
  | Ok (Value.Str s) ->
    Alcotest.(check bool) "readout names the domain" true
      (String.length s > 0
      && (let sub = "muncher" in
          let rec find i =
            i + String.length sub <= String.length s
            && (String.sub s i (String.length sub) = sub || find (i + 1))
          in
          find 0))
  | _ -> Alcotest.fail "read text");
  (match
     Invoke.call uctx mine ~iface:"stats.domain" ~meth:"value"
       [ Value.Str "dispatches" ]
   with
  | Ok (Value.Int n) -> Alcotest.(check bool) "dispatches counted" true (n >= 1)
  | _ -> Alcotest.fail "value dispatches");
  (match
     Invoke.call uctx mine ~iface:"stats.domain" ~meth:"value" [ Value.Str "nope" ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field must fail");
  (* kernel-wide service: snapshot, mark, diff *)
  let ksvc = Kernel.bind k udom "/stats/kernel" in
  let call meth args = Invoke.call uctx ksvc ~iface:"stats" ~meth args in
  (match call "snapshot" [ Value.Str "json" ] with
  | Ok (Value.Str s) ->
    Alcotest.(check bool) "snapshot json has domains" true
      (String.length s > 0 && s.[0] = '{')
  | _ -> Alcotest.fail "snapshot");
  (match call "mark" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "mark");
  (match call "diff" [ Value.Str "text" ] with
  | Ok (Value.Str s) ->
    Alcotest.(check bool) "diff header" true
      (String.length s >= 11 && String.sub s 0 11 = "/stats diff")
  | _ -> Alcotest.fail "diff");
  (match call "flight" [ Value.Int 0 ] with
  | Ok (Value.Str s) ->
    Alcotest.(check bool) "flight dump" true
      (String.length s >= 7 && String.sub s 0 7 = "flight:")
  | _ -> Alcotest.fail "flight");
  (* a positive argument trims the dump to the last n events *)
  (match call "flight" [ Value.Int 3 ] with
  | Ok (Value.Str s) ->
    Alcotest.(check bool) "flight tail header" true
      (String.length s >= 7 && String.sub s 0 7 = "flight:");
    let lines = String.split_on_char '\n' s in
    Alcotest.(check bool) "flight tail trimmed" true (List.length lines <= 5)
  | _ -> Alcotest.fail "flight tail");
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) 0;
  Obs.disable (Clock.obs (Kernel.clock k))

let test_stats_interposable () =
  (* /stats objects are ordinary instances: a monitor agent interposes on
     /stats/kernel like on anything else *)
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  Obs.enable (Clock.obs (Kernel.clock k));
  match Obs_agent.interpose api ~path:"/stats/kernel" with
  | Error e -> Alcotest.fail e
  | Ok (agent, original) ->
    let bound = Kernel.bind k kdom "/stats/kernel" in
    Alcotest.(check bool) "binding resolves to the agent" true (bound == agent);
    let ctx = Kernel.ctx k kdom in
    (match
       Invoke.call ctx agent ~iface:"stats" ~meth:"snapshot" [ Value.Str "text" ]
     with
    | Ok (Value.Str s) ->
      Alcotest.(check bool) "snapshot flows through the agent" true
        (String.length s > 0)
    | _ -> Alcotest.fail "snapshot via agent");
    Alcotest.(check bool) "the monitored call left a span" true
      (Tracer.recorded (Obs.tracer (Clock.obs (Kernel.clock k))) >= 1);
    (match Obs_agent.remove api ~path:"/stats/kernel" ~agent ~original with
    | Error e -> Alcotest.fail e
    | Ok () ->
      let restored = Kernel.bind k kdom "/stats/kernel" in
      Alcotest.(check bool) "original restored" true (restored == original));
    Obs.disable (Clock.obs (Kernel.clock k))

(* --- the placement agent's hysteresis ----------------------------------- *)

let test_placer_hysteresis () =
  let clock = Clock.create () in
  let obs = Clock.obs clock in
  let acct = Obs.acct obs in
  let placer = Placer.create ~clock ~costs:Cost.default ~confirm:2 ~cooldown:1 () in
  let migrated = ref [] in
  Placer.manage placer ~watch:[ 1 ] ~placement:Placer.User
    ~migrate:(fun p ->
      migrated := p :: !migrated;
      true)
    ();
  let epoch_with ~cross ~faults =
    Clock.advance clock 1_000;
    if cross > 0 then Acct.crossing acct ~domain:1 cross;
    for _ = 1 to faults do
      Acct.fault acct ~domain:1 0
    done;
    Placer.epoch placer
  in
  (* share 0.5 >= 0.2: first epoch only starts the streak *)
  Alcotest.(check bool) "first hot epoch holds" true
    (epoch_with ~cross:500 ~faults:0 = [ Placer.Hold ]);
  Alcotest.(check bool) "no move yet" true (!migrated = []);
  (* second consecutive hot epoch confirms and migrates *)
  (match epoch_with ~cross:500 ~faults:0 with
  | [ Placer.Migrated Placer.Certified ] -> ()
  | _ -> Alcotest.fail "expected migration to certified");
  Alcotest.(check bool) "migrate closure ran" true
    (!migrated = [ Placer.Certified ]);
  Alcotest.(check int) "one move" 1 (Placer.moves placer);
  (* cooldown epoch: even a hot epoch decides nothing *)
  Alcotest.(check bool) "cooldown holds" true
    (epoch_with ~cross:900 ~faults:0 = [ Placer.Hold ]);
  (* a cold epoch resets the streak; a single hot one does not move *)
  ignore (epoch_with ~cross:0 ~faults:0);
  ignore (epoch_with ~cross:500 ~faults:0);
  Alcotest.(check int) "still one move (hysteresis)" 1 (Placer.moves placer);
  (* fault bursts demote certified back to user after confirm epochs *)
  ignore (epoch_with ~cross:0 ~faults:5);
  (match epoch_with ~cross:0 ~faults:5 with
  | [ Placer.Migrated Placer.User ] -> ()
  | _ -> Alcotest.fail "expected demotion to user");
  Alcotest.(check bool) "demotion ran the closure" true
    (List.hd !migrated = Placer.User)

(* two components under one agent: each keeps its own streak and
   cooldown, and a verifiable one migrates up to Verified *)
let test_placer_multi_component () =
  let clock = Clock.create () in
  let obs = Clock.obs clock in
  let acct = Obs.acct obs in
  let placer = Placer.create ~clock ~costs:Cost.default ~confirm:2 ~cooldown:1 () in
  let moved_a = ref [] and moved_b = ref [] in
  Placer.manage placer ~watch:[ 1 ] ~placement:Placer.User
    ~migrate:(fun p ->
      moved_a := p :: !moved_a;
      true)
    ();
  Placer.manage placer ~watch:[ 2 ] ~placement:Placer.User ~verified_ok:true
    ~migrate:(fun p ->
      moved_b := p :: !moved_b;
      true)
    ();
  Alcotest.(check int) "two components" 2 (List.length (Placer.placements placer));
  let epoch_with ~cross1 ~cross2 =
    Clock.advance clock 1_000;
    if cross1 > 0 then Acct.crossing acct ~domain:1 cross1;
    if cross2 > 0 then Acct.crossing acct ~domain:2 cross2;
    Placer.epoch placer
  in
  (* only component B runs hot: A must hold while B confirms and moves —
     and because B is verifiable, the up-target is Verified *)
  ignore (epoch_with ~cross1:0 ~cross2:500);
  (match epoch_with ~cross1:0 ~cross2:500 with
  | [ Placer.Migrated Placer.Verified ] -> ()
  | acts ->
    Alcotest.failf "expected one Verified migration, got %d action(s)"
      (List.length acts));
  Alcotest.(check bool) "A untouched" true (!moved_a = []);
  Alcotest.(check bool) "B moved to Verified" true (!moved_b = [ Placer.Verified ]);
  Alcotest.(check (list string)) "placements reflect both" [ "user"; "verified" ]
    (List.map Placer.placement_to_string (Placer.placements placer));
  (* now A runs hot while B cools down; A converges independently *)
  ignore (epoch_with ~cross1:500 ~cross2:0);
  (match epoch_with ~cross1:500 ~cross2:0 with
  | [ Placer.Migrated Placer.Certified ] -> ()
  | _ -> Alcotest.fail "expected A to migrate to Certified");
  Alcotest.(check int) "two moves total" 2 (Placer.moves placer);
  Alcotest.(check (list string)) "both converged" [ "certified"; "verified" ]
    (List.map Placer.placement_to_string (Placer.placements placer))

(* a verifiable component whose migrate closure refuses Verified falls
   back to the certificate path *)
let test_placer_verified_fallback () =
  let clock = Clock.create () in
  let acct = Obs.acct (Clock.obs clock) in
  let placer = Placer.create ~clock ~costs:Cost.default ~confirm:1 ~cooldown:0 () in
  let attempts = ref [] in
  Placer.manage placer ~watch:[ 1 ] ~placement:Placer.User ~verified_ok:true
    ~migrate:(fun p ->
      attempts := p :: !attempts;
      p = Placer.Certified)
    ();
  Clock.advance clock 1_000;
  Acct.crossing acct ~domain:1 500;
  (match Placer.epoch placer with
  | [ Placer.Migrated Placer.Certified ] -> ()
  | _ -> Alcotest.fail "expected fallback migration to Certified");
  Alcotest.(check bool) "tried Verified first" true
    (List.rev !attempts = [ Placer.Verified; Placer.Certified ]);
  Alcotest.(check bool) "placement is Certified" true
    (Placer.placement placer = Some Placer.Certified)

(* the payback-horizon check: a costly migration is deferred while the
   projected steady-state saving cannot cover it *)
let test_placer_payback_deferral () =
  let clock = Clock.create () in
  let acct = Obs.acct (Clock.obs clock) in
  let placer =
    Placer.create ~clock ~costs:Cost.default ~confirm:1 ~cooldown:0
      ~payback_window:2 ()
  in
  let moved = ref 0 in
  Placer.manage placer ~watch:[ 1 ] ~placement:Placer.User ~move_cost:10_000
    ~migrate:(fun _ ->
      incr moved;
      true)
    ();
  let epoch_with cross =
    Clock.advance clock 1_000;
    if cross > 0 then Acct.crossing acct ~domain:1 cross;
    Placer.epoch placer
  in
  (* hot by share (0.5 >= 0.2), but 2 epochs x 500 cycles saved never
     repays a 10k-cycle move: the agent must hold and count a deferral *)
  Alcotest.(check bool) "costly move deferred" true
    (epoch_with 500 = [ Placer.Hold ]);
  Alcotest.(check int) "deferral counted" 1 (Placer.deferrals placer);
  Alcotest.(check int) "no move" 0 !moved;
  (* crossings heavy enough that the window covers the cost: migrate *)
  (match epoch_with 6_000 with
  | [ Placer.Migrated Placer.Certified ] -> ()
  | _ -> Alcotest.fail "expected migration once the saving covers the cost");
  Alcotest.(check int) "one move" 1 !moved;
  Alcotest.(check int) "still one deferral" 1 (Placer.deferrals placer)

(* the payback estimate is learned, not configured: each migration is
   timed on the clock, the first observation replaces the seed, later
   ones average in — and every move lands in the journal with its
   measured latency *)
let test_placer_move_cost_learning () =
  let clock = Clock.create () in
  let obs = Clock.obs clock in
  let acct = Obs.acct obs in
  let placer = Placer.create ~clock ~costs:Cost.default ~confirm:1 ~cooldown:0 () in
  let latency = ref 10_000 in
  Placer.manage placer ~watch:[ 1 ] ~placement:Placer.User ~move_cost:500
    ~migrate:(fun _ ->
      Clock.advance clock !latency;
      true)
    ();
  Alcotest.(check (list int)) "seed before any move" [ 500 ]
    (Placer.move_costs placer);
  let epoch_with ~cross ~faults =
    Clock.advance clock 1_000;
    if cross > 0 then Acct.crossing acct ~domain:1 cross;
    for _ = 1 to faults do
      Acct.fault acct ~domain:1 0
    done;
    Placer.epoch placer
  in
  (* first move: the measured 10k replaces the 500-cycle guess outright *)
  (match epoch_with ~cross:900 ~faults:0 with
  | [ Placer.Migrated Placer.Certified ] -> ()
  | _ -> Alcotest.fail "expected migration");
  Alcotest.(check (list int)) "first observation replaces the seed" [ 10_000 ]
    (Placer.move_costs placer);
  (* second move (a fault demotion) averages in: (10000 + 2000 + 1) / 2 *)
  latency := 2_000;
  (match epoch_with ~cross:0 ~faults:5 with
  | [ Placer.Migrated Placer.User ] -> ()
  | _ -> Alcotest.fail "expected demotion");
  Alcotest.(check (list int)) "later observations average in" [ 6_000 ]
    (Placer.move_costs placer);
  let migrates =
    List.filter
      (fun e -> e.Journal.kind = Journal.Migrate)
      (Journal.structural (Obs.journal obs))
  in
  Alcotest.(check (list int)) "journalled with measured latencies"
    [ 10_000; 2_000 ]
    (List.map (fun e -> e.Journal.info) migrates);
  Alcotest.(check (list int)) "charged to the watched domain" [ 1; 1 ]
    (List.map (fun e -> e.Journal.domain) migrates)

(* --- clock snapshot helpers -------------------------------------------- *)

let test_clock_snapshot_diff () =
  let clock = Clock.create () in
  Clock.advance clock 100;
  Clock.count clock "a";
  Clock.count clock "a";
  Clock.count clock "b";
  let before = Clock.snapshot clock in
  Clock.advance clock 50;
  Clock.count clock "a";
  Clock.count clock "c";
  let d = Clock.since clock before in
  Alcotest.(check int) "elapsed cycles" 50 d.Clock.at;
  Alcotest.(check (list (pair string int)))
    "per-counter deltas, zeroes omitted"
    [ ("a", 1); ("c", 1) ]
    (List.sort compare d.Clock.counts)

let test_clock_with_counters () =
  let clock = Clock.create () in
  Clock.count clock "x";
  Clock.count clock "y";
  Clock.with_counters clock [ ("x", 10); ("z", 3) ];
  Alcotest.(check int) "restored" 10 (Clock.counter clock "x");
  Alcotest.(check int) "fresh entry" 3 (Clock.counter clock "z");
  Alcotest.(check int) "old entries cleared" 0 (Clock.counter clock "y")

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "nesting depth" `Quick test_ring_nesting_depth;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "bucket scheme" `Quick test_bucket_scheme;
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "disabled costs nothing" `Quick test_disabled_costs_nothing;
        ] );
      ( "histogram-edges",
        [
          Alcotest.test_case "empty and reset" `Quick test_histogram_empty;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
          Alcotest.test_case "power-of-two boundaries" `Quick
            test_bucket_power_boundaries;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "zero-cost invoke (E1 shape)" `Quick
            test_accounting_zero_cost_invoke;
          Alcotest.test_case "zero-cost cross-domain (E3/E4 shape)" `Quick
            test_accounting_zero_cost_cross_domain;
          Alcotest.test_case "domain slot shared with obs" `Quick
            test_acct_slot_shared;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "fixed-capacity ring" `Quick test_flightrec_ring;
          Alcotest.test_case "always on" `Quick test_flightrec_always_on;
          Alcotest.test_case "json round-trip" `Quick
            test_flightrec_json_roundtrip;
        ] );
      ( "stats-namespace",
        [
          Alcotest.test_case "cross-domain reads" `Quick test_stats_namespace;
          Alcotest.test_case "interposable" `Quick test_stats_interposable;
        ] );
      ( "placer",
        [
          Alcotest.test_case "hysteresis" `Quick test_placer_hysteresis;
          Alcotest.test_case "multi-component" `Quick test_placer_multi_component;
          Alcotest.test_case "verified fallback" `Quick test_placer_verified_fallback;
          Alcotest.test_case "payback deferral" `Quick test_placer_payback_deferral;
          Alcotest.test_case "move-cost learning" `Quick
            test_placer_move_cost_learning;
        ] );
      ( "interposer",
        [
          Alcotest.test_case "transparent" `Quick test_interposer_transparent;
          Alcotest.test_case "remove refuses foreign entry" `Quick
            test_remove_refuses_foreign_entry;
        ] );
      ( "trace-service",
        [
          Alcotest.test_case "cross-domain via proxy" `Quick
            test_trace_service_cross_domain;
        ] );
      ( "clock",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_clock_snapshot_diff;
          Alcotest.test_case "with_counters" `Quick test_clock_with_counters;
        ] );
    ]
