(* Tests for Pm_check: the load-time bytecode verifier, the interface
   subsumption checker, the whole-system composition linter, and their
   wiring into the loader and /nucleus/check. *)

open Paramecium

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let compile_exn src =
  match Filterc.compile_string src with Ok p -> p | Error e -> failwith e

(* --- verifier: acceptance ---------------------------------------------- *)

let test_verify_accepts_filters () =
  List.iter
    (fun src ->
      let p = compile_exn src in
      match Verify.verify p with
      | Verify.Verified { instrs; fuel } ->
        Alcotest.(check int)
          (src ^ ": instrs = program length")
          (Array.length p) instrs;
        Alcotest.(check int)
          (src ^ ": straight-line filters need no per-length fuel")
          0 fuel.Verify.per_len;
        Alcotest.(check bool)
          (src ^ ": fuel bound within the VM default")
          true
          (fuel.Verify.fixed <= Verify.default_fuel)
      | Verify.Rejected _ as v ->
        Alcotest.failf "%s: %s" src (Verify.verdict_to_string v))
    [
      "byte[19] == 7 && byte[18] == 0";
      "byte[0] == 1";
      "word[4] == 136 && byte[10] < 50";
      "byte[2] != 0 || byte[3] >= 9";
      "len > 20";
    ]

(* the whole filter language verifies: the compiler's bounds-bracketed
   load pattern is exactly what the abstract domain was built to follow *)
let gen_filter_expr =
  let open QCheck2.Gen in
  let base =
    oneof
      [ map (fun n -> Filterc.Lit n) (int_bound 300); return Filterc.Len;
        map (fun i -> Filterc.Byte (Filterc.Lit i)) (int_range (-4) 40) ]
  in
  let op =
    oneofl
      [ Filterc.Add; Filterc.Sub; Filterc.Mul; Filterc.Band; Filterc.Bxor;
        Filterc.Eq; Filterc.Ne; Filterc.Lt; Filterc.Le; Filterc.Gt; Filterc.Ge;
        Filterc.Andalso; Filterc.Orelse ]
  in
  let level1 = oneof [ base; map3 (fun o a b -> Filterc.Bin (o, a, b)) op base base ] in
  oneof
    [
      level1;
      map3 (fun o a b -> Filterc.Bin (o, a, b)) op level1 base;
      map3 (fun c t e -> Filterc.If (c, t, e)) base level1 level1;
    ]

let verifier_accepts_compiler_prop =
  prop "everything Filterc emits verifies" gen_filter_expr (fun e ->
      match Filterc.compile e with
      | Error _ -> true (* too deep: fine *)
      | Ok program -> Verify.ok (Verify.verify program))

(* loop-bearing filters: a [sum] must verify with a fuel bound that is
   genuinely affine in L, and running under exactly that bound must
   complete *)
let gen_loop_filter_expr =
  let open QCheck2.Gen in
  let bound =
    oneof
      [ map (fun n -> Filterc.Lit n) (int_bound 80); return Filterc.Len;
        map (fun i -> Filterc.Byte (Filterc.Lit i)) (int_range (-4) 40) ]
  in
  (* the loop owns r2..r4, so bodies are leaves in r5 (deeper nesting is
     a compile-time Too_deep, covered by the plain compiler prop) *)
  let body =
    oneof
      [ return (Filterc.Byte Filterc.Idx); return Filterc.Idx;
        map (fun n -> Filterc.Lit n) (int_bound 9);
        map (fun i -> Filterc.Byte (Filterc.Lit i)) (int_range (-4) 40);
        return Filterc.Len ]
  in
  let loop = map3 (fun lo hi b -> Filterc.For (lo, hi, b)) bound bound body in
  let op = oneofl [ Filterc.Add; Filterc.Band; Filterc.Eq; Filterc.Ne; Filterc.Lt; Filterc.Ge ] in
  oneof [ loop; map3 (fun o l r -> Filterc.Bin (o, l, r)) op loop bound ]

let verifier_accepts_loops_prop =
  prop "every sum filter verifies with an affine bound"
    QCheck2.Gen.(pair gen_loop_filter_expr (string_size (int_range 0 64)))
    (fun (e, pkt_str) ->
      match Filterc.compile e with
      | Error _ -> false (* outermost single sums always compile *)
      | Ok program -> (
        match Verify.verify program with
        | Verify.Rejected _ -> false
        | Verify.Verified { fuel; _ } ->
          let clock = Clock.create () in
          let ctx = Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0 in
          let mem = Vm.mem_of_bytes (Bytes.of_string pkt_str) in
          let fuel = Verify.fuel_for fuel ~len:(String.length pkt_str) in
          (match Vm.run ctx ~fuel ~mem program with
          | Vm.Returned _ -> true
          | Vm.Vm_fault _ | Vm.Wild_access _ -> false)))

(* --- verifier: rejection ----------------------------------------------- *)

let reject what program =
  match Verify.verify program with
  | Verify.Rejected { reason; _ } -> reason
  | Verify.Verified _ -> Alcotest.failf "%s: must be rejected" what

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_reason what sub program =
  let reason = reject what program in
  Alcotest.(check bool)
    (Printf.sprintf "%s: reason %S mentions %S" what reason sub)
    true (contains reason sub)

let test_verify_rejections () =
  (* store provably past the window: r2 = 99 but L <= MTU is unknown *)
  check_reason "out-of-window store" "window"
    [| Vm.Const (2, 99); Vm.Store8 (0, 2, 0); Vm.Ret 0 |];
  (* load below the window *)
  check_reason "negative load" "window"
    [| Vm.Const (2, -1); Vm.Load8 (3, 2, 0); Vm.Ret 3 |];
  (* unbracketed load: r1 = L is exactly one past the last byte *)
  check_reason "load at L" "window" [| Vm.Load8 (2, 1, 0); Vm.Ret 2 |];
  (* wild jump *)
  check_reason "wild jump" "jump out of program" [| Vm.Jmp 10; Vm.Ret 0 |];
  (* backward jump (would make the CFG cyclic) *)
  check_reason "backward jump" "backward" [| Vm.Const (2, 1); Vm.Jmp 1; Vm.Ret 2 |];
  (* reserved-register clobber *)
  check_reason "r6 clobber" "reserved" [| Vm.Const (6, 0); Vm.Ret 0 |];
  check_reason "r7 read" "reserved" [| Vm.Mov (2, 7); Vm.Ret 2 |];
  (* falling off the end *)
  check_reason "fall off" "fall" [| Vm.Const (2, 1) |];
  (* empty program *)
  check_reason "empty" "empty" [||];
  (* fuel: more instructions than the allowance *)
  (match Verify.verify ~fuel:2 [| Vm.Const (2, 0); Vm.Const (3, 0); Vm.Ret 2 |] with
  | Verify.Rejected _ -> ()
  | Verify.Verified _ -> Alcotest.fail "fuel overrun must be rejected");
  (* a branch-refined program that stays in bounds still verifies: the
     Filterc bracket pattern written by hand *)
  match
    Verify.verify
      [|
        Vm.Const (2, 3);
        Vm.Jlt (2, 0, 4) (* 3 < 0 ? never *);
        Vm.Jlt (2, 1, 5) (* 3 < L ? *);
        Vm.Ret 0;
        Vm.Ret 0;
        Vm.Load8 (3, 2, 0);
        Vm.Ret 3;
      |]
  with
  | Verify.Verified _ -> ()
  | Verify.Rejected _ as v ->
    Alcotest.failf "bracketed load must verify: %s" (Verify.verdict_to_string v)

(* --- verifier: loops --------------------------------------------------- *)

let run_fueled ~pkt ~fuel program =
  let clock = Clock.create () in
  let ctx = Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0 in
  Vm.run ctx ~fuel ~mem:(Vm.mem_of_bytes pkt) program

let expect_loop_verified what program =
  match Verify.verify program with
  | Verify.Verified { fuel; _ } ->
    Alcotest.(check bool)
      (what ^ ": fuel bound is genuinely per-length")
      true (fuel.Verify.per_len >= 1);
    (* the proven bound suffices at several window sizes, including 0 *)
    List.iter
      (fun len ->
        let pkt = Bytes.make len 'x' in
        match run_fueled ~pkt ~fuel:(Verify.fuel_for fuel ~len) program with
        | Vm.Returned _ -> ()
        | Vm.Wild_access _ | Vm.Vm_fault _ ->
          Alcotest.failf "%s: faulted within its proven bound (len %d)" what len)
      [ 0; 1; 32; 255 ]
  | Verify.Rejected _ as v ->
    Alcotest.failf "%s: %s" what (Verify.verdict_to_string v)

let test_verify_loop_acceptance () =
  (* canonical up-count: i from 0 while i < L, step 1 *)
  expect_loop_verified "up-count"
    [|
      Vm.Const (2, 0); Vm.Const (3, 0); Vm.Jlt (2, 1, 4); Vm.Ret 3;
      Vm.Const (4, 1); Vm.Add (2, 2, 4); Vm.Jlt (2, 1, 4); Vm.Ret 3;
    |];
  (* canonical down-count: i from L to 0, pre-guarded against L = 0 *)
  expect_loop_verified "down-count"
    [|
      Vm.Mov (2, 1); Vm.Jz (2, 5); Vm.Const (4, -1); Vm.Add (2, 2, 4);
      Vm.Jnz (2, 2); Vm.Ret 0;
    |];
  (* a scan that actually loads every byte in the window *)
  expect_loop_verified "byte scan"
    [|
      Vm.Const (2, 0); Vm.Const (3, 0); Vm.Jlt (2, 1, 4); Vm.Ret 3;
      Vm.Load8 (5, 2, 0); Vm.Add (3, 3, 5); Vm.Const (4, 1);
      Vm.Add (2, 2, 4); Vm.Jlt (2, 1, 4); Vm.Ret 3;
    |];
  (* the compiled sum construct end to end *)
  match Filterc.compile_string "sum[0 .. len](byte[idx]) & 255 == 73" with
  | Error e -> Alcotest.failf "sum filter: %s" e
  | Ok p -> expect_loop_verified "sum filter" p

let test_verify_loop_rejections () =
  (* no induction register advances: spins forever *)
  check_reason "stuck spin" "constant step"
    [| Vm.Const (2, 1); Vm.Jnz (2, 1); Vm.Ret 0 |];
  (* doubling is not a constant step (and 0 doubles to 0 forever) *)
  check_reason "doubling step" "constant step"
    [|
      Vm.Const (2, 0); Vm.Jlt (2, 1, 3); Vm.Ret 0; Vm.Add (2, 2, 2);
      Vm.Jlt (2, 1, 3); Vm.Ret 0;
    |];
  (* the increment sits behind a branch: some iterations skip it *)
  check_reason "skippable step" "skipped"
    [|
      Vm.Const (2, 0); Vm.Mov (3, 1); Vm.Jlt (2, 1, 4); Vm.Ret 0;
      Vm.Const (4, 1); Vm.Jz (3, 7); Vm.Add (2, 2, 4); Vm.Jlt (2, 1, 4);
      Vm.Ret 0;
    |];
  (* down-count entering at 0: tested at -1, never exits *)
  check_reason "countdown from zero" "enter at or below zero"
    [|
      Vm.Const (2, 0); Vm.Const (4, -1); Vm.Add (2, 2, 4); Vm.Jnz (2, 2);
      Vm.Ret 0;
    |];
  (* down-count from L without a zero pre-guard: L may be 0 *)
  check_reason "unguarded countdown" "enter at or below zero"
    [|
      Vm.Mov (2, 1); Vm.Const (4, -1); Vm.Add (2, 2, 4); Vm.Jnz (2, 2);
      Vm.Ret 0;
    |];
  (* loop-carried out-of-window access: byte[i + 1] reads byte[L] on the
     last trip *)
  check_reason "loop-carried overrun" "window"
    [|
      Vm.Const (2, 0); Vm.Jlt (2, 1, 3); Vm.Ret 0; Vm.Load8 (3, 2, 1);
      Vm.Const (4, 1); Vm.Add (2, 2, 4); Vm.Jlt (2, 1, 3); Vm.Ret 0;
    |];
  (* backward Jmp: no exit test at all *)
  check_reason "backward jmp loop" "backward"
    [| Vm.Const (2, 0); Vm.Jmp 1; Vm.Ret 0 |]

(* crafted attacks on the analysis itself: each used to hang or overflow
   a naive interval implementation; all must resolve finitely and
   soundly *)
let test_verify_pathological () =
  (* Or on a near-max bound: bits_mask must saturate instead of doubling
     past max_int (2^61 - 2^30 here; the old doubling overflowed) *)
  (match
     Verify.verify
       [| Vm.Const (2, 0x7FFFFFFF); Vm.Shl (3, 2, 30); Vm.Or (4, 3, 3); Vm.Ret 4 |]
   with
  | Verify.Verified _ -> ()
  | Verify.Rejected _ as v ->
    Alcotest.failf "saturating Or program must verify: %s"
      (Verify.verdict_to_string v));
  Alcotest.(check int) "bits_mask saturates at max_int" max_int
    (Verify.bits_mask max_int max_int);
  Alcotest.(check int) "bits_mask saturates above max_int/2" max_int
    (Verify.bits_mask ((max_int lsr 1) + 1) 0);
  Alcotest.(check int) "bits_mask small" 7 (Verify.bits_mask 5 2);
  (* Shl wrap: {0,1} lsl 62 is {0, min_int} on a 63-bit VM — an interval
     that silently wraps claims [0, 2^62] and admits the load *)
  check_reason "shl wrap" "window"
    [|
      Vm.Jz (1, 3); Vm.Const (2, 1); Vm.Jmp 4; Vm.Const (2, 0);
      Vm.Shl (3, 2, 62); Vm.Load8 (5, 3, 0); Vm.Ret 5;
    |];
  (* Mul wrap: squaring [2^17, 2^47-ish] passes 2^62 and wraps; the
     interval must widen to top, not invert *)
  check_reason "mul wrap" "window"
    [|
      Vm.Jz (1, 3); Vm.Const (2, 0x7FFFFFFF); Vm.Jmp 4; Vm.Const (2, 2);
      Vm.Shl (2, 2, 16); Vm.Mul (3, 2, 2); Vm.Load8 (5, 3, 0); Vm.Ret 5;
    |]

(* --- verifier: soundness ----------------------------------------------- *)

let gen_instr =
  QCheck2.Gen.(
    let reg = int_bound 7 in
    let imm = int_range (-1000) 1000 in
    oneof
      [
        map2 (fun r i -> Vm.Const (r, i)) reg imm;
        map2 (fun a b -> Vm.Mov (a, b)) reg reg;
        map3 (fun a b c -> Vm.Add (a, b, c)) reg reg reg;
        map3 (fun a b c -> Vm.Sub (a, b, c)) reg reg reg;
        map3 (fun a b c -> Vm.Load8 (a, b, c)) reg reg (int_bound 64);
        map3 (fun a b c -> Vm.Store8 (a, b, c)) reg reg (int_bound 64);
        map3 (fun a b c -> Vm.Mul (a, b, c)) reg reg reg;
        map3 (fun a b c -> Vm.And (a, b, c)) reg reg reg;
        map3 (fun a b c -> Vm.Or (a, b, c)) reg reg reg;
        map3 (fun a b k -> Vm.Shl (a, b, k)) reg reg (int_bound 63);
        map3 (fun a b k -> Vm.Shr (a, b, k)) reg reg (int_bound 63);
        map (fun t -> Vm.Jmp t) (int_bound 30);
        map2 (fun r t -> Vm.Jz (r, t)) reg (int_bound 30);
        map2 (fun r t -> Vm.Jnz (r, t)) reg (int_bound 30);
        map3 (fun a b t -> Vm.Jlt (a, b, t)) reg reg (int_bound 30);
        map (fun r -> Vm.Ret r) reg;
      ])

(* A Verified verdict is a guarantee about the concrete run: no wild
   access, no control-flow fault, no fuel exhaustion — division by zero
   is the one contained fault the verifier deliberately permits. *)
let verifier_soundness_prop =
  prop "verified programs run clean"
    QCheck2.Gen.(
      pair
        (map Array.of_list (list_size (int_range 1 40) gen_instr))
        (string_size (int_range 1 48)))
    (fun (program, pkt_str) ->
      match Verify.verify program with
      | Verify.Rejected _ -> true
      | Verify.Verified { fuel; _ } ->
        let clock = Clock.create () in
        let ctx = Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0 in
        let mem = Vm.mem_of_bytes (Bytes.of_string pkt_str) in
        let fuel = Verify.fuel_for fuel ~len:(String.length pkt_str) in
        (match Vm.run ctx ~fuel ~mem program with
        | Vm.Returned _ -> true
        | Vm.Vm_fault "division by zero" -> true
        | Vm.Vm_fault _ | Vm.Wild_access _ -> false))

(* --- loader wiring: the third trust class ------------------------------ *)

let bytecode_image ~name ~author code =
  let base =
    Images.image ~name ~size:(String.length code) ~author (fun api dom ->
        Instance.create api.Api.registry ~class_name:("verified." ^ name)
          ~domain:dom.Domain.id [])
  in
  { base with Loader.code }

let test_verified_load () =
  let sys = System.create () in
  let certsvc = Kernel.certification (System.kernel sys) in
  let good = Vm.encode (compile_exn "byte[19] == 7") in
  (* unsigned, untrusted author — only the static proof admits it *)
  (match
     System.install sys
       (bytecode_image ~name:"goodfilter" ~author:"anyone" good)
       ~placement:System.Verified ~at:"/services/goodfilter"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "verified load failed: %s" e);
  Alcotest.(check int) "one verification" 1 (Certsvc.verifications certsvc);
  (* unverifiable bytecode with no certificate and no sandbox is refused *)
  let bad = Vm.encode [| Vm.Const (2, 99); Vm.Store8 (0, 2, 0); Vm.Ret 0 |] in
  (match
     System.install sys
       (bytecode_image ~name:"badfilter" ~author:"anyone" bad)
       ~placement:System.Verified ~at:"/services/badfilter"
   with
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names verification" e)
      true (contains e "verification")
  | Ok _ -> Alcotest.fail "out-of-window store must not load");
  Alcotest.(check int) "one rejection" 1 (Certsvc.verify_failures certsvc);
  (* charging: verification advanced the clock per instruction *)
  let clock = System.clock sys in
  let before = Clock.now clock in
  ignore (Certsvc.verify certsvc ~code:good);
  let spent = Clock.now clock - before in
  let expected =
    match Vm.decode good with
    | Ok p -> Array.length p * Cost.default.Cost.verify_instr
    | Error e -> failwith e
  in
  Alcotest.(check int) "verify cost charged per instruction" expected spent

(* a Verified install leaves its proven bound behind for the run path *)
let test_verified_fuel_recorded () =
  let sys = System.create () in
  let loopy = Vm.encode (compile_exn "sum[0 .. len](byte[idx]) == 0") in
  (match
     System.install sys
       (bytecode_image ~name:"scanner" ~author:"anyone" loopy)
       ~placement:System.Verified ~at:"/services/scanner"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "loop filter must load Verified: %s" e);
  (match System.verified_fuel sys "scanner" with
  | Some fb ->
    Alcotest.(check bool) "per-length bound recorded" true (fb.Verify.per_len >= 1);
    Alcotest.(check bool) "fuel grows with the window" true
      (Verify.fuel_for fb ~len:256 > Verify.fuel_for fb ~len:16)
  | None -> Alcotest.fail "verified install must record its fuel bound");
  (* a placement that never ran the verifier records nothing *)
  let straight = Vm.encode (compile_exn "byte[0] == 1") in
  (match
     System.install sys
       (bytecode_image ~name:"plain" ~author:"anyone" straight)
       ~placement:System.Sandboxed ~at:"/services/plain"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sandboxed load: %s" e);
  Alcotest.(check bool) "sandboxed install records no bound" true
    (System.verified_fuel sys "plain" = None)

(* --- subsumption and Interpose enforcement ----------------------------- *)

let test_attach_superset_enforced () =
  let sys = System.create () in
  let k = System.kernel sys in
  let api = System.api sys in
  let kdom = Kernel.kernel_domain k in
  let net =
    System.setup_networking sys ~placement:System.Certified ~addr:42 ()
  in
  (* a proper superset (forwarders for everything + monitor) attaches *)
  let agent = Interpose.packet_monitor api kdom ~target:net.System.driver in
  (match Interpose.attach api ~path:"/services/netdrv" ~agent with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "superset agent must attach: %s" e);
  (* an agent missing the target's interfaces raises Not_superset *)
  let impostor =
    Instance.create api.Api.registry ~class_name:"impostor"
      ~domain:kdom.Domain.id
      [ Iface.make ~name:"monitor" [] ]
  in
  (match Interpose.attach api ~path:"/services/stack" ~agent:impostor with
  | exception Oerror.Error (Oerror.Not_superset detail) ->
    Alcotest.(check bool)
      (Printf.sprintf "detail %S names the missing interface" detail)
      true (contains detail "stack")
  | Ok _ -> Alcotest.fail "non-superset agent must be refused"
  | Error e -> Alcotest.failf "expected Not_superset, got path error %s" e);
  (* the refused attach swapped nothing: the stack still answers *)
  let ctx = Kernel.ctx k kdom in
  match
    Invoke.call ctx (Kernel.bind k kdom "/services/stack") ~iface:"stack"
      ~meth:"bind_port" [ Value.Int 7 ]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stack broken after refused attach: %s" (Oerror.to_string e)

(* a narrowed method signature is not a superset either *)
let test_subsume_method_mismatch () =
  let sys = System.create () in
  let api = System.api sys in
  let kdom = Kernel.kernel_domain (System.kernel sys) in
  let impl _ctx _args = Ok Value.Unit in
  let mk name meths =
    Instance.create api.Api.registry ~class_name:name ~domain:kdom.Domain.id
      [ Iface.make ~name:"svc" meths ]
  in
  let wrapped =
    mk "orig"
      [ Iface.meth ~name:"put" ~args:[ Vtype.Tint; Vtype.Tblob ] ~ret:Vtype.Tunit impl ]
  in
  let narrowed =
    mk "narrowed"
      [ Iface.meth ~name:"put" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit impl ]
  in
  (match Subsume.check_instances ~wrapped ~agent:narrowed with
  | Error detail ->
    Alcotest.(check bool) "arity mismatch reported" true (contains detail "put")
  | Ok () -> Alcotest.fail "narrowed arity must fail subsumption");
  let widened =
    mk "widened"
      [
        Iface.meth ~name:"put" ~args:[ Vtype.Tint; Vtype.Tblob ] ~ret:Vtype.Tunit impl;
        Iface.meth ~name:"extra" ~args:[] ~ret:Vtype.Tint impl;
      ]
  in
  match Subsume.check_instances ~wrapped ~agent:widened with
  | Ok () -> ()
  | Error e -> Alcotest.failf "superset with extra method must pass: %s" e

(* --- the composition linter -------------------------------------------- *)

let lint_errors sys =
  Lint.errors (Check_svc.run (System.check sys))

let rules_of findings = List.sort_uniq compare (List.map (fun f -> f.Lint.rule) findings)

let test_lint_clean_system () =
  let sys = System.create () in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  ignore (System.channel_rx sys net ());
  Alcotest.(check (list string)) "no errors" [] (rules_of (lint_errors sys))

let test_lint_spsc_violation () =
  let sys = System.create () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let udom = System.new_domain sys "rogue" in
  let chan =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"abused" ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  let mmu = Machine.mmu (Kernel.machine k) in
  let home = Mmu.current_context mmu in
  ignore (Chan.try_send chan (Bytes.of_string "a"));
  Mmu.switch_context mmu udom.Domain.id;
  ignore (Chan.try_send chan (Bytes.of_string "b"));
  Mmu.switch_context mmu home;
  Alcotest.(check (list string)) "spsc caught" [ "spsc" ] (rules_of (lint_errors sys))

(* the MPSC-aware refinement: distinct producers on distinct sub-rings
   are the sanctioned shape; a context on someone else's sub-ring is
   flagged with the group named *)
let test_lint_mpsc_groups () =
  let sys = System.create () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let p2 = System.new_domain sys "second-producer" in
  let cons = System.new_domain sys "mpsc-consumer" in
  let g =
    Mpsc.create (Kernel.machine k) (Kernel.vmem k) ~name:"lintg" ~mode:Chan.Poll
      ~consumer:cons ()
  in
  let t1 = Mpsc.attach g ~producer:kdom in
  let t2 = Mpsc.attach g ~producer:p2 in
  let mmu = Machine.mmu (Kernel.machine k) in
  let home = Mmu.current_context mmu in
  ignore (Mpsc.try_send t1 (Bytes.of_string "a"));
  Mmu.switch_context mmu p2.Domain.id;
  ignore (Mpsc.try_send t2 (Bytes.of_string "b"));
  Mmu.switch_context mmu home;
  Alcotest.(check (list string)) "distinct sub-rings pass" []
    (rules_of (lint_errors sys));
  (* now p2 enqueues on t1's sub-ring: an ownership violation *)
  Mmu.switch_context mmu p2.Domain.id;
  ignore (Chan.try_send (Mpsc.sub_ring t1) (Bytes.of_string "intruder"));
  Mmu.switch_context mmu home;
  let errs = lint_errors sys in
  Alcotest.(check (list string)) "intruder caught" [ "spsc" ] (rules_of errs);
  Alcotest.(check bool) "finding names the group" true
    (List.exists (fun f -> contains f.Lint.detail "lintg") errs)

let test_lint_wait_cycle () =
  let sys = System.create () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let udom = System.new_domain sys "peer" in
  let chan_ab =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"a-to-b" ~mode:Chan.Poll
      ~producer:kdom ()
  in
  ignore (Chan.accept chan_ab ~into:udom);
  let chan_ba =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"b-to-a" ~mode:Chan.Poll
      ~producer:udom ()
  in
  ignore (Chan.accept chan_ba ~into:kdom);
  (* both sides block receiving from the other before sending anything:
     the classic crossed request/reply deadlock *)
  let sched = Kernel.sched k in
  ignore
    (Scheduler.spawn sched ~name:"a" ~domain:kdom.Domain.id (fun () ->
         ignore (Chan.recv chan_ba)));
  ignore
    (Scheduler.spawn sched ~name:"b" ~domain:udom.Domain.id (fun () ->
         ignore (Chan.recv chan_ab)));
  ignore (Scheduler.run sched ());
  Alcotest.(check (list string)) "deadlock caught" [ "wait-cycle" ]
    (rules_of (lint_errors sys))

let test_lint_dangling_and_dead_handler () =
  let sys = System.create () in
  let k = System.kernel sys in
  (* dangling: a bound instance revoked behind the namespace's back *)
  let api = System.api sys in
  let kdom = Kernel.kernel_domain k in
  let orphan =
    Instance.create api.Api.registry ~class_name:"orphan" ~domain:kdom.Domain.id []
  in
  Kernel.register_at k "/services/orphan" orphan;
  Instance.revoke orphan;
  (* dead-handler: a call-back whose domain died without the kernel's
     clean-up (simulated by flipping the liveness bit directly) *)
  let ghost = System.new_domain sys "ghost" in
  ignore (Events.register (Kernel.events k) (Events.Trap 33) ~domain:ghost (fun _ -> ()));
  ghost.Domain.alive <- false;
  Alcotest.(check (list string)) "both caught" [ "dangling"; "dead-handler" ]
    (rules_of (lint_errors sys))

(* seeded failure: both storage-stack inversions — a write-back cache
   stacked above the append-only log, and a partition windowing a cache
   (the cache below its partition). The factory's own stack must lint
   clean first. *)
let test_lint_store_order () =
  let sys = System.create () in
  let k = System.kernel sys in
  ignore (System.setup_store sys ~placement:System.Certified ());
  Alcotest.(check (list string)) "factory stack is clean" []
    (rules_of (lint_errors sys));
  let api = System.api sys in
  let kdom = Kernel.kernel_domain k in
  ignore
    (Block_cache.create api kdom ~name:"bad-cache" ~lower:"/store/log0"
       ~capacity:4 ());
  ignore
    (Partition.create api kdom ~name:"bad-part" ~lower:"/store/cache0" ~base:0
       ~count:8 ());
  let errs = lint_errors sys in
  Alcotest.(check (list string)) "both inversions caught" [ "store-order" ]
    (rules_of errs);
  Alcotest.(check int) "one finding per inversion" 2 (List.length errs)

(* seeded failure: /store endpoints left dangling — one component
   revoked behind the binding's back (no detach), one marked detached
   without its endpoint ever being unbound. *)
let test_lint_store_dangling () =
  let sys = System.create () in
  let k = System.kernel sys in
  ignore (System.setup_store sys ~placement:System.Certified ());
  let machine = Kernel.machine k in
  (match Storereg.find ~machine "cache0" with
  | Some e -> Instance.revoke e.Storereg.instance
  | None -> Alcotest.fail "cache0 not registered");
  (match Storereg.find ~machine "log0" with
  | Some e -> Storereg.mark_detached e
  | None -> Alcotest.fail "log0 not registered");
  let errs = lint_errors sys in
  Alcotest.(check bool) "store-dangling caught" true
    (List.mem "store-dangling" (rules_of errs));
  Alcotest.(check int) "one finding per dangle" 2
    (List.length (List.filter (fun f -> f.Lint.rule = "store-dangling") errs))

(* --- /nucleus/check: the service object, cross-domain ------------------ *)

let test_check_service_cross_domain () =
  let sys = System.create () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "auditor" in
  let proxy = Kernel.bind k udom "/nucleus/check" in
  let ctx = Kernel.ctx k udom in
  (match Invoke.call_exn ctx proxy ~iface:"check" ~meth:"run" [] with
  | Value.Int 0 -> ()
  | v -> Alcotest.failf "clean system must lint clean, got %s" (Value.to_string v));
  (match Invoke.call_exn ctx proxy ~iface:"check" ~meth:"report" [] with
  | Value.Str s ->
    Alcotest.(check bool) "report mentions the rules" true (contains s "rules")
  | v -> Alcotest.failf "report: %s" (Value.to_string v));
  (match Invoke.call_exn ctx proxy ~iface:"check" ~meth:"explain" [ Value.Str "spsc" ] with
  | Value.Str s -> Alcotest.(check bool) "explain is prose" true (String.length s > 10)
  | v -> Alcotest.failf "explain: %s" (Value.to_string v));
  Alcotest.(check int) "runs counted" 1 (Check_svc.runs (System.check sys));
  (* findings land in the flight recorder *)
  let flight = Obs.flight (Clock.obs (System.clock sys)) in
  let seen =
    List.exists
      (fun ev -> ev.Flightrec.kind = Flightrec.Check)
      (Flightrec.events flight)
  in
  Alcotest.(check bool) "check recorded in the flight recorder" true seen

let () =
  Alcotest.run "check"
    [
      ( "verify",
        [
          Alcotest.test_case "accepts shipped filters" `Quick
            test_verify_accepts_filters;
          Alcotest.test_case "rejections" `Quick test_verify_rejections;
          Alcotest.test_case "loop acceptance" `Quick test_verify_loop_acceptance;
          Alcotest.test_case "loop rejections" `Quick test_verify_loop_rejections;
          Alcotest.test_case "pathological programs" `Quick
            test_verify_pathological;
          verifier_accepts_compiler_prop;
          verifier_accepts_loops_prop;
          verifier_soundness_prop;
        ] );
      ( "loader",
        [
          Alcotest.test_case "verified trust class" `Quick test_verified_load;
          Alcotest.test_case "fuel bound recorded" `Quick
            test_verified_fuel_recorded;
        ] );
      ( "subsume",
        [
          Alcotest.test_case "attach enforces superset" `Quick
            test_attach_superset_enforced;
          Alcotest.test_case "method compatibility" `Quick
            test_subsume_method_mismatch;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean system" `Quick test_lint_clean_system;
          Alcotest.test_case "spsc violation" `Quick test_lint_spsc_violation;
          Alcotest.test_case "mpsc groups" `Quick test_lint_mpsc_groups;
          Alcotest.test_case "wait cycle" `Quick test_lint_wait_cycle;
          Alcotest.test_case "dangling + dead handler" `Quick
            test_lint_dangling_and_dead_handler;
          Alcotest.test_case "store order (seeded)" `Quick test_lint_store_order;
          Alcotest.test_case "store dangling (seeded)" `Quick
            test_lint_store_dangling;
        ] );
      ( "service",
        [
          Alcotest.test_case "/nucleus/check cross-domain" `Quick
            test_check_service_cross_domain;
        ] );
    ]
