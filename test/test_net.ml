(* End-to-end tests for the channel-backed network data path (Pm_net):
   per-port receive rings fed by the stack's sink, the shared MPSC
   transmit group draining into the driver, the /shared/net factory with
   endpoints at /net/<port>/{rx,tx}, and the echo-server shape the
   README quick-start shows. *)

open Paramecium

let fixture () =
  let sys = System.create ~seed:0xBEEF ~key_bits:384 () in
  let k = System.kernel sys in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let nsc, svc = System.channel_net sys net () in
  (sys, k, net, nsc, svc)

let switch_to k dom = Mmu.switch_context (Machine.mmu (Kernel.machine k)) dom.Domain.id

let make_packet ctx ~src ~dst ~sport ~dport payload =
  let tp = Wire.Transport.build ctx ~sport ~dport (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src ~dst ~ttl:8 ~proto:Stack.proto_transport tp in
  Wire.Frame.build ctx ~dst ~src np

let inject_packets k ~n ~dport =
  let ctx = Kernel.ctx k (Kernel.kernel_domain k) in
  for i = 1 to n do
    Nic.inject (Kernel.nic k)
      (Bytes.to_string
         (make_packet ctx ~src:13 ~dst:42 ~sport:9 ~dport
            (Printf.sprintf "msg-%d" i)))
  done;
  Kernel.step k ~ticks:(n + 4) ()

(* --- receive: per-port rings ------------------------------------------- *)

let test_rx_ring_poll () =
  let sys, k, net, nsc, _ = fixture () in
  ignore sys;
  let app = System.new_domain sys "app" in
  let chan =
    match Netstack_chan.bind nsc ~port:7 ~owner:app ~mode:Chan.Poll () with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  inject_packets k ~n:5 ~dport:7;
  let msgs = Chan.recv_batch chan () in
  Alcotest.(check int) "all five on the ring" 5 (List.length msgs);
  let ctx = Kernel.ctx k app in
  List.iteri
    (fun i m ->
      match Netwire.Delivery.parse ctx m with
      | Ok { Netwire.Delivery.src; sport; payload } ->
        Alcotest.(check int) "src" 13 src;
        Alcotest.(check int) "sport" 9 sport;
        Alcotest.(check string) "payload"
          (Printf.sprintf "msg-%d" (i + 1))
          (Bytes.to_string payload)
      | Error e -> Alcotest.fail e)
    msgs;
  (* the mailbox stayed empty: the sink intercepted every delivery *)
  let kdom = Kernel.kernel_domain k in
  (match
     Invoke.call_exn (Kernel.ctx k kdom) net.System.stack ~iface:"stack"
       ~meth:"pending" [ Value.Int 7 ]
   with
  | Value.Int n -> Alcotest.(check int) "mailbox empty" 0 n
  | v -> Alcotest.failf "pending returned %s" (Value.to_string v));
  (* an unbound port still drops, a mailbox-bound port still queues *)
  (match Netstack_chan.bind nsc ~port:7 ~owner:app () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double channel-bind must fail");
  match Netstack_chan.unbind nsc ~port:7 with
  | Ok () -> Alcotest.(check (list int)) "no ports left" [] (Netstack_chan.ports nsc)
  | Error e -> Alcotest.fail e

let test_rx_ring_doorbell () =
  let _sys, k, _net, nsc, _ = fixture () in
  let app = System.new_domain _sys "bell-app" in
  let chan =
    match Netstack_chan.bind nsc ~port:8 ~owner:app () with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let got = ref [] in
  let api = Kernel.api k in
  ignore
    (Chan.on_doorbell chan ~events:api.Api.events ~sched:(Kernel.sched k) (fun () ->
         got := !got @ Chan.recv_batch chan ()));
  inject_packets k ~n:3 ~dport:8;
  Alcotest.(check int) "pop-ups drained every delivery" 3 (List.length !got);
  (* flipping to Poll silences the doorbell; messages wait for a drain *)
  (match Netstack_chan.set_rx_mode nsc ~port:8 Chan.Poll with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  inject_packets k ~n:2 ~dport:8;
  Alcotest.(check int) "no pop-up in poll mode" 3 (List.length !got);
  Alcotest.(check int) "poll drain picks them up" 2
    (List.length (Chan.recv_batch chan ()))

(* --- transmit: the MPSC group into the driver --------------------------- *)

let test_tx_mpsc_to_wire () =
  let sys, k, net, nsc, _ = fixture () in
  let doms =
    List.map (fun n -> System.new_domain sys n) [ "tx-a"; "tx-b"; "tx-c" ]
  in
  let txs = List.map (fun d -> (d, Netstack_chan.attach_tx nsc ~producer:d)) doms in
  Alcotest.(check int) "three producers on the group" 3
    (Mpsc.producers (Netstack_chan.tx_group nsc));
  let kdom = Kernel.kernel_domain k in
  List.iteri
    (fun i (d, tx) ->
      switch_to k d;
      let ctx = Kernel.ctx k d in
      for j = 1 to 4 do
        Alcotest.(check bool) "submitted" true
          (Netstack_chan.submit tx ctx ~dst:13 ~sport:7 ~dport:9
             (Bytes.of_string (Printf.sprintf "p%d-%d" i j)))
      done)
    txs;
  switch_to k kdom;
  (* the doorbell pop-up drains as submissions land; a final explicit
     drain catches anything enqueued while the group was un-armed *)
  ignore (Netstack_chan.drain_tx nsc);
  (* the Nic completes one transmit DMA per tick *)
  Kernel.step k ~ticks:16 ();
  let sent, failed = Netstack_chan.tx_stats nsc in
  Alcotest.(check int) "all twelve sent" 12 sent;
  Alcotest.(check int) "none failed" 0 failed;
  let frames = Nic.take_transmitted (Kernel.nic k) in
  Alcotest.(check int) "all twelve on the wire" 12 (List.length frames);
  let ctx = Kernel.ctx k kdom in
  List.iter
    (fun f ->
      match Wire.Frame.parse ctx (Bytes.of_string f) with
      | Ok { Wire.Frame.dst; src; _ } ->
        Alcotest.(check int) "framed for the peer" 13 dst;
        Alcotest.(check int) "from our address" 42 src
      | Error e -> Alcotest.fail e)
    frames;
  (* every submission paid exactly one group reserve *)
  Alcotest.(check int) "reserves" 12
    (Mpsc.stats (Netstack_chan.tx_group nsc)).Mpsc.reserves;
  ignore net

(* --- the /shared/net factory ------------------------------------------- *)

let test_netsvc_factory () =
  let sys, k, _net, _nsc, _svc = fixture () in
  let app = System.new_domain sys "netapp" in
  let factory = Kernel.bind k app "/shared/net" in
  switch_to k app;
  let uctx = Kernel.ctx k app in
  (match Invoke.call_exn uctx factory ~iface:"netfactory" ~meth:"bind" [ Value.Int 7 ] with
  | Value.Handle _ -> ()
  | v -> Alcotest.failf "bind returned %s" (Value.to_string v));
  (match Invoke.call_exn uctx factory ~iface:"netfactory" ~meth:"list" [] with
  | Value.List [ Value.Int 7 ] -> ()
  | v -> Alcotest.failf "list returned %s" (Value.to_string v));
  (* both endpoints live in the name space, owned by the caller *)
  let rx = Kernel.bind k app "/net/7/rx" in
  let tx = Kernel.bind k app "/net/7/tx" in
  inject_packets k ~n:2 ~dport:7;
  switch_to k app;
  (match Invoke.call_exn uctx rx ~iface:"chan.rx" ~meth:"recv" [] with
  | Value.List msgs ->
    Alcotest.(check int) "deliveries via the rx endpoint" 2 (List.length msgs);
    List.iter
      (fun v ->
        match v with
        | Value.Blob b ->
          (match Netwire.Delivery.parse uctx b with
          | Ok d -> Alcotest.(check int) "src" 13 d.Netwire.Delivery.src
          | Error e -> Alcotest.fail e)
        | _ -> Alcotest.fail "blob expected")
      msgs
  | v -> Alcotest.failf "recv returned %s" (Value.to_string v));
  (match
     Invoke.call_exn uctx tx ~iface:"net.tx" ~meth:"send"
       [ Value.Int 13; Value.Int 7; Value.Int 9; Value.Blob (Bytes.of_string "hi") ]
   with
  | Value.Bool true -> ()
  | v -> Alcotest.failf "send returned %s" (Value.to_string v));
  ignore (Invoke.call_exn uctx factory ~iface:"netfactory" ~meth:"drain" []);
  Kernel.step k ~ticks:2 ();
  Alcotest.(check int) "request reached the wire" 1
    (List.length (Nic.take_transmitted (Kernel.nic k)));
  (match Invoke.call_exn uctx factory ~iface:"netfactory" ~meth:"stats" [] with
  | Value.List [ Value.Int sent; Value.Int failed ] ->
    Alcotest.(check int) "sent counted" 1 sent;
    Alcotest.(check int) "none failed" 0 failed
  | v -> Alcotest.failf "stats returned %s" (Value.to_string v));
  (* unbind retires the port and its names *)
  ignore (Invoke.call_exn uctx factory ~iface:"netfactory" ~meth:"unbind" [ Value.Int 7 ]);
  (match Invoke.call_exn uctx factory ~iface:"netfactory" ~meth:"list" [] with
  | Value.List [] -> ()
  | v -> Alcotest.failf "list after unbind returned %s" (Value.to_string v));
  match Kernel.bind k app "/net/7/rx" with
  | exception _ -> ()
  | _ -> Alcotest.fail "rx endpoint must be unregistered"

(* --- the echo server, end to end --------------------------------------- *)

let test_channel_echo_server () =
  let sys, k, _net, nsc, _ = fixture () in
  let app = System.new_domain sys "echo" in
  let rx =
    match Netstack_chan.bind nsc ~port:7 ~owner:app ~mode:Chan.Poll () with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let tx = Netstack_chan.attach_tx nsc ~producer:app in
  inject_packets k ~n:4 ~dport:7;
  (* the server loop: drain the port ring, echo each request back *)
  switch_to k app;
  let ctx = Kernel.ctx k app in
  List.iter
    (fun m ->
      match Netwire.Delivery.parse ctx m with
      | Ok { Netwire.Delivery.src; sport; payload } ->
        ignore
          (Netstack_chan.submit tx ctx ~dst:src ~sport:7 ~dport:sport payload)
      | Error e -> Alcotest.fail e)
    (Chan.recv_batch rx ());
  switch_to k (Kernel.kernel_domain k);
  ignore (Netstack_chan.drain_tx nsc);
  Kernel.step k ~ticks:8 ();
  let frames = Nic.take_transmitted (Kernel.nic k) in
  Alcotest.(check int) "every request echoed" 4 (List.length frames);
  let kctx = Kernel.ctx k (Kernel.kernel_domain k) in
  List.iteri
    (fun i f ->
      let frame = Bytes.of_string f in
      match Wire.Frame.parse kctx frame with
      | Error e -> Alcotest.fail e
      | Ok { Wire.Frame.payload = np; dst; _ } ->
        Alcotest.(check int) "echo goes back to the requester" 13 dst;
        (match Wire.Net.parse kctx np with
        | Error e -> Alcotest.fail e
        | Ok { Wire.Net.payload = tp; _ } ->
          (match Wire.Transport.parse kctx tp with
          | Error e -> Alcotest.fail e
          | Ok { Wire.Transport.sport; dport; payload } ->
            Alcotest.(check int) "from the service port" 7 sport;
            Alcotest.(check int) "to the requester's port" 9 dport;
            Alcotest.(check string) "payload round-tripped"
              (Printf.sprintf "msg-%d" (i + 1))
              (Bytes.to_string payload))))
    frames

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "net"
    [
      ( "rx",
        [
          Alcotest.test_case "per-port ring, poll" `Quick test_rx_ring_poll;
          Alcotest.test_case "per-port ring, doorbell" `Quick test_rx_ring_doorbell;
        ] );
      ( "tx",
        [ Alcotest.test_case "mpsc group to the wire" `Quick test_tx_mpsc_to_wire ] );
      ( "factory",
        [ Alcotest.test_case "/shared/net + endpoints" `Quick test_netsvc_factory ] );
      ( "echo",
        [ Alcotest.test_case "channel-backed echo server" `Quick test_channel_echo_server ] );
    ]
