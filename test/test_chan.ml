(* Tests for the shared-memory channel subsystem: ring wrap-around,
   back-pressure, doorbell pop-up delivery, the /shared/chan factory,
   interposing on a channel endpoint, and batched RPC over a ring pair
   (including cross-domain failure propagation through
   Rpc.create_client_via). *)

open Paramecium

let fixture () =
  let sys = System.create ~seed:0xBEEF () in
  let k = System.kernel sys in
  (sys, k, Kernel.kernel_domain k)

let switch_to k dom = Mmu.switch_context (Machine.mmu (Kernel.machine k)) dom.Domain.id

(* --- ring ------------------------------------------------------------- *)

let test_ring_wraparound () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let udom = Kernel.create_domain k ~name:"wrap-consumer" () in
  let chan =
    Chan.create (Kernel.machine k) api.Api.vmem ~name:"wrap" ~slots:4 ~slot_size:8
      ~mode:Chan.Poll ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  (* 30 messages through a 4-slot ring: the free-running indices lap the
     ring many times *)
  for round = 0 to 9 do
    for j = 0 to 2 do
      let msg = Printf.sprintf "%02d-%d" round j in
      Alcotest.(check bool) "enqueue" true (Chan.try_send chan (Bytes.of_string msg))
    done;
    for j = 0 to 2 do
      match Chan.try_recv chan with
      | Some m ->
        Alcotest.(check string) "fifo across wrap"
          (Printf.sprintf "%02d-%d" round j)
          (Bytes.to_string m)
      | None -> Alcotest.fail "ring unexpectedly empty"
    done
  done;
  let s = Chan.stats chan in
  Alcotest.(check int) "sends" 30 s.Chan.sends;
  Alcotest.(check int) "recvs" 30 s.Chan.recvs;
  (* capacity boundary: a 4-slot ring holds exactly 4 *)
  for _ = 1 to 4 do
    Alcotest.(check bool) "fills" true (Chan.try_send chan (Bytes.of_string "x"))
  done;
  Alcotest.(check bool) "refuses when full" false
    (Chan.try_send chan (Bytes.of_string "x"));
  Alcotest.(check int) "pending" 4 (Chan.pending chan);
  Alcotest.(check int) "drained" 4 (List.length (Chan.recv_batch chan ()));
  Alcotest.(check bool) "empty again" true (Chan.try_recv chan = None);
  (* oversized message rejected, bad geometry rejected *)
  (match Chan.try_send chan (Bytes.create 9) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized message must be rejected");
  match
    Chan.create (Kernel.machine k) api.Api.vmem ~slots:4 ~slot_size:6 ~producer:kdom
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slot_size must be a multiple of 4"

let test_full_ring_backpressure () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let udom = Kernel.create_domain k ~name:"bp-consumer" () in
  let chan =
    Chan.create (Kernel.machine k) api.Api.vmem ~name:"bp" ~slots:2 ~slot_size:8
      ~mode:Chan.Poll ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  let sched = Kernel.sched k in
  let got = ref [] in
  let producer =
    Scheduler.spawn sched ~name:"bp-producer" ~domain:kdom.Domain.id (fun () ->
        for n = 1 to 5 do
          Chan.send chan (Bytes.of_string (string_of_int n))
        done)
  in
  let consumer =
    Scheduler.spawn sched ~name:"bp-consumer" ~domain:udom.Domain.id (fun () ->
        for _ = 1 to 5 do
          got := Bytes.to_string (Chan.recv chan) :: !got
        done)
  in
  ignore (Scheduler.run sched ());
  Alcotest.(check bool) "producer finished" true
    (producer.Scheduler.state = Scheduler.Finished);
  Alcotest.(check bool) "consumer finished" true
    (consumer.Scheduler.state = Scheduler.Finished);
  Alcotest.(check (list string)) "in order, none lost" [ "1"; "2"; "3"; "4"; "5" ]
    (List.rev !got);
  let s = Chan.stats chan in
  Alcotest.(check bool) "producer parked on the full ring" true (s.Chan.full_blocks >= 1);
  Alcotest.(check bool) "consumer parked on the empty ring" true
    (s.Chan.empty_blocks >= 1)

(* --- doorbells --------------------------------------------------------- *)

let test_doorbell_popup_delivery () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let udom = Kernel.create_domain k ~name:"bell-consumer" () in
  let chan =
    Chan.create (Kernel.machine k) api.Api.vmem ~name:"bell" ~slots:8 ~slot_size:8
      ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  (* armed at creation: the first enqueue rings; the second, with the
     ring non-empty and the flag cleared, must not — load skips doorbells *)
  ignore (Chan.try_send chan (Bytes.of_string "m1"));
  ignore (Chan.try_send chan (Bytes.of_string "m2"));
  Alcotest.(check int) "only the first enqueue rings" 1 (Chan.stats chan).Chan.doorbells;
  Alcotest.(check int) "both queued" 2 (List.length (Chan.recv_batch chan ()));
  (* the dry drain re-armed; now deliver through the event service *)
  let received = ref [] in
  let ran_in = ref (-1) in
  ignore
    (Chan.on_doorbell chan ~events:api.Api.events ~sched:(Kernel.sched k) (fun () ->
         ran_in := Mmu.current_context (Machine.mmu (Kernel.machine k));
         received :=
           !received @ List.map Bytes.to_string (Chan.recv_batch chan ())));
  ignore (Chan.try_send chan (Bytes.of_string "m3"));
  Alcotest.(check (list string)) "pop-up drained the enqueue" [ "m3" ] !received;
  Alcotest.(check int) "pop-up ran in the consumer's domain" udom.Domain.id !ran_in;
  Alcotest.(check int) "second doorbell" 2 (Chan.stats chan).Chan.doorbells;
  (* drained dry again, so the next enqueue rings again *)
  ignore (Chan.try_send chan (Bytes.of_string "m4"));
  Alcotest.(check (list string)) "re-armed after dry drain" [ "m3"; "m4" ] !received

(* --- MPSC groups -------------------------------------------------------- *)

let mpsc_fixture ?(mode = Chan.Poll) ?(slots = 4) () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let p2 = Kernel.create_domain k ~name:"mpsc-p2" () in
  let p3 = Kernel.create_domain k ~name:"mpsc-p3" () in
  let cons = Kernel.create_domain k ~name:"mpsc-cons" () in
  let g =
    Mpsc.create (Kernel.machine k) api.Api.vmem ~name:"mg" ~slots ~slot_size:12
      ~mode ~consumer:cons ()
  in
  (k, kdom, p2, p3, cons, g)

let send_as k d tx msg =
  let mmu = Machine.mmu (Kernel.machine k) in
  let home = Mmu.current_context mmu in
  Mmu.switch_context mmu d.Domain.id;
  let ok = Mpsc.try_send tx (Bytes.of_string msg) in
  Mmu.switch_context mmu home;
  ok

let test_mpsc_interleaved_wraparound () =
  let k, kdom, p2, p3, _, g = mpsc_fixture () in
  let txs = List.map (fun d -> (d, Mpsc.attach g ~producer:d)) [ kdom; p2; p3 ] in
  Alcotest.(check int) "three producers" 3 (Mpsc.producers g);
  let reserves0 = Clock.counter (Kernel.clock k) "mpsc_reserve" in
  (* ten interleaved rounds through 4-slot sub-rings, drained every other
     round: the free-running indices lap every sub-ring several times *)
  let got = ref [] in
  for round = 0 to 9 do
    List.iteri
      (fun i (d, tx) ->
        Alcotest.(check bool) "enqueue" true
          (send_as k d tx (Printf.sprintf "p%d-%02d" i round)))
      txs;
    if round mod 2 = 1 then
      got := !got @ List.map Bytes.to_string (Mpsc.recv_batch g ())
  done;
  got := !got @ List.map Bytes.to_string (Mpsc.recv_batch g ());
  Alcotest.(check int) "all messages delivered" 30 (List.length !got);
  (* per-producer FIFO survives the interleaving and the wrap *)
  List.iteri
    (fun i _ ->
      let mine =
        List.filter
          (fun m -> String.length m > 1 && m.[1] = Char.chr (Char.code '0' + i))
          !got
      in
      Alcotest.(check (list string)) "per-producer order intact"
        (List.init 10 (fun r -> Printf.sprintf "p%d-%02d" i r))
        mine)
    txs;
  let s = Mpsc.stats g in
  Alcotest.(check int) "sends" 30 s.Mpsc.sends;
  Alcotest.(check int) "recvs" 30 s.Mpsc.recvs;
  (* every enqueue paid exactly one reserve through the group header *)
  Alcotest.(check int) "one reserve per send" 30 s.Mpsc.reserves;
  Alcotest.(check int) "reserve counter advanced" 30
    (Clock.counter (Kernel.clock k) "mpsc_reserve" - reserves0)

let test_mpsc_backpressure_fairness () =
  let k, kdom, p2, _, _, g = mpsc_fixture ~slots:2 () in
  let ta = Mpsc.attach g ~producer:kdom in
  let tb = Mpsc.attach g ~producer:p2 in
  (* A fills its own sub-ring; the refusal is A's alone — B still has
     room, so one producer's back-pressure never stalls another *)
  Alcotest.(check bool) "a1" true (send_as k kdom ta "a1");
  Alcotest.(check bool) "a2" true (send_as k kdom ta "a2");
  Alcotest.(check bool) "A's ring is full" false (send_as k kdom ta "a3");
  let dropped =
    let mmu = Machine.mmu (Kernel.machine k) in
    let home = Mmu.current_context mmu in
    Mmu.switch_context mmu kdom.Domain.id;
    let r = Mpsc.send_or_drop ta (Bytes.of_string "a3") in
    Mmu.switch_context mmu home;
    r
  in
  Alcotest.(check bool) "send_or_drop refuses too" false dropped;
  Alcotest.(check bool) "B unaffected" true (send_as k p2 tb "b1");
  Alcotest.(check int) "one drop recorded" 1
    (Chan.stats (Mpsc.sub_ring ta)).Chan.drops;
  (* the drain round-robins one message per sub-ring per pass: the lone
     B message is served between A's two, not after them *)
  Alcotest.(check (list string)) "round-robin interleave" [ "a1"; "b1"; "a2" ]
    (List.map Bytes.to_string (Mpsc.recv_batch g ()));
  Alcotest.(check bool) "A has room again" true (send_as k kdom ta "a3");
  Alcotest.(check (list string)) "tail drained" [ "a3" ]
    (List.map Bytes.to_string (Mpsc.recv_batch g ()))

let test_mpsc_doorbell_coalescing () =
  let k, kdom, p2, p3, _, g = mpsc_fixture ~mode:Chan.Doorbell ~slots:8 () in
  let api = Kernel.api k in
  let ta = Mpsc.attach g ~producer:kdom in
  let tb = Mpsc.attach g ~producer:p2 in
  let tc = Mpsc.attach g ~producer:p3 in
  let bells = ref 0 in
  (* count pop-ups without draining, so the armed flag stays clear for
     the rest of the burst *)
  ignore
    (Mpsc.on_doorbell g ~events:api.Api.events ~sched:(Kernel.sched k) (fun () ->
         incr bells));
  Alcotest.(check bool) "first send" true (send_as k kdom ta "m1");
  Alcotest.(check bool) "second send" true (send_as k p2 tb "m2");
  Alcotest.(check bool) "third send" true (send_as k p3 tc "m3");
  (* one trap for the whole three-producer burst *)
  Alcotest.(check int) "doorbells coalesced" 1 !bells;
  Alcotest.(check int) "group counted the same" 1 (Mpsc.stats g).Mpsc.doorbells;
  Alcotest.(check int) "burst pending" 3 (Mpsc.pending g);
  Alcotest.(check int) "burst drained" 3 (List.length (Mpsc.recv_batch g ()));
  (* the dry drain re-armed: the next producer, whichever it is, rings *)
  Alcotest.(check bool) "post-drain send" true (send_as k p3 tc "m4");
  Alcotest.(check int) "re-armed doorbell" 2 !bells;
  (* a dry drain costs only the dirty-hint read and returns nothing *)
  ignore (Mpsc.recv_batch g ());
  Alcotest.(check (list string)) "dry drain empty" []
    (List.map Bytes.to_string (Mpsc.recv_batch g ()))

(* --- the /shared/chan factory and endpoint interposition --------------- *)

let test_factory_and_interposed_monitor () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let udom = Kernel.create_domain k ~name:"chan-user" () in
  (* the producer drives the factory through the name space, via proxy *)
  let factory = Kernel.bind k udom "/shared/chan" in
  Alcotest.(check bool) "factory reached via proxy" true (Proxy.is_proxy factory);
  switch_to k udom;
  let uctx = Kernel.ctx k udom in
  (match
     Invoke.call_exn uctx factory ~iface:"chanfactory" ~meth:"create"
       [ Value.Str "pipe"; Value.Int 8; Value.Int 64 ]
   with
  | Value.Handle _ -> ()
  | v -> Alcotest.failf "create returned %s" (Value.to_string v));
  (match
     Invoke.call uctx factory ~iface:"chanfactory" ~meth:"create"
       [ Value.Str "pipe"; Value.Int 8; Value.Int 64 ]
   with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "duplicate channel name must fault");
  (* the consumer accepts from its own domain *)
  switch_to k kdom;
  let kctx = Kernel.ctx k kdom in
  let kfactory = Kernel.bind k kdom "/shared/chan" in
  (match
     Invoke.call_exn kctx kfactory ~iface:"chanfactory" ~meth:"list" []
   with
  | Value.List [ Value.Str "pipe" ] -> ()
  | v -> Alcotest.failf "list returned %s" (Value.to_string v));
  (match
     Invoke.call_exn kctx kfactory ~iface:"chanfactory" ~meth:"accept"
       [ Value.Str "pipe" ]
   with
  | Value.Handle _ -> ()
  | v -> Alcotest.failf "accept returned %s" (Value.to_string v));
  (* interpose a monitor over the tx endpoint, like any agent *)
  let tx = Kernel.bind k udom "/chan/pipe/tx" in
  let seen = ref [] in
  let agent =
    Interpose.wrap api udom ~target:tx
      ~on_call:(fun ~iface ~meth _args -> seen := (iface ^ "." ^ meth) :: !seen)
      ()
  in
  (match Interpose.attach api ~path:"/chan/pipe/tx" ~agent with
  | Ok prev -> Alcotest.(check bool) "previous binding was the endpoint" true (prev == tx)
  | Error e -> Alcotest.fail e);
  let bound = Kernel.bind k udom "/chan/pipe/tx" in
  Alcotest.(check bool) "rebinding resolves to the agent" true (bound == agent);
  switch_to k udom;
  ignore
    (Invoke.call_exn uctx bound ~iface:"chan.tx" ~meth:"send"
       [ Value.Blob (Bytes.of_string "ping") ]);
  Alcotest.(check (list string)) "monitor saw the send" [ "chan.tx.send" ] !seen;
  (* the message still crossed: the consumer's rx endpoint drains it *)
  switch_to k kdom;
  let rx = Kernel.bind k kdom "/chan/pipe/rx" in
  (match Invoke.call_exn kctx rx ~iface:"chan.rx" ~meth:"recv" [] with
  | Value.List [ Value.Blob b ] ->
    Alcotest.(check string) "payload intact through the agent" "ping"
      (Bytes.to_string b)
  | v -> Alcotest.failf "recv returned %s" (Value.to_string v))

(* --- batched RPC over a ring pair -------------------------------------- *)

let rpc_fixture () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let udom = Kernel.create_domain k ~name:"rpc-client" () in
  let conn = Rpc_chan.connect api ~client:udom ~server:kdom () in
  let procedures =
    [
      ("echo", fun _ctx b -> Ok b);
      ( "upper",
        fun _ctx b -> Ok (Bytes.of_string (String.uppercase_ascii (Bytes.to_string b)))
      );
      ("fail", fun _ctx _ -> Error "application exploded");
    ]
  in
  (* raw requests carry the classic Rpc wire format over the channel:
     decode, dispatch to the same procedure table, encode the response *)
  let raw ctx req =
    match Rpc.decode_request req with
    | Error e -> Error e
    | Ok (id, _rport, name, args) ->
      let status, payload =
        match List.assoc_opt name procedures with
        | Some h -> (
          match h ctx args with
          | Ok r -> (Rpc.status_ok, r)
          | Error e -> (Rpc.status_error, Bytes.of_string e))
        | None -> (Rpc.status_error, Bytes.of_string ("no such procedure " ^ name))
      in
      Ok (Rpc.encode_response ~id ~status payload)
  in
  Rpc_chan.serve api conn ~procedures ~raw ();
  let client = Rpc_chan.client api conn () in
  switch_to k udom;
  (k, udom, conn, client)

let test_rpc_chan_round_trip () =
  let k, udom, conn, client = rpc_fixture () in
  let ctx = Kernel.ctx k udom in
  (match
     Invoke.call_exn ctx client ~iface:"rpc.batch" ~meth:"call"
       [ Value.Str "upper"; Value.Blob (Bytes.of_string "shout") ]
   with
  | Value.Blob b -> Alcotest.(check string) "result" "SHOUT" (Bytes.to_string b)
  | v -> Alcotest.failf "call returned %s" (Value.to_string v));
  let sends_before = (Chan.stats (Rpc_chan.request_chan conn)).Chan.sends in
  let batch =
    Value.List
      (List.init 8 (fun n ->
           Value.Pair
             (Value.Str "echo", Value.Blob (Bytes.of_string (string_of_int n)))))
  in
  (match Invoke.call_exn ctx client ~iface:"rpc.batch" ~meth:"call_many" [ batch ] with
  | Value.List results ->
    Alcotest.(check int) "all results back" 8 (List.length results);
    List.iteri
      (fun n v ->
        match v with
        | Value.Blob b -> Alcotest.(check string) "echoed in order" (string_of_int n) (Bytes.to_string b)
        | _ -> Alcotest.fail "blob expected")
      results
  | v -> Alcotest.failf "call_many returned %s" (Value.to_string v));
  let sends_after = (Chan.stats (Rpc_chan.request_chan conn)).Chan.sends in
  Alcotest.(check int) "8 calls crossed in one ring message" 1
    (sends_after - sends_before);
  (* remote application errors surface as faults, across the domains *)
  match
    Invoke.call ctx client ~iface:"rpc.batch" ~meth:"call"
      [ Value.Str "fail"; Value.Blob Bytes.empty ]
  with
  | Error (Oerror.Fault msg) ->
    Alcotest.(check string) "remote error text"
      "rpc_chan: remote error: application exploded" msg
  | _ -> Alcotest.fail "remote error must fault"

let test_rpc_chan_unknown_procedure () =
  let k, udom, _conn, client = rpc_fixture () in
  let ctx = Kernel.ctx k udom in
  match
    Invoke.call ctx client ~iface:"rpc.batch" ~meth:"call"
      [ Value.Str "nope"; Value.Blob Bytes.empty ]
  with
  | Error (Oerror.Fault msg) ->
    Alcotest.(check string) "unknown procedure"
      "rpc_chan: remote error: no such procedure nope" msg
  | _ -> Alcotest.fail "unknown procedure must fault"

let test_rpc_over_channel_transport () =
  let k, udom, _conn, client = rpc_fixture () in
  let api = Kernel.api k in
  (* the classic Rpc client, riding the channel instead of the stack *)
  let rpc = Rpc.create_client_via api udom ~transport:client () in
  let ctx = Kernel.ctx k udom in
  (match
     Invoke.call_exn ctx rpc ~iface:"rpc" ~meth:"call"
       [ Value.Str "upper"; Value.Blob (Bytes.of_string "quiet") ]
   with
  | Value.Blob b -> Alcotest.(check string) "result via channel" "QUIET" (Bytes.to_string b)
  | v -> Alcotest.failf "call returned %s" (Value.to_string v));
  (* Rpc's own failure propagation is carrier-independent *)
  match
    Invoke.call ctx rpc ~iface:"rpc" ~meth:"call"
      [ Value.Str "fail"; Value.Blob Bytes.empty ]
  with
  | Error (Oerror.Fault msg) ->
    Alcotest.(check bool) "remote error prefixed" true
      (String.length msg >= 4 && String.sub msg 0 4 = "rpc:")
  | _ -> Alcotest.fail "remote failure must fault through both layers"

(* the channel-backed server mode: same "rpc.server" object, same wire
   format, served from the ring pair instead of a stack port *)
let test_rpc_chan_create_server () =
  let _, k, kdom = fixture () in
  let api = Kernel.api k in
  let udom = Kernel.create_domain k ~name:"rpc-client2" () in
  let conn = Rpc_chan.connect api ~client:udom ~server:kdom () in
  let server =
    Rpc_chan.create_server api conn
      ~procedures:
        [ ("echo", fun _ctx b -> Ok b); ("fail", fun _ctx _ -> Error "boom") ]
      ()
  in
  let transport = Rpc_chan.client api conn () in
  let rpc = Rpc.create_client_via api udom ~transport () in
  switch_to k udom;
  let uctx = Kernel.ctx k udom in
  (match
     Invoke.call_exn uctx rpc ~iface:"rpc" ~meth:"call"
       [ Value.Str "echo"; Value.Blob (Bytes.of_string "ping") ]
   with
  | Value.Blob b -> Alcotest.(check string) "echoed" "ping" (Bytes.to_string b)
  | v -> Alcotest.failf "call returned %s" (Value.to_string v));
  (match
     Invoke.call uctx rpc ~iface:"rpc" ~meth:"call"
       [ Value.Str "fail"; Value.Blob Bytes.empty ]
   with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "application error must fault");
  switch_to k kdom;
  let kctx = Kernel.ctx k kdom in
  (match Invoke.call_exn kctx server ~iface:"rpc.server" ~meth:"requests" [] with
  | Value.Int n -> Alcotest.(check int) "both requests counted" 2 n
  | v -> Alcotest.failf "requests returned %s" (Value.to_string v));
  (match Invoke.call_exn kctx server ~iface:"rpc.server" ~meth:"failures" [] with
  | Value.Int n -> Alcotest.(check int) "one failure counted" 1 n
  | v -> Alcotest.failf "failures returned %s" (Value.to_string v));
  match Invoke.call_exn kctx server ~iface:"rpc.server" ~meth:"poll" [] with
  | Value.Int n -> Alcotest.(check int) "nothing left pending" 0 n
  | v -> Alcotest.failf "poll returned %s" (Value.to_string v)

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "chan"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "full-ring back-pressure" `Quick
            test_full_ring_backpressure;
        ] );
      ( "doorbell",
        [
          Alcotest.test_case "pop-up delivery" `Quick test_doorbell_popup_delivery;
        ] );
      ( "mpsc",
        [
          Alcotest.test_case "interleaved wrap-around" `Quick
            test_mpsc_interleaved_wraparound;
          Alcotest.test_case "back-pressure fairness" `Quick
            test_mpsc_backpressure_fairness;
          Alcotest.test_case "doorbell coalescing" `Quick
            test_mpsc_doorbell_coalescing;
        ] );
      ( "factory",
        [
          Alcotest.test_case "namespace + interposed monitor" `Quick
            test_factory_and_interposed_monitor;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "round trip + batching" `Quick test_rpc_chan_round_trip;
          Alcotest.test_case "unknown procedure" `Quick test_rpc_chan_unknown_procedure;
          Alcotest.test_case "Rpc over channel transport" `Quick
            test_rpc_over_channel_transport;
          Alcotest.test_case "channel-backed server" `Quick
            test_rpc_chan_create_server;
        ] );
    ]
